// Reproduces Fig 9: Key-OIJ throughput as the window size of the default
// synthetic workload grows.
//
// Expected shape: throughput drops steeply with window size — more tuples
// per window mean more reading and aggregation, and Key-OIJ re-does the
// overlapping portion for every window.

#include <algorithm>

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 9", "window-size effect on Key-OIJ (Table IV workload)");
  std::printf("%-14s %14s %18s\n", "window", "throughput",
              "visits/join-op");

  for (Timestamp window : {100LL, 1000LL, 10'000LL, 50'000LL, 100'000LL}) {
    WorkloadSpec w = DefaultSynthetic();
    w.window = IntervalWindow{window, 0};
    // Cover at least four window lengths of event time so steady-state
    // window populations are reached (event rate is 1M tuples/s).
    w.total_tuples = Scaled(std::max<uint64_t>(
        400'000, static_cast<uint64_t>(window) * 4));
    const QuerySpec q = QueryFor(w, EmitMode::kEager);
    EngineOptions options;
    options.num_joiners = 16;
    const RunResult r = RunOnce(EngineKind::kKeyOij, w, q, options);
    const double visits_per_op =
        r.stats.join_ops == 0
            ? 0.0
            : static_cast<double>(r.stats.visited) /
                  static_cast<double>(r.stats.join_ops);
    std::printf("%-14s %14s %18.1f\n",
                HumanDurationUs(static_cast<double>(window)).c_str(),
                HumanRate(r.throughput_tps).c_str(), visits_per_op);
    std::fflush(stdout);
  }
  return 0;
}
