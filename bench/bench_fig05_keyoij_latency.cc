// Reproduces Fig 5: Key-OIJ latency CDF under Workloads A-D with 16 join
// threads, against the 20 ms SLA line a bank user of OpenMLDB requires.
//
// Expected shapes: A and D mostly under 20 ms; B and C fail the SLA.

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 5", "Key-OIJ latency distribution on Workloads A-D");
  PrintNote("16 joiners; A/B/D paced at their Table II arrival rates, C "
            "unthrottled");

  for (WorkloadSpec w : RealWorkloads()) {
    // Keep paced runs to a few seconds of wall time.
    if (w.pace_rate_per_sec > 0) {
      w.total_tuples = Scaled(w.pace_rate_per_sec * 2);
    } else {
      w.total_tuples = Scaled(300'000);
    }
    const QuerySpec q = QueryFor(w, EmitMode::kEager);
    EngineOptions options;
    options.num_joiners = 16;
    const RunResult r = RunOnce(EngineKind::kKeyOij, w, q, options);
    PrintLatencyRow("Workload " + w.name, r.stats);

    std::printf("  CDF:");
    int printed = 0;
    for (const auto& p : r.stats.latency.CdfPoints()) {
      if (printed++ % 8 == 0) {  // thin the curve for the console
        std::printf(" (%s, %.3f)",
                    HumanDurationUs(static_cast<double>(p.latency_us))
                        .c_str(),
                    p.cumulative);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
