#ifndef OIJ_BENCH_BENCH_UTIL_H_
#define OIJ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "core/run_summary.h"
#include "stream/presets.h"

namespace oij::bench {

/// Scale factor for run sizes: OIJ_BENCH_SCALE=0.1 makes every bench run
/// 10x shorter (useful on small machines); default 1.0.
inline double ScaleFactor() {
  const char* env = std::getenv("OIJ_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline uint64_t Scaled(uint64_t tuples) {
  const double scaled = static_cast<double>(tuples) * ScaleFactor();
  return scaled < 1000 ? 1000 : static_cast<uint64_t>(scaled);
}

/// OIJ_BENCH_SCALE for google-benchmark Arg() element counts (items
/// inserted / encoded / appended per iteration). Lower floor than
/// Scaled() so micro runs stay micro. Use only for work *amounts* —
/// never for x-axis parameters like batch sizes, byte widths, or ring
/// capacities, which define what is being measured.
inline int64_t ScaledArg(int64_t n, int64_t min_n = 100) {
  const double scaled = static_cast<double>(n) * ScaleFactor();
  const auto v = static_cast<int64_t>(scaled);
  return v < min_n ? min_n : v;
}

/// Joiner-thread sweep used by the scalability figures. Overridable via
/// OIJ_BENCH_THREADS="1,2,4" for constrained machines.
inline std::vector<uint32_t> ThreadSweep() {
  const char* env = std::getenv("OIJ_BENCH_THREADS");
  if (env == nullptr) return {1, 2, 4, 8, 16};
  std::vector<uint32_t> out;
  int v = 0;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      v = v * 10 + (*p - '0');
    } else {
      if (v > 0) out.push_back(static_cast<uint32_t>(v));
      v = 0;
      if (*p == '\0') break;
    }
  }
  return out.empty() ? std::vector<uint32_t>{1, 2, 4} : out;
}

/// QuerySpec matching a workload's window/lateness parameters.
inline QuerySpec QueryFor(const WorkloadSpec& w,
                          EmitMode mode = EmitMode::kEager,
                          AggKind agg = AggKind::kSum) {
  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.agg = agg;
  q.emit_mode = mode;
  return q;
}

/// One measured run of (engine, workload, options).
inline RunResult RunOnce(EngineKind kind, const WorkloadSpec& workload,
                         const QuerySpec& query,
                         const EngineOptions& options,
                         ResultSink* sink = nullptr) {
  NullSink null_sink;
  auto engine =
      CreateEngine(kind, query, options, sink ? sink : &null_sink);
  WorkloadGenerator gen(workload);
  return RunPipeline(engine.get(), &gen);
}

/// Throughput-mode variant: drops pacing so the engine runs flat out.
inline WorkloadSpec Unpaced(WorkloadSpec w) {
  w.pace_rate_per_sec = 0;
  return w;
}

inline void PrintTitle(const char* id, const char* what) {
  std::printf("\n=== %s: %s ===\n", id, what);
}

inline void PrintNote(const std::string& note) {
  std::printf("--- %s\n", note.c_str());
}

/// Latency percentile row used by the CDF figures.
inline void PrintLatencyRow(const std::string& label,
                            const EngineStats& stats) {
  std::printf(
      "%-28s p50=%10s p90=%10s p95=%10s p99=%10s max=%10s <20ms=%5.1f%%\n",
      label.c_str(),
      HumanDurationUs(static_cast<double>(stats.latency.Percentile(0.50)))
          .c_str(),
      HumanDurationUs(static_cast<double>(stats.latency.Percentile(0.90)))
          .c_str(),
      HumanDurationUs(static_cast<double>(stats.latency.Percentile(0.95)))
          .c_str(),
      HumanDurationUs(static_cast<double>(stats.latency.Percentile(0.99)))
          .c_str(),
      HumanDurationUs(static_cast<double>(stats.latency.max_us())).c_str(),
      stats.latency.FractionBelow(20'000) * 100.0);
}

}  // namespace oij::bench

#endif  // OIJ_BENCH_BENCH_UTIL_H_
