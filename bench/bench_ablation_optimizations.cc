// Ablation beyond the paper's figures: each Scale-OIJ optimization toggled
// independently on the Table IV workload restricted to few keys (the
// regime where all three matter), plus Key-OIJ as the no-optimization
// baseline. This isolates the contribution of
//   (1) the time-travel index        (engine choice: key-oij vs scale),
//   (2) the dynamic balanced schedule (options.dynamic_schedule),
//   (3) incremental aggregation       (options.incremental_agg),
//   (4) pooled allocation             (options.pooled_alloc: slab arena +
//       chunked EBR retire on the insert/evict hot path).

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Ablation", "Scale-OIJ optimization matrix (u=5, |w|=10ms, "
                         "l=1ms, 16 joiners)");

  WorkloadSpec w = DefaultSynthetic();
  w.num_keys = 5;                       // skew for the scheduler
  w.window = IntervalWindow{10'000, 0};  // overlap for incremental
  w.lateness_us = 1000;                 // disorder for the index
  w.disorder_bound_us = 1000;
  w.total_tuples = Scaled(300'000);
  const QuerySpec q = QueryFor(w, EmitMode::kEager);

  std::printf("%-34s %14s %14s %14s\n", "variant", "throughput",
              "unbalanced", "effectiveness");

  struct Variant {
    const char* label;
    EngineKind kind;
    bool dynamic_schedule;
    bool incremental;
    bool pooled;
  };
  const Variant variants[] = {
      {"key-oij (baseline)", EngineKind::kKeyOij, false, false, false},
      {"index only", EngineKind::kScaleOij, false, false, false},
      {"index + dynamic-schedule", EngineKind::kScaleOij, true, false, false},
      {"index + incremental", EngineKind::kScaleOij, false, true, false},
      {"index + pooled-alloc", EngineKind::kScaleOij, false, false, true},
      {"all minus pooled-alloc", EngineKind::kScaleOij, true, true, false},
      {"all (full scale-oij)", EngineKind::kScaleOij, true, true, true},
  };

  for (const Variant& v : variants) {
    EngineOptions options;
    options.num_joiners = 16;
    options.dynamic_schedule = v.dynamic_schedule;
    options.incremental_agg = v.incremental;
    options.pooled_alloc = v.pooled;
    options.rebalance_interval_events = 16384;
    const RunResult r = RunOnce(v.kind, w, q, options);
    std::printf("%-34s %14s %14.3f %14.3f\n", v.label,
                HumanRate(r.throughput_tps).c_str(),
                r.stats.ActualUnbalancedness(), r.stats.Effectiveness());
    std::fflush(stdout);
  }
  return 0;
}
