// Reproduces Fig 7: Key-OIJ throughput and effectiveness (Eq. 1) as the
// lateness of the default synthetic workload (Table IV) grows.
//
// Expected shape: throughput drops rapidly with lateness because the
// unsorted buffer retains (and every join op scans) more out-of-window
// tuples; effectiveness decays in lock-step.

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 7", "lateness effect on Key-OIJ (Table IV workload)");
  std::printf("%-14s %14s %16s\n", "lateness", "throughput", "effectiveness");

  for (Timestamp lateness : {100LL, 1000LL, 10'000LL, 50'000LL, 100'000LL}) {
    WorkloadSpec w = DefaultSynthetic();
    w.lateness_us = lateness;
    w.disorder_bound_us = lateness;
    w.total_tuples = Scaled(400'000);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);
    EngineOptions options;
    options.num_joiners = 16;
    const RunResult r = RunOnce(EngineKind::kKeyOij, w, q, options);
    std::printf("%-14s %14s %15.3f\n",
                HumanDurationUs(static_cast<double>(lateness)).c_str(),
                HumanRate(r.throughput_tps).c_str(),
                r.stats.Effectiveness());
    std::fflush(stdout);
  }
  return 0;
}
