// Reproduces Fig 14: CPU utilization over time for the 16 joiners on a
// skewed workload where a random hot-key set rotates periodically
// (u = 10K, other parameters per Table IV).
//
// Expected shape: Scale-OIJ's dynamic schedule adapts promptly, giving a
// visibly smoother per-joiner utilization variation than Key-OIJ. The
// harness prints each engine's mean cross-joiner utilization stddev per
// interval — lower and flatter = smoother.

#include <numeric>

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

namespace {

/// Per-interval stddev of utilization across joiners, then summarized.
void Report(const char* label, const EngineStats& stats) {
  const auto& util = stats.utilization;
  if (util.empty()) return;
  size_t intervals = 0;
  for (const auto& s : util) intervals = std::max(intervals, s.size());

  std::vector<double> spread;  // cross-joiner stddev per interval
  for (size_t i = 0; i + 1 < intervals; ++i) {  // drop ragged tail
    std::vector<double> at;
    for (const auto& s : util) at.push_back(i < s.size() ? s[i] : 0.0);
    spread.push_back(StdDev(at));
  }
  if (spread.empty()) return;
  const double mean_spread =
      std::accumulate(spread.begin(), spread.end(), 0.0) /
      static_cast<double>(spread.size());
  std::printf("%-12s intervals=%-4zu mean cross-joiner util stddev=%.3f\n",
              label, spread.size(), mean_spread);
  std::printf("  spread over time:");
  const size_t step = std::max<size_t>(1, spread.size() / 16);
  for (size_t i = 0; i < spread.size(); i += step) {
    std::printf(" %.2f", spread[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintTitle("Fig 14", "CPU utilization smoothness on rotating hot keys");
  PrintNote("u=10K, 90% of traffic on an 8-key hot set re-drawn every "
            "100 ms of event time");

  WorkloadSpec w = SkewedRotating();
  w.hot_set_size = 8;  // sharper skew: ~half the joiners get no hot key
  w.total_tuples = Scaled(2'000'000);  // several rotations per run
  const QuerySpec q = QueryFor(w, EmitMode::kEager);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    EngineOptions options;
    options.num_joiners = 16;
    options.collect_cpu_util = true;
    options.cpu_util_interval_ns = 10'000'000;  // 10 ms
    options.rebalance_interval_events = 16384;
    const RunResult r = RunOnce(kind, w, q, options);
    Report(std::string(EngineKindName(kind)).c_str(), r.stats);
    std::printf("  throughput=%s rebalances=%llu\n",
                HumanRate(r.throughput_tps).c_str(),
                static_cast<unsigned long long>(r.stats.rebalances));
    std::fflush(stdout);
  }
  return 0;
}
