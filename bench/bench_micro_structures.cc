// Google-benchmark microbenchmarks for the substrate data structures:
// the SWMR skip-list / time-travel index against the unsorted-buffer
// strategy Key-OIJ uses, plus the SPSC queue and the incremental window.
// These quantify the constant factors behind the figure-level results.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/spsc_queue.h"
#include "ebr/epoch_manager.h"
#include "mem/node_arena.h"
#include "skiplist/time_travel_index.h"
#include "window/incremental_window.h"

namespace oij {
namespace {

void BM_SkipListInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    SwmrSkipList<Timestamp, Tuple> list;
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      list.Insert(i, Tuple{i, 0, 1.0});
    }
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// Element-count args honor OIJ_BENCH_SCALE (bench::ScaledArg); x-axis
// parameters — batch sizes, allocation byte widths, feed chunk sizes —
// stay fixed, since scaling them would change what the figure measures.
BENCHMARK(BM_SkipListInsert)
    ->Arg(bench::ScaledArg(1000))
    ->Arg(bench::ScaledArg(10000));

void BM_SkipListSeek(benchmark::State& state) {
  const int64_t n = state.range(0);
  SwmrSkipList<Timestamp, Tuple> list;
  for (int64_t i = 0; i < n; ++i) list.Insert(i, Tuple{i, 0, 1.0});
  Rng rng(1);
  for (auto _ : state) {
    const auto it =
        list.SeekGE(static_cast<Timestamp>(rng.NextBelow(n)));
    benchmark::DoNotOptimize(it.Valid());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListSeek)
    ->Arg(bench::ScaledArg(1000))
    ->Arg(bench::ScaledArg(100000));

/// The core asymmetry of the paper: window lookup via index seek+scan vs
/// full scan of an unsorted buffer with a filter. `range(0)` is the
/// buffer population, window fixed at 100 tuples.
void BM_WindowLookup_TimeTravelIndex(benchmark::State& state) {
  const int64_t n = state.range(0);
  TimeTravelIndex index;
  for (int64_t i = 0; i < n; ++i) index.Insert(Tuple{i, 7, 1.0});
  Rng rng(2);
  for (auto _ : state) {
    const Timestamp start =
        static_cast<Timestamp>(rng.NextBelow(n - 100));
    double sum = 0;
    index.ForEachInRange(7, start, start + 99,
                         [&](const Tuple& t) { sum += t.payload; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
// Floor of 1000 keeps the population safely above the fixed 100-tuple
// lookup window even at tiny OIJ_BENCH_SCALE values.
BENCHMARK(BM_WindowLookup_TimeTravelIndex)
    ->Arg(bench::ScaledArg(1000, 1000))
    ->Arg(bench::ScaledArg(10000, 1000))
    ->Arg(bench::ScaledArg(100000, 1000));

void BM_WindowLookup_UnsortedScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<Tuple> buffer;
  Rng shuffle_rng(3);
  for (int64_t i = 0; i < n; ++i) buffer.push_back(Tuple{i, 7, 1.0});
  // Shuffle to model out-of-order arrival.
  for (int64_t i = n - 1; i > 0; --i) {
    std::swap(buffer[i],
              buffer[shuffle_rng.NextBelow(static_cast<uint64_t>(i) + 1)]);
  }
  Rng rng(4);
  for (auto _ : state) {
    const Timestamp start =
        static_cast<Timestamp>(rng.NextBelow(n - 100));
    const Timestamp end = start + 99;
    double sum = 0;
    for (const Tuple& t : buffer) {
      if (t.ts >= start && t.ts <= end) sum += t.payload;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WindowLookup_UnsortedScan)
    ->Arg(bench::ScaledArg(1000, 1000))
    ->Arg(bench::ScaledArg(10000, 1000))
    ->Arg(bench::ScaledArg(100000, 1000));

/// The allocation hot path of the pooled_alloc ablation: steady-state
/// churn of a time-travel index under EBR, interleaved Insert +
/// EvictBefore at a fixed window population — exactly the regime a
/// joiner sits in once its window fills. range(0) toggles the arena
/// (0 = per-node heap alloc + per-node std::function retire, 1 = slab
/// arena + one RetireBatch per eviction run); range(1) is the window
/// population. items/s = inserts/s.
void BM_ChurnInsertEvict(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  const int64_t window = state.range(1);
  constexpr uint64_t kKeys = 8;
  constexpr int64_t kEvictEvery = 256;
  EpochManager ebr(1);
  const uint32_t slot = ebr.RegisterThread();
  NodeArena arena;
  TimeTravelIndex index(&ebr, slot, /*seed=*/0x5eed,
                        pooled ? &arena : nullptr);
  Rng rng(11);
  Timestamp ts = 0;
  for (int64_t i = 0; i < window; ++i) {
    index.Insert(Tuple{ts++, static_cast<Key>(rng.NextBelow(kKeys)), 1.0});
  }
  for (auto _ : state) {
    index.Insert(Tuple{ts, static_cast<Key>(rng.NextBelow(kKeys)), 1.0});
    ++ts;
    if ((ts % kEvictEvery) == 0) {
      index.EvictBefore(ts - window);
      ebr.ReclaimSome(slot);
    }
  }
  benchmark::DoNotOptimize(index.size());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(pooled ? "pooled" : "heap");
}
BENCHMARK(BM_ChurnInsertEvict)
    ->Args({0, bench::ScaledArg(32768, 1024)})
    ->Args({1, bench::ScaledArg(32768, 1024)})
    ->Args({0, bench::ScaledArg(65536, 1024)})
    ->Args({1, bench::ScaledArg(65536, 1024)});

/// The raw allocator pair underneath the churn number: recycle one slot
/// of a fixed live population per iteration, arena vs global heap, at a
/// typical skip-list node size. Isolates allocation cost from list
/// maintenance.
void BM_NodeAllocChurn_Arena(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  const size_t kPopulation =
      static_cast<size_t>(bench::ScaledArg(1024, 64));
  NodeArena arena;
  std::vector<void*> live(kPopulation);
  for (size_t i = 0; i < kPopulation; ++i) live[i] = arena.Allocate(bytes);
  size_t j = 0;
  for (auto _ : state) {
    arena.Deallocate(live[j], bytes);
    live[j] = arena.Allocate(bytes);
    benchmark::DoNotOptimize(live[j]);
    j = (j + 1) % kPopulation;
  }
  for (void* p : live) arena.Deallocate(p, bytes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeAllocChurn_Arena)->Arg(64)->Arg(160);

void BM_NodeAllocChurn_Heap(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  const size_t kPopulation =
      static_cast<size_t>(bench::ScaledArg(1024, 64));
  std::vector<void*> live(kPopulation);
  for (size_t i = 0; i < kPopulation; ++i) live[i] = ::operator new(bytes);
  size_t j = 0;
  for (auto _ : state) {
    ::operator delete(live[j]);
    live[j] = ::operator new(bytes);
    benchmark::DoNotOptimize(live[j]);
    j = (j + 1) % kPopulation;
  }
  for (void* p : live) ::operator delete(p);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeAllocChurn_Heap)->Arg(64)->Arg(160);

void BM_SpscQueueRoundTrip(benchmark::State& state) {
  SpscQueue<Tuple> q(1024);
  Tuple t{1, 2, 3.0};
  Tuple out;
  for (auto _ : state) {
    q.TryPush(t);
    q.TryPop(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscQueueRoundTrip);

/// The tentpole number for the batched transport: tuples/s across a real
/// producer-thread -> consumer-thread hop as a function of transfer batch
/// size (`range(0)`; 1 is the old per-tuple transport). The consumer
/// (benchmark thread) grants the producer credit in kChunk-tuple units so
/// both sides run flat out without unbounded buffering; per-tuple cost is
/// dominated by the shared head/tail cache-line traffic that batching
/// amortizes.
void BM_SpscQueueHopBatched(benchmark::State& state) {
  // Credit-grant unit (work per measured iteration): scalable; the
  // transfer batch size below is the x-axis and stays fixed.
  const int64_t kChunk = bench::ScaledArg(1 << 16, 4096);
  const size_t batch = static_cast<size_t>(state.range(0));
  SpscQueue<Tuple> q(4096);
  std::atomic<int64_t> credits{0};
  std::atomic<bool> done{false};

  std::thread producer([&] {
    std::vector<Tuple> staged(batch);
    for (size_t i = 0; i < batch; ++i) {
      staged[i] = Tuple{static_cast<Timestamp>(i), 2, 3.0};
    }
    while (!done.load(std::memory_order_acquire)) {
      if (credits.load(std::memory_order_acquire) <= 0) {
        std::this_thread::yield();
        continue;
      }
      int64_t remaining = kChunk;
      while (remaining > 0 && !done.load(std::memory_order_relaxed)) {
        const size_t want =
            std::min<int64_t>(remaining, static_cast<int64_t>(batch));
        const size_t pushed = q.PushBatch(staged.data(), want);
        remaining -= static_cast<int64_t>(pushed);
      }
      credits.fetch_sub(kChunk, std::memory_order_acq_rel);
    }
  });

  // The consumer drains at the same granularity it is handed, so Arg(1)
  // reproduces the old per-tuple transport on both sides of the hop.
  std::vector<Tuple> out(batch);
  for (auto _ : state) {
    credits.fetch_add(kChunk, std::memory_order_acq_rel);
    int64_t received = 0;
    while (received < kChunk) {
      received +=
          static_cast<int64_t>(q.PopBatch(out.data(), out.size()));
    }
    benchmark::DoNotOptimize(out.data());
  }
  done.store(true, std::memory_order_release);
  // Unwedge a producer blocked on a full ring.
  Tuple sink;
  while (q.TryPop(&sink)) {
  }
  producer.join();
  state.SetItemsProcessed(state.iterations() * kChunk);
}
BENCHMARK(BM_SpscQueueHopBatched)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->UseRealTime();

/// Single-threaded batch round-trip: isolates the per-operation transport
/// overhead (index loads, release publication, branch + call per element)
/// that batching amortizes, with no scheduler or coherence noise. This is
/// the machine-independent floor of the batching win — on a single-core
/// host the threaded hop above is scheduling-bound and shows ~1x, while
/// this one still shows the amortization directly; on multicore the hop
/// adds the shared-cache-line savings on top.
void BM_SpscQueueBatchRoundTrip(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  SpscQueue<Tuple> q(4096);
  std::vector<Tuple> in(batch), out(batch);
  for (size_t i = 0; i < batch; ++i) {
    in[i] = Tuple{static_cast<Timestamp>(i), 2, 3.0};
  }
  for (auto _ : state) {
    if (batch == 1) {
      q.TryPush(in[0]);  // the old per-tuple transport, exactly
      q.TryPop(&out[0]);
    } else {
      q.PushBatch(in.data(), batch);
      q.PopBatch(out.data(), batch);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpscQueueBatchRoundTrip)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

/// Incremental slide vs full recompute over a dense store; `range(0)` is
/// the window population, slide step fixed at 16 tuples.
void BM_IncrementalSlide(benchmark::State& state) {
  const int64_t window = state.range(0);
  TimeTravelIndex index;
  const int64_t n = window * 20;
  for (int64_t i = 0; i < n; ++i) index.Insert(Tuple{i, 1, 1.0});
  auto scan = [&](Timestamp lo, Timestamp hi, auto&& fn) {
    index.ForEachInRange(1, lo, hi, fn);
  };
  IncrementalWindowState st;
  Timestamp start = 0;
  for (auto _ : state) {
    st.Slide(start, start + window - 1, AggKind::kSum, scan);
    benchmark::DoNotOptimize(st.agg().sum);
    start += 16;
    if (start + window >= n) {
      start = 0;
      st.Invalidate();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalSlide)
    ->Arg(bench::ScaledArg(1000))
    ->Arg(bench::ScaledArg(10000));

void BM_FullRecompute(benchmark::State& state) {
  const int64_t window = state.range(0);
  TimeTravelIndex index;
  const int64_t n = window * 20;
  for (int64_t i = 0; i < n; ++i) index.Insert(Tuple{i, 1, 1.0});
  Timestamp start = 0;
  for (auto _ : state) {
    AggState agg;
    index.ForEachInRange(1, start, start + window - 1,
                         [&](const Tuple& t) { agg.Add(t.payload); });
    benchmark::DoNotOptimize(agg.sum);
    start += 16;
    if (start + window >= n) start = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullRecompute)
    ->Arg(bench::ScaledArg(1000))
    ->Arg(bench::ScaledArg(10000));

}  // namespace
}  // namespace oij

BENCHMARK_MAIN();
