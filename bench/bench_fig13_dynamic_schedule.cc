// Reproduces Fig 13: the dynamic balanced schedule study.
//   (a) scalability with very few keys (u=5): Key-OIJ vs Scale-OIJ;
//   (b) throughput across key counts;
//   (c) unbalancedness across key counts;
//   (d) LLC misses across key counts (software cache model).
//
// Expected shapes: Scale-OIJ scales despite u < #joiners and keeps
// unbalancedness near zero everywhere; both engines lose throughput at
// very large key counts as the footprint (#keys x window) outgrows the
// cache.

#include "bench_util.h"
#include "metrics/cache_sim.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 13a", "scalability with u=5 keys");
  std::printf("%-10s", "engine");
  for (uint32_t t : ThreadSweep()) std::printf("  j=%-10u", t);
  std::printf("\n");
  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    WorkloadSpec w = DefaultSynthetic();
    w.num_keys = 5;
    w.total_tuples = Scaled(400'000);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);
    std::printf("%-10s", std::string(EngineKindName(kind)).c_str());
    for (uint32_t threads : ThreadSweep()) {
      EngineOptions options;
      options.num_joiners = threads;
      options.rebalance_interval_events = 16384;
      const RunResult r = RunOnce(kind, w, q, options);
      std::printf("  %-12s", HumanRate(r.throughput_tps).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  PrintTitle("Fig 13b/c/d", "key-count sweep: throughput, unbalancedness, "
                            "LLC miss (16 joiners)");
  std::printf("%-10s %14s %14s %10s %10s %12s %12s\n", "keys", "key-oij",
              "scale-oij", "unb(key)", "unb(scale)", "llc(key)%",
              "llc(scale)%");
  for (uint64_t keys : {10ULL, 100ULL, 1000ULL, 10'000ULL, 100'000ULL}) {
    WorkloadSpec w = DefaultSynthetic();
    w.num_keys = keys;
    w.total_tuples = Scaled(400'000);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);

    double tput[2], unb[2], llc[2];
    int i = 0;
    for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
      CacheSim sim;
      EngineOptions options;
      options.num_joiners = 16;
      options.cache_sim = &sim;
      options.cache_sample_period = 8;
      options.rebalance_interval_events = 16384;
      const RunResult r = RunOnce(kind, w, q, options);
      tput[i] = r.throughput_tps;
      unb[i] = r.stats.ActualUnbalancedness();
      llc[i] = sim.MissRatio() * 100.0;
      ++i;
    }
    std::printf("%-10llu %14s %14s %10.3f %10.3f %11.1f%% %11.1f%%\n",
                static_cast<unsigned long long>(keys),
                HumanRate(tput[0]).c_str(), HumanRate(tput[1]).c_str(),
                unb[0], unb[1], llc[0], llc[1]);
    std::fflush(stdout);
  }
  return 0;
}
