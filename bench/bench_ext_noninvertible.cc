// Extension bench (paper future work: "incremental computing for
// non-invertible operators"): max() windows with the Two-Stacks
// incremental state vs full recomputation, across window sizes.
//
// Expected shape: like Fig 16 but for a non-invertible operator — full
// recomputation collapses with window size while Two-Stacks stays flat,
// at the cost of the FIFO's memory.

#include <algorithm>

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Ext/two-stacks",
             "incremental max() (non-invertible) vs window size");
  std::printf("%-14s %18s %18s %14s\n", "window", "recompute",
              "two-stacks", "visits/op");

  for (Timestamp window : {1000LL, 10'000LL, 50'000LL, 100'000LL}) {
    WorkloadSpec w = DefaultSynthetic();
    w.window = IntervalWindow{window, 0};
    w.total_tuples = Scaled(std::max<uint64_t>(
        400'000, static_cast<uint64_t>(window) * 4));
    QuerySpec q = QueryFor(w, EmitMode::kEager, AggKind::kMax);

    EngineOptions options;
    options.num_joiners = 16;

    options.incremental_agg = false;
    const RunResult full = RunOnce(EngineKind::kScaleOij, w, q, options);
    options.incremental_agg = true;
    const RunResult inc = RunOnce(EngineKind::kScaleOij, w, q, options);

    const double visits_per_op =
        inc.stats.join_ops == 0
            ? 0.0
            : static_cast<double>(inc.stats.visited) /
                  static_cast<double>(inc.stats.join_ops);
    std::printf("%-14s %18s %18s %14.1f\n",
                HumanDurationUs(static_cast<double>(window)).c_str(),
                HumanRate(full.throughput_tps).c_str(),
                HumanRate(inc.throughput_tps).c_str(), visits_per_op);
    std::fflush(stdout);
  }
  return 0;
}
