// Google-benchmark microbenchmarks for the wire protocol: frame
// encode/decode throughput in tuples per second, which bounds how fast
// the serving layer can move a stream through one connection before the
// join itself even runs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "net/wire_codec.h"

namespace oij {
namespace {

std::vector<StreamEvent> MakeEvents(size_t n) {
  Rng rng(7);
  std::vector<StreamEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StreamEvent ev;
    ev.stream = (rng.NextBelow(2) != 0) ? StreamId::kProbe : StreamId::kBase;
    ev.tuple.ts = static_cast<Timestamp>(i);
    ev.tuple.key = rng.NextBelow(1024);
    ev.tuple.payload = static_cast<double>(rng.NextBelow(1000)) / 8.0;
    events.push_back(ev);
  }
  return events;
}

void BM_EncodeTupleFrames(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto events = MakeEvents(n);
  std::string out;
  for (auto _ : state) {
    out.clear();
    for (const StreamEvent& ev : events) AppendTupleFrame(&out, ev);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
// Frame counts honor OIJ_BENCH_SCALE; the chunked-feed chunk size below
// does not — it is the x-axis (MTU-sized vs large reads).
BENCHMARK(BM_EncodeTupleFrames)
    ->Arg(bench::ScaledArg(1024))
    ->Arg(bench::ScaledArg(65536));

void BM_DecodeTupleFrames(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto events = MakeEvents(n);
  std::string stream;
  for (const StreamEvent& ev : events) AppendTupleFrame(&stream, ev);
  for (auto _ : state) {
    WireDecoder decoder;
    decoder.Feed(stream);
    WireFrame frame;
    uint64_t decoded = 0;
    while (decoder.Next(&frame) == WireDecoder::Result::kFrame) ++decoded;
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_DecodeTupleFrames)
    ->Arg(bench::ScaledArg(1024))
    ->Arg(bench::ScaledArg(65536));

/// Decode under realistic TCP segmentation: the same byte stream fed in
/// fixed-size chunks, exercising the decoder's buffering/compaction path
/// rather than the single-contiguous-feed fast path.
void BM_DecodeChunkedFeed(benchmark::State& state) {
  const size_t chunk = static_cast<size_t>(state.range(0));
  const auto events =
      MakeEvents(static_cast<size_t>(bench::ScaledArg(65536)));
  std::string stream;
  for (const StreamEvent& ev : events) AppendTupleFrame(&stream, ev);
  for (auto _ : state) {
    WireDecoder decoder;
    WireFrame frame;
    uint64_t decoded = 0;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      decoder.Feed(stream.data() + off,
                   std::min(chunk, stream.size() - off));
      while (decoder.Next(&frame) == WireDecoder::Result::kFrame) ++decoded;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_DecodeChunkedFeed)->Arg(1460)->Arg(16384);

void BM_ResultFrameRoundTrip(benchmark::State& state) {
  JoinResult result;
  result.base = Tuple{12345, 42, 3.5};
  result.aggregate = 99.5;
  result.match_count = 17;
  result.arrival_us = 1'000'000;
  result.emit_us = 1'000'500;
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    AppendResultFrame(&bytes, result);
    WireDecoder decoder;
    decoder.Feed(bytes);
    WireFrame frame;
    decoder.Next(&frame);
    benchmark::DoNotOptimize(frame.result.aggregate);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResultFrameRoundTrip);

}  // namespace
}  // namespace oij

BENCHMARK_MAIN();
