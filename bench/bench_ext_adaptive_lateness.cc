// Extension bench (paper future work: "tunable accuracy without prior
// knowledge (i.e., lateness)"): the adaptive watermark policy sweeps its
// target quantile and reports the lag it settles on, the accuracy it
// achieves (1 - fraction of tuples arriving behind an emitted watermark),
// and the buffering cost, against the oracle fixed-lateness baseline.
//
// Expected shape: accuracy and lag trade off monotonically; quantile 1.0
// with safety headroom reaches exactness with a lag close to the true
// disorder bound, without being told it.

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Ext/adaptive", "quantile-driven lateness vs fixed oracle");

  WorkloadSpec w = DefaultSynthetic();
  w.lateness_us = 10'000;  // true disorder bound: 10 ms
  w.disorder_bound_us = 10'000;
  w.total_tuples = Scaled(400'000);
  QuerySpec q = QueryFor(w, EmitMode::kWatermark);

  std::printf("%-22s %12s %12s %14s %14s\n", "policy", "lag", "accuracy",
              "throughput", "peak-buffered");

  struct Policy {
    const char* label;
    bool adaptive;
    double quantile;
    double safety;
  };
  const Policy policies[] = {
      {"fixed (oracle 10ms)", false, 0, 0},
      {"adaptive q=0.90 s=1", true, 0.90, 1.0},
      {"adaptive q=0.99 s=1", true, 0.99, 1.0},
      {"adaptive q=0.999 s=1.5", true, 0.999, 1.5},
      {"adaptive q=1.0 s=2", true, 1.0, 2.0},
  };

  for (const Policy& p : policies) {
    PipelineConfig config;
    config.adaptive_lateness = p.adaptive;
    config.adaptive.quantile = p.quantile;
    config.adaptive.safety_factor = p.safety;

    NullSink sink;
    EngineOptions options;
    options.num_joiners = 8;
    auto engine =
        CreateEngine(EngineKind::kScaleOij, q, options, &sink);
    WorkloadGenerator gen(w);
    const RunResult r = RunPipeline(engine.get(), &gen, config);

    const double accuracy =
        1.0 - static_cast<double>(r.watermark_violations) /
                  static_cast<double>(r.tuples);
    std::printf("%-22s %12s %11.4f%% %14s %14s\n", p.label,
                p.adaptive
                    ? HumanDurationUs(
                          static_cast<double>(r.final_adaptive_lag_us))
                          .c_str()
                    : HumanDurationUs(static_cast<double>(w.lateness_us))
                          .c_str(),
                accuracy * 100.0, HumanRate(r.throughput_tps).c_str(),
                HumanCount(static_cast<double>(
                               r.stats.peak_buffered_tuples))
                    .c_str());
    std::fflush(stdout);
  }
  return 0;
}
