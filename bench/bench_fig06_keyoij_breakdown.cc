// Reproduces Fig 6: Key-OIJ processing-time breakdown (lookup / match /
// other) under Workloads A-D.
//
// Expected shapes: match dominates when the window is large (B); lookup
// dominates when lateness is large (C).

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 6", "Key-OIJ time breakdown on Workloads A-D");

  std::printf("%-10s %10s %10s %10s\n", "workload", "lookup%", "match%",
              "other%");
  for (WorkloadSpec w : RealWorkloads()) {
    w.total_tuples = Scaled(w.name == "B" ? 200'000 : 300'000);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);
    EngineOptions options;
    options.num_joiners = 4;
    const RunResult r =
        RunOnce(EngineKind::kKeyOij, Unpaced(w), q, options);
    std::printf("%-10s %9.1f%% %9.1f%% %9.1f%%\n", w.name.c_str(),
                r.stats.breakdown.lookup_fraction() * 100,
                r.stats.breakdown.match_fraction() * 100,
                r.stats.breakdown.other_fraction() * 100);
    std::fflush(stdout);
  }
  return 0;
}
