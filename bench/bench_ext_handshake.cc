// Extension bench: the handshake-join family (related work the paper
// discusses but does not evaluate) against all evaluated engines, on
// Workload A and the adversarial Table V workload.
//
// Expected shapes: handshake's storage is naturally balanced (low
// unbalancedness even with 5 keys) and it avoids SplitJoin's broadcast,
// but every base tuple traverses the whole chain, so result latency grows
// with the joiner count and per-tuple forwarding caps throughput.

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Ext/handshake", "handshake join vs the evaluated engines");

  for (const char* preset : {"A", "adversarial"}) {
    WorkloadSpec w;
    FindPreset(preset, &w);
    w.total_tuples = Scaled(300'000);
    const WorkloadSpec tw = Unpaced(w);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);

    std::printf("\nworkload %s:\n%-14s", w.name.c_str(), "engine");
    for (uint32_t t : ThreadSweep()) std::printf("  j=%-10u", t);
    std::printf("  %-12s %-10s\n", "p99-latency", "unbalanced");
    for (EngineKind kind :
         {EngineKind::kKeyOij, EngineKind::kScaleOij,
          EngineKind::kSplitJoin, EngineKind::kHandshake}) {
      std::printf("%-14s", std::string(EngineKindName(kind)).c_str());
      EngineStats last;
      for (uint32_t threads : ThreadSweep()) {
        EngineOptions options;
        options.num_joiners = threads;
        const RunResult r = RunOnce(kind, tw, q, options);
        std::printf("  %-12s", HumanRate(r.throughput_tps).c_str());
        std::fflush(stdout);
        last = r.stats;
      }
      std::printf("  %-12s %-10.3f\n",
                  HumanDurationUs(static_cast<double>(
                                      last.latency.Percentile(0.99)))
                      .c_str(),
                  last.ActualUnbalancedness());
    }
  }
  return 0;
}
