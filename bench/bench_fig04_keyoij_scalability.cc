// Reproduces Fig 4: Key-OIJ throughput vs number of joiner threads under
// the four real-world workloads A-D.
//
// Expected shapes (paper Section IV-A):
//  - A: no scaling past 5 threads (only 5 keys -> 5 busy joiners);
//  - B: much lower absolute throughput (large window);
//  - C: scales, but low per-core throughput (lateness-bloated scans);
//  - D: saturates at the 15 K/s arrival rate with few cores.

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 4", "Key-OIJ scalability on Workloads A-D");
  PrintNote("throughput in input tuples/s; paced workloads run unthrottled "
            "to expose engine capacity");

  std::printf("%-10s", "workload");
  for (uint32_t t : ThreadSweep()) std::printf("  j=%-10u", t);
  std::printf("\n");

  for (WorkloadSpec w : RealWorkloads()) {
    w.total_tuples = Scaled(w.name == "B" ? 200'000 : 300'000);
    const WorkloadSpec run_w = Unpaced(w);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);
    std::printf("%-10s", w.name.c_str());
    for (uint32_t threads : ThreadSweep()) {
      EngineOptions options;
      options.num_joiners = threads;
      const RunResult r = RunOnce(EngineKind::kKeyOij, run_w, q, options);
      std::printf("  %-12s", HumanRate(r.throughput_tps).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
