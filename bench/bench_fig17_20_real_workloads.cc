// Reproduces Figs 17-20: the full comparison on Workloads A-D — Key-OIJ
// vs Scale-OIJ (with and without incremental) vs SplitJoin: throughput
// scalability plus the latency distribution at 16 joiners.
//
// Expected shapes (paper Section V-D):
//  - A: Scale-OIJ >> Key-OIJ; SplitJoin has good latency but far lower
//    throughput (broadcast traffic + full scans);
//  - B: Scale-OIJ with incremental wins big (large window overlap);
//  - C: Scale-OIJ without incremental already wins (index kills the
//    lateness-bloated scans); incremental adds little;
//  - D: similar throughput everywhere (rate-limited), Scale-OIJ lowest
//    latency.

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

namespace {

struct Contender {
  const char* label;
  EngineKind kind;
  bool incremental;
};

constexpr Contender kContenders[] = {
    {"key-oij", EngineKind::kKeyOij, true},
    {"scale-oij", EngineKind::kScaleOij, true},
    {"scale-no-inc", EngineKind::kScaleOij, false},
    {"split-join", EngineKind::kSplitJoin, true},
};

}  // namespace

int main() {
  for (WorkloadSpec w : RealWorkloads()) {
    PrintTitle(("Fig 17-20 / Workload " + w.name).c_str(),
               "throughput scalability + latency CDF");

    // Throughput panel: unthrottled.
    WorkloadSpec tw = Unpaced(w);
    tw.total_tuples = Scaled(w.name == "B" ? 150'000 : 250'000);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);

    std::printf("%-14s", "engine");
    for (uint32_t t : ThreadSweep()) std::printf("  j=%-10u", t);
    std::printf("\n");
    for (const Contender& c : kContenders) {
      std::printf("%-14s", c.label);
      for (uint32_t threads : ThreadSweep()) {
        EngineOptions options;
        options.num_joiners = threads;
        options.incremental_agg = c.incremental;
        const RunResult r = RunOnce(c.kind, tw, q, options);
        std::printf("  %-12s", HumanRate(r.throughput_tps).c_str());
        std::fflush(stdout);
      }
      std::printf("\n");
    }

    // Latency panel: paced at the Table II arrival rate, 16 joiners.
    WorkloadSpec lw = w;
    lw.total_tuples = Scaled(
        w.pace_rate_per_sec > 0 ? w.pace_rate_per_sec * 2 : 250'000);
    std::printf("latency (paced, 16 joiners):\n");
    for (const Contender& c : kContenders) {
      EngineOptions options;
      options.num_joiners = 16;
      options.incremental_agg = c.incremental;
      const RunResult r = RunOnce(c.kind, lw, q, options);
      PrintLatencyRow(c.label, r.stats);
      std::fflush(stdout);
    }
  }
  return 0;
}
