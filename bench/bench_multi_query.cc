// Multi-query shared index: ingest throughput for N standing queries on
// ONE engine (one arena insert per tuple, N window reads) versus the
// same N queries as N independent single-query engines, each ingesting
// its own copy of the stream.
//
// Expected shape: the shared index amortizes the insert/evict/index
// side of the join across all standing queries, so shared-engine ingest
// degrades slowly with N while the independent tier pays the full
// per-tuple cost N times — by 16 queries the shared engine should hold
// a multiple (target: >= 4x) of the independent aggregate.
//
// The stream is probe-heavy (probe_fraction 0.9), the feature-serving
// shape multi-query targets: a deep shared history fed continuously,
// with base (request) rows the minority. Base rows cost O(queries) in
// both tiers — each standing query emits its own result per base — so
// probe ingest is where sharing pays, and a 50/50 mix would understate
// it.

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "join/watermark.h"

using namespace oij;
using namespace oij::bench;

namespace {

constexpr uint64_t kWmEvery = 256;

/// The N query specs: one wide primary plus narrower riders with mixed
/// aggregates, all sharing the primary's lateness bound and emit mode.
std::vector<QuerySpec> MakeSpecs(const WorkloadSpec& w, size_t n) {
  std::vector<QuerySpec> specs;
  specs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QuerySpec q = QueryFor(w, EmitMode::kWatermark);
    if (i > 0) {
      q.window.pre = w.window.pre / (1 + static_cast<Timestamp>(i % 4));
      constexpr AggKind kAggs[] = {AggKind::kSum, AggKind::kCount,
                                   AggKind::kAvg, AggKind::kMax};
      q.agg = kAggs[i % 4];
    }
    specs.push_back(q);
  }
  return specs;
}

/// Pushes the whole stream with the usual observe-then-punctuate
/// cadence and returns wall seconds from first push to Finish.
double DriveSeconds(JoinEngine* engine,
                    const std::vector<StreamEvent>& events,
                    Timestamp lateness) {
  WatermarkTracker tracker(lateness);
  const int64_t t0 = MonotonicNowUs();
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % kWmEvery == 0) engine->SignalWatermark(tracker.watermark());
  }
  engine->Finish();
  return static_cast<double>(MonotonicNowUs() - t0) / 1e6;
}

}  // namespace

int main() {
  PrintTitle("multi-query", "shared index vs N independent engines");

  WorkloadSpec w = Unpaced(DefaultSynthetic());
  w.probe_fraction = 0.9;
  w.total_tuples = Scaled(400'000);
  std::vector<StreamEvent> events;
  {
    WorkloadGenerator gen(w);
    StreamEvent ev;
    while (gen.Next(&ev)) events.push_back(ev);
  }

  EngineOptions options;
  options.num_joiners = 4;
  const double tuples = static_cast<double>(events.size());

  std::printf("%-8s %16s %16s %10s\n", "queries", "shared-ingest",
              "indep-ingest", "speedup");
  for (size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const std::vector<QuerySpec> specs = MakeSpecs(w, n);

    // Shared: one engine, one ingest, n standing queries.
    NullSink shared_sink;
    auto shared =
        CreateEngine(EngineKind::kScaleOij, specs[0], options, &shared_sink);
    if (!shared->Start().ok()) return 1;
    for (size_t i = 1; i < n; ++i) {
      if (!shared->AddQuery("q" + std::to_string(i), specs[i]).ok()) return 1;
    }
    const double shared_tps = tuples / DriveSeconds(shared.get(), events,
                                                    specs[0].lateness_us);

    // Independent: n single-query engines, each ingesting the stream.
    double indep_seconds = 0.0;
    for (size_t i = 0; i < n; ++i) {
      NullSink sink;
      auto engine =
          CreateEngine(EngineKind::kScaleOij, specs[i], options, &sink);
      if (!engine->Start().ok()) return 1;
      indep_seconds += DriveSeconds(engine.get(), events,
                                    specs[i].lateness_us);
    }
    const double indep_tps = tuples / indep_seconds;

    std::printf("%-8zu %16s %16s %9.1fx\n", n,
                HumanRate(shared_tps).c_str(), HumanRate(indep_tps).c_str(),
                shared_tps / indep_tps);
    std::fflush(stdout);
  }
  PrintNote("indep-ingest = stream tuples / total time to feed every "
            "engine its own copy; speedup = shared/indep");
  return 0;
}
