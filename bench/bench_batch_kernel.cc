// Columnar batch-join kernel sweep (DESIGN.md §5h): throughput of the
// sweep/SIMD path (EngineOptions::columnar_batch, default on) against the
// byte-for-byte legacy scalar path, as a function of the finalized batch
// size (bases released per watermark) and the distinct-key count.
//
// The driver pushes rounds of a probe-heavy mix — kProbesPerRound probe
// tuples spread across each round, then exactly `batch` base tuples, then
// one watermark releasing precisely that batch — so each drain hands the
// joiner a run of `batch` ready bases and the columnar path (min run 16)
// engages exactly at the batch sizes it is built for. One joiner, so the
// whole run stays in one stage; watermark emit mode, so push order inside
// a round cannot perturb results.
//
// Output: one human-readable block per (engine × keys) and one BENCHJSON
// line per (engine × keys × batch) that tools/bench_to_json.sh collects
// into BENCH_009.json. `speedup` is wall-clock (ingest + join);
// `kernel_speedup` isolates the join phase (lookup_ns + match_ns), which
// is what the columnar kernels replace.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace oij::bench {
namespace {

constexpr Timestamp kRound = 1000;         // time span of one round (us)
constexpr uint32_t kProbesPerRound = 128;  // modest ingest per round...
constexpr Timestamp kWindowPre = 8 * kRound;  // ...but wide windows:
// every base sees ~1024 in-window probes (probe-heavy where it matters —
// in the join), while both modes pay the same small ingest cost.

struct RunOutcome {
  double elapsed_s = 0;
  double kernel_s = 0;  ///< joiner-side lookup + match time
  uint64_t bases = 0;
  EngineStats stats;
};

RunOutcome DriveRounds(EngineKind kind, uint32_t keys, uint32_t batch,
                       bool columnar, uint64_t total_events) {
  QuerySpec query;
  query.window = IntervalWindow{kWindowPre, 0};
  query.lateness_us = 0;
  query.agg = AggKind::kSum;
  query.emit_mode = EmitMode::kWatermark;

  EngineOptions options;
  options.num_joiners = 1;  // the whole batch drains as one staged run
  options.columnar_batch = columnar;
  options.enable_watchdog = false;
  options.collect_breakdown = true;

  NullSink sink;
  auto engine = CreateEngine(kind, query, options, &sink);
  if (!engine->Start().ok()) {
    std::fprintf(stderr, "engine start failed\n");
    return {};
  }

  // Constant events per run (not constant bases): small-batch rounds are
  // probe-dominated and large-batch rounds base-dominated, so sizing by
  // events keeps every configuration long enough to measure.
  const uint64_t rounds = std::max<uint64_t>(
      100, total_events / (kProbesPerRound + batch));
  int64_t arrival_us = 0;
  StreamEvent ev;

  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t r = 0; r < rounds; ++r) {
    const Timestamp start = static_cast<Timestamp>(r) * kRound;
    ev.stream = StreamId::kProbe;
    for (uint32_t i = 0; i < kProbesPerRound; ++i) {
      ev.tuple.ts = start + (static_cast<Timestamp>(i) * kRound) /
                                kProbesPerRound;
      ev.tuple.key = i % keys;
      ev.tuple.payload = static_cast<double>((i * 7) % 100) / 8.0;
      engine->Push(ev, ++arrival_us);
    }
    ev.stream = StreamId::kBase;
    for (uint32_t b = 0; b < batch; ++b) {
      ev.tuple.ts = start + (static_cast<Timestamp>(b) * kRound) / batch;
      ev.tuple.key = b % keys;
      ev.tuple.payload = 1.0;
      engine->Push(ev, ++arrival_us);
    }
    // Releases every base of this round (max base ts == the watermark),
    // nothing from the next (its tuples are strictly younger).
    engine->SignalWatermark(start + kRound - 1);
  }
  RunOutcome out;
  out.stats = engine->Finish();
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  out.kernel_s = static_cast<double>(out.stats.breakdown.lookup_ns +
                                     out.stats.breakdown.match_ns) *
                 1e-9;
  out.bases = rounds * batch;
  return out;
}

void SweepEngine(EngineKind kind, uint32_t keys, uint64_t total_events) {
  PrintNote(std::string(EngineKindName(kind)) + ", " +
            std::to_string(keys) + " keys, " +
            std::to_string(kProbesPerRound) + " probes/round");
  std::printf("%8s %14s %14s %9s %9s %8s\n", "batch", "scalar b/s",
              "columnar b/s", "speedup", "kern spd", "groups");
  for (uint32_t batch : {1u, 4u, 16u, 64u, 256u}) {
    const RunOutcome scalar =
        DriveRounds(kind, keys, batch, /*columnar=*/false, total_events);
    const RunOutcome col =
        DriveRounds(kind, keys, batch, /*columnar=*/true, total_events);
    if (scalar.bases == 0 || col.bases == 0) continue;
    const double scalar_bps =
        static_cast<double>(scalar.bases) / scalar.elapsed_s;
    const double col_bps = static_cast<double>(col.bases) / col.elapsed_s;
    const double speedup = col_bps / scalar_bps;
    const double kernel_speedup =
        col.kernel_s > 0 ? scalar.kernel_s / col.kernel_s : 0.0;
    std::printf("%8u %14.0f %14.0f %8.2fx %8.2fx %8llu\n", batch,
                scalar_bps, col_bps, speedup, kernel_speedup,
                static_cast<unsigned long long>(
                    col.stats.columnar_groups));
    std::printf(
        "BENCHJSON {\"bench\":\"batch_kernel\",\"engine\":\"%s\","
        "\"keys\":%u,\"batch\":%u,\"bases\":%llu,"
        "\"probes_per_round\":%u,"
        "\"scalar_bases_per_sec\":%.0f,\"columnar_bases_per_sec\":%.0f,"
        "\"speedup\":%.3f,\"kernel_speedup\":%.3f,"
        "\"columnar_groups\":%llu,\"columnar_fallbacks\":%llu}\n",
        std::string(EngineKindName(kind)).c_str(), keys, batch,
        static_cast<unsigned long long>(col.bases), kProbesPerRound,
        scalar_bps, col_bps, speedup, kernel_speedup,
        static_cast<unsigned long long>(col.stats.columnar_groups),
        static_cast<unsigned long long>(col.stats.columnar_fallbacks));
  }
}

}  // namespace
}  // namespace oij::bench

int main() {
  using namespace oij;
  using namespace oij::bench;
  PrintTitle("batch_kernel",
             "columnar batch-join kernels vs scalar path (src/col/)");
  const uint64_t total_events = Scaled(2'000'000);
  for (const EngineKind kind :
       {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    for (const uint32_t keys : {4u, 32u}) {  // group sizes batch/4 … batch/32
      SweepEngine(kind, keys, total_events);
    }
  }
  return 0;
}
