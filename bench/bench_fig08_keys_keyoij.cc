// Reproduces Fig 8: the effect of the number of unique keys on Key-OIJ:
// (a) throughput, (b) unbalancedness (Eq. 2) and LLC misses (here: the
// software cache model of metrics/cache_sim).
//
// Expected shapes: few keys -> high unbalancedness -> low throughput;
// many keys -> rising cache misses -> throughput drops again past the
// sweet spot (the non-monotone curve of Fig 8a).

#include "bench_util.h"
#include "metrics/cache_sim.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 8", "number-of-keys effect on Key-OIJ (Table IV workload)");
  std::printf("%-10s %14s %16s %14s\n", "keys", "throughput",
              "unbalancedness", "LLC-miss%");

  for (uint64_t keys : {10ULL, 100ULL, 1000ULL, 10'000ULL, 100'000ULL}) {
    WorkloadSpec w = DefaultSynthetic();
    w.num_keys = keys;
    w.total_tuples = Scaled(400'000);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);
    CacheSim sim;
    EngineOptions options;
    options.num_joiners = 16;
    options.cache_sim = &sim;
    options.cache_sample_period = 8;
    const RunResult r = RunOnce(EngineKind::kKeyOij, w, q, options);
    std::printf("%-10llu %14s %15.3f %13.1f%%\n",
                static_cast<unsigned long long>(keys),
                HumanRate(r.throughput_tps).c_str(),
                r.stats.ActualUnbalancedness(), sim.MissRatio() * 100.0);
    std::fflush(stdout);
  }
  return 0;
}
