// Extension bench: the exactness/latency trade between the two emission
// modes (core/query_spec.h). Eager join-on-arrival gives millisecond
// latency regardless of disorder (the regime the paper's latency figures
// report); watermark gating is exact for any bounded disorder but pays
// the disorder wait in latency.
//
// Expected shape: eager latency is flat as lateness grows; watermark
// latency tracks the lateness bound (event-time wait surfaces as
// wall-clock wait under a paced source). Throughputs stay comparable.

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Ext/emit-modes", "eager vs watermark emission under lateness");
  std::printf("%-12s %-10s %14s %12s %12s\n", "lateness", "mode",
              "throughput", "p50-latency", "p99-latency");

  for (Timestamp lateness : {1000LL, 10'000LL, 100'000LL}) {
    for (EmitMode mode : {EmitMode::kEager, EmitMode::kWatermark}) {
      WorkloadSpec w = DefaultSynthetic();
      w.lateness_us = lateness;
      w.disorder_bound_us = lateness;
      // Pace to half the event rate so the event-time wait is observable
      // in wall-clock latency.
      w.pace_rate_per_sec = 500'000;
      w.total_tuples = Scaled(500'000);
      const QuerySpec q = QueryFor(w, mode);

      EngineOptions options;
      options.num_joiners = 8;
      const RunResult r = RunOnce(EngineKind::kScaleOij, w, q, options);
      std::printf("%-12s %-10s %14s %12s %12s\n",
                  HumanDurationUs(static_cast<double>(lateness)).c_str(),
                  mode == EmitMode::kEager ? "eager" : "watermark",
                  HumanRate(r.throughput_tps).c_str(),
                  HumanDurationUs(static_cast<double>(
                                      r.stats.latency.Percentile(0.50)))
                      .c_str(),
                  HumanDurationUs(static_cast<double>(
                                      r.stats.latency.Percentile(0.99)))
                      .c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
