// Reproduces Fig 16: throughput under growing window sizes with and
// without the incremental (Subtract-on-Evict) interval join.
//
// Expected shape: without the incremental technique throughput collapses
// as the window grows; with it, overlapping windows share aggregation
// work and throughput stays high (Finding 5).

#include <algorithm>

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 16", "incremental window aggregation vs window size");
  std::printf("%-14s %18s %18s %14s\n", "window", "scale(no-inc)",
              "scale(inc)", "inc-visits/op");

  for (Timestamp window : {1000LL, 10'000LL, 50'000LL, 100'000LL}) {
    WorkloadSpec w = DefaultSynthetic();
    w.window = IntervalWindow{window, 0};
    // Cover >= four window lengths so window populations saturate.
    w.total_tuples = Scaled(std::max<uint64_t>(
        400'000, static_cast<uint64_t>(window) * 4));
    const QuerySpec q = QueryFor(w, EmitMode::kEager);

    EngineOptions options;
    options.num_joiners = 16;

    options.incremental_agg = false;
    const RunResult full = RunOnce(EngineKind::kScaleOij, w, q, options);
    options.incremental_agg = true;
    const RunResult inc = RunOnce(EngineKind::kScaleOij, w, q, options);

    const double visits_per_op =
        inc.stats.join_ops == 0
            ? 0.0
            : static_cast<double>(inc.stats.visited) /
                  static_cast<double>(inc.stats.join_ops);
    std::printf("%-14s %18s %18s %14.1f\n",
                HumanDurationUs(static_cast<double>(window)).c_str(),
                HumanRate(full.throughput_tps).c_str(),
                HumanRate(inc.throughput_tps).c_str(), visits_per_op);
    std::fflush(stdout);
  }
  return 0;
}
