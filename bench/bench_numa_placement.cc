// NUMA placement sweep (src/topo/, DESIGN.md §5i): Scale-OIJ throughput
// with joiner teams pinned per socket (`numa auto`) against the flat
// unpinned pool (`numa off`) and a deliberately bad interleaved map that
// stripes adjacent joiners across sockets — the configuration socket-
// blind scheduling converges to, and the one that maximizes cross-node
// index traffic.
//
// Workloads: the Fig-4 real presets A-D (unpaced, so the engine is the
// bottleneck) plus the skewed-rotating "churn" preset, whose migrating
// hot set keeps the rebalancer replicating partitions — the decision the
// topology-aware scheduler biases toward same-socket targets.
//
// On a single-node machine `auto` resolves an inactive plan and the off
// and auto columns must coincide (that degenerate equality is asserted
// by tests/topo_test.cc; here it just shows up as speedup 1.0x). The
// interleave column still exercises the explicit-map machinery there.
//
// Output: one table row per (workload × joiners) and one BENCHJSON line
// per (workload × joiners × mode) for tools/bench_to_json.sh
// (BENCH_010.json).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "topo/topology.h"

namespace oij::bench {
namespace {

/// Explicit joiner->cpu map striding adjacent joiners across nodes
/// (worst-case placement: every team straddles every socket).
std::vector<int> InterleavedMap(const Topology& topo, uint32_t joiners) {
  std::vector<int> map(joiners, -1);
  const size_t nn = topo.num_nodes();
  std::vector<size_t> cursor(nn, 0);
  for (uint32_t j = 0; j < joiners; ++j) {
    const size_t node = j % nn;
    const std::vector<int>& cpus = topo.nodes()[node].cpus;
    map[j] = cpus[cursor[node]++ % cpus.size()];
  }
  return map;
}

struct ModeResult {
  RunResult run;
  const char* mode = "";
};

ModeResult RunMode(const char* mode, const WorkloadSpec& w,
                   const QuerySpec& q, uint32_t joiners,
                   const Topology& topo) {
  EngineOptions options;
  options.num_joiners = joiners;
  if (std::string(mode) == "off") {
    options.numa.mode = NumaMode::kOff;
  } else if (std::string(mode) == "interleave") {
    options.numa.explicit_cpus = InterleavedMap(topo, joiners);
  }  // "auto": defaults
  ModeResult out;
  out.mode = mode;
  out.run = RunOnce(EngineKind::kScaleOij, w, q, options);
  return out;
}

void EmitJson(const std::string& workload, uint32_t joiners,
              const ModeResult& r) {
  const EngineStats& st = r.run.stats;
  std::printf(
      "BENCHJSON {\"bench\":\"numa_placement\",\"workload\":\"%s\","
      "\"mode\":\"%s\",\"joiners\":%u,\"throughput_tps\":%.0f,"
      "\"numa_active\":%s,\"nodes\":%u,"
      "\"cross_replications\":%llu,\"cross_dispatches\":%llu,"
      "\"rebalances\":%llu}\n",
      workload.c_str(), r.mode, joiners, r.run.throughput_tps,
      st.numa_active ? "true" : "false", st.numa_nodes,
      static_cast<unsigned long long>(st.numa_cross_replications),
      static_cast<unsigned long long>(st.numa_cross_dispatches),
      static_cast<unsigned long long>(st.rebalances));
}

void Sweep(const WorkloadSpec& base, const Topology& topo) {
  WorkloadSpec w = Unpaced(base);
  const QuerySpec q = QueryFor(base, EmitMode::kEager);
  for (uint32_t joiners : ThreadSweep()) {
    const ModeResult off = RunMode("off", w, q, joiners, topo);
    const ModeResult pinned = RunMode("auto", w, q, joiners, topo);
    const ModeResult inter = RunMode("interleave", w, q, joiners, topo);
    std::printf("%-10s %4u %14s %14s %14s %8.2fx\n", base.name.c_str(),
                joiners, HumanRate(off.run.throughput_tps).c_str(),
                HumanRate(pinned.run.throughput_tps).c_str(),
                HumanRate(inter.run.throughput_tps).c_str(),
                off.run.throughput_tps > 0
                    ? pinned.run.throughput_tps / off.run.throughput_tps
                    : 0.0);
    std::fflush(stdout);
    EmitJson(base.name, joiners, off);
    EmitJson(base.name, joiners, pinned);
    EmitJson(base.name, joiners, inter);
  }
}

}  // namespace
}  // namespace oij::bench

int main() {
  using namespace oij;
  using namespace oij::bench;
  PrintTitle("numa_placement",
             "socket-pinned joiner teams vs flat pool vs interleaved pins");
  const Topology topo = Topology::Detect();
  PrintNote("detected " + std::to_string(topo.num_nodes()) +
            " NUMA node(s), " + std::to_string(topo.num_cpus()) +
            " usable CPU(s)" + (topo.fallback() ? " [fallback]" : ""));
  PrintNote("throughput in input tuples/s; auto==off is expected on a "
            "single-node machine");

  std::printf("%-10s %4s %14s %14s %14s %9s\n", "workload", "j", "off",
              "auto", "interleave", "auto/off");

  for (WorkloadSpec w : RealWorkloads()) {
    w.total_tuples = Scaled(w.name == "B" ? 150'000 : 250'000);
    Sweep(w, topo);
  }
  // Churn mix: the rotating hot set forces continuous rebalancing, the
  // regime where same-socket replication preference matters most.
  WorkloadSpec churn = SkewedRotating();
  churn.name = "churn";
  churn.total_tuples = Scaled(250'000);
  Sweep(churn, topo);
  return 0;
}
