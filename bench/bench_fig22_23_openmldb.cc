// Reproduces Figs 22-23: Scale-OIJ vs the OpenMLDB-like shared-state
// baseline on Workloads A-D (throughput and latency).
//
// Expected shapes (paper Section V-E): Scale-OIJ far ahead on A/B/C
// (serialized inserts throttle the shared table at high arrival rates; no
// incremental computation for the large window of B); the baseline is
// competitive only on the low-rate Workload D.

#include <array>
#include <utility>
#include <vector>

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 22/23", "Scale-OIJ vs OpenMLDB-like shared state");

  std::printf("%-10s %16s %16s %10s\n", "workload", "openmldb-like",
              "scale-oij", "speedup");
  std::vector<std::pair<std::string, std::array<EngineStats, 2>>> latency;
  for (WorkloadSpec w : RealWorkloads()) {
    WorkloadSpec tw = Unpaced(w);
    tw.total_tuples = Scaled(w.name == "B" ? 150'000 : 250'000);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);

    EngineOptions options;
    options.num_joiners = 8;
    const RunResult shared =
        RunOnce(EngineKind::kSharedState, tw, q, options);
    const RunResult scale = RunOnce(EngineKind::kScaleOij, tw, q, options);
    std::printf("%-10s %16s %16s %9.1fx\n", w.name.c_str(),
                HumanRate(shared.throughput_tps).c_str(),
                HumanRate(scale.throughput_tps).c_str(),
                shared.throughput_tps > 0
                    ? scale.throughput_tps / shared.throughput_tps
                    : 0.0);
    std::fflush(stdout);
    latency.emplace_back(w.name,
                         std::array<EngineStats, 2>{shared.stats,
                                                    scale.stats});
  }

  std::printf("\nlatency (unthrottled runs, 8 workers):\n");
  for (auto& [name, stats] : latency) {
    PrintLatencyRow("W" + name + " openmldb-like", stats[0]);
    PrintLatencyRow("W" + name + " scale-oij", stats[1]);
  }
  return 0;
}
