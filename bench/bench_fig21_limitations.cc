// Reproduces Fig 21 (Table V): the adversarial synthetic workload where
// Key-OIJ is expected to win — u=1000 keys (no skew to fix), |w|=100 us
// (no overlap for incremental to exploit), l=10 us (nothing for the
// time-travel index to skip).
//
// Expected shapes: Key-OIJ best; Scale-OIJ close behind (its machinery
// buys nothing here but costs a little); SplitJoin degrades at high
// thread counts as broadcast overhead dominates the tiny join work.

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 21 / Table V",
             "adversarial synthetic: u=1000, |w|=100us, l=10us");

  WorkloadSpec w = AdversarialSynthetic();
  w.total_tuples = Scaled(500'000);
  const QuerySpec q = QueryFor(w, EmitMode::kEager);

  std::printf("%-14s", "engine");
  for (uint32_t t : ThreadSweep()) std::printf("  j=%-10u", t);
  std::printf("\n");
  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij,
                          EngineKind::kSplitJoin}) {
    std::printf("%-14s", std::string(EngineKindName(kind)).c_str());
    for (uint32_t threads : ThreadSweep()) {
      EngineOptions options;
      options.num_joiners = threads;
      const RunResult r = RunOnce(kind, w, q, options);
      std::printf("  %-12s", HumanRate(r.throughput_tps).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
