// Reproduces Fig 11: the lateness sweep of Fig 7 with Scale-OIJ added.
//
// Expected shape: Key-OIJ throughput decays with lateness; Scale-OIJ is
// almost flat because the time-travel index locates the window boundary
// directly and never visits out-of-window data (Finding 3).

#include "bench_util.h"

using namespace oij;
using namespace oij::bench;

int main() {
  PrintTitle("Fig 11", "lateness: Key-OIJ vs Scale-OIJ (time-travel index)");
  std::printf("%-14s %16s %16s %12s %12s\n", "lateness", "key-oij",
              "scale-oij", "eff(key)", "eff(scale)");

  for (Timestamp lateness : {100LL, 1000LL, 10'000LL, 50'000LL, 100'000LL}) {
    WorkloadSpec w = DefaultSynthetic();
    w.lateness_us = lateness;
    w.disorder_bound_us = lateness;
    w.total_tuples = Scaled(400'000);
    const QuerySpec q = QueryFor(w, EmitMode::kEager);
    EngineOptions options;
    options.num_joiners = 16;

    const RunResult key = RunOnce(EngineKind::kKeyOij, w, q, options);
    // Isolate the index: dynamic schedule + incremental stay on defaults,
    // matching the full Scale-OIJ configuration of the figure.
    const RunResult scale = RunOnce(EngineKind::kScaleOij, w, q, options);

    std::printf("%-14s %16s %16s %12.3f %12.3f\n",
                HumanDurationUs(static_cast<double>(lateness)).c_str(),
                HumanRate(key.throughput_tps).c_str(),
                HumanRate(scale.throughput_tps).c_str(),
                key.stats.Effectiveness(), scale.stats.Effectiveness());
    std::fflush(stdout);
  }
  return 0;
}
