// Google-benchmark microbenchmarks for the write-ahead log: append +
// group-commit throughput per fsync policy, which bounds how much
// durability costs on the ingest hot path. The kNone/kInterval numbers
// isolate the userspace record encode + buffered write; kPerBatch adds
// the real fsync the zero-loss guarantee pays for at every watermark
// barrier.

#include <benchmark/benchmark.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "wal/wal.h"

namespace oij {
namespace {

/// Scratch WAL directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/oij_bench_wal_XXXXXX";
    char* d = mkdtemp(tmpl);
    if (d != nullptr) path_ = d;
  }
  ~TempDir() {
    if (!path_.empty()) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      if (std::system(cmd.c_str()) != 0) {
        std::fprintf(stderr, "warning: failed to remove %s\n", path_.c_str());
      }
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<StreamEvent> MakeEvents(size_t n) {
  Rng rng(11);
  std::vector<StreamEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StreamEvent ev;
    ev.stream = (rng.NextBelow(2) != 0) ? StreamId::kProbe : StreamId::kBase;
    ev.tuple.ts = static_cast<Timestamp>(i);
    ev.tuple.key = rng.NextBelow(1024);
    ev.tuple.payload = static_cast<double>(rng.NextBelow(1000)) / 8.0;
    events.push_back(ev);
  }
  return events;
}

/// Appends `n` tuples with a watermark barrier every 256 (the commit
/// cadence the engines drive), under the given policy and shard count.
void RunAppendLoop(benchmark::State& state, FsyncPolicy policy,
                   uint32_t shards) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto events = MakeEvents(n);
  uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TempDir dir;  // fresh log per iteration: measure appends, not growth
    DurabilityOptions opts;
    opts.wal_dir = dir.path();
    opts.fsync = policy;
    opts.wal_shards = shards;
    WalManager wal(opts, /*num_joiners=*/shards, nullptr);
    if (!wal.Open().ok()) {
      state.SkipWithError("wal open failed");
      break;
    }
    state.ResumeTiming();

    for (size_t i = 0; i < events.size(); ++i) {
      wal.AppendTuple(events[i]);
      wal.CommitGroup(static_cast<int64_t>(i), /*watermark_barrier=*/false);
      if ((i + 1) % 256 == 0) {
        wal.AppendWatermark(static_cast<Timestamp>(i));
        wal.CommitGroup(static_cast<int64_t>(i), /*watermark_barrier=*/true);
      }
    }
    benchmark::DoNotOptimize(wal.StatsSnapshot().appended_records);
    state.PauseTiming();
    bytes = wal.StatsSnapshot().appended_bytes;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}

void BM_WalAppendFsyncNone(benchmark::State& state) {
  RunAppendLoop(state, FsyncPolicy::kNone, 2);
}
// Record counts honor OIJ_BENCH_SCALE. PerBatch fsyncs once per record,
// so even its smaller count dominates wall time on slow disks; the floor
// keeps at least one 256-record watermark barrier in every run.
BENCHMARK(BM_WalAppendFsyncNone)
    ->Arg(bench::ScaledArg(4096, 512))
    ->Arg(bench::ScaledArg(65536, 512));

void BM_WalAppendFsyncInterval(benchmark::State& state) {
  RunAppendLoop(state, FsyncPolicy::kInterval, 2);
}
BENCHMARK(BM_WalAppendFsyncInterval)
    ->Arg(bench::ScaledArg(4096, 512))
    ->Arg(bench::ScaledArg(65536, 512));

void BM_WalAppendFsyncPerBatch(benchmark::State& state) {
  RunAppendLoop(state, FsyncPolicy::kPerBatch, 2);
}
BENCHMARK(BM_WalAppendFsyncPerBatch)->Arg(bench::ScaledArg(4096, 512));

/// Record encoding alone (no file I/O): the pure CPU cost a WAL append
/// adds to the ingest path before any buffering or syscalls.
void BM_WalRecordEncode(benchmark::State& state) {
  const auto events = MakeEvents(4096);
  std::string out;
  for (auto _ : state) {
    out.clear();
    uint64_t lsn = 1;
    for (const StreamEvent& ev : events) {
      AppendWalTupleRecord(&out, lsn++, ev);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_WalRecordEncode);

}  // namespace
}  // namespace oij

BENCHMARK_MAIN();
