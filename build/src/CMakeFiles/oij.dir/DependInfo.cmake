
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/aggregate.cc" "src/CMakeFiles/oij.dir/agg/aggregate.cc.o" "gcc" "src/CMakeFiles/oij.dir/agg/aggregate.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/oij.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/oij.dir/common/hash.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/oij.dir/common/random.cc.o" "gcc" "src/CMakeFiles/oij.dir/common/random.cc.o.d"
  "/root/repo/src/common/rate_limiter.cc" "src/CMakeFiles/oij.dir/common/rate_limiter.cc.o" "gcc" "src/CMakeFiles/oij.dir/common/rate_limiter.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/oij.dir/common/status.cc.o" "gcc" "src/CMakeFiles/oij.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_util.cc" "src/CMakeFiles/oij.dir/common/thread_util.cc.o" "gcc" "src/CMakeFiles/oij.dir/common/thread_util.cc.o.d"
  "/root/repo/src/core/engine_factory.cc" "src/CMakeFiles/oij.dir/core/engine_factory.cc.o" "gcc" "src/CMakeFiles/oij.dir/core/engine_factory.cc.o.d"
  "/root/repo/src/core/feature_set.cc" "src/CMakeFiles/oij.dir/core/feature_set.cc.o" "gcc" "src/CMakeFiles/oij.dir/core/feature_set.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/oij.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/oij.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/query_spec.cc" "src/CMakeFiles/oij.dir/core/query_spec.cc.o" "gcc" "src/CMakeFiles/oij.dir/core/query_spec.cc.o.d"
  "/root/repo/src/core/run_summary.cc" "src/CMakeFiles/oij.dir/core/run_summary.cc.o" "gcc" "src/CMakeFiles/oij.dir/core/run_summary.cc.o.d"
  "/root/repo/src/ebr/epoch_manager.cc" "src/CMakeFiles/oij.dir/ebr/epoch_manager.cc.o" "gcc" "src/CMakeFiles/oij.dir/ebr/epoch_manager.cc.o.d"
  "/root/repo/src/join/engine.cc" "src/CMakeFiles/oij.dir/join/engine.cc.o" "gcc" "src/CMakeFiles/oij.dir/join/engine.cc.o.d"
  "/root/repo/src/join/handshake.cc" "src/CMakeFiles/oij.dir/join/handshake.cc.o" "gcc" "src/CMakeFiles/oij.dir/join/handshake.cc.o.d"
  "/root/repo/src/join/key_oij.cc" "src/CMakeFiles/oij.dir/join/key_oij.cc.o" "gcc" "src/CMakeFiles/oij.dir/join/key_oij.cc.o.d"
  "/root/repo/src/join/reference_join.cc" "src/CMakeFiles/oij.dir/join/reference_join.cc.o" "gcc" "src/CMakeFiles/oij.dir/join/reference_join.cc.o.d"
  "/root/repo/src/join/scale_oij.cc" "src/CMakeFiles/oij.dir/join/scale_oij.cc.o" "gcc" "src/CMakeFiles/oij.dir/join/scale_oij.cc.o.d"
  "/root/repo/src/join/shared_state.cc" "src/CMakeFiles/oij.dir/join/shared_state.cc.o" "gcc" "src/CMakeFiles/oij.dir/join/shared_state.cc.o.d"
  "/root/repo/src/join/split_join.cc" "src/CMakeFiles/oij.dir/join/split_join.cc.o" "gcc" "src/CMakeFiles/oij.dir/join/split_join.cc.o.d"
  "/root/repo/src/metrics/cache_sim.cc" "src/CMakeFiles/oij.dir/metrics/cache_sim.cc.o" "gcc" "src/CMakeFiles/oij.dir/metrics/cache_sim.cc.o.d"
  "/root/repo/src/metrics/cpu_util.cc" "src/CMakeFiles/oij.dir/metrics/cpu_util.cc.o" "gcc" "src/CMakeFiles/oij.dir/metrics/cpu_util.cc.o.d"
  "/root/repo/src/metrics/latency_recorder.cc" "src/CMakeFiles/oij.dir/metrics/latency_recorder.cc.o" "gcc" "src/CMakeFiles/oij.dir/metrics/latency_recorder.cc.o.d"
  "/root/repo/src/metrics/throughput.cc" "src/CMakeFiles/oij.dir/metrics/throughput.cc.o" "gcc" "src/CMakeFiles/oij.dir/metrics/throughput.cc.o.d"
  "/root/repo/src/row/schema.cc" "src/CMakeFiles/oij.dir/row/schema.cc.o" "gcc" "src/CMakeFiles/oij.dir/row/schema.cc.o.d"
  "/root/repo/src/row/stream_binding.cc" "src/CMakeFiles/oij.dir/row/stream_binding.cc.o" "gcc" "src/CMakeFiles/oij.dir/row/stream_binding.cc.o.d"
  "/root/repo/src/sched/partition_table.cc" "src/CMakeFiles/oij.dir/sched/partition_table.cc.o" "gcc" "src/CMakeFiles/oij.dir/sched/partition_table.cc.o.d"
  "/root/repo/src/sched/rebalancer.cc" "src/CMakeFiles/oij.dir/sched/rebalancer.cc.o" "gcc" "src/CMakeFiles/oij.dir/sched/rebalancer.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/oij.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/oij.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/oij.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/oij.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/oij.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/oij.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/CMakeFiles/oij.dir/sql/token.cc.o" "gcc" "src/CMakeFiles/oij.dir/sql/token.cc.o.d"
  "/root/repo/src/stream/generator.cc" "src/CMakeFiles/oij.dir/stream/generator.cc.o" "gcc" "src/CMakeFiles/oij.dir/stream/generator.cc.o.d"
  "/root/repo/src/stream/presets.cc" "src/CMakeFiles/oij.dir/stream/presets.cc.o" "gcc" "src/CMakeFiles/oij.dir/stream/presets.cc.o.d"
  "/root/repo/src/stream/trace.cc" "src/CMakeFiles/oij.dir/stream/trace.cc.o" "gcc" "src/CMakeFiles/oij.dir/stream/trace.cc.o.d"
  "/root/repo/src/stream/workload.cc" "src/CMakeFiles/oij.dir/stream/workload.cc.o" "gcc" "src/CMakeFiles/oij.dir/stream/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
