# Empty dependencies file for oij.
# This may be replaced when dependencies are built.
