file(REMOVE_RECURSE
  "liboij.a"
)
