# Empty dependencies file for ebr_test.
# This may be replaced when dependencies are built.
