# Empty dependencies file for agg_window_test.
# This may be replaced when dependencies are built.
