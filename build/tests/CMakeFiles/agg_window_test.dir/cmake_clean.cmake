file(REMOVE_RECURSE
  "CMakeFiles/agg_window_test.dir/agg_window_test.cc.o"
  "CMakeFiles/agg_window_test.dir/agg_window_test.cc.o.d"
  "agg_window_test"
  "agg_window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
