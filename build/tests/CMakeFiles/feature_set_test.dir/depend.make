# Empty dependencies file for feature_set_test.
# This may be replaced when dependencies are built.
