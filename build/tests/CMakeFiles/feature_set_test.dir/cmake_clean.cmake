file(REMOVE_RECURSE
  "CMakeFiles/feature_set_test.dir/feature_set_test.cc.o"
  "CMakeFiles/feature_set_test.dir/feature_set_test.cc.o.d"
  "feature_set_test"
  "feature_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
