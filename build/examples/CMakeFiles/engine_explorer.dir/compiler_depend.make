# Empty compiler generated dependencies file for engine_explorer.
# This may be replaced when dependencies are built.
