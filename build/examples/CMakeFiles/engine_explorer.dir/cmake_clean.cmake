file(REMOVE_RECURSE
  "CMakeFiles/engine_explorer.dir/engine_explorer.cpp.o"
  "CMakeFiles/engine_explorer.dir/engine_explorer.cpp.o.d"
  "engine_explorer"
  "engine_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
