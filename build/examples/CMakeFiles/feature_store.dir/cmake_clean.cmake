file(REMOVE_RECURSE
  "CMakeFiles/feature_store.dir/feature_store.cpp.o"
  "CMakeFiles/feature_store.dir/feature_store.cpp.o.d"
  "feature_store"
  "feature_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
