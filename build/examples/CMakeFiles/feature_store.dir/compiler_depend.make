# Empty compiler generated dependencies file for feature_store.
# This may be replaced when dependencies are built.
