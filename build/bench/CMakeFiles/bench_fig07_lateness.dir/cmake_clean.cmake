file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_lateness.dir/bench_fig07_lateness.cc.o"
  "CMakeFiles/bench_fig07_lateness.dir/bench_fig07_lateness.cc.o.d"
  "bench_fig07_lateness"
  "bench_fig07_lateness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_lateness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
