# Empty dependencies file for bench_fig07_lateness.
# This may be replaced when dependencies are built.
