# Empty dependencies file for bench_fig06_keyoij_breakdown.
# This may be replaced when dependencies are built.
