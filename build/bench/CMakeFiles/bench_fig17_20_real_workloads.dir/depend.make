# Empty dependencies file for bench_fig17_20_real_workloads.
# This may be replaced when dependencies are built.
