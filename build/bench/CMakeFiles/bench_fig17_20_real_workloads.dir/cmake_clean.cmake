file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_20_real_workloads.dir/bench_fig17_20_real_workloads.cc.o"
  "CMakeFiles/bench_fig17_20_real_workloads.dir/bench_fig17_20_real_workloads.cc.o.d"
  "bench_fig17_20_real_workloads"
  "bench_fig17_20_real_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_20_real_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
