file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_keyoij_latency.dir/bench_fig05_keyoij_latency.cc.o"
  "CMakeFiles/bench_fig05_keyoij_latency.dir/bench_fig05_keyoij_latency.cc.o.d"
  "bench_fig05_keyoij_latency"
  "bench_fig05_keyoij_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_keyoij_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
