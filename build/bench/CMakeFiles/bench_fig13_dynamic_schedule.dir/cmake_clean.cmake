file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_dynamic_schedule.dir/bench_fig13_dynamic_schedule.cc.o"
  "CMakeFiles/bench_fig13_dynamic_schedule.dir/bench_fig13_dynamic_schedule.cc.o.d"
  "bench_fig13_dynamic_schedule"
  "bench_fig13_dynamic_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_dynamic_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
