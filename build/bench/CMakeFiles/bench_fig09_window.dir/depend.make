# Empty dependencies file for bench_fig09_window.
# This may be replaced when dependencies are built.
