# Empty dependencies file for bench_fig04_keyoij_scalability.
# This may be replaced when dependencies are built.
