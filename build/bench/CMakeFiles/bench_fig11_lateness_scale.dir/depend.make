# Empty dependencies file for bench_fig11_lateness_scale.
# This may be replaced when dependencies are built.
