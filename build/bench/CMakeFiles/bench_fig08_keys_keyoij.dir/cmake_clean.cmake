file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_keys_keyoij.dir/bench_fig08_keys_keyoij.cc.o"
  "CMakeFiles/bench_fig08_keys_keyoij.dir/bench_fig08_keys_keyoij.cc.o.d"
  "bench_fig08_keys_keyoij"
  "bench_fig08_keys_keyoij.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_keys_keyoij.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
