# Empty dependencies file for bench_fig08_keys_keyoij.
# This may be replaced when dependencies are built.
