file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_23_openmldb.dir/bench_fig22_23_openmldb.cc.o"
  "CMakeFiles/bench_fig22_23_openmldb.dir/bench_fig22_23_openmldb.cc.o.d"
  "bench_fig22_23_openmldb"
  "bench_fig22_23_openmldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_23_openmldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
