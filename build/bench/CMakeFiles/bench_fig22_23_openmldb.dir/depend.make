# Empty dependencies file for bench_fig22_23_openmldb.
# This may be replaced when dependencies are built.
