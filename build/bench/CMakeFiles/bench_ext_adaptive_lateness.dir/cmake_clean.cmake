file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_adaptive_lateness.dir/bench_ext_adaptive_lateness.cc.o"
  "CMakeFiles/bench_ext_adaptive_lateness.dir/bench_ext_adaptive_lateness.cc.o.d"
  "bench_ext_adaptive_lateness"
  "bench_ext_adaptive_lateness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adaptive_lateness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
