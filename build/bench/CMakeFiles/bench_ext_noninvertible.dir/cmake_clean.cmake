file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_noninvertible.dir/bench_ext_noninvertible.cc.o"
  "CMakeFiles/bench_ext_noninvertible.dir/bench_ext_noninvertible.cc.o.d"
  "bench_ext_noninvertible"
  "bench_ext_noninvertible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_noninvertible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
