# Empty compiler generated dependencies file for bench_ext_noninvertible.
# This may be replaced when dependencies are built.
