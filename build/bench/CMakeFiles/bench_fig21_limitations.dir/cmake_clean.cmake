file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_limitations.dir/bench_fig21_limitations.cc.o"
  "CMakeFiles/bench_fig21_limitations.dir/bench_fig21_limitations.cc.o.d"
  "bench_fig21_limitations"
  "bench_fig21_limitations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_limitations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
