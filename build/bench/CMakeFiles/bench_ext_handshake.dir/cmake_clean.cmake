file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_handshake.dir/bench_ext_handshake.cc.o"
  "CMakeFiles/bench_ext_handshake.dir/bench_ext_handshake.cc.o.d"
  "bench_ext_handshake"
  "bench_ext_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
