# Empty compiler generated dependencies file for bench_ext_handshake.
# This may be replaced when dependencies are built.
