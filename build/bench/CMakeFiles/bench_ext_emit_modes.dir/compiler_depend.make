# Empty compiler generated dependencies file for bench_ext_emit_modes.
# This may be replaced when dependencies are built.
