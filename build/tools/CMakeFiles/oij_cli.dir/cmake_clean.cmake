file(REMOVE_RECURSE
  "CMakeFiles/oij_cli.dir/oij_cli.cc.o"
  "CMakeFiles/oij_cli.dir/oij_cli.cc.o.d"
  "oij_cli"
  "oij_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oij_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
