# Empty compiler generated dependencies file for oij_cli.
# This may be replaced when dependencies are built.
