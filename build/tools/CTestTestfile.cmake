# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(oij_cli_config "/root/repo/build/tools/oij_cli" "config" "A")
set_tests_properties(oij_cli_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oij_cli_usage "/root/repo/build/tools/oij_cli")
set_tests_properties(oij_cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(oij_cli_run "/root/repo/build/tools/oij_cli" "run" "adversarial" "key-oij" "2" "20000")
set_tests_properties(oij_cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
