#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"
#include "mem/node_arena.h"
#include "skiplist/swmr_skiplist.h"
#include "skiplist/time_travel_index.h"

namespace oij {
namespace {

// ----------------------------------------------------------- basic shape

TEST(SwmrSkipListTest, EmptyList) {
  SwmrSkipList<int64_t, int> list;
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.Begin().Valid());
  EXPECT_FALSE(list.SeekGE(0).Valid());
  EXPECT_EQ(list.FindEqual(0), nullptr);
}

TEST(SwmrSkipListTest, InsertAndFind) {
  SwmrSkipList<int64_t, int> list;
  list.Insert(5, 50);
  list.Insert(1, 10);
  list.Insert(3, 30);
  EXPECT_EQ(list.size(), 3u);
  ASSERT_NE(list.FindEqual(3), nullptr);
  EXPECT_EQ(*list.FindEqual(3), 30);
  EXPECT_EQ(list.FindEqual(2), nullptr);
  EXPECT_EQ(*list.FindEqual(1), 10);
  EXPECT_EQ(*list.FindEqual(5), 50);
}

TEST(SwmrSkipListTest, IterationIsSorted) {
  SwmrSkipList<int64_t, int> list;
  Rng rng(11);
  std::multimap<int64_t, int> model;
  for (int i = 0; i < 2000; ++i) {
    const int64_t k = static_cast<int64_t>(rng.NextBelow(500));
    list.Insert(k, i);
    model.emplace(k, i);
  }
  int64_t prev = -1;
  size_t n = 0;
  for (auto it = list.Begin(); it.Valid(); it.Next()) {
    EXPECT_GE(it.key(), prev);
    prev = it.key();
    ++n;
  }
  EXPECT_EQ(n, model.size());
  EXPECT_EQ(list.size(), model.size());
}

TEST(SwmrSkipListTest, SeekGEFindsLowerBound) {
  SwmrSkipList<int64_t, int> list;
  for (int64_t k : {10, 20, 30, 40}) list.Insert(k, static_cast<int>(k));
  EXPECT_EQ(list.SeekGE(5).key(), 10);
  EXPECT_EQ(list.SeekGE(10).key(), 10);
  EXPECT_EQ(list.SeekGE(11).key(), 20);
  EXPECT_EQ(list.SeekGE(40).key(), 40);
  EXPECT_FALSE(list.SeekGE(41).Valid());
}

TEST(SwmrSkipListTest, DuplicateKeysAllRetained) {
  SwmrSkipList<int64_t, int> list;
  list.Insert(7, 1);
  list.Insert(7, 2);
  list.Insert(7, 3);
  EXPECT_EQ(list.size(), 3u);
  int count = 0;
  for (auto it = list.SeekGE(7); it.Valid() && it.key() == 7; it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 3);
}

// -------------------------------------------------------------- eviction

TEST(SwmrSkipListTest, EvictBeforeRemovesPrefixOnly) {
  SwmrSkipList<int64_t, int> list;
  for (int64_t k = 0; k < 100; ++k) list.Insert(k, static_cast<int>(k));
  EXPECT_EQ(list.EvictBefore(50), 50u);
  EXPECT_EQ(list.size(), 50u);
  EXPECT_EQ(list.Begin().key(), 50);
  EXPECT_EQ(list.FindEqual(49), nullptr);
  ASSERT_NE(list.FindEqual(50), nullptr);
  // Evicting again at the same bound is a no-op.
  EXPECT_EQ(list.EvictBefore(50), 0u);
  // Everything.
  EXPECT_EQ(list.EvictBefore(1000), 50u);
  EXPECT_TRUE(list.empty());
}

TEST(SwmrSkipListTest, EvictCallbackSeesRemovedEntries) {
  SwmrSkipList<int64_t, int> list;
  for (int64_t k = 0; k < 10; ++k) list.Insert(k, static_cast<int>(k * 2));
  std::vector<int64_t> removed;
  list.EvictBefore(4, [&](const int64_t& k, const int& v) {
    removed.push_back(k);
    EXPECT_EQ(v, k * 2);
  });
  EXPECT_EQ(removed, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(SwmrSkipListTest, EvictWithEbrDefersFree) {
  EpochManager ebr(2);
  const uint32_t writer = ebr.RegisterThread();
  const uint32_t reader = ebr.RegisterThread();
  SwmrSkipList<int64_t, int> list(&ebr, writer);
  for (int64_t k = 0; k < 10; ++k) list.Insert(k, 0);

  ebr.Enter(reader);
  EXPECT_EQ(list.EvictBefore(5), 5u);
  // Nodes retired but not freed while the reader is pinned.
  EXPECT_EQ(ebr.PendingCount(writer), 5u);
  ebr.Exit(reader);
  for (int i = 0; i < 8 && ebr.PendingCount(writer) > 0; ++i) {
    ebr.ReclaimSome(writer);
  }
  EXPECT_EQ(ebr.PendingCount(writer), 0u);
}

// ------------------------------------------------ arena-backed allocation

TEST(SwmrSkipListTest, ArenaBackedListMatchesHeapBehavior) {
  NodeArena arena;
  SwmrSkipList<int64_t, int> list(/*ebr=*/nullptr, 0, 0x5eed, &arena);
  for (int64_t k = 0; k < 1000; ++k) list.Insert(k, static_cast<int>(k));
  EXPECT_GT(arena.snapshot().live_nodes, 1000u);  // nodes + head
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(list.FindEqual(k), nullptr);
    EXPECT_EQ(*list.FindEqual(k), static_cast<int>(k));
  }
  // Without EBR, eviction frees straight back into the arena.
  EXPECT_EQ(list.EvictBefore(500), 500u);
  EXPECT_EQ(arena.snapshot().live_nodes, 501u);  // 500 keys + head
  EXPECT_EQ(list.Begin().key(), 500);
}

TEST(SwmrSkipListTest, ArenaEvictWithEbrRetiresOneRunAndDrainsAll) {
  EpochManager ebr(2);
  const uint32_t writer = ebr.RegisterThread();
  const uint32_t reader = ebr.RegisterThread();
  NodeArena arena;
  SwmrSkipList<int64_t, int> list(&ebr, writer, 0x5eed, &arena);
  for (int64_t k = 0; k < 10; ++k) list.Insert(k, 0);
  const uint64_t live_before = arena.snapshot().live_nodes;

  ebr.Enter(reader);
  EXPECT_EQ(list.EvictBefore(5), 5u);
  // One run, counted member-wise; nothing returns to the arena while the
  // reader is pinned.
  EXPECT_EQ(ebr.PendingCount(writer), 5u);
  EXPECT_EQ(arena.snapshot().live_nodes, live_before);
  ebr.Exit(reader);
  for (int i = 0; i < 8 && ebr.PendingCount(writer) > 0; ++i) {
    ebr.ReclaimSome(writer);
  }
  EXPECT_EQ(ebr.PendingCount(writer), 0u);
  EXPECT_EQ(arena.snapshot().live_nodes, live_before - 5);
}

TEST(SwmrSkipListTest, ArenaChurnReachesFixedFootprint) {
  // Steady-state insert+evict must recycle arena memory, not grow it.
  EpochManager ebr(1);
  const uint32_t writer = ebr.RegisterThread();
  NodeArena arena;
  SwmrSkipList<int64_t, int64_t> list(&ebr, writer, 0x5eed, &arena);
  constexpr int64_t kWindow = 4096;
  for (int64_t k = 0; k < kWindow; ++k) list.Insert(k, k);
  // Let the first full window settle (epochs drain), then measure.
  for (int i = 0; i < 8; ++i) ebr.ReclaimSome(writer);
  uint64_t reserved_baseline = 0;
  for (int64_t k = kWindow; k < 20 * kWindow; ++k) {
    list.Insert(k, k);
    if ((k & 255) == 0) {
      list.EvictBefore(k - kWindow);
      ebr.ReclaimSome(writer);
      if (k == 4 * kWindow) {
        reserved_baseline = arena.snapshot().reserved_bytes;
      }
    }
  }
  ASSERT_GT(reserved_baseline, 0u);
  // Allow one slab of slack per size class for freelist skew.
  EXPECT_LE(arena.snapshot().reserved_bytes,
            reserved_baseline + 4 * NodeArena::kSlabBytes)
      << "steady-state churn kept growing the arena";
  // Collapse the window: emptied slabs must return to the arena pool.
  list.EvictBefore(std::numeric_limits<int64_t>::max());
  ebr.ReclaimAllUnsafe(writer);
  EXPECT_GT(arena.snapshot().slab_recycles, 0u);
}

TEST(SwmrSkipListTest, ArenaRandomWorkloadMatchesModel) {
  // The arena-backed list must stay a drop-in: mirror random inserts and
  // prefix evictions against a multimap model.
  NodeArena arena;
  SwmrSkipList<int64_t, int> list(/*ebr=*/nullptr, 0, 0x1234, &arena);
  std::multimap<int64_t, int> model;
  Rng rng(77);
  int64_t floor = 0;
  for (int i = 0; i < 20000; ++i) {
    const int64_t k =
        floor + static_cast<int64_t>(rng.NextBelow(2000));
    list.Insert(k, i);
    model.emplace(k, i);
    if (rng.NextBelow(64) == 0) {
      floor += static_cast<int64_t>(rng.NextBelow(200));
      const size_t removed = list.EvictBefore(floor);
      const auto end = model.lower_bound(floor);
      const size_t model_removed =
          static_cast<size_t>(std::distance(model.begin(), end));
      model.erase(model.begin(), end);
      EXPECT_EQ(removed, model_removed);
    }
  }
  EXPECT_EQ(list.size(), model.size());
  auto mit = model.begin();
  for (auto it = list.Begin(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key(), mit->first);
  }
}

// ------------------------------------------------- SWMR concurrency laws

// A reader hammering lookups while a single writer inserts ascending keys
// must never observe a torn node or miss a key it already saw published.
TEST(SwmrSkipListTest, SingleWriterReaderStress) {
  SwmrSkipList<int64_t, int64_t> list;
  constexpr int64_t kN = 30000;
  std::atomic<int64_t> published{-1};
  std::atomic<bool> failed{false};

  std::thread reader([&] {
    Rng rng(99);
    while (published.load(std::memory_order_acquire) < kN - 1) {
      const int64_t upto = published.load(std::memory_order_acquire);
      if (upto < 0) continue;
      const int64_t probe =
          static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(upto) + 1));
      const int64_t* v = list.FindEqual(probe);
      if (v == nullptr || *v != probe * 3) {
        failed.store(true);
        return;
      }
    }
  });

  for (int64_t k = 0; k < kN; ++k) {
    list.Insert(k, k * 3);
    published.store(k, std::memory_order_release);
  }
  reader.join();
  EXPECT_FALSE(failed.load());
}

// Readers scanning ranges while the writer evicts prefixes: scans must
// stay well-formed (sorted, within bounds) and memory must stay valid.
TEST(SwmrSkipListTest, EvictionConcurrentWithReaders) {
  EpochManager ebr(3);
  const uint32_t writer = ebr.RegisterThread();
  SwmrSkipList<int64_t, int64_t> list(&ebr, writer);

  std::atomic<int64_t> head{0};      // everything below is evicted
  std::atomic<int64_t> tail{0};      // everything below is inserted
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  auto reader_fn = [&](uint32_t slot) {
    Rng rng(slot);
    while (!stop.load(std::memory_order_relaxed)) {
      EpochGuard guard(ebr, slot);
      const int64_t lo = head.load(std::memory_order_acquire);
      int64_t prev = -1;
      int64_t n = 0;
      for (auto it = list.SeekGE(lo); it.Valid() && n < 64; it.Next(), ++n) {
        if (it.key() < prev || it.value() != it.key() * 7) {
          failed.store(true);
          return;
        }
        prev = it.key();
      }
    }
  };
  std::thread r1(reader_fn, ebr.RegisterThread());
  std::thread r2(reader_fn, ebr.RegisterThread());

  for (int64_t k = 0; k < 50000; ++k) {
    list.Insert(k, k * 7);
    tail.store(k, std::memory_order_release);
    if ((k & 1023) == 0 && k > 2000) {
      const int64_t bound = k - 2000;
      list.EvictBefore(bound);
      head.store(bound, std::memory_order_release);
      ebr.ReclaimSome(writer);
    }
  }
  stop.store(true);
  r1.join();
  r2.join();
  EXPECT_FALSE(failed.load());
  ebr.ReclaimAllUnsafe(writer);
}

// Same law on the pooled path: readers scan while the writer inserts,
// evicts whole runs through RetireBatch, and recycles arena slabs.
TEST(SwmrSkipListTest, ArenaEvictionConcurrentWithReaders) {
  EpochManager ebr(3);
  const uint32_t writer = ebr.RegisterThread();
  NodeArena arena;
  SwmrSkipList<int64_t, int64_t> list(&ebr, writer, 0x5eed, &arena);

  std::atomic<int64_t> head{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  auto reader_fn = [&](uint32_t slot) {
    while (!stop.load(std::memory_order_relaxed)) {
      EpochGuard guard(ebr, slot);
      const int64_t lo = head.load(std::memory_order_acquire);
      int64_t prev = -1;
      int64_t n = 0;
      for (auto it = list.SeekGE(lo); it.Valid() && n < 64; it.Next(), ++n) {
        if (it.key() < prev || it.value() != it.key() * 7) {
          failed.store(true);
          return;
        }
        prev = it.key();
      }
    }
  };
  std::thread r1(reader_fn, ebr.RegisterThread());
  std::thread r2(reader_fn, ebr.RegisterThread());

  for (int64_t k = 0; k < 50000; ++k) {
    list.Insert(k, k * 7);
    if ((k & 1023) == 0 && k > 2000) {
      const int64_t bound = k - 2000;
      list.EvictBefore(bound);
      head.store(bound, std::memory_order_release);
      ebr.ReclaimSome(writer);
    }
  }
  stop.store(true);
  r1.join();
  r2.join();
  EXPECT_FALSE(failed.load());
  // No readers left: collapse the window and drain; emptied slabs must
  // return to the arena pool.
  list.EvictBefore(std::numeric_limits<int64_t>::max());
  ebr.ReclaimAllUnsafe(writer);
  EXPECT_GT(arena.snapshot().slab_recycles, 0u);
}

// ------------------------------------------------------ TimeTravelIndex

TEST(TimeTravelIndexTest, InsertAndRangeScan) {
  TimeTravelIndex index;
  for (Timestamp ts = 0; ts < 100; ++ts) {
    index.Insert(Tuple{ts, /*key=*/ts % 3, static_cast<double>(ts)});
  }
  EXPECT_EQ(index.size(), 100u);
  EXPECT_EQ(index.key_count(), 3u);

  // Key 0 holds ts = 0,3,...,99; range [30, 60] -> 30,33,...,60.
  std::vector<Timestamp> seen;
  const size_t visited = index.ForEachInRange(
      0, 30, 60, [&](const Tuple& t) { seen.push_back(t.ts); });
  EXPECT_EQ(visited, seen.size());
  ASSERT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.front(), 30);
  EXPECT_EQ(seen.back(), 60);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i] - seen[i - 1], 3);
  }
}

TEST(TimeTravelIndexTest, UnknownKeyScansNothing) {
  TimeTravelIndex index;
  index.Insert(Tuple{1, 1, 1.0});
  size_t calls = 0;
  EXPECT_EQ(index.ForEachInRange(99, 0, 100, [&](const Tuple&) { ++calls; }),
            0u);
  EXPECT_EQ(calls, 0u);
}

TEST(TimeTravelIndexTest, InclusiveBoundaries) {
  TimeTravelIndex index;
  index.Insert(Tuple{10, 5, 1.0});
  index.Insert(Tuple{20, 5, 2.0});
  size_t n = index.ForEachInRange(5, 10, 20, [](const Tuple&) {});
  EXPECT_EQ(n, 2u);
  n = index.ForEachInRange(5, 11, 19, [](const Tuple&) {});
  EXPECT_EQ(n, 0u);
}

TEST(TimeTravelIndexTest, EvictBeforeAcrossKeys) {
  TimeTravelIndex index;
  for (Timestamp ts = 0; ts < 90; ++ts) {
    index.Insert(Tuple{ts, ts % 3, 0.0});
  }
  EXPECT_EQ(index.EvictBefore(45), 45u);
  EXPECT_EQ(index.size(), 45u);
  // All three keys retain only ts >= 45.
  for (Key k = 0; k < 3; ++k) {
    index.ForEachInRange(k, kMinTimestamp + 1, kMaxTimestamp,
                         [&](const Tuple& t) { EXPECT_GE(t.ts, 45); });
  }
}

TEST(TimeTravelIndexTest, DuplicateTimestampsSameKey) {
  TimeTravelIndex index;
  index.Insert(Tuple{7, 1, 1.0});
  index.Insert(Tuple{7, 1, 2.0});
  double sum = 0;
  const size_t n =
      index.ForEachInRange(1, 7, 7, [&](const Tuple& t) { sum += t.payload; });
  EXPECT_EQ(n, 2u);
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(TimeTravelIndexTest, FindLayerExposesSecondLevel) {
  TimeTravelIndex index;
  EXPECT_EQ(index.FindLayer(4), nullptr);
  index.Insert(Tuple{1, 4, 0.0});
  auto* layer = index.FindLayer(4);
  ASSERT_NE(layer, nullptr);
  EXPECT_EQ(layer->size(), 1u);
}

// The MRU insert fast path must never serve a stale layer: a layer that
// was cached, then fully evicted, is still the live layer for its key, so
// bursty re-inserts through the cache must land where readers look.
TEST(TimeTravelIndexTest, MruCachedThenEvictedLayerIsNeverStale) {
  TimeTravelIndex index;
  // Prime the cache with a burst on key 5.
  for (Timestamp ts = 0; ts < 50; ++ts) index.Insert(Tuple{ts, 5, 1.0});
  auto* layer_before = index.FindLayer(5);
  ASSERT_NE(layer_before, nullptr);

  // Evict the whole burst: the layer empties but is NOT destroyed.
  EXPECT_EQ(index.EvictBefore(100), 50u);
  EXPECT_EQ(layer_before->size(), 0u);

  // Re-insert through the (still warm) cache; interleave another key so
  // the cache also proves it refreshes on key switches.
  index.Insert(Tuple{200, 5, 2.0});
  index.Insert(Tuple{201, 9, 3.0});
  index.Insert(Tuple{202, 5, 4.0});
  EXPECT_EQ(index.FindLayer(5), layer_before)
      << "layer identity must be stable for the index lifetime";

  double sum = 0;
  const size_t n = index.ForEachInRange(
      5, 100, 300, [&](const Tuple& t) { sum += t.payload; });
  EXPECT_EQ(n, 2u);
  EXPECT_DOUBLE_EQ(sum, 6.0);
  EXPECT_EQ(index.ForEachInRange(9, 100, 300, [](const Tuple&) {}), 1u);
}

TEST(TimeTravelIndexTest, ArenaBackedIndexEndToEnd) {
  EpochManager ebr(1);
  const uint32_t writer = ebr.RegisterThread();
  NodeArena arena;
  {
    TimeTravelIndex index(&ebr, writer, 0x71e, &arena);
    for (Timestamp ts = 0; ts < 3000; ++ts) {
      index.Insert(Tuple{ts, ts % 7, static_cast<double>(ts)});
    }
    EXPECT_EQ(index.key_count(), 7u);
    EXPECT_GT(arena.snapshot().live_nodes, 3000u);

    std::vector<Timestamp> seen;
    index.ForEachInRange(3, 30, 100,
                         [&](const Tuple& t) { seen.push_back(t.ts); });
    for (size_t i = 1; i < seen.size(); ++i) EXPECT_EQ(seen[i] - seen[i - 1], 7);

    EXPECT_EQ(index.EvictBefore(1500), 1500u);
    for (int i = 0; i < 8; ++i) ebr.ReclaimSome(writer);
    index.ForEachInRange(3, kMinTimestamp + 1, kMaxTimestamp,
                         [](const Tuple& t) { EXPECT_GE(t.ts, 1500); });
  }
  // Index destroyed, EBR drained on scope exit of `ebr`? No: ebr outlives
  // the index block, so drain explicitly, then everything must be back.
  ebr.ReclaimAllUnsafe(writer);
  EXPECT_EQ(arena.snapshot().live_nodes, 0u);
}

// Differential property test: the index behaves exactly like a sorted
// multimap for random insert/scan sequences.
TEST(TimeTravelIndexTest, MatchesModelOnRandomWorkload) {
  TimeTravelIndex index;
  std::multimap<std::pair<Key, Timestamp>, double> model;
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    Tuple t;
    t.key = rng.NextBelow(8);
    t.ts = static_cast<Timestamp>(rng.NextBelow(1000));
    t.payload = static_cast<double>(rng.NextBelow(100));
    index.Insert(t);
    model.emplace(std::make_pair(t.key, t.ts), t.payload);
  }
  for (int q = 0; q < 200; ++q) {
    const Key key = rng.NextBelow(8);
    Timestamp lo = static_cast<Timestamp>(rng.NextBelow(1000));
    Timestamp hi = lo + static_cast<Timestamp>(rng.NextBelow(200));
    double sum = 0;
    size_t n = index.ForEachInRange(
        key, lo, hi, [&](const Tuple& t) { sum += t.payload; });
    double model_sum = 0;
    size_t model_n = 0;
    for (auto it = model.lower_bound({key, lo});
         it != model.end() && it->first.first == key && it->first.second <= hi;
         ++it) {
      model_sum += it->second;
      ++model_n;
    }
    EXPECT_EQ(n, model_n);
    EXPECT_DOUBLE_EQ(sum, model_sum);
  }
}

}  // namespace
}  // namespace oij
