// Net-layer behavior under adversarial I/O: frames fragmented into
// one-byte writes, peers that disconnect mid-frame, and slow-loris
// clients that open a frame and never finish it (caught by the router's
// stall timeout). Also unit coverage for the TimerQueue those timeouts
// run on.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "net/socket.h"
#include "net/timer_queue.h"
#include "net/wire_codec.h"
#include "server/server.h"
#include "stream/generator.h"
#include "stream/presets.h"

namespace oij {
namespace {

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 15000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

// -------------------------------------------------------- timer queue

TEST(TimerQueueTest, FiresInDeadlineOrder) {
  TimerQueue timers;
  std::vector<int> fired;
  timers.Schedule(1000, 30, [&] { fired.push_back(3); });
  timers.Schedule(1000, 10, [&] { fired.push_back(1); });
  timers.Schedule(1000, 20, [&] { fired.push_back(2); });
  EXPECT_EQ(timers.pending(), 3u);

  EXPECT_EQ(timers.RunExpired(1009), 0u);
  EXPECT_EQ(timers.RunExpired(1010), 1u);
  EXPECT_EQ(timers.RunExpired(1030), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(timers.pending(), 0u);
}

TEST(TimerQueueTest, EqualDeadlinesFireInScheduleOrder) {
  TimerQueue timers;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    timers.Schedule(0, 10, [&fired, i] { fired.push_back(i); });
  }
  timers.RunExpired(10);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerQueueTest, CancelPreventsFiring) {
  TimerQueue timers;
  int fired = 0;
  const TimerQueue::TimerId keep = timers.Schedule(0, 10, [&] { ++fired; });
  const TimerQueue::TimerId gone = timers.Schedule(0, 10, [&] { ++fired; });
  timers.Cancel(gone);
  EXPECT_EQ(timers.pending(), 1u);
  EXPECT_EQ(timers.RunExpired(100), 1u);
  EXPECT_EQ(fired, 1);
  // Cancelling an already-fired or unknown id is harmless.
  timers.Cancel(keep);
  timers.Cancel(999999);
}

TEST(TimerQueueTest, NextTimeoutTracksEarliestDeadline) {
  TimerQueue timers;
  EXPECT_EQ(timers.NextTimeoutMs(0, 250), 250) << "idle queue returns cap";
  timers.Schedule(0, 100, [] {});
  EXPECT_EQ(timers.NextTimeoutMs(0, 250), 100);
  EXPECT_EQ(timers.NextTimeoutMs(40, 250), 60);
  EXPECT_EQ(timers.NextTimeoutMs(100, 250), 0) << "due now = poll returns";
  EXPECT_EQ(timers.NextTimeoutMs(500, 250), 0) << "overdue clamps at zero";
  timers.Schedule(0, 10, [] {});
  EXPECT_EQ(timers.NextTimeoutMs(0, 250), 10);
}

TEST(TimerQueueTest, TimersMayRescheduleFromTheirCallback) {
  TimerQueue timers;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 3) timers.Schedule(fired * 10, 10, tick);
  };
  timers.Schedule(0, 10, tick);
  timers.RunExpired(10);
  timers.RunExpired(20);
  timers.RunExpired(30);
  EXPECT_EQ(fired, 3);
}

// ------------------------------------------- one-byte fragmented writes

/// The decoder must reassemble frames from arbitrarily hostile
/// fragmentation. A complete small run delivered one byte per send()
/// still produces exactly the oracle's results.
TEST(NetAdversarialTest, OneByteWritesStillDecodeToAnExactRun) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 400;

  ServerConfig config;
  config.query.window = workload.window;
  config.query.lateness_us = workload.lateness_us;
  config.query.emit_mode = EmitMode::kWatermark;
  config.options.num_joiners = 2;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  const auto events = Generate(workload);
  constexpr uint64_t kWmEvery = 64;
  auto expected = ReferenceJoinWithPolicy(events, config.query, kWmEvery);

  // Build the whole session up front: hello, subscribe, tuples with
  // punctuation, finish.
  std::string session;
  HelloInfo hello;
  AppendHelloFrame(&session, hello);
  AppendControlFrame(&session, FrameType::kSubscribe);
  WatermarkTracker tracker(config.query.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    AppendTupleFrame(&session, ev);
    if (++n % kWmEvery == 0) {
      AppendWatermarkFrame(&session, tracker.watermark());
    }
  }
  AppendControlFrame(&session, FrameType::kFinish);

  int fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.data_port(), &fd).ok());

  // Reader runs concurrently: results stream back while we drip bytes.
  size_t results = 0;
  std::string summary;
  std::vector<std::string> errors;
  bool saw_hello_reply = false;
  std::thread reader([&] {
    WireDecoder decoder;
    char buf[16384];
    WireFrame frame;
    int64_t got;
    while ((got = RecvSome(fd, buf, sizeof(buf))) > 0) {
      decoder.Feed(buf, static_cast<size_t>(got));
      while (decoder.Next(&frame) == WireDecoder::Result::kFrame) {
        if (frame.type == FrameType::kResult) ++results;
        if (frame.type == FrameType::kHello) saw_hello_reply = true;
        if (frame.type == FrameType::kSummary) summary = frame.text;
        if (frame.type == FrameType::kError) errors.push_back(frame.text);
      }
    }
  });

  for (size_t i = 0; i < session.size(); ++i) {
    ASSERT_TRUE(SendAll(fd, session.data() + i, 1).ok()) << "byte " << i;
  }
  reader.join();
  CloseFd(fd);

  EXPECT_TRUE(errors.empty()) << errors.front();
  EXPECT_TRUE(saw_hello_reply) << "fragmented hello never answered";
  EXPECT_FALSE(summary.empty());
  EXPECT_EQ(results, expected.size());
  server.Shutdown();
}

// ------------------------------------------------ mid-frame disconnect

/// A peer that dies halfway through a frame must cost the server
/// nothing: the connection is reaped and the next client runs a full
/// session on a healthy server.
TEST(NetAdversarialTest, MidFrameDisconnectDoesNotWedgeTheServer) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 300;

  ServerConfig config;
  config.query.window = workload.window;
  config.query.lateness_us = workload.lateness_us;
  config.query.emit_mode = EmitMode::kWatermark;
  config.options.num_joiners = 1;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  // Several abrupt deaths at different cut points, including inside the
  // length prefix itself.
  std::string frame;
  AppendTupleFrame(&frame, StreamEvent{});
  for (const size_t cut : {size_t{1}, size_t{3}, size_t{7},
                           frame.size() - 1}) {
    int fd = -1;
    ASSERT_TRUE(ConnectTcp("127.0.0.1", server.data_port(), &fd).ok());
    ASSERT_TRUE(SendAll(fd, frame.data(), cut).ok());
    CloseFd(fd);  // mid-frame EOF
  }
  ASSERT_TRUE(WaitUntil([&] {
    return server.CountersSnapshot().connections_open == 0;
  })) << "half-dead connections were never reaped";

  // The server still serves a complete, correct run.
  const auto events = Generate(workload);
  auto expected = ReferenceJoinWithPolicy(events, config.query, 64);
  int fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.data_port(), &fd).ok());
  std::string session;
  AppendControlFrame(&session, FrameType::kSubscribe);
  WatermarkTracker tracker(config.query.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    AppendTupleFrame(&session, ev);
    if (++n % 64 == 0) AppendWatermarkFrame(&session, tracker.watermark());
  }
  AppendControlFrame(&session, FrameType::kFinish);
  size_t results = 0;
  std::string summary;
  std::thread reader([&] {
    WireDecoder decoder;
    char buf[16384];
    WireFrame f;
    int64_t got;
    while ((got = RecvSome(fd, buf, sizeof(buf))) > 0) {
      decoder.Feed(buf, static_cast<size_t>(got));
      while (decoder.Next(&f) == WireDecoder::Result::kFrame) {
        if (f.type == FrameType::kResult) ++results;
        if (f.type == FrameType::kSummary) summary = f.text;
      }
    }
  });
  ASSERT_TRUE(SendAll(fd, session.data(), session.size()).ok());
  reader.join();
  CloseFd(fd);
  EXPECT_FALSE(summary.empty());
  EXPECT_EQ(results, expected.size());
  server.Shutdown();
}

// ------------------------------------------------------- slow loris

/// A client that opens a frame and then trickles nothing must be
/// evicted by the router's stall sweep — holding a byte of a frame
/// forever may not pin router memory. A well-behaved idle client (no
/// partial frame buffered) is NOT evicted.
TEST(NetAdversarialTest, SlowLorisClientHitsTheStallTimeout) {
  // One real backend so the router starts; the client plane is what is
  // under test.
  ServerConfig backend_config;
  backend_config.options.num_joiners = 1;
  OijServer backend(backend_config);
  ASSERT_TRUE(backend.Start().ok());

  RouterConfig config;
  config.backends.push_back(
      {"127.0.0.1", backend.data_port(), backend.admin_port()});
  config.client_stall_timeout_ms = 300;  // sweep interval scales with it
  OijRouter router(config);
  ASSERT_TRUE(router.Start().ok());

  // The slow loris: one byte of a tuple frame, then silence.
  int loris = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", router.data_port(), &loris).ok());
  std::string frame;
  AppendTupleFrame(&frame, StreamEvent{});
  ASSERT_TRUE(SendAll(loris, frame.data(), 1).ok());

  // An idle-but-honest client: a complete watermark frame, then quiet.
  int honest = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", router.data_port(), &honest).ok());
  std::string wm;
  AppendWatermarkFrame(&wm, 1);
  ASSERT_TRUE(SendAll(honest, wm.data(), wm.size()).ok());

  // The loris gets evicted: its socket reports EOF.
  char buf[16];
  ASSERT_TRUE(WaitUntil([&] {
    const int64_t n = RecvSome(loris, buf, sizeof(buf));
    return n == 0;  // clean close from the router
  })) << "slow loris was never evicted";
  EXPECT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().clients_stalled_evicted == 1;
  }));
  CloseFd(loris);

  // The honest client survived the sweeps: its socket is still open
  // (a fresh frame still routes without error).
  EXPECT_TRUE(SendAll(honest, wm.data(), wm.size()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(SendAll(honest, wm.data(), wm.size()).ok())
      << "honest idle client was evicted";
  EXPECT_EQ(router.CountersSnapshot().clients_stalled_evicted, 1u);
  CloseFd(honest);

  router.Shutdown();
  backend.Shutdown();
}

/// A backend that accepts TCP but never answers the hello handshake
/// must trip the router's connect/handshake timeout and go through
/// backoff retries instead of wedging the backend pool.
TEST(NetAdversarialTest, SilentBackendTripsHandshakeTimeoutAndRetries) {
  // A listener that accepts and then says nothing, ever.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 16), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const uint16_t silent_port = ntohs(addr.sin_port);

  std::atomic<bool> stop{false};
  std::thread acceptor([&] {
    std::vector<int> held;
    while (!stop.load()) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) held.push_back(fd);  // hold open, never speak
    }
    for (const int fd : held) ::close(fd);
  });

  RouterConfig config;
  config.backends.push_back({"127.0.0.1", silent_port, silent_port});
  config.connect_timeout_ms = 100;
  config.backoff_base_ms = 20;
  config.backoff_max_ms = 100;
  OijRouter router(config);
  ASSERT_TRUE(router.Start().ok());

  // Multiple timeout -> backoff -> retry cycles, and the mute backend
  // never reaches Active (no connects counted).
  EXPECT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().backend_retries >= 3;
  })) << "handshake timeout never fired";
  EXPECT_EQ(router.CountersSnapshot().backend_connects, 0u);

  router.Shutdown();
  stop.store(true);
  ::shutdown(listener, SHUT_RDWR);
  ::close(listener);
  acceptor.join();
}

}  // namespace
}  // namespace oij
