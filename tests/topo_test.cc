// NUMA topology detection and placement tests (src/topo/, DESIGN.md §5i):
//
//   * cpulist parsing: singles, ranges, sparse mixes, whitespace, and
//     malformed inputs;
//   * DetectFrom over fake sysfs trees: 1-node, 2-node with distances,
//     sparse node ids via `online`, offline CPUs / restrictive cpusets
//     shrinking or dropping nodes, and malformed trees degrading to the
//     single-node fallback;
//   * Detect() honoring OIJ_FAKE_SYSFS;
//   * PlanPlacement properties: proportional contiguous teams, strict
//     no-op on single-node auto, explicit override maps (including -1
//     holes), flush order grouped by node;
//   * EngineOptions::Validate rejecting malformed explicit maps;
//   * differential exactness: {key-oij, scale-oij} × late policies ×
//     {numa auto, numa off} under a fake 2-node machine must agree with
//     the policy-aware reference oracle exactly — placement moves
//     threads and pages, never results — plus a multi-query catalog run;
//   * /statz regression: the per-node arrays render with valid JSON
//     separators (cf. the run-summary joiner-array separator bug).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "server/admin.h"
#include "stream/generator.h"
#include "topo/topology.h"

namespace oij {
namespace {

// ------------------------------------------------------------ fixtures

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/oij_topo_test_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path_ = p;
  }
  ~TempDir() {
    if (path_.empty()) return;
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

/// Creates `<root>/node<id>/cpulist` (and optionally `distance`).
void WriteFakeNode(const std::string& root, int id,
                   const std::string& cpulist,
                   const std::string& distance = "") {
  const std::string dir = root + "/node" + std::to_string(id);
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
  WriteFile(dir + "/cpulist", cpulist);
  if (!distance.empty()) WriteFile(dir + "/distance", distance);
}

/// Sets an environment variable for the scope, restoring the previous
/// value (or unsetting) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// ------------------------------------------------------ ParseCpuList

TEST(ParseCpuListTest, SinglesRangesAndMixes) {
  std::vector<int> cpus;
  ASSERT_TRUE(ParseCpuList("0-3", &cpus).ok());
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3}));

  ASSERT_TRUE(ParseCpuList("0,2,4-6", &cpus).ok());
  EXPECT_EQ(cpus, (std::vector<int>{0, 2, 4, 5, 6}));

  ASSERT_TRUE(ParseCpuList("7", &cpus).ok());
  EXPECT_EQ(cpus, (std::vector<int>{7}));

  // Kernel files end with a newline; internal whitespace is tolerated.
  ASSERT_TRUE(ParseCpuList(" 1-3 , 8 \n", &cpus).ok());
  EXPECT_EQ(cpus, (std::vector<int>{1, 2, 3, 8}));

  // Overlaps dedupe, output is sorted.
  ASSERT_TRUE(ParseCpuList("4-6,5,0", &cpus).ok());
  EXPECT_EQ(cpus, (std::vector<int>{0, 4, 5, 6}));

  // Empty is valid (a node with no CPUs).
  ASSERT_TRUE(ParseCpuList("", &cpus).ok());
  EXPECT_TRUE(cpus.empty());
  ASSERT_TRUE(ParseCpuList("\n", &cpus).ok());
  EXPECT_TRUE(cpus.empty());
}

TEST(ParseCpuListTest, MalformedInputsAreErrors) {
  std::vector<int> cpus;
  EXPECT_FALSE(ParseCpuList("3-1", &cpus).ok());   // inverted range
  EXPECT_FALSE(ParseCpuList("a-b", &cpus).ok());   // not a number
  EXPECT_FALSE(ParseCpuList("1,,2", &cpus).ok());  // empty element
  EXPECT_FALSE(ParseCpuList("1;2", &cpus).ok());   // wrong separator
  EXPECT_FALSE(ParseCpuList("1-", &cpus).ok());    // dangling range
  EXPECT_FALSE(ParseCpuList("-3", &cpus).ok());    // leading dash
  EXPECT_FALSE(ParseCpuList("99999999999", &cpus).ok());  // implausible
}

// --------------------------------------------------------- DetectFrom

TEST(TopologyTest, SingleNodeTree) {
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0-3\n");
  const Topology t = Topology::DetectFrom(dir.path(), {});
  EXPECT_FALSE(t.fallback());
  ASSERT_EQ(t.num_nodes(), 1u);
  EXPECT_TRUE(t.single_node());
  EXPECT_EQ(t.nodes()[0].id, 0);
  EXPECT_EQ(t.nodes()[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.num_cpus(), 4);
}

TEST(TopologyTest, TwoNodeTreeWithDistances) {
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0-3\n", "10 21\n");
  WriteFakeNode(dir.path(), 1, "4-7\n", "21 10\n");
  WriteFile(dir.path() + "/online", "0-1\n");
  const Topology t = Topology::DetectFrom(dir.path(), {});
  EXPECT_FALSE(t.fallback());
  ASSERT_EQ(t.num_nodes(), 2u);
  EXPECT_FALSE(t.single_node());
  EXPECT_EQ(t.nodes()[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(t.NodeOfCpu(2), 0);
  EXPECT_EQ(t.NodeOfCpu(6), 1);
  EXPECT_EQ(t.NodeOfCpu(99), -1);
  EXPECT_EQ(t.Distance(0, 0), 10);
  EXPECT_EQ(t.Distance(0, 1), 21);
  EXPECT_EQ(t.Distance(1, 0), 21);
}

TEST(TopologyTest, SparseNodeIdsAndSparseCpulists) {
  // node1 is missing entirely (offlined socket): ids stay sparse and the
  // ordinals compact.
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0,2,4-6\n");
  WriteFakeNode(dir.path(), 2, "1,3\n");
  WriteFile(dir.path() + "/online", "0,2\n");
  const Topology t = Topology::DetectFrom(dir.path(), {});
  EXPECT_FALSE(t.fallback());
  ASSERT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.nodes()[0].id, 0);
  EXPECT_EQ(t.nodes()[1].id, 2);
  EXPECT_EQ(t.nodes()[0].cpus, (std::vector<int>{0, 2, 4, 5, 6}));
  EXPECT_EQ(t.NodeOfCpu(3), 1);  // ordinal, not OS id
}

TEST(TopologyTest, RestrictiveCpusetShrinksAndDropsNodes) {
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0-3\n");
  WriteFakeNode(dir.path(), 1, "4-7\n");
  // The container may only run on CPUs 0-1: node1 empties out and is
  // dropped; the result is a genuine single-node view, not a fallback.
  const Topology t = Topology::DetectFrom(dir.path(), {0, 1});
  EXPECT_FALSE(t.fallback());
  ASSERT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.nodes()[0].cpus, (std::vector<int>{0, 1}));

  // A cpuset straddling both sockets keeps both, shrunk.
  const Topology both = Topology::DetectFrom(dir.path(), {1, 5});
  ASSERT_EQ(both.num_nodes(), 2u);
  EXPECT_EQ(both.nodes()[0].cpus, (std::vector<int>{1}));
  EXPECT_EQ(both.nodes()[1].cpus, (std::vector<int>{5}));
}

TEST(TopologyTest, MalformedTreesFallBackToSingleNode) {
  {
    TempDir dir;
    WriteFakeNode(dir.path(), 0, "3-1\n");  // inverted range
    const Topology t = Topology::DetectFrom(dir.path(), {0, 1, 2});
    EXPECT_TRUE(t.fallback());
    ASSERT_EQ(t.num_nodes(), 1u);
    EXPECT_EQ(t.nodes()[0].cpus, (std::vector<int>{0, 1, 2}));
  }
  {
    TempDir dir;  // no node directories at all
    const Topology t = Topology::DetectFrom(dir.path(), {0});
    EXPECT_TRUE(t.fallback());
    EXPECT_EQ(t.num_nodes(), 1u);
  }
  {
    // node dir exists but the cpulist file is missing.
    TempDir dir;
    ASSERT_EQ(::mkdir((dir.path() + "/node0").c_str(), 0755), 0);
    const Topology t = Topology::DetectFrom(dir.path(), {0});
    EXPECT_TRUE(t.fallback());
  }
  // Nonexistent root.
  const Topology t = Topology::DetectFrom("/no/such/dir", {0});
  EXPECT_TRUE(t.fallback());
  EXPECT_GE(t.num_cpus(), 1);
}

TEST(TopologyTest, IncompleteDistanceFilesAreDropped) {
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0\n", "10\n");  // missing the remote entry
  WriteFakeNode(dir.path(), 1, "1\n", "21 10\n");
  const Topology t = Topology::DetectFrom(dir.path(), {});
  ASSERT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.Distance(0, 1), 0);  // hint unavailable, not garbage
}

TEST(TopologyTest, DetectHonorsFakeSysfsEnv) {
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0\n");
  WriteFakeNode(dir.path(), 1, "1\n");
  {
    ScopedEnv env("OIJ_FAKE_SYSFS", dir.path());
    const Topology t = Topology::Detect();
    // The fake tree defines the whole machine — no cpuset intersection —
    // so a 2-node fake survives a 1-CPU host.
    EXPECT_FALSE(t.fallback());
    ASSERT_EQ(t.num_nodes(), 2u);
    EXPECT_EQ(t.nodes()[1].cpus, (std::vector<int>{1}));
  }
  // Without the override, real detection must still produce something
  // sane (>= 1 node covering >= 1 CPU) on any machine this runs on.
  const Topology real = Topology::Detect();
  EXPECT_GE(real.num_nodes(), 1u);
  EXPECT_GE(real.num_cpus(), 1);
}

// ------------------------------------------------------ PlanPlacement

TEST(PlanPlacementTest, AutoOnSingleNodeIsStrictNoOp) {
  const Topology t = Topology::SingleNode(8);
  const PlacementPlan plan = PlanPlacement(t, 4, NumaOptions{});
  EXPECT_FALSE(plan.active);
  EXPECT_EQ(plan.num_nodes, 1u);
  EXPECT_EQ(plan.joiner_cpu, (std::vector<int>{-1, -1, -1, -1}));
  EXPECT_EQ(plan.flush_order, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(plan.aux_cpu, -1);
}

TEST(PlanPlacementTest, OffNeverActivates) {
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0-3\n");
  WriteFakeNode(dir.path(), 1, "4-7\n");
  const Topology t = Topology::DetectFrom(dir.path(), {});
  NumaOptions numa;
  numa.mode = NumaMode::kOff;
  const PlacementPlan plan = PlanPlacement(t, 6, numa);
  EXPECT_FALSE(plan.active);
  for (int cpu : plan.joiner_cpu) EXPECT_EQ(cpu, -1);
}

TEST(PlanPlacementTest, ProportionalContiguousTeams) {
  // 4 + 2 CPUs, 6 joiners: teams of 4 and 2, contiguous joiner ranges,
  // CPUs round-robined within each node.
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0-3\n");
  WriteFakeNode(dir.path(), 1, "4-5\n");
  const Topology t = Topology::DetectFrom(dir.path(), {});
  const PlacementPlan plan = PlanPlacement(t, 6, NumaOptions{});
  EXPECT_TRUE(plan.active);
  EXPECT_EQ(plan.num_nodes, 2u);
  EXPECT_EQ(plan.joiner_node,
            (std::vector<uint32_t>{0, 0, 0, 0, 1, 1}));
  EXPECT_EQ(plan.joiner_cpu, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  // Contiguous teams make the per-socket flush order the identity.
  EXPECT_EQ(plan.flush_order, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(plan.aux_cpu, 0);
  EXPECT_EQ(plan.node_ids, (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.OsNodeOfJoiner(5), 1);
}

TEST(PlanPlacementTest, LargestRemainderTiesAreDeterministic) {
  // Two equal nodes, 5 joiners: the 0.5-remainder tie goes to the lower
  // ordinal, and every joiner's CPU belongs to its own node.
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0-1\n");
  WriteFakeNode(dir.path(), 1, "2-3\n");
  const Topology t = Topology::DetectFrom(dir.path(), {});
  const PlacementPlan plan = PlanPlacement(t, 5, NumaOptions{});
  EXPECT_EQ(plan.joiner_node, (std::vector<uint32_t>{0, 0, 0, 1, 1}));
  for (uint32_t j = 0; j < 5; ++j) {
    const auto& cpus = t.nodes()[plan.joiner_node[j]].cpus;
    EXPECT_TRUE(std::find(cpus.begin(), cpus.end(), plan.joiner_cpu[j]) !=
                cpus.end())
        << "joiner " << j << " pinned off its own node";
  }
  // More joiners than CPUs: everyone still gets a CPU (oversubscribed
  // round-robin), teams stay proportional.
  const PlacementPlan big = PlanPlacement(t, 10, NumaOptions{});
  EXPECT_TRUE(big.active);
  for (uint32_t j = 0; j < 10; ++j) EXPECT_GE(big.joiner_cpu[j], 0);
}

TEST(PlanPlacementTest, ExplicitMapOverridesAndGroupsFlushOrder) {
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0,2\n");
  WriteFakeNode(dir.path(), 1, "1,3\n");
  const Topology t = Topology::DetectFrom(dir.path(), {});
  NumaOptions numa;
  numa.explicit_cpus = {1, 0, 3, -1};  // -1 = leave joiner 3 floating
  const PlacementPlan plan = PlanPlacement(t, 4, numa);
  EXPECT_TRUE(plan.active);
  EXPECT_EQ(plan.joiner_cpu, (std::vector<int>{1, 0, 3, -1}));
  EXPECT_EQ(plan.joiner_node, (std::vector<uint32_t>{1, 0, 1, 0}));
  // Flush order groups joiners by node (stable within a node).
  EXPECT_EQ(plan.flush_order, (std::vector<uint32_t>{1, 3, 0, 2}));
  EXPECT_EQ(plan.aux_cpu, 1);  // first explicitly pinned CPU

  // An explicit map forces placement active even on one node — that is
  // how a single-node CI host exercises the pinning machinery.
  const Topology flat = Topology::SingleNode(2);
  NumaOptions forced;
  forced.explicit_cpus = {0, 1};
  EXPECT_TRUE(PlanPlacement(flat, 2, forced).active);

  // ...but kOff still wins over an explicit map.
  NumaOptions off = forced;
  off.mode = NumaMode::kOff;
  EXPECT_FALSE(PlanPlacement(flat, 2, off).active);
}

TEST(PlanPlacementTest, ValidateRejectsMalformedExplicitMaps) {
  EngineOptions options;
  options.num_joiners = 4;
  options.numa.explicit_cpus = {0, 1};  // wrong size
  EXPECT_FALSE(options.Validate().ok());
  options.numa.explicit_cpus = {0, 1, 2, -2};  // -2 is not a CPU
  EXPECT_FALSE(options.Validate().ok());
  options.numa.explicit_cpus = {0, 1, 2, -1};
  EXPECT_TRUE(options.Validate().ok());
  options.numa.explicit_cpus.clear();  // empty = derive from topology
  EXPECT_TRUE(options.Validate().ok());
}

TEST(PlanPlacementTest, BindMemoryToBogusNodeFailsGracefully) {
  int dummy = 0;
  // Node far beyond anything real: must return false, never crash.
  EXPECT_FALSE(TryBindMemoryToNode(&dummy, sizeof(dummy), 100000));
  EXPECT_FALSE(TryBindMemoryToNode(nullptr, 64, 0));
  EXPECT_FALSE(TryBindMemoryToNode(&dummy, 0, 0));
}

// ----------------------------------- differential: auto == off exactly

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

struct EngineRun {
  std::vector<ReferenceResult> results;
  EngineStats stats;
};

EngineRun RunOverEvents(EngineKind kind,
                        const std::vector<StreamEvent>& events,
                        const QuerySpec& spec, EngineOptions options,
                        uint64_t wm_every) {
  CollectingSink sink;
  auto engine = CreateEngine(kind, spec, options, &sink);
  EXPECT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(spec.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % wm_every == 0) engine->SignalWatermark(tracker.watermark());
  }
  EngineRun run;
  run.stats = engine->Finish();
  for (const JoinResult& r : sink.TakeResults()) {
    run.results.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&run.results);
  return run;
}

/// Result equality at the repo's differential bar: cardinality, bases,
/// and match counts exact; aggregates NaN-aware within 1e-6 (parallel
/// summation order is schedule-dependent to the last ulp).
void ExpectResultsIdentical(const std::vector<ReferenceResult>& got,
                            const std::vector<ReferenceResult>& want,
                            const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label << ": result cardinality";
  size_t mismatches = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    const bool agg_ok =
        std::isnan(want[i].aggregate)
            ? std::isnan(got[i].aggregate)
            : std::abs(got[i].aggregate - want[i].aggregate) < 1e-6;
    if (got[i].base != want[i].base ||
        got[i].match_count != want[i].match_count || !agg_ok) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << label << ": result " << i
                      << " differs: base ts=" << got[i].base.ts
                      << " key=" << got[i].base.key
                      << " got(count=" << got[i].match_count
                      << ", agg=" << got[i].aggregate
                      << ") want(count=" << want[i].match_count
                      << ", agg=" << want[i].aggregate << ")";
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << label;
}

WorkloadSpec TestWorkload(uint64_t seed, uint64_t keys = 8) {
  WorkloadSpec w;
  w.num_keys = keys;
  w.window = IntervalWindow{400, 0};
  w.lateness_us = 50;
  w.disorder_bound_us = 50;
  w.event_rate_per_sec = 1'000'000;  // integer us spacing: unique ts
  w.total_tuples = 20'000;
  w.probe_fraction = 0.5;
  w.seed = seed;
  return w;
}

QuerySpec TestQuery(LatePolicy policy = LatePolicy::kBestEffortJoin) {
  QuerySpec q;
  q.window = IntervalWindow{400, 0};
  q.lateness_us = 50;
  q.agg = AggKind::kSum;
  q.emit_mode = EmitMode::kWatermark;
  q.late_policy = policy;
  return q;
}

constexpr uint64_t kWmEvery = 512;

/// Runs every differential case under a fake 2-node machine (node0 owns
/// CPU 0, node1 owns CPU 1) so `numa auto` resolves an *active* plan
/// even on a single-socket CI host; the pins land where they can.
class NumaDifferentialTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, LatePolicy>> {
 protected:
  void SetUp() override {
    WriteFakeNode(dir_.path(), 0, "0\n");
    WriteFakeNode(dir_.path(), 1, "1\n");
    WriteFile(dir_.path() + "/online", "0-1\n");
    env_ = std::make_unique<ScopedEnv>("OIJ_FAKE_SYSFS", dir_.path());
  }
  void TearDown() override { env_.reset(); }

 private:
  TempDir dir_;
  std::unique_ptr<ScopedEnv> env_;
};

TEST_P(NumaDifferentialTest, AutoEqualsOffEqualsOracle) {
  const auto [kind, policy] = GetParam();
  WorkloadSpec w = TestWorkload(401);
  if (policy != LatePolicy::kBestEffortJoin) {
    w.late_flood_fraction = 0.10;  // give the lateness gate work
    w.late_flood_extra_us = 60;
  }
  const auto events = Generate(w);
  const QuerySpec q = TestQuery(policy);
  auto expected = ReferenceJoinWithPolicy(events, q, kWmEvery);
  SortResults(&expected);

  EngineOptions auto_numa;
  auto_numa.num_joiners = 3;
  EngineOptions off = auto_numa;
  off.numa.mode = NumaMode::kOff;

  const auto run_auto = RunOverEvents(kind, events, q, auto_numa, kWmEvery);
  const auto run_off = RunOverEvents(kind, events, q, off, kWmEvery);

  const std::string label = std::string(EngineKindName(kind)) + "/" +
                            std::string(LatePolicyName(policy));
  ExpectResultsIdentical(run_auto.results, expected,
                         label + "/auto-vs-oracle");
  ExpectResultsIdentical(run_off.results, expected,
                         label + "/off-vs-oracle");
  ExpectResultsIdentical(run_auto.results, run_off.results,
                         label + "/auto-vs-off");

  // The auto run must actually have placed: 2 fake nodes, every joiner
  // mapped, pins recorded. The off run must be a flat pool.
  EXPECT_TRUE(run_auto.stats.numa_active) << label;
  EXPECT_EQ(run_auto.stats.numa_nodes, 2u) << label;
  ASSERT_EQ(run_auto.stats.numa_pin_cpus.size(), 3u) << label;
  ASSERT_EQ(run_auto.stats.numa_joiner_node.size(), 3u) << label;
  for (uint32_t node : run_auto.stats.numa_joiner_node) {
    EXPECT_LT(node, 2u) << label;
  }
  EXPECT_FALSE(run_off.stats.numa_active) << label;
  EXPECT_TRUE(run_off.stats.numa_pin_cpus.empty()) << label;
}

INSTANTIATE_TEST_SUITE_P(
    EnginesTimesPolicies, NumaDifferentialTest,
    ::testing::Combine(::testing::Values(EngineKind::kKeyOij,
                                         EngineKind::kScaleOij),
                       ::testing::Values(LatePolicy::kBestEffortJoin,
                                         LatePolicy::kDropAndCount,
                                         LatePolicy::kSideChannel)),
    [](const auto& info) {
      std::string name =
          std::string(EngineKindName(std::get<0>(info.param))) + "_" +
          std::string(LatePolicyName(std::get<1>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(NumaEngineTest, PerNodeArenaGaugesSplitWithoutSlabWalks) {
  // Scale-OIJ with pooled arenas under a fake 2-node machine: the
  // per-node gauges must cover every node ordinal and sum to the
  // aggregate MemStats (the split regroups per-arena counters, it never
  // re-walks slabs, so the totals must agree exactly).
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0\n");
  WriteFakeNode(dir.path(), 1, "1\n");
  ScopedEnv env("OIJ_FAKE_SYSFS", dir.path());

  const auto events = Generate(TestWorkload(411));
  const QuerySpec q = TestQuery();
  EngineOptions options;
  options.num_joiners = 4;
  const auto run =
      RunOverEvents(EngineKind::kScaleOij, events, q, options, kWmEvery);
  ASSERT_TRUE(run.stats.numa_active);
  ASSERT_EQ(run.stats.numa_node_arena_bytes.size(), 2u);
  ASSERT_EQ(run.stats.numa_node_arena_live_nodes.size(), 2u);
  uint64_t bytes = 0;
  for (uint64_t v : run.stats.numa_node_arena_bytes) bytes += v;
  EXPECT_EQ(bytes, run.stats.mem.arena_reserved_bytes);
  EXPECT_GT(bytes, 0u);
}

TEST(NumaEngineTest, ExplicitMapRunsExactOnRealHost) {
  // No fake sysfs: a real (possibly 1-CPU) machine. An explicit map
  // forces the placement machinery on — invalid pins no-op, mbind to a
  // real node 0 may or may not succeed — and results stay exact.
  const auto events = Generate(TestWorkload(421));
  const QuerySpec q = TestQuery();
  auto expected = ReferenceJoinWithPolicy(events, q, kWmEvery);
  SortResults(&expected);
  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    EngineOptions options;
    options.num_joiners = 2;
    options.numa.explicit_cpus = {0, -1};
    const auto run = RunOverEvents(kind, events, q, options, kWmEvery);
    const std::string label(EngineKindName(kind));
    ExpectResultsIdentical(run.results, expected, label + "/explicit");
    EXPECT_TRUE(run.stats.numa_active) << label;
    EXPECT_EQ(run.stats.numa_pin_cpus, (std::vector<int>{0, -1})) << label;
  }
}

TEST(NumaEngineTest, MultiQueryCatalogAutoVsOffAgree) {
  TempDir dir;
  WriteFakeNode(dir.path(), 0, "0\n");
  WriteFakeNode(dir.path(), 1, "1\n");
  ScopedEnv env("OIJ_FAKE_SYSFS", dir.path());

  const auto events = Generate(TestWorkload(431, /*keys=*/12));
  const QuerySpec primary = TestQuery();
  QuerySpec narrow = TestQuery(LatePolicy::kDropAndCount);
  narrow.window = IntervalWindow{150, 0};
  narrow.agg = AggKind::kMin;

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    std::map<uint32_t, std::vector<ReferenceResult>> by_query_auto;
    std::map<uint32_t, std::vector<ReferenceResult>> by_query_off;
    for (bool numa_on : {true, false}) {
      EngineOptions options;
      options.num_joiners = 3;
      options.numa.mode = numa_on ? NumaMode::kAuto : NumaMode::kOff;
      CollectingSink sink;
      auto engine = CreateEngine(kind, primary, options, &sink);
      ASSERT_TRUE(engine->Start().ok());
      ASSERT_TRUE(engine->AddQuery("narrow", narrow).ok());
      WatermarkTracker tracker(primary.lateness_us);
      uint64_t n = 0;
      for (const StreamEvent& ev : events) {
        tracker.Observe(ev.tuple.ts);
        engine->Push(ev, MonotonicNowUs());
        if (++n % kWmEvery == 0) {
          engine->SignalWatermark(tracker.watermark());
        }
      }
      const EngineStats stats = engine->Finish();
      EXPECT_EQ(stats.numa_active, numa_on) << EngineKindName(kind);
      auto& by_query = numa_on ? by_query_auto : by_query_off;
      for (const JoinResult& r : sink.TakeResults()) {
        by_query[r.query].push_back({r.base, r.aggregate, r.match_count});
      }
      for (auto& [ord, results] : by_query) SortResults(&results);
    }
    ASSERT_EQ(by_query_auto.size(), 2u) << EngineKindName(kind);
    for (const auto& [ord, results] : by_query_auto) {
      ExpectResultsIdentical(results, by_query_off[ord],
                             std::string(EngineKindName(kind)) + "/query" +
                                 std::to_string(ord));
    }
  }
}

// ------------------------------------------- /statz rendering regression

TEST(NumaStatzTest, PerNodeArraysRenderWithValidSeparators) {
  AdminSnapshot snap;
  snap.engine_name = "scale-oij";
  snap.workload_name = "test";
  snap.progress.numa_active = true;
  snap.progress.numa_nodes = 2;
  snap.progress.numa_pin_cpus = {0, 1, -1};
  snap.progress.numa_joiner_node = {0, 1, 0};
  snap.progress.per_node_arena_bytes = {65536, 131072};
  snap.progress.per_node_arena_live_nodes = {10, 20};
  snap.progress.numa_cross_replications = 3;
  snap.progress.numa_cross_dispatches = 7;

  const std::string json = RenderStatzJson(snap);

  // Exact separator check for the whole numa object: a missing comma
  // between array elements (the run-summary joiner-array bug) or an
  // extra trailing comma would break this substring.
  EXPECT_NE(json.find("\"numa\":{\"active\":true,\"nodes\":2,"
                      "\"pin_cpus\":[0,1,-1],\"joiner_node\":[0,1,0],"
                      "\"per_node_arena_bytes\":[65536,131072],"
                      "\"per_node_arena_live_nodes\":[10,20],"
                      "\"cross_replications\":3,\"cross_dispatches\":7}"),
            std::string::npos)
      << json;

  // Structural sanity: balanced braces/brackets outside string literals.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);

  // The inactive single-node shape renders too (arrays empty, active
  // false) — the admin page never branches into invalid JSON.
  AdminSnapshot flat;
  flat.engine_name = "key-oij";
  const std::string flat_json = RenderStatzJson(flat);
  EXPECT_NE(flat_json.find("\"numa\":{\"active\":false,\"nodes\":1,"
                           "\"pin_cpus\":[],\"joiner_node\":[],"
                           "\"per_node_arena_bytes\":[],"
                           "\"per_node_arena_live_nodes\":[],"
                           "\"cross_replications\":0,"
                           "\"cross_dispatches\":0}"),
            std::string::npos)
      << flat_json;
}

TEST(NumaStatzTest, PrometheusExportsPerNodeGauges) {
  AdminSnapshot snap;
  snap.engine_name = "scale-oij";
  snap.workload_name = "test";
  snap.progress.numa_active = true;
  snap.progress.numa_nodes = 2;
  snap.progress.numa_pin_cpus = {0, 1};
  snap.progress.numa_joiner_node = {0, 1};
  snap.progress.per_node_arena_bytes = {4096, 8192};
  snap.progress.per_node_arena_live_nodes = {5, 6};
  snap.progress.numa_cross_replications = 2;
  snap.progress.numa_cross_dispatches = 9;

  const std::string text = RenderPrometheusMetrics(snap);
  EXPECT_NE(text.find("oij_numa_nodes 2"), std::string::npos);
  EXPECT_NE(text.find("oij_numa_active 1"), std::string::npos);
  EXPECT_NE(text.find("oij_numa_joiner_cpu{joiner=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("oij_numa_node_arena_bytes{node=\"0\"} 4096"),
            std::string::npos);
  EXPECT_NE(text.find("oij_numa_node_arena_bytes{node=\"1\"} 8192"),
            std::string::npos);
  EXPECT_NE(text.find("oij_numa_node_arena_live_nodes{node=\"1\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("oij_numa_cross_replications_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("oij_numa_cross_dispatches_total 9"),
            std::string::npos);

  // Flat machine: the always-on gauges still export; the per-node and
  // per-joiner series are absent.
  AdminSnapshot flat;
  flat.engine_name = "key-oij";
  const std::string flat_text = RenderPrometheusMetrics(flat);
  EXPECT_NE(flat_text.find("oij_numa_nodes 1"), std::string::npos);
  EXPECT_NE(flat_text.find("oij_numa_active 0"), std::string::npos);
  EXPECT_EQ(flat_text.find("oij_numa_joiner_cpu"), std::string::npos);
  EXPECT_EQ(flat_text.find("oij_numa_node_arena_bytes"),
            std::string::npos);
}

}  // namespace
}  // namespace oij
