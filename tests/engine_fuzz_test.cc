// Randomized differential testing: every trial draws a random workload,
// query, engine and configuration, runs it in exact (watermark) mode, and
// compares against the reference oracle. Any mismatch prints the full
// recipe needed to reproduce it. This is the broad-coverage backstop
// behind the hand-picked grids in engine_test.cc.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/clock.h"
#include "common/random.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "stream/generator.h"

namespace oij {
namespace {

struct FuzzCase {
  WorkloadSpec workload;
  QuerySpec query;
  EngineKind kind = EngineKind::kScaleOij;
  EngineOptions options;
  uint64_t wm_every = 256;

  std::string Describe() const {
    std::ostringstream os;
    os << "engine=" << EngineKindName(kind)
       << " joiners=" << options.num_joiners
       << " dyn=" << options.dynamic_schedule
       << " inc=" << options.incremental_agg
       << " partitions=" << options.num_partitions
       << " | keys=" << workload.num_keys << " pre=" << query.window.pre
       << " fol=" << query.window.fol << " lateness=" << query.lateness_us
       << " probe_frac=" << workload.probe_fraction
       << " tuples=" << workload.total_tuples
       << " agg=" << AggKindName(query.agg)
       << " seed=" << workload.seed << " wm_every=" << wm_every;
    return os.str();
  }
};

FuzzCase DrawCase(Rng& rng) {
  FuzzCase c;
  c.workload.seed = rng.Next();
  c.workload.num_keys = 1 + rng.NextBelow(200);
  c.workload.total_tuples = 8'000 + rng.NextBelow(12'000);
  c.workload.event_rate_per_sec = 1'000'000;
  c.workload.probe_fraction = 0.2 + rng.NextDouble() * 0.6;
  const Timestamp lateness = static_cast<Timestamp>(rng.NextBelow(500));
  c.workload.lateness_us = lateness;
  c.workload.disorder_bound_us =
      static_cast<Timestamp>(rng.NextBelow(lateness + 1));
  if (rng.NextBelow(4) == 0) {
    c.workload.key_distribution = KeyDistribution::kZipf;
    c.workload.zipf_theta = rng.NextDouble() * 1.2;
  }

  c.query.window.pre = static_cast<Timestamp>(rng.NextBelow(2000));
  c.query.window.fol = static_cast<Timestamp>(rng.NextBelow(400));
  c.query.lateness_us = lateness;
  c.query.emit_mode = EmitMode::kWatermark;
  const AggKind kinds[] = {AggKind::kSum, AggKind::kCount, AggKind::kAvg,
                           AggKind::kMin, AggKind::kMax};
  c.query.agg = kinds[rng.NextBelow(5)];
  c.workload.window = c.query.window;

  const EngineKind engines[] = {EngineKind::kKeyOij, EngineKind::kScaleOij,
                                EngineKind::kSplitJoin,
                                EngineKind::kHandshake};
  c.kind = engines[rng.NextBelow(4)];
  c.options.num_joiners = 1 + static_cast<uint32_t>(rng.NextBelow(6));
  c.options.dynamic_schedule = rng.NextBelow(2) == 0;
  c.options.incremental_agg = rng.NextBelow(2) == 0;
  c.options.num_partitions = 16 << rng.NextBelow(5);
  c.options.rebalance_interval_events = 1024 << rng.NextBelow(4);
  c.wm_every = 64 << rng.NextBelow(5);
  return c;
}

void RunCase(const FuzzCase& c) {
  SCOPED_TRACE(c.Describe());

  WorkloadGenerator gen(c.workload);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);

  auto expected = ReferenceJoin(events, c.query);
  SortResults(&expected);

  CollectingSink sink;
  auto engine = CreateEngine(c.kind, c.query, c.options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(c.query.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& e : events) {
    tracker.Observe(e.tuple.ts);
    engine->Push(e, MonotonicNowUs());
    if (++n % c.wm_every == 0) {
      engine->SignalWatermark(tracker.watermark());
    }
  }
  engine->Finish();

  std::vector<ReferenceResult> got;
  for (const JoinResult& r : sink.TakeResults()) {
    got.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&got);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].base, expected[i].base) << "result " << i;
    ASSERT_EQ(got[i].match_count, expected[i].match_count)
        << "result " << i << " base ts=" << got[i].base.ts
        << " key=" << got[i].base.key;
    if (std::isnan(expected[i].aggregate)) {
      ASSERT_TRUE(std::isnan(got[i].aggregate)) << "result " << i;
    } else {
      ASSERT_NEAR(got[i].aggregate, expected[i].aggregate, 1e-6)
          << "result " << i;
    }
  }
}

class EngineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzzTest, RandomConfigMatchesReference) {
  Rng rng(0xF022 + static_cast<uint64_t>(GetParam()) * 7919);
  RunCase(DrawCase(rng));
}

INSTANTIATE_TEST_SUITE_P(Trials, EngineFuzzTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace oij
