// Columnar batch-join kernel tests (src/col/, DESIGN.md §5h):
//
//   * transpose round-trip fuzz over random schemas, including NaN /
//     signalling-NaN payload bit patterns and all-zero "null" rows;
//   * ColumnBuffer arena slab loans: acquisition, heap migration past
//     one slab, and return of the slab to the arena's empty pool;
//   * sweep-merge window slices vs a brute-force filter on adversarial
//     timestamp patterns (duplicates on boundaries, ±1 edges);
//   * GatherRange vs TimeTravelIndex::ForEachInRange equivalence;
//   * SIMD-vs-portable bit-exactness of the slice aggregation kernels;
//   * engine differentials: columnar on vs off vs the policy-aware
//     reference oracle, across both parallel index engines, lateness
//     policies, aggregate kinds, multi-query catalogs, the NaN-payload
//     scalar fallback, and a crash-recovery replay.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "col/column_batch.h"
#include "col/sweep_merge.h"
#include "col/vector_agg.h"
#include "common/clock.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "mem/node_arena.h"
#include "row/columnar.h"
#include "row/row.h"
#include "row/schema.h"
#include "skiplist/time_travel_index.h"
#include "stream/generator.h"

namespace oij {
namespace {

// ------------------------------------------------------------ helpers

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

struct EngineRun {
  std::vector<ReferenceResult> results;
  EngineStats stats;
};

EngineRun RunOverEvents(EngineKind kind,
                        const std::vector<StreamEvent>& events,
                        const QuerySpec& spec, EngineOptions options,
                        uint64_t wm_every) {
  CollectingSink sink;
  auto engine = CreateEngine(kind, spec, options, &sink);
  EXPECT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(spec.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % wm_every == 0) engine->SignalWatermark(tracker.watermark());
  }
  EngineRun run;
  run.stats = engine->Finish();
  for (const JoinResult& r : sink.TakeResults()) {
    run.results.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&run.results);
  return run;
}

/// NaN-tolerant comparison: aggregates must both be NaN or agree within
/// tolerance; match counts must agree exactly.
void ExpectResultsEqual(const std::vector<ReferenceResult>& got,
                        const std::vector<ReferenceResult>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label << ": result cardinality";
  size_t mismatches = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    const bool agg_ok =
        std::isnan(want[i].aggregate)
            ? std::isnan(got[i].aggregate)
            : std::abs(got[i].aggregate - want[i].aggregate) < 1e-6;
    if (got[i].base != want[i].base ||
        got[i].match_count != want[i].match_count || !agg_ok) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << label << ": result " << i
                      << " differs: base ts=" << got[i].base.ts
                      << " key=" << got[i].base.key
                      << " got(count=" << got[i].match_count
                      << ", agg=" << got[i].aggregate
                      << ") want(count=" << want[i].match_count
                      << ", agg=" << want[i].aggregate << ")";
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << label;
}

WorkloadSpec TestWorkload(uint64_t seed, uint64_t keys = 8,
                          Timestamp disorder = 50) {
  WorkloadSpec w;
  w.num_keys = keys;
  w.window = IntervalWindow{400, 0};
  w.lateness_us = disorder;
  w.disorder_bound_us = disorder;
  w.event_rate_per_sec = 1'000'000;  // integer us spacing: unique ts
  w.total_tuples = 30'000;
  w.probe_fraction = 0.5;
  w.seed = seed;
  return w;
}

QuerySpec TestQuery(AggKind agg = AggKind::kSum, Timestamp lateness = 50,
                    IntervalWindow window = {400, 0},
                    LatePolicy policy = LatePolicy::kBestEffortJoin) {
  QuerySpec q;
  q.window = window;
  q.lateness_us = lateness;
  q.agg = agg;
  q.emit_mode = EmitMode::kWatermark;
  q.late_policy = policy;
  return q;
}

// --------------------------------------- ColumnarBlock round-trip fuzz

TEST(ColumnarBlockTest, TransposeRoundTripFuzz) {
  std::mt19937_64 rng(0xc01u);
  const std::vector<FieldType> kTypes = {
      FieldType::kInt64, FieldType::kDouble, FieldType::kTimestamp};
  for (int iter = 0; iter < 50; ++iter) {
    // Random schema: 1..6 fields of random types.
    const size_t num_fields = 1 + rng() % 6;
    std::vector<Field> fields;
    for (size_t f = 0; f < num_fields; ++f) {
      fields.push_back(Field{"f" + std::to_string(f),
                             kTypes[rng() % kTypes.size()]});
    }
    Schema schema(std::move(fields));
    ColumnarBlock block(&schema);
    RowBuilder builder(&schema);

    // Random rows, salted with hostile payload bit patterns: quiet and
    // negative NaN, infinities, -0.0, and all-zero "null" rows.
    const size_t num_rows = 1 + rng() % 64;
    std::vector<std::vector<uint8_t>> originals;
    for (size_t r = 0; r < num_rows; ++r) {
      builder.Reset();
      if (rng() % 8 != 0) {  // one in eight rows stays all-zero
        for (size_t f = 0; f < num_fields; ++f) {
          const int idx = static_cast<int>(f);
          switch (schema.field(f).type) {
            case FieldType::kInt64:
              builder.SetInt64(idx, static_cast<int64_t>(rng()));
              break;
            case FieldType::kTimestamp:
              builder.SetTimestamp(idx, static_cast<Timestamp>(rng()));
              break;
            case FieldType::kDouble: {
              double v;
              switch (rng() % 6) {
                case 0:
                  v = std::numeric_limits<double>::quiet_NaN();
                  break;
                case 1:
                  v = -std::numeric_limits<double>::quiet_NaN();
                  break;
                case 2:
                  v = std::numeric_limits<double>::infinity();
                  break;
                case 3:
                  v = -0.0;
                  break;
                default: {
                  // Any bit pattern is a valid double to transpose.
                  const uint64_t bits = rng();
                  std::memcpy(&v, &bits, 8);
                  break;
                }
              }
              builder.SetDouble(idx, v);
              break;
            }
          }
        }
      }
      originals.push_back(builder.row());
      block.AppendRow(builder.row().data());
    }

    ASSERT_EQ(block.num_rows(), num_rows);
    std::vector<uint8_t> out(schema.row_bytes());
    for (size_t r = 0; r < num_rows; ++r) {
      block.MaterializeRow(r, out.data());
      EXPECT_EQ(std::memcmp(out.data(), originals[r].data(),
                            schema.row_bytes()),
                0)
          << "iter " << iter << " row " << r << ": round trip not bit-exact";
      // Typed accessors agree with a RowView over the original bytes.
      RowView view(&schema, originals[r].data());
      for (size_t f = 0; f < num_fields; ++f) {
        const int idx = static_cast<int>(f);
        if (schema.field(f).type == FieldType::kDouble) {
          uint64_t a;
          uint64_t b;
          const double da = block.GetDouble(f, r);
          const double db = view.GetDouble(idx);
          std::memcpy(&a, &da, 8);
          std::memcpy(&b, &db, 8);
          EXPECT_EQ(a, b);
        } else {
          EXPECT_EQ(block.GetInt64(f, r), view.GetInt64(idx));
        }
      }
    }

    // AppendRow(RowView) produces identical columns.
    ColumnarBlock via_view(&schema);
    for (const auto& row : originals) {
      via_view.AppendRow(RowView(&schema, row.data()));
    }
    for (size_t c = 0; c < num_fields; ++c) {
      EXPECT_EQ(std::memcmp(via_view.ColumnData(c), block.ColumnData(c),
                            num_rows * 8),
                0);
    }
  }
}

// ----------------------------------------------- ColumnBuffer slab loans

TEST(ColumnBufferTest, LoansSlabThenMigratesToHeap) {
  NodeArena arena;
  constexpr size_t kSlabCap = NodeArena::kSlabDataBytes / sizeof(double);
  {
    col::ColumnBuffer<double> buf(&arena);
    buf.PushBack(1.5);
    EXPECT_TRUE(buf.arena_backed());
    EXPECT_EQ(arena.snapshot().slab_loans, 1u);
    // Fill the whole slab: no migration yet.
    for (size_t i = 1; i < kSlabCap; ++i) {
      buf.PushBack(static_cast<double>(i));
    }
    EXPECT_TRUE(buf.arena_backed());
    EXPECT_EQ(buf.size(), kSlabCap);
    // One past the slab migrates to the heap; contents survive and the
    // slab goes back to the arena's empty pool.
    buf.PushBack(-2.0);
    EXPECT_FALSE(buf.arena_backed());
    EXPECT_EQ(buf.size(), kSlabCap + 1);
    EXPECT_EQ(buf[0], 1.5);
    EXPECT_EQ(buf[kSlabCap - 1], static_cast<double>(kSlabCap - 1));
    EXPECT_EQ(buf[kSlabCap], -2.0);
    EXPECT_GE(arena.EmptySlabCount(), 1u);
  }
  // A fresh buffer recycles the returned slab instead of growing the
  // arena.
  const uint64_t reserved_before = arena.snapshot().reserved_bytes;
  col::ColumnBuffer<double> again(&arena);
  again.PushBack(3.0);
  EXPECT_TRUE(again.arena_backed());
  EXPECT_EQ(arena.snapshot().reserved_bytes, reserved_before);
}

TEST(ColumnBufferTest, ClearKeepsBackingStore) {
  NodeArena arena;
  col::ColumnBuffer<Timestamp> buf(&arena);
  for (int i = 0; i < 100; ++i) buf.PushBack(i);
  EXPECT_TRUE(buf.arena_backed());
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.arena_backed());  // reuse across drains, no churn
  buf.PushBack(7);
  EXPECT_EQ(buf[0], 7);
  // Heap mode (no arena) works the same.
  col::ColumnBuffer<double> heap;
  for (int i = 0; i < 1000; ++i) heap.PushBack(i * 0.5);
  EXPECT_FALSE(heap.arena_backed());
  EXPECT_EQ(heap[999], 999 * 0.5);
}

// ------------------------------------------- sweep merge: window slices

/// Brute-force oracle for one base's slice.
col::BaseSlice BruteSlice(Timestamp base_ts, IntervalWindow w,
                          const std::vector<Timestamp>& probe_ts) {
  col::BaseSlice s;
  const Timestamp start = w.start_for(base_ts);
  const Timestamp end = w.end_for(base_ts);
  uint32_t i = 0;
  while (i < probe_ts.size() && probe_ts[i] < start) ++i;
  s.lo = i;
  while (i < probe_ts.size() && probe_ts[i] <= end) ++i;
  s.hi = i;
  return s;
}

TEST(SweepMergeTest, SlicesMatchBruteForceOnAdversarialPatterns) {
  std::mt19937_64 rng(0x51eeu);
  for (int iter = 0; iter < 200; ++iter) {
    const IntervalWindow window{static_cast<Timestamp>(rng() % 20),
                                static_cast<Timestamp>(rng() % 20)};
    // Probe timestamps: sorted, dense, with duplicate runs — so window
    // boundaries frequently land exactly on (runs of) equal timestamps.
    std::vector<Timestamp> probes;
    Timestamp t = static_cast<Timestamp>(rng() % 5);
    const size_t num_probes = rng() % 50;
    for (size_t i = 0; i < num_probes; ++i) {
      probes.push_back(t);
      if (rng() % 3 != 0) t += static_cast<Timestamp>(rng() % 3);
    }
    // Base timestamps: sorted, overlapping the probe range, including
    // exact boundary hits and ±1 off-by-one neighbours.
    std::vector<Timestamp> bases;
    Timestamp bt = 0;
    const size_t num_bases = 1 + rng() % 20;
    for (size_t i = 0; i < num_bases; ++i) {
      bt += static_cast<Timestamp>(rng() % 4);
      switch (rng() % 4) {
        case 0:
          bases.push_back(bt);
          break;
        case 1:
          bases.push_back(bt + 1);
          break;
        case 2:
          bases.push_back(bt > 0 ? bt - 1 : bt);
          break;
        default:
          bases.push_back(probes.empty()
                              ? bt
                              : probes[rng() % probes.size()] + window.pre);
          break;
      }
    }
    std::sort(bases.begin(), bases.end());

    std::vector<col::BaseSlice> got(bases.size());
    col::ComputeWindowSlices(bases.data(), bases.size(), window,
                             probes.data(), probes.size(), got.data());
    for (size_t i = 0; i < bases.size(); ++i) {
      const col::BaseSlice want = BruteSlice(bases[i], window, probes);
      EXPECT_EQ(got[i].lo, want.lo)
          << "iter " << iter << " base " << i << " ts=" << bases[i];
      EXPECT_EQ(got[i].hi, want.hi)
          << "iter " << iter << " base " << i << " ts=" << bases[i];
    }
  }
}

TEST(SweepMergeTest, EmptyProbesAndDisjointWindows) {
  const IntervalWindow window{5, 0};
  const std::vector<Timestamp> bases = {10, 100, 1000};
  std::vector<col::BaseSlice> slices(bases.size());
  // No probes at all.
  col::ComputeWindowSlices(bases.data(), bases.size(), window, nullptr, 0,
                           slices.data());
  for (const auto& s : slices) EXPECT_EQ(s.lo, s.hi);
  // Probes entirely between the windows: every slice is empty but the
  // cursors must never regress.
  const std::vector<Timestamp> probes = {30, 40, 50, 500, 600};
  col::ComputeWindowSlices(bases.data(), bases.size(), window, probes.data(),
                           probes.size(), slices.data());
  for (size_t i = 0; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].lo, slices[i].hi) << i;
    if (i > 0) {
      EXPECT_GE(slices[i].lo, slices[i - 1].lo);
    }
  }
}

// --------------------------------------- GatherRange vs ForEachInRange

TEST(SweepMergeTest, GatherRangeMatchesForEachInRange) {
  std::mt19937_64 rng(0x6a7eu);
  TimeTravelIndex index;
  for (int i = 0; i < 2000; ++i) {
    Tuple t;
    t.key = static_cast<Key>(rng() % 5);
    t.ts = static_cast<Timestamp>(rng() % 500);
    t.payload = static_cast<double>(rng() % 1000) * 0.25;
    index.Insert(t);
  }
  col::ProbeColumns probes;
  for (int iter = 0; iter < 100; ++iter) {
    const Key key = static_cast<Key>(rng() % 6);  // includes a missing key
    Timestamp lo = static_cast<Timestamp>(rng() % 520);
    Timestamp hi = static_cast<Timestamp>(rng() % 520);
    if (lo > hi) std::swap(lo, hi);

    std::vector<Timestamp> want_ts;
    std::vector<double> want_payload;
    index.ForEachInRange(key, lo, hi, [&](const Tuple& t) {
      want_ts.push_back(t.ts);
      want_payload.push_back(t.payload);
    });

    probes.Clear();
    size_t touched = 0;
    const size_t gathered = col::GatherRange(
        index, key, lo, hi, &probes, [&](const Tuple&) { ++touched; });
    ASSERT_EQ(gathered, want_ts.size()) << "key=" << key << " [" << lo
                                        << "," << hi << "]";
    EXPECT_EQ(touched, gathered);
    EXPECT_EQ(probes.size(), gathered);
    probes.EnsureSorted();  // single source: must already be sorted
    for (size_t i = 0; i < gathered; ++i) {
      EXPECT_EQ(probes.ts()[i], want_ts[i]);
      EXPECT_EQ(probes.payload()[i], want_payload[i]);
    }
  }
}

TEST(ProbeColumnsTest, EnsureSortedMergesMultipleSources) {
  // Two ts-sorted sources appended back to back (as a team gather does):
  // EnsureSorted must produce one globally sorted sequence, keeping the
  // payload paired with its timestamp.
  col::ProbeColumns probes;
  for (Timestamp t = 0; t < 50; t += 2) probes.Append(t, t * 1.0);
  for (Timestamp t = 1; t < 50; t += 2) probes.Append(t, t * 1.0);
  probes.EnsureSorted();
  ASSERT_EQ(probes.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(probes.ts()[i], static_cast<Timestamp>(i));
    EXPECT_EQ(probes.payload()[i], static_cast<double>(i));
  }
  // all_finite flips on NaN and resets on Clear.
  EXPECT_TRUE(probes.all_finite());
  probes.Append(100, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(probes.all_finite());
  probes.Clear();
  EXPECT_TRUE(probes.all_finite());
}

// ------------------------------------ SIMD vs portable bit-exactness

TEST(VectorAggTest, SimdMatchesPortableBitExactly) {
  std::mt19937_64 rng(0x51u);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                   size_t{5}, size_t{7}, size_t{8}, size_t{15}, size_t{16},
                   size_t{17}, size_t{63}, size_t{64}, size_t{1000},
                   size_t{4097}}) {
    std::vector<double> v(n);
    for (double& x : v) x = dist(rng);
    const col::SliceAgg a = col::AggregateSlice(v.data(), n);
    const col::SliceAgg b = col::AggregateSlicePortable(v.data(), n);
    EXPECT_EQ(a.count, b.count) << "n=" << n;
    uint64_t abits;
    uint64_t bbits;
    std::memcpy(&abits, &a.sum, 8);
    std::memcpy(&bbits, &b.sum, 8);
    EXPECT_EQ(abits, bbits) << "n=" << n << ": sum not bit-exact";
    if (n > 0) {
      EXPECT_EQ(a.min, b.min) << "n=" << n;
      EXPECT_EQ(a.max, b.max) << "n=" << n;
    }
  }
}

TEST(VectorAggTest, AggregatesMatchScalarReference) {
  std::mt19937_64 rng(0xa9u);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  std::vector<double> v(777);
  for (double& x : v) x = dist(rng);
  const col::SliceAgg a = col::AggregateSlice(v.data(), v.size());
  AggState ref;
  for (double x : v) ref.Add(x);
  EXPECT_EQ(a.count, ref.count);
  EXPECT_NEAR(a.sum, ref.sum, 1e-9 * std::abs(ref.sum) + 1e-9);
  EXPECT_EQ(a.min, ref.min);
  EXPECT_EQ(a.max, ref.max);
  // ToAggState round-trips, including the empty case.
  const AggState empty = col::SliceAgg{}.ToAggState();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.Result(AggKind::kSum), 0.0);
}

TEST(VectorAggTest, PrefixSumsMatchSliceSums) {
  std::mt19937_64 rng(0x9eu);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  std::vector<double> v(512);
  for (double& x : v) x = dist(rng);
  std::vector<double> prefix(v.size() + 1);
  col::PrefixSums(v.data(), v.size(), prefix.data());
  EXPECT_EQ(prefix[0], 0.0);
  for (int iter = 0; iter < 50; ++iter) {
    size_t lo = rng() % (v.size() + 1);
    size_t hi = rng() % (v.size() + 1);
    if (lo > hi) std::swap(lo, hi);
    double want = 0.0;
    for (size_t i = lo; i < hi; ++i) want += v[i];
    EXPECT_NEAR(prefix[hi] - prefix[lo], want, 1e-9);
  }
}

// --------------------------------- engine differentials: on vs off vs oracle

constexpr uint64_t kWmEvery = 512;  // long drains: batches well past 16

class ColumnarDifferentialTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, LatePolicy>> {};

TEST_P(ColumnarDifferentialTest, OnOffOracleAgreeAcrossPolicies) {
  const auto [kind, policy] = GetParam();
  WorkloadSpec w = TestWorkload(301);
  if (policy != LatePolicy::kBestEffortJoin) {
    // Give the lateness gate something to act on.
    w.late_flood_fraction = 0.10;
    w.late_flood_extra_us = 60;
  }
  const auto events = Generate(w);
  const QuerySpec q = TestQuery(AggKind::kSum, 50, {400, 0}, policy);
  auto expected = ReferenceJoinWithPolicy(events, q, kWmEvery);
  SortResults(&expected);

  EngineOptions on;
  on.num_joiners = 3;
  on.columnar_batch = true;
  EngineOptions off = on;
  off.columnar_batch = false;

  const auto run_on = RunOverEvents(kind, events, q, on, kWmEvery);
  const auto run_off = RunOverEvents(kind, events, q, off, kWmEvery);

  const std::string label = std::string(EngineKindName(kind)) + "/" +
                            std::string(LatePolicyName(policy));
  ExpectResultsEqual(run_on.results, expected, label + "/on-vs-oracle");
  ExpectResultsEqual(run_off.results, expected, label + "/off-vs-oracle");
  // The flag-on run must actually have exercised the kernels.
  EXPECT_GT(run_on.stats.columnar_groups, 0u) << label;
  EXPECT_GT(run_on.stats.columnar_bases, 0u) << label;
  EXPECT_EQ(run_off.stats.columnar_groups, 0u) << label;
}

INSTANTIATE_TEST_SUITE_P(
    EnginesTimesPolicies, ColumnarDifferentialTest,
    ::testing::Combine(::testing::Values(EngineKind::kKeyOij,
                                         EngineKind::kScaleOij),
                       ::testing::Values(LatePolicy::kBestEffortJoin,
                                         LatePolicy::kDropAndCount,
                                         LatePolicy::kSideChannel)),
    [](const auto& info) {
      std::string name =
          std::string(EngineKindName(std::get<0>(info.param))) + "_" +
          std::string(LatePolicyName(std::get<1>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class ColumnarAggTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(ColumnarAggTest, EveryOperatorExactWithColumnarOn) {
  // Exercises all three columnar aggregation modes: prefix sums
  // (sum/count/avg incremental), full SliceAgg (min/max incremental via
  // the NI config, and the full-scan config below).
  const AggKind agg = GetParam();
  const WorkloadSpec w = TestWorkload(311);
  const QuerySpec q = TestQuery(agg);
  const auto events = Generate(w);
  auto expected = ReferenceJoinWithPolicy(events, q, kWmEvery);
  SortResults(&expected);

  for (bool incremental : {true, false}) {
    EngineOptions options;
    options.num_joiners = 3;
    options.incremental_agg = incremental;
    const auto run =
        RunOverEvents(EngineKind::kScaleOij, events, q, options, kWmEvery);
    ExpectResultsEqual(run.results, expected,
                       std::string(AggKindName(agg)) +
                           (incremental ? "/inc" : "/full"));
    EXPECT_GT(run.stats.columnar_groups, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAggs, ColumnarAggTest,
                         ::testing::Values(AggKind::kSum, AggKind::kCount,
                                           AggKind::kAvg, AggKind::kMin,
                                           AggKind::kMax),
                         [](const auto& info) {
                           return std::string(AggKindName(info.param));
                         });

TEST(ColumnarEngineTest, MixedBatchSizesInterleaveScalarAndColumnar) {
  // A small wm_every keeps many drains under columnar_min_run, so scalar
  // replays and columnar groups interleave within one run — both must
  // compose exactly, and the incremental states must survive the
  // hand-offs (Reseed / Invalidate) between the two paths.
  const WorkloadSpec w = TestWorkload(321, /*keys=*/4);
  const QuerySpec q = TestQuery();
  const auto events = Generate(w);

  for (uint64_t wm_every : {32u, 64u, 128u}) {
    auto expected = ReferenceJoinWithPolicy(events, q, wm_every);
    SortResults(&expected);
    for (EngineKind kind :
         {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
      EngineOptions options;
      options.num_joiners = 2;
      const auto run = RunOverEvents(kind, events, q, options, wm_every);
      ExpectResultsEqual(run.results, expected,
                         std::string(EngineKindName(kind)) + "/wm" +
                             std::to_string(wm_every));
    }
  }
}

TEST(ColumnarEngineTest, FollowingWindowAndWideWindowExact) {
  const WorkloadSpec w = TestWorkload(331);
  const auto events = Generate(w);
  for (IntervalWindow window :
       {IntervalWindow{200, 150}, IntervalWindow{1200, 0},
        IntervalWindow{0, 300}}) {
    const QuerySpec q = TestQuery(AggKind::kSum, 50, window);
    auto expected = ReferenceJoinWithPolicy(events, q, kWmEvery);
    SortResults(&expected);
    for (EngineKind kind :
         {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
      EngineOptions options;
      options.num_joiners = 2;
      const auto run = RunOverEvents(kind, events, q, options, kWmEvery);
      ExpectResultsEqual(run.results, expected,
                         std::string(EngineKindName(kind)) + "/pre" +
                             std::to_string(window.pre) + "+fol" +
                             std::to_string(window.fol));
      EXPECT_GT(run.stats.columnar_groups, 0u);
    }
  }
}

// ------------------------------------------------ NaN-payload fallback

TEST(ColumnarEngineTest, NaNPayloadsFallBackToScalarPath) {
  // Hand-rolled in-order stream where some probe payloads are NaN: the
  // columnar path must detect them at staging time and take the scalar
  // fallback for those groups, agreeing with the flag-off run on match
  // counts and NaN-ness of aggregates.
  std::vector<StreamEvent> events;
  std::mt19937_64 rng(0x7a11u);
  for (Timestamp t = 0; t < 4000; ++t) {
    StreamEvent ev;
    ev.tuple.ts = t;
    ev.tuple.key = static_cast<Key>(t % 3);
    if (t % 2 == 0) {
      ev.stream = StreamId::kProbe;
      ev.tuple.payload = (rng() % 16 == 0)
                             ? std::numeric_limits<double>::quiet_NaN()
                             : static_cast<double>(rng() % 100);
    } else {
      ev.stream = StreamId::kBase;
      ev.tuple.payload = 1.0;
    }
    events.push_back(ev);
  }
  QuerySpec q = TestQuery(AggKind::kSum, /*lateness=*/0, {100, 0});

  EngineOptions on;
  on.num_joiners = 2;
  // Full-scan mode on both sides: the scalar *incremental* sum state is
  // NaN-poisoned forever once a NaN probe enters (NaN − NaN = NaN), while
  // per-window recomputation — and the columnar path, which reseeds from
  // exact prefix sums — recovers as soon as the NaN leaves the window.
  on.incremental_agg = false;
  EngineOptions off = on;
  off.columnar_batch = false;

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    const auto run_on = RunOverEvents(kind, events, q, on, 256);
    const auto run_off = RunOverEvents(kind, events, q, off, 256);
    ExpectResultsEqual(run_on.results, run_off.results,
                       std::string(EngineKindName(kind)) + "/nan");
    EXPECT_GT(run_on.stats.columnar_fallbacks, 0u)
        << EngineKindName(kind) << ": NaN groups never hit the fallback";
  }
}

// ------------------------------------------------- multi-query catalogs

TEST(ColumnarEngineTest, MultiQueryCatalogOnOffOracleAgree) {
  // Three standing queries with different windows, aggregates and
  // lateness policies share the engine; every query's stream must match
  // its own oracle with the columnar path on, and the on/off runs must
  // agree per query.
  // No late flood: best-effort annex joins are bracketed rather than
  // exact (multi_query_test covers that); here every policy must be
  // oracle-exact so the columnar on/off diff is three-way.
  const WorkloadSpec w = TestWorkload(341, /*keys=*/12);
  const auto events = Generate(w);

  const QuerySpec primary = TestQuery(AggKind::kSum);
  QuerySpec narrow =
      TestQuery(AggKind::kMin, 50, {150, 0}, LatePolicy::kDropAndCount);
  QuerySpec follows =
      TestQuery(AggKind::kAvg, 50, {250, 100}, LatePolicy::kBestEffortJoin);

  std::vector<QuerySpec> specs = {primary, narrow, follows};
  std::vector<std::vector<ReferenceResult>> oracles;
  for (const QuerySpec& spec : specs) {
    auto expected = ReferenceJoinWithPolicy(events, spec, kWmEvery);
    SortResults(&expected);
    oracles.push_back(std::move(expected));
  }

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    std::map<uint32_t, std::vector<ReferenceResult>> by_query_on;
    std::map<uint32_t, std::vector<ReferenceResult>> by_query_off;
    for (bool columnar : {true, false}) {
      EngineOptions options;
      options.num_joiners = 3;
      options.columnar_batch = columnar;
      CollectingSink sink;
      auto engine = CreateEngine(kind, primary, options, &sink);
      ASSERT_TRUE(engine->Start().ok());
      ASSERT_TRUE(engine->AddQuery("narrow", narrow).ok());
      ASSERT_TRUE(engine->AddQuery("follows", follows).ok());
      WatermarkTracker tracker(primary.lateness_us);
      uint64_t n = 0;
      for (const StreamEvent& ev : events) {
        tracker.Observe(ev.tuple.ts);
        engine->Push(ev, MonotonicNowUs());
        if (++n % kWmEvery == 0) {
          engine->SignalWatermark(tracker.watermark());
        }
      }
      const EngineStats stats = engine->Finish();
      if (columnar) {
        EXPECT_GT(stats.columnar_groups, 0u);
      }
      auto& by_query = columnar ? by_query_on : by_query_off;
      for (const JoinResult& r : sink.TakeResults()) {
        by_query[r.query].push_back({r.base, r.aggregate, r.match_count});
      }
      for (auto& [ord, results] : by_query) SortResults(&results);
    }
    ASSERT_EQ(by_query_on.size(), specs.size()) << EngineKindName(kind);
    for (const auto& [ord, results] : by_query_on) {
      ASSERT_LT(ord, specs.size());
      const std::string label = std::string(EngineKindName(kind)) +
                                "/query" + std::to_string(ord);
      ExpectResultsEqual(results, oracles[ord], label + "/on-vs-oracle");
      ExpectResultsEqual(by_query_off[ord], oracles[ord],
                         label + "/off-vs-oracle");
    }
  }
}

// --------------------------------------------- crash-recovery replay

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/oij_col_batch_test_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path_ = p;
  }
  ~TempDir() {
    if (path_.empty()) return;
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

using BaseKey = std::tuple<Timestamp, Key, double>;

TEST(ColumnarEngineTest, RecoveryReplayExactWithColumnarOn) {
  // Crash after a durable punctuation, recover from the WAL and finish
  // the stream — all with the columnar path on; the union of both
  // incarnations' results must be oracle-exact (the recovery replay
  // itself drains through the batch kernels too).
  WorkloadSpec w = TestWorkload(351, /*keys=*/16);
  w.total_tuples = 12'000;
  const auto events = Generate(w);
  const QuerySpec q = TestQuery();
  constexpr uint64_t kRecoveryWmEvery = 256;
  const size_t crash_at =
      (events.size() / 2 / kRecoveryWmEvery) * kRecoveryWmEvery;
  auto expected = ReferenceJoinWithPolicy(events, q, kRecoveryWmEvery);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    TempDir dir;
    EngineOptions options;
    options.num_joiners = 2;
    options.durability.wal_dir = dir.path();
    options.durability.fsync = FsyncPolicy::kPerBatch;
    const std::string label(EngineKindName(kind));

    WatermarkTracker tracker(q.lateness_us);
    std::map<BaseKey, JoinResult> acc;
    auto accumulate = [&acc](const std::vector<JoinResult>& results) {
      for (const JoinResult& r : results) {
        acc.emplace(BaseKey{r.base.ts, r.base.key, r.base.payload}, r);
      }
    };

    CollectingSink sink1;
    auto engine1 = CreateEngine(kind, q, options, &sink1);
    ASSERT_TRUE(engine1->Start().ok()) << label;
    uint64_t n = 0;
    for (size_t i = 0; i < crash_at; ++i) {
      tracker.Observe(events[i].tuple.ts);
      engine1->Push(events[i], MonotonicNowUs());
      if (++n % kRecoveryWmEvery == 0) {
        engine1->SignalWatermark(tracker.watermark());
      }
    }
    static_cast<ParallelEngineBase*>(engine1.get())->CrashForTest();
    accumulate(sink1.TakeResults());

    CollectingSink sink2;
    auto engine2 = CreateEngine(kind, q, options, &sink2);
    ASSERT_TRUE(engine2->Start().ok()) << label;
    ASSERT_TRUE(engine2->Recover().ok()) << label;
    for (size_t i = crash_at; i < events.size(); ++i) {
      tracker.Observe(events[i].tuple.ts);
      engine2->Push(events[i], MonotonicNowUs());
      if (++n % kRecoveryWmEvery == 0) {
        engine2->SignalWatermark(tracker.watermark());
      }
    }
    const EngineStats stats = engine2->Finish();
    accumulate(sink2.TakeResults());
    EXPECT_GT(stats.columnar_groups, 0u) << label;

    ASSERT_EQ(acc.size(), expected.size()) << label << ": cardinality";
    size_t mismatches = 0;
    for (const ReferenceResult& want : expected) {
      const auto it = acc.find(
          BaseKey{want.base.ts, want.base.key, want.base.payload});
      if (it == acc.end() ||
          it->second.match_count != want.match_count ||
          std::abs(it->second.aggregate - want.aggregate) > 1e-6) {
        ++mismatches;
      }
    }
    EXPECT_EQ(mismatches, 0u) << label;
  }
}

}  // namespace
}  // namespace oij
