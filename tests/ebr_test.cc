#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ebr/epoch_manager.h"

namespace oij {
namespace {

TEST(EpochManagerTest, RegisterHandsOutDistinctSlots) {
  EpochManager mgr(4);
  EXPECT_EQ(mgr.RegisterThread(), 0u);
  EXPECT_EQ(mgr.RegisterThread(), 1u);
  EXPECT_EQ(mgr.RegisterThread(), 2u);
}

TEST(EpochManagerTest, RetiredObjectFreedAfterEpochsAdvance) {
  EpochManager mgr(2);
  const uint32_t slot = mgr.RegisterThread();
  bool freed = false;
  mgr.Retire(slot, [&freed] { freed = true; });
  EXPECT_EQ(mgr.PendingCount(slot), 1u);

  // With no active readers, a few reclaim passes advance the epoch twice.
  size_t total = 0;
  for (int i = 0; i < 4 && total == 0; ++i) total += mgr.ReclaimSome(slot);
  EXPECT_EQ(total, 1u);
  EXPECT_TRUE(freed);
  EXPECT_EQ(mgr.PendingCount(slot), 0u);
}

TEST(EpochManagerTest, ActiveReaderBlocksReclamation) {
  EpochManager mgr(4);
  const uint32_t writer = mgr.RegisterThread();
  const uint32_t reader = mgr.RegisterThread();

  mgr.Enter(reader);  // reader pins the current epoch
  bool freed = false;
  mgr.Retire(writer, [&freed] { freed = true; });

  for (int i = 0; i < 8; ++i) mgr.ReclaimSome(writer);
  EXPECT_FALSE(freed) << "object freed while a reader was pinned";

  mgr.Exit(reader);
  size_t total = 0;
  for (int i = 0; i < 8 && total == 0; ++i) total += mgr.ReclaimSome(writer);
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, ReaderInNewerEpochDoesNotBlockOldGarbage) {
  EpochManager mgr(4);
  const uint32_t writer = mgr.RegisterThread();
  const uint32_t reader = mgr.RegisterThread();

  bool freed = false;
  mgr.Retire(writer, [&freed] { freed = true; });

  // Reader enters *after* the retire: it pins the current (or newer)
  // epoch, so after two advances the old garbage is reclaimable even
  // while the reader stays active.
  for (int i = 0; i < 4; ++i) {
    mgr.Enter(reader);
    mgr.ReclaimSome(writer);
    mgr.Exit(reader);
  }
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, ReclaimAllUnsafeFreesEverything) {
  EpochManager mgr(2);
  const uint32_t slot = mgr.RegisterThread();
  int freed = 0;
  for (int i = 0; i < 10; ++i) mgr.Retire(slot, [&freed] { ++freed; });
  EXPECT_EQ(mgr.ReclaimAllUnsafe(slot), 10u);
  EXPECT_EQ(freed, 10);
}

TEST(EpochManagerTest, DestructorDrainsPending) {
  int freed = 0;
  {
    EpochManager mgr(2);
    const uint32_t slot = mgr.RegisterThread();
    mgr.Retire(slot, [&freed] { ++freed; });
  }
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, GuardIsRaii) {
  EpochManager mgr(2);
  const uint32_t writer = mgr.RegisterThread();
  const uint32_t reader = mgr.RegisterThread();
  bool freed = false;
  {
    EpochGuard guard(mgr, reader);
    mgr.Retire(writer, [&freed] { freed = true; });
    for (int i = 0; i < 8; ++i) mgr.ReclaimSome(writer);
    EXPECT_FALSE(freed);
  }
  for (int i = 0; i < 8 && !freed; ++i) mgr.ReclaimSome(writer);
  EXPECT_TRUE(freed);
}

// ------------------------------------------------- chunked (batch) retire

/// An intrusively-chained node for RetireBatch tests.
struct ChainNode {
  ChainNode* next = nullptr;
  int* freed_counter = nullptr;
};

void DrainChain(void* head, size_t count, void* /*ctx*/) {
  auto* n = static_cast<ChainNode*>(head);
  for (size_t i = 0; i < count; ++i) {
    ChainNode* next = n->next;
    ++*n->freed_counter;
    delete n;
    n = next;
  }
}

/// Builds a chain of `n` nodes, all bumping `counter` when drained.
ChainNode* MakeChain(int n, int* counter) {
  ChainNode* head = nullptr;
  for (int i = 0; i < n; ++i) {
    auto* node = new ChainNode{head, counter};
    head = node;
  }
  return head;
}

TEST(EpochManagerTest, RetireBatchCountsAndDrainsWholeRun) {
  EpochManager mgr(2);
  const uint32_t slot = mgr.RegisterThread();
  int freed = 0;
  mgr.RetireBatch(slot, MakeChain(7, &freed), 7, &DrainChain, nullptr);
  EXPECT_EQ(mgr.PendingCount(slot), 7u) << "runs count member-wise";

  size_t total = 0;
  for (int i = 0; i < 4 && total == 0; ++i) total += mgr.ReclaimSome(slot);
  EXPECT_EQ(total, 7u);
  EXPECT_EQ(freed, 7);
  EXPECT_EQ(mgr.PendingCount(slot), 0u);
}

TEST(EpochManagerTest, RetireBatchZeroCountIsNoop) {
  EpochManager mgr(2);
  const uint32_t slot = mgr.RegisterThread();
  mgr.RetireBatch(slot, nullptr, 0, &DrainChain, nullptr);
  EXPECT_EQ(mgr.PendingCount(slot), 0u);
  for (int i = 0; i < 4; ++i) mgr.ReclaimSome(slot);
}

TEST(EpochManagerTest, ActiveReaderBlocksBatchReclamation) {
  EpochManager mgr(4);
  const uint32_t writer = mgr.RegisterThread();
  const uint32_t reader = mgr.RegisterThread();

  mgr.Enter(reader);
  int freed = 0;
  mgr.RetireBatch(writer, MakeChain(3, &freed), 3, &DrainChain, nullptr);
  for (int i = 0; i < 8; ++i) mgr.ReclaimSome(writer);
  EXPECT_EQ(freed, 0) << "run drained while a reader was pinned";

  mgr.Exit(reader);
  for (int i = 0; i < 8 && freed == 0; ++i) mgr.ReclaimSome(writer);
  EXPECT_EQ(freed, 3);
}

TEST(EpochManagerTest, RunsDrainInRetireOrder) {
  // A run's chain may point into memory of a *later*-retired run (eviction
  // prefixes chain into the retained suffix, which may itself be evicted
  // next). FIFO drain order is the invariant that keeps that safe.
  EpochManager mgr(2);
  const uint32_t slot = mgr.RegisterThread();
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
    int id;
  };
  Ctx c1{&order, 1}, c2{&order, 2}, c3{&order, 3};
  auto drain = [](void*, size_t, void* ctx) {
    auto* c = static_cast<Ctx*>(ctx);
    c->order->push_back(c->id);
  };
  int dummy = 0;
  mgr.RetireBatch(slot, &dummy, 1, drain, &c1);
  mgr.RetireBatch(slot, &dummy, 2, drain, &c2);
  mgr.RetireBatch(slot, &dummy, 3, drain, &c3);
  EXPECT_EQ(mgr.PendingCount(slot), 6u);
  for (int i = 0; i < 8; ++i) mgr.ReclaimSome(slot);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(EpochManagerTest, MixedRetireAndRetireBatchBothDrainOnDestruction) {
  int freed_single = 0;
  int freed_batch = 0;
  {
    EpochManager mgr(2);
    const uint32_t slot = mgr.RegisterThread();
    mgr.Retire(slot, [&freed_single] { ++freed_single; });
    mgr.RetireBatch(slot, MakeChain(5, &freed_batch), 5, &DrainChain,
                    nullptr);
    EXPECT_EQ(mgr.PendingCount(slot), 6u);
  }
  EXPECT_EQ(freed_single, 1);
  EXPECT_EQ(freed_batch, 5);
}

// Stress: batch-retiring chains while readers enter/exit; every node must
// drain exactly once and PendingCount must return to zero.
TEST(EpochManagerTest, ConcurrentBatchStress) {
  constexpr int kReaders = 3;
  constexpr int kRuns = 2000;
  constexpr int kRunLen = 9;
  EpochManager mgr(kReaders + 1);
  const uint32_t writer = mgr.RegisterThread();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<uint32_t> slots;
  for (int r = 0; r < kReaders; ++r) slots.push_back(mgr.RegisterThread());
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard guard(mgr, slots[r]);
        std::this_thread::yield();
      }
    });
  }

  int freed = 0;
  for (int i = 0; i < kRuns; ++i) {
    mgr.RetireBatch(writer, MakeChain(kRunLen, &freed), kRunLen, &DrainChain,
                    nullptr);
    if ((i & 63) == 0) mgr.ReclaimSome(writer);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  for (int i = 0; i < 16; ++i) mgr.ReclaimSome(writer);
  mgr.ReclaimAllUnsafe(writer);
  EXPECT_EQ(freed, kRuns * kRunLen);
  EXPECT_EQ(mgr.PendingCount(writer), 0u);
}

// Stress: a writer retiring integers while readers enter/exit; every
// retired object must be freed exactly once and never while any reader
// that pre-dates its retirement is still pinned.
TEST(EpochManagerTest, ConcurrentStress) {
  constexpr int kReaders = 3;
  constexpr int kObjects = 20000;
  EpochManager mgr(kReaders + 1);
  const uint32_t writer = mgr.RegisterThread();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> freed{0};

  std::vector<std::thread> readers;
  std::vector<uint32_t> slots;
  for (int r = 0; r < kReaders; ++r) slots.push_back(mgr.RegisterThread());
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard guard(mgr, slots[r]);
        std::this_thread::yield();
      }
    });
  }

  for (int i = 0; i < kObjects; ++i) {
    mgr.Retire(writer, [&freed] {
      freed.fetch_add(1, std::memory_order_relaxed);
    });
    if ((i & 255) == 0) mgr.ReclaimSome(writer);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  for (int i = 0; i < 16; ++i) mgr.ReclaimSome(writer);
  // Stragglers are released by the final unsafe reclaim.
  freed.fetch_add(mgr.ReclaimAllUnsafe(writer));
  EXPECT_EQ(freed.load(), static_cast<uint64_t>(kObjects));
}

}  // namespace
}  // namespace oij
