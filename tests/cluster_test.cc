// Unit tests for the cluster tier's pure components: the consistent-
// hash ring (distribution, minimal disruption, filtered failover), the
// deterministic full-jitter backoff schedule, the watermark-segmented
// replay buffer (the crash-exact rerouting core), and the min-of-
// backends ClusterWatermark — including the ISSUE's dedicated
// monotonicity assertion across an eject/re-admit cycle.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/backoff.h"
#include "cluster/cluster_watermark.h"
#include "cluster/hash_ring.h"
#include "cluster/replay_buffer.h"
#include "common/hash.h"
#include "net/wire_codec.h"

namespace oij {
namespace {

// ---------------------------------------------------------- hash ring

TEST(HashRingTest, EmptyRingPicksNobody) {
  HashRing ring;
  EXPECT_EQ(ring.PickOwner(42), -1);
  EXPECT_EQ(ring.PickEligible(42, [](uint32_t) { return true; }), -1);
  EXPECT_EQ(ring.backends(), 0u);
}

TEST(HashRingTest, SingleBackendOwnsEverything) {
  HashRing ring;
  ring.AddBackend(7);
  for (Key k = 0; k < 1000; ++k) {
    EXPECT_EQ(ring.PickOwner(k), 7);
  }
  EXPECT_DOUBLE_EQ(ring.OwnershipFraction(7), 1.0);
}

TEST(HashRingTest, OwnershipRoughlyBalancedAcrossBackends) {
  HashRing ring(128);
  for (uint32_t id = 0; id < 4; ++id) ring.AddBackend(id);
  double total = 0;
  for (uint32_t id = 0; id < 4; ++id) {
    const double f = ring.OwnershipFraction(id);
    // 4 backends x 128 vnodes: each should own 25% +/- a wide margin.
    EXPECT_GT(f, 0.10) << "backend " << id;
    EXPECT_LT(f, 0.45) << "backend " << id;
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

/// The consistency property: removing one backend only moves keys that
/// backend owned — every other key keeps its owner.
TEST(HashRingTest, RemovalOnlyMovesTheRemovedBackendsKeys) {
  HashRing ring(64);
  for (uint32_t id = 0; id < 4; ++id) ring.AddBackend(id);
  std::map<Key, int> before;
  for (Key k = 0; k < 4096; ++k) before[k] = ring.PickOwner(k);

  ring.RemoveBackend(2);
  size_t moved = 0;
  for (Key k = 0; k < 4096; ++k) {
    const int now = ring.PickOwner(k);
    EXPECT_NE(now, 2);
    if (before[k] != 2) {
      EXPECT_EQ(now, before[k]) << "key " << k << " moved without cause";
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
}

/// Failover routing = the same clockwise walk with ineligible owners
/// skipped: keys owned by an eligible backend do not move at all, and
/// keys owned by the ejected backend land on a ring-adjacent survivor.
TEST(HashRingTest, PickEligibleSkipsEjectedOwnerOnly) {
  HashRing ring(64);
  for (uint32_t id = 0; id < 3; ++id) ring.AddBackend(id);
  const auto not_1 = [](uint32_t id) { return id != 1; };
  for (Key k = 0; k < 2048; ++k) {
    const int owner = ring.PickOwner(k);
    const int eligible = ring.PickEligible(k, not_1);
    ASSERT_NE(eligible, -1);
    EXPECT_NE(eligible, 1);
    if (owner != 1) {
      EXPECT_EQ(eligible, owner) << "healthy key " << k << " was rerouted";
    }
  }
}

TEST(HashRingTest, PickEligibleReturnsMinusOneWhenAllRejected) {
  HashRing ring;
  ring.AddBackend(0);
  ring.AddBackend(1);
  int calls = 0;
  const int got = ring.PickEligible(99, [&](uint32_t) {
    ++calls;
    return false;
  });
  EXPECT_EQ(got, -1);
  // The filter is consulted at most once per distinct backend, not per
  // vnode point.
  EXPECT_LE(calls, 2);
}

TEST(HashRingTest, AddRemoveContains) {
  HashRing ring;
  ring.AddBackend(5);
  EXPECT_TRUE(ring.Contains(5));
  ring.AddBackend(5);  // idempotent
  EXPECT_EQ(ring.backends(), 1u);
  ring.RemoveBackend(5);
  EXPECT_FALSE(ring.Contains(5));
  EXPECT_EQ(ring.PickOwner(1), -1);
}

// ------------------------------------------------------------ backoff

TEST(BackoffTest, DeterministicForSameSeed) {
  Backoff a(50, 2000, 1234);
  Backoff b(50, 2000, 1234);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextDelayMs(), b.NextDelayMs());
  }
}

TEST(BackoffTest, DelaysStayWithinFullJitterBounds) {
  Backoff backoff(100, 1600, 99);
  int64_t ceiling = 100;
  for (int failure = 1; failure <= 12; ++failure) {
    const int64_t d = backoff.NextDelayMs();
    EXPECT_GE(d, 50) << "failure " << failure;   // floor = base/2
    EXPECT_LE(d, ceiling) << "failure " << failure;
    EXPECT_LE(d, 1600);
    if (ceiling < 1600) ceiling *= 2;
  }
  EXPECT_EQ(backoff.failures(), 12u);
  backoff.Reset();
  EXPECT_EQ(backoff.failures(), 0u);
  EXPECT_LE(backoff.NextDelayMs(), 100);  // schedule starts over
}

TEST(BackoffTest, DifferentSeedsDecorrelate) {
  // Not a statistical test — just proof the seed actually feeds the
  // jitter stream (identical streams would defeat the stampede
  // avoidance the full-jitter shape exists for).
  Backoff a(100, 64000, 1);
  Backoff b(100, 64000, 2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextDelayMs() != b.NextDelayMs()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

// ------------------------------------------------------ replay buffer

StreamEvent Ev(Timestamp ts, Key key) {
  StreamEvent ev;
  ev.stream = StreamId::kBase;
  ev.tuple.ts = ts;
  ev.tuple.key = key;
  ev.tuple.payload = static_cast<double>(ts);
  return ev;
}

/// Decodes an EncodeUnacked byte string back into (tuples, watermarks).
struct DecodedReplay {
  std::vector<StreamEvent> tuples;
  std::vector<Timestamp> watermarks;
};

DecodedReplay DecodeReplay(const std::string& bytes) {
  DecodedReplay out;
  WireDecoder decoder;
  decoder.Feed(bytes);
  WireFrame frame;
  while (decoder.Next(&frame) == WireDecoder::Result::kFrame) {
    if (frame.type == FrameType::kTuple) {
      out.tuples.push_back(frame.event);
    } else if (frame.type == FrameType::kWatermark) {
      out.watermarks.push_back(frame.watermark);
    } else {
      ADD_FAILURE() << "unexpected frame type in replay stream";
    }
  }
  return out;
}

TEST(ReplayBufferTest, AckTrimsSealedSegments) {
  ReplayBuffer buffer;
  buffer.Append(Ev(1, 1));
  buffer.Append(Ev(2, 2));
  buffer.Seal(10);
  buffer.Append(Ev(11, 3));
  buffer.Seal(20);
  EXPECT_EQ(buffer.buffered_tuples(), 3u);
  EXPECT_EQ(buffer.sealed_segments(), 2u);

  buffer.Ack(10);
  EXPECT_EQ(buffer.buffered_tuples(), 1u);
  EXPECT_EQ(buffer.sealed_segments(), 1u);
  EXPECT_EQ(buffer.acked(), 10);

  buffer.Ack(20);
  EXPECT_EQ(buffer.buffered_tuples(), 0u);
  EXPECT_EQ(buffer.sealed_segments(), 0u);
  EXPECT_EQ(buffer.dropped_tuples(), 0u);
}

/// The exactly-once core: after recovery to watermark R, the resent
/// stream is precisely the segments past R (with their punctuation)
/// plus the open tail — nothing acked, nothing missing, original order.
TEST(ReplayBufferTest, EncodeUnackedResendsExactlyThePastCutSuffix) {
  ReplayBuffer buffer;
  buffer.Append(Ev(1, 1));
  buffer.Seal(10);
  buffer.Append(Ev(11, 2));
  buffer.Append(Ev(12, 3));
  buffer.Seal(20);
  buffer.Append(Ev(21, 4));  // open tail, never sealed

  // Backend recovered exactly through watermark 10.
  std::string bytes;
  const uint64_t resent = buffer.EncodeUnacked(10, &bytes);
  EXPECT_EQ(resent, 3u);
  const DecodedReplay replay = DecodeReplay(bytes);
  ASSERT_EQ(replay.tuples.size(), 3u);
  EXPECT_EQ(replay.tuples[0].tuple.ts, 11);
  EXPECT_EQ(replay.tuples[1].tuple.ts, 12);
  EXPECT_EQ(replay.tuples[2].tuple.ts, 21);
  ASSERT_EQ(replay.watermarks.size(), 1u);
  EXPECT_EQ(replay.watermarks[0], 20);

  // Recovered through everything sealed: only the open tail resends.
  bytes.clear();
  EXPECT_EQ(buffer.EncodeUnacked(20, &bytes), 1u);
  const DecodedReplay tail = DecodeReplay(bytes);
  ASSERT_EQ(tail.tuples.size(), 1u);
  EXPECT_EQ(tail.tuples[0].tuple.ts, 21);
  EXPECT_TRUE(tail.watermarks.empty());

  // Fresh backend (recovered nothing): the whole buffer resends.
  bytes.clear();
  EXPECT_EQ(buffer.EncodeUnacked(kMinTimestamp, &bytes), 4u);
  EXPECT_EQ(DecodeReplay(bytes).watermarks.size(), 2u);
}

TEST(ReplayBufferTest, EmptySegmentsStillSealAndAck) {
  ReplayBuffer buffer;
  buffer.Seal(10);  // watermark with no tuples before it
  buffer.Seal(20);
  EXPECT_EQ(buffer.sealed_segments(), 2u);
  std::string bytes;
  EXPECT_EQ(buffer.EncodeUnacked(kMinTimestamp, &bytes), 0u);
  EXPECT_EQ(DecodeReplay(bytes).watermarks.size(), 2u);
  buffer.Ack(20);
  EXPECT_EQ(buffer.sealed_segments(), 0u);
}

TEST(ReplayBufferTest, OverflowDropsOldestSealedFirstAndCountsLoss) {
  // Budget for only a handful of events.
  ReplayBuffer buffer(sizeof(StreamEvent) * 4);
  buffer.Append(Ev(1, 1));
  buffer.Append(Ev(2, 2));
  buffer.Seal(10);
  buffer.Append(Ev(11, 3));
  buffer.Seal(20);
  EXPECT_EQ(buffer.dropped_tuples(), 0u);

  buffer.Append(Ev(21, 4));
  buffer.Append(Ev(22, 5));  // pushes past the budget
  EXPECT_GT(buffer.dropped_tuples(), 0u);
  // The newest tuples survive; what dropped was the oldest segment.
  std::string bytes;
  buffer.EncodeUnacked(kMinTimestamp, &bytes);
  const DecodedReplay replay = DecodeReplay(bytes);
  for (const StreamEvent& ev : replay.tuples) {
    EXPECT_NE(ev.tuple.ts, 1) << "oldest segment should have dropped";
  }
}

TEST(ReplayBufferTest, ClearResetsEverythingButLossCounter) {
  ReplayBuffer buffer;
  buffer.Append(Ev(1, 1));
  buffer.Seal(10);
  buffer.Clear();
  EXPECT_EQ(buffer.buffered_tuples(), 0u);
  EXPECT_EQ(buffer.sealed_segments(), 0u);
  std::string bytes;
  EXPECT_EQ(buffer.EncodeUnacked(kMinTimestamp, &bytes), 0u);
  EXPECT_TRUE(bytes.empty());
}

// -------------------------------------------------- cluster watermark

TEST(ClusterWatermarkTest, AdvancesOnlyToMinOfParticipants) {
  ClusterWatermark wm;
  wm.Add(0);
  wm.Add(1);
  EXPECT_EQ(wm.emitted(), kMinTimestamp);

  Timestamp advanced = 0;
  wm.RecordAck(0, 100);
  EXPECT_FALSE(wm.TryAdvance(&advanced)) << "backend 1 has never acked";

  wm.RecordAck(1, 50);
  ASSERT_TRUE(wm.TryAdvance(&advanced));
  EXPECT_EQ(advanced, 50);
  EXPECT_EQ(wm.emitted(), 50);
  EXPECT_FALSE(wm.TryAdvance(&advanced)) << "no new acks, no advance";
}

TEST(ClusterWatermarkTest, AckRegressionsAreIgnored) {
  ClusterWatermark wm;
  wm.Add(0);
  wm.RecordAck(0, 100);
  wm.RecordAck(0, 40);  // a recovered backend re-acking from its cut
  EXPECT_EQ(wm.AckedOf(0), 100);
}

TEST(ClusterWatermarkTest, RemoveLiftsTheMin) {
  ClusterWatermark wm;
  wm.Add(0);
  wm.Add(1);
  wm.RecordAck(0, 200);
  wm.RecordAck(1, 60);
  Timestamp advanced = 0;
  ASSERT_TRUE(wm.TryAdvance(&advanced));
  EXPECT_EQ(advanced, 60);

  // Permanent failover of backend 1: its frozen ack stops holding the
  // min down, and removal can only *raise* the min — monotone by
  // construction.
  wm.Remove(1);
  ASSERT_TRUE(wm.TryAdvance(&advanced));
  EXPECT_EQ(advanced, 200);
}

TEST(ClusterWatermarkTest, NoParticipantsNeverAdvances) {
  ClusterWatermark wm;
  Timestamp advanced = 0;
  EXPECT_FALSE(wm.TryAdvance(&advanced));
  wm.Add(0);
  wm.Remove(0);
  EXPECT_FALSE(wm.TryAdvance(&advanced));
}

/// The ISSUE's dedicated acceptance test: across a full eject/re-admit
/// cycle, every emitted cluster watermark is (1) monotone and (2) never
/// exceeds the min of participating backends' acked watermarks at the
/// moment of emission. The ejected backend participates with its acked
/// value frozen — the cluster watermark *stalls*, it never regresses
/// and never runs past the absent shard.
TEST(ClusterWatermarkTest, MonotoneAndSafeAcrossEjectReadmitCycle) {
  ClusterWatermark wm;
  wm.Add(0);
  wm.Add(1);

  std::vector<Timestamp> emissions;
  const auto advance_and_check = [&] {
    Timestamp advanced = kMinTimestamp;
    if (wm.TryAdvance(&advanced)) {
      // Safety: an emission never exceeds the min acked right now.
      EXPECT_LE(advanced, wm.MinAcked());
      // Monotonicity: strictly increasing emission sequence.
      if (!emissions.empty()) {
        EXPECT_GT(advanced, emissions.back());
      }
      emissions.push_back(advanced);
    }
    EXPECT_LE(wm.emitted(), wm.MinAcked());
  };

  // Healthy phase: both backends ack in lockstep.
  for (Timestamp t = 10; t <= 50; t += 10) {
    wm.RecordAck(0, t);
    wm.RecordAck(1, t);
    advance_and_check();
  }
  EXPECT_EQ(wm.emitted(), 50);

  // Backend 1 ejected (crashed): its acked freezes at 50 while backend
  // 0 keeps acking. The cluster watermark must stall at 50 — acking
  // shard 0 alone proves nothing about shard 1's durability.
  for (Timestamp t = 60; t <= 120; t += 10) {
    wm.RecordAck(0, t);
    advance_and_check();
  }
  EXPECT_EQ(wm.emitted(), 50) << "cluster watermark ran past a dead shard";

  // Backend 1 re-admitted after recovery: it re-acks from its cut (an
  // ignored regression), then catches up. The watermark resumes and
  // every step keeps both invariants.
  wm.RecordAck(1, 30);  // recovered_watermark from the hello: ignored
  EXPECT_EQ(wm.AckedOf(1), 50);
  advance_and_check();
  EXPECT_EQ(wm.emitted(), 50);

  for (Timestamp t = 60; t <= 120; t += 10) {
    wm.RecordAck(1, t);
    advance_and_check();
  }
  EXPECT_EQ(wm.emitted(), 120);

  // The emission sequence as a whole: strictly increasing, no entry
  // emitted during the outage.
  for (size_t i = 1; i < emissions.size(); ++i) {
    EXPECT_GT(emissions[i], emissions[i - 1]);
  }
  for (const Timestamp t : emissions) {
    EXPECT_TRUE(t <= 50 || t >= 60) << "emitted " << t
                                    << " while shard 1 was frozen at 50";
  }
}

}  // namespace
}  // namespace oij
