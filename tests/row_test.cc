#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "row/row.h"
#include "row/schema.h"
#include "row/stream_binding.h"
#include "sql/parser.h"

namespace oij {
namespace {

Schema OrderSchema() {
  return Schema({{"ts", FieldType::kTimestamp},
                 {"user_id", FieldType::kInt64},
                 {"amount", FieldType::kDouble},
                 {"item_count", FieldType::kInt64}});
}

// ------------------------------------------------------------------ Schema

TEST(SchemaTest, IndexLookup) {
  const Schema s = OrderSchema();
  EXPECT_EQ(s.num_fields(), 4u);
  EXPECT_EQ(s.IndexOf("ts"), 0);
  EXPECT_EQ(s.IndexOf("amount"), 2);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_EQ(s.row_bytes(), 32u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTest, ValidationCatchesDuplicatesAndEmpty) {
  EXPECT_FALSE(Schema(std::vector<Field>{}).Validate().ok());
  EXPECT_FALSE(Schema({{"a", FieldType::kInt64}, {"a", FieldType::kDouble}})
                   .Validate()
                   .ok());
  EXPECT_FALSE(Schema({{"", FieldType::kInt64}}).Validate().ok());
}

TEST(SchemaTest, TypeNames) {
  EXPECT_EQ(FieldTypeName(FieldType::kInt64), "int64");
  EXPECT_EQ(FieldTypeName(FieldType::kDouble), "double");
  EXPECT_EQ(FieldTypeName(FieldType::kTimestamp), "timestamp");
}

// --------------------------------------------------------------- Row codec

TEST(RowTest, BuildAndReadBack) {
  const Schema schema = OrderSchema();
  RowBuilder builder(&schema);
  builder.SetTimestamp(0, 123456789)
      .SetInt64(1, 42)
      .SetDouble(2, 99.5)
      .SetInt64(3, -7);
  RowView view(&schema, builder.row().data());
  EXPECT_EQ(view.GetTimestamp(0), 123456789);
  EXPECT_EQ(view.GetInt64(1), 42);
  EXPECT_DOUBLE_EQ(view.GetDouble(2), 99.5);
  EXPECT_EQ(view.GetInt64(3), -7);
}

TEST(RowTest, ResetZeroes) {
  const Schema schema = OrderSchema();
  RowBuilder builder(&schema);
  builder.SetDouble(2, 1.0);
  builder.Reset();
  RowView view(&schema, builder.row().data());
  EXPECT_DOUBLE_EQ(view.GetDouble(2), 0.0);
}

TEST(RowTest, NegativeAndExtremeValuesSurvive) {
  const Schema schema = OrderSchema();
  RowBuilder builder(&schema);
  builder.SetInt64(1, std::numeric_limits<int64_t>::min())
      .SetDouble(2, -0.0)
      .SetTimestamp(0, std::numeric_limits<int64_t>::max());
  RowView view(&schema, builder.row().data());
  EXPECT_EQ(view.GetInt64(1), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(view.GetTimestamp(0), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(view.GetDouble(2), 0.0);
  EXPECT_TRUE(std::signbit(view.GetDouble(2)));
}

// ---------------------------------------------------------- StreamBinding

TEST(StreamBindingTest, ResolvesColumns) {
  const Schema schema = OrderSchema();
  StreamBinding binding;
  ASSERT_TRUE(
      ResolveBinding(schema, "ts", "user_id", "amount", &binding).ok());
  EXPECT_EQ(binding.ts_index, 0);
  EXPECT_EQ(binding.key_index, 1);
  EXPECT_EQ(binding.value_index, 2);
}

TEST(StreamBindingTest, EmptyValueColumnSkipsResolution) {
  const Schema schema = OrderSchema();
  StreamBinding binding;
  ASSERT_TRUE(ResolveBinding(schema, "ts", "user_id", "", &binding).ok());
  EXPECT_EQ(binding.value_index, -1);
}

TEST(StreamBindingTest, RejectsMissingAndMistypedColumns) {
  const Schema schema = OrderSchema();
  StreamBinding binding;
  EXPECT_EQ(
      ResolveBinding(schema, "nope", "user_id", "amount", &binding).code(),
      Status::Code::kNotFound);
  // Key must be int64, not double.
  EXPECT_EQ(
      ResolveBinding(schema, "ts", "amount", "amount", &binding).code(),
      Status::Code::kInvalidArgument);
  // Timestamp must not be a double column.
  EXPECT_FALSE(
      ResolveBinding(schema, "amount", "user_id", "amount", &binding)
          .ok());
  // Int64 is an acceptable value column (cast to double).
  EXPECT_TRUE(
      ResolveBinding(schema, "ts", "user_id", "item_count", &binding)
          .ok());
}

TEST(StreamBindingTest, RowToTupleUsesBinding) {
  const Schema schema = OrderSchema();
  StreamBinding binding;
  ASSERT_TRUE(
      ResolveBinding(schema, "ts", "user_id", "amount", &binding).ok());
  RowBuilder builder(&schema);
  builder.SetTimestamp(0, 777).SetInt64(1, 5).SetDouble(2, 12.25);
  const Tuple t = RowToTuple(binding, RowView(&schema, builder.row().data()));
  EXPECT_EQ(t.ts, 777);
  EXPECT_EQ(t.key, 5u);
  EXPECT_DOUBLE_EQ(t.payload, 12.25);
}

TEST(StreamBindingTest, Int64ValueColumnCastsToDouble) {
  const Schema schema = OrderSchema();
  StreamBinding binding;
  ASSERT_TRUE(
      ResolveBinding(schema, "ts", "user_id", "item_count", &binding).ok());
  RowBuilder builder(&schema);
  builder.SetTimestamp(0, 1).SetInt64(1, 2).SetInt64(3, 9);
  const Tuple t = RowToTuple(binding, RowView(&schema, builder.row().data()));
  EXPECT_DOUBLE_EQ(t.payload, 9.0);
}

TEST(StreamBindingTest, BindQueryToSchemasEndToEnd) {
  ParsedQuery parsed;
  ASSERT_TRUE(ParseQuery(
                  "SELECT sum(amount) OVER w FROM actions WINDOW w AS "
                  "(UNION orders PARTITION BY user_id ORDER BY ts "
                  "ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)",
                  &parsed)
                  .ok());
  const Schema actions({{"ts", FieldType::kTimestamp},
                        {"user_id", FieldType::kInt64},
                        {"page", FieldType::kInt64}});
  const Schema orders = OrderSchema();
  StreamBinding base, probe;
  ASSERT_TRUE(
      BindQueryToSchemas(parsed, actions, orders, &base, &probe).ok());
  EXPECT_EQ(base.value_index, -1);
  EXPECT_EQ(probe.value_index, 2);

  // The aggregated column must exist in the probe schema, not the base.
  StreamBinding b2, p2;
  const Status s = BindQueryToSchemas(parsed, orders, actions, &b2, &p2);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("orders"), std::string::npos);
}

}  // namespace
}  // namespace oij
