#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "join/watermark.h"
#include "stream/disorder_estimator.h"
#include "stream/generator.h"
#include "stream/presets.h"
#include "stream/workload.h"

namespace oij {
namespace {

std::vector<StreamEvent> Drain(WorkloadGenerator* gen) {
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen->Next(&ev)) events.push_back(ev);
  return events;
}

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.num_keys = 7;
  spec.window = IntervalWindow{500, 0};
  spec.lateness_us = 50;
  spec.disorder_bound_us = 50;
  spec.event_rate_per_sec = 1'000'000;
  spec.total_tuples = 20'000;
  spec.seed = 9;
  return spec;
}

// -------------------------------------------------------------- validate

TEST(WorkloadSpecTest, DefaultValidates) {
  EXPECT_TRUE(WorkloadSpec{}.Validate().ok());
}

TEST(WorkloadSpecTest, RejectsBadParameters) {
  WorkloadSpec spec;
  spec.num_keys = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec{};
  spec.disorder_bound_us = 200;
  spec.lateness_us = 100;
  EXPECT_FALSE(spec.Validate().ok()) << "disorder > lateness is inexact";

  spec = WorkloadSpec{};
  spec.probe_fraction = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec{};
  spec.event_rate_per_sec = 0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = WorkloadSpec{};
  spec.key_distribution = KeyDistribution::kRotatingHotSet;
  spec.hot_set_size = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, ExpectedMatchesPerWindow) {
  WorkloadSpec spec;
  spec.event_rate_per_sec = 1'000'000;
  spec.probe_fraction = 0.5;
  spec.num_keys = 100;
  spec.window = IntervalWindow{1000, 0};  // 1000 us
  // 500K probe/s / 100 keys * 1ms = 5 matches.
  EXPECT_NEAR(spec.ExpectedMatchesPerWindow(), 5.0, 1e-9);
}

// ------------------------------------------------------------- generator

TEST(GeneratorTest, ProducesExactlyTotalTuples) {
  WorkloadSpec spec = SmallSpec();
  WorkloadGenerator gen(spec);
  const auto events = Drain(&gen);
  EXPECT_EQ(events.size(), spec.total_tuples);
  EXPECT_EQ(gen.emitted(), spec.total_tuples);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  WorkloadSpec spec = SmallSpec();
  WorkloadGenerator a(spec), b(spec);
  StreamEvent ea, eb;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(a.Next(&ea));
    ASSERT_TRUE(b.Next(&eb));
    ASSERT_EQ(ea.tuple.ts, eb.tuple.ts);
    ASSERT_EQ(ea.tuple.key, eb.tuple.key);
    ASSERT_EQ(ea.tuple.payload, eb.tuple.payload);
    ASSERT_EQ(ea.stream, eb.stream);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  WorkloadSpec spec = SmallSpec();
  WorkloadGenerator a(spec);
  spec.seed = 10;
  WorkloadGenerator b(spec);
  const auto ea = Drain(&a);
  const auto eb = Drain(&b);
  size_t diffs = 0;
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].tuple.key != eb[i].tuple.key) ++diffs;
  }
  EXPECT_GT(diffs, 100u);
}

TEST(GeneratorTest, DisorderBoundedByConfig) {
  WorkloadSpec spec = SmallSpec();
  WorkloadGenerator gen(spec);
  Timestamp max_seen = kMinTimestamp;
  Timestamp worst = 0;
  StreamEvent ev;
  while (gen.Next(&ev)) {
    if (max_seen != kMinTimestamp) {
      worst = std::max(worst, max_seen - ev.tuple.ts);
    }
    max_seen = std::max(max_seen, ev.tuple.ts);
  }
  EXPECT_LE(worst, spec.disorder_bound_us);
  EXPECT_GT(worst, 0) << "disorder injection produced a fully sorted stream";
}

TEST(GeneratorTest, ZeroDisorderIsSorted) {
  WorkloadSpec spec = SmallSpec();
  spec.disorder_bound_us = 0;
  spec.lateness_us = 0;
  WorkloadGenerator gen(spec);
  const auto events = Drain(&gen);
  for (size_t i = 1; i < events.size(); ++i) {
    ASSERT_GE(events[i].tuple.ts, events[i - 1].tuple.ts);
  }
}

TEST(GeneratorTest, WatermarkNeverViolated) {
  // The watermark after each emission must never exceed the timestamp of
  // any later-emitted tuple — the exactness contract for lateness l.
  WorkloadSpec spec = SmallSpec();
  WorkloadGenerator gen(spec);
  StreamEvent ev;
  Timestamp wm = kMinTimestamp;
  while (gen.Next(&ev)) {
    ASSERT_GE(ev.tuple.ts, wm) << "tuple later than the watermark";
    wm = gen.watermark();
  }
}

TEST(GeneratorTest, KeysStayInRange) {
  WorkloadSpec spec = SmallSpec();
  WorkloadGenerator gen(spec);
  StreamEvent ev;
  while (gen.Next(&ev)) {
    ASSERT_LT(ev.tuple.key, spec.num_keys);
  }
}

TEST(GeneratorTest, ProbeFractionApproximatelyHonored) {
  WorkloadSpec spec = SmallSpec();
  spec.probe_fraction = 0.25;
  WorkloadGenerator gen(spec);
  const auto events = Drain(&gen);
  const auto probes = std::count_if(
      events.begin(), events.end(), [](const StreamEvent& e) {
        return e.stream == StreamId::kProbe;
      });
  const double frac =
      static_cast<double>(probes) / static_cast<double>(events.size());
  EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(GeneratorTest, EventRateSetsDensity) {
  WorkloadSpec spec = SmallSpec();
  spec.event_rate_per_sec = 100'000;  // 10 us between tuples
  spec.total_tuples = 10'000;
  WorkloadGenerator gen(spec);
  const auto events = Drain(&gen);
  Timestamp max_ts = 0;
  for (const auto& e : events) max_ts = std::max(max_ts, e.tuple.ts);
  // 10K tuples at 100K/s spans ~100 ms of event time.
  EXPECT_NEAR(static_cast<double>(max_ts), 100'000.0, 5'000.0);
}

TEST(GeneratorTest, RotatingHotSetShiftsKeys) {
  WorkloadSpec spec = SmallSpec();
  spec.num_keys = 10'000;
  spec.key_distribution = KeyDistribution::kRotatingHotSet;
  spec.hot_set_size = 4;
  spec.hot_fraction = 0.95;
  spec.hot_rotation_period_us = 2'000;  // rotate every 2 ms of event time
  spec.total_tuples = 40'000;
  WorkloadGenerator gen(spec);

  // Bucket keys per rotation epoch; the dominant key set must change.
  std::map<int64_t, std::map<Key, int>> per_epoch;
  StreamEvent ev;
  while (gen.Next(&ev)) {
    per_epoch[ev.tuple.ts / spec.hot_rotation_period_us][ev.tuple.key]++;
  }
  ASSERT_GE(per_epoch.size(), 3u);
  std::vector<std::set<Key>> tops;
  for (const auto& [epoch, counts] : per_epoch) {
    std::vector<std::pair<int, Key>> sorted;
    for (const auto& [k, c] : counts) sorted.push_back({c, k});
    std::sort(sorted.rbegin(), sorted.rend());
    std::set<Key> top;
    for (size_t i = 0; i < 4 && i < sorted.size(); ++i) {
      top.insert(sorted[i].second);
    }
    tops.push_back(top);
  }
  size_t changed = 0;
  for (size_t i = 1; i < tops.size(); ++i) {
    if (tops[i] != tops[i - 1]) ++changed;
  }
  EXPECT_GT(changed, tops.size() / 2);
}

TEST(GeneratorTest, ZipfConcentratesTraffic) {
  WorkloadSpec spec = SmallSpec();
  spec.num_keys = 1000;
  spec.key_distribution = KeyDistribution::kZipf;
  spec.zipf_theta = 0.99;
  WorkloadGenerator gen(spec);
  std::map<Key, int> counts;
  StreamEvent ev;
  while (gen.Next(&ev)) counts[ev.tuple.key]++;
  std::vector<int> sorted;
  for (const auto& [k, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  // Top key should dwarf the median key.
  EXPECT_GT(sorted.front(), 20 * sorted[sorted.size() / 2]);
}

// --------------------------------------------------------------- presets

TEST(PresetsTest, AllPresetsValidate) {
  for (const auto& w : RealWorkloads()) {
    EXPECT_TRUE(w.Validate().ok()) << "workload " << w.name;
  }
  EXPECT_TRUE(DefaultSynthetic().Validate().ok());
  EXPECT_TRUE(AdversarialSynthetic().Validate().ok());
  EXPECT_TRUE(SkewedRotating().Validate().ok());
}

TEST(PresetsTest, TableIIParameters) {
  const WorkloadSpec a = WorkloadA();
  EXPECT_EQ(a.num_keys, 5u);
  EXPECT_EQ(a.window.length(), 1'000'000);
  EXPECT_EQ(a.lateness_us, 1'000'000);
  EXPECT_EQ(a.pace_rate_per_sec, 120'000u);

  const WorkloadSpec b = WorkloadB();
  EXPECT_EQ(b.num_keys, 111u);
  EXPECT_EQ(b.window.length(), 150'000'000);
  EXPECT_EQ(b.lateness_us, 10'000'000);

  const WorkloadSpec c = WorkloadC();
  EXPECT_EQ(c.num_keys, 45u);
  EXPECT_EQ(c.pace_rate_per_sec, 0u) << "Workload C is unthrottled";
  EXPECT_EQ(c.lateness_us, 100'000'000);

  const WorkloadSpec d = WorkloadD();
  EXPECT_EQ(d.num_keys, 5u);
  EXPECT_EQ(d.pace_rate_per_sec, 15'000u);
}

TEST(PresetsTest, MatchDensitiesApproximateProse) {
  // Section III-C: ~4000 (A), ~6000 (B), a few hundred (C) matches/window.
  EXPECT_NEAR(WorkloadA().ExpectedMatchesPerWindow(), 4000, 400);
  EXPECT_NEAR(WorkloadB().ExpectedMatchesPerWindow(), 6000, 600);
  EXPECT_NEAR(WorkloadC().ExpectedMatchesPerWindow(), 400, 100);
}

TEST(PresetsTest, TableIVAndTableV) {
  const WorkloadSpec d = DefaultSynthetic();
  EXPECT_EQ(d.num_keys, 100u);
  EXPECT_EQ(d.window.length(), 1000);
  EXPECT_EQ(d.lateness_us, 100);

  const WorkloadSpec adv = AdversarialSynthetic();
  EXPECT_EQ(adv.num_keys, 1000u);
  EXPECT_EQ(adv.window.length(), 100);
  EXPECT_EQ(adv.lateness_us, 10);
}

// --------------------------------------------------------- config strings

TEST(WorkloadConfigTest, RoundTripsEveryField) {
  WorkloadSpec w = SkewedRotating();
  w.probe_fraction = 0.37;
  w.zipf_theta = 1.25;
  w.seed = 987654321;
  w.disorder_bound_us = 55;
  w.lateness_us = 60;
  const std::string config = WorkloadSpecToConfig(w);
  WorkloadSpec parsed;
  ASSERT_TRUE(WorkloadSpecFromConfig(config, &parsed).ok()) << config;
  EXPECT_EQ(parsed.name, w.name);
  EXPECT_EQ(parsed.num_keys, w.num_keys);
  EXPECT_EQ(parsed.window, w.window);
  EXPECT_EQ(parsed.lateness_us, w.lateness_us);
  EXPECT_EQ(parsed.disorder_bound_us, w.disorder_bound_us);
  EXPECT_EQ(parsed.event_rate_per_sec, w.event_rate_per_sec);
  EXPECT_EQ(parsed.pace_rate_per_sec, w.pace_rate_per_sec);
  EXPECT_DOUBLE_EQ(parsed.probe_fraction, w.probe_fraction);
  EXPECT_EQ(parsed.total_tuples, w.total_tuples);
  EXPECT_EQ(parsed.key_distribution, w.key_distribution);
  EXPECT_DOUBLE_EQ(parsed.zipf_theta, w.zipf_theta);
  EXPECT_EQ(parsed.hot_set_size, w.hot_set_size);
  EXPECT_DOUBLE_EQ(parsed.hot_fraction, w.hot_fraction);
  EXPECT_EQ(parsed.hot_rotation_period_us, w.hot_rotation_period_us);
  EXPECT_EQ(parsed.seed, w.seed);
}

TEST(WorkloadConfigTest, CommentsAndBlanksIgnored) {
  WorkloadSpec parsed;
  ASSERT_TRUE(WorkloadSpecFromConfig(
                  "# a comment\n\nnum_keys=7\n  seed = 3  \n", &parsed)
                  .ok());
  EXPECT_EQ(parsed.num_keys, 7u);
  EXPECT_EQ(parsed.seed, 3u);
}

TEST(WorkloadConfigTest, UnknownKeysAndBadLinesRejected) {
  WorkloadSpec parsed;
  EXPECT_EQ(WorkloadSpecFromConfig("numkeys=7\n", &parsed).code(),
            Status::Code::kParseError);
  EXPECT_EQ(WorkloadSpecFromConfig("just a line\n", &parsed).code(),
            Status::Code::kParseError);
  // Parsed configs are validated like any other spec.
  EXPECT_FALSE(
      WorkloadSpecFromConfig("num_keys=0\n", &parsed).ok());
}

TEST(PresetsTest, FindPresetByName) {
  WorkloadSpec w;
  EXPECT_TRUE(FindPreset("A", &w));
  EXPECT_EQ(w.name, "A");
  EXPECT_TRUE(FindPreset("b", &w));
  EXPECT_EQ(w.name, "B");
  EXPECT_TRUE(FindPreset("default", &w));
  EXPECT_TRUE(FindPreset("adversarial", &w));
  EXPECT_TRUE(FindPreset("skewed", &w));
  EXPECT_FALSE(FindPreset("nope", &w));
}

// ------------------------------------------- watermark tracker edge cases

TEST(WatermarkTrackerTest, EmptyStreamStaysAtMinimum) {
  WatermarkTracker t(60);
  EXPECT_EQ(t.watermark(), kMinTimestamp);
  EXPECT_EQ(t.max_seen(), kMinTimestamp);
}

TEST(WatermarkTrackerTest, SingleTupleAdvancesWatermark) {
  WatermarkTracker t(60);
  t.Observe(1000);
  EXPECT_EQ(t.max_seen(), 1000);
  EXPECT_EQ(t.watermark(), 940);
}

TEST(WatermarkTrackerTest, ZeroLatenessTracksMaxExactly) {
  WatermarkTracker t(0);
  t.Observe(500);
  EXPECT_EQ(t.watermark(), 500);
  t.Observe(400);  // out-of-order arrival must not regress the watermark
  EXPECT_EQ(t.watermark(), 500);
  t.Observe(501);
  EXPECT_EQ(t.watermark(), 501);
}

// ------------------------------------------ disorder estimator edge cases

TEST(DisorderEstimatorTest, EmptyStreamReportsNothing) {
  DisorderEstimator est;
  EXPECT_EQ(est.observed(), 0u);
  EXPECT_EQ(est.max_seen(), kMinTimestamp);
  EXPECT_EQ(est.MaxDelay(), 0);
}

TEST(DisorderEstimatorTest, SingleTupleHasZeroDelay) {
  DisorderEstimator est;
  EXPECT_EQ(est.Observe(123), 0);
  EXPECT_EQ(est.observed(), 1u);
  EXPECT_EQ(est.MaxDelay(), 0);
  EXPECT_DOUBLE_EQ(est.CoverageAt(0), 1.0);
}

TEST(DisorderEstimatorTest, DisorderExactlyAtBoundIsCovered) {
  DisorderEstimator est;
  est.Observe(1000);
  EXPECT_EQ(est.Observe(940), 60);  // delay exactly at the bound
  EXPECT_EQ(est.MaxDelay(), 60);
  // The histogram is log-bucketed (~6% resolution), so probe with a
  // threshold one octave boundary above/below the recorded delay.
  EXPECT_DOUBLE_EQ(est.CoverageAt(64), 1.0);
  EXPECT_LT(est.CoverageAt(16), 1.0);
}

// ------------------------------------------------------------ late flood

TEST(WorkloadSpecTest, RejectsBadLateFlood) {
  WorkloadSpec spec = SmallSpec();
  spec.late_flood_fraction = -0.1;
  EXPECT_FALSE(spec.Validate().ok());

  spec = SmallSpec();
  spec.late_flood_fraction = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = SmallSpec();
  spec.late_flood_fraction = 0.1;
  spec.late_flood_extra_us = -1;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(GeneratorTest, LateFloodOffGeneratesNoViolations) {
  WorkloadSpec spec = SmallSpec();
  ASSERT_EQ(spec.late_flood_fraction, 0.0);  // default: off
  WorkloadGenerator gen(spec);
  DisorderEstimator est;
  StreamEvent ev;
  while (gen.Next(&ev)) est.Observe(ev.tuple.ts);
  EXPECT_EQ(gen.late_flood_generated(), 0u);
  EXPECT_LE(est.MaxDelay(), spec.lateness_us);
}

TEST(GeneratorTest, LateFloodPushesDelaysPastTheLatenessBound) {
  WorkloadSpec spec = SmallSpec();
  spec.late_flood_fraction = 0.2;
  spec.late_flood_extra_us = 25;
  WorkloadGenerator gen(spec);
  DisorderEstimator est;
  StreamEvent ev;
  while (gen.Next(&ev)) est.Observe(ev.tuple.ts);

  // Roughly fraction * total tuples get the lateness-violating delay.
  EXPECT_GT(gen.late_flood_generated(), spec.total_tuples / 10);
  EXPECT_LT(gen.late_flood_generated(), spec.total_tuples / 3);
  // The flood is what breaks the normal disorder <= lateness contract.
  EXPECT_GT(est.MaxDelay(), spec.lateness_us);
}

TEST(GeneratorTest, LateFloodDeterministicForSameSeed) {
  WorkloadSpec spec = SmallSpec();
  spec.late_flood_fraction = 0.15;
  spec.late_flood_extra_us = 40;
  WorkloadGenerator a(spec);
  WorkloadGenerator b(spec);
  const auto ea = Drain(&a);
  const auto eb = Drain(&b);
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].tuple.ts, eb[i].tuple.ts);
    EXPECT_EQ(ea[i].tuple.key, eb[i].tuple.key);
  }
  EXPECT_EQ(a.late_flood_generated(), b.late_flood_generated());
}

TEST(WorkloadConfigTest, LateFloodRoundTrips) {
  WorkloadSpec w = SmallSpec();
  w.late_flood_fraction = 0.25;
  w.late_flood_extra_us = 33;
  const std::string config = WorkloadSpecToConfig(w);
  WorkloadSpec parsed;
  ASSERT_TRUE(WorkloadSpecFromConfig(config, &parsed).ok()) << config;
  EXPECT_DOUBLE_EQ(parsed.late_flood_fraction, w.late_flood_fraction);
  EXPECT_EQ(parsed.late_flood_extra_us, w.late_flood_extra_us);
}

}  // namespace
}  // namespace oij
