#include <gtest/gtest.h>

#include <cmath>

#include "join/reference_join.h"
#include "stream/generator.h"

namespace oij {
namespace {

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

StreamEvent Base(Timestamp ts, Key key, double payload = 0.0) {
  return {StreamId::kBase, Tuple{ts, key, payload}};
}
StreamEvent Probe(Timestamp ts, Key key, double payload) {
  return {StreamId::kProbe, Tuple{ts, key, payload}};
}

TEST(ReferenceJoinTest, PaperFigure3Example) {
  // Fig 3a: window (-2s, 0); results <s1,{r1}>, <s2,{r3,r4}>, <s3,{r5}>.
  // Timestamps in seconds scaled to us.
  const Timestamp s = 1'000'000;
  QuerySpec spec;
  spec.window = IntervalWindow{2 * s, 0};
  spec.agg = AggKind::kCount;

  std::vector<StreamEvent> events = {
      Probe(1 * s, 1, 1.0),  // r1
      Base(2 * s, 1),        // s1
      Probe(3 * s, 1, 2.0),  // r2
      Probe(5 * s, 1, 3.0),  // r3
      Probe(6 * s, 1, 4.0),  // r4
      Base(6 * s, 1),        // s2
      Probe(8 * s, 1, 5.0),  // r5
      Base(9 * s, 1),        // s3
  };
  // Adjust to match the figure: r2 at 3s must NOT be in s2's window
  // [4s, 6s], and must not match s1's window [0,2s]. Our layout already
  // satisfies both.
  auto results = ReferenceJoin(events, spec);
  SortResults(&results);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].match_count, 1u);  // s1 <- r1
  EXPECT_EQ(results[1].match_count, 2u);  // s2 <- r3, r4
  EXPECT_EQ(results[2].match_count, 1u);  // s3 <- r5 (8s in [7s,9s])
}

TEST(ReferenceJoinTest, KeysDoNotCrossMatch) {
  QuerySpec spec;
  spec.window = IntervalWindow{100, 0};
  spec.agg = AggKind::kSum;
  std::vector<StreamEvent> events = {
      Probe(10, 1, 5.0),
      Probe(10, 2, 7.0),
      Base(50, 1),
  };
  const auto results = ReferenceJoin(events, spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].aggregate, 5.0);
}

TEST(ReferenceJoinTest, WindowBoundariesInclusive) {
  QuerySpec spec;
  spec.window = IntervalWindow{10, 5};
  spec.agg = AggKind::kCount;
  std::vector<StreamEvent> events = {
      Probe(90, 1, 0), Probe(89, 1, 0),   // 90 on the edge, 89 out
      Probe(105, 1, 0), Probe(106, 1, 0),  // 105 on the edge, 106 out
      Base(100, 1),
  };
  const auto results = ReferenceJoin(events, spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].match_count, 2u);
}

TEST(ReferenceJoinTest, FollowingOffsetMatchesFutureProbes) {
  QuerySpec spec;
  spec.window = IntervalWindow{0, 50};
  spec.agg = AggKind::kCount;
  std::vector<StreamEvent> events = {
      Base(100, 1),
      Probe(120, 1, 0),
      Probe(160, 1, 0),
  };
  const auto results = ReferenceJoin(events, spec);
  EXPECT_EQ(results[0].match_count, 1u);
}

TEST(ReferenceJoinTest, EmptyWindowCountsZero) {
  QuerySpec spec;
  spec.window = IntervalWindow{10, 0};
  spec.agg = AggKind::kSum;
  std::vector<StreamEvent> events = {Base(100, 1)};
  const auto results = ReferenceJoin(events, spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].match_count, 0u);
  EXPECT_DOUBLE_EQ(results[0].aggregate, 0.0);
}

TEST(ReferenceJoinTest, ResultCardinalityEqualsBaseStream) {
  // Section II-C: result cardinality == |S|, regardless of matches.
  WorkloadSpec w;
  w.num_keys = 5;
  w.total_tuples = 5000;
  w.probe_fraction = 0.7;
  QuerySpec spec;
  spec.window = IntervalWindow{1000, 0};
  const auto events = Generate(w);
  size_t bases = 0;
  for (const auto& e : events) {
    if (e.stream == StreamId::kBase) ++bases;
  }
  EXPECT_EQ(ReferenceJoin(events, spec).size(), bases);
}

/// The fast oracle must agree with the brute-force oracle on random
/// workloads across operators — this is what lets us trust it as the
/// differential baseline for the engines.
class OracleEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<AggKind, uint64_t>> {};

TEST_P(OracleEquivalenceTest, FastEqualsBrute) {
  const auto [agg, seed] = GetParam();
  WorkloadSpec w;
  w.num_keys = 6;
  w.total_tuples = 2000;
  w.event_rate_per_sec = 1'000'000;
  w.lateness_us = 40;
  w.disorder_bound_us = 40;
  w.seed = seed;
  QuerySpec spec;
  spec.window = IntervalWindow{300, 100};
  spec.agg = agg;

  const auto events = Generate(w);
  auto fast = ReferenceJoin(events, spec);
  auto brute = ReferenceJoinBrute(events, spec);
  SortResults(&fast);
  SortResults(&brute);
  ASSERT_EQ(fast.size(), brute.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].base, brute[i].base);
    EXPECT_EQ(fast[i].match_count, brute[i].match_count);
    if (std::isnan(fast[i].aggregate)) {
      EXPECT_TRUE(std::isnan(brute[i].aggregate));
    } else {
      EXPECT_NEAR(fast[i].aggregate, brute[i].aggregate, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OracleEquivalenceTest,
    ::testing::Combine(::testing::Values(AggKind::kSum, AggKind::kCount,
                                         AggKind::kAvg, AggKind::kMin,
                                         AggKind::kMax),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(AggKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace oij
