#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "metrics/breakdown.h"
#include "metrics/cache_sim.h"
#include "metrics/cpu_util.h"
#include "metrics/latency_recorder.h"
#include "metrics/throughput.h"

namespace oij {
namespace {

// -------------------------------------------------------- LatencyRecorder

TEST(LatencyRecorderTest, EmptyRecorder) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.Percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(rec.FractionBelow(100), 1.0);
  EXPECT_TRUE(rec.CdfPoints().empty());
}

TEST(LatencyRecorderTest, EmptyRecorderEveryQuantile) {
  // Regression guard for the empty-recorder path: every quantile —
  // including out-of-range ones, which Percentile clamps — must answer
  // 0 without touching any bucket.
  LatencyRecorder rec;
  for (double q : {-1.0, 0.0, 0.5, 0.99, 1.0, 2.0}) {
    EXPECT_EQ(rec.Percentile(q), 0) << "q=" << q;
  }
  EXPECT_EQ(rec.max_us(), 0);
  EXPECT_EQ(rec.sum_us(), 0);
  EXPECT_DOUBLE_EQ(rec.mean_us(), 0.0);
  EXPECT_TRUE(rec.CumulativeBuckets().empty());
}

TEST(LatencyRecorderTest, SingleSampleEveryQuantile) {
  // With one observation, every quantile is that observation — the
  // `count_ - 1` arithmetic inside Percentile must not underflow or
  // land outside the single occupied bucket.
  LatencyRecorder rec;
  rec.Record(37);
  for (double q : {-0.5, 0.0, 0.5, 0.99, 1.0, 1.5}) {
    EXPECT_EQ(rec.Percentile(q), 37) << "q=" << q;
  }
  EXPECT_EQ(rec.max_us(), 37);
  EXPECT_DOUBLE_EQ(rec.mean_us(), 37.0);
  const auto buckets = rec.CumulativeBuckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].cumulative_count, 1u);
  EXPECT_GE(buckets[0].upper_us, 37);
}

TEST(LatencyRecorderTest, SingleLargeSampleClampsToObservedMax) {
  // Bucket upper edges exceed the recorded value at large magnitudes;
  // the max_us_ clamp keeps the reported percentile at the observation.
  LatencyRecorder rec;
  rec.Record(1'000'003);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(rec.Percentile(q), 1'000'003) << "q=" << q;
  }
}

TEST(LatencyRecorderTest, ExactSmallValues) {
  LatencyRecorder rec;
  for (int64_t v : {1, 2, 3, 4, 5}) rec.Record(v);
  EXPECT_EQ(rec.count(), 5u);
  EXPECT_EQ(rec.max_us(), 5);
  EXPECT_DOUBLE_EQ(rec.mean_us(), 3.0);
  EXPECT_EQ(rec.Percentile(0.0), 1);
  EXPECT_EQ(rec.Percentile(1.0), 5);
  EXPECT_EQ(rec.Percentile(0.5), 3);
}

TEST(LatencyRecorderTest, PercentileWithinRelativeError) {
  LatencyRecorder rec;
  Rng rng(3);
  std::vector<int64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBelow(1'000'000));
    values.push_back(v);
    rec.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const int64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const int64_t approx = rec.Percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.10 + 16)
        << "q=" << q;
  }
}

TEST(LatencyRecorderTest, NegativeClampsToZero) {
  LatencyRecorder rec;
  rec.Record(-5);
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_EQ(rec.Percentile(1.0), 0);
}

TEST(LatencyRecorderTest, MergeCombines) {
  LatencyRecorder a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max_us(), 1000);
  EXPECT_LE(a.Percentile(0.0), 10);
}

TEST(LatencyRecorderTest, FractionBelowThreshold) {
  LatencyRecorder rec;
  for (int i = 0; i < 80; ++i) rec.Record(1000);     // 1 ms
  for (int i = 0; i < 20; ++i) rec.Record(100'000);  // 100 ms
  EXPECT_NEAR(rec.FractionBelow(20'000), 0.8, 0.01);
}

TEST(LatencyRecorderTest, CdfIsMonotoneAndEndsAtOne) {
  LatencyRecorder rec;
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    rec.Record(static_cast<int64_t>(rng.NextBelow(100'000)));
  }
  const auto points = rec.CdfPoints();
  ASSERT_FALSE(points.empty());
  double prev = 0.0;
  int64_t prev_v = -1;
  for (const auto& p : points) {
    EXPECT_GE(p.cumulative, prev);
    EXPECT_GT(p.latency_us, prev_v);
    prev = p.cumulative;
    prev_v = p.latency_us;
  }
  EXPECT_DOUBLE_EQ(points.back().cumulative, 1.0);
}

TEST(LatencyRecorderTest, PercentileNeverExceedsObservedMax) {
  // Regression: Percentile used to return the bucket's *upper edge*,
  // which for log-spaced buckets can exceed every recorded value — a
  // reported p99 above the reported max. Any percentile must stay within
  // the observed range.
  LatencyRecorder rec;
  rec.Record(3);
  rec.Record(1'000'000);  // lands mid-bucket: upper edge > 1'000'000
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_LE(rec.Percentile(q), rec.max_us()) << "q=" << q;
  }
  EXPECT_EQ(rec.Percentile(1.0), rec.max_us());

  LatencyRecorder merged;
  merged.Record(999'983);  // prime, certainly not a bucket edge
  merged.Merge(rec);
  EXPECT_LE(merged.Percentile(1.0), merged.max_us());
}

TEST(LatencyRecorderTest, LargeValuesDoNotOverflowBuckets) {
  LatencyRecorder rec;
  rec.Record(int64_t{1} << 55);
  rec.Record(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(rec.count(), 2u);
  EXPECT_GT(rec.Percentile(1.0), 0);
}

// -------------------------------------------------------- ThroughputMeter

TEST(ThroughputMeterTest, MeasuresRate) {
  ThroughputMeter meter;
  meter.Start();
  meter.AddTuples(500);
  meter.Stop();
  EXPECT_EQ(meter.tuples(), 500u);
  EXPECT_GE(meter.elapsed_seconds(), 0.0);
  if (meter.elapsed_seconds() > 0) {
    EXPECT_GT(meter.TuplesPerSecond(), 0.0);
  }
}

// ---------------------------------------------------------- TimeBreakdown

TEST(TimeBreakdownTest, FractionsSumToOne) {
  TimeBreakdown b;
  b.lookup_ns = 300;
  b.match_ns = 500;
  b.busy_ns = 1000;
  EXPECT_EQ(b.other_ns(), 200);
  EXPECT_NEAR(b.lookup_fraction() + b.match_fraction() + b.other_fraction(),
              1.0, 1e-9);
}

TEST(TimeBreakdownTest, OtherClampsAtZero) {
  TimeBreakdown b;
  b.lookup_ns = 900;
  b.match_ns = 200;
  b.busy_ns = 1000;  // instrumentation skew: lookup+match > busy
  EXPECT_EQ(b.other_ns(), 0);
}

TEST(TimeBreakdownTest, MergeAccumulates) {
  TimeBreakdown a, b;
  a.lookup_ns = 10;
  b.lookup_ns = 20;
  b.match_ns = 5;
  b.busy_ns = 50;
  a.Merge(b);
  EXPECT_EQ(a.lookup_ns, 30);
  EXPECT_EQ(a.match_ns, 5);
  EXPECT_EQ(a.busy_ns, 50);
}

// --------------------------------------------------------------- CacheSim

TEST(CacheSimTest, RepeatAccessHits) {
  CacheSim::Config config;
  config.capacity_bytes = 64 * 1024;
  config.ways = 4;
  CacheSim sim(config);
  EXPECT_FALSE(sim.Access(0x1000));  // cold miss
  EXPECT_TRUE(sim.Access(0x1000));   // hit
  EXPECT_TRUE(sim.Access(0x1010));   // same 64B line
  EXPECT_EQ(sim.hits(), 2u);
  EXPECT_EQ(sim.misses(), 1u);
}

TEST(CacheSimTest, CapacityEvictsLru) {
  // Working set larger than capacity -> second pass still misses;
  // working set smaller than capacity -> second pass hits.
  CacheSim::Config config;
  config.capacity_bytes = 4096;  // 64 lines
  config.ways = 4;
  CacheSim small(config);
  for (int pass = 0; pass < 2; ++pass) {
    for (uintptr_t a = 0; a < 64 * 1024; a += 64) small.Access(a);
  }
  EXPECT_GT(small.MissRatio(), 0.9);

  CacheSim big(CacheSim::Config{.capacity_bytes = 1 << 20, .ways = 8,
                                .line_bytes = 64});
  for (int pass = 0; pass < 2; ++pass) {
    for (uintptr_t a = 0; a < 16 * 1024; a += 64) big.Access(a);
  }
  EXPECT_LT(big.MissRatio(), 0.6);  // second pass all hits
}

TEST(CacheSimTest, MissRatioGrowsWithFootprint) {
  // The Fig 8b/13d mechanism: larger working sets -> more LLC misses.
  auto run = [](uint64_t footprint) {
    CacheSim sim(CacheSim::Config{.capacity_bytes = 256 * 1024, .ways = 8,
                                  .line_bytes = 64});
    Rng rng(9);
    for (int i = 0; i < 200000; ++i) {
      sim.Access(rng.NextBelow(footprint));
    }
    return sim.MissRatio();
  };
  const double small = run(64 * 1024);    // fits
  const double large = run(8 * 1024 * 1024);  // 32x capacity
  EXPECT_LT(small, 0.2);
  EXPECT_GT(large, 0.8);
}

TEST(CacheSimTest, ResetCountersKeepsContents) {
  CacheSim sim;
  sim.Access(0x40);
  sim.ResetCounters();
  EXPECT_EQ(sim.accesses(), 0u);
  EXPECT_TRUE(sim.Access(0x40)) << "contents survive counter reset";
}

TEST(SampledCacheProbeTest, SamplesEveryNth) {
  CacheSim sim;
  SampledCacheProbe probe(&sim, 4);
  int dummy[64];
  for (int i = 0; i < 64; ++i) probe.Touch(&dummy[i]);
  EXPECT_EQ(sim.accesses(), 16u);
  SampledCacheProbe disabled;
  disabled.Touch(&dummy[0]);  // no sim attached: no-op
  EXPECT_FALSE(disabled.enabled());
}

// ----------------------------------------------------------- CpuUtilTracker

TEST(CpuUtilTrackerTest, ApportionsAcrossIntervals) {
  CpuUtilTracker tracker(/*origin_ns=*/0, /*interval_ns=*/100);
  tracker.AddBusy(50, 150);  // half of interval 0, half of interval 1
  const auto series = tracker.UtilizationSeries(200);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 0.5);
  EXPECT_DOUBLE_EQ(series[1], 0.5);
}

TEST(CpuUtilTrackerTest, TrailingIdleIntervalsIncluded) {
  CpuUtilTracker tracker(0, 100);
  tracker.AddBusy(0, 100);
  const auto series = tracker.UtilizationSeries(500);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[4], 0.0);
}

TEST(CpuUtilTrackerTest, ClampsToOne) {
  CpuUtilTracker tracker(0, 100);
  tracker.AddBusy(0, 100);
  tracker.AddBusy(0, 100);  // double-counted span
  EXPECT_DOUBLE_EQ(tracker.UtilizationSeries(100)[0], 1.0);
}

TEST(CpuUtilTrackerTest, IgnoresPreOriginSpans) {
  CpuUtilTracker tracker(1000, 100);
  tracker.AddBusy(0, 500);  // entirely before origin
  tracker.AddBusy(900, 1100);  // half clipped
  const auto series = tracker.UtilizationSeries(1100);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
}

TEST(StdDevTest, KnownValues) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0, 5.0}), 0.0);
  EXPECT_NEAR(StdDev({0.0, 1.0}), 0.5, 1e-12);
}

}  // namespace
}  // namespace oij
