#include <gtest/gtest.h>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "core/ordering_sink.h"
#include "core/run_summary.h"
#include "stream/presets.h"

namespace oij {
namespace {

TEST(PipelineTest, EndToEndUnthrottledRun) {
  WorkloadSpec w = DefaultSynthetic();
  w.total_tuples = 50'000;
  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kEager;

  CountingSink sink;
  EngineOptions options;
  options.num_joiners = 2;
  auto engine = CreateEngine(EngineKind::kScaleOij, q, options, &sink);
  WorkloadGenerator gen(w);
  const RunResult run = RunPipeline(engine.get(), &gen);

  EXPECT_EQ(run.tuples, w.total_tuples);
  EXPECT_GT(run.throughput_tps, 0.0);
  EXPECT_GT(run.elapsed_seconds, 0.0);
  EXPECT_EQ(run.stats.input_tuples, w.total_tuples);
  // Roughly half the tuples are base tuples, each yielding one result.
  EXPECT_NEAR(static_cast<double>(run.stats.results),
              static_cast<double>(w.total_tuples) * 0.5,
              static_cast<double>(w.total_tuples) * 0.05);
  EXPECT_EQ(sink.count(), run.stats.results);
  EXPECT_GT(run.stats.latency.count(), 0u);
}

TEST(PipelineTest, PacedRunApproximatesArrivalRate) {
  WorkloadSpec w = DefaultSynthetic();
  w.total_tuples = 40'000;
  w.pace_rate_per_sec = 200'000;  // ~0.2 s run
  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kEager;

  NullSink sink;
  EngineOptions options;
  options.num_joiners = 2;
  auto engine = CreateEngine(EngineKind::kKeyOij, q, options, &sink);
  WorkloadGenerator gen(w);
  const RunResult run = RunPipeline(engine.get(), &gen);
  EXPECT_EQ(run.tuples, w.total_tuples);
  // Pacing keeps throughput near (and never much above) the target rate.
  EXPECT_LT(run.throughput_tps, 250'000.0);
  EXPECT_GT(run.elapsed_seconds, 0.15);
}

TEST(PipelineTest, AllEnginesSurviveTheRealWorkloadShapes) {
  // Shrunk versions of Workloads A-D through every engine: smoke-level
  // integration across the full preset grid.
  for (WorkloadSpec w : RealWorkloads()) {
    w.total_tuples = 20'000;
    w.pace_rate_per_sec = 0;  // unthrottled for test speed
    QuerySpec q;
    q.window = w.window;
    q.lateness_us = w.lateness_us;
    q.emit_mode = EmitMode::kEager;
    for (EngineKind kind :
         {EngineKind::kKeyOij, EngineKind::kScaleOij,
          EngineKind::kSplitJoin, EngineKind::kSharedState}) {
      NullSink sink;
      EngineOptions options;
      options.num_joiners = 2;
      auto engine = CreateEngine(kind, q, options, &sink);
      WorkloadGenerator gen(w);
      const RunResult run = RunPipeline(engine.get(), &gen);
      EXPECT_EQ(run.tuples, w.total_tuples)
          << "workload " << w.name << " engine " << EngineKindName(kind);
      EXPECT_GT(run.stats.results, 0u)
          << "workload " << w.name << " engine " << EngineKindName(kind);
    }
  }
}

TEST(PipelineTest, CpuUtilizationCollected) {
  WorkloadSpec w = DefaultSynthetic();
  w.total_tuples = 30'000;
  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kEager;
  NullSink sink;
  EngineOptions options;
  options.num_joiners = 2;
  options.collect_cpu_util = true;
  options.cpu_util_interval_ns = 10'000'000;  // 10 ms
  auto engine = CreateEngine(EngineKind::kScaleOij, q, options, &sink);
  WorkloadGenerator gen(w);
  const RunResult run = RunPipeline(engine.get(), &gen);
  ASSERT_EQ(run.stats.utilization.size(), 2u);
  for (const auto& series : run.stats.utilization) {
    EXPECT_FALSE(series.empty());
    for (double u : series) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
}

// ---------------------------------------------------------- OrderingSink

TEST(OrderingSinkTest, ForwardsInTimestampOrder) {
  CollectingSink inner;
  OrderingSink ordered(&inner);
  JoinResult r;
  for (Timestamp ts : {30, 10, 20, 50, 40}) {
    r.base.ts = ts;
    ordered.OnResult(r);
  }
  ordered.ReleaseUpTo(30);
  auto first = inner.TakeResults();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].base.ts, 10);
  EXPECT_EQ(first[1].base.ts, 20);
  EXPECT_EQ(first[2].base.ts, 30);
  EXPECT_EQ(ordered.buffered(), 2u);
  ordered.Flush();
  auto rest = inner.TakeResults();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].base.ts, 40);
  EXPECT_EQ(rest[1].base.ts, 50);
}

TEST(OrderingSinkTest, TiesBrokenByKey) {
  CollectingSink inner;
  OrderingSink ordered(&inner);
  JoinResult r;
  r.base.ts = 5;
  for (Key k : {9, 1, 4}) {
    r.base.key = k;
    ordered.OnResult(r);
  }
  ordered.Flush();
  auto results = inner.TakeResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].base.key, 1u);
  EXPECT_EQ(results[1].base.key, 4u);
  EXPECT_EQ(results[2].base.key, 9u);
}

TEST(OrderingSinkTest, EndToEndOrderedResults) {
  // Wrap a real multi-joiner run: the inner sink must observe a fully
  // ts-sorted result stream after Flush().
  WorkloadSpec w = DefaultSynthetic();
  w.total_tuples = 30'000;
  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kWatermark;

  CollectingSink inner;
  OrderingSink ordered(&inner);
  EngineOptions options;
  options.num_joiners = 4;
  auto engine = CreateEngine(EngineKind::kScaleOij, q, options, &ordered);
  WorkloadGenerator gen(w);
  RunPipeline(engine.get(), &gen);
  ordered.Flush();

  const auto results = inner.TakeResults();
  ASSERT_GT(results.size(), 1000u);
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_GE(results[i].base.ts, results[i - 1].base.ts) << i;
  }
}

// ----------------------------------------------------------- run summary

TEST(RunSummaryTest, HumanUnits) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1'500), "1.5K");
  EXPECT_EQ(HumanCount(2'500'000), "2.50M");
  EXPECT_EQ(HumanCount(3'000'000'000.0), "3.00G");
  EXPECT_EQ(HumanRate(120'000), "120.0K/s");
  EXPECT_EQ(HumanDurationUs(500), "500us");
  EXPECT_EQ(HumanDurationUs(1'500), "1.50ms");
  EXPECT_EQ(HumanDurationUs(2'000'000), "2.00s");
}

TEST(RunSummaryTest, SummarizeRunMentionsKeyNumbers) {
  WorkloadSpec w = DefaultSynthetic();
  w.total_tuples = 10'000;
  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kEager;
  NullSink sink;
  EngineOptions options;
  options.num_joiners = 1;
  auto engine = CreateEngine(EngineKind::kKeyOij, q, options, &sink);
  WorkloadGenerator gen(w);
  const RunResult run = RunPipeline(engine.get(), &gen);
  const std::string summary = SummarizeRun("test", run);
  EXPECT_NE(summary.find("[test]"), std::string::npos);
  EXPECT_NE(summary.find("throughput"), std::string::npos);
  EXPECT_NE(summary.find("latency"), std::string::npos);
  EXPECT_NE(summary.find("effectiveness"), std::string::npos);
}

}  // namespace
}  // namespace oij
