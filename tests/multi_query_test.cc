// Multi-query shared-index tests (the standing-query catalog): N
// QuerySpecs with different windows, aggregates and lateness policies
// share one engine — one insert per tuple, many window reads — and
// every query's result stream is diffed against the policy-aware
// reference oracle, including queries added and removed mid-stream.
//
// Semantics under test (DESIGN.md §5g):
//   * a query added at arrival index P serves every base pushed after
//     its kAddQuery barrier, and those bases join against the *retained
//     history* already in the shared index — so the oracle for an added
//     query is the full-stream reference filtered to bases at index >= P
//     (its windows must fit inside the eviction reach, which the specs
//     here guarantee);
//   * a removed query drains: bases registered before the kRemoveQuery
//     barrier still finalize, no base after it does;
//   * lateness is gated once (the shared bound) but disposed per query:
//     drop/side-channel queries stay exact on the on-time subset while
//     best-effort queries also scan the late annex;
//   * the catalog is WAL-logged, so a crashed engine recovers its
//     standing queries — active and removed — and every query's
//     pre+post-crash union stays exact.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "core/engine_factory.h"
#include "join/late_gate.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "stream/generator.h"

namespace oij {
namespace {

constexpr uint64_t kWmEvery = 256;

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/oij_multi_query_test_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path_ = p;
  }
  ~TempDir() {
    if (path_.empty()) return;
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Unique integer-us timestamps so a base tuple is identified by
/// (ts, key, payload) and arrival indices map one-to-one onto bases.
WorkloadSpec TestWorkload(uint64_t seed, Timestamp disorder = 50) {
  WorkloadSpec w;
  w.num_keys = 12;
  w.window = IntervalWindow{400, 0};
  w.lateness_us = disorder;
  w.disorder_bound_us = disorder;
  w.event_rate_per_sec = 1'000'000;
  w.total_tuples = 30'000;
  w.probe_fraction = 0.5;
  w.seed = seed;
  return w;
}

QuerySpec MakeSpec(IntervalWindow window, AggKind agg,
                   Timestamp lateness = 50,
                   LatePolicy policy = LatePolicy::kBestEffortJoin) {
  QuerySpec q;
  q.window = window;
  q.lateness_us = lateness;
  q.agg = agg;
  q.emit_mode = EmitMode::kWatermark;
  q.late_policy = policy;
  return q;
}

using BaseKey = std::tuple<Timestamp, Key, double>;

BaseKey KeyOf(const Tuple& base) {
  return BaseKey(base.ts, base.key, base.payload);
}

/// Arrival index of every base tuple, in push order.
std::map<BaseKey, size_t> BaseArrivalIndex(
    const std::vector<StreamEvent>& events) {
  std::map<BaseKey, size_t> idx;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].stream == StreamId::kBase) idx[KeyOf(events[i].tuple)] = i;
  }
  return idx;
}

/// Policy-aware reference oracle, sorted for aligned comparison.
std::vector<ReferenceResult> Oracle(const std::vector<StreamEvent>& events,
                                    const QuerySpec& spec,
                                    ReferenceRunStats* stats = nullptr) {
  auto expected = ReferenceJoinWithPolicy(events, spec, kWmEvery, stats);
  SortResults(&expected);
  return expected;
}

/// Oracle rows whose base arrived inside [begin, end) — the lifetime of
/// a mid-stream added/removed standing query.
std::vector<ReferenceResult> FilterByArrival(
    const std::vector<ReferenceResult>& oracle,
    const std::map<BaseKey, size_t>& arrival, size_t begin, size_t end) {
  std::vector<ReferenceResult> out;
  for (const ReferenceResult& r : oracle) {
    const auto it = arrival.find(KeyOf(r.base));
    if (it == arrival.end()) continue;
    if (it->second >= begin && it->second < end) out.push_back(r);
  }
  SortResults(&out);
  return out;
}

std::map<uint32_t, std::vector<JoinResult>> SplitByQuery(
    std::vector<JoinResult> results) {
  std::map<uint32_t, std::vector<JoinResult>> by_query;
  for (JoinResult& r : results) by_query[r.query].push_back(r);
  return by_query;
}

std::vector<ReferenceResult> ToReference(
    const std::vector<JoinResult>& results) {
  std::vector<ReferenceResult> out;
  out.reserve(results.size());
  for (const JoinResult& r : results) {
    out.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&out);
  return out;
}

void ExpectResultsEqual(const std::vector<ReferenceResult>& got,
                        const std::vector<ReferenceResult>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label << ": result cardinality";
  size_t mismatches = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].base != want[i].base ||
        got[i].match_count != want[i].match_count ||
        (!std::isnan(want[i].aggregate) &&
         std::abs(got[i].aggregate - want[i].aggregate) > 1e-6)) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << label << ": result " << i << " differs: base ts="
                      << got[i].base.ts << " key=" << got[i].base.key
                      << " got(count=" << got[i].match_count
                      << ", agg=" << got[i].aggregate << ") want(count="
                      << want[i].match_count << ", agg=" << want[i].aggregate
                      << ")";
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << label;
}

const QueryStatsRow* FindRow(const std::vector<QueryStatsRow>& rows,
                             const std::string& id) {
  for (const QueryStatsRow& row : rows) {
    if (row.id == id) return &row;
  }
  return nullptr;
}

class CollectingLateSink : public LateSink {
 public:
  void OnLateTuple(const StreamEvent&, Timestamp) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

// ----------------------------------------- N queries, one index, exact

class MultiQueryEngineTest : public ::testing::TestWithParam<EngineKind> {};

/// Five standing queries with different windows and aggregates share one
/// index; each one must match its own single-query oracle exactly.
TEST_P(MultiQueryEngineTest, ManyQueriesShareOneIndexExactly) {
  const EngineKind kind = GetParam();
  const auto events = Generate(TestWorkload(1201));

  const QuerySpec primary = MakeSpec({400, 0}, AggKind::kSum);
  const std::vector<std::pair<std::string, QuerySpec>> added = {
      {"narrow_sum", MakeSpec({200, 0}, AggKind::kSum)},
      {"wide_count", MakeSpec({400, 0}, AggKind::kCount)},
      {"mid_max", MakeSpec({300, 0}, AggKind::kMax)},
      {"fol_avg", MakeSpec({250, 80}, AggKind::kAvg)},
  };

  CollectingSink sink;
  EngineOptions options;
  options.num_joiners = 3;
  auto engine = CreateEngine(kind, primary, options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  for (const auto& [id, spec] : added) {
    ASSERT_TRUE(engine->AddQuery(id, spec).ok()) << id;
  }

  WatermarkTracker tracker(primary.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % kWmEvery == 0) engine->SignalWatermark(tracker.watermark());
  }
  const EngineStats stats = engine->Finish();
  EXPECT_TRUE(stats.health.ok()) << stats.health.ToString();

  const auto rows = engine->QuerySnapshot();
  ASSERT_EQ(rows.size(), 1 + added.size());
  auto by_query = SplitByQuery(sink.TakeResults());

  for (const QueryStatsRow& row : rows) {
    EXPECT_TRUE(row.active) << row.id;
    const QuerySpec spec = row.ord == 0 ? primary : added[row.ord - 1].second;
    const std::string label =
        std::string(EngineKindName(kind)) + "/" + row.id;
    const auto expected = Oracle(events, spec);
    const auto got = ToReference(by_query[row.ord]);
    ExpectResultsEqual(got, expected, label);
    EXPECT_EQ(row.results, got.size()) << label;
  }
}

/// Duplicate ids, bad specs, and mismatched shared parameters are all
/// rejected without disturbing the running queries.
TEST_P(MultiQueryEngineTest, CatalogValidationRejectsBadSpecs) {
  const EngineKind kind = GetParam();
  const QuerySpec primary = MakeSpec({400, 0}, AggKind::kSum);
  CollectingSink sink;
  EngineOptions options;
  options.num_joiners = 2;
  auto engine = CreateEngine(kind, primary, options, &sink);

  // Catalog changes need a started engine (they ride control barriers).
  EXPECT_FALSE(engine->AddQuery("early", primary).ok());
  ASSERT_TRUE(engine->Start().ok());

  ASSERT_TRUE(engine->AddQuery("good", MakeSpec({200, 0}, AggKind::kSum)).ok());
  EXPECT_FALSE(engine->AddQuery("good", primary).ok()) << "duplicate id";
  EXPECT_FALSE(engine->AddQuery("main", primary).ok()) << "primary's id";
  EXPECT_FALSE(engine->AddQuery("bad id!", primary).ok()) << "bad charset";
  QuerySpec wrong_lateness = primary;
  wrong_lateness.lateness_us = primary.lateness_us + 1;
  EXPECT_FALSE(engine->AddQuery("l", wrong_lateness).ok());
  QuerySpec wrong_emit = primary;
  wrong_emit.emit_mode = EmitMode::kEager;
  EXPECT_FALSE(engine->AddQuery("e", wrong_emit).ok());
  QuerySpec negative = primary;
  negative.window.pre = -1;
  EXPECT_FALSE(engine->AddQuery("n", negative).ok());

  EXPECT_FALSE(engine->RemoveQuery("main").ok()) << "primary is fixed";
  EXPECT_FALSE(engine->RemoveQuery("ghost").ok());
  EXPECT_TRUE(engine->RemoveQuery("good").ok());
  EXPECT_FALSE(engine->RemoveQuery("good").ok()) << "already removed";

  const EngineStats stats = engine->Finish();
  EXPECT_TRUE(stats.health.ok());
}

// ------------------------------------------- per-query lateness policy

/// One lateness gate, three disposals: under a late flood the drop and
/// side-channel queries must equal the policy oracle exactly, the
/// side channel must receive every violator, and the best-effort query
/// stays within [on-time matches, full-knowledge matches] per base.
TEST_P(MultiQueryEngineTest, LatePoliciesDivergePerQueryOnOneGate) {
  const EngineKind kind = GetParam();
  WorkloadSpec w = TestWorkload(1301, /*disorder=*/80);
  w.late_flood_fraction = 0.12;
  w.late_flood_extra_us = 60;
  w.total_tuples = 20'000;
  const auto events = Generate(w);

  const Timestamp lateness = w.lateness_us;
  const QuerySpec primary =
      MakeSpec({400, 0}, AggKind::kSum, lateness, LatePolicy::kBestEffortJoin);
  const QuerySpec drop_spec =
      MakeSpec({400, 0}, AggKind::kSum, lateness, LatePolicy::kDropAndCount);
  const QuerySpec side_spec =
      MakeSpec({400, 0}, AggKind::kSum, lateness, LatePolicy::kSideChannel);

  ReferenceRunStats ref_stats;
  const auto drop_oracle =
      Oracle(events, drop_spec, &ref_stats);
  const uint64_t expected_late = ref_stats.late.tuples;
  ASSERT_GT(expected_late, 100u) << "flood knob produced no violations";
  QuerySpec best_full = primary;
  const auto full_oracle = Oracle(events, best_full);

  CollectingLateSink late_sink;
  CollectingSink sink;
  EngineOptions options;
  options.num_joiners = 3;
  options.late_sink = &late_sink;
  auto engine = CreateEngine(kind, primary, options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  ASSERT_TRUE(engine->AddQuery("dropper", drop_spec).ok());
  ASSERT_TRUE(engine->AddQuery("sider", side_spec).ok());

  WatermarkTracker tracker(lateness);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % kWmEvery == 0) engine->SignalWatermark(tracker.watermark());
  }
  const EngineStats stats = engine->Finish();
  EXPECT_TRUE(stats.health.ok()) << stats.health.ToString();

  const std::string prefix = std::string(EngineKindName(kind)) + "/";
  auto by_query = SplitByQuery(sink.TakeResults());
  const auto rows = engine->QuerySnapshot();
  ASSERT_EQ(rows.size(), 3u);

  // Exact on the on-time subset for both exact policies.
  const QueryStatsRow* dropper = FindRow(rows, "dropper");
  ASSERT_NE(dropper, nullptr);
  ExpectResultsEqual(ToReference(by_query[dropper->ord]), drop_oracle,
                     prefix + "dropper");
  EXPECT_EQ(dropper->late.tuples, expected_late);
  EXPECT_EQ(dropper->late.dropped, expected_late);
  EXPECT_EQ(dropper->late.joined, 0u);

  const QueryStatsRow* sider = FindRow(rows, "sider");
  ASSERT_NE(sider, nullptr);
  ExpectResultsEqual(ToReference(by_query[sider->ord]), drop_oracle,
                     prefix + "sider");
  EXPECT_EQ(sider->late.tuples, expected_late);
  EXPECT_EQ(sider->late.side_channel, expected_late);
  EXPECT_EQ(late_sink.count(), expected_late)
      << "side channel must receive every violator exactly once";

  // Best-effort: every base emits once; per-base matches bracketed by
  // the on-time oracle below and full knowledge above.
  const QueryStatsRow* main_row = FindRow(rows, "main");
  ASSERT_NE(main_row, nullptr);
  EXPECT_EQ(main_row->late.tuples, expected_late);
  EXPECT_EQ(main_row->late.joined, expected_late);
  EXPECT_EQ(main_row->late.dropped, 0u);
  const auto got = ToReference(by_query[main_row->ord]);
  ASSERT_EQ(got.size(), full_oracle.size()) << prefix + "main cardinality";
  std::map<BaseKey, uint64_t> on_time;
  for (const ReferenceResult& r : drop_oracle) {
    on_time[KeyOf(r.base)] = r.match_count;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(KeyOf(got[i].base), KeyOf(full_oracle[i].base));
    EXPECT_LE(got[i].match_count, full_oracle[i].match_count)
        << prefix << "main: base ts=" << got[i].base.ts << " overcounted";
    const auto it = on_time.find(KeyOf(got[i].base));
    if (it != on_time.end()) {
      EXPECT_GE(got[i].match_count, it->second)
          << prefix << "main: base ts=" << got[i].base.ts
          << " lost on-time matches";
    }
  }
}

// ------------------------------------------ mid-stream add and remove

/// A query added mid-stream serves every later base against the shared
/// index's retained history: its result set is the full-stream oracle
/// restricted to bases that arrived after the add barrier.
TEST_P(MultiQueryEngineTest, MidStreamAddServesRetainedHistory) {
  const EngineKind kind = GetParam();
  const auto events = Generate(TestWorkload(1401));
  const auto arrival = BaseArrivalIndex(events);
  const QuerySpec primary = MakeSpec({400, 0}, AggKind::kSum);
  const QuerySpec mid_spec = MakeSpec({200, 0}, AggKind::kCount);
  const size_t add_at = (events.size() / 2 / kWmEvery) * kWmEvery;

  CollectingSink sink;
  EngineOptions options;
  options.num_joiners = 3;
  auto engine = CreateEngine(kind, primary, options, &sink);
  ASSERT_TRUE(engine->Start().ok());

  WatermarkTracker tracker(primary.lateness_us);
  uint64_t n = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i == add_at) {
      ASSERT_TRUE(engine->AddQuery("mid", mid_spec).ok());
    }
    tracker.Observe(events[i].tuple.ts);
    engine->Push(events[i], MonotonicNowUs());
    if (++n % kWmEvery == 0) engine->SignalWatermark(tracker.watermark());
  }
  const EngineStats stats = engine->Finish();
  EXPECT_TRUE(stats.health.ok()) << stats.health.ToString();

  const std::string prefix = std::string(EngineKindName(kind)) + "/";
  auto by_query = SplitByQuery(sink.TakeResults());
  const auto rows = engine->QuerySnapshot();
  const QueryStatsRow* mid = FindRow(rows, "mid");
  ASSERT_NE(mid, nullptr);

  ExpectResultsEqual(ToReference(by_query[0]),
                     Oracle(events, primary),
                     prefix + "primary");
  const auto mid_expected =
      FilterByArrival(Oracle(events, mid_spec),
                      arrival, add_at, events.size());
  ASSERT_GT(mid_expected.size(), 0u);
  // The first post-add bases open windows reaching back across the add
  // barrier; exactness here is what "shared index" buys.
  ExpectResultsEqual(ToReference(by_query[mid->ord]), mid_expected,
                     prefix + "mid");
}

/// A removed query drains: every base registered before the remove
/// barrier still finalizes (exactly), no later base is served.
TEST_P(MultiQueryEngineTest, MidStreamRemoveDrainsAndStops) {
  const EngineKind kind = GetParam();
  const auto events = Generate(TestWorkload(1402));
  const auto arrival = BaseArrivalIndex(events);
  const QuerySpec primary = MakeSpec({400, 0}, AggKind::kSum);
  const QuerySpec tmp_spec = MakeSpec({300, 0}, AggKind::kSum);
  const size_t remove_at = (events.size() / 2 / kWmEvery) * kWmEvery;

  CollectingSink sink;
  EngineOptions options;
  options.num_joiners = 3;
  auto engine = CreateEngine(kind, primary, options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  ASSERT_TRUE(engine->AddQuery("tmp", tmp_spec).ok());

  WatermarkTracker tracker(primary.lateness_us);
  uint64_t n = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i == remove_at) {
      ASSERT_TRUE(engine->RemoveQuery("tmp").ok());
    }
    tracker.Observe(events[i].tuple.ts);
    engine->Push(events[i], MonotonicNowUs());
    if (++n % kWmEvery == 0) engine->SignalWatermark(tracker.watermark());
  }
  const EngineStats stats = engine->Finish();
  EXPECT_TRUE(stats.health.ok()) << stats.health.ToString();

  const std::string prefix = std::string(EngineKindName(kind)) + "/";
  auto by_query = SplitByQuery(sink.TakeResults());
  const auto rows = engine->QuerySnapshot();
  const QueryStatsRow* tmp = FindRow(rows, "tmp");
  ASSERT_NE(tmp, nullptr);
  EXPECT_FALSE(tmp->active);

  ExpectResultsEqual(ToReference(by_query[0]),
                     Oracle(events, primary),
                     prefix + "primary");
  const auto tmp_expected =
      FilterByArrival(Oracle(events, tmp_spec),
                      arrival, 0, remove_at);
  ASSERT_GT(tmp_expected.size(), 0u);
  ExpectResultsEqual(ToReference(by_query[tmp->ord]), tmp_expected,
                     prefix + "tmp");
  EXPECT_EQ(tmp->results, tmp_expected.size());
}

INSTANTIATE_TEST_SUITE_P(Engines, MultiQueryEngineTest,
                         ::testing::Values(EngineKind::kKeyOij,
                                           EngineKind::kScaleOij),
                         [](const auto& info) {
                           std::string name(EngineKindName(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ------------------------------------------------ churn under ingest

/// Catalog add/remove churn concurrent with ingest (the TSan target:
/// every catalog change races a busy joiner pool through the control
/// barriers). Every churned query's window is diffed exactly over its
/// own [add, remove) lifetime.
TEST(MultiQueryChurnTest, CatalogChurnUnderIngestStaysExact) {
  WorkloadSpec w = TestWorkload(1501);
  w.total_tuples = 40'000;
  const auto events = Generate(w);
  const auto arrival = BaseArrivalIndex(events);
  const QuerySpec primary = MakeSpec({400, 0}, AggKind::kSum);

  struct Churned {
    std::string id;
    QuerySpec spec;
    size_t added_at = 0;
    size_t removed_at = 0;  // events.size() if never removed
  };
  std::vector<Churned> churned;

  CollectingSink sink;
  EngineOptions options;
  options.num_joiners = 3;
  auto engine = CreateEngine(EngineKind::kScaleOij, primary, options, &sink);
  ASSERT_TRUE(engine->Start().ok());

  WatermarkTracker tracker(primary.lateness_us);
  uint64_t n = 0;
  size_t next_add = 0;
  size_t next_remove = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i % 2048 == 0 && i > 0) {
      Churned c;
      c.id = "churn-" + std::to_string(next_add);
      c.spec = MakeSpec({200, 0}, (next_add % 2 == 0) ? AggKind::kSum
                                                      : AggKind::kCount);
      c.added_at = i;
      c.removed_at = events.size();
      ASSERT_TRUE(engine->AddQuery(c.id, c.spec).ok()) << c.id;
      churned.push_back(c);
      ++next_add;
    }
    if (i % 4096 == 0 && next_remove < churned.size() &&
        churned[next_remove].added_at < i) {
      churned[next_remove].removed_at = i;
      ASSERT_TRUE(engine->RemoveQuery(churned[next_remove].id).ok());
      ++next_remove;
    }
    tracker.Observe(events[i].tuple.ts);
    engine->Push(events[i], MonotonicNowUs());
    if (++n % kWmEvery == 0) engine->SignalWatermark(tracker.watermark());
  }
  const EngineStats stats = engine->Finish();
  EXPECT_TRUE(stats.health.ok()) << stats.health.ToString();
  ASSERT_GT(churned.size(), 8u);
  ASSERT_GT(next_remove, 2u);

  auto by_query = SplitByQuery(sink.TakeResults());
  const auto rows = engine->QuerySnapshot();
  ASSERT_EQ(rows.size(), 1 + churned.size());

  ExpectResultsEqual(ToReference(by_query[0]),
                     Oracle(events, primary),
                     "churn/primary");
  for (const Churned& c : churned) {
    const QueryStatsRow* row = FindRow(rows, c.id);
    ASSERT_NE(row, nullptr) << c.id;
    EXPECT_EQ(row->active, c.removed_at == events.size()) << c.id;
    const auto expected =
        FilterByArrival(Oracle(events, c.spec),
                        arrival, c.added_at, c.removed_at);
    ExpectResultsEqual(ToReference(by_query[row->ord]), expected,
                       "churn/" + c.id);
  }
}

// --------------------------------------------- catalog crash recovery

/// Three standing queries (one removed mid-prefix), a kill -9-style
/// crash on a watermark boundary under fsync=per_batch, a second engine
/// recovering from the same WAL directory: the catalog must come back —
/// specs, ordinals, the removed query's inactive state — and all three
/// result sets (pre-crash union post-crash) must be exact.
TEST(MultiQueryRecoveryTest, CrashRecoveryRestoresCatalogAndResultSets) {
  const auto events = Generate(TestWorkload(1601));
  const auto arrival = BaseArrivalIndex(events);
  const QuerySpec primary = MakeSpec({400, 0}, AggKind::kSum);
  const QuerySpec narrow_spec = MakeSpec({200, 0}, AggKind::kSum);
  const QuerySpec count_spec = MakeSpec({400, 0}, AggKind::kCount);
  const size_t remove_at = (events.size() / 4 / kWmEvery) * kWmEvery;
  const size_t crash_at = (events.size() / 2 / kWmEvery) * kWmEvery;

  TempDir dir;
  EngineOptions options;
  options.num_joiners = 3;
  options.durability.wal_dir = dir.path();
  options.durability.fsync = FsyncPolicy::kPerBatch;
  options.durability.snapshot_interval_records = 3'000;

  // Per-query union across both incarnations; replayed duplicates must
  // agree byte-for-byte in the durable-exact regime.
  std::map<std::string, std::map<BaseKey, JoinResult>> got;
  auto accumulate = [&got](const std::vector<QueryStatsRow>& rows,
                           std::vector<JoinResult> results,
                           const std::string& label) {
    std::map<uint32_t, std::string> ids;
    for (const QueryStatsRow& row : rows) ids[row.ord] = row.id;
    for (const JoinResult& r : results) {
      ASSERT_TRUE(ids.count(r.query)) << label << ": unknown ordinal";
      auto& acc = got[ids[r.query]];
      const auto [it, inserted] = acc.emplace(KeyOf(r.base), r);
      if (!inserted) {
        EXPECT_EQ(it->second.match_count, r.match_count)
            << label << ": replayed duplicate disagrees (query "
            << ids[r.query] << ", base ts=" << r.base.ts << ")";
      }
    }
  };

  WatermarkTracker tracker(primary.lateness_us);
  uint64_t n = 0;
  {
    CollectingSink sink;
    auto engine =
        CreateEngine(EngineKind::kScaleOij, primary, options, &sink);
    ASSERT_TRUE(engine->Start().ok());
    ASSERT_TRUE(engine->AddQuery("narrow", narrow_spec).ok());
    ASSERT_TRUE(engine->AddQuery("counts", count_spec).ok());
    for (size_t i = 0; i < crash_at; ++i) {
      if (i == remove_at) {
        ASSERT_TRUE(engine->RemoveQuery("counts").ok());
      }
      tracker.Observe(events[i].tuple.ts);
      engine->Push(events[i], MonotonicNowUs());
      if (++n % kWmEvery == 0) engine->SignalWatermark(tracker.watermark());
    }
    const auto rows = engine->QuerySnapshot();
    static_cast<ParallelEngineBase*>(engine.get())->CrashForTest();
    accumulate(rows, sink.TakeResults(), "pre-crash");
  }

  CollectingSink sink2;
  auto engine2 =
      CreateEngine(EngineKind::kScaleOij, primary, options, &sink2);
  ASSERT_TRUE(engine2->Start().ok());
  ASSERT_TRUE(engine2->Recover().ok());
  ASSERT_FALSE(engine2->Recovering());

  // The catalog survived the crash: same ids, same ordinals, same
  // specs, and the removed query is back as inactive.
  const auto recovered = engine2->QuerySnapshot();
  ASSERT_EQ(recovered.size(), 3u);
  const QueryStatsRow* narrow = FindRow(recovered, "narrow");
  ASSERT_NE(narrow, nullptr);
  EXPECT_TRUE(narrow->active);
  EXPECT_EQ(narrow->ord, 1u);
  EXPECT_EQ(narrow->spec.window.pre, narrow_spec.window.pre);
  EXPECT_EQ(narrow->spec.agg, narrow_spec.agg);
  const QueryStatsRow* counts = FindRow(recovered, "counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_FALSE(counts->active) << "removal must survive recovery";
  EXPECT_EQ(counts->ord, 2u);

  for (size_t i = crash_at; i < events.size(); ++i) {
    tracker.Observe(events[i].tuple.ts);
    engine2->Push(events[i], MonotonicNowUs());
    if (++n % kWmEvery == 0) engine2->SignalWatermark(tracker.watermark());
  }
  const EngineStats stats = engine2->Finish();
  EXPECT_TRUE(stats.health.ok()) << stats.health.ToString();
  accumulate(engine2->QuerySnapshot(), sink2.TakeResults(), "recovered");

  const auto check = [&](const std::string& id,
                         std::vector<ReferenceResult> expected) {
    SortResults(&expected);
    std::vector<ReferenceResult> union_got;
    for (const auto& [key, r] : got[id]) {
      union_got.push_back({r.base, r.aggregate, r.match_count});
    }
    SortResults(&union_got);
    ExpectResultsEqual(union_got, expected, "recovery/" + id);
  };
  check("main", Oracle(events, primary));
  check("narrow", Oracle(events, narrow_spec));
  check("counts",
        FilterByArrival(Oracle(events, count_spec),
                        arrival, 0, remove_at));
}

}  // namespace
}  // namespace oij
