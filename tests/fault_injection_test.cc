// Fault-injection tests for the overload/fault-tolerance layer: stalled
// joiners must not hang Finish (watchdog escalation or the Finish
// deadline both release it), late-tuple floods must be counted exactly
// and identically by every engine and the reference replay, and the
// lossy backpressure policies must only ever *remove* matches relative
// to the reference join.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <tuple>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "stream/generator.h"

namespace oij {
namespace {

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

WorkloadSpec BaseWorkload(uint64_t seed) {
  WorkloadSpec w;
  w.num_keys = 8;
  w.window = IntervalWindow{400, 0};
  w.lateness_us = 60;
  w.disorder_bound_us = 60;
  w.total_tuples = 20'000;
  w.seed = seed;
  return w;
}

QuerySpec BaseQuery() {
  QuerySpec q;
  q.window = IntervalWindow{400, 0};
  q.lateness_us = 60;
  q.emit_mode = EmitMode::kWatermark;
  return q;
}

/// Drives an engine exactly like the pipeline: push, then punctuate every
/// `wm_every` arrivals. Returns the merged stats.
EngineStats Drive(JoinEngine* engine, const std::vector<StreamEvent>& events,
                  Timestamp lateness_us, uint64_t wm_every) {
  WatermarkTracker tracker(lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    engine->Push(ev, MonotonicNowUs());
    tracker.Observe(ev.tuple.ts);
    if (wm_every > 0 && ++n % wm_every == 0) {
      engine->SignalWatermark(tracker.watermark());
    }
  }
  return engine->Finish();
}

/// Ground truth for the late-flood tests, computed independently of
/// LatenessGate: replay the arrival order, emit a watermark every
/// `wm_every` arrivals, and count tuples whose timestamp is below the
/// last *emitted* watermark at push time.
uint64_t CountLateArrivals(const std::vector<StreamEvent>& events,
                           Timestamp lateness_us, uint64_t wm_every) {
  WatermarkTracker tracker(lateness_us);
  Timestamp last_wm = kMinTimestamp;
  uint64_t late = 0;
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    if (last_wm != kMinTimestamp && ev.tuple.ts < last_wm) ++late;
    tracker.Observe(ev.tuple.ts);
    if (wm_every > 0 && ++n % wm_every == 0) {
      const Timestamp wm = tracker.watermark();
      if (wm > last_wm) last_wm = wm;
    }
  }
  return late;
}

using BaseKey = std::tuple<Timestamp, Key, double>;

std::map<BaseKey, ReferenceResult> IndexByBase(
    const std::vector<ReferenceResult>& results) {
  std::map<BaseKey, ReferenceResult> index;
  for (const ReferenceResult& r : results) {
    index.emplace(BaseKey{r.base.ts, r.base.key, r.base.payload}, r);
  }
  return index;
}

/// Every engine result must correspond to a reference result and carry at
/// most its matches/aggregate (valid for kSum over non-negative
/// payloads): a lossy policy may only *remove* probe tuples.
void ExpectSubsetOfReference(const std::vector<JoinResult>& got,
                             const std::vector<ReferenceResult>& reference,
                             const std::string& label) {
  const auto index = IndexByBase(reference);
  for (const JoinResult& r : got) {
    const auto it = index.find(BaseKey{r.base.ts, r.base.key, r.base.payload});
    ASSERT_NE(it, index.end()) << label << ": unknown base tuple";
    EXPECT_LE(r.match_count, it->second.match_count) << label;
    EXPECT_LE(r.aggregate, it->second.aggregate + 1e-6) << label;
  }
}

constexpr EngineKind kAllParallelEngines[] = {
    EngineKind::kKeyOij, EngineKind::kScaleOij, EngineKind::kSplitJoin,
    EngineKind::kSharedState, EngineKind::kHandshake};

// ---------------------------------------------------------------------------
// Stalled joiner: Finish must return (bounded) and report the failure.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, StalledJoinerAbortsViaWatchdog) {
  const auto events = Generate(BaseWorkload(601));
  for (EngineKind kind : kAllParallelEngines) {
    const std::string label(EngineKindName(kind));
    FaultInjector faults;
    faults.stalled_joiner = 0;
    faults.stall_after_events = 32;

    EngineOptions options;
    options.num_joiners = 3;
    options.queue_capacity = 64;
    options.fault_injector = &faults;
    options.watchdog.interval_ms = 20;
    options.watchdog.stall_intervals = 5;
    options.finish_timeout_us = 20'000'000;

    CountingSink sink;
    auto engine = CreateEngine(kind, BaseQuery(), options, &sink);
    ASSERT_TRUE(engine->Start().ok()) << label;

    const int64_t t0 = MonotonicNowUs();
    const EngineStats stats =
        Drive(engine.get(), events, BaseQuery().lateness_us, 64);
    const int64_t elapsed_us = MonotonicNowUs() - t0;

    EXPECT_EQ(stats.health.code(), Status::Code::kResourceExhausted)
        << label << ": " << stats.health.ToString();
    EXPECT_FALSE(stats.warnings.empty()) << label;
    // Watchdog fires after ~120 ms of stall; everything past the abort is
    // fast. Far below the 20 s finish timeout == the watchdog, not the
    // deadline, released the run.
    EXPECT_LT(elapsed_us, 15'000'000) << label;
  }
}

TEST(FaultInjectionTest, FinishDeadlineReleasesWedgedEngine) {
  // Watchdog off: the Finish deadline is the last line of defense.
  FaultInjector faults;
  faults.stalled_joiner = 0;
  faults.stall_after_events = 0;  // park before consuming anything

  EngineOptions options;
  options.num_joiners = 1;
  options.queue_capacity = 8;
  options.fault_injector = &faults;
  options.enable_watchdog = false;
  options.finish_timeout_us = 300'000;  // 300 ms

  const auto events = Generate(BaseWorkload(602));
  CountingSink sink;
  auto engine =
      CreateEngine(EngineKind::kKeyOij, BaseQuery(), options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  // Fewer events than ring capacity: the driver must not block either.
  for (size_t i = 0; i < 4; ++i) engine->Push(events[i], MonotonicNowUs());

  const int64_t t0 = MonotonicNowUs();
  const EngineStats stats = engine->Finish();
  const int64_t elapsed_us = MonotonicNowUs() - t0;

  EXPECT_EQ(stats.health.code(), Status::Code::kDeadlineExceeded)
      << stats.health.ToString();
  EXPECT_GE(elapsed_us, 250'000);
  EXPECT_LT(elapsed_us, 5'000'000);
}

// ---------------------------------------------------------------------------
// Late-tuple flood: counters must match the injected violation count
// exactly, for every engine and the reference replay.
// ---------------------------------------------------------------------------

struct LateFloodFixture {
  std::vector<StreamEvent> events;
  QuerySpec query;
  uint64_t wm_every = 7;
  uint64_t expected_late = 0;
  std::vector<ReferenceResult> full_reference;

  explicit LateFloodFixture(uint64_t seed) {
    WorkloadSpec w = BaseWorkload(seed);
    w.late_flood_fraction = 0.15;
    w.late_flood_extra_us = 50;
    events = Generate(w);
    query = BaseQuery();
    expected_late = CountLateArrivals(events, query.lateness_us, wm_every);
    full_reference = ReferenceJoin(events, query);
  }
};

TEST(FaultInjectionTest, LateFloodGeneratorProducesViolations) {
  const LateFloodFixture fix(611);
  // The flood knob must actually produce lateness violations under the
  // test cadence, or the assertions below would pass vacuously.
  EXPECT_GT(fix.expected_late, 100u);
  EXPECT_LT(fix.expected_late, fix.events.size());
}

TEST(FaultInjectionTest, LateFloodCountsMatchReferenceReplay) {
  const LateFloodFixture fix(611);
  for (LatePolicy policy : {LatePolicy::kDropAndCount,
                            LatePolicy::kSideChannel,
                            LatePolicy::kBestEffortJoin}) {
    QuerySpec q = fix.query;
    q.late_policy = policy;
    ReferenceRunStats stats;
    ReferenceJoinWithPolicy(fix.events, q, fix.wm_every, &stats);
    EXPECT_EQ(stats.late.tuples, fix.expected_late)
        << LatePolicyName(policy);
  }
}

TEST(FaultInjectionTest, LateFloodCountsExactAcrossEngines) {
  const LateFloodFixture fix(611);
  for (EngineKind kind : kAllParallelEngines) {
    for (LatePolicy policy : {LatePolicy::kDropAndCount,
                              LatePolicy::kSideChannel,
                              LatePolicy::kBestEffortJoin}) {
      const std::string label = std::string(EngineKindName(kind)) + "/" +
                                std::string(LatePolicyName(policy));
      QuerySpec q = fix.query;
      q.late_policy = policy;
      CollectingLateSink late_sink;
      EngineOptions options;
      options.num_joiners = 3;
      options.late_sink = &late_sink;
      CountingSink sink;
      auto engine = CreateEngine(kind, q, options, &sink);
      ASSERT_TRUE(engine->Start().ok()) << label;
      const EngineStats stats =
          Drive(engine.get(), fix.events, q.lateness_us, fix.wm_every);

      EXPECT_TRUE(stats.health.ok()) << label << stats.health.ToString();
      EXPECT_EQ(stats.late.tuples, fix.expected_late) << label;
      switch (policy) {
        case LatePolicy::kDropAndCount:
          EXPECT_EQ(stats.late.dropped, fix.expected_late) << label;
          EXPECT_EQ(stats.late.joined, 0u) << label;
          break;
        case LatePolicy::kSideChannel:
          EXPECT_EQ(stats.late.side_channel, fix.expected_late) << label;
          EXPECT_EQ(late_sink.TakeEvents().size(), fix.expected_late)
              << label;
          break;
        case LatePolicy::kBestEffortJoin:
          EXPECT_EQ(stats.late.joined, fix.expected_late) << label;
          EXPECT_EQ(stats.late.dropped, 0u) << label;
          break;
      }
      EXPECT_EQ(stats.late.base + stats.late.probe, fix.expected_late)
          << label;
    }
  }
}

TEST(FaultInjectionTest, DropAndCountMatchesPolicyReferenceExactly) {
  // Under kDropAndCount every engine must emit exactly the join of the
  // on-time subset — the policy-aware reference replay.
  const LateFloodFixture fix(611);
  QuerySpec q = fix.query;
  q.late_policy = LatePolicy::kDropAndCount;
  auto expected = ReferenceJoinWithPolicy(fix.events, q, fix.wm_every);
  SortResults(&expected);
  ASSERT_LT(expected.size(), fix.full_reference.size());  // bases dropped

  // kSharedState is excluded: the OpenMLDB-like baseline joins eagerly
  // with no disorder handling and is documented as approximate even on
  // a well-behaved stream, so exact equality is not its contract.
  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij,
                          EngineKind::kSplitJoin, EngineKind::kHandshake}) {
    const std::string label(EngineKindName(kind));
    CollectingSink sink;
    EngineOptions options;
    options.num_joiners = 3;
    auto engine = CreateEngine(kind, q, options, &sink);
    ASSERT_TRUE(engine->Start().ok()) << label;
    Drive(engine.get(), fix.events, q.lateness_us, fix.wm_every);

    std::vector<ReferenceResult> got;
    for (const JoinResult& r : sink.TakeResults()) {
      got.push_back({r.base, r.aggregate, r.match_count});
    }
    SortResults(&got);
    ASSERT_EQ(got.size(), expected.size()) << label;
    size_t bad = 0;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].match_count != expected[i].match_count ||
          (!std::isnan(expected[i].aggregate) &&
           std::abs(got[i].aggregate - expected[i].aggregate) > 1e-6)) {
        ++bad;
      }
    }
    EXPECT_EQ(bad, 0u) << label;
    // And (the acceptance phrasing) nothing the full reference would not
    // produce.
    ExpectSubsetOfReference(sink.TakeResults(), fix.full_reference, label);
  }
}

TEST(FaultInjectionTest, SideChannelDeliversExactlyTheLateTuples) {
  const LateFloodFixture fix(611);
  QuerySpec q = fix.query;
  q.late_policy = LatePolicy::kSideChannel;

  CollectingLateSink ref_sink;
  ReferenceJoinWithPolicy(fix.events, q, fix.wm_every, nullptr, &ref_sink);
  auto ref_late = ref_sink.TakeEvents();
  ASSERT_EQ(ref_late.size(), fix.expected_late);

  CollectingLateSink engine_sink;
  EngineOptions options;
  options.num_joiners = 3;
  options.late_sink = &engine_sink;
  CountingSink sink;
  auto engine = CreateEngine(EngineKind::kScaleOij, q, options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  Drive(engine.get(), fix.events, q.lateness_us, fix.wm_every);
  auto got_late = engine_sink.TakeEvents();

  ASSERT_EQ(got_late.size(), ref_late.size());
  // Both gates see the identical arrival order, so the diverted
  // sequences must agree element-wise.
  for (size_t i = 0; i < got_late.size(); ++i) {
    EXPECT_EQ(got_late[i].tuple, ref_late[i].tuple) << "index " << i;
    EXPECT_EQ(got_late[i].stream, ref_late[i].stream) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Overload policies under a slow joiner.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, DropNewestShedsButStaysSubset) {
  WorkloadSpec w = BaseWorkload(621);
  w.total_tuples = 8'000;
  const auto events = Generate(w);
  const QuerySpec q = BaseQuery();
  const auto reference = ReferenceJoin(events, q);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij,
                          EngineKind::kSplitJoin}) {
    const std::string label =
        std::string("drop-newest/") + std::string(EngineKindName(kind));
    FaultInjector faults;
    faults.slow_joiner = 0;
    faults.slow_delay_us = 50;

    EngineOptions options;
    options.num_joiners = 2;
    options.queue_capacity = 8;
    options.overload_policy = OverloadPolicy::kDropNewest;
    options.fault_injector = &faults;

    CollectingSink sink;
    auto engine = CreateEngine(kind, q, options, &sink);
    ASSERT_TRUE(engine->Start().ok()) << label;
    const EngineStats stats = Drive(engine.get(), events, q.lateness_us, 64);

    EXPECT_TRUE(stats.health.ok()) << label << stats.health.ToString();
    EXPECT_GT(stats.overload_dropped, 0u) << label;
    ExpectSubsetOfReference(sink.TakeResults(), reference, label);
  }
}

TEST(FaultInjectionTest, ShedOldestShedsButStaysSubset) {
  WorkloadSpec w = BaseWorkload(622);
  w.total_tuples = 8'000;
  const auto events = Generate(w);
  const QuerySpec q = BaseQuery();
  const auto reference = ReferenceJoin(events, q);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    const std::string label =
        std::string("shed-oldest/") + std::string(EngineKindName(kind));
    FaultInjector faults;
    faults.slow_joiner = 0;
    faults.slow_delay_us = 50;

    EngineOptions options;
    options.num_joiners = 2;
    options.queue_capacity = 8;
    options.overload_policy = OverloadPolicy::kShedOldest;
    options.shed_spill_capacity = 16;
    options.fault_injector = &faults;

    CollectingSink sink;
    auto engine = CreateEngine(kind, q, options, &sink);
    ASSERT_TRUE(engine->Start().ok()) << label;
    const EngineStats stats = Drive(engine.get(), events, q.lateness_us, 64);

    EXPECT_TRUE(stats.health.ok()) << label << stats.health.ToString();
    EXPECT_GT(stats.overload_shed, 0u) << label;
    EXPECT_GE(stats.overload_dropped, stats.overload_shed) << label;
    ExpectSubsetOfReference(sink.TakeResults(), reference, label);
  }
}

TEST(FaultInjectionTest, BlockPolicyStaysExactUnderSlowJoiner) {
  WorkloadSpec w = BaseWorkload(623);
  w.total_tuples = 5'000;
  const auto events = Generate(w);
  const QuerySpec q = BaseQuery();
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    const std::string label =
        std::string("block/") + std::string(EngineKindName(kind));
    FaultInjector faults;
    faults.slow_joiner = 0;
    faults.slow_delay_us = 20;

    EngineOptions options;
    options.num_joiners = 2;
    options.queue_capacity = 8;
    options.overload_policy = OverloadPolicy::kBlock;
    options.fault_injector = &faults;

    CollectingSink sink;
    auto engine = CreateEngine(kind, q, options, &sink);
    ASSERT_TRUE(engine->Start().ok()) << label;
    const EngineStats stats = Drive(engine.get(), events, q.lateness_us, 64);

    EXPECT_TRUE(stats.health.ok()) << label << stats.health.ToString();
    EXPECT_EQ(stats.overload_dropped, 0u) << label;

    std::vector<ReferenceResult> got;
    for (const JoinResult& r : sink.TakeResults()) {
      got.push_back({r.base, r.aggregate, r.match_count});
    }
    SortResults(&got);
    ASSERT_EQ(got.size(), expected.size()) << label;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].match_count, expected[i].match_count)
          << label << " result " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Watermark freeze.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, WatermarkFreezeWarns) {
  const auto events = Generate(BaseWorkload(631));
  FaultInjector faults;
  faults.freeze_watermarks_after = 2;

  EngineOptions options;
  options.num_joiners = 2;
  options.fault_injector = &faults;
  options.watchdog.interval_ms = 10;
  options.watchdog.watermark_freeze_intervals = 3;

  CountingSink sink;
  auto engine =
      CreateEngine(EngineKind::kKeyOij, BaseQuery(), options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(BaseQuery().lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    engine->Push(ev, MonotonicNowUs());
    tracker.Observe(ev.tuple.ts);
    if (++n % 64 == 0) engine->SignalWatermark(tracker.watermark());
    // Slow the feed enough for the watchdog to take several samples while
    // input advances and punctuation stays frozen.
    if (n % 500 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const EngineStats stats = engine->Finish();

  EXPECT_TRUE(stats.health.ok()) << stats.health.ToString();
  bool freeze_warned = false;
  for (const std::string& warning : stats.warnings) {
    if (warning.find("watermark frozen") != std::string::npos) {
      freeze_warned = true;
    }
  }
  EXPECT_TRUE(freeze_warned);
}

TEST(FaultInjectionTest, WatermarkFreezeAbortsWhenConfigured) {
  const auto events = Generate(BaseWorkload(632));
  FaultInjector faults;
  faults.freeze_watermarks_after = 2;

  EngineOptions options;
  options.num_joiners = 2;
  options.fault_injector = &faults;
  options.watchdog.interval_ms = 10;
  options.watchdog.watermark_freeze_intervals = 3;
  options.watchdog.abort_on_watermark_freeze = true;

  CountingSink sink;
  auto engine =
      CreateEngine(EngineKind::kKeyOij, BaseQuery(), options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(BaseQuery().lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    engine->Push(ev, MonotonicNowUs());
    tracker.Observe(ev.tuple.ts);
    if (++n % 64 == 0) engine->SignalWatermark(tracker.watermark());
    if (n % 500 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const EngineStats stats = engine->Finish();
  EXPECT_EQ(stats.health.code(), Status::Code::kDeadlineExceeded)
      << stats.health.ToString();
}

}  // namespace
}  // namespace oij
