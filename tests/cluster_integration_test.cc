// Cluster-tier crash integration tests: a real oij_router binary in
// front of two real oij_server binaries (located via OIJ_ROUTER_BIN /
// OIJ_SERVER_BIN, set by CMake), with one backend SIGKILLed mid-run.
// The headline property is the ISSUE's acceptance bar:
//
//   * backends on --fsync per_batch --recover-to-watermark: kill -9 one
//     backend mid-run, keep sending through the router (its keys stick
//     and queue), restart it over the same --wal-dir, finish — the
//     union of everything the single client received must equal the
//     policy-aware reference oracle EXACTLY, and the router must never
//     go down (its /healthz stays 200 and the client connection
//     survives the whole ordeal);
//   * non-durable backends: the dead backend's keys fail over to the
//     survivor and the result stream stays within the documented loss
//     bound — a subset of the oracle, never a fabricated result.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "join/reference_join.h"
#include "join/watermark.h"
#include "net/socket.h"
#include "net/wire_codec.h"
#include "stream/generator.h"
#include "stream/presets.h"

namespace oij {
namespace {

const char* ServerBinary() { return std::getenv("OIJ_SERVER_BIN"); }
const char* RouterBinary() { return std::getenv("OIJ_ROUTER_BIN"); }
const char* LoadgenBinary() { return std::getenv("OIJ_LOADGEN_BIN"); }

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 30000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Scratch WAL directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/oij_cluster_test_XXXXXX";
    char* d = mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    if (d != nullptr) path_ = d;
  }
  ~TempDir() {
    if (!path_.empty()) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      if (std::system(cmd.c_str()) != 0) {
        std::fprintf(stderr, "warning: failed to remove %s\n", path_.c_str());
      }
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A forked oij_server or oij_router. Both print the same
/// "data port:"/"admin port:" banner, parsed to learn ephemeral ports.
class Proc {
 public:
  ~Proc() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      WaitExit();
    }
    if (drain_.joinable()) drain_.join();
    if (out_fd_ >= 0) close(out_fd_);
  }

  bool Spawn(const char* bin, const std::vector<std::string>& extra_args) {
    if (bin == nullptr) return false;
    int fds[2];
    if (pipe(fds) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) {
      close(fds[0]);
      close(fds[1]);
      return false;
    }
    if (pid_ == 0) {
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      std::vector<std::string> args;
      args.push_back(bin);
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(bin, argv.data());
      _exit(127);
    }
    close(fds[1]);
    out_fd_ = fds[0];
    if (!ParsePorts()) return false;
    drain_ = std::thread([this] {
      char buf[4096];
      while (read(out_fd_, buf, sizeof(buf)) > 0) {
      }
    });
    return true;
  }

  void Kill(int sig) {
    ASSERT_GT(pid_, 0);
    ASSERT_EQ(kill(pid_, sig), 0) << strerror(errno);
  }

  int WaitExit() {
    if (pid_ <= 0) return -1;
    int status = -1;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  uint16_t data_port() const { return data_port_; }
  uint16_t admin_port() const { return admin_port_; }

 private:
  bool ParsePorts() {
    std::string text;
    char buf[512];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = read(out_fd_, buf, sizeof(buf));
      if (n <= 0) return false;
      text.append(buf, static_cast<size_t>(n));
      unsigned dp = 0, ap = 0;
      const char* d = std::strstr(text.c_str(), "data port:");
      const char* a = std::strstr(text.c_str(), "admin port:");
      if (d != nullptr && a != nullptr &&
          std::sscanf(d, "data port: %u", &dp) == 1 &&
          std::sscanf(a, "admin port: %u", &ap) == 1) {
        data_port_ = static_cast<uint16_t>(dp);
        admin_port_ = static_cast<uint16_t>(ap);
        return true;
      }
    }
    return false;
  }

  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::thread drain_;
  uint16_t data_port_ = 0;
  uint16_t admin_port_ = 0;
};

/// A forked oij_loadgen whose stdout is captured in full; unlike Proc
/// it prints no port banner, so the pipe is drained only at exit.
struct LoadgenRun {
  pid_t pid = -1;
  int out_fd = -1;
};

bool StartLoadgen(const std::vector<std::string>& extra_args,
                  LoadgenRun* run) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<std::string> args;
    args.push_back(LoadgenBinary());
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(LoadgenBinary(), argv.data());
    _exit(127);
  }
  close(fds[1]);
  run->pid = pid;
  run->out_fd = fds[0];
  return true;
}

/// Drains stdout to EOF, reaps the child, returns its wait status.
int FinishLoadgen(LoadgenRun* run, std::string* output) {
  char buf[4096];
  ssize_t n;
  while ((n = read(run->out_fd, buf, sizeof(buf))) > 0) {
    output->append(buf, static_cast<size_t>(n));
  }
  close(run->out_fd);
  run->out_fd = -1;
  int status = -1;
  waitpid(run->pid, &status, 0);
  run->pid = -1;
  return status;
}

/// Pulls `field=<n>` out of the report line starting with `line_prefix`.
bool ReportNumber(const std::string& text, const std::string& line_prefix,
                  const std::string& field, uint64_t* out) {
  const size_t line = text.find(line_prefix);
  if (line == std::string::npos) return false;
  const size_t eol = text.find('\n', line);
  const std::string hay = text.substr(
      line, eol == std::string::npos ? std::string::npos : eol - line);
  const std::string needle = field + "=";
  const size_t pos = hay.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoull(hay.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

/// Data-plane client with an observable received-result count; the one
/// client in these tests lives across the backend kill, because "zero
/// router downtime" means exactly that its connection never drops.
class LiveClient {
 public:
  explicit LiveClient(uint16_t port) {
    const Status s = ConnectTcp("127.0.0.1", port, &fd_);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (fd_ >= 0) reader_ = std::thread(&LiveClient::ReadLoop, this);
  }

  ~LiveClient() {
    if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
    JoinReader();
    CloseFd(fd_);
  }

  bool Send(const std::string& bytes) {
    return SendAll(fd_, bytes.data(), bytes.size()).ok();
  }

  void JoinReader() {
    if (reader_.joinable()) reader_.join();
  }

  size_t ResultCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return results_.size();
  }

  /// The reader exits when the peer closes; still false after kFinish
  /// means the router kept the connection alive.
  bool ReaderExited() const { return reader_exited_.load(); }

  /// Valid only after JoinReader().
  const std::vector<JoinResult>& results() const { return results_; }
  const std::vector<Timestamp>& watermarks() const { return watermarks_; }
  const std::string& summary() const { return summary_; }
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  void ReadLoop() {
    WireDecoder decoder;
    char buf[16384];
    WireFrame frame;
    while (true) {
      const int64_t n = RecvSome(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      decoder.Feed(buf, static_cast<size_t>(n));
      while (true) {
        const WireDecoder::Result r = decoder.Next(&frame);
        if (r == WireDecoder::Result::kNeedMore) break;
        if (r == WireDecoder::Result::kCorrupt) {
          reader_exited_.store(true);
          return;
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (frame.type == FrameType::kResult) {
          results_.push_back(frame.result);
        } else if (frame.type == FrameType::kWatermark) {
          watermarks_.push_back(frame.watermark);
        } else if (frame.type == FrameType::kSummary) {
          summary_ = frame.text;
        } else if (frame.type == FrameType::kError) {
          errors_.push_back(frame.text);
        }
      }
    }
    reader_exited_.store(true);
  }

  int fd_ = -1;
  std::thread reader_;
  std::atomic<bool> reader_exited_{false};
  mutable std::mutex mu_;
  std::vector<JoinResult> results_;
  std::vector<Timestamp> watermarks_;
  std::string summary_;
  std::vector<std::string> errors_;
};

/// One blocking HTTP/1.0 GET; tolerates connection failure (code 0).
std::string HttpGet(uint16_t port, const std::string& path, int* code) {
  *code = 0;
  int fd = -1;
  if (!ConnectTcp("127.0.0.1", port, &fd).ok()) return "";
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size()).ok()) {
    CloseFd(fd);
    return "";
  }
  std::string response;
  char buf[8192];
  int64_t n;
  while ((n = RecvSome(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  CloseFd(fd);
  const size_t sp = response.find(' ');
  if (sp != std::string::npos) *code = std::atoi(response.c_str() + sp + 1);
  const size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

bool StatzNumber(const std::string& body, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = body.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(body.c_str() + pos + needle.size(), nullptr);
  return true;
}

double StatzNumberOr(uint16_t admin_port, const std::string& key,
                     double fallback) {
  int code = 0;
  const std::string body = HttpGet(admin_port, "/statz", &code);
  double v = fallback;
  if (code != 200 || !StatzNumber(body, key, &v)) return fallback;
  return v;
}

size_t CountOccurrences(const std::string& body, const std::string& needle) {
  size_t count = 0, pos = 0;
  while ((pos = body.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

/// Both backends active AND readmitted by the health checker — finish
/// only broadcasts to eligible backends, so the tests wait for this
/// before sending kFinish.
bool AllBackendsEligible(uint16_t router_admin, size_t n) {
  int code = 0;
  const std::string body = HttpGet(router_admin, "/statz", &code);
  return code == 200 &&
         CountOccurrences(body, "\"state\":\"active\"") == n &&
         CountOccurrences(body, "\"healthy\":true") == n;
}

bool SendRange(LiveClient* client, const std::vector<StreamEvent>& events,
               size_t begin, size_t end, WatermarkTracker* tracker,
               uint64_t wm_every, std::string* batch) {
  for (size_t i = begin; i < end; ++i) {
    tracker->Observe(events[i].tuple.ts);
    AppendTupleFrame(batch, events[i]);
    if ((i + 1) % wm_every == 0) {
      AppendWatermarkFrame(batch, tracker->watermark());
    }
    if (batch->size() >= 32 * 1024) {
      if (!client->Send(*batch)) return false;
      batch->clear();
    }
  }
  if (!batch->empty()) {
    if (!client->Send(*batch)) return false;
    batch->clear();
  }
  return true;
}

using BaseKey = std::tuple<Timestamp, Key, double>;

BaseKey KeyOf(const Tuple& base) {
  return BaseKey(base.ts, base.key, base.payload);
}

struct Observed {
  uint64_t match_count = 0;
  double aggregate = 0.0;
};

/// Union-dedupes the client's result stream. A recovered backend
/// re-emits already-finalized bases (at-least-once delivery); in the
/// exact regime the re-emission must agree byte-for-byte.
void Accumulate(const std::vector<JoinResult>& results, bool dups_must_agree,
                std::map<BaseKey, Observed>* acc) {
  for (const JoinResult& r : results) {
    const BaseKey k = KeyOf(r.base);
    auto it = acc->find(k);
    if (it == acc->end()) {
      (*acc)[k] = Observed{r.match_count, r.aggregate};
    } else if (dups_must_agree) {
      EXPECT_EQ(it->second.match_count, r.match_count)
          << "re-emitted base ts=" << r.base.ts << " key=" << r.base.key
          << " changed its match count across the crash";
      EXPECT_NEAR(it->second.aggregate, r.aggregate, 1e-6);
    } else if (r.match_count > it->second.match_count) {
      it->second = Observed{r.match_count, r.aggregate};
    }
  }
}

std::map<BaseKey, Observed> OracleIndex(
    const std::vector<ReferenceResult>& expected) {
  std::map<BaseKey, Observed> idx;
  for (const ReferenceResult& r : expected) {
    idx[KeyOf(r.base)] = Observed{r.match_count, r.aggregate};
  }
  return idx;
}

struct ClusterWorkload {
  WorkloadSpec workload;
  QuerySpec query;
  std::vector<StreamEvent> events;
  std::vector<ReferenceResult> expected;
  size_t crash_at = 0;
};

ClusterWorkload BuildWorkload(uint64_t tuples, uint64_t wm_every,
                              bool crash_on_boundary) {
  ClusterWorkload out;
  EXPECT_TRUE(FindPreset("default", &out.workload));
  out.workload.total_tuples = tuples;
  out.query.window = out.workload.window;
  out.query.lateness_us = out.workload.lateness_us;
  out.query.emit_mode = EmitMode::kWatermark;
  out.events = Generate(out.workload);
  out.expected = ReferenceJoinWithPolicy(out.events, out.query, wm_every);
  out.crash_at = out.events.size() / 2;
  if (crash_on_boundary) {
    out.crash_at = (out.crash_at / wm_every) * wm_every;
  } else {
    out.crash_at += 17;
  }
  return out;
}

std::string BackendsFlag(const Proc& a, const Proc& b) {
  return "127.0.0.1:" + std::to_string(a.data_port()) + ":" +
         std::to_string(a.admin_port()) + ",127.0.0.1:" +
         std::to_string(b.data_port()) + ":" +
         std::to_string(b.admin_port());
}

// ------------------------------------------ per_batch: crash-exact

/// The acceptance-bar test: two durable-exact backends behind the
/// router, one SIGKILLed on a watermark boundary mid-run, traffic
/// continuing through the outage (the dead backend's keys queue in its
/// replay buffer; the cluster watermark stalls at its last ack), the
/// backend restarted over the same WAL directory, the run finished.
/// One client, one connection, the whole time. The union of everything
/// it received must equal the reference oracle exactly.
TEST(ClusterIntegrationTest, PerBatchBackendKillNineThroughRouterIsExact) {
  if (ServerBinary() == nullptr || RouterBinary() == nullptr) {
    GTEST_SKIP() << "OIJ_SERVER_BIN / OIJ_ROUTER_BIN not set";
  }
  constexpr uint64_t kWmEvery = 64;
  const ClusterWorkload w =
      BuildWorkload(6'000, kWmEvery, /*crash_on_boundary=*/true);
  TempDir dir_a;
  TempDir dir_b;

  const auto backend_args = [](const std::string& wal_dir) {
    return std::vector<std::string>{
        "--workload", "default",   "--engine",         "scale-oij",
        "--joiners",  "2",         "--wal-dir",        wal_dir,
        "--fsync",    "per_batch", "--snapshot-every", "2048",
        "--recover-to-watermark"};
  };

  Proc backend_a;
  Proc backend_b;
  ASSERT_TRUE(backend_a.Spawn(ServerBinary(), backend_args(dir_a.path())));
  ASSERT_TRUE(backend_b.Spawn(ServerBinary(), backend_args(dir_b.path())));

  Proc router;
  ASSERT_TRUE(router.Spawn(
      RouterBinary(),
      {"--backends", BackendsFlag(backend_a, backend_b),
       "--backoff-base-ms", "20", "--backoff-max-ms", "200",
       "--health-interval-ms", "100", "--healthy-threshold", "2"}))
      << "oij_router failed to start";
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "backend_connects", 0) >= 2;
  })) << "backends never activated";

  std::map<BaseKey, Observed> got;
  LiveClient client(router.data_port());
  std::string batch;
  AppendControlFrame(&batch, FrameType::kSubscribe);
  WatermarkTracker tracker(w.query.lateness_us);
  ASSERT_TRUE(SendRange(&client, w.events, 0, w.crash_at, &tracker, kWmEvery,
                        &batch));

  // Quiesce before the kill: every sent tuple routed, every broadcast
  // watermark acked by both backends (per_batch syncs the WAL before
  // acking, so everything the router has trimmed is durable), both
  // backends' WALs fully synced, and every fanned result delivered.
  const auto quiesced = [&] {
    int code = 0;
    const std::string body = HttpGet(router.admin_port(), "/statz", &code);
    double tuples_in = -1, fanned = -1, cluster_wm = -1, min_acked = -2;
    if (code != 200 || !StatzNumber(body, "tuples_in", &tuples_in) ||
        !StatzNumber(body, "results_fanned", &fanned) ||
        !StatzNumber(body, "cluster_watermark", &cluster_wm) ||
        !StatzNumber(body, "min_backend_acked", &min_acked)) {
      return false;
    }
    for (const Proc* backend : {&backend_a, &backend_b}) {
      const double appended =
          StatzNumberOr(backend->admin_port(), "appended_records", -1);
      const double synced =
          StatzNumberOr(backend->admin_port(), "synced_records", -2);
      if (appended <= 0 || appended != synced) return false;
    }
    return tuples_in == static_cast<double>(w.crash_at) &&
           cluster_wm == min_acked &&
           static_cast<double>(client.ResultCount()) == fanned;
  };
  ASSERT_TRUE(WaitUntil([&] {
    if (!quiesced()) return false;
    const size_t before = client.ResultCount();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return quiesced() && client.ResultCount() == before;
  })) << "cluster never quiesced before the kill";

  const double stall_wm =
      StatzNumberOr(router.admin_port(), "cluster_watermark", -1);
  const uint16_t a_data_port = backend_a.data_port();
  const uint16_t a_admin_port = backend_a.admin_port();

  // kill -9 one backend; the router must stay up and the client's
  // connection must survive.
  backend_a.Kill(SIGKILL);
  backend_a.WaitExit();
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "backend_disconnects", 0) >= 1;
  }));

  // Keep sending through the outage: the dead backend's keys stick.
  ASSERT_TRUE(SendRange(&client, w.events, w.crash_at, w.events.size(),
                        &tracker, kWmEvery, &batch));
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "tuples_in", 0) ==
           static_cast<double>(w.events.size());
  }));
  {
    int code = 0;
    HttpGet(router.admin_port(), "/healthz", &code);
    EXPECT_EQ(code, 200) << "router went unhealthy during a backend outage";
    EXPECT_FALSE(client.ReaderExited()) << "client connection dropped";
    EXPECT_GT(StatzNumberOr(router.admin_port(), "tuples_queued_sticky", 0),
              0.0)
        << "dead durable backend's keys did not stick";
    EXPECT_EQ(StatzNumberOr(router.admin_port(), "tuples_failed_over", -1),
              0.0);
    EXPECT_EQ(StatzNumberOr(router.admin_port(), "tuples_dropped", -1), 0.0);
    // The cluster watermark stalls at the dead backend's last ack — it
    // must neither advance past it nor regress.
    EXPECT_EQ(StatzNumberOr(router.admin_port(), "cluster_watermark", -1),
              stall_wm);
  }

  // Restart the backend over the same WAL directory and the same ports
  // the router was configured with. Recovery truncates to the watermark
  // cut and advertises it; the router replays the un-acked suffix.
  auto restart_args = backend_args(dir_a.path());
  restart_args.push_back("--port");
  restart_args.push_back(std::to_string(a_data_port));
  restart_args.push_back("--admin-port");
  restart_args.push_back(std::to_string(a_admin_port));
  Proc backend_a2;
  ASSERT_TRUE(backend_a2.Spawn(ServerBinary(), restart_args))
      << "backend restart failed";
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "replayed_tuples", 0) > 0;
  })) << "router never replayed the queued suffix";
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "cluster_watermark", -1) >
           stall_wm;
  })) << "cluster watermark never advanced past the stall";
  EXPECT_EQ(StatzNumberOr(router.admin_port(), "replay_dropped_tuples", -1),
            0.0);

  // Finish only once the checker has readmitted both backends (finish
  // broadcasts to eligible backends only).
  ASSERT_TRUE(WaitUntil(
      [&] { return AllBackendsEligible(router.admin_port(), 2); }));
  AppendControlFrame(&batch, FrameType::kFinish);
  ASSERT_TRUE(client.Send(batch));
  client.JoinReader();
  ASSERT_TRUE(client.errors().empty())
      << "router error: " << client.errors().front();
  ASSERT_FALSE(client.summary().empty()) << "no cluster summary";
  EXPECT_NE(client.summary().find("cluster run: 2 backend(s)"),
            std::string::npos)
      << client.summary();
  EXPECT_EQ(client.summary().find("unreachable"), std::string::npos)
      << client.summary();

  // The punctuation the client saw must be strictly increasing across
  // the whole eject/replay/readmit cycle.
  for (size_t i = 1; i < client.watermarks().size(); ++i) {
    EXPECT_GT(client.watermarks()[i], client.watermarks()[i - 1])
        << "cluster watermark regressed at punctuation " << i;
  }

  // Exactness across the crash: same bases, same counts, same
  // aggregates as the uninterrupted single-node oracle.
  Accumulate(client.results(), /*dups_must_agree=*/true, &got);
  const auto oracle = OracleIndex(w.expected);
  ASSERT_GT(got.size(), 0u);
  ASSERT_EQ(got.size(), oracle.size())
      << "cluster run finalized a different set of bases";
  for (const auto& [key, want] : oracle) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end())
        << "oracle base ts=" << std::get<0>(key) << " key=" << std::get<1>(key)
        << " never emitted";
    EXPECT_EQ(it->second.match_count, want.match_count)
        << "base ts=" << std::get<0>(key) << " key=" << std::get<1>(key);
    EXPECT_NEAR(it->second.aggregate, want.aggregate, 1e-6);
  }
}

// ------------------------------------- non-durable: bounded failover

/// Without durable-exact backends the router fails a dead backend's
/// keys over to the ring survivor. Loss is allowed — the survivor never
/// saw the dead partition's earlier tuples — but the stream must stay
/// within the bound: every emitted base exists in the oracle with a
/// match count no larger than the oracle's, and nothing is fabricated.
TEST(ClusterIntegrationTest, NonDurableBackendLossFailsOverWithinBound) {
  if (ServerBinary() == nullptr || RouterBinary() == nullptr) {
    GTEST_SKIP() << "OIJ_SERVER_BIN / OIJ_ROUTER_BIN not set";
  }
  constexpr uint64_t kWmEvery = 64;
  const ClusterWorkload w =
      BuildWorkload(4'000, kWmEvery, /*crash_on_boundary=*/false);

  const std::vector<std::string> backend_args = {
      "--workload", "default", "--engine", "scale-oij", "--joiners", "2"};
  Proc backend_a;
  Proc backend_b;
  ASSERT_TRUE(backend_a.Spawn(ServerBinary(), backend_args));
  ASSERT_TRUE(backend_b.Spawn(ServerBinary(), backend_args));

  Proc router;
  ASSERT_TRUE(router.Spawn(
      RouterBinary(),
      {"--backends", BackendsFlag(backend_a, backend_b),
       "--backoff-base-ms", "20", "--backoff-max-ms", "200",
       "--health-interval-ms", "100", "--finish-timeout-ms", "2000"}));
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "backend_connects", 0) >= 2;
  }));

  LiveClient client(router.data_port());
  std::string batch;
  AppendControlFrame(&batch, FrameType::kSubscribe);
  WatermarkTracker tracker(w.query.lateness_us);
  ASSERT_TRUE(SendRange(&client, w.events, 0, w.crash_at, &tracker, kWmEvery,
                        &batch));
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "tuples_in", 0) ==
           static_cast<double>(w.crash_at);
  }));

  backend_a.Kill(SIGKILL);
  backend_a.WaitExit();
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "backend_disconnects", 0) >= 1;
  }));

  ASSERT_TRUE(SendRange(&client, w.events, w.crash_at, w.events.size(),
                        &tracker, kWmEvery, &batch));
  ASSERT_TRUE(WaitUntil([&] {
    return StatzNumberOr(router.admin_port(), "tuples_in", 0) ==
           static_cast<double>(w.events.size());
  }));
  {
    int code = 0;
    HttpGet(router.admin_port(), "/healthz", &code);
    EXPECT_EQ(code, 200) << "one survivor should keep the router healthy";
    EXPECT_FALSE(client.ReaderExited()) << "client connection dropped";
    EXPECT_GT(StatzNumberOr(router.admin_port(), "tuples_failed_over", 0),
              0.0)
        << "dead non-durable backend's keys did not fail over";
    EXPECT_EQ(StatzNumberOr(router.admin_port(), "tuples_dropped", -1), 0.0);
  }

  // Finish with the dead backend still gone: the barrier times out and
  // the summary marks it unreachable.
  AppendControlFrame(&batch, FrameType::kFinish);
  ASSERT_TRUE(client.Send(batch));
  client.JoinReader();
  ASSERT_TRUE(client.errors().empty())
      << "router error: " << client.errors().front();
  ASSERT_FALSE(client.summary().empty());
  EXPECT_NE(client.summary().find("unreachable"), std::string::npos)
      << client.summary();

  // Bounded loss: a (deduped) subset of the oracle, never a fabricated
  // base, never an inflated match count — and not the empty stream.
  std::map<BaseKey, Observed> got;
  Accumulate(client.results(), /*dups_must_agree=*/false, &got);
  const auto oracle = OracleIndex(w.expected);
  EXPECT_GT(got.size(), 0u) << "failover produced no results at all";
  EXPECT_LE(got.size(), oracle.size());
  for (const auto& [key, seen] : got) {
    const auto it = oracle.find(key);
    ASSERT_NE(it, oracle.end())
        << "fabricated result: base ts=" << std::get<0>(key)
        << " key=" << std::get<1>(key) << " is not in the oracle";
    EXPECT_LE(seen.match_count, it->second.match_count)
        << "base ts=" << std::get<0>(key) << " key=" << std::get<1>(key)
        << " overcounted after failover";
  }
}

// --------------------------------- loadgen reconnect accounting

/// Regression for the --targets reconnect double-count: a batch whose
/// send fails midway used to fold into `lost` even though the kernel
/// may have delivered a prefix the server then processed — reconciling
/// the merged client report against server receipts counted those
/// tuples twice. Now every target partitions its share exactly into
/// sent + lost + in_doubt, the merged report prints the identity, and
/// the never-killed target reconciles against its server's tuples_in
/// to the tuple.
TEST(ClusterIntegrationTest, LoadgenMultiTargetReconnectAccountingIsExact) {
  if (ServerBinary() == nullptr || LoadgenBinary() == nullptr) {
    GTEST_SKIP() << "OIJ_SERVER_BIN / OIJ_LOADGEN_BIN not set";
  }
  const std::vector<std::string> backend_args = {
      "--workload", "default", "--engine", "scale-oij", "--joiners", "2"};
  Proc backend_a;
  Proc backend_b;
  ASSERT_TRUE(backend_a.Spawn(ServerBinary(), backend_args));
  ASSERT_TRUE(backend_b.Spawn(ServerBinary(), backend_args));
  const uint16_t a_data_port = backend_a.data_port();
  const uint16_t b_data_port = backend_b.data_port();
  const uint16_t b_admin_port = backend_b.admin_port();

  // ~6 s paced run: each slot drives 18k tuples at 3k/s, one 256-tuple
  // batch every ~85 ms, so a 500 ms outage fails several batches.
  constexpr uint64_t kTuples = 36'000;
  const std::string targets = "127.0.0.1:" + std::to_string(a_data_port) +
                              ",127.0.0.1:" + std::to_string(b_data_port);
  LoadgenRun loadgen;
  ASSERT_TRUE(StartLoadgen({"--targets", targets, "--tuples", "36000",
                            "--rate", "6000", "--wm-every", "256"},
                           &loadgen));

  // kill -9 one target mid-run, hold it down long enough that slot-b
  // sends fail, then restart it on the same ports so the reconnect and
  // the finish handshake both succeed.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  backend_b.Kill(SIGKILL);
  backend_b.WaitExit();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  auto restart_args = backend_args;
  restart_args.push_back("--port");
  restart_args.push_back(std::to_string(b_data_port));
  restart_args.push_back("--admin-port");
  restart_args.push_back(std::to_string(b_admin_port));
  Proc backend_b2;
  ASSERT_TRUE(backend_b2.Spawn(ServerBinary(), restart_args))
      << "backend restart failed";

  std::string out;
  const int status = FinishLoadgen(&loadgen, &out);
  ASSERT_TRUE(WIFEXITED(status)) << out;
  EXPECT_EQ(WEXITSTATUS(status), 0) << out;

  // Merged totals partition the workload exactly: no tuple double-
  // counted, none unaccounted, across the reconnect.
  uint64_t generated = 0, sent = 0, lost = 0, in_doubt = 0;
  ASSERT_TRUE(ReportNumber(out, "totals:", "generated", &generated)) << out;
  ASSERT_TRUE(ReportNumber(out, "totals:", "sent", &sent)) << out;
  ASSERT_TRUE(ReportNumber(out, "totals:", "lost", &lost)) << out;
  ASSERT_TRUE(ReportNumber(out, "totals:", "in_doubt", &in_doubt)) << out;
  EXPECT_EQ(generated, kTuples) << out;
  EXPECT_EQ(generated, sent + lost + in_doubt) << out;

  // The never-killed target took a clean stream: nothing lost, nothing
  // in doubt, and its server received exactly what the client counted
  // as sent (the pre-fix code could not make this reconciliation).
  const std::string a_prefix =
      "target 127.0.0.1:" + std::to_string(a_data_port) + ":";
  uint64_t a_generated = 0, a_sent = 0, a_lost = 0, a_in_doubt = 0;
  ASSERT_TRUE(ReportNumber(out, a_prefix, "generated", &a_generated)) << out;
  ASSERT_TRUE(ReportNumber(out, a_prefix, "sent", &a_sent)) << out;
  ASSERT_TRUE(ReportNumber(out, a_prefix, "lost", &a_lost)) << out;
  ASSERT_TRUE(ReportNumber(out, a_prefix, "in_doubt", &a_in_doubt)) << out;
  EXPECT_EQ(a_lost, 0u) << out;
  EXPECT_EQ(a_in_doubt, 0u) << out;
  EXPECT_EQ(a_sent, a_generated) << out;
  EXPECT_EQ(StatzNumberOr(backend_a.admin_port(), "tuples_in", -1),
            static_cast<double>(a_sent))
      << "server receipts disagree with the client's sent count";

  // The killed target actually exercised the reconnect path and still
  // balances its own share.
  const std::string b_prefix =
      "target 127.0.0.1:" + std::to_string(b_data_port) + ":";
  uint64_t b_generated = 0, b_sent = 0, b_lost = 0, b_in_doubt = 0;
  uint64_t b_reconnects = 0;
  ASSERT_TRUE(ReportNumber(out, b_prefix, "generated", &b_generated)) << out;
  ASSERT_TRUE(ReportNumber(out, b_prefix, "sent", &b_sent)) << out;
  ASSERT_TRUE(ReportNumber(out, b_prefix, "lost", &b_lost)) << out;
  ASSERT_TRUE(ReportNumber(out, b_prefix, "in_doubt", &b_in_doubt)) << out;
  ASSERT_TRUE(ReportNumber(out, b_prefix, "reconnects", &b_reconnects))
      << out;
  EXPECT_GT(b_lost + b_in_doubt, 0u)
      << "the outage window never failed a batch: " << out;
  EXPECT_GE(b_reconnects, 1u) << out;
  EXPECT_EQ(b_generated, b_sent + b_lost + b_in_doubt) << out;
}

}  // namespace
}  // namespace oij
