#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <vector>

#include "agg/aggregate.h"
#include "common/random.h"
#include "window/incremental_window.h"
#include "window/two_stacks.h"

namespace oij {
namespace {

// ------------------------------------------------------------- AggState

TEST(AggregateTest, InvertibilityClassification) {
  EXPECT_TRUE(IsInvertible(AggKind::kSum));
  EXPECT_TRUE(IsInvertible(AggKind::kCount));
  EXPECT_TRUE(IsInvertible(AggKind::kAvg));
  EXPECT_FALSE(IsInvertible(AggKind::kMin));
  EXPECT_FALSE(IsInvertible(AggKind::kMax));
}

TEST(AggregateTest, NamesRoundTrip) {
  for (AggKind k : {AggKind::kSum, AggKind::kCount, AggKind::kAvg,
                    AggKind::kMin, AggKind::kMax}) {
    AggKind parsed;
    ASSERT_TRUE(AggKindFromName(AggKindName(k), &parsed).ok());
    EXPECT_EQ(parsed, k);
  }
  AggKind parsed;
  EXPECT_TRUE(AggKindFromName("SUM", &parsed).ok());
  EXPECT_EQ(parsed, AggKind::kSum);
  EXPECT_FALSE(AggKindFromName("median", &parsed).ok());
}

TEST(AggregateTest, AddComputesAllOperators) {
  AggState agg;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) agg.Add(v);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kSum), 14.0);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kCount), 5.0);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kAvg), 2.8);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kMin), 1.0);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kMax), 5.0);
}

TEST(AggregateTest, EmptyResults) {
  AggState agg;
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kSum), 0.0);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kCount), 0.0);
  EXPECT_TRUE(std::isnan(agg.Result(AggKind::kAvg)));
  EXPECT_TRUE(std::isnan(agg.Result(AggKind::kMin)));
  EXPECT_TRUE(std::isnan(agg.Result(AggKind::kMax)));
}

TEST(AggregateTest, SubtractInvertsAdd) {
  AggState agg;
  agg.Add(10.0);
  agg.Add(20.0);
  agg.Add(30.0);
  agg.Subtract(20.0);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kSum), 40.0);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kCount), 2.0);
  EXPECT_DOUBLE_EQ(agg.Result(AggKind::kAvg), 20.0);
}

TEST(AggregateTest, MergeCombinesPartials) {
  AggState a, b;
  a.Add(1.0);
  a.Add(5.0);
  b.Add(-2.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Result(AggKind::kSum), 4.0);
  EXPECT_DOUBLE_EQ(a.Result(AggKind::kCount), 3.0);
  EXPECT_DOUBLE_EQ(a.Result(AggKind::kMin), -2.0);
  EXPECT_DOUBLE_EQ(a.Result(AggKind::kMax), 5.0);
}

TEST(AggregateTest, MergeWithEmptyPartialIsIdentity) {
  AggState a, empty;
  a.Add(7.0);
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.Result(AggKind::kSum), 7.0);
  EXPECT_DOUBLE_EQ(a.Result(AggKind::kMin), 7.0);

  AggState b;
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.Result(AggKind::kMax), 7.0);
}

TEST(AggregateTest, ResetClears) {
  AggState a;
  a.Add(1.0);
  a.Reset();
  EXPECT_EQ(a.count, 0u);
  EXPECT_DOUBLE_EQ(a.sum, 0.0);
}

// -------------------------------------------- IncrementalWindowState

/// Test scanner over a sorted (ts -> payload) model store.
class ModelStore {
 public:
  void Add(Timestamp ts, double payload) { data_.emplace(ts, payload); }

  auto Scanner() {
    return [this](Timestamp lo, Timestamp hi, auto&& fn) {
      for (auto it = data_.lower_bound(lo);
           it != data_.end() && it->first <= hi; ++it) {
        fn(Tuple{it->first, 0, it->second});
      }
    };
  }

  AggState Recompute(Timestamp lo, Timestamp hi) const {
    AggState agg;
    for (auto it = data_.lower_bound(lo);
         it != data_.end() && it->first <= hi; ++it) {
      agg.Add(it->second);
    }
    return agg;
  }

 private:
  std::multimap<Timestamp, double> data_;
};

TEST(IncrementalWindowTest, FirstSlideRecomputes) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 10; ++ts) store.Add(ts, 1.0);
  IncrementalWindowState st;
  const auto stats = st.Slide(2, 5, AggKind::kSum, store.Scanner());
  EXPECT_TRUE(stats.recomputed);
  EXPECT_EQ(stats.visited, 4u);  // ts 2,3,4,5
  EXPECT_DOUBLE_EQ(st.agg().Result(AggKind::kSum), 4.0);
}

TEST(IncrementalWindowTest, OverlappingSlideVisitsOnlyDeltas) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 100; ++ts) {
    store.Add(ts, static_cast<double>(ts));
  }
  IncrementalWindowState st;
  st.Slide(0, 49, AggKind::kSum, store.Scanner());  // recompute: 50 visits

  const auto stats = st.Slide(10, 59, AggKind::kSum, store.Scanner());
  EXPECT_FALSE(stats.recomputed);
  EXPECT_EQ(stats.visited, 20u);  // subtract 0..9, add 50..59
  // sum(10..59)
  EXPECT_DOUBLE_EQ(st.agg().Result(AggKind::kSum), (10 + 59) * 50.0 / 2);
  EXPECT_EQ(st.agg().count, 50u);
}

TEST(IncrementalWindowTest, DisjointSlideFallsBackToRecompute) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 100; ++ts) store.Add(ts, 1.0);
  IncrementalWindowState st;
  st.Slide(0, 9, AggKind::kSum, store.Scanner());
  const auto stats = st.Slide(50, 59, AggKind::kSum, store.Scanner());
  EXPECT_TRUE(stats.recomputed);
  EXPECT_DOUBLE_EQ(st.agg().Result(AggKind::kSum), 10.0);
}

TEST(IncrementalWindowTest, AdjacentWindowsIncrement) {
  // new_start == prev_end + 1 still qualifies (empty subtract overlap).
  ModelStore store;
  for (Timestamp ts = 0; ts < 40; ++ts) store.Add(ts, 1.0);
  IncrementalWindowState st;
  st.Slide(0, 9, AggKind::kSum, store.Scanner());
  const auto stats = st.Slide(10, 19, AggKind::kSum, store.Scanner());
  EXPECT_FALSE(stats.recomputed);
  EXPECT_DOUBLE_EQ(st.agg().Result(AggKind::kSum), 10.0);
}

TEST(IncrementalWindowTest, RegressedWindowRecomputes) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 40; ++ts) store.Add(ts, 1.0);
  IncrementalWindowState st;
  st.Slide(10, 19, AggKind::kSum, store.Scanner());
  const auto stats = st.Slide(5, 14, AggKind::kSum, store.Scanner());
  EXPECT_TRUE(stats.recomputed);
  EXPECT_DOUBLE_EQ(st.agg().Result(AggKind::kSum), 10.0);
}

TEST(IncrementalWindowTest, NonInvertibleAlwaysRecomputes) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 40; ++ts) {
    store.Add(ts, static_cast<double>(ts % 7));
  }
  IncrementalWindowState st;
  st.Slide(0, 9, AggKind::kMax, store.Scanner());
  const auto stats = st.Slide(1, 10, AggKind::kMax, store.Scanner());
  EXPECT_TRUE(stats.recomputed);
  EXPECT_DOUBLE_EQ(st.agg().Result(AggKind::kMax),
                   store.Recompute(1, 10).Result(AggKind::kMax));
}

TEST(IncrementalWindowTest, InvalidateForcesRecompute) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 40; ++ts) store.Add(ts, 1.0);
  IncrementalWindowState st;
  st.Slide(0, 9, AggKind::kSum, store.Scanner());
  st.Invalidate();
  const auto stats = st.Slide(1, 10, AggKind::kSum, store.Scanner());
  EXPECT_TRUE(stats.recomputed);
}

TEST(IncrementalWindowTest, ZeroWidthDeltasOnRepeatedWindow) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 40; ++ts) store.Add(ts, 2.0);
  IncrementalWindowState st;
  st.Slide(5, 15, AggKind::kSum, store.Scanner());
  const auto stats = st.Slide(5, 15, AggKind::kSum, store.Scanner());
  EXPECT_FALSE(stats.recomputed);
  EXPECT_EQ(stats.visited, 0u);
  EXPECT_DOUBLE_EQ(st.agg().Result(AggKind::kSum), 22.0);
}

/// Property: a random monotone sequence of slides always equals a fresh
/// recomputation, for every invertible operator.
class IncrementalSlidePropertyTest
    : public ::testing::TestWithParam<AggKind> {};

TEST_P(IncrementalSlidePropertyTest, MatchesRecomputeOnRandomSlides) {
  const AggKind kind = GetParam();
  Rng rng(777 + static_cast<uint64_t>(kind));
  ModelStore store;
  for (int i = 0; i < 3000; ++i) {
    store.Add(static_cast<Timestamp>(rng.NextBelow(5000)),
              rng.NextDouble() * 10 - 5);
  }
  IncrementalWindowState st;
  Timestamp start = 0;
  const Timestamp width = 500;
  for (int step = 0; step < 200; ++step) {
    start += static_cast<Timestamp>(rng.NextBelow(80));  // may exceed width
    const Timestamp end = start + width;
    st.Slide(start, end, kind, store.Scanner());
    const AggState expect = store.Recompute(start, end);
    EXPECT_EQ(st.agg().count, expect.count) << "step " << step;
    EXPECT_NEAR(st.agg().sum, expect.sum, 1e-6) << "step " << step;
    if (!IsInvertible(kind) && expect.count > 0) {
      EXPECT_DOUBLE_EQ(st.agg().Result(kind), expect.Result(kind));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOperators, IncrementalSlidePropertyTest,
                         ::testing::Values(AggKind::kSum, AggKind::kCount,
                                           AggKind::kAvg, AggKind::kMin,
                                           AggKind::kMax),
                         [](const auto& info) {
                           return std::string(AggKindName(info.param));
                         });

// ------------------------------------------------------ TwoStacksWindow

TEST(TwoStacksTest, EmptyWindowIdentity) {
  TwoStacksWindow max_w(AggKind::kMax);
  EXPECT_TRUE(max_w.empty());
  EXPECT_EQ(max_w.Query(), -std::numeric_limits<double>::infinity());
  TwoStacksWindow min_w(AggKind::kMin);
  EXPECT_EQ(min_w.Query(), std::numeric_limits<double>::infinity());
}

TEST(TwoStacksTest, AppendAndQueryMax) {
  TwoStacksWindow w(AggKind::kMax);
  w.Append(1, 3.0);
  w.Append(2, 7.0);
  w.Append(3, 5.0);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.Query(), 7.0);
  EXPECT_EQ(w.FrontTs(), 1);
}

TEST(TwoStacksTest, EvictionDropsOldMaximum) {
  TwoStacksWindow w(AggKind::kMax);
  w.Append(1, 9.0);
  w.Append(2, 4.0);
  w.Append(3, 6.0);
  EXPECT_DOUBLE_EQ(w.Query(), 9.0);
  EXPECT_EQ(w.EvictBefore(2), 1u);  // the 9.0 leaves the window
  EXPECT_DOUBLE_EQ(w.Query(), 6.0);
  EXPECT_EQ(w.EvictBefore(4), 2u);
  EXPECT_TRUE(w.empty());
}

TEST(TwoStacksTest, EvictBeforeIsIdempotent) {
  TwoStacksWindow w(AggKind::kMin);
  w.Append(5, 1.0);
  EXPECT_EQ(w.EvictBefore(5), 0u);
  EXPECT_EQ(w.EvictBefore(5), 0u);
  EXPECT_DOUBLE_EQ(w.Query(), 1.0);
}

TEST(TwoStacksTest, FlipPreservesOrderAcrossManyCycles) {
  TwoStacksWindow w(AggKind::kMax);
  // Repeated append/evict cycles force many flips.
  Timestamp ts = 0;
  std::deque<std::pair<Timestamp, double>> model;
  Rng rng(55);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const int appends = 1 + static_cast<int>(rng.NextBelow(8));
    for (int i = 0; i < appends; ++i) {
      const double v = rng.NextDouble() * 100;
      w.Append(ts, v);
      model.push_back({ts, v});
      ++ts;
    }
    const Timestamp bound = ts - static_cast<Timestamp>(rng.NextBelow(10));
    w.EvictBefore(bound);
    while (!model.empty() && model.front().first < bound) {
      model.pop_front();
    }
    ASSERT_EQ(w.size(), model.size()) << "cycle " << cycle;
    double expect = -std::numeric_limits<double>::infinity();
    for (const auto& [mts, mv] : model) expect = std::max(expect, mv);
    if (!model.empty()) {
      ASSERT_DOUBLE_EQ(w.Query(), expect) << "cycle " << cycle;
      ASSERT_EQ(w.FrontTs(), model.front().first);
    }
  }
}

TEST(TwoStacksTest, ClearResets) {
  TwoStacksWindow w(AggKind::kMax);
  w.Append(1, 2.0);
  w.Clear();
  EXPECT_TRUE(w.empty());
  w.Append(0, 5.0);  // earlier ts is fine after Clear
  EXPECT_DOUBLE_EQ(w.Query(), 5.0);
}

// ------------------------------------------- NonInvertibleWindowState

TEST(NonInvertibleWindowTest, MatchesRecomputeOnRandomSlides) {
  for (AggKind kind : {AggKind::kMin, AggKind::kMax}) {
    Rng rng(888 + static_cast<uint64_t>(kind));
    ModelStore store;
    for (int i = 0; i < 3000; ++i) {
      store.Add(static_cast<Timestamp>(rng.NextBelow(5000)),
                rng.NextDouble() * 10 - 5);
    }
    NonInvertibleWindowState st(kind);
    Timestamp start = 0;
    const Timestamp width = 400;
    for (int step = 0; step < 200; ++step) {
      start += static_cast<Timestamp>(rng.NextBelow(60));
      const Timestamp end = start + width;
      st.Slide(start, end, store.Scanner());
      const AggState expect = store.Recompute(start, end);
      ASSERT_EQ(st.count(), expect.count) << "step " << step;
      if (expect.count > 0) {
        ASSERT_DOUBLE_EQ(st.Result(), expect.Result(kind))
            << "step " << step;
      }
    }
  }
}

TEST(NonInvertibleWindowTest, OverlappingSlideVisitsOnlyDelta) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 100; ++ts) {
    store.Add(ts, static_cast<double>(ts % 13));
  }
  NonInvertibleWindowState st(AggKind::kMax);
  auto first = st.Slide(0, 49, store.Scanner());
  EXPECT_TRUE(first.recomputed);
  EXPECT_EQ(first.visited, 50u);
  auto second = st.Slide(10, 59, store.Scanner());
  EXPECT_FALSE(second.recomputed);
  EXPECT_EQ(second.visited, 10u);  // only the add range 50..59
  EXPECT_DOUBLE_EQ(st.Result(), 12.0);
  EXPECT_EQ(st.count(), 50u);
}

TEST(NonInvertibleWindowTest, DisjointSlideRebuilds) {
  ModelStore store;
  for (Timestamp ts = 0; ts < 100; ++ts) store.Add(ts, 1.0);
  NonInvertibleWindowState st(AggKind::kMin);
  st.Slide(0, 9, store.Scanner());
  auto stats = st.Slide(50, 59, store.Scanner());
  EXPECT_TRUE(stats.recomputed);
  EXPECT_EQ(st.count(), 10u);
}

TEST(NonInvertibleWindowTest, UnsortedTeamDeltasAreSortedBeforeAppend) {
  // Simulate team scans returning per-index sorted runs that interleave:
  // the scanner below yields two runs whose timestamps alternate.
  auto scanner = [](Timestamp lo, Timestamp hi, auto&& fn) {
    for (Timestamp ts = lo; ts <= hi; ++ts) {
      if (ts % 2 == 0) fn(Tuple{ts, 0, static_cast<double>(ts)});
    }
    for (Timestamp ts = lo; ts <= hi; ++ts) {
      if (ts % 2 == 1) fn(Tuple{ts, 0, static_cast<double>(ts)});
    }
  };
  NonInvertibleWindowState st(AggKind::kMax);
  st.Slide(0, 9, scanner);
  EXPECT_EQ(st.count(), 10u);
  EXPECT_DOUBLE_EQ(st.Result(), 9.0);
  // Evicting via the next slide must drop exactly ts 0..4.
  st.Slide(5, 14, scanner);
  EXPECT_EQ(st.count(), 10u);
  EXPECT_DOUBLE_EQ(st.Result(), 14.0);
}

}  // namespace
}  // namespace oij
