// WAL subsystem tests: record/manifest round trips, group commit and
// snapshot/truncate bookkeeping on a real directory, disk-fault
// injection (short writes, fsync failures), and — the hardening
// headline — a fuzz-style sweep over the CRC-checked reader: random
// truncations, bit flips and garbage must never crash it, never yield a
// corrupt record, and always recover exactly the valid prefix.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/hash.h"
#include "wal/wal.h"
#include "wal/wal_reader.h"

namespace oij {
namespace {

/// Self-cleaning temp directory for one test.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/oij_wal_test_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path_ = p;
  }

  ~TempDir() { RemoveAll(path_); }

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return path_ + "/" + name;
  }

  std::vector<std::string> List() const {
    std::vector<std::string> names;
    DIR* d = opendir(path_.c_str());
    if (d == nullptr) return names;
    while (struct dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    closedir(d);
    return names;
  }

 private:
  static void RemoveAll(const std::string& dir) {
    if (dir.empty()) return;
    DIR* d = opendir(dir.c_str());
    if (d != nullptr) {
      while (struct dirent* e = readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((dir + "/" + name).c_str());
      }
      closedir(d);
    }
    ::rmdir(dir.c_str());
  }

  std::string path_;
};

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

StreamEvent MakeEvent(uint64_t i) {
  StreamEvent ev;
  ev.stream = (i % 3 == 0) ? StreamId::kBase : StreamId::kProbe;
  ev.tuple.ts = static_cast<Timestamp>(1'000 + i * 7);
  ev.tuple.key = i % 5;
  ev.tuple.payload = static_cast<double>(i) * 0.5;
  return ev;
}

/// A file of `n` records (every 8th a watermark) plus the record
/// boundaries, for truncation/corruption sweeps.
std::string BuildLogBytes(uint64_t n, std::vector<size_t>* ends,
                          std::vector<WalReplayRecord>* truth) {
  std::string bytes;
  for (uint64_t i = 0; i < n; ++i) {
    WalReplayRecord rec;
    rec.lsn = i + 1;
    if (i % 8 == 7) {
      rec.is_watermark = true;
      rec.watermark = static_cast<Timestamp>(1'000 + i);
      AppendWalWatermarkRecord(&bytes, rec.lsn, rec.watermark);
    } else {
      rec.event = MakeEvent(i);
      AppendWalTupleRecord(&bytes, rec.lsn, rec.event);
    }
    if (ends != nullptr) ends->push_back(bytes.size());
    if (truth != nullptr) truth->push_back(rec);
  }
  return bytes;
}

void ExpectRecordEq(const WalReplayRecord& got, const WalReplayRecord& want,
                    const std::string& label) {
  ASSERT_EQ(got.lsn, want.lsn) << label;
  ASSERT_EQ(got.is_watermark, want.is_watermark) << label;
  if (want.is_watermark) {
    EXPECT_EQ(got.watermark, want.watermark) << label;
  } else {
    EXPECT_EQ(got.event.stream, want.event.stream) << label;
    EXPECT_EQ(got.event.tuple.ts, want.event.tuple.ts) << label;
    EXPECT_EQ(got.event.tuple.key, want.event.tuple.key) << label;
    EXPECT_EQ(got.event.tuple.payload, want.event.tuple.payload) << label;
  }
}

// ----------------------------------------------------------- round trips

TEST(WalFormatTest, FsyncPolicyNamesRoundTrip) {
  for (FsyncPolicy p :
       {FsyncPolicy::kNone, FsyncPolicy::kInterval, FsyncPolicy::kPerBatch}) {
    FsyncPolicy back;
    ASSERT_TRUE(FsyncPolicyFromName(FsyncPolicyName(p), &back).ok());
    EXPECT_EQ(back, p);
  }
  FsyncPolicy out;
  EXPECT_FALSE(FsyncPolicyFromName("bogus", &out).ok());
}

TEST(WalFormatTest, FileNamesRoundTrip) {
  uint64_t gen = 0, epoch = 0;
  uint32_t shard = 0, joiner = 0;
  ASSERT_TRUE(ParseWalSegmentName(WalSegmentName(42, 7), &gen, &shard));
  EXPECT_EQ(gen, 42u);
  EXPECT_EQ(shard, 7u);
  ASSERT_TRUE(ParseSnapshotFileName(SnapshotFileName(9, 3), &epoch, &joiner));
  EXPECT_EQ(epoch, 9u);
  EXPECT_EQ(joiner, 3u);
  EXPECT_FALSE(ParseWalSegmentName("MANIFEST", &gen, &shard));
  EXPECT_FALSE(ParseSnapshotFileName(WalSegmentName(1, 1), &epoch, &joiner));
}

TEST(WalFormatTest, RecordsRoundTripThroughReader) {
  TempDir dir;
  std::vector<WalReplayRecord> truth;
  const std::string bytes = BuildLogBytes(64, nullptr, &truth);
  WriteFile(dir.File("log"), bytes);

  WalFileReader reader(dir.File("log"));
  ASSERT_TRUE(reader.OpenFile().ok());
  WalReplayRecord rec;
  size_t i = 0;
  while (reader.Next(&rec)) {
    ASSERT_LT(i, truth.size());
    ExpectRecordEq(rec, truth[i], "record " + std::to_string(i));
    ++i;
  }
  EXPECT_EQ(i, truth.size());
  EXPECT_FALSE(reader.torn());
  EXPECT_EQ(reader.torn_bytes(), 0u);
}

// --------------------------------------------------- reader hardening/fuzz

/// Truncating at *every* byte offset must yield exactly the records that
/// end at or before the cut, flag the file torn iff the cut is
/// mid-record, and never crash.
TEST(WalReaderHardeningTest, EveryTruncationYieldsExactPrefix) {
  TempDir dir;
  std::vector<size_t> ends;
  std::vector<WalReplayRecord> truth;
  const std::string bytes = BuildLogBytes(24, &ends, &truth);

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFile(dir.File("log"), bytes.substr(0, cut));
    WalFileReader reader(dir.File("log"));
    ASSERT_TRUE(reader.OpenFile().ok());
    uint64_t want = 0;
    while (want < ends.size() && ends[want] <= cut) ++want;
    WalReplayRecord rec;
    uint64_t got = 0;
    while (reader.Next(&rec)) {
      ASSERT_LT(got, truth.size());
      ExpectRecordEq(rec, truth[got], "cut=" + std::to_string(cut));
      ++got;
    }
    ASSERT_EQ(got, want) << "cut=" << cut;
    const bool mid_record = (want == 0 && cut > 0) ||
                            (want > 0 && cut > ends[want - 1]);
    EXPECT_EQ(reader.torn(), mid_record) << "cut=" << cut;
    EXPECT_EQ(reader.torn_bytes(), cut - (want > 0 ? ends[want - 1] : 0))
        << "cut=" << cut;
  }
}

/// Single bit flips anywhere in the file: the reader must stop at (or
/// before) the damaged record and everything it does yield must be a
/// byte-exact prefix of the original sequence — a flipped record never
/// leaks through the CRC.
TEST(WalReaderHardeningTest, BitFlipsNeverYieldCorruptRecords) {
  TempDir dir;
  std::vector<size_t> ends;
  std::vector<WalReplayRecord> truth;
  const std::string bytes = BuildLogBytes(32, &ends, &truth);

  uint64_t rng = 0x5eed'f00d;
  auto next = [&rng]() { return rng = Mix64(rng); };
  for (int trial = 0; trial < 400; ++trial) {
    std::string damaged = bytes;
    const size_t byte = next() % damaged.size();
    damaged[byte] =
        static_cast<char>(damaged[byte] ^ (1u << (next() % 8)));
    WriteFile(dir.File("log"), damaged);

    WalFileReader reader(dir.File("log"));
    ASSERT_TRUE(reader.OpenFile().ok());
    WalReplayRecord rec;
    uint64_t got = 0;
    while (reader.Next(&rec)) {
      ASSERT_LT(got, truth.size()) << "trial " << trial;
      ExpectRecordEq(rec, truth[got], "trial " + std::to_string(trial));
      ++got;
    }
    // The record containing the flipped byte (and everything after it,
    // since the reader stops at the first bad record) must not appear.
    uint64_t first_damaged = 0;
    while (first_damaged < ends.size() && ends[first_damaged] <= byte) {
      ++first_damaged;
    }
    EXPECT_LE(got, first_damaged) << "trial " << trial;
    EXPECT_TRUE(reader.torn()) << "trial " << trial;
  }
}

/// Pure garbage and pathological headers: no crash, no records.
TEST(WalReaderHardeningTest, GarbageFilesAreRejectedCleanly) {
  TempDir dir;
  uint64_t rng = 0xdead'beef;
  auto next = [&rng]() { return rng = Mix64(rng); };
  for (int trial = 0; trial < 100; ++trial) {
    std::string junk;
    const size_t len = next() % 512;
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(next() & 0xff));
    }
    WriteFile(dir.File("log"), junk);
    WalFileReader reader(dir.File("log"));
    ASSERT_TRUE(reader.OpenFile().ok());
    WalReplayRecord rec;
    while (reader.Next(&rec)) {
      // Astronomically unlikely, but if random bytes form a valid CRC'd
      // record, yielding it is not an error; just keep going.
    }
    SUCCEED();
  }

  // A frame length claiming more than the hard payload cap must not
  // drive an allocation or an out-of-bounds read.
  std::string evil(kWalRecordHeaderBytes + 4, '\0');
  evil[12] = '\xff';
  evil[13] = '\xff';
  evil[14] = '\xff';
  evil[15] = '\xff';
  WriteFile(dir.File("log"), evil);
  WalFileReader reader(dir.File("log"));
  ASSERT_TRUE(reader.OpenFile().ok());
  WalReplayRecord rec;
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_TRUE(reader.torn());
}

// ------------------------------------------------------------ WalManager

DurabilityOptions Opts(const std::string& dir, uint32_t shards = 2) {
  DurabilityOptions o;
  o.wal_dir = dir;
  o.wal_shards = shards;
  o.fsync = FsyncPolicy::kPerBatch;
  return o;
}

TEST(WalManagerTest, AppendFlushReplayRoundTrip) {
  TempDir dir;
  WalManager wal(Opts(dir.path()), /*num_joiners=*/2, nullptr);
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_FALSE(wal.HasExistingState());

  std::vector<StreamEvent> events;
  for (uint64_t i = 0; i < 100; ++i) {
    events.push_back(MakeEvent(i));
    wal.AppendTuple(events.back());
  }
  // The watermark fans out to both shards under one LSN; replay must
  // deduplicate it back to one record.
  const uint64_t wm_lsn = wal.AppendWatermark(5'000);
  ASSERT_TRUE(wal.Flush(/*sync=*/true).ok());

  const WalStats stats = wal.StatsSnapshot();
  EXPECT_TRUE(stats.enabled);
  // Logical record count: the watermark is ONE record (one LSN) even
  // though its bytes fan out to both shards.
  EXPECT_EQ(stats.appended_records, 100u + 1u);
  EXPECT_EQ(stats.synced_records, stats.appended_records);
  EXPECT_GT(stats.fsyncs, 0u);

  WalReplayPlan plan;
  ASSERT_TRUE(BuildReplayPlan(dir.path(), &plan).ok());
  EXPECT_FALSE(plan.has_snapshot);
  EXPECT_EQ(plan.torn_tails, 0u);
  ASSERT_EQ(plan.records.size(), 101u);
  uint64_t prev_lsn = 0;
  uint64_t tuples = 0, watermarks = 0;
  for (const WalReplayRecord& r : plan.records) {
    EXPECT_GT(r.lsn, prev_lsn) << "lsn order / dedup";
    prev_lsn = r.lsn;
    if (r.is_watermark) {
      ++watermarks;
      EXPECT_EQ(r.lsn, wm_lsn);
      EXPECT_EQ(r.watermark, 5'000);
    } else {
      ++tuples;
    }
  }
  EXPECT_EQ(tuples, 100u);
  EXPECT_EQ(watermarks, 1u);
  EXPECT_EQ(plan.max_lsn, wm_lsn);
}

TEST(WalManagerTest, SimulateCrashDropsExactlyTheUnflushedTail) {
  TempDir dir;
  DurabilityOptions opts = Opts(dir.path(), /*shards=*/1);
  opts.group_commit_bytes = 1 << 20;  // nothing drains on its own
  opts.fsync = FsyncPolicy::kNone;
  WalManager wal(opts, 1, nullptr);
  ASSERT_TRUE(wal.Open().ok());

  for (uint64_t i = 0; i < 50; ++i) wal.AppendTuple(MakeEvent(i));
  ASSERT_TRUE(wal.Flush(/*sync=*/false).ok());  // first 50 reach the file
  for (uint64_t i = 50; i < 80; ++i) wal.AppendTuple(MakeEvent(i));
  wal.SimulateCrash();  // the 30 buffered records evaporate

  WalReplayPlan plan;
  ASSERT_TRUE(BuildReplayPlan(dir.path(), &plan).ok());
  EXPECT_EQ(plan.records.size(), 50u);
  EXPECT_EQ(plan.max_lsn, 50u);
}

TEST(WalManagerTest, SnapshotCommitsManifestAndTruncatesLog) {
  TempDir dir;
  WalManager wal(Opts(dir.path()), /*num_joiners=*/2, nullptr);
  ASSERT_TRUE(wal.Open().ok());

  for (uint64_t i = 0; i < 40; ++i) wal.AppendTuple(MakeEvent(i));
  wal.AppendWatermark(4'000);
  const uint64_t epoch = wal.BeginSnapshot(/*watermark=*/4'000);
  ASSERT_GT(epoch, 0u);
  EXPECT_FALSE(wal.PollSnapshotCompletion()) << "joiners not done yet";

  std::vector<StreamEvent> j0 = {MakeEvent(1), MakeEvent(2)};
  std::vector<StreamEvent> j1 = {MakeEvent(3)};
  ASSERT_TRUE(wal.WriteJoinerSnapshot(epoch, 0, j0).ok());
  ASSERT_TRUE(wal.WriteJoinerSnapshot(epoch, 1, j1).ok());
  ASSERT_TRUE(wal.PollSnapshotCompletion());
  ASSERT_TRUE(FileExists(dir.File(kWalManifestName)));

  // Pre-barrier generation is gone; the post-rotation one remains.
  for (const std::string& name : dir.List()) {
    uint64_t gen = 0;
    uint32_t shard = 0;
    if (ParseWalSegmentName(name, &gen, &shard)) {
      EXPECT_GT(gen, 1u) << name << " should have been truncated";
    }
  }

  // Log suffix after the barrier.
  for (uint64_t i = 100; i < 110; ++i) wal.AppendTuple(MakeEvent(i));
  ASSERT_TRUE(wal.Flush(true).ok());

  WalManifest manifest;
  ASSERT_TRUE(
      ReadWalManifest(dir.File(kWalManifestName), &manifest).ok());
  EXPECT_EQ(manifest.epoch, epoch);
  EXPECT_EQ(manifest.watermark, 4'000);
  EXPECT_EQ(manifest.joiners, 2u);
  EXPECT_EQ(manifest.records, 3u);

  WalReplayPlan plan;
  ASSERT_TRUE(BuildReplayPlan(dir.path(), &plan).ok());
  EXPECT_TRUE(plan.has_snapshot);
  EXPECT_EQ(plan.restore_watermark, 4'000);
  EXPECT_EQ(plan.snapshot_events.size(), 3u);
  EXPECT_EQ(plan.records.size(), 10u);
  for (const WalReplayRecord& r : plan.records) {
    EXPECT_FALSE(r.is_watermark) << "pre-barrier records must be excluded";
  }
  EXPECT_EQ(wal.StatsSnapshot().snapshots_taken, 1u);
}

TEST(WalManagerTest, FailedSnapshotLeavesFullLogRecoverable) {
  TempDir dir;
  WalManager wal(Opts(dir.path()), /*num_joiners=*/2, nullptr);
  ASSERT_TRUE(wal.Open().ok());
  for (uint64_t i = 0; i < 20; ++i) wal.AppendTuple(MakeEvent(i));
  const uint64_t epoch = wal.BeginSnapshot(2'000);
  ASSERT_TRUE(wal.WriteJoinerSnapshot(epoch, 0, {MakeEvent(0)}).ok());
  wal.MarkSnapshotFailed(epoch);
  EXPECT_FALSE(wal.PollSnapshotCompletion());
  ASSERT_TRUE(wal.Flush(true).ok());

  EXPECT_FALSE(FileExists(dir.File(kWalManifestName)));
  WalReplayPlan plan;
  ASSERT_TRUE(BuildReplayPlan(dir.path(), &plan).ok());
  EXPECT_FALSE(plan.has_snapshot);
  EXPECT_EQ(plan.records.size(), 20u) << "no truncation after a failure";
  EXPECT_EQ(wal.StatsSnapshot().snapshots_taken, 0u);
}

TEST(WalManagerTest, CorruptManifestFailsRecoveryLoudly) {
  TempDir dir;
  {
    WalManager wal(Opts(dir.path()), 1, nullptr);
    ASSERT_TRUE(wal.Open().ok());
    for (uint64_t i = 0; i < 8; ++i) wal.AppendTuple(MakeEvent(i));
    const uint64_t epoch = wal.BeginSnapshot(1'000);
    ASSERT_TRUE(wal.WriteJoinerSnapshot(epoch, 0, {MakeEvent(1)}).ok());
    ASSERT_TRUE(wal.PollSnapshotCompletion());
  }
  std::string manifest = ReadFile(dir.File(kWalManifestName));
  ASSERT_FALSE(manifest.empty());
  manifest[manifest.size() / 2] ^= 0x40;
  WriteFile(dir.File(kWalManifestName), manifest);

  WalReplayPlan plan;
  const Status s = BuildReplayPlan(dir.path(), &plan);
  EXPECT_FALSE(s.ok()) << "a committed-but-corrupt manifest must not be "
                          "silently ignored";
}

TEST(WalManagerTest, ReopenStartsFreshGenerationAndDetectsState) {
  TempDir dir;
  {
    WalManager wal(Opts(dir.path(), 1), 1, nullptr);
    ASSERT_TRUE(wal.Open().ok());
    for (uint64_t i = 0; i < 10; ++i) wal.AppendTuple(MakeEvent(i));
    ASSERT_TRUE(wal.Flush(true).ok());
    wal.SimulateCrash();
  }
  WalManager wal2(Opts(dir.path(), 1), 1, nullptr);
  ASSERT_TRUE(wal2.Open().ok());
  EXPECT_TRUE(wal2.HasExistingState());
  // Appending into the fresh generation never touches the old segments.
  wal2.ResumeAppends(11);
  wal2.AppendTuple(MakeEvent(100));
  ASSERT_TRUE(wal2.Flush(true).ok());
  WalReplayPlan plan;
  ASSERT_TRUE(BuildReplayPlan(dir.path(), &plan).ok());
  EXPECT_EQ(plan.records.size(), 11u);

  wal2.DiscardExistingState();
  // Only the open generation of wal2 survives a discard.
  WalReplayPlan after;
  ASSERT_TRUE(BuildReplayPlan(dir.path(), &after).ok());
  EXPECT_LE(after.records.size(), 1u);
}

// ------------------------------------------------------- disk-fault knobs

TEST(WalDiskFaultTest, ShortWritesLeaveRecoverablePrefix) {
  TempDir dir;
  FaultInjector faults;
  faults.short_write_probability = 1.0;
  ASSERT_TRUE(faults.InjectsDiskFaults());

  DurabilityOptions opts = Opts(dir.path(), /*shards=*/1);
  opts.group_commit_bytes = 256;  // many small drains, many faults
  WalManager wal(opts, 1, &faults);
  ASSERT_TRUE(wal.Open().ok());
  for (uint64_t i = 0; i < 200; ++i) {
    wal.AppendTuple(MakeEvent(i));
    wal.CommitGroup(/*now_us=*/0, /*watermark_barrier=*/false);
  }
  ASSERT_TRUE(wal.Flush(true).ok());
  EXPECT_GT(wal.StatsSnapshot().short_writes, 0u);

  // The damaged log must still recover cleanly: some lsn-prefix of the
  // appends, never a corrupt record, never an error.
  WalReplayPlan plan;
  ASSERT_TRUE(BuildReplayPlan(dir.path(), &plan).ok());
  EXPECT_LT(plan.records.size(), 200u) << "a fault should have fired";
  uint64_t expect_lsn = 1;
  for (const WalReplayRecord& r : plan.records) {
    EXPECT_EQ(r.lsn, expect_lsn++) << "single shard -> contiguous prefix";
  }
  EXPECT_GE(plan.torn_tails, 1u);
}

TEST(WalDiskFaultTest, FsyncFailuresHoldBackTheDurableCount) {
  TempDir dir;
  FaultInjector faults;
  faults.fsync_failure_probability = 1.0;
  WalManager wal(Opts(dir.path(), 1), 1, &faults);
  ASSERT_TRUE(wal.Open().ok());
  for (uint64_t i = 0; i < 30; ++i) wal.AppendTuple(MakeEvent(i));
  ASSERT_TRUE(wal.Flush(/*sync=*/true).ok());

  const WalStats stats = wal.StatsSnapshot();
  EXPECT_GT(stats.fsync_failures, 0u);
  EXPECT_EQ(stats.synced_records, 0u)
      << "records must not be reported durable past a failed fsync";
  EXPECT_EQ(stats.appended_records, 30u);
}

/// The disk-fault stream must be independent of the workload fault
/// knobs: the same disk_fault_seed produces the same fault pattern no
/// matter how the late-flood/freeze knobs are set.
TEST(WalDiskFaultTest, DiskFaultSeedIsIndependentOfWorkloadKnobs) {
  auto run = [](uint64_t late_knob) {
    TempDir dir;
    FaultInjector faults;
    faults.short_write_probability = 0.5;
    faults.freeze_watermarks_after = late_knob;  // workload-side knob
    DurabilityOptions opts = Opts(dir.path(), 1);
    opts.group_commit_bytes = 128;
    WalManager wal(opts, 1, &faults);
    EXPECT_TRUE(wal.Open().ok());
    for (uint64_t i = 0; i < 100; ++i) {
      wal.AppendTuple(MakeEvent(i));
      wal.CommitGroup(0, false);
    }
    EXPECT_TRUE(wal.Flush(true).ok());
    return wal.StatsSnapshot().short_writes;
  };
  EXPECT_EQ(run(0), run(7))
      << "disk-fault rng must not be coupled to other fault knobs";
}

}  // namespace
}  // namespace oij
