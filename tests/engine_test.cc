#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "stream/generator.h"

namespace oij {
namespace {

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

struct EngineRun {
  std::vector<ReferenceResult> results;
  EngineStats stats;
};

/// Feeds a materialized arrival sequence through an engine with periodic
/// punctuations, exactly as the pipeline would.
EngineRun RunOverEvents(EngineKind kind, const std::vector<StreamEvent>& events,
                        const QuerySpec& spec, EngineOptions options,
                        uint64_t wm_every = 256) {
  CollectingSink sink;
  auto engine = CreateEngine(kind, spec, options, &sink);
  EXPECT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(spec.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % wm_every == 0) {
      engine->SignalWatermark(tracker.watermark());
    }
  }
  EngineRun run;
  run.stats = engine->Finish();
  for (const JoinResult& r : sink.TakeResults()) {
    run.results.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&run.results);
  return run;
}

void ExpectResultsEqual(const std::vector<ReferenceResult>& got,
                        const std::vector<ReferenceResult>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label << ": result cardinality";
  size_t mismatches = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].base != want[i].base ||
        got[i].match_count != want[i].match_count ||
        (!std::isnan(want[i].aggregate) &&
         std::abs(got[i].aggregate - want[i].aggregate) > 1e-6)) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << label << ": result " << i << " differs: base ts="
                      << got[i].base.ts << " key=" << got[i].base.key
                      << " got(count=" << got[i].match_count
                      << ", agg=" << got[i].aggregate << ") want(count="
                      << want[i].match_count << ", agg="
                      << want[i].aggregate << ")";
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << label;
}

WorkloadSpec TestWorkload(uint64_t seed, uint64_t keys = 8,
                          Timestamp disorder = 50) {
  WorkloadSpec w;
  w.num_keys = keys;
  w.window = IntervalWindow{400, 0};
  w.lateness_us = disorder;
  w.disorder_bound_us = disorder;
  w.event_rate_per_sec = 1'000'000;  // integer us spacing: unique ts
  w.total_tuples = 30'000;
  w.probe_fraction = 0.5;
  w.seed = seed;
  return w;
}

QuerySpec TestQuery(EmitMode mode, AggKind agg = AggKind::kSum,
                    Timestamp lateness = 50, IntervalWindow window = {400,
                                                                      0}) {
  QuerySpec q;
  q.window = window;
  q.lateness_us = lateness;
  q.agg = agg;
  q.emit_mode = mode;
  return q;
}

// ------------------------------------------------ exactness: watermark mode

/// Every engine except the intentionally sloppy OpenMLDB-like baseline
/// must be exact under bounded disorder in watermark mode. Parameters:
/// (engine, joiners, seed).
class WatermarkExactnessTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, int, int>> {};

TEST_P(WatermarkExactnessTest, MatchesReferenceUnderDisorder) {
  const auto [kind, joiners, seed] = GetParam();
  const WorkloadSpec w = TestWorkload(seed);
  const QuerySpec q = TestQuery(EmitMode::kWatermark);
  const auto events = Generate(w);
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  EngineOptions options;
  options.num_joiners = static_cast<uint32_t>(joiners);
  const auto run = RunOverEvents(kind, events, q, options);
  ExpectResultsEqual(run.results, expected,
                     std::string(EngineKindName(kind)) + "/j" +
                         std::to_string(joiners));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, WatermarkExactnessTest,
    ::testing::Combine(::testing::Values(EngineKind::kKeyOij,
                                         EngineKind::kScaleOij,
                                         EngineKind::kSplitJoin,
                                         EngineKind::kHandshake),
                       ::testing::Values(1, 3, 4),
                       ::testing::Values(11, 12)),
    [](const auto& info) {
      std::string name(EngineKindName(std::get<0>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_j" + std::to_string(std::get<1>(info.param)) +
             "_s" + std::to_string(std::get<2>(info.param));
    });

// --------------------------------------------------- exactness: eager mode

/// With an in-order stream (disorder 0, unique timestamps), eager mode is
/// exact for every engine, including the OpenMLDB-like baseline on a
/// single worker.
class EagerExactnessTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, int>> {};

TEST_P(EagerExactnessTest, MatchesReferenceInOrder) {
  const auto [kind, joiners] = GetParam();
  WorkloadSpec w = TestWorkload(21, /*keys=*/8, /*disorder=*/0);
  w.lateness_us = 0;
  const QuerySpec q = TestQuery(EmitMode::kEager, AggKind::kSum, 0);
  const auto events = Generate(w);
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  EngineOptions options;
  options.num_joiners = static_cast<uint32_t>(joiners);
  const auto run = RunOverEvents(kind, events, q, options);
  ExpectResultsEqual(run.results, expected,
                     std::string(EngineKindName(kind)));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EagerExactnessTest,
    ::testing::Values(std::make_tuple(EngineKind::kKeyOij, 4),
                      std::make_tuple(EngineKind::kScaleOij, 4),
                      std::make_tuple(EngineKind::kSplitJoin, 3),
                      std::make_tuple(EngineKind::kHandshake, 3),
                      std::make_tuple(EngineKind::kSharedState, 1)),
    [](const auto& info) {
      std::string name(EngineKindName(std::get<0>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_j" + std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------- operators and window shapes

class OperatorExactnessTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(OperatorExactnessTest, ScaleOijExactForEveryOperator) {
  const AggKind agg = GetParam();
  const WorkloadSpec w = TestWorkload(31);
  const QuerySpec q = TestQuery(EmitMode::kWatermark, agg);
  const auto events = Generate(w);
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  EngineOptions options;
  options.num_joiners = 3;
  const auto run =
      RunOverEvents(EngineKind::kScaleOij, events, q, options);
  ExpectResultsEqual(run.results, expected,
                     std::string(AggKindName(agg)));
}

INSTANTIATE_TEST_SUITE_P(AllAggs, OperatorExactnessTest,
                         ::testing::Values(AggKind::kSum, AggKind::kCount,
                                           AggKind::kAvg, AggKind::kMin,
                                           AggKind::kMax),
                         [](const auto& info) {
                           return std::string(AggKindName(info.param));
                         });

TEST(EngineShapeTest, FollowingWindowExact) {
  const WorkloadSpec w = TestWorkload(41);
  QuerySpec q = TestQuery(EmitMode::kWatermark);
  q.window = IntervalWindow{200, 150};
  const auto events = Generate(w);
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij,
                          EngineKind::kSplitJoin}) {
    EngineOptions options;
    options.num_joiners = 2;
    const auto run = RunOverEvents(kind, events, q, options);
    ExpectResultsEqual(run.results, expected,
                       std::string(EngineKindName(kind)) + "+fol");
  }
}

TEST(EngineShapeTest, LargeLatenessExact) {
  WorkloadSpec w = TestWorkload(51);
  w.lateness_us = 5000;
  w.disorder_bound_us = 5000;
  QuerySpec q = TestQuery(EmitMode::kWatermark, AggKind::kSum, 5000);
  const auto events = Generate(w);
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    EngineOptions options;
    options.num_joiners = 4;
    const auto run = RunOverEvents(kind, events, q, options);
    ExpectResultsEqual(run.results, expected,
                       std::string(EngineKindName(kind)) + "+lateness");
  }
}

TEST(EngineShapeTest, SingleKeyEverythingColocates) {
  const WorkloadSpec w = TestWorkload(61, /*keys=*/1);
  const QuerySpec q = TestQuery(EmitMode::kWatermark);
  const auto events = Generate(w);
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij,
                          EngineKind::kSplitJoin}) {
    EngineOptions options;
    options.num_joiners = 4;
    const auto run = RunOverEvents(kind, events, q, options);
    ExpectResultsEqual(run.results, expected,
                       std::string(EngineKindName(kind)) + "+1key");
  }
}

// --------------------------------------------- Scale-OIJ ablation variants

class ScaleAblationTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(ScaleAblationTest, ExactWithAnyOptimizationSubset) {
  const auto [dynamic_schedule, incremental] = GetParam();
  const WorkloadSpec w = TestWorkload(71, /*keys=*/4);
  const QuerySpec q = TestQuery(EmitMode::kWatermark);
  const auto events = Generate(w);
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  EngineOptions options;
  options.num_joiners = 4;
  options.dynamic_schedule = dynamic_schedule;
  options.incremental_agg = incremental;
  options.rebalance_interval_events = 2048;
  const auto run = RunOverEvents(EngineKind::kScaleOij, events, q, options);
  ExpectResultsEqual(run.results, expected, "scale-ablation");
}

INSTANTIATE_TEST_SUITE_P(Matrix, ScaleAblationTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()),
                         [](const auto& info) {
                           return std::string(std::get<0>(info.param)
                                                  ? "dyn"
                                                  : "static") +
                                  (std::get<1>(info.param) ? "_inc"
                                                           : "_full");
                         });

// ----------------------------------------------------- behavioural checks

TEST(EngineBehaviourTest, SharedStateEmitsPerBaseTuple) {
  // Multi-worker OpenMLDB-like runs are approximate but must still emit
  // exactly one result per base tuple.
  const WorkloadSpec w = TestWorkload(81);
  const QuerySpec q = TestQuery(EmitMode::kEager);
  const auto events = Generate(w);
  size_t bases = 0;
  for (const auto& e : events) {
    if (e.stream == StreamId::kBase) ++bases;
  }
  EngineOptions options;
  options.num_joiners = 4;
  const auto run =
      RunOverEvents(EngineKind::kSharedState, events, q, options);
  EXPECT_EQ(run.results.size(), bases);
}

TEST(EngineBehaviourTest, EvictionBoundsStateGrowth) {
  // A long run with a small window must evict: peak buffered tuples stay
  // far below the probe count.
  WorkloadSpec w = TestWorkload(91);
  w.total_tuples = 100'000;
  const QuerySpec q = TestQuery(EmitMode::kWatermark);
  const auto events = Generate(w);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    EngineOptions options;
    options.num_joiners = 2;
    const auto run = RunOverEvents(kind, events, q, options);
    EXPECT_GT(run.stats.evicted_tuples, 10'000u)
        << EngineKindName(kind) << ": eviction never ran";
    EXPECT_LT(run.stats.peak_buffered_tuples, 20'000u)
        << EngineKindName(kind) << ": state grew unboundedly";
  }
}

TEST(EngineBehaviourTest, KeyOijVisitsOutOfWindowDataUnderLateness) {
  // The defining inefficiency (Fig 7): with large lateness, Key-OIJ's
  // effectiveness decays while Scale-OIJ's stays at 1.
  WorkloadSpec w = TestWorkload(101);
  w.lateness_us = 4000;  // 10x the window
  w.disorder_bound_us = 4000;
  const QuerySpec q = TestQuery(EmitMode::kWatermark, AggKind::kSum, 4000);
  const auto events = Generate(w);

  EngineOptions options;
  options.num_joiners = 2;
  // This test characterizes the *per-base* scan profile (Eq. 1); the
  // columnar batch path shares one gather across a key-group, which
  // redefines visited/effectiveness. Differential correctness of that
  // path is covered by col_batch_test.
  options.columnar_batch = false;
  const auto key = RunOverEvents(EngineKind::kKeyOij, events, q, options);
  options.incremental_agg = false;  // isolate the index effect
  const auto scale =
      RunOverEvents(EngineKind::kScaleOij, events, q, options);

  EXPECT_LT(key.stats.Effectiveness(), 0.5);
  EXPECT_GT(scale.stats.Effectiveness(), 0.99);
  EXPECT_GT(key.stats.visited, 3 * scale.stats.visited);
}

TEST(EngineBehaviourTest, IncrementalReducesVisitsOnLargeWindows) {
  WorkloadSpec w = TestWorkload(111, /*keys=*/4);
  w.window = IntervalWindow{20'000, 0};  // 50x overlap between windows
  const QuerySpec q =
      TestQuery(EmitMode::kWatermark, AggKind::kSum, 50, {20'000, 0});
  const auto events = Generate(w);

  EngineOptions options;
  options.num_joiners = 2;
  // Scalar path only: the incremental-slide visit saving this test
  // measures is a per-base property; the columnar batch path amortizes
  // differently (one union-window gather per key-group).
  options.columnar_batch = false;
  options.incremental_agg = true;
  const auto inc = RunOverEvents(EngineKind::kScaleOij, events, q, options);
  options.incremental_agg = false;
  const auto full = RunOverEvents(EngineKind::kScaleOij, events, q, options);

  // Same results...
  ExpectResultsEqual(inc.results, full.results, "inc-vs-full");
  // ...but far fewer tuples touched.
  EXPECT_LT(inc.stats.visited, full.stats.visited / 5);
}

TEST(EngineBehaviourTest, DynamicScheduleBalancesFewKeys) {
  // 2 keys on 4 joiners: Key-OIJ leaves half the joiners idle; Scale-OIJ's
  // dynamic schedule spreads the load (Fig 13a/c).
  WorkloadSpec w = TestWorkload(121, /*keys=*/2);
  w.total_tuples = 60'000;
  const QuerySpec q = TestQuery(EmitMode::kWatermark);
  const auto events = Generate(w);

  EngineOptions options;
  options.num_joiners = 4;
  options.rebalance_interval_events = 4096;
  const auto key = RunOverEvents(EngineKind::kKeyOij, events, q, options);
  const auto scale =
      RunOverEvents(EngineKind::kScaleOij, events, q, options);

  EXPECT_GT(key.stats.ActualUnbalancedness(), 0.8)
      << "key-partitioning should be badly skewed with 2 keys";
  EXPECT_LT(scale.stats.ActualUnbalancedness(),
            key.stats.ActualUnbalancedness() / 2);
  EXPECT_GT(scale.stats.rebalances, 0u);
}

TEST(EngineBehaviourTest, EagerApproximationIsSandwiched) {
  // Eager mode under disorder misses only probes that arrive after their
  // base tuple; the generator bounds those to ts in (end - disorder,
  // end]. Hence every eager result is sandwiched between the exact
  // aggregate of the full window and that of the window with its last
  // `disorder` microseconds removed.
  const Timestamp disorder = 80;
  WorkloadSpec w = TestWorkload(141, /*keys=*/4, disorder);
  QuerySpec q = TestQuery(EmitMode::kEager, AggKind::kCount, disorder);
  const auto events = Generate(w);

  auto full = ReferenceJoin(events, q);
  SortResults(&full);
  // Lower bound: probes in [start, end - disorder - 1] can never be
  // missed (they cannot arrive after the base tuple).
  auto lower_ref = [&](const Tuple& base) {
    uint64_t count = 0;
    const Timestamp start = q.window.start_for(base.ts);
    const Timestamp end = q.window.end_for(base.ts) - disorder - 1;
    for (const auto& e : events) {
      if (e.stream == StreamId::kProbe && e.tuple.key == base.key &&
          e.tuple.ts >= start && e.tuple.ts <= end) {
        ++count;
      }
    }
    return count;
  };

  EngineOptions options;
  options.num_joiners = 2;
  const auto run = RunOverEvents(EngineKind::kKeyOij, events, q, options);
  ASSERT_EQ(run.results.size(), full.size());
  uint64_t got_total = 0;
  uint64_t full_total = 0;
  for (size_t i = 0; i < run.results.size(); ++i) {
    ASSERT_EQ(run.results[i].base, full[i].base);
    ASSERT_LE(run.results[i].match_count, full[i].match_count)
        << "eager must never over-count";
    ASSERT_GE(run.results[i].match_count, lower_ref(run.results[i].base))
        << "eager missed a probe outside the disorder bound";
    got_total += run.results[i].match_count;
    full_total += full[i].match_count;
  }
  // The aggregate deficit is a small fraction: only probes inside the
  // final `disorder` microseconds of a window can be missed, and only
  // when they actually arrive after the base tuple.
  ASSERT_GT(full_total, 0u);
  EXPECT_GT(static_cast<double>(got_total) /
                static_cast<double>(full_total),
            0.95);
}

TEST(EngineBehaviourTest, StartValidatesOptions) {
  QuerySpec q = TestQuery(EmitMode::kWatermark);
  EngineOptions options;
  options.num_joiners = 0;
  NullSink sink;
  auto engine = CreateEngine(EngineKind::kKeyOij, q, options, &sink);
  EXPECT_FALSE(engine->Start().ok());
}

TEST(EngineBehaviourTest, EmptyStreamFinishesCleanly) {
  const QuerySpec q = TestQuery(EmitMode::kWatermark);
  EngineOptions options;
  options.num_joiners = 2;
  for (EngineKind kind :
       {EngineKind::kKeyOij, EngineKind::kScaleOij, EngineKind::kSplitJoin,
        EngineKind::kSharedState}) {
    CollectingSink sink;
    auto engine = CreateEngine(kind, q, options, &sink);
    ASSERT_TRUE(engine->Start().ok());
    const EngineStats stats = engine->Finish();
    EXPECT_EQ(stats.results, 0u) << EngineKindName(kind);
  }
}

TEST(EngineBehaviourTest, FactoryNamesRoundTrip) {
  for (EngineKind kind :
       {EngineKind::kKeyOij, EngineKind::kScaleOij, EngineKind::kSplitJoin,
        EngineKind::kSharedState}) {
    EngineKind parsed;
    ASSERT_TRUE(EngineKindFromName(EngineKindName(kind), &parsed).ok());
    EXPECT_EQ(parsed, kind);
  }
  EngineKind parsed;
  EXPECT_FALSE(EngineKindFromName("flink", &parsed).ok());
}

TEST(EngineBehaviourTest, CacheSimReceivesTraffic) {
  CacheSim sim;
  WorkloadSpec w = TestWorkload(131);
  const QuerySpec q = TestQuery(EmitMode::kWatermark);
  const auto events = Generate(w);
  EngineOptions options;
  options.num_joiners = 2;
  options.cache_sim = &sim;
  options.cache_sample_period = 4;
  RunOverEvents(EngineKind::kKeyOij, events, q, options);
  EXPECT_GT(sim.accesses(), 1000u);
}

}  // namespace
}  // namespace oij
