// Stress and adversarial-configuration tests: exactness must survive
// backpressure (tiny queues), punctuation storms, oversubscription (more
// joiners than cores), aggressive rebalancing, and long soak runs with
// heavy eviction. These target the cross-thread protocols (progress
// gating, read floors, EBR) rather than the happy paths.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "stream/generator.h"

namespace oij {
namespace {

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

void ExpectExact(EngineKind kind, const std::vector<StreamEvent>& events,
                 const QuerySpec& q, const EngineOptions& options,
                 uint64_t wm_every, const std::string& label) {
  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);

  CollectingSink sink;
  auto engine = CreateEngine(kind, q, options, &sink);
  ASSERT_TRUE(engine->Start().ok()) << label;
  WatermarkTracker tracker(q.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % wm_every == 0) engine->SignalWatermark(tracker.watermark());
  }
  engine->Finish();

  std::vector<ReferenceResult> got;
  for (const JoinResult& r : sink.TakeResults()) {
    got.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&got);
  ASSERT_EQ(got.size(), expected.size()) << label;
  size_t bad = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].match_count != expected[i].match_count ||
        (!std::isnan(expected[i].aggregate) &&
         std::abs(got[i].aggregate - expected[i].aggregate) > 1e-6)) {
      ++bad;
    }
  }
  EXPECT_EQ(bad, 0u) << label;
}

WorkloadSpec StressWorkload(uint64_t seed) {
  WorkloadSpec w;
  w.num_keys = 8;
  w.window = IntervalWindow{400, 0};
  w.lateness_us = 60;
  w.disorder_bound_us = 60;
  w.total_tuples = 40'000;
  w.seed = seed;
  return w;
}

QuerySpec StressQuery() {
  QuerySpec q;
  q.window = IntervalWindow{400, 0};
  q.lateness_us = 60;
  q.emit_mode = EmitMode::kWatermark;
  return q;
}

TEST(StressTest, TinyQueuesForceBackpressure) {
  const auto events = Generate(StressWorkload(501));
  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij,
                          EngineKind::kSplitJoin, EngineKind::kHandshake}) {
    EngineOptions options;
    options.num_joiners = 3;
    options.queue_capacity = 8;  // constant push-side stalls
    ExpectExact(kind, events, StressQuery(), options, 64,
                std::string("tiny-queues/") +
                    std::string(EngineKindName(kind)));
  }
}

TEST(StressTest, PunctuationEveryEvent) {
  // A punctuation after every tuple maximizes eviction/rebalance churn
  // and progress publication.
  const auto events = Generate(StressWorkload(502));
  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij,
                          EngineKind::kHandshake}) {
    EngineOptions options;
    options.num_joiners = 2;
    ExpectExact(kind, events, StressQuery(), options, 1,
                std::string("wm-every-event/") +
                    std::string(EngineKindName(kind)));
  }
}

TEST(StressTest, OversubscribedJoiners) {
  // Far more joiners than cores: progress gating must stay live under
  // arbitrary scheduling delays.
  const auto events = Generate(StressWorkload(503));
  for (EngineKind kind : {EngineKind::kScaleOij, EngineKind::kSplitJoin}) {
    EngineOptions options;
    options.num_joiners = 12;
    ExpectExact(kind, events, StressQuery(), options, 128,
                std::string("oversubscribed/") +
                    std::string(EngineKindName(kind)));
  }
}

TEST(StressTest, AggressiveRebalancing) {
  // Rebalance as often as possible on a skewed stream: schedule
  // publication, team growth, and the monotone-team invariant get
  // hammered while results must stay exact.
  WorkloadSpec w = StressWorkload(504);
  w.num_keys = 3;
  w.key_distribution = KeyDistribution::kZipf;
  w.zipf_theta = 1.2;
  w.total_tuples = 80'000;
  const auto events = Generate(w);

  EngineOptions options;
  options.num_joiners = 4;
  options.rebalance_interval_events = 256;
  options.rebalance.improvement_threshold = 0.0001;
  ExpectExact(EngineKind::kScaleOij, events, StressQuery(), options, 64,
              "aggressive-rebalance");
}

TEST(StressTest, SoakWithHeavyEviction) {
  // A longer run whose retention horizon is a tiny fraction of the
  // stream: eviction (and EBR reclamation) must keep state bounded while
  // staying exact across the whole run.
  WorkloadSpec w = StressWorkload(505);
  w.total_tuples = 300'000;
  w.window = IntervalWindow{150, 0};
  w.lateness_us = 30;
  w.disorder_bound_us = 30;
  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kWatermark;
  const auto events = Generate(w);

  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
    auto expected = ReferenceJoin(events, q);
    SortResults(&expected);
    CollectingSink sink;
    EngineOptions options;
    options.num_joiners = 3;
    auto engine = CreateEngine(kind, q, options, &sink);
    ASSERT_TRUE(engine->Start().ok());
    WatermarkTracker tracker(q.lateness_us);
    uint64_t n = 0;
    for (const StreamEvent& ev : events) {
      tracker.Observe(ev.tuple.ts);
      engine->Push(ev, MonotonicNowUs());
      if (++n % 512 == 0) engine->SignalWatermark(tracker.watermark());
    }
    const EngineStats stats = engine->Finish();
    EXPECT_GT(stats.evicted_tuples, 100'000u) << EngineKindName(kind);
    EXPECT_LT(stats.peak_buffered_tuples, 30'000u) << EngineKindName(kind);

    std::vector<ReferenceResult> got;
    for (const JoinResult& r : sink.TakeResults()) {
      got.push_back({r.base, r.aggregate, r.match_count});
    }
    SortResults(&got);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].match_count, expected[i].match_count)
          << EngineKindName(kind) << " result " << i;
    }
  }
}

TEST(StressTest, ManyKeysManyPartitions) {
  // Key cardinality above partition count: partitions hold many keys
  // each; partition-level scheduling must not leak across keys.
  WorkloadSpec w = StressWorkload(506);
  w.num_keys = 5000;
  w.total_tuples = 60'000;
  const auto events = Generate(w);
  EngineOptions options;
  options.num_joiners = 4;
  options.num_partitions = 32;
  ExpectExact(EngineKind::kScaleOij, events, StressQuery(), options, 256,
              "many-keys-few-partitions");
}

TEST(StressTest, OverloadPoliciesStayLiveAndSubset) {
  // Degraded delivery under sustained overload: a deliberately slow
  // joiner plus tiny queues keeps the drop/shed paths hot for the whole
  // run. The engines must stay live (healthy bounded Finish) and must
  // never emit a result the lossless reference would not have produced —
  // lossy policies may only *remove* probe matches, never invent them.
  WorkloadSpec w = StressWorkload(508);
  w.total_tuples = 12'000;
  const auto events = Generate(w);
  const QuerySpec q = StressQuery();
  auto reference = ReferenceJoin(events, q);

  using BaseKey = std::tuple<Timestamp, Key, double>;
  std::map<BaseKey, ReferenceResult> index;
  for (const ReferenceResult& r : reference) {
    index.emplace(BaseKey{r.base.ts, r.base.key, r.base.payload}, r);
  }

  for (OverloadPolicy policy :
       {OverloadPolicy::kDropNewest, OverloadPolicy::kShedOldest}) {
    for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij}) {
      const std::string label = std::string(OverloadPolicyName(policy)) +
                                "/" + std::string(EngineKindName(kind));
      FaultInjector faults;
      faults.slow_joiner = 0;
      faults.slow_delay_us = 40;

      CollectingSink sink;
      EngineOptions options;
      options.num_joiners = 3;
      options.queue_capacity = 8;
      options.overload_policy = policy;
      options.shed_spill_capacity = 16;
      options.fault_injector = &faults;
      auto engine = CreateEngine(kind, q, options, &sink);
      ASSERT_TRUE(engine->Start().ok()) << label;
      WatermarkTracker tracker(q.lateness_us);
      uint64_t n = 0;
      for (const StreamEvent& ev : events) {
        tracker.Observe(ev.tuple.ts);
        engine->Push(ev, MonotonicNowUs());
        if (++n % 64 == 0) engine->SignalWatermark(tracker.watermark());
      }
      const EngineStats stats = engine->Finish();

      EXPECT_TRUE(stats.health.ok()) << label << ": " << stats.health.ToString();
      EXPECT_GT(stats.overload_dropped, 0u)
          << label << ": overload never engaged, stress is miscalibrated";
      for (const JoinResult& r : sink.TakeResults()) {
        const auto it =
            index.find(BaseKey{r.base.ts, r.base.key, r.base.payload});
        ASSERT_NE(it, index.end()) << label << ": unknown base tuple";
        EXPECT_LE(r.match_count, it->second.match_count) << label;
        EXPECT_LE(r.aggregate, it->second.aggregate + 1e-6) << label;
      }
    }
  }
}

TEST(StressTest, PooledAllocOnOffBothExact) {
  // The arena-backed allocation path (pooled_alloc) must be invisible to
  // results: both settings join the eviction-heavy stress stream exactly.
  WorkloadSpec w = StressWorkload(509);
  w.window = IntervalWindow{150, 0};  // tight retention -> heavy churn
  QuerySpec q = StressQuery();
  q.window = w.window;
  const auto events = Generate(w);
  for (EngineKind kind : {EngineKind::kScaleOij, EngineKind::kHandshake}) {
    for (bool pooled : {false, true}) {
      EngineOptions options;
      options.num_joiners = 3;
      options.pooled_alloc = pooled;
      ExpectExact(kind, events, q, options, 64,
                  std::string(pooled ? "pooled/" : "heap/") +
                      std::string(EngineKindName(kind)));
    }
  }
}

TEST(StressTest, PooledAllocReportsArenaStatsOnlyWhenEnabled) {
  const auto events = Generate(StressWorkload(510));
  const QuerySpec q = StressQuery();
  for (bool pooled : {false, true}) {
    CollectingSink sink;
    EngineOptions options;
    options.num_joiners = 2;
    options.pooled_alloc = pooled;
    auto engine = CreateEngine(EngineKind::kScaleOij, q, options, &sink);
    ASSERT_TRUE(engine->Start().ok());
    WatermarkTracker tracker(q.lateness_us);
    uint64_t n = 0;
    for (const StreamEvent& ev : events) {
      tracker.Observe(ev.tuple.ts);
      engine->Push(ev, MonotonicNowUs());
      if (++n % 128 == 0) engine->SignalWatermark(tracker.watermark());
    }
    const EngineStats stats = engine->Finish();
    EXPECT_EQ(stats.mem.pooled, pooled);
    if (pooled) {
      EXPECT_GT(stats.mem.arena_reserved_bytes, 0u);
      EXPECT_GT(stats.mem.arena_allocations, 0u);
    } else {
      EXPECT_EQ(stats.mem.arena_reserved_bytes, 0u);
      EXPECT_EQ(stats.mem.arena_allocations, 0u);
    }
  }
}

TEST(StressTest, PooledAllocMatchesPolicyReferenceUnderLateFlood) {
  // Differential exactness against the policy-aware oracle with the arena
  // enabled: late-tuple gating, eviction, and chunked reclamation compose
  // without changing what is emitted.
  WorkloadSpec w = StressWorkload(511);
  w.late_flood_fraction = 0.15;
  w.late_flood_extra_us = 50;
  const auto events = Generate(w);
  QuerySpec q = StressQuery();
  q.late_policy = LatePolicy::kDropAndCount;
  const uint64_t wm_every = 7;
  auto expected = ReferenceJoinWithPolicy(events, q, wm_every);
  SortResults(&expected);

  for (EngineKind kind : {EngineKind::kScaleOij, EngineKind::kHandshake}) {
    const std::string label =
        std::string("pooled-late/") + std::string(EngineKindName(kind));
    CollectingSink sink;
    EngineOptions options;
    options.num_joiners = 3;
    options.pooled_alloc = true;
    auto engine = CreateEngine(kind, q, options, &sink);
    ASSERT_TRUE(engine->Start().ok()) << label;
    WatermarkTracker tracker(q.lateness_us);
    uint64_t n = 0;
    for (const StreamEvent& ev : events) {
      tracker.Observe(ev.tuple.ts);
      engine->Push(ev, MonotonicNowUs());
      if (++n % wm_every == 0) engine->SignalWatermark(tracker.watermark());
    }
    engine->Finish();

    std::vector<ReferenceResult> got;
    for (const JoinResult& r : sink.TakeResults()) {
      got.push_back({r.base, r.aggregate, r.match_count});
    }
    SortResults(&got);
    ASSERT_EQ(got.size(), expected.size()) << label;
    size_t bad = 0;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].match_count != expected[i].match_count) ++bad;
    }
    EXPECT_EQ(bad, 0u) << label;
  }
}

TEST(StressTest, SingleJoinerDegeneratesGracefully) {
  const auto events = Generate(StressWorkload(507));
  for (EngineKind kind : {EngineKind::kKeyOij, EngineKind::kScaleOij,
                          EngineKind::kSplitJoin, EngineKind::kHandshake}) {
    EngineOptions options;
    options.num_joiners = 1;
    options.num_partitions = 1;
    ExpectExact(kind, events, StressQuery(), options, 128,
                std::string("single-joiner/") +
                    std::string(EngineKindName(kind)));
  }
}

}  // namespace
}  // namespace oij
