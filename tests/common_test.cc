#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/rate_limiter.h"
#include "common/spsc_queue.h"
#include "common/status.h"
#include "common/thread_util.h"
#include "common/types.h"

namespace oij {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(CodeName(Status::Code::kOk), "OK");
  EXPECT_EQ(CodeName(Status::Code::kNotFound), "NotFound");
  EXPECT_EQ(CodeName(Status::Code::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(CodeName(Status::Code::kParseError), "ParseError");
  EXPECT_EQ(CodeName(Status::Code::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

// ------------------------------------------------------------------ Hash

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip many output bits.
  const uint64_t a = Mix64(0x1234);
  const uint64_t b = Mix64(0x1235);
  const int differing = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(HashTest, Mix64Deterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(HashTest, HashBytesSeedMatters) {
  EXPECT_NE(HashBytes("hello"), HashBytes("hello", 1));
  EXPECT_EQ(HashBytes("hello"), HashBytes("hello"));
  EXPECT_NE(HashBytes("hello"), HashBytes("hellp"));
}

TEST(HashTest, RangePartitionCoversAllBucketsRoughlyEvenly) {
  constexpr uint32_t kBuckets = 8;
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t k = 0; k < 8000; ++k) {
    const uint32_t p = RangePartition(Mix64(k), kBuckets);
    ASSERT_LT(p, kBuckets);
    counts[p]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // expectation 1000, generous tolerance
    EXPECT_LT(c, 1200);
  }
}

TEST(HashTest, RangePartitionSingleBucket) {
  EXPECT_EQ(RangePartition(Mix64(123), 1), 0u);
}

// ---------------------------------------------------------------- Random

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(4);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 1500);
    EXPECT_LT(c, 2500);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  Rng rng(5);
  ZipfSampler zipf(1000, 0.99);
  uint64_t head = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // Under theta=0.99 the top-10 of 1000 keys draw a large share.
  EXPECT_GT(static_cast<double>(head) / total, 0.25);
}

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(6);
  for (double theta : {0.5, 0.99, 1.0, 1.5}) {
    ZipfSampler zipf(37, theta);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(zipf.Sample(rng), 37u);
    }
  }
}

// ------------------------------------------------------------- SpscQueue

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  SpscQueue<int> q2(1);
  EXPECT_EQ(q2.capacity(), 2u);
}

TEST(SpscQueueTest, FifoOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(i));
  int v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(SpscQueueTest, FullRejectsPush) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));
  int v;
  ASSERT_TRUE(q.TryPop(&v));
  EXPECT_TRUE(q.TryPush(99));
}

TEST(SpscQueueTest, SizeApprox) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.SizeApprox(), 0u);
  q.TryPush(1);
  q.TryPush(2);
  EXPECT_EQ(q.SizeApprox(), 2u);
}

TEST(SpscQueueTest, CrossThreadTransfersEverythingInOrder) {
  SpscQueue<uint64_t> q(64);
  constexpr uint64_t kN = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kN; ++i) q.Push(i);
  });
  uint64_t expect = 0;
  uint64_t v;
  while (expect < kN) {
    if (q.TryPop(&v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(SpscQueueTest, PushBoundedSucceedsWhenSpaceAvailable) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.PushBounded(7, /*deadline_ns=*/0), PushResult::kOk);
  int v;
  ASSERT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 7);
}

TEST(SpscQueueTest, PushBoundedZeroDeadlineIsSingleAttempt) {
  SpscQueue<int> q(2);
  while (q.TryPush(1)) {
  }
  const int64_t t0 = MonotonicNowUs();
  EXPECT_EQ(q.PushBounded(9, /*deadline_ns=*/0), PushResult::kTimedOut);
  EXPECT_LT(MonotonicNowUs() - t0, 100'000) << "deadline 0 must not spin";
}

TEST(SpscQueueTest, PushBoundedTimesOutAtDeadline) {
  SpscQueue<int> q(2);
  while (q.TryPush(1)) {
  }
  const int64_t t0 = MonotonicNowNs();
  const int64_t deadline = t0 + 20'000'000;  // 20 ms
  EXPECT_EQ(q.PushBounded(9, deadline), PushResult::kTimedOut);
  const int64_t elapsed = MonotonicNowNs() - t0;
  EXPECT_GE(elapsed, 15'000'000) << "returned well before the deadline";
  EXPECT_LT(elapsed, 2'000'000'000) << "spun far past the deadline";
}

TEST(SpscQueueTest, PushBoundedObservesStopToken) {
  SpscQueue<int> q(2);
  while (q.TryPush(1)) {
  }
  std::atomic<bool> stop{false};
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stop.store(true, std::memory_order_release);
  });
  // Infinite deadline: only the stop token can release the producer.
  EXPECT_EQ(q.PushBounded(9, /*deadline_ns=*/-1, &stop),
            PushResult::kStopped);
  stopper.join();
}

TEST(SpscQueueTest, PushBoundedSucceedsOnceConsumerDrains) {
  SpscQueue<int> q(2);
  while (q.TryPush(1)) {
  }
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    int v;
    ASSERT_TRUE(q.TryPop(&v));
  });
  const int64_t deadline = MonotonicNowNs() + 5'000'000'000;  // generous
  EXPECT_EQ(q.PushBounded(42, deadline), PushResult::kOk);
  consumer.join();
}

// ----------------------------------------------------------- RateLimiter

TEST(RateLimiterTest, UnlimitedNeverBlocks) {
  RateLimiter rl(0);
  EXPECT_TRUE(rl.unlimited());
  const int64_t t0 = MonotonicNowUs();
  for (int i = 0; i < 100000; ++i) rl.Acquire();
  EXPECT_LT(MonotonicNowUs() - t0, 1'000'000);
}

TEST(RateLimiterTest, PacesApproximately) {
  RateLimiter rl(10000);  // 10K/s -> 100 us per permit
  const int64_t t0 = MonotonicNowUs();
  rl.AcquireBatch(500);  // 50 ms worth
  const int64_t elapsed = MonotonicNowUs() - t0;
  EXPECT_GT(elapsed, 30'000);   // should take roughly 50 ms
  EXPECT_LT(elapsed, 500'000);  // generous upper bound for loaded CI
}

// ------------------------------------------------------------ ThreadUtil

TEST(ThreadUtilTest, NumCpusPositive) { EXPECT_GE(NumCpus(), 1); }

TEST(ThreadUtilTest, PinAndNameDoNotCrash) {
  std::thread t([] {
    SetCurrentThreadName("oij-test-thread");
    TryPinCurrentThreadTo(0);
    TryPinCurrentThreadTo(1 << 20);  // out of range: silent no-op
    TryPinCurrentThreadTo(-1);
  });
  t.join();
}

TEST(ThreadUtilTest, BackoffMakesProgress) {
  Backoff b;
  for (int i = 0; i < 100; ++i) b.Pause();
  b.Reset();
  b.Pause();
}

// ----------------------------------------------------------------- Types

TEST(TypesTest, IntervalWindowArithmetic) {
  IntervalWindow w{2'000'000, 0};
  EXPECT_EQ(w.start_for(5'000'000), 3'000'000);
  EXPECT_EQ(w.end_for(5'000'000), 5'000'000);
  EXPECT_EQ(w.length(), 2'000'000);

  IntervalWindow both{1000, 500};
  EXPECT_EQ(both.start_for(0), -1000);
  EXPECT_EQ(both.end_for(0), 500);
}

TEST(TypesTest, ScopedTimerAccumulates) {
  int64_t sink = 0;
  {
    ScopedTimerNs t(&sink);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x += i;
  }
  EXPECT_GT(sink, 0);
  const int64_t first = sink;
  {
    ScopedTimerNs t(&sink);
  }
  EXPECT_GE(sink, first);
}

}  // namespace
}  // namespace oij
