// Loopback integration tests for the network serving layer: a real
// OijServer behind real sockets, driven by a blocking client speaking
// the wire protocol. The headline property is end-to-end exactness —
// results streamed over TCP match the policy-aware reference oracle for
// multiple presets and engines — plus the admin plane (/metrics,
// /healthz, /statz) during and after a run, health degradation under an
// injected watermark freeze, and malformed-frame rejection.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "net/socket.h"
#include "net/wire_codec.h"
#include "server/server.h"
#include "stream/generator.h"
#include "stream/presets.h"
#include "wal/wal_reader.h"

namespace oij {
namespace {

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 15000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Blocking data-plane client with a background reader thread (results
/// stream back while the test is still sending, so reads must be
/// concurrent or the TCP windows deadlock). The collected fields are
/// valid only after JoinReader() returns.
class DataClient {
 public:
  explicit DataClient(uint16_t port) {
    const Status s = ConnectTcp("127.0.0.1", port, &fd_);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (fd_ >= 0) reader_ = std::thread(&DataClient::ReadLoop, this);
  }

  ~DataClient() {
    JoinReader();
    CloseFd(fd_);
  }

  bool Send(const std::string& bytes) {
    return SendAll(fd_, bytes.data(), bytes.size()).ok();
  }

  /// Blocks until the server closes the connection (it does after
  /// answering kFinish, after an error, and on Shutdown).
  void JoinReader() {
    if (reader_.joinable()) reader_.join();
  }

  std::vector<JoinResult> results;
  std::string summary;
  std::vector<std::string> errors;
  bool corrupt = false;

 private:
  void ReadLoop() {
    WireDecoder decoder;
    char buf[16384];
    WireFrame frame;
    while (true) {
      const int64_t n = RecvSome(fd_, buf, sizeof(buf));
      if (n <= 0) return;
      decoder.Feed(buf, static_cast<size_t>(n));
      while (true) {
        const WireDecoder::Result r = decoder.Next(&frame);
        if (r == WireDecoder::Result::kNeedMore) break;
        if (r == WireDecoder::Result::kCorrupt) {
          corrupt = true;
          return;
        }
        if (frame.type == FrameType::kResult) {
          results.push_back(frame.result);
        } else if (frame.type == FrameType::kSummary) {
          summary = frame.text;
        } else if (frame.type == FrameType::kError) {
          errors.push_back(frame.text);
        }
      }
    }
  }

  int fd_ = -1;
  std::thread reader_;
};

/// One blocking HTTP/1.0 GET against the admin port.
std::string HttpGet(uint16_t port, const std::string& path, int* code,
                    const std::string& method = "GET") {
  int fd = -1;
  Status s = ConnectTcp("127.0.0.1", port, &fd);
  EXPECT_TRUE(s.ok()) << s.ToString();
  *code = 0;
  if (fd < 0) return "";
  const std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  s = SendAll(fd, request.data(), request.size());
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::string response;
  char buf[8192];
  int64_t n;
  while ((n = RecvSome(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  CloseFd(fd);
  const size_t sp = response.find(' ');
  if (sp != std::string::npos) {
    *code = std::atoi(response.c_str() + sp + 1);
  }
  const size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

/// One blocking HTTP/1.0 request with a Content-Length body (the shape
/// POST /queries and DELETE /queries/<id> accept).
std::string HttpSend(uint16_t port, const std::string& method,
                     const std::string& path, const std::string& body,
                     int* code) {
  int fd = -1;
  Status s = ConnectTcp("127.0.0.1", port, &fd);
  EXPECT_TRUE(s.ok()) << s.ToString();
  *code = 0;
  if (fd < 0) return "";
  const std::string request = method + " " + path +
                              " HTTP/1.0\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  s = SendAll(fd, request.data(), request.size());
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::string response;
  char buf[8192];
  int64_t n;
  while ((n = RecvSome(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  CloseFd(fd);
  const size_t sp = response.find(' ');
  if (sp != std::string::npos) {
    *code = std::atoi(response.c_str() + sp + 1);
  }
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// Replays `events` through a server over loopback with the same
/// observe-then-punctuate watermark cadence the in-process harness and
/// the reference oracle use, and returns the subscribed-to results.
struct NetworkRun {
  std::vector<ReferenceResult> results;
  std::string summary;
  RunResult final_run;
};

NetworkRun RunOverNetwork(EngineKind kind,
                          const std::vector<StreamEvent>& events,
                          const QuerySpec& spec, EngineOptions options,
                          uint64_t wm_every = 256) {
  NetworkRun out;
  ServerConfig config;
  config.engine = kind;
  config.query = spec;
  config.options = options;
  OijServer server(config);
  const Status s = server.Start();
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (!s.ok()) return out;

  {
    DataClient client(server.data_port());
    std::string batch;
    AppendControlFrame(&batch, FrameType::kSubscribe);
    WatermarkTracker tracker(spec.lateness_us);
    uint64_t n = 0;
    bool io_ok = true;
    for (const StreamEvent& ev : events) {
      tracker.Observe(ev.tuple.ts);
      AppendTupleFrame(&batch, ev);
      if (++n % wm_every == 0) {
        AppendWatermarkFrame(&batch, tracker.watermark());
      }
      if (batch.size() >= 32 * 1024) {
        if (!(io_ok = client.Send(batch))) break;
        batch.clear();
      }
    }
    EXPECT_TRUE(io_ok) << "tuple send failed";
    AppendControlFrame(&batch, FrameType::kFinish);
    EXPECT_TRUE(client.Send(batch));
    client.JoinReader();

    EXPECT_FALSE(client.corrupt) << "server sent a malformed frame";
    EXPECT_TRUE(client.errors.empty())
        << "server error: " << client.errors.front();
    EXPECT_FALSE(client.summary.empty()) << "no summary frame";
    out.summary = client.summary;
    out.results.reserve(client.results.size());
    for (const JoinResult& r : client.results) {
      out.results.push_back({r.base, r.aggregate, r.match_count});
      // Sanity on the wall-clock stamps the wire carries.
      EXPECT_GE(r.emit_us, r.arrival_us);
    }
  }
  server.Shutdown();
  out.final_run = server.FinalRun();
  SortResults(&out.results);
  return out;
}

void ExpectResultsEqual(const std::vector<ReferenceResult>& got,
                        const std::vector<ReferenceResult>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label << ": result cardinality";
  size_t mismatches = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].base != want[i].base ||
        got[i].match_count != want[i].match_count ||
        (!std::isnan(want[i].aggregate) &&
         std::abs(got[i].aggregate - want[i].aggregate) > 1e-6)) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << label << ": result " << i << " differs: base ts="
                      << got[i].base.ts << " key=" << got[i].base.key
                      << " got(count=" << got[i].match_count
                      << ", agg=" << got[i].aggregate << ") want(count="
                      << want[i].match_count << ", agg="
                      << want[i].aggregate << ")";
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << label;
}

// ------------------------------------------------- end-to-end exactness

/// Results served over TCP must equal the policy-aware reference oracle:
/// (preset, engine) sweep with the workload shrunk to loopback scale.
class LoopbackExactnessTest
    : public ::testing::TestWithParam<std::tuple<const char*, EngineKind>> {};

TEST_P(LoopbackExactnessTest, NetworkRunMatchesReferenceOracle) {
  const auto [preset, kind] = GetParam();
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset(preset, &workload));
  workload.total_tuples = 12'000;

  QuerySpec query;
  query.window = workload.window;
  query.lateness_us = workload.lateness_us;
  query.emit_mode = EmitMode::kWatermark;

  const auto events = Generate(workload);
  constexpr uint64_t kWmEvery = 256;
  auto expected = ReferenceJoinWithPolicy(events, query, kWmEvery);
  SortResults(&expected);

  EngineOptions options;
  options.num_joiners = 3;
  const NetworkRun run =
      RunOverNetwork(kind, events, query, options, kWmEvery);

  const std::string label =
      std::string(preset) + "/" + std::string(EngineKindName(kind));
  ExpectResultsEqual(run.results, expected, label);
  EXPECT_EQ(run.final_run.stats.input_tuples, events.size()) << label;
  EXPECT_EQ(run.final_run.stats.results, expected.size()) << label;
}

INSTANTIATE_TEST_SUITE_P(
    PresetsTimesEngines, LoopbackExactnessTest,
    ::testing::Combine(::testing::Values("default", "A", "D"),
                       ::testing::Values(EngineKind::kScaleOij,
                                         EngineKind::kKeyOij)),
    [](const auto& info) {
      std::string name = std::string(std::get<0>(info.param)) + "_" +
                         std::string(EngineKindName(std::get<1>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------------- admin endpoints

TEST(ServerAdminTest, MetricsHealthzStatzDuringAndAfterRun) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 4'000;

  ServerConfig config;
  config.engine = EngineKind::kScaleOij;
  config.query.window = workload.window;
  config.query.lateness_us = workload.lateness_us;
  config.query.emit_mode = EmitMode::kWatermark;
  config.options.num_joiners = 2;
  config.workload_name = "default";
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  int code = 0;
  // Before any traffic: serving, healthy, not finished.
  std::string body = HttpGet(server.admin_port(), "/healthz", &code);
  EXPECT_EQ(code, 200);
  EXPECT_EQ(body, "ok\n");
  body = HttpGet(server.admin_port(), "/statz", &code);
  EXPECT_EQ(code, 200);
  EXPECT_NE(body.find("\"state\":\"serving\""), std::string::npos) << body;
  body = HttpGet(server.admin_port(), "/", &code);
  EXPECT_EQ(code, 200);
  body = HttpGet(server.admin_port(), "/nope", &code);
  EXPECT_EQ(code, 404);
  body = HttpGet(server.admin_port(), "/metrics", &code, "POST");
  EXPECT_EQ(code, 405);

  const auto events = Generate(workload);
  DataClient client(server.data_port());
  std::string batch;
  WatermarkTracker tracker(config.query.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    AppendTupleFrame(&batch, ev);
    if (++n % 256 == 0) AppendWatermarkFrame(&batch, tracker.watermark());
  }
  ASSERT_TRUE(client.Send(batch));
  ASSERT_TRUE(WaitUntil([&] {
    return server.CountersSnapshot().tuples_in == events.size();
  })) << "server never ingested the batch";

  // Mid-run: counters live, run not finished, still healthy.
  body = HttpGet(server.admin_port(), "/metrics", &code);
  EXPECT_EQ(code, 200);
  EXPECT_NE(body.find("oij_up{"), std::string::npos);
  EXPECT_NE(body.find("oij_healthy 1"), std::string::npos);
  EXPECT_NE(body.find("oij_run_finished 0"), std::string::npos);
  EXPECT_NE(body.find("oij_ingest_tuples_total " +
                      std::to_string(events.size())),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("oij_engine_accepted_tuples_total"), std::string::npos);
  EXPECT_NE(body.find("oij_joiner_queue_depth{joiner=\"0\"}"),
            std::string::npos);
  body = HttpGet(server.admin_port(), "/healthz", &code);
  EXPECT_EQ(code, 200);

  std::string finish;
  AppendControlFrame(&finish, FrameType::kFinish);
  ASSERT_TRUE(client.Send(finish));
  client.JoinReader();
  EXPECT_FALSE(client.summary.empty());
  ASSERT_TRUE(WaitUntil([&] { return server.run_finished(); }));

  // Post-run: finished flag flips, the run block appears, histogram and
  // quantile gauges render, healthz stays green.
  body = HttpGet(server.admin_port(), "/metrics", &code);
  EXPECT_EQ(code, 200);
  EXPECT_NE(body.find("oij_run_finished 1"), std::string::npos);
  EXPECT_NE(body.find("oij_run_input_tuples_total " +
                      std::to_string(events.size())),
            std::string::npos);
  EXPECT_NE(body.find("oij_result_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(body.find("oij_result_latency_quantile_us{quantile=\"0.99\"}"),
            std::string::npos);
  body = HttpGet(server.admin_port(), "/healthz", &code);
  EXPECT_EQ(code, 200);
  body = HttpGet(server.admin_port(), "/statz", &code);
  EXPECT_EQ(code, 200);
  EXPECT_NE(body.find("\"state\":\"finished\""), std::string::npos);

  server.Shutdown();
}

TEST(ServerAdminTest, MalformedHttpRequestGets400) {
  ServerConfig config;
  config.options.num_joiners = 1;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  int fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.admin_port(), &fd).ok());
  const std::string junk = "NOT-HTTP\r\n\r\n";
  ASSERT_TRUE(SendAll(fd, junk.data(), junk.size()).ok());
  std::string response;
  char buf[4096];
  int64_t n;
  while ((n = RecvSome(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  CloseFd(fd);
  EXPECT_NE(response.find(" 400 "), std::string::npos) << response;
  server.Shutdown();
}

// ------------------------------------------------ query catalog endpoint

/// The standing-query admin surface: POST /queries adds, GET /queries
/// lists, DELETE /queries/<id> removes — and every malformed, duplicate,
/// or otherwise invalid spec is refused with a structured JSON error
/// body and the right status code, leaving the catalog untouched.
TEST(ServerAdminTest, QueryEndpointAddsListsRejectsAndRemoves) {
  ServerConfig config;
  config.engine = EngineKind::kScaleOij;
  config.query.window = IntervalWindow{400, 0};
  config.query.lateness_us = 50;
  config.query.emit_mode = EmitMode::kWatermark;
  config.options.num_joiners = 2;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.admin_port();
  int code = 0;

  // Happy path, then the listing shows primary + the new query.
  std::string body = HttpSend(
      port, "POST", "/queries",
      "{\"id\":\"q1\",\"pre\":200,\"fol\":0,\"agg\":\"count\"}", &code);
  EXPECT_EQ(code, 200) << body;
  EXPECT_NE(body.find("\"added\":\"q1\""), std::string::npos) << body;
  body = HttpGet(port, "/queries", &code);
  EXPECT_EQ(code, 200);
  EXPECT_NE(body.find("\"id\":\"main\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"id\":\"q1\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"agg\":\"count\""), std::string::npos) << body;

  // Every rejection carries {"error":{"code":...,"message":...}}.
  const auto expect_error = [&](const std::string& reply, int got_code,
                                int want_code, const std::string& want_text) {
    EXPECT_EQ(got_code, want_code) << reply;
    EXPECT_NE(reply.find("\"error\":{\"code\":\""), std::string::npos)
        << reply;
    EXPECT_NE(reply.find("\"message\":\""), std::string::npos) << reply;
    EXPECT_NE(reply.find(want_text), std::string::npos) << reply;
  };

  body = HttpSend(port, "POST", "/queries",
                  "{\"id\":\"q1\",\"pre\":100}", &code);
  expect_error(body, code, 400, "already exists");
  body = HttpSend(port, "POST", "/queries", "{\"id\":\"x\"", &code);
  expect_error(body, code, 400, "malformed");
  body = HttpSend(port, "POST", "/queries", "not json at all", &code);
  expect_error(body, code, 400, "JSON object");
  body = HttpSend(port, "POST", "/queries", "{\"pre\":100}", &code);
  expect_error(body, code, 400, "missing required field 'id'");
  body = HttpSend(port, "POST", "/queries",
                  "{\"id\":\"x\",\"weird\":1}", &code);
  expect_error(body, code, 400, "unknown field 'weird'");
  body = HttpSend(port, "POST", "/queries",
                  "{\"id\":\"x\",\"id\":\"y\"}", &code);
  expect_error(body, code, 400, "duplicate field 'id'");
  body = HttpSend(port, "POST", "/queries",
                  "{\"id\":\"x\",\"pre\":-5}", &code);
  expect_error(body, code, 400, "non-negative");
  body = HttpSend(port, "POST", "/queries",
                  "{\"id\":\"x\",\"agg\":\"median\"}", &code);
  expect_error(body, code, 400, "unknown aggregate");
  // The shared index pins lateness and emit mode to the primary's.
  body = HttpSend(port, "POST", "/queries",
                  "{\"id\":\"x\",\"lateness\":999}", &code);
  expect_error(body, code, 400, "must match the primary");
  body = HttpSend(port, "POST", "/queries",
                  "{\"id\":\"x\",\"emit\":\"eager\"}", &code);
  expect_error(body, code, 400, "must match the primary");

  // None of the rejects touched the catalog.
  body = HttpGet(port, "/queries", &code);
  EXPECT_EQ(body.find("\"id\":\"x\""), std::string::npos) << body;

  // Removal: unknown id is 404, the primary is pinned, a real remove
  // flips the row inactive but keeps it listed.
  body = HttpSend(port, "DELETE", "/queries/ghost", "", &code);
  expect_error(body, code, 404, "NotFound");
  body = HttpSend(port, "DELETE", "/queries/main", "", &code);
  expect_error(body, code, 400, "primary");
  body = HttpSend(port, "DELETE", "/queries/q1", "", &code);
  EXPECT_EQ(code, 200) << body;
  EXPECT_NE(body.find("\"removed\":\"q1\""), std::string::npos) << body;
  body = HttpSend(port, "DELETE", "/queries/q1", "", &code);
  EXPECT_NE(code, 200) << "second remove of the same id must fail";
  body = HttpGet(port, "/queries", &code);
  EXPECT_NE(body.find("\"active\":false"), std::string::npos) << body;

  server.Shutdown();
}

// ------------------------------------------------- health under injection

/// A frozen watermark (fault-injected) must surface on /healthz as 503
/// once the watchdog escalates — the network-visible version of the
/// fault_injection_test abort path.
TEST(ServerHealthTest, HealthzFlips503UnderWatermarkFreeze) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 2'000;

  FaultInjector faults;
  faults.freeze_watermarks_after = 2;

  ServerConfig config;
  config.engine = EngineKind::kScaleOij;
  config.query.window = workload.window;
  config.query.lateness_us = workload.lateness_us;
  config.query.emit_mode = EmitMode::kWatermark;
  config.options.num_joiners = 2;
  config.options.fault_injector = &faults;
  config.options.watchdog.interval_ms = 10;
  config.options.watchdog.watermark_freeze_intervals = 3;
  config.options.watchdog.abort_on_watermark_freeze = true;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  int code = 0;
  HttpGet(server.admin_port(), "/healthz", &code);
  EXPECT_EQ(code, 200) << "healthy before the freeze engages";

  const auto events = Generate(workload);
  DataClient client(server.data_port());
  std::string batch;
  WatermarkTracker tracker(config.query.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    AppendTupleFrame(&batch, ev);
    if (++n % 64 == 0) AppendWatermarkFrame(&batch, tracker.watermark());
  }
  ASSERT_TRUE(client.Send(batch));

  // Freeze detection needs input advancing while punctuation stays
  // frozen, so keep both tuples and (swallowed) watermarks coming while
  // the watchdog samples.
  Timestamp filler_ts = tracker.watermark();
  const bool flipped = WaitUntil([&] {
    std::string more;
    StreamEvent filler;
    filler.stream = StreamId::kProbe;
    filler.tuple.ts = ++filler_ts;
    AppendTupleFrame(&more, filler);
    AppendWatermarkFrame(&more, tracker.watermark());
    client.Send(more);
    int c = 0;
    HttpGet(server.admin_port(), "/healthz", &c);
    return c == 503;
  });
  EXPECT_TRUE(flipped) << "healthz never reported the frozen watermark";

  const std::string metrics = HttpGet(server.admin_port(), "/metrics", &code);
  EXPECT_NE(metrics.find("oij_healthy 0"), std::string::npos);

  server.Shutdown();
  client.JoinReader();
}

// ----------------------------------------------------- protocol rejection

TEST(ServerProtocolTest, GarbageFrameGetsErrorAndCleanCloseAndIsCounted) {
  ServerConfig config;
  config.options.num_joiners = 1;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  {
    DataClient client(server.data_port());
    std::string junk;
    junk.push_back(1);
    junk.append(3, '\0');
    junk.push_back(static_cast<char>(0x7f));  // unknown frame type
    ASSERT_TRUE(client.Send(junk));
    client.JoinReader();  // server must close after the error frame
    ASSERT_EQ(client.errors.size(), 1u);
    EXPECT_NE(client.errors[0].find("unknown frame type"), std::string::npos)
        << client.errors[0];
  }
  EXPECT_EQ(server.CountersSnapshot().frames_rejected, 1u);

  {
    // An oversized length prefix dies before any payload arrives.
    DataClient client(server.data_port());
    std::string huge(4, '\0');
    huge[3] = static_cast<char>(0x7f);  // ~2 GB little-endian length
    ASSERT_TRUE(client.Send(huge));
    client.JoinReader();
    ASSERT_EQ(client.errors.size(), 1u);
  }
  EXPECT_EQ(server.CountersSnapshot().frames_rejected, 2u);

  int code = 0;
  const std::string body = HttpGet(server.admin_port(), "/metrics", &code);
  EXPECT_NE(body.find("oij_frames_rejected_total 2"), std::string::npos);
  server.Shutdown();
}

TEST(ServerProtocolTest, TupleAfterFinishIsRejected) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 500;

  ServerConfig config;
  config.query.window = workload.window;
  config.query.lateness_us = workload.lateness_us;
  config.query.emit_mode = EmitMode::kWatermark;
  config.options.num_joiners = 1;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  {
    DataClient client(server.data_port());
    std::string batch;
    for (const StreamEvent& ev : Generate(workload)) {
      AppendTupleFrame(&batch, ev);
    }
    AppendControlFrame(&batch, FrameType::kFinish);
    ASSERT_TRUE(client.Send(batch));
    client.JoinReader();
    EXPECT_FALSE(client.summary.empty());
  }
  ASSERT_TRUE(server.run_finished());

  DataClient late(server.data_port());
  std::string tuple;
  StreamEvent ev;
  ev.tuple.ts = 1;
  AppendTupleFrame(&tuple, ev);
  ASSERT_TRUE(late.Send(tuple));
  late.JoinReader();
  ASSERT_EQ(late.errors.size(), 1u);
  EXPECT_NE(late.errors[0].find("finalized"), std::string::npos);

  // A second kFinish from a latecomer still gets the stored summary.
  DataClient again(server.data_port());
  std::string fin;
  AppendControlFrame(&fin, FrameType::kFinish);
  ASSERT_TRUE(again.Send(fin));
  again.JoinReader();
  EXPECT_FALSE(again.summary.empty());

  server.Shutdown();
}

// ------------------------------------------------------ durability drain

/// Shutdown() (the SIGINT/SIGTERM path in tools/oij_server.cc) must run
/// the engine's Sync() barrier before finalizing: with the WAL on
/// --fsync none nothing else flushes the log, so every accepted record
/// being readable back from disk proves the barrier ran. Also pins the
/// admin-plane durability surfaces while the run is live.
TEST(ServerDurabilityTest, ShutdownDrainSyncsWalUnderFsyncNone) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 2'000;

  char tmpl[] = "/tmp/oij_server_wal_XXXXXX";
  char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  ServerConfig config;
  config.engine = EngineKind::kKeyOij;
  config.query.window = workload.window;
  config.query.lateness_us = workload.lateness_us;
  config.query.emit_mode = EmitMode::kWatermark;
  config.options.num_joiners = 2;
  config.options.durability.wal_dir = dir;
  config.options.durability.fsync = FsyncPolicy::kNone;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  const auto events = Generate(workload);
  constexpr uint64_t kWmEvery = 128;
  uint64_t watermarks_sent = 0;
  {
    DataClient client(server.data_port());
    std::string batch;
    WatermarkTracker tracker(config.query.lateness_us);
    uint64_t n = 0;
    for (const StreamEvent& ev : events) {
      tracker.Observe(ev.tuple.ts);
      AppendTupleFrame(&batch, ev);
      if (++n % kWmEvery == 0) {
        AppendWatermarkFrame(&batch, tracker.watermark());
        ++watermarks_sent;
      }
    }
    ASSERT_TRUE(client.Send(batch));  // no kFinish: drain an open run
    ASSERT_TRUE(WaitUntil([&] {
      return server.CountersSnapshot().tuples_in == events.size();
    }));

    // Live admin plane carries the WAL block once durability is on.
    int code = 0;
    std::string body = HttpGet(server.admin_port(), "/metrics", &code);
    EXPECT_EQ(code, 200);
    EXPECT_NE(body.find("oij_wal_appended_bytes"), std::string::npos);
    EXPECT_NE(body.find("oij_wal_fsyncs_total"), std::string::npos);
    body = HttpGet(server.admin_port(), "/statz", &code);
    EXPECT_EQ(code, 200);
    EXPECT_NE(body.find("\"wal\":{"), std::string::npos) << body;

    server.Shutdown();
    client.JoinReader();
  }

  WalReplayPlan plan;
  const Status s = BuildReplayPlan(dir, &plan);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(plan.torn_tails, 0u);
  uint64_t tuple_records = 0, watermark_records = 0;
  for (const WalReplayRecord& r : plan.records) {
    if (r.is_watermark) {
      ++watermark_records;
    } else {
      ++tuple_records;
    }
  }
  EXPECT_EQ(tuple_records, events.size())
      << "Shutdown() dropped accepted records despite the Sync barrier";
  EXPECT_EQ(watermark_records, watermarks_sent);

  const std::string cleanup = std::string("rm -rf '") + dir + "'";
  EXPECT_EQ(std::system(cleanup.c_str()), 0);
}

// ---------------------------------------------------- hello handshake

/// DataClient plus the handshake surfaces: the kHello reply and the
/// kWatermarkAck stream a hello'd peer may request.
class HandshakeClient {
 public:
  explicit HandshakeClient(uint16_t port) {
    const Status s = ConnectTcp("127.0.0.1", port, &fd_);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (fd_ >= 0) reader_ = std::thread(&HandshakeClient::ReadLoop, this);
  }

  ~HandshakeClient() {
    JoinReader();
    CloseFd(fd_);
  }

  bool Send(const std::string& bytes) {
    return SendAll(fd_, bytes.data(), bytes.size()).ok();
  }

  void JoinReader() {
    if (reader_.joinable()) reader_.join();
  }

  std::vector<HelloInfo> hellos;
  std::vector<std::pair<Timestamp, uint64_t>> acks;  // (watermark, tuples)
  std::vector<JoinResult> results;
  std::string summary;
  std::vector<std::string> errors;
  bool corrupt = false;

 private:
  void ReadLoop() {
    WireDecoder decoder;
    char buf[16384];
    WireFrame frame;
    while (true) {
      const int64_t n = RecvSome(fd_, buf, sizeof(buf));
      if (n <= 0) return;
      decoder.Feed(buf, static_cast<size_t>(n));
      while (true) {
        const WireDecoder::Result r = decoder.Next(&frame);
        if (r == WireDecoder::Result::kNeedMore) break;
        if (r == WireDecoder::Result::kCorrupt) {
          corrupt = true;
          return;
        }
        switch (frame.type) {
          case FrameType::kHello:
            hellos.push_back(frame.hello);
            break;
          case FrameType::kWatermarkAck:
            acks.emplace_back(frame.watermark, frame.ack_tuples);
            break;
          case FrameType::kResult:
            results.push_back(frame.result);
            break;
          case FrameType::kSummary:
            summary = frame.text;
            break;
          case FrameType::kError:
            errors.push_back(frame.text);
            break;
          default:
            break;
        }
      }
    }
  }

  int fd_ = -1;
  std::thread reader_;
};

/// A hello'd peer that requests acks gets exactly one kWatermarkAck per
/// applied watermark, in order, with a nondecreasing tuple count — and
/// a durable-exact server (per_batch + recover-to-watermark) advertises
/// that in its hello reply, which is what the router's sticky-replay
/// decision keys on.
TEST(ServerHandshakeTest, HelloNegotiatesAcksAndDurableExactFlag) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 1'500;

  char tmpl[] = "/tmp/oij_server_hello_XXXXXX";
  char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  ServerConfig config;
  config.engine = EngineKind::kKeyOij;
  config.query.window = workload.window;
  config.query.lateness_us = workload.lateness_us;
  config.query.emit_mode = EmitMode::kWatermark;
  config.options.num_joiners = 1;
  config.options.durability.wal_dir = dir;
  config.options.durability.fsync = FsyncPolicy::kPerBatch;
  config.options.durability.recover_to_watermark = true;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  const auto events = Generate(workload);
  constexpr uint64_t kWmEvery = 128;
  std::vector<Timestamp> sent_watermarks;
  {
    HandshakeClient client(server.data_port());
    std::string batch;
    HelloInfo hello;
    hello.flags = kHelloWantAcks;
    AppendHelloFrame(&batch, hello);
    WatermarkTracker tracker(config.query.lateness_us);
    uint64_t n = 0;
    for (const StreamEvent& ev : events) {
      tracker.Observe(ev.tuple.ts);
      AppendTupleFrame(&batch, ev);
      if (++n % kWmEvery == 0) {
        AppendWatermarkFrame(&batch, tracker.watermark());
        sent_watermarks.push_back(tracker.watermark());
      }
    }
    AppendControlFrame(&batch, FrameType::kFinish);
    ASSERT_TRUE(client.Send(batch));
    client.JoinReader();

    EXPECT_FALSE(client.corrupt);
    ASSERT_TRUE(client.errors.empty())
        << "server error: " << client.errors.front();
    ASSERT_EQ(client.hellos.size(), 1u) << "no hello reply";
    EXPECT_TRUE(client.hellos[0].Compatible());
    EXPECT_NE(client.hellos[0].flags & kHelloDurableExact, 0)
        << "per_batch + recover-to-watermark server must advertise "
           "durable-exact";
    EXPECT_EQ(client.hellos[0].recovered_watermark, kMinTimestamp)
        << "fresh server advertised a recovered watermark";

    ASSERT_EQ(client.acks.size(), sent_watermarks.size())
        << "one ack per applied watermark";
    for (size_t i = 0; i < client.acks.size(); ++i) {
      EXPECT_EQ(client.acks[i].first, sent_watermarks[i]) << "ack " << i;
      if (i > 0) {
        EXPECT_GE(client.acks[i].second, client.acks[i - 1].second)
            << "acked tuple count regressed";
      }
    }
    // The last ack certifies the tuples received up to that watermark;
    // the tail past the final punctuation is unacked by design.
    EXPECT_EQ(client.acks.back().second,
              (events.size() / kWmEvery) * kWmEvery);
    EXPECT_FALSE(client.summary.empty());
  }
  EXPECT_EQ(server.CountersSnapshot().watermark_acks, sent_watermarks.size());

  server.Shutdown();
  const std::string cleanup = std::string("rm -rf '") + dir + "'";
  EXPECT_EQ(std::system(cleanup.c_str()), 0);
}

/// A hello from the wrong protocol era (or in the wrong place) must be
/// refused with a clean kError frame — never by poisoning the decoder —
/// and the next well-formed connection must work.
TEST(ServerHandshakeTest, MismatchedOrMisplacedHelloRejectedCleanly) {
  ServerConfig config;
  config.options.num_joiners = 1;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  {  // Future version: syntactically valid, semantically refused.
    HandshakeClient client(server.data_port());
    std::string bytes;
    HelloInfo hello;
    hello.version = kWireVersion + 7;
    AppendHelloFrame(&bytes, hello);
    ASSERT_TRUE(client.Send(bytes));
    client.JoinReader();
    EXPECT_FALSE(client.corrupt) << "rejection poisoned the decoder";
    ASSERT_EQ(client.errors.size(), 1u);
    EXPECT_NE(client.errors[0].find("version"), std::string::npos)
        << client.errors[0];
    EXPECT_TRUE(client.hellos.empty());
  }
  EXPECT_EQ(server.CountersSnapshot().hellos_rejected, 1u);

  {  // Hello as the second frame is a protocol error.
    HandshakeClient client(server.data_port());
    std::string bytes;
    AppendWatermarkFrame(&bytes, 1);
    HelloInfo hello;
    AppendHelloFrame(&bytes, hello);
    ASSERT_TRUE(client.Send(bytes));
    client.JoinReader();
    EXPECT_FALSE(client.corrupt);
    ASSERT_EQ(client.errors.size(), 1u);
  }
  EXPECT_EQ(server.CountersSnapshot().hellos_rejected, 2u);

  {  // The data plane is not wedged for well-behaved peers.
    HandshakeClient client(server.data_port());
    std::string bytes;
    HelloInfo hello;
    AppendHelloFrame(&bytes, hello);
    AppendControlFrame(&bytes, FrameType::kFinish);
    ASSERT_TRUE(client.Send(bytes));
    client.JoinReader();
    ASSERT_EQ(client.hellos.size(), 1u);
    EXPECT_TRUE(client.errors.empty());
    EXPECT_FALSE(client.summary.empty());
  }

  server.Shutdown();
}

// ------------------------------------------- subscriber disconnection

/// Regression for the mid-run subscriber disconnect: a subscriber that
/// vanishes (EPIPE/ECONNRESET on its egress) must be evicted from the
/// fan-out set, and the run must complete exactly for everyone else.
TEST(ServerSubscriberTest, DeadSubscriberIsEvictedAndRunCompletesExactly) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 4'000;

  QuerySpec query;
  query.window = workload.window;
  query.lateness_us = workload.lateness_us;
  query.emit_mode = EmitMode::kWatermark;

  ServerConfig config;
  config.engine = EngineKind::kScaleOij;
  config.query = query;
  config.options.num_joiners = 2;
  OijServer server(config);
  ASSERT_TRUE(server.Start().ok());

  // The doomed subscriber: subscribes, then vanishes without so much as
  // a FIN handshake dance — the server discovers it on egress.
  int doomed = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.data_port(), &doomed).ok());
  {
    std::string sub;
    AppendControlFrame(&sub, FrameType::kSubscribe);
    ASSERT_TRUE(SendAll(doomed, sub.data(), sub.size()).ok());
  }
  ASSERT_TRUE(WaitUntil([&] {
    return server.CountersSnapshot().subscribers == 1;
  }));

  const auto events = Generate(workload);
  constexpr uint64_t kWmEvery = 256;
  DataClient client(server.data_port());
  std::string batch;
  AppendControlFrame(&batch, FrameType::kSubscribe);
  WatermarkTracker tracker(query.lateness_us);
  uint64_t n = 0;
  size_t half = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    AppendTupleFrame(&batch, ev);
    if (++n % kWmEvery == 0) AppendWatermarkFrame(&batch, tracker.watermark());
    if (n == events.size() / 2) {
      // Half the stream in, kill the subscriber mid-run.
      ASSERT_TRUE(client.Send(batch));
      batch.clear();
      half = n;
      ASSERT_TRUE(WaitUntil([&] {
        return server.CountersSnapshot().tuples_in >= half;
      }));
      CloseFd(doomed);
      doomed = -1;
    }
  }
  AppendControlFrame(&batch, FrameType::kFinish);
  ASSERT_TRUE(client.Send(batch));
  client.JoinReader();

  // The run completed for the surviving subscriber, exactly.
  EXPECT_TRUE(client.errors.empty())
      << "server error: " << client.errors.front();
  ASSERT_FALSE(client.summary.empty()) << "dead subscriber wedged the run";
  std::vector<ReferenceResult> got;
  got.reserve(client.results.size());
  for (const JoinResult& r : client.results) {
    got.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&got);
  auto expected = ReferenceJoinWithPolicy(events, query, kWmEvery);
  SortResults(&expected);
  ExpectResultsEqual(got, expected, "surviving subscriber");

  // And the dead one is actually gone from the connection table.
  EXPECT_TRUE(WaitUntil([&] {
    return server.CountersSnapshot().connections_open == 0;
  })) << "dead subscriber connection never cleaned up";

  server.Shutdown();
}

}  // namespace
}  // namespace oij
