#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace oij {
namespace {

constexpr const char* kPaperQuery = R"sql(
SELECT sum(col2) OVER w1 FROM S
WINDOW w1 AS (
  UNION R
  PARTITION BY key
  ORDER BY timestamp
  ROWS_RANGE BETWEEN 1s PRECEDING AND 1s FOLLOWING);
)sql";

// ------------------------------------------------------------------ lexer

TEST(LexerTest, TokenizesKeywordsCaseInsensitively) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("select Sum FROM window", &tokens).ok());
  ASSERT_EQ(tokens.size(), 5u);  // 4 tokens + EOF
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);  // "Sum" is not a kw
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[3].IsKeyword("WINDOW"));
  EXPECT_EQ(tokens[4].type, TokenType::kEof);
}

TEST(LexerTest, DurationsFoldToMicroseconds) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("1s 150ms 100us 2m 1h 3d", &tokens).ok());
  EXPECT_EQ(tokens[0].value, 1'000'000);
  EXPECT_EQ(tokens[1].value, 150'000);
  EXPECT_EQ(tokens[2].value, 100);
  EXPECT_EQ(tokens[3].value, 120'000'000);
  EXPECT_EQ(tokens[4].value, 3'600'000'000LL);
  EXPECT_EQ(tokens[5].value, 259'200'000'000LL);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kDuration);
  }
}

TEST(LexerTest, BareNumbersStayNumbers) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("1000", &tokens).ok());
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].value, 1000);
}

TEST(LexerTest, RejectsUnknownUnitAndCharacters) {
  std::vector<Token> tokens;
  EXPECT_FALSE(Tokenize("5parsecs", &tokens).ok());
  EXPECT_FALSE(Tokenize("SELECT @", &tokens).ok());
}

TEST(LexerTest, SkipsLineComments) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("SELECT -- the agg\n sum", &tokens).ok());
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].text, "sum");
}

TEST(LexerTest, PunctuationAndOffsets) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Tokenize("(a, b);", &tokens).ok());
  EXPECT_EQ(tokens[0].type, TokenType::kLParen);
  EXPECT_EQ(tokens[2].type, TokenType::kComma);
  EXPECT_EQ(tokens[4].type, TokenType::kRParen);
  EXPECT_EQ(tokens[5].type, TokenType::kSemicolon);
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 1u);
}

// ----------------------------------------------------------------- parser

TEST(ParserTest, ParsesThePaperQuery) {
  ParsedQuery q;
  ASSERT_TRUE(ParseQuery(kPaperQuery, &q).ok());
  EXPECT_EQ(q.agg_func, "sum");
  EXPECT_EQ(q.agg_column, "col2");
  EXPECT_EQ(q.base_table, "S");
  EXPECT_EQ(q.probe_table, "R");
  EXPECT_EQ(q.window_name, "w1");
  EXPECT_EQ(q.partition_column, "key");
  EXPECT_EQ(q.order_column, "timestamp");
  EXPECT_EQ(q.preceding.offset_us, 1'000'000);
  EXPECT_EQ(q.following.offset_us, 1'000'000);
  EXPECT_FALSE(q.preceding.current_row);
  EXPECT_EQ(q.lateness_us, -1);
}

TEST(ParserTest, CurrentRowBound) {
  ParsedQuery q;
  ASSERT_TRUE(ParseQuery(
                  "SELECT count(x) OVER w FROM S WINDOW w AS (UNION R "
                  "PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 2s "
                  "PRECEDING AND CURRENT ROW)",
                  &q)
                  .ok());
  EXPECT_TRUE(q.following.current_row);
  EXPECT_EQ(q.following.offset_us, 0);
  EXPECT_EQ(q.preceding.offset_us, 2'000'000);
}

TEST(ParserTest, LatenessExtension) {
  ParsedQuery q;
  ASSERT_TRUE(ParseQuery(
                  "SELECT avg(v) OVER w FROM S WINDOW w AS (UNION R "
                  "PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 1s "
                  "PRECEDING AND CURRENT ROW LATENESS 100ms)",
                  &q)
                  .ok());
  EXPECT_EQ(q.lateness_us, 100'000);
}

TEST(ParserTest, BareNumberBoundDefaultsToMilliseconds) {
  ParsedQuery q;
  ASSERT_TRUE(ParseQuery(
                  "SELECT sum(v) OVER w FROM S WINDOW w AS (UNION R "
                  "PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 1000 "
                  "PRECEDING AND CURRENT ROW)",
                  &q)
                  .ok());
  EXPECT_EQ(q.preceding.offset_us, 1'000'000);
}

TEST(ParserTest, WindowNameMismatchRejected) {
  ParsedQuery q;
  const Status s = ParseQuery(
      "SELECT sum(v) OVER w1 FROM S WINDOW w2 AS (UNION R PARTITION BY k "
      "ORDER BY ts ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)",
      &q);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kParseError);
}

TEST(ParserTest, ErrorsCarryOffsets) {
  ParsedQuery q;
  const Status s = ParseQuery("SELECT sum(v) FROM", &q);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("offset"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  ParsedQuery q;
  EXPECT_FALSE(ParseQuery(
                   "SELECT sum(v) OVER w FROM S WINDOW w AS (UNION R "
                   "PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 1s "
                   "PRECEDING AND CURRENT ROW); extra",
                   &q)
                   .ok());
}

TEST(ParserTest, RejectsMissingPieces) {
  ParsedQuery q;
  EXPECT_FALSE(ParseQuery("", &q).ok());
  EXPECT_FALSE(ParseQuery("SELECT", &q).ok());
  EXPECT_FALSE(ParseQuery(
                   "SELECT sum(v) OVER w FROM S WINDOW w AS (UNION R "
                   "ORDER BY ts ROWS_RANGE BETWEEN 1s PRECEDING AND "
                   "CURRENT ROW)",
                   &q)
                   .ok())
      << "missing PARTITION BY";
}

// ----------------------------------------------------------------- binder

TEST(BinderTest, BindsPaperQueryToSpec) {
  QuerySpec spec;
  ParsedQuery parsed;
  ASSERT_TRUE(CompileQuery(kPaperQuery, &spec, &parsed).ok());
  EXPECT_EQ(spec.agg, AggKind::kSum);
  EXPECT_EQ(spec.window.pre, 1'000'000);
  EXPECT_EQ(spec.window.fol, 1'000'000);
  EXPECT_EQ(spec.lateness_us, 0) << "no LATENESS clause -> in-order";
  EXPECT_EQ(parsed.base_table, "S");
}

TEST(BinderTest, BindsLateness) {
  QuerySpec spec;
  ASSERT_TRUE(CompileQuery(
                  "SELECT count(v) OVER w FROM S WINDOW w AS (UNION R "
                  "PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 500us "
                  "PRECEDING AND CURRENT ROW LATENESS 2s)",
                  &spec)
                  .ok());
  EXPECT_EQ(spec.agg, AggKind::kCount);
  EXPECT_EQ(spec.window.pre, 500);
  EXPECT_EQ(spec.window.fol, 0);
  EXPECT_EQ(spec.lateness_us, 2'000'000);
}

TEST(BinderTest, UnknownAggregateRejected) {
  QuerySpec spec;
  const Status s = CompileQuery(
      "SELECT median(v) OVER w FROM S WINDOW w AS (UNION R PARTITION BY k "
      "ORDER BY ts ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)",
      &spec);
  EXPECT_FALSE(s.ok());
}

TEST(BinderTest, AllAggregatesBind) {
  for (const char* agg : {"sum", "count", "avg", "min", "max"}) {
    QuerySpec spec;
    const std::string sql =
        std::string("SELECT ") + agg +
        "(v) OVER w FROM S WINDOW w AS (UNION R PARTITION BY k ORDER BY "
        "ts ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)";
    EXPECT_TRUE(CompileQuery(sql, &spec).ok()) << agg;
  }
}

}  // namespace
}  // namespace oij
