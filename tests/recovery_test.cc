// Crash-recovery exactness tests (in-process): run an engine with
// durability on, crash it mid-stream with CrashForTest (the kill -9
// model: buffered WAL bytes drop, no final flush), recover a second
// engine from the same directory, feed it the rest of the stream, and
// diff the union of everything either engine emitted against the
// policy-aware reference oracle over the full input.
//
// Under fsync=per_batch every watermark broadcast is preceded by a full
// sync, so crashing right after a punctuation loses nothing and the
// diff must be *exact* — across both index engines, both lateness
// policies, with and without snapshots/truncation, and under injected
// disk faults the result may only shrink (bounded loss), never corrupt.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "stream/generator.h"
#include "wal/wal_reader.h"

namespace oij {
namespace {

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/oij_recovery_test_XXXXXX";
    char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path_ = p;
  }
  ~TempDir() {
    if (path_.empty()) return;
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

WorkloadSpec RecoveryWorkload(uint64_t seed) {
  WorkloadSpec w;
  w.num_keys = 16;
  w.window = IntervalWindow{500, 0};
  w.lateness_us = 80;
  w.disorder_bound_us = 80;
  w.total_tuples = 12'000;
  w.seed = seed;
  return w;
}

QuerySpec RecoveryQuery(LatePolicy policy) {
  QuerySpec q;
  q.window = IntervalWindow{500, 0};
  q.lateness_us = 80;
  q.emit_mode = EmitMode::kWatermark;
  q.late_policy = policy;
  return q;
}

using BaseKey = std::tuple<Timestamp, Key, double>;

/// Union-dedupe by base tuple: replay re-emits results the first run
/// already externalized (at-least-once across a crash), so a map keyed
/// by base collapses them. With durable inputs (per_batch) both copies
/// must agree; in a lossy regime (interval with an unsynced tail) the
/// re-emission may have *fewer* matches — its probes died in the tail —
/// so keep the most complete copy instead of asserting agreement.
void Accumulate(std::map<BaseKey, JoinResult>* acc,
                const std::vector<JoinResult>& results,
                const std::string& label, bool lossy = false) {
  for (const JoinResult& r : results) {
    const BaseKey key{r.base.ts, r.base.key, r.base.payload};
    const auto [it, inserted] = acc->emplace(key, r);
    if (!inserted) {
      if (lossy) {
        if (r.match_count > it->second.match_count) it->second = r;
      } else {
        EXPECT_EQ(it->second.match_count, r.match_count)
            << label << ": replayed duplicate disagrees with the original";
      }
    }
  }
}

void ExpectUnionExact(const std::map<BaseKey, JoinResult>& got,
                      const std::vector<ReferenceResult>& expected,
                      const std::string& label) {
  ASSERT_EQ(got.size(), expected.size()) << label << ": cardinality";
  size_t mismatches = 0;
  for (const ReferenceResult& want : expected) {
    const auto it =
        got.find(BaseKey{want.base.ts, want.base.key, want.base.payload});
    if (it == got.end()) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << label << ": missing base ts=" << want.base.ts
                      << " key=" << want.base.key;
      }
      continue;
    }
    if (it->second.match_count != want.match_count ||
        std::abs(it->second.aggregate - want.aggregate) > 1e-6) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << label << ": base ts=" << want.base.ts
                      << " got(count=" << it->second.match_count
                      << ", agg=" << it->second.aggregate << ") want(count="
                      << want.match_count << ", agg=" << want.aggregate
                      << ")";
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << label;
}

struct CrashRunResult {
  std::map<BaseKey, JoinResult> results;
  EngineStats recovered_stats;
  WalStats recovered_wal;
};

/// Drives `events` through two engine incarnations sharing one WAL dir:
/// the first processes `crash_at` arrivals (a multiple of `wm_every`,
/// so the punctuation cadence matches the oracle) and is then crashed;
/// the second recovers and finishes the stream.
CrashRunResult CrashAndRecover(EngineKind kind, const QuerySpec& query,
                               const EngineOptions& base_options,
                               const std::vector<StreamEvent>& events,
                               size_t crash_at, uint64_t wm_every,
                               const std::string& label,
                               bool lossy = false) {
  CrashRunResult out;
  WatermarkTracker tracker(query.lateness_us);

  CollectingSink sink1;
  auto engine1 = CreateEngine(kind, query, base_options, &sink1);
  EXPECT_TRUE(engine1->Start().ok()) << label;
  uint64_t n = 0;
  for (size_t i = 0; i < crash_at; ++i) {
    tracker.Observe(events[i].tuple.ts);
    engine1->Push(events[i], MonotonicNowUs());
    if (++n % wm_every == 0) engine1->SignalWatermark(tracker.watermark());
  }
  // Crash immediately after the last punctuation: under per_batch the
  // sync barrier ran before that watermark was broadcast, so the whole
  // prefix is durable and recovery must be exact.
  static_cast<ParallelEngineBase*>(engine1.get())->CrashForTest();
  Accumulate(&out.results, sink1.TakeResults(), label + "/pre-crash", lossy);

  CollectingSink sink2;
  auto engine2 = CreateEngine(kind, query, base_options, &sink2);
  EXPECT_TRUE(engine2->Start().ok()) << label;
  EXPECT_TRUE(engine2->Recover().ok()) << label;
  EXPECT_FALSE(engine2->Recovering()) << label;
  out.recovered_wal = engine2->SampleWal();
  for (size_t i = crash_at; i < events.size(); ++i) {
    tracker.Observe(events[i].tuple.ts);
    engine2->Push(events[i], MonotonicNowUs());
    if (++n % wm_every == 0) engine2->SignalWatermark(tracker.watermark());
  }
  out.recovered_stats = engine2->Finish();
  Accumulate(&out.results, sink2.TakeResults(), label + "/recovered", lossy);
  return out;
}

// -------------------------------------------- exactness grid (per_batch)

class RecoveryExactnessTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, LatePolicy>> {};

TEST_P(RecoveryExactnessTest, CrashAfterBarrierRecoversExactly) {
  const auto [kind, policy] = GetParam();
  WorkloadSpec w = RecoveryWorkload(901);
  if (policy == LatePolicy::kDropAndCount) {
    // Give the gate something to drop so the policies actually diverge;
    // replay must reproduce every drop decision.
    w.late_flood_fraction = 0.10;
    w.late_flood_extra_us = 60;
  }
  const auto events = Generate(w);
  const QuerySpec query = RecoveryQuery(policy);
  constexpr uint64_t kWmEvery = 64;
  const size_t crash_at = (events.size() / 2 / kWmEvery) * kWmEvery;

  auto expected = ReferenceJoinWithPolicy(events, query, kWmEvery);

  TempDir dir;
  EngineOptions options;
  options.num_joiners = 3;
  options.durability.wal_dir = dir.path();
  options.durability.fsync = FsyncPolicy::kPerBatch;
  options.durability.snapshot_interval_records = 3'000;

  const std::string label = std::string(EngineKindName(kind)) + "/" +
                            std::string(LatePolicyName(policy));
  const CrashRunResult run = CrashAndRecover(kind, query, options, events,
                                             crash_at, kWmEvery, label);

  EXPECT_GT(run.recovered_wal.replay_records, 0u) << label;
  EXPECT_GT(run.recovered_wal.replay_watermarks, 0u) << label;
  EXPECT_GE(run.recovered_wal.recovery_duration_us, 0) << label;
  ExpectUnionExact(run.results, expected, label);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesTimesPolicies, RecoveryExactnessTest,
    ::testing::Combine(::testing::Values(EngineKind::kKeyOij,
                                         EngineKind::kScaleOij),
                       ::testing::Values(LatePolicy::kBestEffortJoin,
                                         LatePolicy::kDropAndCount)),
    [](const auto& info) {
      std::string name =
          std::string(EngineKindName(std::get<0>(info.param))) + "_" +
          std::string(LatePolicyName(std::get<1>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------------- snapshot paths

/// Aggressive snapshot cadence: several epochs commit and truncate the
/// log before the crash, so recovery exercises snapshot + suffix rather
/// than a full-log replay (asserted via the stats).
TEST(RecoverySnapshotTest, RecoversFromSnapshotPlusSuffix) {
  const auto events = Generate(RecoveryWorkload(902));
  const QuerySpec query = RecoveryQuery(LatePolicy::kBestEffortJoin);
  constexpr uint64_t kWmEvery = 64;
  const size_t crash_at = (events.size() * 3 / 4 / kWmEvery) * kWmEvery;
  auto expected = ReferenceJoinWithPolicy(events, query, kWmEvery);

  TempDir dir;
  EngineOptions options;
  options.num_joiners = 2;
  options.durability.wal_dir = dir.path();
  options.durability.fsync = FsyncPolicy::kPerBatch;
  options.durability.snapshot_interval_records = 1'000;

  const CrashRunResult run =
      CrashAndRecover(EngineKind::kScaleOij, query, options, events,
                      crash_at, kWmEvery, "snapshot-suffix");
  ExpectUnionExact(run.results, expected, "snapshot-suffix");
  // Snapshots committed before the crash; the replayed record count must
  // be well below the full prefix (truncation actually happened).
  EXPECT_GT(run.recovered_wal.replay_records, 0u);
  EXPECT_LT(run.recovered_wal.replay_records, crash_at)
      << "recovery replayed the whole log; snapshots never truncated it";
}

/// Snapshots off: recovery replays the entire logged prefix.
TEST(RecoverySnapshotTest, LogOnlyRecoveryReplaysWholePrefix) {
  const auto events = Generate(RecoveryWorkload(903));
  const QuerySpec query = RecoveryQuery(LatePolicy::kBestEffortJoin);
  constexpr uint64_t kWmEvery = 64;
  const size_t crash_at = (events.size() / 3 / kWmEvery) * kWmEvery;
  auto expected = ReferenceJoinWithPolicy(events, query, kWmEvery);

  TempDir dir;
  EngineOptions options;
  options.num_joiners = 2;
  options.durability.wal_dir = dir.path();
  options.durability.fsync = FsyncPolicy::kPerBatch;

  const CrashRunResult run =
      CrashAndRecover(EngineKind::kKeyOij, query, options, events, crash_at,
                      kWmEvery, "log-only");
  ExpectUnionExact(run.results, expected, "log-only");
  EXPECT_EQ(run.recovered_wal.replay_records, crash_at);
}

// ------------------------------------------------- bounded loss (interval)

/// With a lax fsync policy and an unflushed tail at the crash, results
/// may only *shrink* relative to the oracle: every recovered result must
/// match a reference base with at most its matches (probes lost from the
/// tail remove matches, never invent them), and the documented loss
/// bound (appended - synced at crash) caps the damage.
TEST(RecoveryLossBoundTest, IntervalPolicyLosesAtMostTheUnsyncedTail) {
  const auto events = Generate(RecoveryWorkload(904));
  const QuerySpec query = RecoveryQuery(LatePolicy::kBestEffortJoin);
  constexpr uint64_t kWmEvery = 64;
  // Crash NOT on a punctuation boundary: a partial batch is in flight.
  const size_t crash_at = events.size() / 2 + 17;
  auto expected = ReferenceJoinWithPolicy(events, query, kWmEvery);
  std::map<BaseKey, ReferenceResult> index;
  for (const ReferenceResult& r : expected) {
    index.emplace(BaseKey{r.base.ts, r.base.key, r.base.payload}, r);
  }

  TempDir dir;
  EngineOptions options;
  options.num_joiners = 2;
  options.durability.wal_dir = dir.path();
  options.durability.fsync = FsyncPolicy::kInterval;
  options.durability.fsync_interval_us = 1'000'000'000;  // never on time

  const CrashRunResult run =
      CrashAndRecover(EngineKind::kScaleOij, query, options, events,
                      crash_at, kWmEvery, "loss-bound", /*lossy=*/true);

  EXPECT_LE(run.results.size(), expected.size());
  for (const auto& [key, r] : run.results) {
    const auto it = index.find(key);
    ASSERT_NE(it, index.end()) << "recovered run invented a base tuple";
    EXPECT_LE(r.match_count, it->second.match_count);
    EXPECT_LE(r.aggregate, it->second.aggregate + 1e-6);
  }
}

// ------------------------------------------------------------ edge cases

TEST(RecoveryEdgeTest, EmptyDirectoryRecoversToCleanStart) {
  const auto events = Generate(RecoveryWorkload(905));
  const QuerySpec query = RecoveryQuery(LatePolicy::kBestEffortJoin);
  constexpr uint64_t kWmEvery = 64;
  auto expected = ReferenceJoinWithPolicy(events, query, kWmEvery);

  TempDir dir;
  EngineOptions options;
  options.num_joiners = 2;
  options.durability.wal_dir = dir.path();
  options.durability.fsync = FsyncPolicy::kPerBatch;

  CollectingSink sink;
  auto engine = CreateEngine(EngineKind::kScaleOij, query, options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  ASSERT_TRUE(engine->Recover().ok()) << "empty dir must be a no-op";
  EXPECT_EQ(engine->SampleWal().replay_records, 0u);

  WatermarkTracker tracker(query.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % kWmEvery == 0) engine->SignalWatermark(tracker.watermark());
  }
  const EngineStats stats = engine->Finish();
  EXPECT_EQ(stats.results, expected.size());
  EXPECT_TRUE(stats.wal.enabled);
  EXPECT_GT(stats.wal.appended_records, 0u);

  std::map<BaseKey, JoinResult> got;
  Accumulate(&got, sink.TakeResults(), "empty-dir");
  ExpectUnionExact(got, expected, "empty-dir");
}

TEST(RecoveryEdgeTest, RecoveryAfterIngestIsRejected) {
  TempDir dir;
  EngineOptions options;
  options.num_joiners = 1;
  options.durability.wal_dir = dir.path();
  const QuerySpec query = RecoveryQuery(LatePolicy::kBestEffortJoin);
  NullSink sink;
  auto engine = CreateEngine(EngineKind::kKeyOij, query, options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  StreamEvent ev;
  ev.stream = StreamId::kProbe;
  ev.tuple.ts = 1;
  engine->Push(ev, MonotonicNowUs());
  EXPECT_FALSE(engine->Recover().ok())
      << "recovery must precede the first Push";
  engine->Finish();
}

/// Fresh-start semantics: starting to ingest without recovering discards
/// the stale on-disk state (with a warning) instead of mixing runs.
TEST(RecoveryEdgeTest, IngestWithoutRecoveryDiscardsStaleState) {
  TempDir dir;
  EngineOptions options;
  options.num_joiners = 1;
  options.durability.wal_dir = dir.path();
  options.durability.fsync = FsyncPolicy::kPerBatch;
  const QuerySpec query = RecoveryQuery(LatePolicy::kBestEffortJoin);
  const auto events = Generate(RecoveryWorkload(906));

  auto drive = [&](size_t count) {
    NullSink sink;
    auto engine = CreateEngine(EngineKind::kKeyOij, query, options, &sink);
    EXPECT_TRUE(engine->Start().ok());
    for (size_t i = 0; i < count; ++i) {
      engine->Push(events[i], MonotonicNowUs());
    }
    engine->SignalWatermark(events[count - 1].tuple.ts);
    return engine->Finish();
  };
  drive(500);
  const EngineStats second = drive(200);
  bool warned = false;
  for (const std::string& w : second.warnings) {
    if (w.find("discard") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << "stale-state discard must be surfaced";

  // The directory now holds only the second run.
  WalReplayPlan plan;
  ASSERT_TRUE(BuildReplayPlan(dir.path(), &plan).ok());
  uint64_t tuples = 0;
  for (const auto& r : plan.records) {
    if (!r.is_watermark) ++tuples;
  }
  EXPECT_EQ(tuples, 200u);
}

}  // namespace
}  // namespace oij
