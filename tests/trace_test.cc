#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "join/reference_join.h"
#include "stream/generator.h"
#include "stream/trace.h"

namespace oij {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/oij_trace_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".trace";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

std::vector<StreamEvent> SomeEvents(uint64_t n = 5000, uint64_t seed = 3) {
  WorkloadSpec spec;
  spec.num_keys = 6;
  spec.total_tuples = n;
  spec.lateness_us = 40;
  spec.disorder_bound_us = 40;
  spec.seed = seed;
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

TEST_F(TraceTest, RoundTripPreservesEverything) {
  const auto events = SomeEvents();
  ASSERT_TRUE(WriteTrace(path_, events).ok());

  std::vector<StreamEvent> loaded;
  ASSERT_TRUE(ReadTrace(path_, &loaded).ok());
  ASSERT_EQ(loaded.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(loaded[i].stream, events[i].stream) << i;
    ASSERT_EQ(loaded[i].tuple.ts, events[i].tuple.ts) << i;
    ASSERT_EQ(loaded[i].tuple.key, events[i].tuple.key) << i;
    ASSERT_EQ(loaded[i].tuple.payload, events[i].tuple.payload) << i;
  }
}

TEST_F(TraceTest, EmptyTraceRoundTrips) {
  ASSERT_TRUE(WriteTrace(path_, {}).ok());
  std::vector<StreamEvent> loaded = {{StreamId::kBase, Tuple{}}};
  ASSERT_TRUE(ReadTrace(path_, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
}

TEST_F(TraceTest, MissingFileIsNotFound) {
  std::vector<StreamEvent> loaded;
  const Status s = ReadTrace(path_ + ".does-not-exist", &loaded);
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

TEST_F(TraceTest, BadMagicRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTATRACE-AT-ALL-0000000000000000", f);
  std::fclose(f);
  std::vector<StreamEvent> loaded;
  const Status s = ReadTrace(path_, &loaded);
  EXPECT_EQ(s.code(), Status::Code::kParseError);
}

TEST_F(TraceTest, TruncatedTraceRejected) {
  const auto events = SomeEvents(100);
  ASSERT_TRUE(WriteTrace(path_, events).ok());
  // Chop the last record in half.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size - 10), 0);

  std::vector<StreamEvent> loaded;
  const Status s = ReadTrace(path_, &loaded);
  EXPECT_EQ(s.code(), Status::Code::kParseError);
}

TEST_F(TraceTest, CsvRoundTripPreservesEverything) {
  const auto events = SomeEvents(2000);
  ASSERT_TRUE(WriteTraceCsv(path_, events).ok());
  std::vector<StreamEvent> loaded;
  ASSERT_TRUE(ReadTraceCsv(path_, &loaded).ok());
  ASSERT_EQ(loaded.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(loaded[i].stream, events[i].stream) << i;
    ASSERT_EQ(loaded[i].tuple.ts, events[i].tuple.ts) << i;
    ASSERT_EQ(loaded[i].tuple.key, events[i].tuple.key) << i;
    ASSERT_EQ(loaded[i].tuple.payload, events[i].tuple.payload)
        << i << " (payloads must round-trip exactly through %.17g)";
  }
}

TEST_F(TraceTest, CsvRejectsBadHeaderAndRecords) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    std::fputs("wrong,header\n", f);
    std::fclose(f);
  }
  std::vector<StreamEvent> loaded;
  EXPECT_EQ(ReadTraceCsv(path_, &loaded).code(),
            Status::Code::kParseError);
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    std::fputs("stream,ts,key,payload\nX,1,2,3.0\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadTraceCsv(path_, &loaded).code(),
            Status::Code::kParseError);
}

TEST_F(TraceTest, MeasureDisorderMatchesGeneratorBound) {
  const auto events = SomeEvents();
  const Timestamp disorder = MeasureDisorder(events);
  EXPECT_GT(disorder, 0);
  EXPECT_LE(disorder, 40);

  // A sorted trace has zero disorder.
  std::vector<StreamEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const StreamEvent& a, const StreamEvent& b) {
              return a.tuple.ts < b.tuple.ts;
            });
  EXPECT_EQ(MeasureDisorder(sorted), 0);
}

TEST_F(TraceTest, ReplayThroughEngineMatchesReference) {
  // The full loop: record -> load -> replay through an engine; results
  // must equal the reference on the same events.
  const auto events = SomeEvents(20'000, 17);
  ASSERT_TRUE(WriteTrace(path_, events).ok());

  std::vector<StreamEvent> loaded;
  ASSERT_TRUE(ReadTrace(path_, &loaded).ok());
  const Timestamp lateness = MeasureDisorder(loaded);

  QuerySpec q;
  q.window = IntervalWindow{400, 0};
  q.lateness_us = lateness;
  q.emit_mode = EmitMode::kWatermark;

  CollectingSink sink;
  EngineOptions options;
  options.num_joiners = 3;
  auto engine = CreateEngine(EngineKind::kScaleOij, q, options, &sink);
  TraceSource source(loaded, lateness);
  const RunResult run =
      RunPipelineFrom(engine.get(), &source, /*pace_rate_per_sec=*/0);
  EXPECT_EQ(run.tuples, loaded.size());

  auto expected = ReferenceJoin(events, q);
  SortResults(&expected);
  auto results = sink.TakeResults();
  ASSERT_EQ(results.size(), expected.size());
  std::vector<ReferenceResult> got;
  for (const auto& r : results) {
    got.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&got);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].match_count, expected[i].match_count) << i;
    ASSERT_NEAR(got[i].aggregate, expected[i].aggregate, 1e-6) << i;
  }
}

}  // namespace
}  // namespace oij
