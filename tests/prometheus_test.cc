#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/latency_recorder.h"
#include "metrics/prometheus.h"
#include "server/admin.h"

namespace oij {
namespace {

// ------------------------------------------------------- name/label rules

TEST(Prometheus, SanitizeMetricName) {
  EXPECT_EQ(SanitizeMetricName("oij_up"), "oij_up");
  EXPECT_EQ(SanitizeMetricName("ns:metric_total"), "ns:metric_total");
  EXPECT_EQ(SanitizeMetricName("scale-oij.latency"), "scale_oij_latency");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName("a b\tc"), "a_b_c");
}

TEST(Prometheus, EscapeLabelValue) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(Prometheus, LabelsRenderEscaped) {
  PrometheusWriter writer;
  writer.Gauge("g", "help", 1.0, {{"workload", "A\"B\\C\nD"}});
  EXPECT_NE(writer.text().find("g{workload=\"A\\\"B\\\\C\\nD\"} 1"),
            std::string::npos);
}

TEST(Prometheus, HelpTypeHeadersOncePerFamily) {
  PrometheusWriter writer;
  writer.Counter("c_total", "a counter", 1.0, {{"k", "x"}});
  writer.Counter("c_total", "a counter", 2.0, {{"k", "y"}});
  const std::string& text = writer.text();
  size_t first = text.find("# HELP c_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# HELP c_total", first + 1), std::string::npos);
  first = text.find("# TYPE c_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE c_total", first + 1), std::string::npos);
}

// ---------------------------------------------------- histogram invariants

/// Pulls every `name_bucket{le="..."} <count>` sample out of an
/// exposition document, in document order.
std::vector<std::pair<double, uint64_t>> ParseBuckets(
    const std::string& text, const std::string& name) {
  std::vector<std::pair<double, uint64_t>> out;
  const std::string needle = name + "_bucket{le=\"";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    const size_t quote = text.find('"', pos);
    const std::string le = text.substr(pos, quote - pos);
    const size_t space = text.find(' ', quote);
    const size_t eol = text.find('\n', space);
    const std::string count = text.substr(space + 1, eol - space - 1);
    out.emplace_back(le == "+Inf" ? std::numeric_limits<double>::infinity()
                                  : std::stod(le),
                     static_cast<uint64_t>(std::stoull(count)));
    pos = eol;
  }
  return out;
}

double ParseGauge(const std::string& text, const std::string& sample) {
  // Anchor at line start so HELP/TYPE comment lines mentioning the
  // family name never match.
  const std::string needle = "\n" + sample + " ";
  size_t pos = text.rfind(needle);
  if (pos != std::string::npos) {
    pos += 1;
  } else if (text.compare(0, sample.size() + 1, sample + " ") == 0) {
    pos = 0;
  }
  EXPECT_NE(pos, std::string::npos) << sample << " missing from:\n" << text;
  if (pos == std::string::npos) return 0.0;
  return std::stod(text.substr(pos + sample.size() + 1));
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndMonotone) {
  LatencyRecorder recorder;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 50'000; ++i) {
    recorder.Record(static_cast<int64_t>(rng() % 2'000'000));
  }
  PrometheusWriter writer;
  writer.Histogram("lat_us", "latencies", recorder);
  const std::string text = writer.Take();

  const auto buckets = ParseBuckets(text, "lat_us");
  ASSERT_GE(buckets.size(), 2u);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LE(buckets[i - 1].first, buckets[i].first)
        << "le edges out of order at " << i;
    EXPECT_LE(buckets[i - 1].second, buckets[i].second)
        << "cumulative counts regressed at le=" << buckets[i].first;
  }
  // The mandatory +Inf bucket closes the family and equals _count.
  EXPECT_TRUE(std::isinf(buckets.back().first));
  EXPECT_EQ(buckets.back().second, recorder.count());
  EXPECT_EQ(static_cast<uint64_t>(ParseGauge(text, "lat_us_count")),
            recorder.count());
  EXPECT_EQ(static_cast<int64_t>(ParseGauge(text, "lat_us_sum")),
            recorder.sum_us());
}

TEST(Prometheus, EmptyHistogramStillWellFormed) {
  LatencyRecorder recorder;
  PrometheusWriter writer;
  writer.Histogram("empty_us", "nothing", recorder);
  const std::string text = writer.Take();
  const auto buckets = ParseBuckets(text, "empty_us");
  ASSERT_EQ(buckets.size(), 1u);  // just +Inf
  EXPECT_TRUE(std::isinf(buckets[0].first));
  EXPECT_EQ(buckets[0].second, 0u);
  EXPECT_EQ(ParseGauge(text, "empty_us_count"), 0.0);
}

/// The Percentile <= max invariant must survive rendering: the quantile
/// gauges /metrics exposes can never exceed the rendered max gauge.
TEST(Prometheus, QuantileGaugesNeverExceedMaxThroughMetricsOutput) {
  AdminSnapshot snap;
  snap.engine_name = "scale-oij";
  snap.workload_name = "default";
  snap.run_finished = true;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20'000; ++i) {
    snap.final_run.stats.latency.Record(
        static_cast<int64_t>(rng() % 5'000'000));
  }
  const std::string text = RenderPrometheusMetrics(snap);

  const double max_us = ParseGauge(text, "oij_result_latency_max_us");
  EXPECT_EQ(static_cast<int64_t>(max_us),
            snap.final_run.stats.latency.max_us());
  for (const char* q : {"0.5", "0.9", "0.99"}) {
    const double v = ParseGauge(
        text, std::string("oij_result_latency_quantile_us{quantile=\"") + q +
                  "\"}");
    EXPECT_LE(v, max_us) << "quantile " << q;
    EXPECT_GE(v, 0.0);
  }

  // The full histogram rides along and stays monotone end-to-end.
  const auto buckets = ParseBuckets(text, "oij_result_latency_us");
  ASSERT_GE(buckets.size(), 2u);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LE(buckets[i - 1].second, buckets[i].second);
  }
  EXPECT_EQ(buckets.back().second, snap.final_run.stats.latency.count());
}

TEST(Prometheus, ArenaGaugesRenderFromProgressSample) {
  // The allocator observability chain: WatchdogSample arena fields must
  // surface as the four memory gauges on the /metrics page.
  AdminSnapshot snap;
  snap.engine_name = "scale-oij";
  snap.workload_name = "default";
  snap.run_finished = false;
  snap.progress.arena_bytes = 4 * 64 * 1024;
  snap.progress.arena_live_nodes = 1234;
  snap.progress.ebr_retired_backlog = 56;
  snap.progress.arena_slab_recycles = 7;
  const std::string text = RenderPrometheusMetrics(snap);

  EXPECT_EQ(ParseGauge(text, "oij_arena_bytes"), 4.0 * 64 * 1024);
  EXPECT_EQ(ParseGauge(text, "oij_arena_live_nodes"), 1234.0);
  EXPECT_EQ(ParseGauge(text, "oij_ebr_retired_backlog"), 56.0);
  EXPECT_EQ(ParseGauge(text, "oij_arena_slab_recycles_total"), 7.0);
}

TEST(Prometheus, SnapshotAgeGaugeOmittedUntilFirstSnapshot) {
  // Regression: before the first snapshot commits the engine reports the
  // -1.0 "never" sentinel, and /metrics used to export it verbatim — a
  // negative age that poisons `oij_snapshot_age_seconds > X` alert rules.
  AdminSnapshot snap;
  snap.engine_name = "scale-oij";
  snap.workload_name = "default";
  snap.wal.enabled = true;
  snap.snapshot_age_seconds = -1.0;
  std::string text = RenderPrometheusMetrics(snap);
  EXPECT_EQ(text.find("oij_snapshot_age_seconds"), std::string::npos)
      << "sentinel leaked as a sample:\n"
      << text;
  // The rest of the WAL family still renders without it.
  EXPECT_NE(text.find("oij_wal_appended_records_total"), std::string::npos);
  EXPECT_NE(text.find("oij_snapshots_total"), std::string::npos);

  // Zero is a real age (a snapshot committed within the last second) and
  // must render; so must any positive age.
  snap.snapshot_age_seconds = 0.0;
  text = RenderPrometheusMetrics(snap);
  EXPECT_EQ(ParseGauge(text, "oij_snapshot_age_seconds"), 0.0);
  snap.snapshot_age_seconds = 12.5;
  text = RenderPrometheusMetrics(snap);
  EXPECT_EQ(ParseGauge(text, "oij_snapshot_age_seconds"), 12.5);
}

TEST(Statz, SnapshotAgeIsNullUntilFirstSnapshot) {
  // The /statz side of the same fix: the sentinel renders as JSON null,
  // never as -1, and becomes a number once a snapshot exists.
  AdminSnapshot snap;
  snap.engine_name = "scale-oij";
  snap.workload_name = "default";
  snap.wal.enabled = true;
  snap.snapshot_age_seconds = -1.0;
  std::string text = RenderStatzJson(snap);
  EXPECT_NE(text.find("\"snapshot_age_seconds\":null"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("-1"), std::string::npos) << text;

  snap.snapshot_age_seconds = 3.0;
  text = RenderStatzJson(snap);
  EXPECT_NE(text.find("\"snapshot_age_seconds\":3"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("null"), std::string::npos) << text;
}

TEST(Statz, ArraysAreCommaSeparatedAndMemoryObjectRenders) {
  // Regression: JsonOut used to omit the separator between bare array
  // elements, so multi-joiner queue_depths rendered as [123] instead of
  // [1,2,3] — invalid JSON that only showed up with >1 joiner.
  AdminSnapshot snap;
  snap.engine_name = "scale-oij";
  snap.workload_name = "default";
  snap.run_finished = true;
  snap.progress.queue_depths = {1, 2, 3};
  snap.progress.consumed = {10, 20, 30};
  snap.progress.arena_bytes = 65536;
  snap.final_run.stats.warnings = {"w1", "w2"};
  snap.final_run.stats.mem.pooled = true;
  snap.final_run.stats.mem.arena_reserved_bytes = 131072;
  const std::string text = RenderStatzJson(snap);

  EXPECT_NE(text.find("\"queue_depths\":[1,2,3]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"consumed\":[10,20,30]"), std::string::npos);
  EXPECT_NE(text.find("\"warnings\":[\"w1\",\"w2\"]"), std::string::npos);
  EXPECT_NE(text.find("\"memory\":{\"arena_bytes\":65536"),
            std::string::npos);
  EXPECT_NE(text.find("\"memory\":{\"pooled\":true,"
                      "\"arena_reserved_bytes\":131072"),
            std::string::npos);

  // Structural sanity: brackets balance and never go negative.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced at offset " << i;
  }
  EXPECT_EQ(depth, 0);
}

TEST(Prometheus, MetricsPageIsParseable) {
  // Every non-comment line must be `name{labels} value` or `name value`,
  // and every referenced family must have HELP and TYPE headers.
  AdminSnapshot snap;
  snap.engine_name = "scale-oij";
  snap.workload_name = "wl\"with\\odd\nchars";
  snap.counters.tuples_in = 123;
  snap.progress.queue_depths = {1, 2, 3};
  snap.progress.consumed = {10, 20, 30};
  snap.run_finished = false;
  const std::string text = RenderPrometheusMetrics(snap);

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_NO_THROW((void)std::stod(value)) << line;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << "bad metric name char in " << line;
    }
  }
  // Live progress gauges carry per-joiner labels.
  EXPECT_NE(text.find("oij_joiner_queue_depth{joiner=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("oij_joiner_consumed_total{joiner=\"2\"} 30"),
            std::string::npos);
}

}  // namespace
}  // namespace oij
