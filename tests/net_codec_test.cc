#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "net/wire_codec.h"

namespace oij {
namespace {

StreamEvent MakeEvent(StreamId stream, Timestamp ts, Key key,
                      double payload) {
  StreamEvent ev;
  ev.stream = stream;
  ev.tuple.ts = ts;
  ev.tuple.key = key;
  ev.tuple.payload = payload;
  return ev;
}

JoinResult MakeResult() {
  JoinResult r;
  r.base.ts = 123'456;
  r.base.key = 0xdeadbeefcafe;
  r.base.payload = -3.25;
  r.aggregate = 42.5;
  r.match_count = 7;
  r.sum = 42.5;
  r.min = -1.5;
  r.max = 99.0;
  r.arrival_us = 1'000'001;
  r.emit_us = 1'000'777;
  return r;
}

/// Decodes exactly one frame and expects the buffer to then be empty.
WireFrame DecodeOne(const std::string& bytes) {
  WireDecoder decoder;
  decoder.Feed(bytes);
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kFrame);
  WireFrame spare;
  EXPECT_EQ(decoder.Next(&spare), WireDecoder::Result::kNeedMore);
  return frame;
}

// ------------------------------------------------------------ round trips

TEST(WireCodec, TupleRoundTrip) {
  const StreamEvent ev =
      MakeEvent(StreamId::kProbe, -17, 0xffffffffffffffffULL, 2.5e-308);
  std::string bytes;
  AppendTupleFrame(&bytes, ev);
  const WireFrame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kTuple);
  EXPECT_EQ(frame.event.stream, StreamId::kProbe);
  EXPECT_EQ(frame.event.tuple.ts, -17);
  EXPECT_EQ(frame.event.tuple.key, 0xffffffffffffffffULL);
  EXPECT_EQ(frame.event.tuple.payload, 2.5e-308);
}

TEST(WireCodec, WatermarkRoundTrip) {
  std::string bytes;
  AppendWatermarkFrame(&bytes, -123'456'789);
  const WireFrame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kWatermark);
  EXPECT_EQ(frame.watermark, -123'456'789);
}

TEST(WireCodec, ControlRoundTrip) {
  for (const FrameType type : {FrameType::kFinish, FrameType::kSubscribe}) {
    std::string bytes;
    AppendControlFrame(&bytes, type);
    EXPECT_EQ(DecodeOne(bytes).type, type);
  }
}

TEST(WireCodec, ResultRoundTrip) {
  const JoinResult want = MakeResult();
  std::string bytes;
  AppendResultFrame(&bytes, want);
  const WireFrame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kResult);
  const JoinResult& got = frame.result;
  EXPECT_EQ(got.base.ts, want.base.ts);
  EXPECT_EQ(got.base.key, want.base.key);
  EXPECT_EQ(got.base.payload, want.base.payload);
  EXPECT_EQ(got.aggregate, want.aggregate);
  EXPECT_EQ(got.match_count, want.match_count);
  EXPECT_EQ(got.sum, want.sum);
  EXPECT_EQ(got.min, want.min);
  EXPECT_EQ(got.max, want.max);
  EXPECT_EQ(got.arrival_us, want.arrival_us);
  EXPECT_EQ(got.emit_us, want.emit_us);
}

TEST(WireCodec, ResultNaNFieldsSurvive) {
  JoinResult r = MakeResult();
  r.sum = std::nan("");
  r.min = std::nan("");
  r.max = std::nan("");
  std::string bytes;
  AppendResultFrame(&bytes, r);
  const WireFrame frame = DecodeOne(bytes);
  EXPECT_TRUE(std::isnan(frame.result.sum));
  EXPECT_TRUE(std::isnan(frame.result.min));
  EXPECT_TRUE(std::isnan(frame.result.max));
}

TEST(WireCodec, TextRoundTrip) {
  std::string bytes;
  AppendTextFrame(&bytes, FrameType::kSummary, "hello\nworld");
  WireFrame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kSummary);
  EXPECT_EQ(frame.text, "hello\nworld");

  bytes.clear();
  AppendTextFrame(&bytes, FrameType::kError, "");
  frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.text, "");
}

TEST(WireCodec, CanonicalResultIgnoresWallClockStamps) {
  JoinResult a = MakeResult();
  JoinResult b = a;
  b.arrival_us += 991;
  b.emit_us += 12'345;
  std::string ea, eb;
  AppendCanonicalResult(&ea, a);
  AppendCanonicalResult(&eb, b);
  EXPECT_EQ(ea, eb);

  b.aggregate += 1.0;
  eb.clear();
  AppendCanonicalResult(&eb, b);
  EXPECT_NE(ea, eb);
}

// -------------------------------------------------------- framing behavior

TEST(WireCodec, TruncatedFrameIsNeedMoreNotCorrupt) {
  std::string bytes;
  AppendTupleFrame(&bytes, MakeEvent(StreamId::kBase, 1, 2, 3.0));
  WireDecoder decoder;
  WireFrame frame;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(bytes.data() + i, 1);
    EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kNeedMore)
        << "after byte " << i;
  }
  decoder.Feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kFrame);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireCodec, OversizedLengthIsCorrupt) {
  std::string bytes;
  const uint32_t length = 1 + kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  WireDecoder decoder;
  decoder.Feed(bytes);
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);
  EXPECT_FALSE(decoder.error().ok());
}

TEST(WireCodec, ZeroLengthIsCorrupt) {
  WireDecoder decoder;
  decoder.Feed(std::string(4, '\0'));
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);
}

TEST(WireCodec, UnknownTypeIsCorrupt) {
  std::string bytes;
  bytes.push_back(1);  // length = 1 (just the type byte)
  bytes.append(3, '\0');
  bytes.push_back(static_cast<char>(0x7f));
  WireDecoder decoder;
  decoder.Feed(bytes);
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);
}

TEST(WireCodec, FixedSizeMismatchIsCorrupt) {
  // A tuple frame one byte short of its mandated payload size.
  std::string bytes;
  AppendTupleFrame(&bytes, MakeEvent(StreamId::kBase, 1, 2, 3.0));
  std::string truncated = bytes;
  truncated[0] = static_cast<char>(truncated[0] - 1);  // shrink length
  truncated.pop_back();
  WireDecoder decoder;
  decoder.Feed(truncated);
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);

  // Control frames must have an empty payload.
  std::string control;
  control.push_back(2);
  control.append(3, '\0');
  control.push_back(static_cast<char>(FrameType::kFinish));
  control.push_back('x');
  WireDecoder decoder2;
  decoder2.Feed(control);
  EXPECT_EQ(decoder2.Next(&frame), WireDecoder::Result::kCorrupt);
}

TEST(WireCodec, BadStreamIdIsCorrupt) {
  std::string bytes;
  AppendTupleFrame(&bytes, MakeEvent(StreamId::kBase, 1, 2, 3.0));
  bytes[kFrameHeaderBytes + 1] = 2;  // stream id must be 0 or 1
  WireDecoder decoder;
  decoder.Feed(bytes);
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);
}

TEST(WireCodec, CorruptionPoisonsTheDecoder) {
  std::string bytes;
  bytes.push_back(1);
  bytes.append(3, '\0');
  bytes.push_back(static_cast<char>(0x7f));  // unknown type
  AppendWatermarkFrame(&bytes, 5);           // a valid frame behind it
  WireDecoder decoder;
  decoder.Feed(bytes);
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);
  // The valid frame behind the poison is never surfaced.
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);
  decoder.Feed(bytes);
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);
}

TEST(WireCodec, GarbageStreamIsCorrupt) {
  std::mt19937_64 rng(7);
  std::string garbage;
  for (int i = 0; i < 4096; ++i) {
    garbage.push_back(static_cast<char>(rng() & 0xff));
  }
  // Force a huge little-endian length so the very first header fails.
  garbage[3] = static_cast<char>(0xff);
  WireDecoder decoder;
  decoder.Feed(garbage);
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&frame), WireDecoder::Result::kCorrupt);
}

// --------------------------------------------------------- split-fuzz test

/// The decoder must be byte-split agnostic: any chunking of the same byte
/// stream yields the same frame sequence. This is the property the
/// server relies on when TCP hands it arbitrary segment boundaries.
TEST(WireCodec, RandomSplitFuzz) {
  std::mt19937_64 rng(1234);
  std::string stream;
  std::vector<FrameType> want_types;
  std::vector<StreamEvent> want_events;
  std::vector<Timestamp> want_watermarks;
  std::vector<std::string> want_texts;

  for (int i = 0; i < 2000; ++i) {
    switch (rng() % 5) {
      case 0:
      case 1: {
        const StreamEvent ev = MakeEvent(
            (rng() & 1) != 0 ? StreamId::kProbe : StreamId::kBase,
            static_cast<Timestamp>(rng() % 1'000'000),
            static_cast<Key>(rng() % 512),
            static_cast<double>(rng() % 1000) / 8.0);
        AppendTupleFrame(&stream, ev);
        want_types.push_back(FrameType::kTuple);
        want_events.push_back(ev);
        break;
      }
      case 2: {
        const Timestamp wm = static_cast<Timestamp>(rng() % 1'000'000);
        AppendWatermarkFrame(&stream, wm);
        want_types.push_back(FrameType::kWatermark);
        want_watermarks.push_back(wm);
        break;
      }
      case 3: {
        AppendControlFrame(&stream, FrameType::kSubscribe);
        want_types.push_back(FrameType::kSubscribe);
        break;
      }
      default: {
        const std::string text(rng() % 64, 'x');
        AppendTextFrame(&stream, FrameType::kSummary, text);
        want_types.push_back(FrameType::kSummary);
        want_texts.push_back(text);
        break;
      }
    }
  }

  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    std::mt19937_64 split_rng(seed);
    WireDecoder decoder;
    WireFrame frame;
    size_t fed = 0, type_i = 0, ev_i = 0, wm_i = 0, text_i = 0;
    while (fed < stream.size() || type_i < want_types.size()) {
      if (fed < stream.size()) {
        const size_t n =
            std::min<size_t>(1 + split_rng() % 96, stream.size() - fed);
        decoder.Feed(stream.data() + fed, n);
        fed += n;
      }
      while (decoder.Next(&frame) == WireDecoder::Result::kFrame) {
        ASSERT_LT(type_i, want_types.size());
        ASSERT_EQ(frame.type, want_types[type_i++]);
        switch (frame.type) {
          case FrameType::kTuple:
            ASSERT_EQ(frame.event.stream, want_events[ev_i].stream);
            ASSERT_EQ(frame.event.tuple.ts, want_events[ev_i].tuple.ts);
            ASSERT_EQ(frame.event.tuple.key, want_events[ev_i].tuple.key);
            ASSERT_EQ(frame.event.tuple.payload,
                      want_events[ev_i].tuple.payload);
            ++ev_i;
            break;
          case FrameType::kWatermark:
            ASSERT_EQ(frame.watermark, want_watermarks[wm_i++]);
            break;
          case FrameType::kSummary:
            ASSERT_EQ(frame.text, want_texts[text_i++]);
            break;
          default:
            break;
        }
      }
      ASSERT_TRUE(decoder.error().ok());
    }
    EXPECT_EQ(type_i, want_types.size()) << "split seed " << seed;
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

}  // namespace
}  // namespace oij
