// Process-level crash/recovery integration tests: a real oij_server
// binary (located via the OIJ_SERVER_BIN environment variable, set by
// CMake), killed with SIGKILL mid-run and restarted over the same
// --wal-dir. The headline property is the ISSUE's acceptance bar:
//
//   * --fsync per_batch: the union of results streamed before the kill
//     and after recovery equals the policy-aware reference oracle
//     EXACTLY (zero loss of watermark-finalized results).
//   * --fsync interval under injected disk faults: recovery still
//     succeeds and every recovered result stays within the documented
//     loss bound (a subset of the oracle, never a fabricated result).
//   * SIGTERM drain: the Sync() barrier in the server's finalize path
//     makes every accepted record durable even under --fsync none,
//     verified by reading the WAL directory back with BuildReplayPlan.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "join/reference_join.h"
#include "join/watermark.h"
#include "net/socket.h"
#include "net/wire_codec.h"
#include "stream/generator.h"
#include "stream/presets.h"
#include "wal/wal_reader.h"

namespace oij {
namespace {

const char* ServerBinary() { return std::getenv("OIJ_SERVER_BIN"); }

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 30000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Scratch WAL directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/oij_crash_test_XXXXXX";
    char* d = mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    if (d != nullptr) path_ = d;
  }
  ~TempDir() {
    if (!path_.empty()) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      if (std::system(cmd.c_str()) != 0) {
        std::fprintf(stderr, "warning: failed to remove %s\n", path_.c_str());
      }
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A forked oij_server. Stdout is piped so the ephemeral data/admin
/// ports can be parsed from the startup banner; a drain thread keeps the
/// pipe from filling afterwards.
class ServerProc {
 public:
  ~ServerProc() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      WaitExit();
    }
    if (drain_.joinable()) drain_.join();
    if (out_fd_ >= 0) close(out_fd_);
  }

  bool Spawn(const std::vector<std::string>& extra_args) {
    const char* bin = ServerBinary();
    if (bin == nullptr) return false;
    int fds[2];
    if (pipe(fds) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) {
      close(fds[0]);
      close(fds[1]);
      return false;
    }
    if (pid_ == 0) {
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      std::vector<std::string> args;
      args.push_back(bin);
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(bin, argv.data());
      _exit(127);
    }
    close(fds[1]);
    out_fd_ = fds[0];
    if (!ParsePorts()) return false;
    drain_ = std::thread([this] {
      char buf[4096];
      while (read(out_fd_, buf, sizeof(buf)) > 0) {
      }
    });
    return true;
  }

  void Kill(int sig) {
    ASSERT_GT(pid_, 0);
    ASSERT_EQ(kill(pid_, sig), 0) << strerror(errno);
  }

  /// Reaps the child; returns its wait() status (-1 if already reaped).
  int WaitExit() {
    if (pid_ <= 0) return -1;
    int status = -1;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

  uint16_t data_port() const { return data_port_; }
  uint16_t admin_port() const { return admin_port_; }

 private:
  /// Reads the banner until both port lines appear. A failed start
  /// closes the pipe (EOF) and we report false.
  bool ParsePorts() {
    std::string text;
    char buf[512];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = read(out_fd_, buf, sizeof(buf));
      if (n <= 0) return false;
      text.append(buf, static_cast<size_t>(n));
      unsigned dp = 0, ap = 0;
      const char* d = std::strstr(text.c_str(), "data port:");
      const char* a = std::strstr(text.c_str(), "admin port:");
      if (d != nullptr && a != nullptr &&
          std::sscanf(d, "data port: %u", &dp) == 1 &&
          std::sscanf(a, "admin port: %u", &ap) == 1) {
        data_port_ = static_cast<uint16_t>(dp);
        admin_port_ = static_cast<uint16_t>(ap);
        return true;
      }
    }
    return false;
  }

  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::thread drain_;
  uint16_t data_port_ = 0;
  uint16_t admin_port_ = 0;
};

/// Data-plane client whose received-result count is observable while the
/// reader thread is still running (the crash tests must know when every
/// streamed result has been *delivered* before pulling the plug).
class LiveClient {
 public:
  explicit LiveClient(uint16_t port) {
    const Status s = ConnectTcp("127.0.0.1", port, &fd_);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (fd_ >= 0) reader_ = std::thread(&LiveClient::ReadLoop, this);
  }

  ~LiveClient() {
    // Unblock the reader first: on an assertion-failure unwind the
    // server may still be alive with the connection open, and a plain
    // join would wait forever on its recv.
    if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
    JoinReader();
    CloseFd(fd_);
  }

  bool Send(const std::string& bytes) {
    return SendAll(fd_, bytes.data(), bytes.size()).ok();
  }

  void JoinReader() {
    if (reader_.joinable()) reader_.join();
  }

  size_t ResultCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return results_.size();
  }

  /// Valid only after JoinReader().
  const std::vector<JoinResult>& results() const { return results_; }
  const std::string& summary() const { return summary_; }
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  void ReadLoop() {
    WireDecoder decoder;
    char buf[16384];
    WireFrame frame;
    while (true) {
      const int64_t n = RecvSome(fd_, buf, sizeof(buf));
      if (n <= 0) return;
      decoder.Feed(buf, static_cast<size_t>(n));
      while (true) {
        const WireDecoder::Result r = decoder.Next(&frame);
        if (r == WireDecoder::Result::kNeedMore) break;
        if (r == WireDecoder::Result::kCorrupt) return;
        std::lock_guard<std::mutex> lock(mu_);
        if (frame.type == FrameType::kResult) {
          results_.push_back(frame.result);
        } else if (frame.type == FrameType::kSummary) {
          summary_ = frame.text;
        } else if (frame.type == FrameType::kError) {
          errors_.push_back(frame.text);
        }
      }
    }
  }

  int fd_ = -1;
  std::thread reader_;
  mutable std::mutex mu_;
  std::vector<JoinResult> results_;
  std::string summary_;
  std::vector<std::string> errors_;
};

/// One blocking HTTP/1.0 GET against the admin port. Unlike the
/// in-process variant in server_test.cc this tolerates connection
/// failures (the server may be mid-restart) by returning code 0.
std::string HttpGet(uint16_t port, const std::string& path, int* code) {
  *code = 0;
  int fd = -1;
  if (!ConnectTcp("127.0.0.1", port, &fd).ok()) return "";
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size()).ok()) {
    CloseFd(fd);
    return "";
  }
  std::string response;
  char buf[8192];
  int64_t n;
  while ((n = RecvSome(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  CloseFd(fd);
  const size_t sp = response.find(' ');
  if (sp != std::string::npos) *code = std::atoi(response.c_str() + sp + 1);
  const size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

/// One blocking HTTP/1.0 request with a body (the admin catalog
/// endpoints take POST/DELETE). Same response handling as HttpGet.
std::string HttpSend(uint16_t port, const std::string& method,
                     const std::string& path, const std::string& body,
                     int* code) {
  *code = 0;
  int fd = -1;
  if (!ConnectTcp("127.0.0.1", port, &fd).ok()) return "";
  std::string request = method + " " + path + " HTTP/1.0\r\n";
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  if (!SendAll(fd, request.data(), request.size()).ok()) {
    CloseFd(fd);
    return "";
  }
  std::string response;
  char buf[8192];
  int64_t n;
  while ((n = RecvSome(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  CloseFd(fd);
  const size_t sp = response.find(' ');
  if (sp != std::string::npos) *code = std::atoi(response.c_str() + sp + 1);
  const size_t resp_body = response.find("\r\n\r\n");
  return resp_body == std::string::npos ? "" : response.substr(resp_body + 4);
}

/// Pulls `"key":<number>` out of a /statz body. All keys probed by these
/// tests are unique within the document.
bool StatzNumber(const std::string& body, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = body.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(body.c_str() + pos + needle.size(), nullptr);
  return true;
}

double StatzNumberOr(uint16_t admin_port, const std::string& key,
                     double fallback) {
  int code = 0;
  const std::string body = HttpGet(admin_port, "/statz", &code);
  double v = fallback;
  if (code != 200 || !StatzNumber(body, key, &v)) return fallback;
  return v;
}

/// Sends events [begin, end) with the standard observe-then-punctuate
/// cadence, continuing a global per-run event counter so watermark
/// positions are identical to an uninterrupted run. The tracker must
/// have observed [0, begin) already.
bool SendRange(LiveClient* client, const std::vector<StreamEvent>& events,
               size_t begin, size_t end, WatermarkTracker* tracker,
               uint64_t wm_every, std::string* batch) {
  for (size_t i = begin; i < end; ++i) {
    tracker->Observe(events[i].tuple.ts);
    AppendTupleFrame(batch, events[i]);
    if ((i + 1) % wm_every == 0) {
      AppendWatermarkFrame(batch, tracker->watermark());
    }
    if (batch->size() >= 32 * 1024) {
      if (!client->Send(*batch)) return false;
      batch->clear();
    }
  }
  if (!batch->empty()) {
    if (!client->Send(*batch)) return false;
    batch->clear();
  }
  return true;
}

using BaseKey = std::tuple<Timestamp, Key, double>;

BaseKey KeyOf(const Tuple& base) {
  return BaseKey(base.ts, base.key, base.payload);
}

struct Observed {
  uint64_t match_count = 0;
  double aggregate = 0.0;
};

/// Union-dedupes results across the crash boundary. Recovery re-emits
/// already-finalized bases (at-least-once delivery); under per_batch the
/// re-emission must agree with the original byte-for-byte.
void Accumulate(const std::vector<JoinResult>& results, bool dups_must_agree,
                std::map<BaseKey, Observed>* acc) {
  for (const JoinResult& r : results) {
    const BaseKey k = KeyOf(r.base);
    auto it = acc->find(k);
    if (it == acc->end()) {
      (*acc)[k] = Observed{r.match_count, r.aggregate};
    } else if (dups_must_agree) {
      EXPECT_EQ(it->second.match_count, r.match_count)
          << "re-emitted base ts=" << r.base.ts << " key=" << r.base.key
          << " changed its match count across the crash";
      EXPECT_NEAR(it->second.aggregate, r.aggregate, 1e-6);
    } else {
      // Lossy regime: keep the most complete emission.
      if (r.match_count > it->second.match_count) {
        it->second = Observed{r.match_count, r.aggregate};
      }
    }
  }
}

/// Per-standing-query union-dedupe: results carry the query ordinal on
/// the wire, so one subscriber stream splits into one accumulator per
/// standing query.
void AccumulateByQuery(const std::vector<JoinResult>& results,
                       bool dups_must_agree,
                       std::map<uint32_t, std::map<BaseKey, Observed>>* acc) {
  std::map<uint32_t, std::vector<JoinResult>> by_query;
  for (const JoinResult& r : results) by_query[r.query].push_back(r);
  for (const auto& [ord, rs] : by_query) {
    Accumulate(rs, dups_must_agree, &(*acc)[ord]);
  }
}

std::map<BaseKey, Observed> OracleIndex(
    const std::vector<ReferenceResult>& expected) {
  std::map<BaseKey, Observed> idx;
  for (const ReferenceResult& r : expected) {
    idx[KeyOf(r.base)] = Observed{r.match_count, r.aggregate};
  }
  return idx;
}

struct CrashWorkload {
  WorkloadSpec workload;
  QuerySpec query;
  std::vector<StreamEvent> events;
  std::vector<ReferenceResult> expected;
  size_t crash_at = 0;
};

/// Shrinks the "default" preset to loopback scale and picks a crash
/// point on a watermark boundary (so phase 2 resumes mid-cadence
/// cleanly — the exactness argument does not depend on this, it only
/// keeps the punctuation sequence identical to an uninterrupted run).
CrashWorkload BuildCrashWorkload(uint64_t tuples, uint64_t wm_every,
                                 bool crash_on_boundary) {
  CrashWorkload out;
  EXPECT_TRUE(FindPreset("default", &out.workload));
  out.workload.total_tuples = tuples;
  out.query.window = out.workload.window;
  out.query.lateness_us = out.workload.lateness_us;
  out.query.emit_mode = EmitMode::kWatermark;
  out.events = Generate(out.workload);
  out.expected = ReferenceJoinWithPolicy(out.events, out.query, wm_every);
  out.crash_at = out.events.size() / 2;
  if (crash_on_boundary) {
    out.crash_at = (out.crash_at / wm_every) * wm_every;
  } else {
    out.crash_at += 17;  // mid-batch, mid-cadence
  }
  return out;
}

// ------------------------------------------------ per_batch: exact

/// kill -9 under --fsync per_batch. Every result the server streamed
/// before the kill was watermark-finalized, and per_batch syncs the WAL
/// before each watermark broadcast, so the inputs behind every streamed
/// result are durable. Phase 1 results + post-recovery phase 2 results,
/// union-deduped, must equal the reference oracle exactly.
TEST(CrashRecoveryTest, PerBatchKillNineRecoversExactly) {
  if (ServerBinary() == nullptr) {
    GTEST_SKIP() << "OIJ_SERVER_BIN not set";
  }
  constexpr uint64_t kWmEvery = 64;
  const CrashWorkload w =
      BuildCrashWorkload(6'000, kWmEvery, /*crash_on_boundary=*/true);
  TempDir dir;

  const std::vector<std::string> args = {
      "--workload", "default",    "--engine",         "scale-oij",
      "--joiners",  "2",          "--wal-dir",        dir.path(),
      "--fsync",    "per_batch",  "--snapshot-every", "2048"};

  std::map<BaseKey, Observed> got;
  size_t phase1_results = 0;
  {
    ServerProc server;
    ASSERT_TRUE(server.Spawn(args)) << "oij_server failed to start";

    LiveClient client(server.data_port());
    std::string batch;
    AppendControlFrame(&batch, FrameType::kSubscribe);
    WatermarkTracker tracker(w.query.lateness_us);
    ASSERT_TRUE(SendRange(&client, w.events, 0, w.crash_at, &tracker,
                          kWmEvery, &batch));

    // Quiesce before the kill: every sent tuple ingested, every appended
    // WAL record synced (the phase ends on a watermark barrier), and
    // every result the server streamed actually delivered to us. After
    // that the kill cannot lose anything the test has witnessed. (Even a
    // result finalized in the kill window is not *lost* — its inputs are
    // durable, so recovery re-derives it — quiescing just keeps the
    // pre/post bookkeeping simple, so require it to hold across a pause.)
    const auto quiesced = [&] {
      int code = 0;
      const std::string body = HttpGet(server.admin_port(), "/statz", &code);
      double tuples_in = -1, appended = -1, synced = -2, streamed = -1;
      if (code != 200 || !StatzNumber(body, "tuples_in", &tuples_in) ||
          !StatzNumber(body, "appended_records", &appended) ||
          !StatzNumber(body, "synced_records", &synced) ||
          !StatzNumber(body, "results_streamed", &streamed)) {
        return false;
      }
      return tuples_in == static_cast<double>(w.crash_at) && appended > 0 &&
             appended == synced &&
             static_cast<double>(client.ResultCount()) == streamed;
    };
    ASSERT_TRUE(WaitUntil([&] {
      if (!quiesced()) return false;
      const size_t before = client.ResultCount();
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      return quiesced() && client.ResultCount() == before;
    })) << "server never quiesced before the kill";

    server.Kill(SIGKILL);
    server.WaitExit();
    client.JoinReader();  // the dead server's socket closes the stream
    phase1_results = client.results().size();
    Accumulate(client.results(), /*dups_must_agree=*/true, &got);
  }

  // Restart over the same directory; recovery runs before serving.
  ServerProc server;
  ASSERT_TRUE(server.Spawn(args)) << "restart failed";
  ASSERT_TRUE(WaitUntil([&] {
    int code = 0;
    HttpGet(server.admin_port(), "/healthz", &code);
    return code == 200;
  })) << "server never became healthy after recovery";

  int code = 0;
  const std::string statz = HttpGet(server.admin_port(), "/statz", &code);
  ASSERT_EQ(code, 200);
  double replayed = 0;
  ASSERT_TRUE(StatzNumber(statz, "replay_records", &replayed)) << statz;
  EXPECT_GT(replayed, 0) << "restart did not replay the WAL: " << statz;

  {
    LiveClient client(server.data_port());
    std::string batch;
    AppendControlFrame(&batch, FrameType::kSubscribe);
    // Re-prime the punctuation state from phase 1 without resending it.
    WatermarkTracker tracker(w.query.lateness_us);
    for (size_t i = 0; i < w.crash_at; ++i) {
      tracker.Observe(w.events[i].tuple.ts);
    }
    ASSERT_TRUE(SendRange(&client, w.events, w.crash_at, w.events.size(),
                          &tracker, kWmEvery, &batch));
    AppendControlFrame(&batch, FrameType::kFinish);
    ASSERT_TRUE(client.Send(batch));
    client.JoinReader();
    EXPECT_TRUE(client.errors().empty())
        << "server error: " << client.errors().front();
    EXPECT_FALSE(client.summary().empty()) << "no summary after recovery";
    Accumulate(client.results(), /*dups_must_agree=*/true, &got);
  }
  server.Kill(SIGKILL);
  server.WaitExit();

  // Exactness across the crash: same cardinality, same per-base counts
  // and aggregates as the uninterrupted oracle.
  const auto oracle = OracleIndex(w.expected);
  EXPECT_GT(phase1_results, 0u) << "crash point produced no pre-kill results";
  ASSERT_EQ(got.size(), oracle.size())
      << "recovered run finalized a different set of bases";
  for (const auto& [key, want] : oracle) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end())
        << "oracle base ts=" << std::get<0>(key) << " key=" << std::get<1>(key)
        << " never emitted";
    EXPECT_EQ(it->second.match_count, want.match_count)
        << "base ts=" << std::get<0>(key) << " key=" << std::get<1>(key);
    EXPECT_NEAR(it->second.aggregate, want.aggregate, 1e-6);
  }
}

/// The multi-query variant of the acceptance bar: a --fsync per_batch
/// server with THREE standing queries (the workload primary plus two
/// added over POST /queries) is killed with SIGKILL mid-run. The restart
/// must restore the catalog from the WAL/MANIFEST before serving — GET
/// /queries lists all three with their specs and ordinals — and the
/// union of per-query results across the crash must equal each query's
/// own reference oracle exactly.
TEST(CrashRecoveryTest, PerBatchKillNineRestoresQueryCatalog) {
  if (ServerBinary() == nullptr) {
    GTEST_SKIP() << "OIJ_SERVER_BIN not set";
  }
  constexpr uint64_t kWmEvery = 64;
  const CrashWorkload w =
      BuildCrashWorkload(6'000, kWmEvery, /*crash_on_boundary=*/true);

  // Two riders on the shared index, both inside the retained-history
  // exactness bound (primary pre 1000 >= rider pre + lateness 100) and
  // added before any ingest, so each rider's oracle is simply the full
  // reference run under its own spec.
  QuerySpec narrow = w.query;
  narrow.window = IntervalWindow{400, 0};
  narrow.agg = AggKind::kCount;
  QuerySpec half = w.query;
  half.window = IntervalWindow{800, 0};
  half.agg = AggKind::kSum;
  std::map<uint32_t, std::map<BaseKey, Observed>> want;
  want[0] = OracleIndex(w.expected);
  want[1] = OracleIndex(ReferenceJoinWithPolicy(w.events, narrow, kWmEvery));
  want[2] = OracleIndex(ReferenceJoinWithPolicy(w.events, half, kWmEvery));

  TempDir dir;
  const std::vector<std::string> args = {
      "--workload", "default",    "--engine",         "scale-oij",
      "--joiners",  "2",          "--wal-dir",        dir.path(),
      "--fsync",    "per_batch",  "--snapshot-every", "2048"};

  std::map<uint32_t, std::map<BaseKey, Observed>> got;
  {
    ServerProc server;
    ASSERT_TRUE(server.Spawn(args)) << "oij_server failed to start";

    int code = 0;
    std::string resp =
        HttpSend(server.admin_port(), "POST", "/queries",
                 R"({"id":"narrow","pre":400,"fol":0,"agg":"count"})", &code);
    ASSERT_EQ(code, 200) << resp;
    resp = HttpSend(server.admin_port(), "POST", "/queries",
                    R"({"id":"half","pre":800,"fol":0,"agg":"sum"})", &code);
    ASSERT_EQ(code, 200) << resp;

    LiveClient client(server.data_port());
    std::string batch;
    AppendControlFrame(&batch, FrameType::kSubscribe);
    WatermarkTracker tracker(w.query.lateness_us);
    ASSERT_TRUE(SendRange(&client, w.events, 0, w.crash_at, &tracker,
                          kWmEvery, &batch));

    // Same quiesce discipline as the single-query test: every sent tuple
    // ingested, the WAL fully synced, every streamed result delivered.
    const auto quiesced = [&] {
      int c = 0;
      const std::string body = HttpGet(server.admin_port(), "/statz", &c);
      double tuples_in = -1, appended = -1, synced = -2, streamed = -1;
      if (c != 200 || !StatzNumber(body, "tuples_in", &tuples_in) ||
          !StatzNumber(body, "appended_records", &appended) ||
          !StatzNumber(body, "synced_records", &synced) ||
          !StatzNumber(body, "results_streamed", &streamed)) {
        return false;
      }
      return tuples_in == static_cast<double>(w.crash_at) && appended > 0 &&
             appended == synced &&
             static_cast<double>(client.ResultCount()) == streamed;
    };
    ASSERT_TRUE(WaitUntil([&] {
      if (!quiesced()) return false;
      const size_t before = client.ResultCount();
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      return quiesced() && client.ResultCount() == before;
    })) << "server never quiesced before the kill";

    server.Kill(SIGKILL);
    server.WaitExit();
    client.JoinReader();
    AccumulateByQuery(client.results(), /*dups_must_agree=*/true, &got);
  }
  for (const uint32_t ord : {0u, 1u, 2u}) {
    EXPECT_GT(got[ord].size(), 0u)
        << "standing query ord " << ord << " streamed nothing pre-kill";
  }

  // Restart over the same directory. Recovery must rebuild the standing
  // queries from the durable catalog before replaying a single tuple.
  ServerProc server;
  ASSERT_TRUE(server.Spawn(args)) << "restart failed";
  ASSERT_TRUE(WaitUntil([&] {
    int code = 0;
    HttpGet(server.admin_port(), "/healthz", &code);
    return code == 200;
  })) << "server never became healthy after recovery";

  int code = 0;
  const std::string statz = HttpGet(server.admin_port(), "/statz", &code);
  ASSERT_EQ(code, 200);
  double replayed = 0;
  ASSERT_TRUE(StatzNumber(statz, "replay_records", &replayed)) << statz;
  EXPECT_GT(replayed, 0) << "restart did not replay the WAL: " << statz;

  const std::string queries = HttpGet(server.admin_port(), "/queries", &code);
  ASSERT_EQ(code, 200);
  EXPECT_NE(
      queries.find("\"id\":\"narrow\",\"ord\":1,\"active\":true,\"pre\":400"),
      std::string::npos)
      << "recovered catalog lost 'narrow': " << queries;
  EXPECT_NE(
      queries.find("\"id\":\"half\",\"ord\":2,\"active\":true,\"pre\":800"),
      std::string::npos)
      << "recovered catalog lost 'half': " << queries;
  EXPECT_NE(queries.find("\"agg\":\"count\""), std::string::npos) << queries;

  {
    LiveClient client(server.data_port());
    std::string batch;
    AppendControlFrame(&batch, FrameType::kSubscribe);
    WatermarkTracker tracker(w.query.lateness_us);
    for (size_t i = 0; i < w.crash_at; ++i) {
      tracker.Observe(w.events[i].tuple.ts);
    }
    ASSERT_TRUE(SendRange(&client, w.events, w.crash_at, w.events.size(),
                          &tracker, kWmEvery, &batch));
    AppendControlFrame(&batch, FrameType::kFinish);
    ASSERT_TRUE(client.Send(batch));
    client.JoinReader();
    EXPECT_TRUE(client.errors().empty())
        << "server error: " << client.errors().front();
    EXPECT_FALSE(client.summary().empty()) << "no summary after recovery";
    AccumulateByQuery(client.results(), /*dups_must_agree=*/true, &got);
  }
  server.Kill(SIGKILL);
  server.WaitExit();

  // All three result sets, union-deduped across the crash, must equal
  // their per-query oracles exactly.
  ASSERT_EQ(got.size(), 3u) << "results arrived for an unknown query ordinal";
  for (const auto& [ord, oracle] : want) {
    const auto& seen = got[ord];
    ASSERT_EQ(seen.size(), oracle.size())
        << "query ord " << ord
        << " finalized a different set of bases across the crash";
    for (const auto& [key, expect] : oracle) {
      const auto it = seen.find(key);
      ASSERT_NE(it, seen.end())
          << "query ord " << ord << " base ts=" << std::get<0>(key)
          << " key=" << std::get<1>(key) << " never emitted";
      EXPECT_EQ(it->second.match_count, expect.match_count)
          << "query ord " << ord << " base ts=" << std::get<0>(key)
          << " key=" << std::get<1>(key);
      EXPECT_NEAR(it->second.aggregate, expect.aggregate, 1e-6);
    }
  }
}

// ----------------------------------- interval + disk faults: bounded

/// kill -9 under --fsync interval with the disk-fault harness active
/// (short writes and fsync failures). Loss is allowed — the bound is
/// the unsynced tail — but recovery must still succeed and must never
/// fabricate results: everything emitted across both phases must be a
/// (possibly partial) version of an oracle result.
TEST(CrashRecoveryTest, IntervalKillNineUnderDiskFaultsStaysWithinBound) {
  if (ServerBinary() == nullptr) {
    GTEST_SKIP() << "OIJ_SERVER_BIN not set";
  }
  constexpr uint64_t kWmEvery = 64;
  const CrashWorkload w =
      BuildCrashWorkload(4'000, kWmEvery, /*crash_on_boundary=*/false);
  TempDir dir;

  // One joiner = one WAL shard, so the surviving log is a contiguous
  // LSN prefix and the loss bound is easy to reason about. A huge fsync
  // interval plus injected fsync failures guarantees an unsynced tail.
  const std::vector<std::string> args = {
      "--workload", "default", "--engine", "key-oij",
      "--joiners", "1", "--wal-dir", dir.path(),
      "--fsync", "interval", "--fsync-interval-us", "1000000000",
      "--wal-short-write-prob", "0.05", "--wal-fsync-fail-prob", "0.5"};

  std::map<BaseKey, Observed> got;
  {
    ServerProc server;
    ASSERT_TRUE(server.Spawn(args)) << "oij_server failed to start";
    LiveClient client(server.data_port());
    std::string batch;
    AppendControlFrame(&batch, FrameType::kSubscribe);
    WatermarkTracker tracker(w.query.lateness_us);
    ASSERT_TRUE(SendRange(&client, w.events, 0, w.crash_at, &tracker,
                          kWmEvery, &batch));
    ASSERT_TRUE(WaitUntil([&] {
      return StatzNumberOr(server.admin_port(), "tuples_in", -1) ==
             static_cast<double>(w.crash_at);
    })) << "server never ingested phase 1";
    server.Kill(SIGKILL);
    server.WaitExit();
    client.JoinReader();
    Accumulate(client.results(), /*dups_must_agree=*/false, &got);
  }

  // Restart without the fault injection: the disk is whatever the
  // faulty run left behind; recovery must absorb torn tails cleanly.
  const std::vector<std::string> clean_args = {
      "--workload", "default", "--engine", "key-oij", "--joiners", "1",
      "--wal-dir",  dir.path(), "--fsync", "interval"};
  ServerProc server;
  ASSERT_TRUE(server.Spawn(clean_args)) << "restart failed";
  ASSERT_TRUE(WaitUntil([&] {
    int code = 0;
    HttpGet(server.admin_port(), "/healthz", &code);
    return code == 200;
  })) << "server never became healthy after faulty-disk recovery";

  {
    LiveClient client(server.data_port());
    std::string batch;
    AppendControlFrame(&batch, FrameType::kSubscribe);
    WatermarkTracker tracker(w.query.lateness_us);
    for (size_t i = 0; i < w.crash_at; ++i) {
      tracker.Observe(w.events[i].tuple.ts);
    }
    ASSERT_TRUE(SendRange(&client, w.events, w.crash_at, w.events.size(),
                          &tracker, kWmEvery, &batch));
    AppendControlFrame(&batch, FrameType::kFinish);
    ASSERT_TRUE(client.Send(batch));
    client.JoinReader();
    EXPECT_TRUE(client.errors().empty())
        << "server error: " << client.errors().front();
    EXPECT_FALSE(client.summary().empty());
    Accumulate(client.results(), /*dups_must_agree=*/false, &got);
  }
  server.Kill(SIGKILL);
  server.WaitExit();

  // Bounded loss, never fabrication: every emitted base exists in the
  // oracle with at least as many matches. (Bases whose inputs sat in
  // the lost tail are allowed to be missing or partial.)
  const auto oracle = OracleIndex(w.expected);
  EXPECT_GT(got.size(), 0u) << "faulted run recovered nothing at all";
  EXPECT_LE(got.size(), oracle.size());
  for (const auto& [key, seen] : got) {
    const auto it = oracle.find(key);
    ASSERT_NE(it, oracle.end())
        << "fabricated base ts=" << std::get<0>(key)
        << " key=" << std::get<1>(key);
    EXPECT_LE(seen.match_count, it->second.match_count)
        << "base ts=" << std::get<0>(key) << " key=" << std::get<1>(key)
        << " has more matches than full knowledge allows";
  }
}

// --------------------------------------------- SIGTERM drain barrier

/// Graceful shutdown must be loss-free regardless of fsync policy: the
/// server's finalize path flushes pending ingest, runs the engine's
/// Sync() barrier, and only then exits. With --fsync none nothing else
/// would have forced the log out, so reading the directory back proves
/// the barrier ran.
TEST(CrashRecoveryTest, SigtermDrainMakesEveryAcceptedRecordDurable) {
  if (ServerBinary() == nullptr) {
    GTEST_SKIP() << "OIJ_SERVER_BIN not set";
  }
  constexpr uint64_t kTuples = 3'000;
  constexpr uint64_t kWmEvery = 64;
  constexpr uint32_t kJoiners = 2;  // watermarks replicate to 2 shards
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = kTuples;
  const auto events = Generate(workload);
  TempDir dir;

  ServerProc server;
  ASSERT_TRUE(server.Spawn({"--workload", "default", "--engine", "key-oij",
                            "--joiners", std::to_string(kJoiners),
                            "--wal-dir", dir.path(), "--fsync", "none"}));

  uint64_t watermarks_sent = 0;
  {
    LiveClient client(server.data_port());
    std::string batch;
    WatermarkTracker tracker(workload.lateness_us);
    uint64_t n = 0;
    for (const StreamEvent& ev : events) {
      tracker.Observe(ev.tuple.ts);
      AppendTupleFrame(&batch, ev);
      if (++n % kWmEvery == 0) {
        AppendWatermarkFrame(&batch, tracker.watermark());
        ++watermarks_sent;
      }
    }
    ASSERT_TRUE(client.Send(batch));  // note: no kFinish — run left open

    // Wait for the engine to consume everything (appends happen on the
    // ingest path, so the full logical record count — a replicated
    // watermark is one record — proves consumption).
    const double want_appended =
        static_cast<double>(kTuples + watermarks_sent);
    ASSERT_TRUE(WaitUntil([&] {
      return StatzNumberOr(server.admin_port(), "appended_records", -1) ==
             want_appended;
    })) << "WAL never saw every accepted record";

    server.Kill(SIGTERM);
    const int status = server.WaitExit();
    ASSERT_TRUE(WIFEXITED(status)) << "drain did not exit cleanly";
    EXPECT_EQ(WEXITSTATUS(status), 0);
    client.JoinReader();
  }

  // Under --fsync none only the drain barrier could have persisted this.
  WalReplayPlan plan;
  const Status s = BuildReplayPlan(dir.path(), &plan);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(plan.torn_tails, 0u) << "graceful drain left a torn tail";
  EXPECT_FALSE(plan.has_snapshot) << "no snapshot was configured";
  uint64_t tuple_records = 0, watermark_records = 0;
  for (const WalReplayRecord& r : plan.records) {
    if (r.is_watermark) {
      ++watermark_records;
    } else {
      ++tuple_records;
    }
  }
  EXPECT_EQ(tuple_records, kTuples)
      << "accepted tuples missing from the drained WAL";
  EXPECT_EQ(watermark_records, watermarks_sent)
      << "watermark punctuations missing from the drained WAL";
}

}  // namespace
}  // namespace oij
