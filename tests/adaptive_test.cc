#include <gtest/gtest.h>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "stream/disorder_estimator.h"
#include "stream/generator.h"

namespace oij {
namespace {

// -------------------------------------------------------- DisorderEstimator

TEST(DisorderEstimatorTest, InOrderStreamHasZeroDelays) {
  DisorderEstimator est;
  for (Timestamp ts = 0; ts < 100; ++ts) {
    EXPECT_EQ(est.Observe(ts), 0);
  }
  EXPECT_EQ(est.MaxDelay(), 0);
  EXPECT_EQ(est.DelayQuantile(0.999), 0);
  EXPECT_DOUBLE_EQ(est.CoverageAt(0), 1.0);
}

TEST(DisorderEstimatorTest, DelaysMeasuredAgainstRunningMax) {
  DisorderEstimator est;
  est.Observe(100);
  EXPECT_EQ(est.Observe(90), 10);   // 10 behind
  EXPECT_EQ(est.Observe(100), 0);   // equal to max: not late
  EXPECT_EQ(est.Observe(150), 0);
  EXPECT_EQ(est.Observe(75), 75);
  EXPECT_EQ(est.MaxDelay(), 75);
  EXPECT_EQ(est.observed(), 5u);
}

TEST(DisorderEstimatorTest, QuantileTracksDistribution) {
  DisorderEstimator est;
  Rng rng(5);
  Timestamp ts = 1'000'000;
  for (int i = 0; i < 50'000; ++i) {
    ts += 10;
    // 1% of tuples are ~1000 us late, the rest up to 100 us.
    const Timestamp delay = (rng.NextBelow(100) == 0)
                                ? 900 + rng.NextBelow(200)
                                : rng.NextBelow(100);
    est.Observe(ts - delay);
    est.Observe(ts);
  }
  // p90 must sit in the small-delay mass, p999+ must reach the tail.
  EXPECT_LT(est.DelayQuantile(0.90), 150);
  EXPECT_GT(est.DelayQuantile(0.9999), 500);
  EXPECT_GT(est.CoverageAt(150), 0.98);
}

// ---------------------------------------------- AdaptiveWatermarkTracker

TEST(AdaptiveWatermarkTest, WarmupUsesMaxObservedDelay) {
  AdaptiveWatermarkTracker::Options opts;
  opts.warmup_tuples = 1'000'000;  // never leaves warmup
  opts.min_lag_us = 5;
  AdaptiveWatermarkTracker tracker(opts);
  tracker.Observe(100);
  tracker.Observe(40);  // delay 60
  EXPECT_GE(tracker.CurrentLag(), 61);
  EXPECT_LE(tracker.watermark(), 100 - 61);
}

TEST(AdaptiveWatermarkTest, ViolationsCountedAgainstEmittedWatermark) {
  AdaptiveWatermarkTracker::Options opts;
  opts.min_lag_us = 10;
  opts.warmup_tuples = 1;
  AdaptiveWatermarkTracker tracker(opts);
  tracker.Observe(1000);
  const Timestamp wm = tracker.Emit();
  EXPECT_LT(wm, 1000);
  EXPECT_FALSE(tracker.Observe(wm + 1));
  EXPECT_TRUE(tracker.Observe(wm - 1));
  EXPECT_EQ(tracker.violations(), 1u);
}

TEST(AdaptiveWatermarkTest, TighterQuantileMeansSmallerLag) {
  // Feed the same disordered stream to a strict and a lax tracker: the
  // lax quantile must settle on a smaller (or equal) lag.
  WorkloadSpec spec;
  spec.num_keys = 4;
  spec.total_tuples = 50'000;
  spec.lateness_us = 1000;
  spec.disorder_bound_us = 1000;
  spec.seed = 11;

  AdaptiveWatermarkTracker::Options strict_opts;
  strict_opts.quantile = 1.0;
  AdaptiveWatermarkTracker::Options lax_opts;
  lax_opts.quantile = 0.9;
  lax_opts.safety_factor = 1.0;
  AdaptiveWatermarkTracker strict(strict_opts), lax(lax_opts);

  WorkloadGenerator gen(spec);
  StreamEvent ev;
  while (gen.Next(&ev)) {
    strict.Observe(ev.tuple.ts);
    lax.Observe(ev.tuple.ts);
  }
  EXPECT_LE(lax.CurrentLag(), strict.CurrentLag());
  EXPECT_LT(lax.CurrentLag(), 1000);
  // The strict tracker covers everything seen.
  EXPECT_DOUBLE_EQ(strict.estimator().CoverageAt(strict.CurrentLag()), 1.0);
}

// ---------------------------------------------- pipeline integration

TEST(AdaptivePipelineTest, AdaptiveRunReportsLagAndViolations) {
  WorkloadSpec w;
  w.num_keys = 8;
  w.total_tuples = 60'000;
  w.lateness_us = 500;
  w.disorder_bound_us = 500;
  w.window = IntervalWindow{400, 0};
  w.seed = 23;

  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kWatermark;

  PipelineConfig config;
  config.adaptive_lateness = true;
  config.adaptive.quantile = 0.99;
  config.adaptive.safety_factor = 1.5;
  config.watermark_interval_events = 256;

  NullSink sink;
  EngineOptions options;
  options.num_joiners = 2;
  auto engine = CreateEngine(EngineKind::kScaleOij, q, options, &sink);
  WorkloadGenerator gen(w);
  const RunResult run = RunPipeline(engine.get(), &gen, config);

  EXPECT_GT(run.final_adaptive_lag_us, 0);
  EXPECT_LE(run.final_adaptive_lag_us, 2 * w.lateness_us);
  // A 99th-percentile policy on uniformly distributed delays loses at
  // most a small fraction of tuples to the watermark.
  EXPECT_LT(static_cast<double>(run.watermark_violations) /
                static_cast<double>(run.tuples),
            0.05);
  EXPECT_EQ(run.stats.results + 0, run.stats.results);  // ran to completion
}

TEST(AdaptivePipelineTest, StrictQuantileHasNoViolationsOnBoundedDisorder) {
  WorkloadSpec w;
  w.num_keys = 4;
  w.total_tuples = 40'000;
  w.lateness_us = 200;
  w.disorder_bound_us = 200;
  w.seed = 29;

  QuerySpec q;
  q.window = IntervalWindow{400, 0};
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kWatermark;

  PipelineConfig config;
  config.adaptive_lateness = true;
  config.adaptive.quantile = 1.0;
  config.adaptive.safety_factor = 1.0;
  // Max-delay tracking can only lag one observation behind; a modest
  // safety floor absorbs that.
  config.adaptive.min_lag_us = 250;

  NullSink sink;
  EngineOptions options;
  options.num_joiners = 2;
  auto engine = CreateEngine(EngineKind::kKeyOij, q, options, &sink);
  WorkloadGenerator gen(w);
  const RunResult run = RunPipeline(engine.get(), &gen, config);
  EXPECT_EQ(run.watermark_violations, 0u);
}

}  // namespace
}  // namespace oij
