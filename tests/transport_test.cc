// Tests for the micro-batched router -> joiner transport: SpscQueue batch
// operations (single head/tail publication per batch), FIFO preservation
// across mixed single/batch operations and interleaved control events,
// the SizeApprox sampling race (regression: loading tail before head let
// a concurrent pop underflow the subtraction to ~2^64), exactness of the
// batched engines against the reference join, and the control-loss
// accounting when a watermark cannot be delivered.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/spsc_queue.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "stream/generator.h"

namespace oij {
namespace {

// ---------------------------------------------------------------------------
// SpscQueue batch semantics.
// ---------------------------------------------------------------------------

TEST(SpscBatchTest, PushBatchFillsAndReportsPartial) {
  SpscQueue<int> q(8);  // rounds to capacity 8
  ASSERT_EQ(q.capacity(), 8u);
  int items[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(q.PushBatch(items, 6), 6u);
  // Only 2 slots left: a 6-item batch is truncated, not rejected.
  EXPECT_EQ(q.PushBatch(items, 6), 2u);
  // Full ring: nothing fits.
  EXPECT_EQ(q.PushBatch(items, 3), 0u);
  EXPECT_FALSE(q.TryPush(99));
}

TEST(SpscBatchTest, PopBatchDrainsInOrderAndReportsPartial) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(i));
  int out[8] = {};
  // Asking for more than is available returns what's there.
  EXPECT_EQ(q.PopBatch(out, 8), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.PopBatch(out, 8), 0u);
}

TEST(SpscBatchTest, BatchOpsWrapAroundTheRing) {
  SpscQueue<int> q(4);
  int out[4] = {};
  int next = 0;
  // Push/pop in chunks of 3 over a capacity-4 ring: every iteration
  // straddles the wrap point somewhere.
  for (int round = 0; round < 50; ++round) {
    int items[3] = {next, next + 1, next + 2};
    ASSERT_EQ(q.PushBatch(items, 3), 3u) << "round " << round;
    ASSERT_EQ(q.PopBatch(out, 3), 3u) << "round " << round;
    for (int i = 0; i < 3; ++i) ASSERT_EQ(out[i], next + i);
    next += 3;
  }
}

// FIFO property: any random interleaving of single/batch pushes and pops
// must observe exactly the sequence a std::deque model observes —
// including "control" markers (negative values) mixed between tuples,
// mirroring how watermark/flush punctuations interleave with batched
// tuples in the engine transport.
TEST(SpscBatchTest, MixedSingleAndBatchOpsPreserveFifo) {
  SpscQueue<int> q(16);
  std::deque<int> model;
  std::mt19937 rng(42);
  int next = 0;
  int buf[24];
  for (int step = 0; step < 200'000; ++step) {
    switch (rng() % 5) {
      case 0: {  // single push (tuple)
        if (q.TryPush(next)) model.push_back(next);
        ++next;
        break;
      }
      case 1: {  // single push (control marker)
        const int marker = -(next + 1);
        if (q.TryPush(marker)) model.push_back(marker);
        ++next;
        break;
      }
      case 2: {  // batch push, possibly larger than the free space
        const size_t n = 1 + rng() % 24;
        for (size_t i = 0; i < n; ++i) buf[i] = next + static_cast<int>(i);
        const size_t pushed = q.PushBatch(buf, n);
        ASSERT_LE(pushed, n);
        for (size_t i = 0; i < pushed; ++i) model.push_back(buf[i]);
        next += static_cast<int>(n);
        break;
      }
      case 3: {  // single pop
        int v;
        if (q.TryPop(&v)) {
          ASSERT_FALSE(model.empty());
          ASSERT_EQ(v, model.front());
          model.pop_front();
        }
        break;
      }
      default: {  // batch pop
        const size_t n = 1 + rng() % 24;
        const size_t popped = q.PopBatch(buf, n);
        ASSERT_LE(popped, model.size());
        for (size_t i = 0; i < popped; ++i) {
          ASSERT_EQ(buf[i], model.front());
          model.pop_front();
        }
        break;
      }
    }
    ASSERT_EQ(q.SizeApprox(), model.size());
  }
}

// Concurrent batch transfer: everything the producer pushes arrives, in
// order, with both sides using the batch operations.
TEST(SpscBatchTest, ConcurrentBatchTransferDeliversEverythingInOrder) {
  constexpr uint64_t kTotal = 2'000'000;
  SpscQueue<uint64_t> q(1024);
  std::thread producer([&] {
    uint64_t chunk[64];
    uint64_t sent = 0;
    std::mt19937 rng(7);
    while (sent < kTotal) {
      const size_t n =
          std::min<uint64_t>(1 + rng() % 64, kTotal - sent);
      for (size_t i = 0; i < n; ++i) chunk[i] = sent + i;
      size_t done = 0;
      while (done < n) done += q.PushBatch(chunk + done, n - done);
      sent += n;
    }
  });
  uint64_t expect = 0;
  uint64_t buf[128];
  while (expect < kTotal) {
    const size_t got = q.PopBatch(buf, 128);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(buf[i], expect) << "out-of-order or lost element";
      ++expect;
    }
  }
  producer.join();
  EXPECT_EQ(q.PopBatch(buf, 128), 0u);
}

// Regression for the SizeApprox race: the old implementation loaded
// `tail_` before `head_`, so pops completing between the two loads could
// make head overtake the sampled tail and underflow the unsigned
// subtraction to ~2^64 (the watchdog then saw an impossible backlog).
// The two loads sit nanoseconds apart, so the widest — and on a busy
// machine, common — window is a sampler thread getting *preempted*
// between them: oversubscribe with several watchdog-like samplers so
// the scheduler regularly deschedules one mid-sample while the producer
// and consumer keep the indices moving. Against the pre-fix ordering
// this observes depths around 2^64 every run; post-fix, a sampled depth
// can never exceed capacity.
TEST(SpscBatchTest, SizeApproxNeverExceedsCapacityUnderConcurrency) {
  SpscQueue<uint64_t> q(64);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    uint64_t v = 0;
    while (!done.load(std::memory_order_relaxed)) q.TryPush(v++);
  });
  std::thread consumer([&] {
    uint64_t v;
    while (!done.load(std::memory_order_relaxed)) q.TryPop(&v);
  });

  const unsigned n_samplers =
      3 + 2 * std::thread::hardware_concurrency();
  std::atomic<uint64_t> total_samples{0};
  std::atomic<uint64_t> overflows{0};
  std::vector<std::thread> samplers;
  for (unsigned t = 0; t < n_samplers; ++t) {
    samplers.emplace_back([&] {
      uint64_t samples = 0;
      uint64_t bad = 0;
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(2000);
      while (std::chrono::steady_clock::now() < until) {
        for (int i = 0; i < 200; ++i) {
          if (q.SizeApprox() > q.capacity()) ++bad;
          ++samples;
        }
      }
      total_samples.fetch_add(samples, std::memory_order_relaxed);
      overflows.fetch_add(bad, std::memory_order_relaxed);
    });
  }
  for (auto& th : samplers) th.join();
  done.store(true);
  producer.join();
  consumer.join();

  EXPECT_EQ(overflows.load(), 0u)
      << "SizeApprox underflowed past capacity (" << overflows.load()
      << " of " << total_samples.load() << " samples)";
  EXPECT_GT(total_samples.load(), 100'000u)
      << "samplers starved; race barely exercised";
}

// ---------------------------------------------------------------------------
// Batched engines stay exact.
// ---------------------------------------------------------------------------

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

std::vector<ReferenceResult> RunBatched(EngineKind kind,
                                        const std::vector<StreamEvent>& events,
                                        const QuerySpec& spec,
                                        uint32_t batch_size,
                                        uint32_t joiners) {
  EngineOptions options;
  options.num_joiners = joiners;
  options.batch_size = batch_size;
  CollectingSink sink;
  auto engine = CreateEngine(kind, spec, options, &sink);
  EXPECT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(spec.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    tracker.Observe(ev.tuple.ts);
    engine->Push(ev, MonotonicNowUs());
    if (++n % 256 == 0) engine->SignalWatermark(tracker.watermark());
    // Exercise the mid-stream flush path the pipeline uses before pacing
    // waits: it must be a behavioural no-op for correctness.
    if (n % 1000 == 0) engine->FlushPending();
  }
  engine->Finish();
  std::vector<ReferenceResult> results;
  for (const JoinResult& r : sink.TakeResults()) {
    results.push_back({r.base, r.aggregate, r.match_count});
  }
  SortResults(&results);
  return results;
}

void ExpectSameResults(const std::vector<ReferenceResult>& got,
                       const std::vector<ReferenceResult>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].base, want[i].base) << label << " result " << i;
    ASSERT_EQ(got[i].match_count, want[i].match_count)
        << label << " result " << i;
    ASSERT_NEAR(got[i].aggregate, want[i].aggregate, 1e-6)
        << label << " result " << i;
  }
}

/// Differential grid: with batching enabled at several sizes, every
/// partitioned engine must produce byte-identical results to both the
/// reference join and its own unbatched (batch_size = 1) run, across
/// key-count x window x lateness variations.
TEST(BatchedTransportTest, DifferentialGridMatchesReferenceAndUnbatched) {
  struct GridPoint {
    uint64_t keys;
    IntervalWindow window;
    Timestamp lateness;
  };
  const GridPoint grid[] = {
      {8, {400, 0}, 50},
      {2, {400, 0}, 50},     // few keys: broadcast/designation stress
      {8, {200, 150}, 50},   // following window
      {8, {400, 0}, 2000},   // lateness >> window
  };
  const EngineKind kinds[] = {EngineKind::kKeyOij, EngineKind::kScaleOij,
                              EngineKind::kSplitJoin};
  const uint32_t batch_sizes[] = {2, 5, 32};

  for (const GridPoint& g : grid) {
    WorkloadSpec w;
    w.num_keys = g.keys;
    w.window = g.window;
    w.lateness_us = g.lateness;
    w.disorder_bound_us = g.lateness;
    w.event_rate_per_sec = 1'000'000;
    w.total_tuples = 20'000;
    w.probe_fraction = 0.5;
    w.seed = 7'000 + g.keys + static_cast<uint64_t>(g.window.fol);
    const auto events = Generate(w);

    QuerySpec q;
    q.window = g.window;
    q.lateness_us = g.lateness;
    q.emit_mode = EmitMode::kWatermark;
    auto expected = ReferenceJoin(events, q);
    SortResults(&expected);

    for (EngineKind kind : kinds) {
      const auto unbatched = RunBatched(kind, events, q, /*batch=*/1,
                                        /*joiners=*/3);
      ExpectSameResults(unbatched, expected,
                        std::string(EngineKindName(kind)) + "/b1");
      for (uint32_t b : batch_sizes) {
        const std::string label = std::string(EngineKindName(kind)) +
                                  "/keys" + std::to_string(g.keys) + "/b" +
                                  std::to_string(b);
        const auto batched = RunBatched(kind, events, q, b, /*joiners=*/3);
        ExpectSameResults(batched, expected, label + " vs reference");
        ExpectSameResults(batched, unbatched, label + " vs unbatched");
      }
    }
  }
}

TEST(BatchedTransportTest, ValidateRejectsZeroBatchAndNegativeTimer) {
  QuerySpec q;
  q.window = IntervalWindow{400, 0};
  q.lateness_us = 50;
  NullSink sink;
  {
    EngineOptions options;
    options.batch_size = 0;
    auto engine = CreateEngine(EngineKind::kKeyOij, q, options, &sink);
    EXPECT_FALSE(engine->Start().ok());
  }
  {
    EngineOptions options;
    options.batch_flush_us = -1;
    auto engine = CreateEngine(EngineKind::kKeyOij, q, options, &sink);
    EXPECT_FALSE(engine->Start().ok());
  }
}

// ---------------------------------------------------------------------------
// Control-event loss is counted and surfaced, never silent.
// ---------------------------------------------------------------------------

/// A joiner parked before consuming anything fills its ring; once the
/// watchdog escalates and raises the stop token, watermark punctuations
/// to that joiner can no longer be delivered. Previously SignalWatermark
/// ignored the failed enqueue and the run looked pristine; now the loss
/// must appear in control_lost / per_joiner_control_lost and a warning.
TEST(ControlLossTest, UndeliverableWatermarksAreCountedAndWarned) {
  WorkloadSpec w;
  w.num_keys = 8;
  w.window = IntervalWindow{400, 0};
  w.lateness_us = 60;
  w.disorder_bound_us = 60;
  w.total_tuples = 4'000;
  w.seed = 641;
  const auto events = Generate(w);

  FaultInjector faults;
  faults.stalled_joiner = 0;
  faults.stall_after_events = 0;  // park before consuming anything

  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kWatermark;

  EngineOptions options;
  options.num_joiners = 2;
  options.queue_capacity = 8;
  // Lossy tuple policy so the driver itself never blocks on the wedged
  // ring; only control events insist on delivery.
  options.overload_policy = OverloadPolicy::kDropNewest;
  options.fault_injector = &faults;
  options.watchdog.interval_ms = 10;
  options.watchdog.stall_intervals = 3;
  options.finish_timeout_us = 10'000'000;

  CountingSink sink;
  auto engine = CreateEngine(EngineKind::kKeyOij, q, options, &sink);
  ASSERT_TRUE(engine->Start().ok());

  WatermarkTracker tracker(q.lateness_us);
  for (size_t i = 0; i < 200 && i < events.size(); ++i) {
    engine->Push(events[i], MonotonicNowUs());
    tracker.Observe(events[i].tuple.ts);
  }
  // Joiner 0's ring is wedged full; give the watchdog time to escalate
  // and raise the stop token.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (int i = 0; i < 5; ++i) engine->SignalWatermark(tracker.watermark());
  const EngineStats stats = engine->Finish();

  EXPECT_EQ(stats.health.code(), Status::Code::kResourceExhausted)
      << stats.health.ToString();
  EXPECT_GE(stats.control_lost, 1u);
  ASSERT_EQ(stats.per_joiner_control_lost.size(), 2u);
  EXPECT_GE(stats.per_joiner_control_lost[0], 1u);
  bool warned = false;
  for (const std::string& warning : stats.warnings) {
    if (warning.find("control") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << "control loss must mark the run non-pristine";
}

TEST(ControlLossTest, CleanRunLosesNothing) {
  WorkloadSpec w;
  w.num_keys = 8;
  w.window = IntervalWindow{400, 0};
  w.lateness_us = 60;
  w.disorder_bound_us = 60;
  w.total_tuples = 10'000;
  w.seed = 642;
  const auto events = Generate(w);

  QuerySpec q;
  q.window = w.window;
  q.lateness_us = w.lateness_us;
  q.emit_mode = EmitMode::kWatermark;

  EngineOptions options;
  options.num_joiners = 3;
  CountingSink sink;
  auto engine = CreateEngine(EngineKind::kScaleOij, q, options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(q.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& ev : events) {
    engine->Push(ev, MonotonicNowUs());
    tracker.Observe(ev.tuple.ts);
    if (++n % 64 == 0) engine->SignalWatermark(tracker.watermark());
  }
  const EngineStats stats = engine->Finish();
  EXPECT_TRUE(stats.health.ok()) << stats.health.ToString();
  EXPECT_EQ(stats.control_lost, 0u);
  for (uint64_t lost : stats.per_joiner_control_lost) EXPECT_EQ(lost, 0u);
  EXPECT_TRUE(stats.warnings.empty());
}

}  // namespace
}  // namespace oij
