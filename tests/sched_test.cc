#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "common/random.h"
#include "sched/load_stats.h"
#include "sched/partition_table.h"
#include "sched/rebalancer.h"

namespace oij {
namespace {

// ------------------------------------------------------------- LoadStats

TEST(LoadStatsTest, AddAndDecay) {
  LoadStats stats(4);
  stats.Add(0, 10);
  stats.Add(1, 20);
  stats.Add(0);
  EXPECT_DOUBLE_EQ(stats.count(0), 11.0);
  EXPECT_DOUBLE_EQ(stats.count(1), 20.0);
  EXPECT_DOUBLE_EQ(stats.Total(), 31.0);
  stats.Decay(0.5);
  EXPECT_DOUBLE_EQ(stats.count(0), 5.5);
  EXPECT_DOUBLE_EQ(stats.Total(), 15.5);
}

// --------------------------------------------------------- PartitionTable

TEST(PartitionTableTest, StaticScheduleRoundRobins) {
  auto s = Schedule::MakeStatic(8, 3);
  EXPECT_EQ(s->num_partitions(), 8u);
  EXPECT_EQ(s->num_joiners, 3u);
  for (uint32_t p = 0; p < 8; ++p) {
    ASSERT_EQ(s->teams[p].size(), 1u);
    EXPECT_EQ(s->teams[p][0], p % 3);
  }
}

TEST(PartitionTableTest, PublishAndSnapshot) {
  PartitionTable table(8, 2);
  auto before = table.Snapshot();
  EXPECT_EQ(before->version, 0u);

  auto next = std::make_shared<Schedule>(*before);
  next->version = 1;
  next->teams[0].push_back(1);
  table.Publish(next);
  auto after = table.Snapshot();
  EXPECT_EQ(after->version, 1u);
  EXPECT_EQ(after->teams[0].size(), 2u);
}

TEST(PartitionTableTest, PartitionOfIsStableAndInRange) {
  for (Key k = 0; k < 1000; ++k) {
    const uint32_t p = PartitionTable::PartitionOf(k, 64);
    EXPECT_LT(p, 64u);
    EXPECT_EQ(p, PartitionTable::PartitionOf(k, 64));
  }
}

TEST(PartitionTableTest, FewKeysLandOnFewPartitions) {
  // The premise of the skew problem: 5 keys can occupy at most 5
  // partitions regardless of the partition count.
  std::set<uint32_t> partitions;
  for (Key k = 0; k < 5; ++k) {
    partitions.insert(PartitionTable::PartitionOf(k, 256));
  }
  EXPECT_LE(partitions.size(), 5u);
}

// ------------------------------------------------------------ Rebalancer

TEST(RebalancerTest, WorkloadsFollowEquationThree) {
  // Partition 0 shared by joiners {0,1}: each gets half of its load.
  auto s = std::make_shared<Schedule>();
  s->num_joiners = 2;
  s->teams = {{0, 1}, {1}};
  LoadStats stats(2);
  stats.Add(0, 10);
  stats.Add(1, 4);
  const auto w = Rebalancer::JoinerWorkloads(*s, stats);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[1], 9.0);
}

TEST(RebalancerTest, UnbalancednessZeroWhenEqual) {
  EXPECT_DOUBLE_EQ(Rebalancer::Unbalancedness({5, 5, 5, 5}), 0.0);
  EXPECT_GT(Rebalancer::Unbalancedness({10, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(Rebalancer::Unbalancedness({}), 0.0);
  EXPECT_DOUBLE_EQ(Rebalancer::Unbalancedness({0, 0}), 0.0);
}

TEST(RebalancerTest, SkewedSingleHotPartitionGetsReplicated) {
  // One scorching partition on joiner 0; three idle joiners.
  auto current = Schedule::MakeStatic(4, 4);
  LoadStats stats(4);
  stats.Add(0, 1000);
  stats.Add(1, 10);
  stats.Add(2, 10);
  stats.Add(3, 10);

  Rebalancer rebalancer;
  const auto before_w = Rebalancer::JoinerWorkloads(*current, stats);
  const double before = Rebalancer::Unbalancedness(before_w);

  auto next = rebalancer.Rebalance(current, &stats);
  ASSERT_NE(next, current) << "rebalancer left a skewed schedule unchanged";
  // The hot partition's team must have grown.
  EXPECT_GT(next->teams[0].size(), 1u);
  // Workloads re-estimated on un-decayed stats must be flatter.
  LoadStats fresh(4);
  fresh.Add(0, 1000);
  fresh.Add(1, 10);
  fresh.Add(2, 10);
  fresh.Add(3, 10);
  const double after =
      Rebalancer::Unbalancedness(Rebalancer::JoinerWorkloads(*next, fresh));
  EXPECT_LT(after, before);
  EXPECT_EQ(next->version, current->version + 1);
}

TEST(RebalancerTest, BalancedLoadIsAFixedPoint) {
  auto current = Schedule::MakeStatic(8, 4);
  LoadStats stats(8);
  for (uint32_t p = 0; p < 8; ++p) stats.Add(p, 100);
  Rebalancer rebalancer;
  auto next = rebalancer.Rebalance(current, &stats);
  EXPECT_EQ(next, current) << "balanced schedule should not change";
}

TEST(RebalancerTest, ReplicationOnlyNeverRemovesMembers) {
  // Correctness invariant: the old owner stays in every team (paper:
  // sharing, never transferring).
  auto current = Schedule::MakeStatic(16, 4);
  LoadStats stats(16);
  Rng rng(5);
  for (uint32_t p = 0; p < 16; ++p) {
    stats.Add(p, static_cast<double>(rng.NextBelow(1000)));
  }
  Rebalancer rebalancer;
  auto next = rebalancer.Rebalance(current, &stats);
  for (uint32_t p = 0; p < 16; ++p) {
    for (uint32_t j : current->teams[p]) {
      EXPECT_TRUE(std::find(next->teams[p].begin(), next->teams[p].end(),
                            j) != next->teams[p].end())
          << "joiner " << j << " dropped from partition " << p;
    }
  }
}

TEST(RebalancerTest, DecayAppliedAfterRebalance) {
  auto current = Schedule::MakeStatic(2, 2);
  LoadStats stats(2);
  stats.Add(0, 100);
  stats.Add(1, 100);
  RebalanceConfig config;
  config.decay = 0.25;
  Rebalancer rebalancer(config);
  rebalancer.Rebalance(current, &stats);
  EXPECT_DOUBLE_EQ(stats.count(0), 25.0);
}

TEST(RebalancerTest, TeamsSortedAndUniqueAfterReplication) {
  auto current = Schedule::MakeStatic(2, 3);
  LoadStats stats(2);
  stats.Add(0, 1000);  // joiner 0 hot; partition 1 on joiner 1
  stats.Add(1, 1);
  Rebalancer rebalancer;
  auto next = rebalancer.Rebalance(current, &stats);
  for (const auto& team : next->teams) {
    EXPECT_TRUE(std::is_sorted(team.begin(), team.end()));
    EXPECT_EQ(std::set<uint32_t>(team.begin(), team.end()).size(),
              team.size())
        << "duplicate members";
  }
}

TEST(RebalancerTest, ConvergesUnderRepeatedSkew) {
  // Property: iterating rebalance on a fixed skewed distribution must
  // monotonically reduce estimated unbalancedness until stable.
  std::shared_ptr<const Schedule> schedule = Schedule::MakeStatic(8, 8);
  Rebalancer rebalancer;
  double prev = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 10; ++round) {
    LoadStats stats(8);
    stats.Add(0, 6400);  // one dominant partition
    for (uint32_t p = 1; p < 8; ++p) stats.Add(p, 100);
    const double u = Rebalancer::Unbalancedness(
        Rebalancer::JoinerWorkloads(*schedule, stats));
    EXPECT_LE(u, prev + 1e-9) << "unbalancedness increased in round "
                              << round;
    prev = u;
    schedule = rebalancer.Rebalance(schedule, &stats);
  }
  // The dominant partition ends up shared widely.
  EXPECT_GE(schedule->teams[0].size(), 4u);
}

}  // namespace
}  // namespace oij
