#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "mem/node_arena.h"

namespace oij {
namespace {

constexpr size_t kSlab = NodeArena::kSlabBytes;

TEST(NodeArenaTest, ReturnsAlignedDistinctWritableBlocks) {
  NodeArena arena;
  std::set<void*> seen;
  for (size_t bytes : {1u, 15u, 16u, 17u, 48u, 64u, 168u, 256u}) {
    void* p = arena.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % NodeArena::kGranule, 0u)
        << bytes << " bytes";
    EXPECT_TRUE(seen.insert(p).second) << "duplicate block";
    std::memset(p, 0xab, bytes);  // must be writable end to end
  }
}

TEST(NodeArenaTest, SizeClassesShareBlocksOnlyWithinClass) {
  // Blocks of one 16-byte class must be reusable across requests that
  // round to the same class, and a freed block is handed back LIFO.
  NodeArena arena;
  void* keeper = arena.Allocate(48);  // keeps the slab alive (non-empty)
  void* a = arena.Allocate(33);       // class 48
  arena.Deallocate(a, 33);
  void* b = arena.Allocate(41);  // also class 48
  EXPECT_EQ(a, b) << "freed block not reused within its class";

  void* c = arena.Allocate(49);  // class 64: different slab entirely
  EXPECT_NE(c, a);
  arena.Deallocate(c, 49);
  arena.Deallocate(b, 41);
  arena.Deallocate(keeper, 48);
}

TEST(NodeArenaTest, ExhaustionGrowsByWholeSlabs) {
  NodeArena arena;
  const size_t block = 64;
  // One slab holds < kSlab/block blocks (header overhead); allocating
  // 3x that many must grow reserved_bytes in whole-slab steps.
  const size_t n = 3 * (kSlab / block);
  std::vector<void*> blocks;
  for (size_t i = 0; i < n; ++i) blocks.push_back(arena.Allocate(block));

  const NodeArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.live_nodes, n);
  EXPECT_EQ(s.allocations, n);
  EXPECT_GE(s.reserved_bytes, 3 * kSlab);
  EXPECT_EQ(s.reserved_bytes % kSlab, 0u);

  for (void* p : blocks) arena.Deallocate(p, block);
  EXPECT_EQ(arena.snapshot().live_nodes, 0u);
}

TEST(NodeArenaTest, FullyDeadSlabIsRecycledAcrossClasses) {
  NodeArena arena;
  // Fill several slabs of class 160, then free everything: the slabs
  // must land in the empty pool (recycle counter) without returning
  // memory to the OS...
  const size_t n = 2 * (kSlab / 160);
  std::vector<void*> blocks;
  for (size_t i = 0; i < n; ++i) blocks.push_back(arena.Allocate(160));
  const uint64_t reserved = arena.snapshot().reserved_bytes;
  EXPECT_EQ(arena.EmptySlabCount(), 0u);

  for (void* p : blocks) arena.Deallocate(p, 160);
  const NodeArena::Stats after_free = arena.snapshot();
  EXPECT_GE(after_free.slab_recycles, 2u);
  EXPECT_EQ(after_free.reserved_bytes, reserved);
  EXPECT_GE(arena.EmptySlabCount(), 2u);

  // ...and a *different* size class must then be served from the pool
  // instead of growing the arena.
  const size_t m = kSlab / 32;
  std::vector<void*> small(m);
  for (size_t i = 0; i < m; ++i) small[i] = arena.Allocate(32);
  EXPECT_EQ(arena.snapshot().reserved_bytes, reserved)
      << "allocation grew the arena while recycled slabs sat idle";
  for (size_t i = 0; i < m; ++i) arena.Deallocate(small[i], 32);
}

TEST(NodeArenaTest, PartialFreeKeepsSlabServingItsClass) {
  NodeArena arena;
  const size_t n = kSlab / 48;  // more than one slab's worth of class 48
  std::vector<void*> blocks;
  for (size_t i = 0; i < n; ++i) blocks.push_back(arena.Allocate(48));
  // Free every other block; the slab stays partially live and its free
  // list must serve subsequent same-class allocations.
  for (size_t i = 0; i < n; i += 2) arena.Deallocate(blocks[i], 48);
  const uint64_t reserved = arena.snapshot().reserved_bytes;
  for (size_t i = 0; i < n; i += 2) blocks[i] = arena.Allocate(48);
  EXPECT_EQ(arena.snapshot().reserved_bytes, reserved);
  for (void* p : blocks) arena.Deallocate(p, 48);
}

TEST(NodeArenaTest, OversizeRequestsFallThroughToHeap) {
  NodeArena arena;
  void* p = arena.Allocate(4096);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xcd, 4096);
  const NodeArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.oversize_allocs, 1u);
  EXPECT_EQ(s.live_nodes, 1u);
  EXPECT_EQ(s.reserved_bytes, 0u) << "oversize must not consume slabs";
  arena.Deallocate(p, 4096);
  EXPECT_EQ(arena.snapshot().live_nodes, 0u);
}

TEST(NodeArenaTest, ChurnAtFixedPopulationStopsGrowing) {
  // Steady-state churn (the engine's regime: insert+evict at a fixed
  // window population) must reach a fixed memory footprint.
  NodeArena arena;
  constexpr size_t kPopulation = 1024;
  constexpr size_t kChurn = 50'000;
  std::vector<void*> window(kPopulation);
  for (size_t i = 0; i < kPopulation; ++i) window[i] = arena.Allocate(80);
  const uint64_t reserved = arena.snapshot().reserved_bytes;
  for (size_t i = 0; i < kChurn; ++i) {
    const size_t j = i % kPopulation;
    arena.Deallocate(window[j], 80);
    window[j] = arena.Allocate(80);
  }
  const NodeArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.reserved_bytes, reserved) << "churn leaked slabs";
  EXPECT_EQ(s.live_nodes, kPopulation);
  for (void* p : window) arena.Deallocate(p, 80);
}

}  // namespace
}  // namespace oij
