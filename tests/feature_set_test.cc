#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.h"
#include "core/engine_factory.h"
#include "core/feature_set.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "stream/generator.h"

namespace oij {
namespace {

constexpr const char* kMultiSql = R"sql(
SELECT sum(amt), count(amt), avg(amt), min(amt), max(amt) OVER w FROM S
WINDOW w AS (
  UNION R PARTITION BY k ORDER BY ts
  ROWS_RANGE BETWEEN 500us PRECEDING AND CURRENT ROW
  LATENESS 50us);
)sql";

TEST(FeatureSetTest, CompilesMultiSelect) {
  FeatureSetSpec fs;
  ASSERT_TRUE(CompileFeatureSet(kMultiSql, &fs).ok());
  ASSERT_EQ(fs.outputs.size(), 5u);
  EXPECT_EQ(fs.outputs[0].kind, AggKind::kSum);
  EXPECT_EQ(fs.outputs[1].kind, AggKind::kCount);
  EXPECT_EQ(fs.outputs[2].kind, AggKind::kAvg);
  EXPECT_EQ(fs.outputs[3].kind, AggKind::kMin);
  EXPECT_EQ(fs.outputs[4].kind, AggKind::kMax);
  EXPECT_EQ(fs.outputs[0].name, "sum(amt)");
  EXPECT_EQ(fs.query.agg, AggKind::kSum);
  EXPECT_EQ(fs.query.window.pre, 500);
  EXPECT_EQ(fs.query.lateness_us, 50);
}

TEST(FeatureSetTest, SingleSelectStillWorks) {
  FeatureSetSpec fs;
  ASSERT_TRUE(CompileFeatureSet(
                  "SELECT sum(v) OVER w FROM S WINDOW w AS (UNION R "
                  "PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN 1s "
                  "PRECEDING AND CURRENT ROW)",
                  &fs)
                  .ok());
  EXPECT_EQ(fs.outputs.size(), 1u);
  EXPECT_FALSE(fs.RequiresFullState());
}

TEST(FeatureSetTest, RequiresFullStateClassification) {
  auto make = [](std::initializer_list<AggKind> kinds) {
    FeatureSetSpec fs;
    for (AggKind k : kinds) fs.outputs.push_back({k, "v", ""});
    return fs;
  };
  EXPECT_FALSE(make({AggKind::kSum, AggKind::kCount, AggKind::kAvg})
                   .RequiresFullState());
  EXPECT_FALSE(make({AggKind::kMax}).RequiresFullState());
  EXPECT_TRUE(make({AggKind::kMin, AggKind::kMax}).RequiresFullState());
  EXPECT_TRUE(make({AggKind::kSum, AggKind::kMax}).RequiresFullState());
}

TEST(FeatureSetTest, RejectsUnknownFunctionInAnyPosition) {
  FeatureSetSpec fs;
  EXPECT_FALSE(CompileFeatureSet(
                   "SELECT sum(v), median(v) OVER w FROM S WINDOW w AS "
                   "(UNION R PARTITION BY k ORDER BY ts ROWS_RANGE "
                   "BETWEEN 1s PRECEDING AND CURRENT ROW)",
                   &fs)
                   .ok());
}

TEST(FeatureSetTest, ExtractFromMaterializedResult) {
  JoinResult r;
  r.match_count = 4;
  r.sum = 20.0;
  r.min = 2.0;
  r.max = 8.0;
  EXPECT_DOUBLE_EQ(ExtractFeature(r, AggKind::kSum), 20.0);
  EXPECT_DOUBLE_EQ(ExtractFeature(r, AggKind::kCount), 4.0);
  EXPECT_DOUBLE_EQ(ExtractFeature(r, AggKind::kAvg), 5.0);
  EXPECT_DOUBLE_EQ(ExtractFeature(r, AggKind::kMin), 2.0);
  EXPECT_DOUBLE_EQ(ExtractFeature(r, AggKind::kMax), 8.0);
}

TEST(FeatureSetTest, ExtractFromEmptyWindow) {
  JoinResult r;
  r.match_count = 0;
  EXPECT_DOUBLE_EQ(ExtractFeature(r, AggKind::kSum), 0.0);
  EXPECT_DOUBLE_EQ(ExtractFeature(r, AggKind::kCount), 0.0);
  EXPECT_TRUE(std::isnan(ExtractFeature(r, AggKind::kAvg)));
  EXPECT_TRUE(std::isnan(ExtractFeature(r, AggKind::kMin)));
  EXPECT_TRUE(std::isnan(ExtractFeature(r, AggKind::kMax)));
}

TEST(FeatureSetTest, ExtractNanWhenNotMaterialized) {
  JoinResult r;
  r.match_count = 3;  // incremental path: sum/min/max left NaN
  EXPECT_TRUE(std::isnan(ExtractFeature(r, AggKind::kSum)) ||
              r.match_count == 0);
  EXPECT_TRUE(std::isnan(ExtractFeature(r, AggKind::kAvg)));
  EXPECT_TRUE(std::isnan(ExtractFeature(r, AggKind::kMin)));
}

/// End-to-end: one engine run serves all five features exactly, for every
/// full-materialization engine.
class FeatureSetEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(FeatureSetEngineTest, AllFeaturesExactInOneRun) {
  const EngineKind kind = GetParam();
  FeatureSetSpec fs;
  ASSERT_TRUE(CompileFeatureSet(kMultiSql, &fs).ok());
  fs.query.emit_mode = EmitMode::kWatermark;

  WorkloadSpec w;
  w.num_keys = 6;
  w.window = fs.query.window;
  w.lateness_us = fs.query.lateness_us;
  w.disorder_bound_us = fs.query.lateness_us;
  w.total_tuples = 20'000;
  w.seed = 99;

  WorkloadGenerator gen(w);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);

  CollectingSink sink;
  EngineOptions options;
  options.num_joiners = 3;
  // Feature sets mixing extremes with other aggregates need full window
  // materialization.
  options.incremental_agg = !fs.RequiresFullState();
  auto engine = CreateEngine(kind, fs.query, options, &sink);
  ASSERT_TRUE(engine->Start().ok());
  WatermarkTracker tracker(fs.query.lateness_us);
  uint64_t n = 0;
  for (const StreamEvent& e : events) {
    tracker.Observe(e.tuple.ts);
    engine->Push(e, MonotonicNowUs());
    if (++n % 256 == 0) engine->SignalWatermark(tracker.watermark());
  }
  engine->Finish();

  // Reference per output kind.
  auto results = sink.TakeResults();
  std::vector<ReferenceResult> got_sorted;
  for (const auto& r : results) got_sorted.push_back({r.base, 0, 0});
  for (const FeatureOutput& out : fs.outputs) {
    QuerySpec q = fs.query;
    q.agg = out.kind;
    auto expected = ReferenceJoin(events, q);
    SortResults(&expected);
    std::vector<std::pair<ReferenceResult, double>> got;
    for (const auto& r : results) {
      got.push_back({{r.base, 0, r.match_count},
                     ExtractFeature(r, out.kind)});
    }
    std::sort(got.begin(), got.end(), [](const auto& a, const auto& b) {
      if (a.first.base.ts != b.first.base.ts) {
        return a.first.base.ts < b.first.base.ts;
      }
      return a.first.base.key < b.first.base.key;
    });
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      if (std::isnan(expected[i].aggregate)) {
        ASSERT_TRUE(std::isnan(got[i].second))
            << out.name << " result " << i;
      } else {
        ASSERT_NEAR(got[i].second, expected[i].aggregate, 1e-6)
            << out.name << " result " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, FeatureSetEngineTest,
                         ::testing::Values(EngineKind::kKeyOij,
                                           EngineKind::kScaleOij,
                                           EngineKind::kSplitJoin),
                         [](const auto& info) {
                           std::string name(EngineKindName(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace oij
