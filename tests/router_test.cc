// In-process cluster-tier tests: a real OijRouter in front of real
// OijServer backends (and, for the failure-injection cases, scripted
// fake backends speaking the wire protocol). Headline properties:
//
//   * fan-back exactness — the union of results streamed back through
//     the router from two key-partitioned backends equals the
//     policy-aware reference oracle, and the cluster watermark
//     punctuation the router inserts is strictly increasing and never
//     ahead of the min acked backend watermark;
//   * handshake hygiene — a mismatched or misplaced kHello is answered
//     with a clean kError, never a poisoned decoder;
//   * failover — a non-durable backend's keys reroute ring-clockwise to
//     the survivor the moment it drops, and /healthz flips to 503 when
//     no backend is eligible;
//   * sticky replay — a durable-exact backend's keys queue while it is
//     down and exactly the un-acked suffix past its recovered watermark
//     is resent when it returns.
//
// The kill -9 version of the replay property (real WAL, real recovery)
// lives in cluster_integration_test.cc.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "cluster/router.h"
#include "core/engine_factory.h"
#include "join/reference_join.h"
#include "join/watermark.h"
#include "net/socket.h"
#include "net/wire_codec.h"
#include "server/server.h"
#include "stream/generator.h"
#include "stream/presets.h"

namespace oij {
namespace {

std::vector<StreamEvent> Generate(const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<StreamEvent> events;
  StreamEvent ev;
  while (gen.Next(&ev)) events.push_back(ev);
  return events;
}

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 15000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// One blocking HTTP/1.0 GET against an admin port.
std::string HttpGet(uint16_t port, const std::string& path, int* code) {
  int fd = -1;
  *code = 0;
  if (!ConnectTcp("127.0.0.1", port, &fd).ok()) return "";
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size()).ok()) {
    CloseFd(fd);
    return "";
  }
  std::string response;
  char buf[8192];
  int64_t n;
  while ((n = RecvSome(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  CloseFd(fd);
  const size_t sp = response.find(' ');
  if (sp != std::string::npos) *code = std::atoi(response.c_str() + sp + 1);
  const size_t body = response.find("\r\n\r\n");
  return body == std::string::npos ? "" : response.substr(body + 4);
}

/// Blocking router client with a concurrent reader; beyond DataClient
/// (server_test.cc) it also collects the kHello reply and the cluster
/// kWatermark punctuation the router inserts into subscriptions.
class RouterClient {
 public:
  explicit RouterClient(uint16_t port) {
    const Status s = ConnectTcp("127.0.0.1", port, &fd_);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (fd_ >= 0) reader_ = std::thread(&RouterClient::ReadLoop, this);
  }

  ~RouterClient() {
    JoinReader();
    CloseFd(fd_);
  }

  bool Send(const std::string& bytes) {
    return SendAll(fd_, bytes.data(), bytes.size()).ok();
  }

  void JoinReader() {
    if (reader_.joinable()) reader_.join();
  }

  std::vector<JoinResult> results;
  std::vector<Timestamp> watermarks;
  std::vector<HelloInfo> hellos;
  std::string summary;
  std::vector<std::string> errors;
  bool corrupt = false;

 private:
  void ReadLoop() {
    WireDecoder decoder;
    char buf[16384];
    WireFrame frame;
    while (true) {
      const int64_t n = RecvSome(fd_, buf, sizeof(buf));
      if (n <= 0) return;
      decoder.Feed(buf, static_cast<size_t>(n));
      while (true) {
        const WireDecoder::Result r = decoder.Next(&frame);
        if (r == WireDecoder::Result::kNeedMore) break;
        if (r == WireDecoder::Result::kCorrupt) {
          corrupt = true;
          return;
        }
        switch (frame.type) {
          case FrameType::kResult:
            results.push_back(frame.result);
            break;
          case FrameType::kWatermark:
            watermarks.push_back(frame.watermark);
            break;
          case FrameType::kHello:
            hellos.push_back(frame.hello);
            break;
          case FrameType::kSummary:
            summary = frame.text;
            break;
          case FrameType::kError:
            errors.push_back(frame.text);
            break;
          default:
            break;
        }
      }
    }
  }

  int fd_ = -1;
  std::thread reader_;
};

RouterConfig TwoBackendConfig(const OijServer& a, const OijServer& b) {
  RouterConfig rc;
  rc.backends.push_back({"127.0.0.1", a.data_port(), a.admin_port()});
  rc.backends.push_back({"127.0.0.1", b.data_port(), b.admin_port()});
  rc.backoff_base_ms = 20;
  rc.backoff_max_ms = 200;
  rc.seed = 7;
  return rc;
}

// --------------------------------------------------- fan-back exactness

/// Two key-partitioned backends behind the router must reproduce the
/// single-node oracle exactly: every tuple routes to exactly one
/// backend, both see the identical watermark sequence, so the union of
/// their (disjoint) result streams is the reference result set. The
/// cluster watermark punctuation must be strictly increasing and is
/// checked against the min-acked gauge at the end.
TEST(RouterFanBack, TwoBackendUnionMatchesReferenceOracle) {
  WorkloadSpec workload;
  ASSERT_TRUE(FindPreset("default", &workload));
  workload.total_tuples = 8'000;
  const std::vector<StreamEvent> events = Generate(workload);

  QuerySpec query;
  query.window = workload.window;
  query.lateness_us = workload.lateness_us;
  query.emit_mode = EmitMode::kWatermark;

  ServerConfig sc;
  sc.engine = EngineKind::kScaleOij;
  sc.query = query;
  sc.options.num_joiners = 2;

  OijServer backend_a(sc);
  OijServer backend_b(sc);
  ASSERT_TRUE(backend_a.Start().ok());
  ASSERT_TRUE(backend_b.Start().ok());

  OijRouter router(TwoBackendConfig(backend_a, backend_b));
  ASSERT_TRUE(router.Start().ok());

  // Both backends must be active before traffic, or early tuples for a
  // still-handshaking durable-unknown backend would fail over.
  ASSERT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().backend_connects >= 2;
  }));

  const uint64_t wm_every = 256;
  {
    RouterClient client(router.data_port());
    std::string batch;
    HelloInfo hello;
    AppendHelloFrame(&batch, hello);
    AppendControlFrame(&batch, FrameType::kSubscribe);
    WatermarkTracker tracker(query.lateness_us);
    uint64_t n = 0;
    bool io_ok = true;
    for (const StreamEvent& ev : events) {
      tracker.Observe(ev.tuple.ts);
      AppendTupleFrame(&batch, ev);
      if (++n % wm_every == 0) {
        AppendWatermarkFrame(&batch, tracker.watermark());
      }
      if (batch.size() >= 32 * 1024) {
        if (!(io_ok = client.Send(batch))) break;
        batch.clear();
      }
    }
    ASSERT_TRUE(io_ok) << "tuple send failed";
    ASSERT_TRUE(client.Send(batch));
    batch.clear();

    // Admin plane mid-run, while both backends are active.
    ASSERT_TRUE(WaitUntil([&] {
      return router.CountersSnapshot().tuples_routed >= events.size();
    }));
    int code = 0;
    HttpGet(router.admin_port(), "/healthz", &code);
    EXPECT_EQ(code, 200) << "healthz with two active backends";
    const std::string statz = HttpGet(router.admin_port(), "/statz", &code);
    EXPECT_EQ(code, 200);
    EXPECT_NE(statz.find("cluster_watermark"), std::string::npos) << statz;
    EXPECT_NE(statz.find("\"backends\""), std::string::npos) << statz;
    EXPECT_NE(statz.find("active"), std::string::npos) << statz;
    const std::string metrics = HttpGet(router.admin_port(), "/metrics", &code);
    EXPECT_EQ(code, 200);
    EXPECT_NE(metrics.find("oij_router_tuples_routed_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("oij_router_backend_acked_watermark"),
              std::string::npos);

    AppendControlFrame(&batch, FrameType::kFinish);
    ASSERT_TRUE(client.Send(batch));
    client.JoinReader();

    EXPECT_FALSE(client.corrupt) << "router sent a malformed frame";
    ASSERT_TRUE(client.errors.empty())
        << "router error: " << client.errors.front();
    ASSERT_EQ(client.hellos.size(), 1u) << "no hello reply";
    EXPECT_TRUE(client.hellos[0].Compatible());
    ASSERT_FALSE(client.summary.empty()) << "no summary frame";
    EXPECT_NE(client.summary.find("cluster run: 2 backend(s)"),
              std::string::npos)
        << client.summary;
    EXPECT_NE(client.summary.find("--- backend 0"), std::string::npos);
    EXPECT_NE(client.summary.find("--- backend 1"), std::string::npos);

    // Cluster watermark punctuation: strictly increasing, and never
    // ahead of the min acked backend watermark (monotone-safety at the
    // emission site; the eject/re-admit cycle is covered in
    // cluster_test.cc).
    for (size_t i = 1; i < client.watermarks.size(); ++i) {
      EXPECT_GT(client.watermarks[i], client.watermarks[i - 1])
          << "cluster watermark regressed at punctuation " << i;
    }
    const RouterCounters rc = router.CountersSnapshot();
    EXPECT_LE(rc.cluster_watermark, rc.min_backend_acked);
    if (!client.watermarks.empty()) {
      EXPECT_EQ(client.watermarks.back(), rc.cluster_watermark);
    }
    EXPECT_EQ(rc.tuples_routed, events.size());
    EXPECT_EQ(rc.tuples_dropped, 0u);
    EXPECT_EQ(rc.tuples_failed_over, 0u);
    EXPECT_GT(rc.watermarks_broadcast, 0u);
    EXPECT_GE(rc.acks_received, rc.watermarks_broadcast);

    // The union of the two disjoint key partitions must equal the
    // single-node policy-aware oracle, result for result.
    std::vector<ReferenceResult> got;
    got.reserve(client.results.size());
    for (const JoinResult& r : client.results) {
      got.push_back({r.base, r.aggregate, r.match_count});
    }
    SortResults(&got);
    std::vector<ReferenceResult> want =
        ReferenceJoinWithPolicy(events, query, wm_every);
    SortResults(&want);
    ASSERT_EQ(got.size(), want.size()) << "fan-back result cardinality";
    size_t mismatches = 0;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].base != want[i].base ||
          got[i].match_count != want[i].match_count ||
          (!std::isnan(want[i].aggregate) &&
           std::abs(got[i].aggregate - want[i].aggregate) > 1e-6)) {
        if (++mismatches <= 3) {
          ADD_FAILURE() << "result " << i << " differs: ts=" << got[i].base.ts
                        << " key=" << got[i].base.key
                        << " got count=" << got[i].match_count
                        << " want count=" << want[i].match_count;
        }
      }
    }
    EXPECT_EQ(mismatches, 0u);
  }

  router.Shutdown();
  backend_a.Shutdown();
  backend_b.Shutdown();
}

// ----------------------------------------------------- handshake hygiene

TEST(RouterHandshake, MismatchedHelloGetsCleanErrorNotDecoderPoison) {
  ServerConfig sc;
  sc.options.num_joiners = 1;
  OijServer backend(sc);
  ASSERT_TRUE(backend.Start().ok());

  RouterConfig rc;
  rc.backends.push_back({"127.0.0.1", backend.data_port(),
                         backend.admin_port()});
  OijRouter router(rc);
  ASSERT_TRUE(router.Start().ok());

  {  // Wrong version: clean kError naming the mismatch, then close.
    RouterClient client(router.data_port());
    std::string bytes;
    HelloInfo bad;
    bad.version = 99;
    AppendHelloFrame(&bytes, bad);
    ASSERT_TRUE(client.Send(bytes));
    client.JoinReader();  // router closes after the error
    EXPECT_FALSE(client.corrupt);
    ASSERT_EQ(client.errors.size(), 1u);
    EXPECT_TRUE(client.hellos.empty());
  }
  {  // Wrong magic: same clean rejection.
    RouterClient client(router.data_port());
    std::string bytes;
    HelloInfo bad;
    bad.magic = 0xDEADBEEF;
    AppendHelloFrame(&bytes, bad);
    ASSERT_TRUE(client.Send(bytes));
    client.JoinReader();
    EXPECT_FALSE(client.corrupt);
    ASSERT_EQ(client.errors.size(), 1u);
  }
  {  // Hello after another frame is a protocol error.
    RouterClient client(router.data_port());
    std::string bytes;
    AppendWatermarkFrame(&bytes, 1);
    HelloInfo hello;
    AppendHelloFrame(&bytes, hello);
    ASSERT_TRUE(client.Send(bytes));
    client.JoinReader();
    EXPECT_FALSE(client.corrupt);
    ASSERT_EQ(client.errors.size(), 1u);
  }
  EXPECT_GE(router.CountersSnapshot().hellos_rejected, 3u);

  {  // A well-formed hello still negotiates: the plane is not wedged.
    RouterClient client(router.data_port());
    std::string bytes;
    HelloInfo hello;
    AppendHelloFrame(&bytes, hello);
    AppendControlFrame(&bytes, FrameType::kFinish);
    ASSERT_TRUE(client.Send(bytes));
    client.JoinReader();
    EXPECT_FALSE(client.corrupt);
    EXPECT_TRUE(client.errors.empty())
        << "unexpected error: " << client.errors.front();
    ASSERT_EQ(client.hellos.size(), 1u);
    EXPECT_TRUE(client.hellos[0].Compatible());
  }

  router.Shutdown();
  backend.Shutdown();
}

// ------------------------------------------------------- fake backends

/// Scripted wire-protocol backend: accepts router connections, answers
/// the hello (optionally advertising kHelloDurableExact and a recovered
/// watermark), acks every watermark, and records what it receives. Lets
/// the failover/replay tests control exactly when a backend dies and
/// with what durable state it returns.
class FakeBackend {
 public:
  FakeBackend(bool durable, Timestamp recovered_wm)
      : durable_(durable), recovered_wm_(recovered_wm) {}

  ~FakeBackend() { Stop(); }

  bool Start(uint16_t port = 0) {
    listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener_ < 0) return false;
    const int one = 1;
    ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    if (::listen(listener_, 8) != 0) return false;
    thread_ = std::thread(&FakeBackend::AcceptLoop, this);
    return true;
  }

  /// Kills the listener and any live connection; the router sees an
  /// abrupt disconnect, exactly like a crashed process.
  void Stop() {
    if (listener_ < 0) return;
    stop_.store(true);
    ::shutdown(listener_, SHUT_RDWR);
    const int conn = conn_fd_.exchange(-1);
    if (conn >= 0) ::shutdown(conn, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    CloseFd(listener_);
    listener_ = -1;
  }

  uint16_t port() const { return port_; }

  std::vector<StreamEvent> Tuples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tuples_;
  }
  std::vector<Timestamp> Watermarks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return watermarks_;
  }
  size_t TupleCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tuples_.size();
  }

 private:
  void AcceptLoop() {
    while (!stop_.load()) {
      const int fd = ::accept(listener_, nullptr, nullptr);
      if (fd < 0) return;
      conn_fd_.store(fd);
      Serve(fd);
      const int owned = conn_fd_.exchange(-1);
      if (owned >= 0) CloseFd(owned);
    }
  }

  void Serve(int fd) {
    WireDecoder decoder;
    char buf[16384];
    WireFrame frame;
    uint64_t tuples_seen = 0;
    while (!stop_.load()) {
      const int64_t n = RecvSome(fd, buf, sizeof(buf));
      if (n <= 0) return;
      decoder.Feed(buf, static_cast<size_t>(n));
      while (decoder.Next(&frame) == WireDecoder::Result::kFrame) {
        std::string out;
        switch (frame.type) {
          case FrameType::kHello: {
            HelloInfo reply;
            reply.flags = durable_ ? kHelloDurableExact : 0;
            reply.recovered_watermark = recovered_wm_;
            AppendHelloFrame(&out, reply);
            break;
          }
          case FrameType::kTuple: {
            std::lock_guard<std::mutex> lock(mu_);
            tuples_.push_back(frame.event);
            ++tuples_seen;
            break;
          }
          case FrameType::kWatermark: {
            {
              std::lock_guard<std::mutex> lock(mu_);
              watermarks_.push_back(frame.watermark);
            }
            AppendWatermarkAckFrame(&out, frame.watermark, tuples_seen);
            break;
          }
          case FrameType::kFinish:
            AppendTextFrame(&out, FrameType::kSummary, "fake backend run");
            break;
          default:
            break;
        }
        if (!out.empty() && !SendAll(fd, out.data(), out.size()).ok()) return;
      }
    }
  }

  const bool durable_;
  const Timestamp recovered_wm_;
  int listener_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> conn_fd_{-1};

  mutable std::mutex mu_;
  std::vector<StreamEvent> tuples_;
  std::vector<Timestamp> watermarks_;
};

RouterConfig FakePairConfig(uint16_t port_a, uint16_t port_b) {
  RouterConfig rc;
  // Admin ports point at closed ports; the probe interval is an hour and
  // the thresholds are huge so active checking never ejects anyone —
  // these tests exercise the connection state machine, not the checker.
  rc.backends.push_back({"127.0.0.1", port_a, 1});
  rc.backends.push_back({"127.0.0.1", port_b, 1});
  rc.health.interval_ms = 3'600'000;
  rc.health.unhealthy_threshold = 1'000'000;
  rc.connect_timeout_ms = 500;
  rc.backoff_base_ms = 20;
  rc.backoff_max_ms = 100;
  rc.seed = 11;
  return rc;
}

StreamEvent Ev(Timestamp ts, uint64_t key) {
  StreamEvent ev;
  ev.stream = StreamId::kBase;
  ev.tuple.ts = ts;
  ev.tuple.key = key;
  ev.tuple.payload = static_cast<double>(ts);
  return ev;
}

// ---------------------------------------------------------- failover

/// When a non-durable backend drops, its share of the key space must
/// reroute to the ring-clockwise survivor with zero drops, and /healthz
/// must flip to 503 only once *no* backend is eligible.
TEST(RouterFailover, NonDurableBackendLossReroutesToSurvivor) {
  FakeBackend a(/*durable=*/false, kMinTimestamp);
  FakeBackend b(/*durable=*/false, kMinTimestamp);
  ASSERT_TRUE(a.Start());
  ASSERT_TRUE(b.Start());

  OijRouter router(FakePairConfig(a.port(), b.port()));
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().backend_connects >= 2;
  }));

  const uint64_t kKeys = 200;
  RouterClient client(router.data_port());
  {
    std::string batch;
    for (uint64_t k = 0; k < kKeys; ++k) AppendTupleFrame(&batch, Ev(100, k));
    ASSERT_TRUE(client.Send(batch));
  }
  ASSERT_TRUE(
      WaitUntil([&] { return a.TupleCount() + b.TupleCount() >= kKeys; }));
  // A healthy ring splits the key space nontrivially.
  EXPECT_GT(a.TupleCount(), 0u);
  EXPECT_GT(b.TupleCount(), 0u);
  const size_t a_share = a.TupleCount();
  std::set<uint64_t> a_keys;
  for (const StreamEvent& ev : a.Tuples()) a_keys.insert(ev.tuple.key);

  // Kill backend A; the router must notice and reroute A's keys to B.
  a.Stop();
  ASSERT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().backend_disconnects >= 1;
  }));
  {
    std::string batch;
    for (uint64_t k = 0; k < kKeys; ++k) AppendTupleFrame(&batch, Ev(200, k));
    ASSERT_TRUE(client.Send(batch));
  }
  ASSERT_TRUE(WaitUntil([&] { return b.TupleCount() >= kKeys + kKeys - a_share; }));

  const RouterCounters rc = router.CountersSnapshot();
  EXPECT_EQ(rc.tuples_routed, 2 * kKeys);
  EXPECT_EQ(rc.tuples_dropped, 0u);
  EXPECT_EQ(rc.tuples_failed_over, a_share)
      << "every key A owned must have failed over, and only those";
  // B received its own share twice plus A's share once; specifically
  // every key A owned in round one must appear at B in round two.
  std::set<uint64_t> b_round2;
  for (const StreamEvent& ev : b.Tuples()) {
    if (ev.tuple.ts == 200) b_round2.insert(ev.tuple.key);
  }
  for (const uint64_t k : a_keys) {
    EXPECT_TRUE(b_round2.count(k)) << "key " << k << " lost in failover";
  }

  int code = 0;
  HttpGet(router.admin_port(), "/healthz", &code);
  EXPECT_EQ(code, 200) << "one eligible backend is enough for 200";

  // Lose the survivor too: with nobody eligible the router must say so.
  b.Stop();
  ASSERT_TRUE(WaitUntil([&] {
    int c = 0;
    HttpGet(router.admin_port(), "/healthz", &c);
    return c == 503;
  }));

  router.Shutdown();
}

// ------------------------------------------------------ sticky replay

/// A durable-exact backend's keys never fail over: they queue in its
/// replay buffer while it is down, and when it returns advertising its
/// recovered watermark the router resends exactly the un-acked suffix —
/// nothing at or before the cut, everything after it, watermark
/// punctuation included.
TEST(RouterStickyReplay, ResendsExactlyTheUnackedSuffixPastTheCut) {
  FakeBackend first(/*durable=*/true, kMinTimestamp);
  ASSERT_TRUE(first.Start());
  const uint16_t backend_port = first.port();

  RouterConfig rc;
  rc.backends.push_back({"127.0.0.1", backend_port, 1});
  rc.health.interval_ms = 3'600'000;
  rc.health.unhealthy_threshold = 1'000'000;
  rc.connect_timeout_ms = 500;
  rc.backoff_base_ms = 20;
  rc.backoff_max_ms = 100;
  rc.seed = 13;
  OijRouter router(rc);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().backend_connects >= 1;
  }));

  RouterClient client(router.data_port());

  // Two acked segments: tuples ts 1..10 under watermark 10, ts 11..20
  // under watermark 20.
  {
    std::string batch;
    for (Timestamp ts = 1; ts <= 10; ++ts) AppendTupleFrame(&batch, Ev(ts, 1));
    AppendWatermarkFrame(&batch, 10);
    for (Timestamp ts = 11; ts <= 20; ++ts) {
      AppendTupleFrame(&batch, Ev(ts, 1));
    }
    AppendWatermarkFrame(&batch, 20);
    ASSERT_TRUE(client.Send(batch));
  }
  ASSERT_TRUE(WaitUntil([&] {
    const RouterCounters c = router.CountersSnapshot();
    return c.acks_received >= 2 && c.cluster_watermark == 20;
  }));
  EXPECT_EQ(router.CountersSnapshot().min_backend_acked, 20);

  // Backend dies. Its keys must STICK: tuples queue, nothing drops.
  first.Stop();
  ASSERT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().backend_disconnects >= 1;
  }));
  {
    std::string batch;
    for (Timestamp ts = 21; ts <= 30; ++ts) {
      AppendTupleFrame(&batch, Ev(ts, 1));
    }
    AppendWatermarkFrame(&batch, 30);  // sealed into the pending buffer
    for (Timestamp ts = 31; ts <= 40; ++ts) {
      AppendTupleFrame(&batch, Ev(ts, 1));
    }
    ASSERT_TRUE(client.Send(batch));
  }
  ASSERT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().tuples_queued_sticky >= 20;
  }));
  {
    const RouterCounters c = router.CountersSnapshot();
    EXPECT_EQ(c.tuples_failed_over, 0u) << "durable keys must not fail over";
    EXPECT_EQ(c.tuples_dropped, 0u);
    // The cluster watermark must stall, not advance past the dead
    // backend's last ack.
    EXPECT_EQ(c.cluster_watermark, 20);
  }

  // The backend returns on the same address, durable through watermark
  // 20. The router must resend exactly ts 21..40 plus the sealed
  // watermark 30 — and nothing from the acked prefix.
  FakeBackend second(/*durable=*/true, /*recovered_wm=*/20);
  ASSERT_TRUE(second.Start(backend_port));
  ASSERT_TRUE(WaitUntil([&] {
    return router.CountersSnapshot().replayed_tuples >= 20;
  }));
  ASSERT_TRUE(WaitUntil([&] { return second.TupleCount() >= 20; }));

  const std::vector<StreamEvent> replayed = second.Tuples();
  ASSERT_EQ(replayed.size(), 20u);
  std::set<Timestamp> seen;
  for (const StreamEvent& ev : replayed) {
    EXPECT_GT(ev.tuple.ts, 20) << "acked tuple replayed (duplicate)";
    seen.insert(ev.tuple.ts);
  }
  for (Timestamp ts = 21; ts <= 40; ++ts) {
    EXPECT_TRUE(seen.count(ts)) << "queued tuple ts=" << ts << " lost";
  }
  // The sealed punctuation travels with the replay, and the ack it
  // triggers lifts the cluster watermark off the stall.
  ASSERT_TRUE(WaitUntil(
      [&] { return router.CountersSnapshot().cluster_watermark >= 30; }));
  const std::vector<Timestamp> wms = second.Watermarks();
  ASSERT_FALSE(wms.empty());
  EXPECT_EQ(wms.front(), 30);
  EXPECT_EQ(router.CountersSnapshot().replay_dropped_tuples, 0u);

  router.Shutdown();
  second.Stop();
}

}  // namespace
}  // namespace oij
