// Interactive CLI around the library: pick a workload preset, an engine,
// and a thread count, and get the full run report. Useful for poking at
// regimes the fixed benches do not cover.
//
//   $ ./build/examples/engine_explorer [preset] [engine] [joiners] [tuples]
//   $ ./build/examples/engine_explorer A scale-oij 8 500000
//
// presets: A B C D default adversarial skewed
// engines: key-oij scale-oij split-join openmldb-like handshake

#include <cstdio>
#include <cstdlib>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "core/run_summary.h"
#include "stream/presets.h"

int main(int argc, char** argv) {
  const char* preset_name = argc > 1 ? argv[1] : "default";
  const char* engine_name = argc > 2 ? argv[2] : "scale-oij";
  const uint32_t joiners =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 4;
  const uint64_t tuples =
      argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 300'000;

  oij::WorkloadSpec workload;
  if (!oij::FindPreset(preset_name, &workload)) {
    std::fprintf(stderr,
                 "unknown preset '%s' (try: A B C D default adversarial "
                 "skewed)\n",
                 preset_name);
    return 1;
  }
  workload.total_tuples = tuples;

  oij::EngineKind kind;
  oij::Status s = oij::EngineKindFromName(engine_name, &kind);
  if (!s.ok()) {
    std::fprintf(stderr, "%s (try: key-oij scale-oij split-join "
                         "openmldb-like handshake)\n",
                 s.ToString().c_str());
    return 1;
  }

  oij::QuerySpec query;
  query.window = workload.window;
  query.lateness_us = workload.lateness_us;
  query.emit_mode = oij::EmitMode::kEager;

  std::printf("workload %s: u=%llu |w|=%s l=%s rate=%s, %llu tuples\n",
              workload.name.c_str(),
              static_cast<unsigned long long>(workload.num_keys),
              oij::HumanDurationUs(
                  static_cast<double>(workload.window.length()))
                  .c_str(),
              oij::HumanDurationUs(
                  static_cast<double>(workload.lateness_us))
                  .c_str(),
              workload.pace_rate_per_sec == 0
                  ? "unthrottled"
                  : oij::HumanRate(
                        static_cast<double>(workload.pace_rate_per_sec))
                        .c_str(),
              static_cast<unsigned long long>(tuples));

  oij::NullSink sink;
  oij::EngineOptions options;
  options.num_joiners = joiners;
  auto engine = oij::CreateEngine(kind, query, options, &sink);
  oij::WorkloadGenerator generator(workload);
  const oij::RunResult run = oij::RunPipeline(engine.get(), &generator);
  std::printf("%s", oij::SummarizeRun(engine_name, run).c_str());
  return 0;
}
