// Record-and-replay workflow: capture an arrival trace to disk, measure
// its actual disorder (instead of guessing a lateness), then replay it
// through two engines so the comparison is input-identical — the
// methodology for benchmarking with real production traces.
//
//   $ ./build/examples/trace_replay [path]

#include <cstdio>
#include <string>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "core/run_summary.h"
#include "stream/generator.h"
#include "stream/presets.h"
#include "stream/trace.h"

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/oij_example.trace";

  // 1. Record: generate Workload D's arrival sequence and persist it.
  oij::WorkloadSpec workload = oij::WorkloadD();
  workload.total_tuples = 200'000;
  std::vector<oij::StreamEvent> events;
  {
    oij::WorkloadGenerator gen(workload);
    oij::StreamEvent ev;
    while (gen.Next(&ev)) events.push_back(ev);
  }
  oij::Status s = oij::WriteTrace(path, events);
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("recorded %zu arrivals to %s\n", events.size(), path.c_str());

  // 2. Load and characterize: the replayer derives the minimum exact
  //    lateness from the trace itself.
  std::vector<oij::StreamEvent> loaded;
  s = oij::ReadTrace(path, &loaded);
  if (!s.ok()) {
    std::fprintf(stderr, "read failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const oij::Timestamp disorder = oij::MeasureDisorder(loaded);
  std::printf("measured disorder: %lld us (configured lateness was %lld "
              "us)\n\n",
              static_cast<long long>(disorder),
              static_cast<long long>(workload.lateness_us));

  // 3. Replay the identical input through two engines in exact mode.
  oij::QuerySpec query;
  query.window = workload.window;
  query.lateness_us = disorder;
  query.emit_mode = oij::EmitMode::kWatermark;

  for (oij::EngineKind kind :
       {oij::EngineKind::kKeyOij, oij::EngineKind::kScaleOij}) {
    oij::CountingSink sink;
    oij::EngineOptions options;
    options.num_joiners = 4;
    auto engine = oij::CreateEngine(kind, query, options, &sink);
    oij::TraceSource source(loaded, disorder);
    const oij::RunResult run =
        oij::RunPipelineFrom(engine.get(), &source, /*pace=*/0);
    std::printf("%s", oij::SummarizeRun(
                          std::string(oij::EngineKindName(kind)), run)
                          .c_str());
    std::printf("  (results=%llu, matched pairs=%llu — identical across "
                "engines by construction)\n",
                static_cast<unsigned long long>(sink.count()),
                static_cast<unsigned long long>(sink.matches()));
  }
  std::remove(path.c_str());
  return 0;
}
