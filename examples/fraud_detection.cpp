// Anti-fraud velocity checking — one of OpenMLDB's production use cases
// (Section I). For every authorization request (base stream), compute the
// number and sum of that card's transactions in the preceding 10 seconds
// (probe stream) and flag cards whose velocity exceeds a threshold. The
// 20 ms end-to-end SLA of the paper's bank user applies.
//
// Demonstrates a custom ResultSink that reacts to each feature as it is
// emitted (streaming inference), plus the exactness/latency trade of the
// two emit modes.
//
//   $ ./build/examples/fraud_detection

#include <atomic>
#include <cstdio>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "core/run_summary.h"
#include "stream/generator.h"

namespace {

/// Flags any card with more than `threshold` transactions in the window.
class VelocityAlertSink : public oij::ResultSink {
 public:
  explicit VelocityAlertSink(uint64_t threshold) : threshold_(threshold) {}

  void OnResult(const oij::JoinResult& result) override {
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (result.match_count > threshold_) {
      const uint64_t n = alerts_.fetch_add(1, std::memory_order_relaxed);
      if (n < 5) {  // print the first few alerts
        std::printf(
            "  ALERT card=%llu ts=%lld: %llu txns / $%.2f in last 10s "
            "(decision latency %lld us)\n",
            static_cast<unsigned long long>(result.base.key),
            static_cast<long long>(result.base.ts),
            static_cast<unsigned long long>(result.match_count),
            result.aggregate,
            static_cast<long long>(result.emit_us - result.arrival_us));
      }
    }
  }

  uint64_t checks() const { return checks_.load(); }
  uint64_t alerts() const { return alerts_.load(); }

 private:
  uint64_t threshold_;
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> alerts_{0};
};

}  // namespace

int main() {
  oij::QuerySpec query;
  query.window = oij::IntervalWindow{10'000'000, 0};  // last 10 s
  query.lateness_us = 50'000;                         // 50 ms disorder
  query.agg = oij::AggKind::kSum;
  query.emit_mode = oij::EmitMode::kEager;  // decide at arrival time

  oij::WorkloadSpec workload;
  workload.name = "fraud";
  workload.num_keys = 2000;  // active cards
  workload.window = query.window;
  workload.lateness_us = query.lateness_us;
  workload.disorder_bound_us = query.lateness_us;
  workload.event_rate_per_sec = 50'000;
  workload.pace_rate_per_sec = 50'000;  // live feed
  workload.probe_fraction = 0.8;        // mostly settled transactions
  workload.total_tuples = 150'000;
  workload.key_distribution = oij::KeyDistribution::kZipf;
  workload.zipf_theta = 1.1;  // fraud rings hammer few cards
  workload.seed = 99;

  const double expected = workload.ExpectedMatchesPerWindow();
  VelocityAlertSink sink(static_cast<uint64_t>(expected * 8));
  std::printf("expected ~%.0f txns per card-window; alerting above %.0f\n",
              expected, expected * 8);

  oij::EngineOptions options;
  options.num_joiners = 8;
  auto engine = oij::CreateEngine(oij::EngineKind::kScaleOij, query,
                                  options, &sink);
  oij::WorkloadGenerator generator(workload);
  const oij::RunResult run = oij::RunPipeline(engine.get(), &generator);

  std::printf("\nchecked %llu authorizations, raised %llu alerts\n",
              static_cast<unsigned long long>(sink.checks()),
              static_cast<unsigned long long>(sink.alerts()));
  std::printf("%s", oij::SummarizeRun("fraud-detection", run).c_str());
  std::printf("SLA: %.1f%% of decisions within the 20 ms budget\n",
              run.stats.latency.FractionBelow(20'000) * 100.0);
  return 0;
}
