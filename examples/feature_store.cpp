// The full OpenMLDB-style feature-platform flow on the row layer: typed
// schemas for the two streams, a multi-aggregate SQL feature set bound
// against them, packed rows converted through the resolved bindings, and
// one Scale-OIJ run serving all five features per browse event.
//
//   $ ./build/examples/feature_store

#include <atomic>
#include <cstdio>

#include "common/random.h"
#include "core/engine_factory.h"
#include "core/feature_set.h"
#include "core/pipeline.h"
#include "core/run_summary.h"
#include "row/stream_binding.h"
#include "sql/parser.h"

namespace {

/// Feeds packed rows (converted via bindings) instead of raw tuples.
class RowSource {
 public:
  RowSource(const oij::StreamBinding& base, const oij::StreamBinding& probe,
            uint64_t total)
      : base_(base), probe_(probe), total_(total), rng_(4711),
        base_builder_(base.schema), probe_builder_(probe.schema) {}

  bool Next(oij::StreamEvent* out) {
    if (produced_ >= total_) return false;
    ++produced_;
    ts_ += 1 + rng_.NextBelow(20);  // ~10 us mean inter-arrival
    const uint64_t user = rng_.NextBelow(32);
    if (rng_.NextBelow(2) == 0) {
      // A browse action row: (ts, user_id, page).
      base_builder_.SetTimestamp(0, ts_).SetInt64(1, static_cast<int64_t>(user))
          .SetInt64(2, static_cast<int64_t>(rng_.NextBelow(1000)));
      out->stream = oij::StreamId::kBase;
      out->tuple = oij::RowToTuple(
          base_, oij::RowView(base_.schema, base_builder_.row().data()));
    } else {
      // An order row: (ts, user_id, amount, item_count).
      probe_builder_.SetTimestamp(0, ts_)
          .SetInt64(1, static_cast<int64_t>(user))
          .SetDouble(2, 5.0 + rng_.NextDouble() * 95.0)
          .SetInt64(3, 1 + static_cast<int64_t>(rng_.NextBelow(5)));
      out->stream = oij::StreamId::kProbe;
      out->tuple = oij::RowToTuple(
          probe_, oij::RowView(probe_.schema, probe_builder_.row().data()));
    }
    if (out->tuple.ts > max_ts_) max_ts_ = out->tuple.ts;
    return true;
  }

  oij::Timestamp watermark() const { return max_ts_; }  // in-order source

 private:
  oij::StreamBinding base_, probe_;
  uint64_t total_;
  uint64_t produced_ = 0;
  oij::Rng rng_;
  oij::Timestamp ts_ = 0;
  oij::Timestamp max_ts_ = 0;
  oij::RowBuilder base_builder_;
  oij::RowBuilder probe_builder_;
};

class FeaturePrinter : public oij::ResultSink {
 public:
  explicit FeaturePrinter(const oij::FeatureSetSpec* fs) : fs_(fs) {}

  void OnResult(const oij::JoinResult& r) override {
    const uint64_t n = printed_.fetch_add(1);
    if (n >= 4) return;  // show the first few feature vectors
    std::printf("  user=%llu ts=%lld ->", static_cast<unsigned long long>(
                                              r.base.key),
                static_cast<long long>(r.base.ts));
    for (const oij::FeatureOutput& out : fs_->outputs) {
      std::printf(" %s=%.2f", out.name.c_str(),
                  oij::ExtractFeature(r, out.kind));
    }
    std::printf("\n");
  }

 private:
  const oij::FeatureSetSpec* fs_;
  std::atomic<uint64_t> printed_{0};
};

}  // namespace

int main() {
  const oij::Schema actions({{"ts", oij::FieldType::kTimestamp},
                             {"user_id", oij::FieldType::kInt64},
                             {"page", oij::FieldType::kInt64}});
  const oij::Schema orders({{"ts", oij::FieldType::kTimestamp},
                            {"user_id", oij::FieldType::kInt64},
                            {"amount", oij::FieldType::kDouble},
                            {"item_count", oij::FieldType::kInt64}});

  const char* sql = R"sql(
    SELECT sum(amount), count(amount), avg(amount), min(amount),
           max(amount) OVER w FROM actions
    WINDOW w AS (
      UNION orders
      PARTITION BY user_id
      ORDER BY ts
      ROWS_RANGE BETWEEN 500ms PRECEDING AND CURRENT ROW);
  )sql";

  oij::FeatureSetSpec fs;
  oij::ParsedQuery parsed;
  oij::Status s = oij::CompileFeatureSet(sql, &fs, &parsed);
  if (!s.ok()) {
    std::fprintf(stderr, "compile: %s\n", s.ToString().c_str());
    return 1;
  }

  oij::StreamBinding base_binding, probe_binding;
  s = oij::BindQueryToSchemas(parsed, actions, orders, &base_binding,
                              &probe_binding);
  if (!s.ok()) {
    std::fprintf(stderr, "bind: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("feature set over %s UNION %s: %zu outputs, window %lld us\n",
              parsed.base_table.c_str(), parsed.probe_table.c_str(),
              fs.outputs.size(),
              static_cast<long long>(fs.query.window.pre));

  FeaturePrinter sink(&fs);
  oij::EngineOptions options;
  options.num_joiners = 4;
  // min+max alongside sum/count: the window must be fully materialized.
  options.incremental_agg = !fs.RequiresFullState();
  auto engine = oij::CreateEngine(oij::EngineKind::kScaleOij, fs.query,
                                  options, &sink);
  RowSource source(base_binding, probe_binding, 200'000);
  const oij::RunResult run =
      oij::RunPipelineFrom(engine.get(), &source, /*pace=*/0);
  std::printf("\n%s", oij::SummarizeRun("feature-store", run).c_str());
  return 0;
}
