// The paper's motivating scenario (Section I): an online shopping
// platform recommends products while a user browses. Each browse event
// (the *action* stream) needs a feature computed from that user's order
// history in the preceding hour (the *order* stream) — an online interval
// join with a large window.
//
// This example runs the same feature query through all four engines and
// compares throughput, latency, and work done, demonstrating why the
// large-window regime is where Scale-OIJ's incremental aggregation pays
// off (paper Workload B's shape).
//
//   $ ./build/examples/product_recommendation

#include <cstdio>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "core/run_summary.h"
#include "stream/generator.h"

int main() {
  // "average order value in the last hour of history, per user" — scaled
  // so a run finishes in seconds: 1 hour -> 10 s of event time, with the
  // same per-window order population (~600 orders).
  oij::QuerySpec query;
  query.window = oij::IntervalWindow{10'000'000, 0};  // 10 s
  query.lateness_us = 100'000;                        // 100 ms disorder
  query.agg = oij::AggKind::kAvg;
  query.emit_mode = oij::EmitMode::kEager;

  oij::WorkloadSpec workload;
  workload.name = "recommendation";
  workload.num_keys = 50;  // concurrently active users
  workload.window = query.window;
  workload.lateness_us = query.lateness_us;
  workload.disorder_bound_us = query.lateness_us;
  workload.event_rate_per_sec = 100'000;
  workload.probe_fraction = 0.3;  // 30% orders, 70% browse events
  workload.total_tuples = 400'000;
  workload.key_distribution = oij::KeyDistribution::kZipf;
  workload.zipf_theta = 0.9;  // a few very active users
  workload.seed = 7;

  std::printf("browse events joined with ~%.0f orders per 10s window, 50 "
              "users, zipf-skewed activity\n\n",
              workload.ExpectedMatchesPerWindow());

  for (oij::EngineKind kind :
       {oij::EngineKind::kKeyOij, oij::EngineKind::kScaleOij,
        oij::EngineKind::kSplitJoin, oij::EngineKind::kSharedState}) {
    oij::NullSink sink;
    oij::EngineOptions options;
    options.num_joiners = 8;
    auto engine = oij::CreateEngine(kind, query, options, &sink);
    oij::WorkloadGenerator generator(workload);
    const oij::RunResult run = oij::RunPipeline(engine.get(), &generator);
    std::printf("%s",
                oij::SummarizeRun(std::string(oij::EngineKindName(kind)),
                                  run)
                    .c_str());
  }

  std::printf(
      "\nNote how the incremental engine touches a fraction of the data: "
      "re-run with OIJ-style ablations in bench_fig16_incremental.\n");
  return 0;
}
