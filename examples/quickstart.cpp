// Quickstart: compile an OpenMLDB-dialect window-union query, run the
// Scale-OIJ engine over a small synthetic stream pair, and print a few
// feature rows plus the run summary.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "core/run_summary.h"
#include "sql/binder.h"
#include "stream/generator.h"

int main() {
  // 1. The query: sum of order amounts in the last second before each
  //    user action, allowing 10 ms of stream disorder.
  const char* sql = R"sql(
    SELECT sum(amount) OVER w1 FROM actions
    WINDOW w1 AS (
      UNION orders
      PARTITION BY user_id
      ORDER BY ts
      ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW
      LATENESS 10ms);
  )sql";

  oij::QuerySpec query;
  oij::ParsedQuery parsed;
  oij::Status s = oij::CompileQuery(sql, &query, &parsed);
  if (!s.ok()) {
    std::fprintf(stderr, "query error: %s\n", s.ToString().c_str());
    return 1;
  }
  query.emit_mode = oij::EmitMode::kWatermark;  // exact results
  std::printf("compiled: %s(%s) over %s UNION %s, window (-%lld us, +%lld "
              "us), lateness %lld us\n\n",
              parsed.agg_func.c_str(), parsed.agg_column.c_str(),
              parsed.base_table.c_str(), parsed.probe_table.c_str(),
              static_cast<long long>(query.window.pre),
              static_cast<long long>(query.window.fol),
              static_cast<long long>(query.lateness_us));

  // 2. The streams: 100K tuples over 20 user_ids, half actions (base
  //    stream) and half orders (probe stream), 10 ms disorder.
  oij::WorkloadSpec workload;
  workload.num_keys = 20;
  workload.window = query.window;
  workload.lateness_us = query.lateness_us;
  workload.disorder_bound_us = query.lateness_us;
  workload.event_rate_per_sec = 100'000;
  workload.total_tuples = 100'000;
  workload.seed = 2023;

  // 3. Run Scale-OIJ with 4 joiners, collecting every result.
  oij::CollectingSink sink;
  oij::EngineOptions options;
  options.num_joiners = 4;
  auto engine = oij::CreateEngine(oij::EngineKind::kScaleOij, query,
                                  options, &sink);
  oij::WorkloadGenerator generator(workload);
  const oij::RunResult run = oij::RunPipeline(engine.get(), &generator);

  // 4. Show the first few computed features and the run summary.
  auto results = sink.TakeResults();
  std::printf("first feature rows (one per action tuple):\n");
  for (size_t i = 0; i < results.size() && i < 5; ++i) {
    std::printf("  user=%llu ts=%lld us -> sum(last 1s of orders)=%.2f "
                "(%llu orders)\n",
                static_cast<unsigned long long>(results[i].base.key),
                static_cast<long long>(results[i].base.ts),
                results[i].aggregate,
                static_cast<unsigned long long>(results[i].match_count));
  }
  std::printf("\n%s", oij::SummarizeRun("quickstart", run).c_str());
  return 0;
}
