#include "metrics/cpu_util.h"

#include <algorithm>
#include <cmath>

namespace oij {

CpuUtilTracker::CpuUtilTracker(int64_t origin_ns, int64_t interval_ns)
    : origin_ns_(origin_ns), interval_ns_(interval_ns) {}

void CpuUtilTracker::AddBusy(int64_t start_ns, int64_t end_ns) {
  if (end_ns <= start_ns) return;
  start_ns = std::max(start_ns, origin_ns_);
  if (end_ns <= origin_ns_) return;
  int64_t cursor = start_ns;
  while (cursor < end_ns) {
    const size_t idx =
        static_cast<size_t>((cursor - origin_ns_) / interval_ns_);
    const int64_t interval_end = origin_ns_ + (idx + 1) * interval_ns_;
    const int64_t span = std::min(end_ns, interval_end) - cursor;
    if (busy_per_interval_.size() <= idx) busy_per_interval_.resize(idx + 1, 0);
    busy_per_interval_[idx] += span;
    cursor += span;
  }
}

std::vector<double> CpuUtilTracker::UtilizationSeries(
    int64_t through_ns) const {
  size_t n = busy_per_interval_.size();
  if (through_ns > origin_ns_) {
    n = std::max<size_t>(
        n, static_cast<size_t>((through_ns - origin_ns_ + interval_ns_ - 1) /
                               interval_ns_));
  }
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < busy_per_interval_.size() && i < n; ++i) {
    out[i] = std::min(
        1.0, static_cast<double>(busy_per_interval_[i]) /
                 static_cast<double>(interval_ns_));
  }
  return out;
}

double StdDev(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  return std::sqrt(var);
}

}  // namespace oij
