#ifndef OIJ_METRICS_CPU_UTIL_H_
#define OIJ_METRICS_CPU_UTIL_H_

#include <cstdint>
#include <vector>

namespace oij {

/// Tracks one joiner's busy time per fixed wall-clock interval, producing
/// the per-joiner utilization-over-time series of Fig 14. The joiner calls
/// AddBusy(start_ns, end_ns) around each processed batch; busy spans are
/// apportioned across interval boundaries.
class CpuUtilTracker {
 public:
  /// `origin_ns` anchors interval 0; all joiners of a run share it.
  explicit CpuUtilTracker(int64_t origin_ns = 0,
                          int64_t interval_ns = 100'000'000);

  void AddBusy(int64_t start_ns, int64_t end_ns);

  /// Utilization (busy fraction in [0,1]) for each interval up to
  /// `through_ns`; trailing idle intervals are included.
  std::vector<double> UtilizationSeries(int64_t through_ns) const;

  int64_t interval_ns() const { return interval_ns_; }

 private:
  int64_t origin_ns_;
  int64_t interval_ns_;
  std::vector<int64_t> busy_per_interval_;
};

/// Standard deviation of a series (used to score utilization smoothness:
/// Scale-OIJ's dynamic schedule yields a smoother series than Key-OIJ).
double StdDev(const std::vector<double>& values);

}  // namespace oij

#endif  // OIJ_METRICS_CPU_UTIL_H_
