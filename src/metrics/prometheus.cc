#include "metrics/prometheus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace oij {

namespace {

bool NameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Renders a double the way Prometheus clients do: integers without a
/// fractional part, everything else with enough digits to round-trip.
std::string RenderValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out.push_back('_');
  for (char c : name) out.push_back(NameChar(c) ? c : '_');
  if (out.empty()) out = "_";
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void PrometheusWriter::Header(const std::string& name, std::string_view help,
                              std::string_view type) {
  if (std::find(seen_families_.begin(), seen_families_.end(), name) !=
      seen_families_.end()) {
    return;
  }
  seen_families_.push_back(name);
  text_ += "# HELP " + name + " ";
  // HELP text escapes backslash and newline only.
  for (char c : help) {
    if (c == '\\') {
      text_ += "\\\\";
    } else if (c == '\n') {
      text_ += "\\n";
    } else {
      text_.push_back(c);
    }
  }
  text_ += "\n# TYPE " + name + " ";
  text_ += type;
  text_ += "\n";
}

void PrometheusWriter::Sample(const std::string& name,
                              const PrometheusLabels& labels, double value) {
  text_ += name;
  if (!labels.empty()) {
    text_ += "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) text_ += ",";
      first = false;
      text_ += SanitizeMetricName(k) + "=\"" + EscapeLabelValue(v) + "\"";
    }
    text_ += "}";
  }
  text_ += " " + RenderValue(value) + "\n";
}

void PrometheusWriter::Counter(std::string_view name, std::string_view help,
                               double value, const PrometheusLabels& labels) {
  const std::string n = SanitizeMetricName(name);
  Header(n, help, "counter");
  Sample(n, labels, value);
}

void PrometheusWriter::Gauge(std::string_view name, std::string_view help,
                             double value, const PrometheusLabels& labels) {
  const std::string n = SanitizeMetricName(name);
  Header(n, help, "gauge");
  Sample(n, labels, value);
}

void PrometheusWriter::Histogram(std::string_view name, std::string_view help,
                                 const LatencyRecorder& recorder,
                                 const PrometheusLabels& labels) {
  const std::string n = SanitizeMetricName(name);
  Header(n, help, "histogram");
  for (const auto& bucket : recorder.CumulativeBuckets()) {
    PrometheusLabels with_le = labels;
    with_le.emplace_back("le", RenderValue(static_cast<double>(bucket.upper_us)));
    Sample(n + "_bucket", with_le,
           static_cast<double>(bucket.cumulative_count));
  }
  PrometheusLabels inf = labels;
  inf.emplace_back("le", "+Inf");
  Sample(n + "_bucket", inf, static_cast<double>(recorder.count()));
  Sample(n + "_sum", labels, static_cast<double>(recorder.sum_us()));
  Sample(n + "_count", labels, static_cast<double>(recorder.count()));
}

}  // namespace oij
