#ifndef OIJ_METRICS_PROMETHEUS_H_
#define OIJ_METRICS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/latency_recorder.h"

namespace oij {

/// Prometheus text-exposition (version 0.0.4) rendering for the admin
/// endpoint's /metrics page. Only the subset the serving layer needs:
/// counters, gauges, and histograms derived from LatencyRecorder.

/// Replaces every character outside [a-zA-Z0-9_:] with '_' (and prefixes
/// '_' when the first character is a digit) so arbitrary labels from
/// presets/engine names can never produce an unparseable metric name.
std::string SanitizeMetricName(std::string_view name);

/// Escapes backslash, double-quote, and newline per the exposition
/// format's label-value rules.
std::string EscapeLabelValue(std::string_view value);

/// One ("name", "value") label pair; values are escaped at render time.
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

/// Accumulates one exposition document. Metric families must be emitted
/// contiguously (all samples of a name together) — the writer emits
/// HELP/TYPE headers once per family, in first-use order.
class PrometheusWriter {
 public:
  void Counter(std::string_view name, std::string_view help, double value,
               const PrometheusLabels& labels = {});
  void Gauge(std::string_view name, std::string_view help, double value,
             const PrometheusLabels& labels = {});

  /// Renders `recorder` as a native histogram family: cumulative
  /// `_bucket{le="..."}` samples (exact integer counts, monotone by
  /// construction), the mandatory `le="+Inf"` bucket, `_sum`, and
  /// `_count`.
  void Histogram(std::string_view name, std::string_view help,
                 const LatencyRecorder& recorder,
                 const PrometheusLabels& labels = {});

  const std::string& text() const { return text_; }
  std::string Take() { return std::move(text_); }

 private:
  void Header(const std::string& name, std::string_view help,
              std::string_view type);
  void Sample(const std::string& name, const PrometheusLabels& labels,
              double value);

  std::string text_;
  std::vector<std::string> seen_families_;
};

}  // namespace oij

#endif  // OIJ_METRICS_PROMETHEUS_H_
