#ifndef OIJ_METRICS_LATENCY_RECORDER_H_
#define OIJ_METRICS_LATENCY_RECORDER_H_

#include <cstdint>
#include <vector>

namespace oij {

/// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
/// 16 linear sub-buckets each, ~6% relative error). One instance per
/// joiner thread (no synchronization); merge at the end of a run.
///
/// The paper reports latency as a CDF (Figs 5, 17-20, 23); CdfPoints()
/// reproduces that series and Percentile() gives the usual summary rows.
class LatencyRecorder {
 public:
  LatencyRecorder();

  /// Records one latency observation in microseconds (negative clamps to 0).
  void Record(int64_t latency_us);

  void Merge(const LatencyRecorder& other);

  uint64_t count() const { return count_; }
  int64_t max_us() const { return max_us_; }
  int64_t sum_us() const { return sum_us_; }
  double mean_us() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_us_) /
                             static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1], e.g. Percentile(0.99).
  int64_t Percentile(double q) const;

  /// Fraction of observations <= `threshold_us` (e.g. the paper's 20 ms
  /// bank SLA line).
  double FractionBelow(int64_t threshold_us) const;

  struct CdfPoint {
    int64_t latency_us;
    double cumulative;  // P(latency <= latency_us)
  };

  /// The latency CDF as (value, cumulative-probability) points, one per
  /// non-empty bucket.
  std::vector<CdfPoint> CdfPoints() const;

  struct CumulativeBucket {
    int64_t upper_us;          ///< inclusive bucket upper edge
    uint64_t cumulative_count; ///< observations <= upper_us
  };

  /// Exact cumulative counts per non-empty bucket — the Prometheus
  /// histogram series (`le` upper edges with monotonically non-decreasing
  /// cumulative counts; the last entry equals count()). Computed from the
  /// integer bucket counts, not the CDF, so no float rounding can break
  /// monotonicity.
  std::vector<CumulativeBucket> CumulativeBuckets() const;

 private:
  static constexpr int kSubBucketBits = 4;   // 16 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBuckets = 40;        // covers > 10^13 us

  static int BucketIndex(int64_t value_us);
  /// Representative (upper-bound) value of a bucket.
  static int64_t BucketValue(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t sum_us_ = 0;
  int64_t max_us_ = 0;
};

}  // namespace oij

#endif  // OIJ_METRICS_LATENCY_RECORDER_H_
