#include "metrics/throughput.h"

#include "common/clock.h"

namespace oij {

void ThroughputMeter::Start() { start_us_ = MonotonicNowUs(); }

void ThroughputMeter::Stop() { stop_us_ = MonotonicNowUs(); }

double ThroughputMeter::elapsed_seconds() const {
  return static_cast<double>(stop_us_ - start_us_) / 1e6;
}

double ThroughputMeter::TuplesPerSecond() const {
  const double secs = elapsed_seconds();
  return secs <= 0.0 ? 0.0 : static_cast<double>(tuples_) / secs;
}

}  // namespace oij
