#ifndef OIJ_METRICS_BREAKDOWN_H_
#define OIJ_METRICS_BREAKDOWN_H_

#include <cstdint>

namespace oij {

/// Per-joiner processing-time breakdown — the categories of Fig 6:
///   lookup: visiting stored tuples to find those inside the window;
///   match:  aggregating the in-window tuples;
///   other:  everything else (queue handling, insertion, result writing).
/// Joiners accumulate lookup/match with ScopedTimerNs; `other` is derived
/// as busy − lookup − match at report time.
struct TimeBreakdown {
  int64_t lookup_ns = 0;
  int64_t match_ns = 0;
  int64_t busy_ns = 0;  ///< total time spent processing events

  int64_t other_ns() const {
    const int64_t o = busy_ns - lookup_ns - match_ns;
    return o > 0 ? o : 0;
  }

  void Merge(const TimeBreakdown& b) {
    lookup_ns += b.lookup_ns;
    match_ns += b.match_ns;
    busy_ns += b.busy_ns;
  }

  double lookup_fraction() const {
    return busy_ns == 0 ? 0.0
                        : static_cast<double>(lookup_ns) /
                              static_cast<double>(busy_ns);
  }
  double match_fraction() const {
    return busy_ns == 0 ? 0.0
                        : static_cast<double>(match_ns) /
                              static_cast<double>(busy_ns);
  }
  double other_fraction() const {
    return busy_ns == 0 ? 0.0
                        : static_cast<double>(other_ns()) /
                              static_cast<double>(busy_ns);
  }
};

}  // namespace oij

#endif  // OIJ_METRICS_BREAKDOWN_H_
