#include "metrics/latency_recorder.h"

#include <algorithm>
#include <bit>

namespace oij {

LatencyRecorder::LatencyRecorder()
    : buckets_(static_cast<size_t>(kBuckets) * kSubBuckets, 0) {}

int LatencyRecorder::BucketIndex(int64_t value_us) {
  const uint64_t v = static_cast<uint64_t>(std::max<int64_t>(value_us, 0));
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;  // >= 0 here since v >= kSubBuckets
  const int sub = static_cast<int>(v >> shift) & (kSubBuckets - 1);
  const int index = (shift + 1) * kSubBuckets + sub;
  return std::min(index, kBuckets * kSubBuckets - 1);
}

int64_t LatencyRecorder::BucketValue(int index) {
  const int shift = index / kSubBuckets - 1;
  const int sub = index % kSubBuckets;
  if (shift < 0) return sub;
  // Upper edge of the sub-bucket.
  return ((static_cast<int64_t>(kSubBuckets) + sub + 1) << shift) - 1;
}

void LatencyRecorder::Record(int64_t latency_us) {
  latency_us = std::max<int64_t>(latency_us, 0);
  buckets_[BucketIndex(latency_us)]++;
  ++count_;
  sum_us_ += latency_us;
  max_us_ = std::max(max_us_, latency_us);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  max_us_ = std::max(max_us_, other.max_us_);
}

int64_t LatencyRecorder::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // BucketValue is the bucket's *upper edge*, which can exceed the
      // largest recorded value — clamp so no percentile ever reports a
      // latency above the observed maximum.
      return std::min(BucketValue(static_cast<int>(i)), max_us_);
    }
  }
  return max_us_;
}

double LatencyRecorder::FractionBelow(int64_t threshold_us) const {
  if (count_ == 0) return 1.0;
  uint64_t below = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (BucketValue(static_cast<int>(i)) <= threshold_us) {
      below += buckets_[i];
    }
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

std::vector<LatencyRecorder::CdfPoint> LatencyRecorder::CdfPoints() const {
  std::vector<CdfPoint> points;
  if (count_ == 0) return points;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    points.push_back({BucketValue(static_cast<int>(i)),
                      static_cast<double>(seen) /
                          static_cast<double>(count_)});
  }
  return points;
}

std::vector<LatencyRecorder::CumulativeBucket>
LatencyRecorder::CumulativeBuckets() const {
  std::vector<CumulativeBucket> out;
  if (count_ == 0) return out;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    out.push_back({BucketValue(static_cast<int>(i)), seen});
  }
  return out;
}

}  // namespace oij
