#ifndef OIJ_METRICS_THROUGHPUT_H_
#define OIJ_METRICS_THROUGHPUT_H_

#include <cstdint>

namespace oij {

/// Measures input-tuples-per-second over a run, the paper's throughput
/// metric (Section III-B).
class ThroughputMeter {
 public:
  void Start();
  void Stop();

  void AddTuples(uint64_t n) { tuples_ += n; }

  uint64_t tuples() const { return tuples_; }
  double elapsed_seconds() const;
  /// Tuples per second; 0 before Stop().
  double TuplesPerSecond() const;

 private:
  uint64_t tuples_ = 0;
  int64_t start_us_ = 0;
  int64_t stop_us_ = 0;
};

}  // namespace oij

#endif  // OIJ_METRICS_THROUGHPUT_H_
