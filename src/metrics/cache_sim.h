#ifndef OIJ_METRICS_CACHE_SIM_H_
#define OIJ_METRICS_CACHE_SIM_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace oij {

/// Software last-level-cache model: set-associative, LRU replacement.
///
/// Substitute for the perf-counter LLC-miss measurements of Figs 8b / 13d
/// (DESIGN.md §2): joiners feed it a *sampled* trace of the tuple-buffer
/// addresses they touch, and the simulator reports hit/miss counts. The
/// absolute numbers differ from hardware, but the trend the paper explains
/// — footprint ≈ #keys × window grows past LLC capacity and misses surge —
/// is a pure capacity effect the model reproduces.
///
/// Defaults mirror the paper's Xeon Gold 6252: 35.75 MB, 11-way, 64 B
/// lines.
class CacheSim {
 public:
  struct Config {
    uint64_t capacity_bytes = 35ULL * 1024 * 1024 + 768 * 1024;  // 35.75 MB
    uint32_t ways = 11;
    uint32_t line_bytes = 64;
  };

  CacheSim() : CacheSim(Config{}) {}
  explicit CacheSim(const Config& config);

  /// Simulates one access; returns true on hit. Thread-safe (the shared
  /// LLC is a contended resource on hardware too); callers are expected to
  /// sample so the lock is cold.
  bool Access(uintptr_t address);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t accesses() const { return hits() + misses(); }
  double MissRatio() const;

  void ResetCounters();

  uint32_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t lru = 0;  // last-touch stamp
    bool valid = false;
  };

  Config config_;
  uint32_t num_sets_;
  uint32_t line_shift_;
  uint64_t tick_ = 0;
  std::vector<Way> ways_;  // num_sets_ * config_.ways, row-major by set
  std::mutex mu_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// Sampling front end: forwards every `period`-th access of this sampler
/// to the shared CacheSim. One per joiner thread.
class SampledCacheProbe {
 public:
  SampledCacheProbe() = default;
  SampledCacheProbe(CacheSim* sim, uint32_t period)
      : sim_(sim), period_(period == 0 ? 1 : period) {}

  void Touch(const void* address) {
    if (sim_ == nullptr) return;
    if (++counter_ % period_ != 0) return;
    sim_->Access(reinterpret_cast<uintptr_t>(address));
  }

  bool enabled() const { return sim_ != nullptr; }

 private:
  CacheSim* sim_ = nullptr;
  uint32_t period_ = 16;
  uint32_t counter_ = 0;
};

}  // namespace oij

#endif  // OIJ_METRICS_CACHE_SIM_H_
