#include "metrics/cache_sim.h"

#include <bit>

namespace oij {

CacheSim::CacheSim(const Config& config) : config_(config) {
  line_shift_ = static_cast<uint32_t>(std::countr_zero(config_.line_bytes));
  const uint64_t lines = config_.capacity_bytes / config_.line_bytes;
  uint64_t sets = lines / config_.ways;
  // Round down to a power of two so set indexing is a mask.
  if (sets == 0) sets = 1;
  sets = uint64_t{1} << (63 - std::countl_zero(sets));
  num_sets_ = static_cast<uint32_t>(sets);
  ways_.resize(static_cast<size_t>(num_sets_) * config_.ways);
}

bool CacheSim::Access(uintptr_t address) {
  const uint64_t line = static_cast<uint64_t>(address) >> line_shift_;
  const uint32_t set = static_cast<uint32_t>(line) & (num_sets_ - 1);
  const uint64_t tag = line >> std::countr_zero(num_sets_);

  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  Way* row = &ways_[static_cast<size_t>(set) * config_.ways];
  Way* victim = row;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (row[w].valid && row[w].tag == tag) {
      row[w].lru = tick_;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (!row[w].valid) {
      victim = &row[w];
    } else if (victim->valid && row[w].lru < victim->lru) {
      victim = &row[w];
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

double CacheSim::MissRatio() const {
  const uint64_t total = accesses();
  return total == 0 ? 0.0
                    : static_cast<double>(misses()) /
                          static_cast<double>(total);
}

void CacheSim::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace oij
