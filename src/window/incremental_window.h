#ifndef OIJ_WINDOW_INCREMENTAL_WINDOW_H_
#define OIJ_WINDOW_INCREMENTAL_WINDOW_H_

#include <cstdint>

#include "agg/aggregate.h"
#include "common/types.h"

namespace oij {

/// Subtract-on-Evict incremental interval aggregation — paper Section V-C,
/// Figures 15/16, adapting Tangwongsan et al. [16] to relative windows.
///
/// One instance tracks the running aggregate of one key's sliding relative
/// window as seen by one consumer. Because a consumer finalizes its base
/// tuples in timestamp order, consecutive windows slide monotonically:
/// Agg(w_new) = Agg(w_prev) ⊖ {tuples in [prev_start, new_start)}
///                          ⊕ {tuples in (prev_end, new_end]}.
/// Only the two delta ranges are scanned, so heavily overlapping windows
/// (large |w|, dense base stream) share almost all work.
///
/// When the operator is non-invertible, the windows do not overlap, or the
/// window regressed (stale state), Slide() transparently falls back to a
/// full recomputation and re-arms the state.
class IncrementalWindowState {
 public:
  struct SlideStats {
    uint64_t visited = 0;   ///< tuples touched (delta or full scan)
    bool recomputed = false;
  };

  /// Advances the window to [new_start, new_end] and returns the tuples
  /// visited. `scan` must have signature
  ///   void scan(Timestamp lo, Timestamp hi, auto&& per_tuple)
  /// and invoke `per_tuple(const Tuple&)` for every stored tuple of this
  /// key with ts in [lo, hi] (inclusive).
  template <typename Scanner>
  SlideStats Slide(Timestamp new_start, Timestamp new_end, AggKind kind,
                   Scanner&& scan) {
    SlideStats stats;
    const bool can_increment = valid_ && IsInvertible(kind) &&
                               new_start >= prev_start_ &&
                               new_end >= prev_end_ &&
                               new_start <= prev_end_ + 1;
    if (!can_increment) {
      agg_.Reset();
      scan(new_start, new_end, [&](const Tuple& t) {
        agg_.Add(t.payload);
        ++stats.visited;
      });
      stats.recomputed = true;
    } else {
      if (new_start > prev_start_) {
        scan(prev_start_, new_start - 1, [&](const Tuple& t) {
          agg_.Subtract(t.payload);
          ++stats.visited;
        });
      }
      if (new_end > prev_end_) {
        scan(prev_end_ + 1, new_end, [&](const Tuple& t) {
          agg_.Add(t.payload);
          ++stats.visited;
        });
      }
    }
    prev_start_ = new_start;
    prev_end_ = new_end;
    valid_ = true;
    return stats;
  }

  /// Drops the running state; the next Slide() recomputes. Consumers call
  /// this when the owner's eviction horizon may have passed prev_start.
  void Invalidate() { valid_ = false; }

  /// Installs an externally computed full-window aggregate for
  /// [start, end]. The columnar batch kernel calls this after finalizing
  /// a key-group in bulk: the group's last window was aggregated from
  /// staged columns, so handing it over keeps the overlap precondition
  /// (prev window at most one window behind the next scalar slide) that
  /// the eviction read-floor accounting relies on. Like any state after
  /// a Subtract, only the invertible components of `agg` are meaningful.
  void Reseed(Timestamp start, Timestamp end, const AggState& agg) {
    agg_ = agg;
    prev_start_ = start;
    prev_end_ = end;
    valid_ = true;
  }

  bool valid() const { return valid_; }
  Timestamp prev_start() const { return prev_start_; }
  Timestamp prev_end() const { return prev_end_; }
  const AggState& agg() const { return agg_; }

 private:
  AggState agg_;
  Timestamp prev_start_ = 0;
  Timestamp prev_end_ = -1;
  bool valid_ = false;
};

}  // namespace oij

#endif  // OIJ_WINDOW_INCREMENTAL_WINDOW_H_
