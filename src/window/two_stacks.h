#ifndef OIJ_WINDOW_TWO_STACKS_H_
#define OIJ_WINDOW_TWO_STACKS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "agg/aggregate.h"
#include "common/types.h"

namespace oij {

/// Two-Stacks sliding-window aggregation for *non-invertible* operators
/// (min/max) — the "incremental computing for non-invertible operators"
/// the paper's conclusion lists as future work, following the classic
/// Two-Stacks scheme underlying Tangwongsan et al. [16].
///
/// The window is a FIFO of (ts, value): Append() at the back in
/// non-decreasing ts order, EvictBefore() from the front. Each stack
/// entry caches the aggregate of itself and everything nearer its stack
/// bottom, so Query() is O(1) and every element is touched O(1) times
/// amortized across its lifetime (one push, one flip, one pop) — no
/// subtract operation required, hence no invertibility requirement.
class TwoStacksWindow {
 public:
  explicit TwoStacksWindow(AggKind kind) : kind_(kind) {}

  /// Appends one tuple. `ts` must be >= every previously appended ts
  /// (callers sort their deltas; per-index scans are already sorted).
  void Append(Timestamp ts, double value) {
    back_.push_back({ts, value, Combine(BackAgg(), value)});
  }

  /// Evicts every element with ts < `bound` from the front. Returns the
  /// number evicted.
  size_t EvictBefore(Timestamp bound) {
    size_t evicted = 0;
    while (!empty()) {
      if (front_.empty()) Flip();
      if (front_.back().ts >= bound) break;
      front_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  /// Aggregate over the current window contents (identity when empty:
  /// +inf for min, -inf for max — callers should consult size()).
  double Query() const {
    const double f = front_.empty() ? Identity() : front_.back().agg;
    return Combine(f, BackAgg());
  }

  size_t size() const { return front_.size() + back_.size(); }
  bool empty() const { return size() == 0; }

  /// Timestamp of the oldest element (front of the FIFO); only valid when
  /// non-empty.
  Timestamp FrontTs() const {
    return front_.empty() ? back_.front().ts : front_.back().ts;
  }

  void Clear() {
    front_.clear();
    back_.clear();
  }

  AggKind kind() const { return kind_; }

 private:
  struct Entry {
    Timestamp ts;
    double value;
    /// Aggregate of this entry and everything below it in its stack
    /// (back stack: towards the FIFO front; front stack: towards the
    /// FIFO back) — arranged so Query() combines two stack tops.
    double agg;
  };

  double Identity() const {
    return kind_ == AggKind::kMin ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  }

  double Combine(double a, double b) const {
    return kind_ == AggKind::kMin ? (a < b ? a : b) : (a > b ? a : b);
  }

  double BackAgg() const {
    return back_.empty() ? Identity() : back_.back().agg;
  }

  /// Moves the whole back stack onto the front stack, recomputing cached
  /// aggregates in the opposite direction. O(|back|), amortized O(1).
  void Flip() {
    double agg = Identity();
    for (auto it = back_.rbegin(); it != back_.rend(); ++it) {
      agg = Combine(agg, it->value);
      front_.push_back({it->ts, it->value, agg});
    }
    back_.clear();
  }

  AggKind kind_;
  std::vector<Entry> front_;  // FIFO front at back_of_vector
  std::vector<Entry> back_;   // FIFO back at back_of_vector
};

/// Monotone interval-window state for non-invertible aggregates: the
/// counterpart of IncrementalWindowState, backed by a TwoStacksWindow
/// instead of a subtractable running aggregate. Because the two-stacks
/// FIFO must hold the window contents, the delta tuples scanned from the
/// (possibly several, per-team) indexes are collected and sorted before
/// appending.
class NonInvertibleWindowState {
 public:
  explicit NonInvertibleWindowState(AggKind kind) : window_(kind) {}

  struct SlideStats {
    uint64_t visited = 0;
    bool recomputed = false;
  };

  /// Same contract as IncrementalWindowState::Slide.
  template <typename Scanner>
  SlideStats Slide(Timestamp new_start, Timestamp new_end,
                   Scanner&& scan) {
    SlideStats stats;
    const bool can_increment = valid_ && new_start >= prev_start_ &&
                               new_end >= prev_end_ &&
                               new_start <= prev_end_ + 1;
    scratch_.clear();
    if (!can_increment) {
      window_.Clear();
      scan(new_start, new_end, [&](const Tuple& t) {
        scratch_.push_back({t.ts, t.payload});
        ++stats.visited;
      });
      stats.recomputed = true;
    } else {
      window_.EvictBefore(new_start);
      if (new_end > prev_end_) {
        scan(prev_end_ + 1, new_end, [&](const Tuple& t) {
          scratch_.push_back({t.ts, t.payload});
          ++stats.visited;
        });
      }
    }
    std::sort(scratch_.begin(), scratch_.end());
    for (const auto& [ts, value] : scratch_) window_.Append(ts, value);
    prev_start_ = new_start;
    prev_end_ = new_end;
    valid_ = true;
    return stats;
  }

  void Invalidate() { valid_ = false; }

  double Result() const { return window_.Query(); }
  uint64_t count() const { return window_.size(); }
  bool valid() const { return valid_; }

 private:
  TwoStacksWindow window_;
  std::vector<std::pair<Timestamp, double>> scratch_;
  Timestamp prev_start_ = 0;
  Timestamp prev_end_ = -1;
  bool valid_ = false;
};

}  // namespace oij

#endif  // OIJ_WINDOW_TWO_STACKS_H_
