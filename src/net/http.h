#ifndef OIJ_NET_HTTP_H_
#define OIJ_NET_HTTP_H_

#include <string>
#include <string_view>

namespace oij {

/// Minimal HTTP/1.0 support for the admin endpoint: parse
/// `METHOD /path HTTP/x.y` plus headers, build a fixed-length response,
/// close. No keep-alive, no chunking. Request bodies are supported via
/// Content-Length only (for POST /queries), capped at 64 KiB.

struct HttpRequest {
  std::string method;
  std::string path;  ///< query string stripped
  std::string body;  ///< Content-Length bytes (empty without the header)
};

enum class HttpParseResult : uint8_t {
  kOk,        ///< a full request was parsed; `consumed` bytes are done
  kNeedMore,  ///< header terminator not seen yet
  kBad,       ///< malformed (or oversized) request; drop the connection
};

/// Parses one request out of `in` (headers end at CRLFCRLF; bare LFLF is
/// tolerated). Requests whose headers exceed 8 KiB are rejected.
HttpParseResult ParseHttpRequest(std::string_view in, HttpRequest* out,
                                 size_t* consumed);

/// Serializes a complete HTTP/1.0 response with Content-Length and
/// Connection: close.
std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body);

/// "200 OK", "404 Not Found", ... (a handful the admin endpoint uses).
std::string_view HttpStatusText(int status_code);

}  // namespace oij

#endif  // OIJ_NET_HTTP_H_
