#include "net/timer_queue.h"

#include <time.h>

#include <utility>

namespace oij {

int64_t TimerQueue::NowMs() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000000;
}

TimerQueue::TimerId TimerQueue::Schedule(int64_t now_ms, int64_t delay_ms,
                                         std::function<void()> callback) {
  const TimerId id = next_id_++;
  Entry e;
  e.deadline_ms = now_ms + (delay_ms > 0 ? delay_ms : 0);
  e.id = id;
  e.callback = std::move(callback);
  heap_.push(std::move(e));
  live_.insert(id);
  return id;
}

void TimerQueue::Cancel(TimerId id) {
  // Cancelled entries stay in the heap until they pop (lazy deletion);
  // RunExpired recognizes them by their absence from `live_`.
  live_.erase(id);
}

int TimerQueue::NextTimeoutMs(int64_t now_ms, int cap_ms) const {
  if (live_.empty()) return cap_ms;
  // The heap top may be a cancelled entry; reporting its earlier
  // deadline is harmless — Poll just returns a bit sooner.
  const int64_t wait = heap_.empty() ? 0 : heap_.top().deadline_ms - now_ms;
  if (wait <= 0) return 0;
  if (wait >= cap_ms) return cap_ms;
  return static_cast<int>(wait);
}

size_t TimerQueue::RunExpired(int64_t now_ms) {
  size_t fired = 0;
  while (!heap_.empty() && heap_.top().deadline_ms <= now_ms) {
    Entry e = heap_.top();
    heap_.pop();
    if (live_.erase(e.id) == 0) continue;  // cancelled
    ++fired;
    e.callback();
  }
  return fired;
}

}  // namespace oij
