#ifndef OIJ_NET_TIMER_QUEUE_H_
#define OIJ_NET_TIMER_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace oij {

/// Monotonic deadline timers for an EventLoop owner thread.
///
/// The loop pattern is:
///
///   loop.Poll(timers.NextTimeoutMs(TimerQueue::NowMs()));
///   timers.RunExpired(TimerQueue::NowMs());
///
/// Single-threaded like the loop itself: Schedule/Cancel/RunExpired must
/// all happen on the owner thread (timer callbacks may schedule or cancel
/// further timers, including themselves). Cancellation is lazy — the heap
/// entry stays until it pops — so Cancel is O(1) and the heap is only
/// ever popped from the top.
class TimerQueue {
 public:
  using TimerId = uint64_t;

  /// CLOCK_MONOTONIC milliseconds; immune to wall-clock steps.
  static int64_t NowMs();

  /// Runs `callback` once, `delay_ms` from `now_ms` (delay <= 0 fires on
  /// the next RunExpired). Returns an id usable with Cancel.
  TimerId Schedule(int64_t now_ms, int64_t delay_ms,
                   std::function<void()> callback);

  /// Prevents a pending timer from firing. No-op on unknown/fired ids.
  void Cancel(TimerId id);

  /// Milliseconds until the earliest live deadline, clamped to
  /// [0, `cap_ms`]; `cap_ms` when no timer is pending. Feed to Poll.
  int NextTimeoutMs(int64_t now_ms, int cap_ms = 1000) const;

  /// Fires every timer whose deadline is <= `now_ms`, in deadline order.
  /// Returns the number fired. Callbacks may Schedule/Cancel freely;
  /// a timer scheduled during dispatch with delay <= 0 fires in this
  /// same call.
  size_t RunExpired(int64_t now_ms);

  /// Live (scheduled, not cancelled, not fired) timers.
  size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    int64_t deadline_ms = 0;
    TimerId id = 0;
    std::function<void()> callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline_ms != b.deadline_ms) return a.deadline_ms > b.deadline_ms;
      return a.id > b.id;  // FIFO among equal deadlines
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<TimerId> live_;
  TimerId next_id_ = 1;
};

}  // namespace oij

#endif  // OIJ_NET_TIMER_QUEUE_H_
