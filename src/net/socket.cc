#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

namespace oij {

namespace {
Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}
}  // namespace

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status ListenTcp(const std::string& bind_address, uint16_t port, int* fd_out,
                 uint16_t* bound_port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad bind address: " + bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Errno(("bind " + bind_address).c_str());
    CloseFd(fd);
    return s;
  }
  if (::listen(fd, 128) < 0) {
    const Status s = Errno("listen");
    CloseFd(fd);
    return s;
  }
  Status s = SetNonBlocking(fd);
  if (!s.ok()) {
    CloseFd(fd);
    return s;
  }
  if (bound_port_out != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      const Status es = Errno("getsockname");
      CloseFd(fd);
      return es;
    }
    *bound_port_out = ntohs(bound.sin_port);
  }
  *fd_out = fd;
  return Status::OK();
}

Status ConnectTcp(const std::string& host, uint16_t port, int* fd_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status s = Errno(("connect " + host).c_str());
    CloseFd(fd);
    return s;
  }
  SetNoDelay(fd);
  *fd_out = fd;
  return Status::OK();
}

Status ConnectTcpNonBlocking(const std::string& host, uint16_t port,
                             int* fd_out, bool* in_progress_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  Status s = SetNonBlocking(fd);
  if (!s.ok()) {
    CloseFd(fd);
    return s;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno != EINPROGRESS) {
    const Status es = Errno(("connect " + host).c_str());
    CloseFd(fd);
    return es;
  }
  SetNoDelay(fd);
  *fd_out = fd;
  *in_progress_out = (rc < 0);
  return Status::OK();
}

Status FinishConnect(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    return Status::Internal(std::string("connect: ") + std::strerror(err));
  }
  return Status::OK();
}

Status SendAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

int64_t RecvSome(int fd, void* buf, size_t n) {
  ssize_t rc;
  do {
    rc = ::recv(fd, buf, n, 0);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = ::close(fd);
  } while (rc < 0 && errno == EINTR);
}

}  // namespace oij
