#ifndef OIJ_NET_CONNECTION_H_
#define OIJ_NET_CONNECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace oij {

/// Non-blocking accept socket. AcceptAll drains the backlog (the
/// edge-free level-triggered loop calls it whenever the fd is readable)
/// and hands each already-non-blocking connection fd to the callback.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens; port 0 picks an ephemeral port.
  Status Listen(const std::string& bind_address, uint16_t port);

  /// Accepts until EAGAIN. Each accepted fd is non-blocking with
  /// TCP_NODELAY set.
  void AcceptAll(const std::function<void(int fd)>& on_accept);

  void Close();

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// One buffered non-blocking connection: partial reads accumulate into
/// an input buffer the owner consumes; writes queue into an output
/// buffer flushed as the socket drains. The owner drives both from its
/// event loop and watches wants_write() to toggle kLoopWritable.
class TcpConnection {
 public:
  enum class IoResult : uint8_t {
    kOk,    ///< progressed (possibly zero bytes; socket simply not ready)
    kEof,   ///< peer closed its end
    kError  ///< socket error; drop the connection
  };

  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  int fd() const { return fd_; }

  /// Reads everything currently available into input().
  /// `bytes_read` (optional) reports how much arrived in this call.
  IoResult ReadReady(size_t* bytes_read = nullptr);

  /// Consumable received bytes. The owner erases what it decodes (or
  /// uses TakeInput to claim the whole buffer).
  std::string& input() { return input_; }
  std::string TakeInput() {
    std::string out = std::move(input_);
    input_.clear();
    return out;
  }

  /// Queues bytes for transmission (no immediate syscall; the owner
  /// flushes from its writable callback or right after queueing).
  void QueueWrite(std::string_view bytes) { output_.append(bytes); }

  /// Writes as much of the queued output as the socket accepts.
  IoResult FlushWrites();

  bool wants_write() const { return write_pos_ < output_.size(); }
  size_t pending_write_bytes() const { return output_.size() - write_pos_; }

  /// Owner-managed close-after-drain flag (e.g. HTTP/1.0 responses).
  void set_close_after_flush(bool v) { close_after_flush_ = v; }
  bool close_after_flush() const { return close_after_flush_; }

 private:
  int fd_;
  std::string input_;
  std::string output_;
  size_t write_pos_ = 0;
  bool close_after_flush_ = false;
};

}  // namespace oij

#endif  // OIJ_NET_CONNECTION_H_
