#include "net/connection.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/socket.h"

namespace oij {

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(const std::string& bind_address, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("listener already bound");
  return ListenTcp(bind_address, port, &fd_, &port_);
}

void TcpListener::AcceptAll(const std::function<void(int fd)>& on_accept) {
  while (fd_ >= 0) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN/EWOULDBLOCK: backlog drained (or a transient error)
    }
    if (!SetNonBlocking(conn).ok()) {
      CloseFd(conn);
      continue;
    }
    SetNoDelay(conn);
    on_accept(conn);
  }
}

void TcpListener::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

TcpConnection::~TcpConnection() { CloseFd(fd_); }

TcpConnection::IoResult TcpConnection::ReadReady(size_t* bytes_read) {
  if (bytes_read != nullptr) *bytes_read = 0;
  char buf[16 * 1024];
  while (true) {
    const ssize_t rc = ::recv(fd_, buf, sizeof(buf), 0);
    if (rc > 0) {
      input_.append(buf, static_cast<size_t>(rc));
      if (bytes_read != nullptr) *bytes_read += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) return IoResult::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    return IoResult::kError;
  }
}

TcpConnection::IoResult TcpConnection::FlushWrites() {
  while (write_pos_ < output_.size()) {
    const ssize_t rc = ::send(fd_, output_.data() + write_pos_,
                              output_.size() - write_pos_, MSG_NOSIGNAL);
    if (rc > 0) {
      write_pos_ += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // kernel buffer full; wait for writable
    }
    return IoResult::kError;
  }
  if (write_pos_ == output_.size()) {
    output_.clear();
    write_pos_ = 0;
  } else if (write_pos_ >= 64 * 1024) {
    output_.erase(0, write_pos_);
    write_pos_ = 0;
  }
  return IoResult::kOk;
}

}  // namespace oij
