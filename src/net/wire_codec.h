#ifndef OIJ_NET_WIRE_CODEC_H_
#define OIJ_NET_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "core/query_spec.h"
#include "stream/generator.h"

namespace oij {

/// Length-prefixed binary wire protocol for the serving layer.
///
/// Every frame is `[u32 length (LE)] [u8 type] [payload]`, where `length`
/// counts the type byte plus the payload. Integers are little-endian;
/// doubles travel as their IEEE-754 bit pattern. Fixed-size frames are
/// rejected unless their length matches exactly, so a corrupted stream
/// fails loudly instead of desynchronizing.
///
/// Client -> server: kHello / kTuple / kWatermark / kSubscribe / kFinish.
/// Server -> client: kHello / kResult / kSummary / kError / kWatermarkAck.
enum class FrameType : uint8_t {
  kTuple = 1,      ///< stream(u8) ts(i64) key(u64) payload(f64)
  kWatermark = 2,  ///< watermark(i64)
  kFinish = 3,     ///< end of stream: drain, finalize, reply kSummary
  kSubscribe = 4,  ///< stream every join result back on this connection
  kResult = 5,     ///< JoinResult (base tuple, aggregates, timing stamps)
  kSummary = 6,    ///< UTF-8 run summary (kFinish acknowledgement)
  kError = 7,      ///< UTF-8 error message; the server closes afterwards
  /// Versioned handshake: magic(u32) version(u16) flags(u16)
  /// recovered_watermark(i64). Optional, but when a client sends one it
  /// must be the first frame; the server answers with its own kHello (or
  /// a clean kError on a version/magic mismatch — the decoder is never
  /// poisoned by a well-formed hello from the wrong era).
  kHello = 8,
  /// Server -> client durability acknowledgement for one kWatermark:
  /// watermark(i64) tuples_ingested(u64). Sent only to peers whose hello
  /// requested acks; under --fsync per_batch it is emitted after the WAL
  /// sync that precedes the watermark broadcast, so an acked watermark
  /// means every earlier tuple on this connection is durable.
  kWatermarkAck = 9,
  /// Catalog change: register a standing query. Payload:
  /// id_len(u16) id(bytes) pre(i64) fol(i64) lateness(i64) agg(u8)
  /// emit(u8) late_policy(u8). The router broadcasts these to every
  /// backend so the whole cluster serves the same catalog; a backend
  /// treats a duplicate add with an identical spec as idempotent.
  kAddQuery = 10,
  /// Catalog change: deactivate the standing query `id_len(u16) id`.
  kRemoveQuery = 11,
};

/// Upper bound on `length`; anything larger is a protocol violation.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

/// Bytes of the length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Handshake constants. The magic pins the protocol family ("OIJ1");
/// the version is bumped whenever a frame's layout or semantics change
/// incompatibly. Peers reject a mismatched hello with a kError frame and
/// close — never by poisoning the decoder, since a well-formed hello
/// from a newer/older peer is valid *syntax*, just an unacceptable
/// *negotiation*.
inline constexpr uint32_t kWireMagic = 0x314A494Fu;  // "OIJ1" little-endian
/// v2: kResult/canonical-result frames carry the query ordinal, and the
/// kAddQuery/kRemoveQuery catalog frames exist.
inline constexpr uint16_t kWireVersion = 2;

/// Hello flag bits (u16).
/// Client -> server: request kWatermarkAck frames for every kWatermark.
inline constexpr uint16_t kHelloWantAcks = 1u << 0;
/// Server -> client: this backend runs --fsync per_batch with
/// watermark-cut recovery, so acked state survives kill -9 exactly and
/// a router may replay the un-acked suffix without creating duplicates.
inline constexpr uint16_t kHelloDurableExact = 1u << 1;

/// Decoded kHello payload.
struct HelloInfo {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  uint16_t flags = 0;
  /// Server -> client: watermark its recovered state is complete
  /// through (kMinTimestamp when fresh). Clients send kMinTimestamp.
  Timestamp recovered_watermark = kMinTimestamp;

  bool Compatible() const {
    return magic == kWireMagic && version == kWireVersion;
  }
};

/// One decoded frame. Only the fields of the decoded `type` are
/// meaningful.
struct WireFrame {
  FrameType type = FrameType::kFinish;
  StreamEvent event;                 // kTuple
  Timestamp watermark = 0;           // kWatermark / kWatermarkAck
  uint64_t ack_tuples = 0;           // kWatermarkAck
  HelloInfo hello;                   // kHello
  JoinResult result;                 // kResult
  std::string text;                  // kSummary / kError
  std::string query_id;              // kAddQuery / kRemoveQuery
  QuerySpec query_spec;              // kAddQuery
};

/// Frame encoders append to `out` so a caller can batch many frames into
/// one write buffer.
void AppendTupleFrame(std::string* out, const StreamEvent& event);
void AppendWatermarkFrame(std::string* out, Timestamp watermark);
void AppendControlFrame(std::string* out, FrameType type);  // finish/subscribe
void AppendResultFrame(std::string* out, const JoinResult& result);
void AppendTextFrame(std::string* out, FrameType type, std::string_view text);
void AppendHelloFrame(std::string* out, const HelloInfo& hello);
void AppendWatermarkAckFrame(std::string* out, Timestamp watermark,
                             uint64_t tuples_ingested);
void AppendAddQueryFrame(std::string* out, std::string_view id,
                         const QuerySpec& spec);
void AppendRemoveQueryFrame(std::string* out, std::string_view id);

/// Canonical encoding of a result *excluding* the wall-clock stamps
/// (arrival/emit), so two runs over the same input are byte-comparable.
void AppendCanonicalResult(std::string* out, const JoinResult& result);

/// Incremental frame decoder over an arbitrary byte-chunked stream.
///
/// Feed() raw bytes in any split; Next() yields complete frames until it
/// returns kNeedMore. The first malformed frame (oversized, undersized,
/// unknown type, or a length/type size mismatch) poisons the decoder:
/// every later Next() returns kCorrupt and error() explains why — the
/// owner is expected to drop the connection.
class WireDecoder {
 public:
  enum class Result : uint8_t { kFrame, kNeedMore, kCorrupt };

  void Feed(const char* data, size_t n);
  void Feed(std::string_view data) { Feed(data.data(), data.size()); }

  Result Next(WireFrame* out);

  const Status& error() const { return error_; }

  /// Undecoded bytes currently buffered.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  Result Fail(std::string message);

  std::string buf_;
  size_t pos_ = 0;
  Status error_;
};

}  // namespace oij

#endif  // OIJ_NET_WIRE_CODEC_H_
