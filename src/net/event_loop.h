#ifndef OIJ_NET_EVENT_LOOP_H_
#define OIJ_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.h"

namespace oij {

/// Readiness bits passed to fd callbacks (a subset may be set at once).
inline constexpr uint32_t kLoopReadable = 1u << 0;
inline constexpr uint32_t kLoopWritable = 1u << 1;
/// Error/hangup on the fd; the callback should tear the fd down.
inline constexpr uint32_t kLoopError = 1u << 2;

/// Single-threaded readiness loop over non-blocking fds: epoll(7) on
/// Linux, poll(2) everywhere else. The Envoy-style contract: one owner
/// thread calls Add/SetInterest/Remove/Poll; the only cross-thread entry
/// point is Wakeup(), which makes a concurrent/pending Poll return early
/// (self-pipe). Callbacks run inside Poll on the owner thread and may
/// freely Remove any fd, including their own.
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t ready)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when the constructor could not allocate its backing fds; Poll
  /// on a dead loop returns immediately.
  bool ok() const { return ok_; }

  /// Registers `fd` (must already be non-blocking) for the interest bits
  /// in `interest` (kLoopReadable/kLoopWritable). kLoopError is always
  /// delivered.
  Status Add(int fd, uint32_t interest, FdCallback callback);

  /// Replaces the interest bits of a registered fd.
  Status SetInterest(int fd, uint32_t interest);

  /// Deregisters `fd`. Safe on unknown fds and from inside callbacks.
  void Remove(int fd);

  /// Waits up to `timeout_ms` (-1 = indefinitely) and dispatches ready
  /// callbacks. Returns the number of fds dispatched (0 on timeout or
  /// wakeup).
  int Poll(int timeout_ms);

  /// Thread-safe: forces a concurrent or subsequent Poll to return.
  void Wakeup();

  size_t registered() const { return entries_.size(); }

 private:
  struct Entry {
    uint32_t interest = 0;
    FdCallback callback;
    uint64_t generation = 0;  ///< guards against fd-number reuse mid-poll
  };

  void DrainWakePipe();

  bool ok_ = false;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint64_t next_generation_ = 1;
  std::unordered_map<int, Entry> entries_;

#if defined(__linux__)
  int epoll_fd_ = -1;
#endif
};

}  // namespace oij

#endif  // OIJ_NET_EVENT_LOOP_H_
