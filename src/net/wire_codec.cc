#include "net/wire_codec.h"

#include <bit>
#include <cstring>

namespace oij {

namespace {

// Little-endian scalar encoding, written byte-by-byte so the wire format
// is identical on any host.
void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

uint32_t GetU32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint16_t GetU16(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(static_cast<uint16_t>(u[0]) |
                               (static_cast<uint16_t>(u[1]) << 8));
}

uint64_t GetU64(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(u[i]) << (8 * i);
  return v;
}

int64_t GetI64(const char* p) { return static_cast<int64_t>(GetU64(p)); }
double GetF64(const char* p) { return std::bit_cast<double>(GetU64(p)); }

// Payload sizes (excluding the type byte) of the fixed-size frames.
constexpr size_t kTupleBytes = 1 + 8 + 8 + 8;
constexpr size_t kWatermarkBytes = 8;
constexpr size_t kResultBytes = 24 + 8 + 8 + 24 + 16 + 4;
constexpr size_t kHelloBytes = 4 + 2 + 2 + 8;
constexpr size_t kWatermarkAckBytes = 8 + 8;
// kAddQuery payload past the id: pre, fol, lateness (i64 each) plus the
// agg/emit/late-policy bytes.
constexpr size_t kQuerySpecBytes = 8 + 8 + 8 + 3;
constexpr size_t kMaxQueryIdBytes = 64;

void PutTuple(std::string* out, const Tuple& t) {
  PutI64(out, t.ts);
  PutU64(out, t.key);
  PutF64(out, t.payload);
}

Tuple GetTuple(const char* p) {
  Tuple t;
  t.ts = GetI64(p);
  t.key = GetU64(p + 8);
  t.payload = GetF64(p + 16);
  return t;
}

void BeginFrame(std::string* out, FrameType type, size_t payload_bytes) {
  PutU32(out, static_cast<uint32_t>(1 + payload_bytes));
  out->push_back(static_cast<char>(type));
}

}  // namespace

void AppendTupleFrame(std::string* out, const StreamEvent& event) {
  BeginFrame(out, FrameType::kTuple, kTupleBytes);
  out->push_back(static_cast<char>(event.stream));
  PutTuple(out, event.tuple);
}

void AppendWatermarkFrame(std::string* out, Timestamp watermark) {
  BeginFrame(out, FrameType::kWatermark, kWatermarkBytes);
  PutI64(out, watermark);
}

void AppendControlFrame(std::string* out, FrameType type) {
  BeginFrame(out, type, 0);
}

void AppendResultFrame(std::string* out, const JoinResult& result) {
  BeginFrame(out, FrameType::kResult, kResultBytes);
  PutTuple(out, result.base);
  PutF64(out, result.aggregate);
  PutU64(out, result.match_count);
  PutF64(out, result.sum);
  PutF64(out, result.min);
  PutF64(out, result.max);
  PutI64(out, result.arrival_us);
  PutI64(out, result.emit_us);
  PutU32(out, result.query);
}

void AppendTextFrame(std::string* out, FrameType type, std::string_view text) {
  BeginFrame(out, type, text.size());
  out->append(text);
}

void AppendHelloFrame(std::string* out, const HelloInfo& hello) {
  BeginFrame(out, FrameType::kHello, kHelloBytes);
  PutU32(out, hello.magic);
  PutU16(out, hello.version);
  PutU16(out, hello.flags);
  PutI64(out, hello.recovered_watermark);
}

void AppendWatermarkAckFrame(std::string* out, Timestamp watermark,
                             uint64_t tuples_ingested) {
  BeginFrame(out, FrameType::kWatermarkAck, kWatermarkAckBytes);
  PutI64(out, watermark);
  PutU64(out, tuples_ingested);
}

void AppendAddQueryFrame(std::string* out, std::string_view id,
                         const QuerySpec& spec) {
  BeginFrame(out, FrameType::kAddQuery, 2 + id.size() + kQuerySpecBytes);
  PutU16(out, static_cast<uint16_t>(id.size()));
  out->append(id);
  PutI64(out, spec.window.pre);
  PutI64(out, spec.window.fol);
  PutI64(out, spec.lateness_us);
  out->push_back(static_cast<char>(spec.agg));
  out->push_back(static_cast<char>(spec.emit_mode));
  out->push_back(static_cast<char>(spec.late_policy));
}

void AppendRemoveQueryFrame(std::string* out, std::string_view id) {
  BeginFrame(out, FrameType::kRemoveQuery, 2 + id.size());
  PutU16(out, static_cast<uint16_t>(id.size()));
  out->append(id);
}

void AppendCanonicalResult(std::string* out, const JoinResult& result) {
  PutTuple(out, result.base);
  PutF64(out, result.aggregate);
  PutU64(out, result.match_count);
  PutU32(out, result.query);
}

void WireDecoder::Feed(const char* data, size_t n) {
  // Compact lazily so long sessions do not grow the buffer unboundedly.
  if (pos_ > 0 && (pos_ >= 64 * 1024 || pos_ == buf_.size())) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

WireDecoder::Result WireDecoder::Fail(std::string message) {
  error_ = Status::ParseError(std::move(message));
  return Result::kCorrupt;
}

WireDecoder::Result WireDecoder::Next(WireFrame* out) {
  if (!error_.ok()) return Result::kCorrupt;
  if (buffered() < kFrameHeaderBytes) return Result::kNeedMore;

  const char* head = buf_.data() + pos_;
  const uint32_t length = GetU32(head);
  if (length == 0) return Fail("zero-length frame");
  if (length > 1 + kMaxFramePayload) {
    return Fail("frame length " + std::to_string(length) +
                " exceeds the " + std::to_string(kMaxFramePayload) +
                "-byte payload bound");
  }
  if (buffered() < kFrameHeaderBytes + length) return Result::kNeedMore;

  const char* body = head + kFrameHeaderBytes;
  const uint8_t type_byte = static_cast<uint8_t>(body[0]);
  const char* payload = body + 1;
  const size_t payload_bytes = length - 1;

  auto expect = [&](size_t want, const char* name) {
    if (payload_bytes == want) return true;
    Fail(std::string(name) + " frame has " + std::to_string(payload_bytes) +
         " payload bytes, expected " + std::to_string(want));
    return false;
  };

  switch (static_cast<FrameType>(type_byte)) {
    case FrameType::kTuple: {
      if (!expect(kTupleBytes, "tuple")) return Result::kCorrupt;
      const uint8_t stream = static_cast<uint8_t>(payload[0]);
      if (stream > 1) return Fail("tuple frame has bad stream id");
      out->type = FrameType::kTuple;
      out->event.stream = static_cast<StreamId>(stream);
      out->event.tuple = GetTuple(payload + 1);
      break;
    }
    case FrameType::kWatermark:
      if (!expect(kWatermarkBytes, "watermark")) return Result::kCorrupt;
      out->type = FrameType::kWatermark;
      out->watermark = GetI64(payload);
      break;
    case FrameType::kFinish:
    case FrameType::kSubscribe:
      if (!expect(0, "control")) return Result::kCorrupt;
      out->type = static_cast<FrameType>(type_byte);
      break;
    case FrameType::kResult: {
      if (!expect(kResultBytes, "result")) return Result::kCorrupt;
      out->type = FrameType::kResult;
      JoinResult& r = out->result;
      r.base = GetTuple(payload);
      r.aggregate = GetF64(payload + 24);
      r.match_count = GetU64(payload + 32);
      r.sum = GetF64(payload + 40);
      r.min = GetF64(payload + 48);
      r.max = GetF64(payload + 56);
      r.arrival_us = GetI64(payload + 64);
      r.emit_us = GetI64(payload + 72);
      r.query = GetU32(payload + 80);
      break;
    }
    case FrameType::kAddQuery:
    case FrameType::kRemoveQuery: {
      const bool is_add = type_byte == static_cast<uint8_t>(
                                           FrameType::kAddQuery);
      const size_t fixed = is_add ? kQuerySpecBytes : 0;
      if (payload_bytes < 2 + fixed) {
        return Fail("catalog frame too short");
      }
      const size_t id_len = GetU16(payload);
      if (id_len == 0 || id_len > kMaxQueryIdBytes ||
          payload_bytes != 2 + id_len + fixed) {
        return Fail("catalog frame has bad query-id length");
      }
      out->type = static_cast<FrameType>(type_byte);
      out->query_id.assign(payload + 2, id_len);
      if (is_add) {
        const char* p = payload + 2 + id_len;
        QuerySpec& q = out->query_spec;
        q.window.pre = GetI64(p);
        q.window.fol = GetI64(p + 8);
        q.lateness_us = GetI64(p + 16);
        const uint8_t agg = static_cast<uint8_t>(p[24]);
        const uint8_t emit = static_cast<uint8_t>(p[25]);
        const uint8_t late = static_cast<uint8_t>(p[26]);
        if (agg > static_cast<uint8_t>(AggKind::kMax) ||
            emit > static_cast<uint8_t>(EmitMode::kWatermark) ||
            late > static_cast<uint8_t>(LatePolicy::kSideChannel)) {
          return Fail("add-query frame has bad enum value");
        }
        q.agg = static_cast<AggKind>(agg);
        q.emit_mode = static_cast<EmitMode>(emit);
        q.late_policy = static_cast<LatePolicy>(late);
      }
      break;
    }
    case FrameType::kSummary:
    case FrameType::kError:
      out->type = static_cast<FrameType>(type_byte);
      out->text.assign(payload, payload_bytes);
      break;
    case FrameType::kHello:
      // Size is syntax; magic/version are *negotiation* and stay with
      // the caller, which answers a mismatch with a clean kError frame.
      if (!expect(kHelloBytes, "hello")) return Result::kCorrupt;
      out->type = FrameType::kHello;
      out->hello.magic = GetU32(payload);
      out->hello.version = GetU16(payload + 4);
      out->hello.flags = GetU16(payload + 6);
      out->hello.recovered_watermark = GetI64(payload + 8);
      break;
    case FrameType::kWatermarkAck:
      if (!expect(kWatermarkAckBytes, "watermark-ack")) {
        return Result::kCorrupt;
      }
      out->type = FrameType::kWatermarkAck;
      out->watermark = GetI64(payload);
      out->ack_tuples = GetU64(payload + 8);
      break;
    default:
      return Fail("unknown frame type " + std::to_string(type_byte));
  }

  pos_ += kFrameHeaderBytes + length;
  return Result::kFrame;
}

}  // namespace oij
