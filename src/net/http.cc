#include "net/http.h"

namespace oij {

namespace {
constexpr size_t kMaxHeaderBytes = 8 * 1024;
constexpr size_t kMaxBodyBytes = 64 * 1024;

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}
}  // namespace

HttpParseResult ParseHttpRequest(std::string_view in, HttpRequest* out,
                                 size_t* consumed) {
  size_t end = in.find("\r\n\r\n");
  size_t terminator = 4;
  if (end == std::string_view::npos) {
    end = in.find("\n\n");
    terminator = 2;
  }
  if (end == std::string_view::npos) {
    return in.size() > kMaxHeaderBytes ? HttpParseResult::kBad
                                       : HttpParseResult::kNeedMore;
  }
  if (end > kMaxHeaderBytes) return HttpParseResult::kBad;

  std::string_view head = in.substr(0, end);
  const size_t line_end = head.find_first_of("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return HttpParseResult::kBad;
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return HttpParseResult::kBad;
  }
  std::string_view version = request_line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return HttpParseResult::kBad;

  std::string_view path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);
  if (path.empty() || path[0] != '/') return HttpParseResult::kBad;

  // Headers are ignored except Content-Length, which gates how many body
  // bytes must follow the terminator before the request is complete.
  size_t content_length = 0;
  std::string_view headers =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 1);
  while (!headers.empty()) {
    const size_t nl = headers.find('\n');
    std::string_view line = headers.substr(0, nl);
    headers = nl == std::string_view::npos ? std::string_view{}
                                           : headers.substr(nl + 1);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (!EqualsIgnoreCase(Trim(line.substr(0, colon)), "content-length")) {
      continue;
    }
    std::string_view value = Trim(line.substr(colon + 1));
    if (value.empty()) return HttpParseResult::kBad;
    uint64_t parsed = 0;
    for (char c : value) {
      if (c < '0' || c > '9') return HttpParseResult::kBad;
      parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
      if (parsed > kMaxBodyBytes) return HttpParseResult::kBad;
    }
    content_length = static_cast<size_t>(parsed);
  }

  const size_t body_start = end + terminator;
  if (in.size() < body_start + content_length) {
    return HttpParseResult::kNeedMore;
  }

  out->method = std::string(request_line.substr(0, sp1));
  out->path = std::string(path);
  out->body = std::string(in.substr(body_start, content_length));
  *consumed = body_start + content_length;
  return HttpParseResult::kOk;
}

std::string_view HttpStatusText(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.0 " + std::to_string(status_code) + " ";
  out += HttpStatusText(status_code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace oij
