#include "net/http.h"

namespace oij {

namespace {
constexpr size_t kMaxHeaderBytes = 8 * 1024;
}  // namespace

HttpParseResult ParseHttpRequest(std::string_view in, HttpRequest* out,
                                 size_t* consumed) {
  size_t end = in.find("\r\n\r\n");
  size_t terminator = 4;
  if (end == std::string_view::npos) {
    end = in.find("\n\n");
    terminator = 2;
  }
  if (end == std::string_view::npos) {
    return in.size() > kMaxHeaderBytes ? HttpParseResult::kBad
                                       : HttpParseResult::kNeedMore;
  }
  if (end > kMaxHeaderBytes) return HttpParseResult::kBad;

  std::string_view head = in.substr(0, end);
  const size_t line_end = head.find_first_of("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return HttpParseResult::kBad;
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return HttpParseResult::kBad;
  }
  std::string_view version = request_line.substr(sp2 + 1);
  if (version.substr(0, 5) != "HTTP/") return HttpParseResult::kBad;

  std::string_view path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);
  if (path.empty() || path[0] != '/') return HttpParseResult::kBad;

  out->method = std::string(request_line.substr(0, sp1));
  out->path = std::string(path);
  *consumed = end + terminator;
  return HttpParseResult::kOk;
}

std::string_view HttpStatusText(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.0 " + std::to_string(status_code) + " ";
  out += HttpStatusText(status_code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace oij
