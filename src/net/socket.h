#ifndef OIJ_NET_SOCKET_H_
#define OIJ_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace oij {

/// Thin POSIX socket helpers shared by the serving layer and its clients.
/// The non-blocking variants back the event-loop server; the blocking
/// variants back the load generator and the loopback tests, which want
/// straightforward sequential I/O.

/// Marks `fd` O_NONBLOCK.
Status SetNonBlocking(int fd);

/// Disables Nagle batching; a tuple frame should not wait for an ACK.
Status SetNoDelay(int fd);

/// Creates a non-blocking TCP listener bound to `bind_address:port`
/// (port 0 picks an ephemeral port). On success stores the listening fd
/// and the actually bound port.
Status ListenTcp(const std::string& bind_address, uint16_t port, int* fd_out,
                 uint16_t* bound_port_out);

/// Blocking TCP connect (numeric IPv4 host, e.g. "127.0.0.1").
Status ConnectTcp(const std::string& host, uint16_t port, int* fd_out);

/// Non-blocking TCP connect for event-loop clients (the router's backend
/// pool). On success `*fd_out` holds a non-blocking, TCP_NODELAY socket
/// and `*in_progress_out` says whether the three-way handshake is still
/// pending (EINPROGRESS): if true, wait for writability and then call
/// FinishConnect; if false, the connection completed immediately
/// (loopback fast path).
Status ConnectTcpNonBlocking(const std::string& host, uint16_t port,
                             int* fd_out, bool* in_progress_out);

/// Resolves a pending non-blocking connect once the fd polls writable:
/// reads SO_ERROR and returns OK iff the handshake succeeded.
Status FinishConnect(int fd);

/// Blocking full-buffer send; loops over partial writes and EINTR.
Status SendAll(int fd, const void* data, size_t n);

/// Blocking receive of up to `n` bytes. Returns bytes read, 0 on orderly
/// peer close, -1 on error (EINTR retried internally).
int64_t RecvSome(int fd, void* buf, size_t n);

/// close(2) tolerating EINTR; no-op for fd < 0.
void CloseFd(int fd);

}  // namespace oij

#endif  // OIJ_NET_SOCKET_H_
