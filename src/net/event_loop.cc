#include "net/event_loop.h"

#include <errno.h>
#include <unistd.h>

#include <vector>

#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include "net/socket.h"

namespace oij {

namespace {
#if defined(__linux__)
uint32_t ToEpoll(uint32_t interest) {
  uint32_t ev = 0;
  if (interest & kLoopReadable) ev |= EPOLLIN;
  if (interest & kLoopWritable) ev |= EPOLLOUT;
  return ev;
}

uint32_t FromEpoll(uint32_t ev) {
  uint32_t ready = 0;
  if (ev & (EPOLLIN | EPOLLPRI)) ready |= kLoopReadable;
  if (ev & EPOLLOUT) ready |= kLoopWritable;
  if (ev & (EPOLLERR | EPOLLHUP)) ready |= kLoopError;
  return ready;
}
#else
short ToPoll(uint32_t interest) {
  short ev = 0;
  if (interest & kLoopReadable) ev |= POLLIN;
  if (interest & kLoopWritable) ev |= POLLOUT;
  return ev;
}

uint32_t FromPoll(short ev) {
  uint32_t ready = 0;
  if (ev & (POLLIN | POLLPRI)) ready |= kLoopReadable;
  if (ev & POLLOUT) ready |= kLoopWritable;
  if (ev & (POLLERR | POLLHUP | POLLNVAL)) ready |= kLoopError;
  return ready;
}
#endif
}  // namespace

EventLoop::EventLoop() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return;
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  if (!SetNonBlocking(wake_read_fd_).ok() ||
      !SetNonBlocking(wake_write_fd_).ok()) {
    return;
  }
#if defined(__linux__)
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return;
#endif
  ok_ = true;
  Add(wake_read_fd_, kLoopReadable, [this](uint32_t) { DrainWakePipe(); });
}

EventLoop::~EventLoop() {
#if defined(__linux__)
  CloseFd(epoll_fd_);
#endif
  CloseFd(wake_read_fd_);
  CloseFd(wake_write_fd_);
}

Status EventLoop::Add(int fd, uint32_t interest, FdCallback callback) {
  if (!ok_) return Status::FailedPrecondition("event loop not initialized");
  if (entries_.count(fd) != 0) {
    return Status::InvalidArgument("fd already registered");
  }
#if defined(__linux__)
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal("epoll_ctl(ADD) failed");
  }
#endif
  Entry entry;
  entry.interest = interest;
  entry.callback = std::move(callback);
  entry.generation = next_generation_++;
  entries_.emplace(fd, std::move(entry));
  return Status::OK();
}

Status EventLoop::SetInterest(int fd, uint32_t interest) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) {
    return Status::NotFound("fd not registered");
  }
  if (it->second.interest == interest) return Status::OK();
#if defined(__linux__)
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal("epoll_ctl(MOD) failed");
  }
#endif
  it->second.interest = interest;
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
#if defined(__linux__)
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  entries_.erase(it);
}

int EventLoop::Poll(int timeout_ms) {
  if (!ok_) return -1;

  // Snapshot (fd, generation, ready) triples first, then dispatch: a
  // callback may Remove (or even re-Add) any fd, and the generation
  // check keeps a recycled fd number from receiving a stale event.
  struct Ready {
    int fd;
    uint64_t generation;
    uint32_t bits;
  };
  std::vector<Ready> ready;

#if defined(__linux__)
  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return n;
  ready.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    auto it = entries_.find(fd);
    if (it == entries_.end()) continue;
    ready.push_back({fd, it->second.generation, FromEpoll(events[i].events)});
  }
#else
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const auto& [fd, entry] : entries_) {
    fds.push_back({fd, ToPoll(entry.interest), 0});
  }
  int n;
  do {
    n = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return n;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    auto it = entries_.find(p.fd);
    if (it == entries_.end()) continue;
    ready.push_back({p.fd, it->second.generation, FromPoll(p.revents)});
  }
#endif

  int dispatched = 0;
  for (const Ready& r : ready) {
    auto it = entries_.find(r.fd);
    if (it == entries_.end() || it->second.generation != r.generation) {
      continue;  // removed (or replaced) by an earlier callback
    }
    // Copy the callback: the entry may be erased while it runs.
    FdCallback cb = it->second.callback;
    cb(r.bits);
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::Wakeup() {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t rc =
      ::write(wake_write_fd_, &byte, 1);
}

void EventLoop::DrainWakePipe() {
  char buf[256];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace oij
