#ifndef OIJ_WAL_WAL_H_
#define OIJ_WAL_WAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "common/types.h"
#include "core/query_spec.h"
#include "stream/generator.h"

namespace oij {

/// When the write-ahead log calls fsync (DESIGN.md §5e). Group commit
/// batches record bytes in userspace either way; the policy only decides
/// when durability is *forced*, which is what bounds crash loss:
///
///   kNone      never fsync (OS flushes eventually)  -> unbounded loss
///   kInterval  fsync when fsync_interval_us elapsed -> loss <= interval
///   kPerBatch  fsync before each watermark broadcast -> zero loss of
///              watermark-finalized results (every result emitted at
///              watermark W had all its inputs durable first)
enum class FsyncPolicy : uint8_t {
  kNone = 0,
  kInterval,
  kPerBatch,
};

std::string_view FsyncPolicyName(FsyncPolicy policy);
Status FsyncPolicyFromName(std::string_view name, FsyncPolicy* out);

/// Durability knobs, embedded in EngineOptions. An empty `wal_dir`
/// disables the subsystem entirely (zero cost on the ingest path).
struct DurabilityOptions {
  /// Directory for WAL segments, snapshots and the manifest. Created if
  /// missing. Empty = durability off.
  std::string wal_dir;

  FsyncPolicy fsync = FsyncPolicy::kInterval;

  /// kInterval: max microseconds between fsyncs of dirty shards.
  int64_t fsync_interval_us = 20'000;

  /// Number of log shards. 0 = one per joiner (the per-joiner WAL).
  /// Tuples are sharded by key hash; watermarks are replicated to every
  /// shard (deduplicated by LSN on replay).
  uint32_t wal_shards = 0;

  /// Take a snapshot (and rotate/truncate the log) every N appended
  /// records. 0 = never snapshot; recovery then replays the whole log.
  uint64_t snapshot_interval_records = 0;

  /// Userspace group-commit buffer per shard: records are written to the
  /// file in chunks of at least this many bytes (or at any flush/sync
  /// boundary).
  uint32_t group_commit_bytes = 64 * 1024;

  /// Recover to the watermark-consistent cut instead of the raw torn
  /// tail: replay stops at the last watermark present in *every* shard,
  /// and later records are physically truncated. This makes the
  /// recovered state exactly "durable through watermark W, nothing
  /// after", which is what a router needs to replay the un-acked
  /// suffix without duplicating anything. Most useful with kPerBatch
  /// (where the cut loses nothing that was acked); with weaker
  /// policies it trades a bounded extra loss for the same exactness of
  /// the recovered prefix.
  bool recover_to_watermark = false;

  bool enabled() const { return !wal_dir.empty(); }
  Status Validate() const;
};

/// Merged durability counters, reported in EngineStats::wal and sampled
/// live by the watchdog/admin threads.
struct WalStats {
  bool enabled = false;
  uint64_t appended_records = 0;
  uint64_t appended_bytes = 0;
  /// Records known durable (covered by a successful fsync, or written
  /// before one). Loss bound after a crash = appended - synced.
  uint64_t synced_records = 0;
  uint64_t fsyncs = 0;
  uint64_t fsync_failures = 0;  ///< injected (FaultInjector)
  uint64_t short_writes = 0;    ///< injected (FaultInjector)
  uint64_t snapshots_taken = 0;
  uint64_t snapshot_records = 0;     ///< records in the latest snapshot
  int64_t last_snapshot_mono_us = 0; ///< 0 = never
  /// Recovery-side counters (non-zero only on a recovered engine).
  uint64_t replay_records = 0;
  uint64_t replay_watermarks = 0;
  uint64_t torn_records = 0;  ///< bytes/records discarded at torn tails
  int64_t recovery_duration_us = 0;
};

/// --- On-disk formats ------------------------------------------------
///
/// WAL record: [u64 lsn LE][u32 crc LE][wire frame], where the frame is
/// the PR-3 wire codec encoding ([u32 len][u8 type][payload]) of a
/// kTuple or kWatermark frame — one codec, one fuzz surface. The CRC is
/// CRC-32C over the lsn bytes plus the whole frame, so a bit flip
/// anywhere in the record (including the lsn) is detected and the reader
/// stops cleanly at a torn tail.
///
/// Segment files:   wal-<generation>-<shard>.log
/// Snapshot files:  snap-<epoch>-j<joiner>.snap  (WAL records, lsn =
///                  ordinal; committed by tmp+rename, so presence
///                  implies completeness)
/// Manifest:        MANIFEST (text key=value, CRC-guarded, tmp+rename)
inline constexpr size_t kWalRecordHeaderBytes = 8 + 4;

void AppendWalTupleRecord(std::string* out, uint64_t lsn,
                          const StreamEvent& event);
void AppendWalWatermarkRecord(std::string* out, uint64_t lsn,
                              Timestamp watermark);

std::string WalSegmentName(uint64_t generation, uint32_t shard);
std::string SnapshotFileName(uint64_t epoch, uint32_t joiner);
bool ParseWalSegmentName(std::string_view name, uint64_t* generation,
                         uint32_t* shard);
bool ParseSnapshotFileName(std::string_view name, uint64_t* epoch,
                           uint32_t* joiner);
inline constexpr char kWalManifestName[] = "MANIFEST";

/// Per-engine write-ahead log: sharded segments, group commit, snapshot
/// coordination and truncation.
///
/// Threading contract mirrors the engine's: Append*/Commit*/snapshot
/// control run on the single driver thread; WriteJoinerSnapshot /
/// MarkSnapshotFailed are called by joiner threads (serialized per
/// joiner, snapshot bookkeeping under snap_mu_); StatsSnapshot() is safe
/// from any thread (atomics only).
class WalManager {
 public:
  WalManager(const DurabilityOptions& options, uint32_t num_joiners,
             const FaultInjector* faults);
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Creates the directory if needed and opens a fresh segment
  /// generation (one above anything already on disk, so existing
  /// segments are never appended to — they are either replayed by
  /// recovery or discarded).
  Status Open();

  /// True if the directory already holds WAL segments or a manifest
  /// that recovery could consume.
  bool HasExistingState() const { return has_existing_state_; }

  /// Fresh-start semantics: deletes any pre-existing segments, snapshots
  /// and manifest. Called by the engine when ingest begins without a
  /// recovery pass, so stale state can never leak into a later recovery.
  void DiscardExistingState();

  // --- Appends (driver thread) ---

  /// Logs one arrival; returns the record's LSN.
  uint64_t AppendTuple(const StreamEvent& event);

  /// Logs a watermark to every shard under a single LSN (replay
  /// deduplicates by LSN); returns it.
  uint64_t AppendWatermark(Timestamp watermark);

  /// Logs a standing-query catalog change. Like watermarks, catalog
  /// records are replicated to every shard under a single LSN so replay
  /// of any shard subset still sees them (and the merge deduplicates).
  uint64_t AppendAddQuery(std::string_view id, const QuerySpec& spec);
  uint64_t AppendRemoveQuery(std::string_view id);

  /// Policy-aware commit point. With `watermark_barrier` false (after a
  /// tuple append) it drains full group-commit buffers and honors the
  /// kInterval timer; with it true (immediately *before* a watermark is
  /// broadcast to the joiners) kPerBatch additionally forces a full
  /// sync, which is what makes every watermark-finalized result durable
  /// before it can be externalized.
  void CommitGroup(int64_t now_us, bool watermark_barrier);

  /// Writes out every buffered byte; fsyncs all dirty shards when `sync`
  /// (ignoring the policy — used by Sync()/Finish() and the snapshot
  /// barrier). Returns the first write error, if any.
  Status Flush(bool sync);

  /// Resume appends after recovery: the next record gets `next_lsn`.
  void ResumeAppends(uint64_t next_lsn);

  /// Test hook modeling kill -9: drops every buffered-but-unwritten byte
  /// and closes the segments without a final flush or sync, exactly the
  /// state a crashed process leaves on disk.
  void SimulateCrash();

  // --- Snapshots ---

  /// True when snapshot_interval_records have been appended since the
  /// last snapshot barrier and no snapshot is in flight.
  bool SnapshotDue() const;

  /// Driver thread: starts snapshot epoch. Flushes and rotates the log
  /// (records at or below the returned barrier live in generations that
  /// become truncatable once the snapshot commits) and remembers the
  /// watermark to store in the manifest. `catalog` is the engine's
  /// serialized standing-query catalog at the barrier (QueryCatalog
  /// lines; empty when the engine runs a single query) — it is embedded
  /// in the manifest so recovery restores the catalog before replaying
  /// the log suffix. Returns the epoch id.
  uint64_t BeginSnapshot(Timestamp watermark, std::string catalog = {});

  /// Joiner thread: writes this joiner's state (as wire-frame records)
  /// into the epoch's snapshot file and marks the joiner complete.
  Status WriteJoinerSnapshot(uint64_t epoch, uint32_t joiner,
                             const std::vector<StreamEvent>& events);

  /// Any thread: aborts the in-flight epoch (lost control event, write
  /// failure). No manifest is written and no log is truncated — strictly
  /// safe, the previous snapshot + full log still recover everything.
  void MarkSnapshotFailed(uint64_t epoch);

  /// Driver thread: if every joiner finished the in-flight epoch,
  /// commits the manifest and truncates superseded segments/snapshots.
  /// Returns true when a manifest was committed by this call.
  bool PollSnapshotCompletion();

  // --- Recovery bookkeeping (driver thread) ---
  void RecordReplay(uint64_t records, uint64_t watermarks, uint64_t torn,
                    int64_t duration_us);

  // --- Introspection ---
  WalStats StatsSnapshot() const;
  const std::string& dir() const { return options_.wal_dir; }
  uint32_t shards() const { return num_shards_; }
  uint64_t next_lsn() const { return next_lsn_; }

 private:
  struct Shard {
    int fd = -1;
    std::string buffer;       ///< group-commit staging (driver thread)
    uint64_t buffered_records = 0;
    bool dirty_since_sync = false;
    uint64_t fault_rng = 0;   ///< per-shard deterministic fault stream
  };

  uint32_t ShardForKey(Key key) const;
  /// Appends `frame` to every shard under one fresh LSN (watermarks and
  /// catalog records); returns the LSN.
  uint64_t AppendReplicated(std::string_view frame);
  /// Writes `shard`'s buffer to its fd (with injected short writes).
  Status DrainShard(Shard* shard);
  /// fsync with injected failures; advances synced_records on success.
  void SyncShard(Shard* shard);
  Status OpenGeneration(uint64_t generation);
  void CloseShards();
  /// Deletes segments with generation <= `bound` and snapshots of epochs
  /// below `keep_epoch`.
  void TruncateThrough(uint64_t generation_bound, uint64_t keep_epoch);
  bool FaultFires(Shard* shard, double probability);

  DurabilityOptions options_;
  uint32_t num_joiners_;
  uint32_t num_shards_;
  const FaultInjector* faults_;  // may be nullptr

  std::vector<Shard> shards_;
  uint64_t generation_ = 0;
  uint64_t next_lsn_ = 1;  ///< LSN 0 is reserved as "before everything"
  bool has_existing_state_ = false;
  bool open_ = false;
  int64_t last_sync_us_ = 0;
  uint64_t records_since_snapshot_ = 0;
  /// Records appended but not yet covered by a sync (all shards).
  uint64_t unsynced_records_ = 0;

  // --- snapshot-in-flight bookkeeping (snap_mu_) ---
  std::mutex snap_mu_;
  uint64_t epoch_in_flight_ = 0;  ///< 0 = none
  uint64_t next_epoch_ = 1;
  uint64_t barrier_generation_ = 0;
  uint64_t barrier_lsn_ = 0;
  Timestamp barrier_watermark_ = kMinTimestamp;
  std::string barrier_catalog_;
  uint32_t snapshot_joiners_done_ = 0;
  uint64_t snapshot_records_written_ = 0;
  bool snapshot_failed_ = false;
  uint64_t committed_epoch_ = 0;  ///< latest manifest epoch
  /// Lock-free fast path for PollSnapshotCompletion on the hot loop.
  std::atomic<bool> snapshot_inflight_flag_{false};

  // --- cross-thread gauges ---
  std::atomic<uint64_t> appended_records_{0};
  std::atomic<uint64_t> appended_bytes_{0};
  std::atomic<uint64_t> synced_records_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> fsync_failures_{0};
  std::atomic<uint64_t> short_writes_{0};
  std::atomic<uint64_t> snapshots_taken_{0};
  std::atomic<uint64_t> last_snapshot_records_{0};
  std::atomic<int64_t> last_snapshot_mono_us_{0};
  std::atomic<uint64_t> replay_records_{0};
  std::atomic<uint64_t> replay_watermarks_{0};
  std::atomic<uint64_t> torn_records_{0};
  std::atomic<int64_t> recovery_duration_us_{0};
};

}  // namespace oij

#endif  // OIJ_WAL_WAL_H_
