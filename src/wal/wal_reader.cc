#include "wal/wal_reader.h"

#include <dirent.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/hash.h"
#include "net/wire_codec.h"

namespace oij {

namespace {

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no such file: " + path);
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::Internal("read failed: " + path);
  return Status::OK();
}

uint32_t LoadLe32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t LoadLe64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Status ReadWalManifest(const std::string& path, WalManifest* out) {
  std::string text;
  Status s = ReadWholeFile(path, &text);
  if (!s.ok()) return s;

  // The CRC line covers every byte before it.
  const size_t crc_pos = text.rfind("crc=");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::ParseError("manifest missing crc line: " + path);
  }
  unsigned int stored_crc = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc=%8x", &stored_crc) != 1) {
    return Status::ParseError("manifest bad crc line: " + path);
  }
  const uint32_t actual_crc =
      Crc32c(std::string_view(text.data(), crc_pos));
  if (actual_crc != stored_crc) {
    return Status::ParseError("manifest crc mismatch: " + path);
  }

  WalManifest m;
  bool saw_header = false, saw_epoch = false, saw_lsn = false,
       saw_watermark = false, saw_joiners = false;
  size_t pos = 0;
  while (pos < crc_pos) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos || eol > crc_pos) eol = crc_pos;
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line == "oij-wal-manifest-v1") {
      saw_header = true;
      continue;
    }
    unsigned long long u = 0;
    long long i = 0;
    unsigned int u32 = 0;
    if (std::sscanf(line.c_str(), "epoch=%llu", &u) == 1) {
      m.epoch = u;
      saw_epoch = true;
    } else if (std::sscanf(line.c_str(), "snapshot_lsn=%llu", &u) == 1) {
      m.snapshot_lsn = u;
      saw_lsn = true;
    } else if (std::sscanf(line.c_str(), "watermark=%lld", &i) == 1) {
      m.watermark = i;
      saw_watermark = true;
    } else if (std::sscanf(line.c_str(), "joiners=%u", &u32) == 1) {
      m.joiners = u32;
      saw_joiners = true;
    } else if (std::sscanf(line.c_str(), "shards=%u", &u32) == 1) {
      m.shards = u32;
    } else if (std::sscanf(line.c_str(), "records=%llu", &u) == 1) {
      m.records = u;
    } else if (line.compare(0, 6, "query=") == 0) {
      // Catalog lines are collected verbatim (they are QueryCatalog
      // serialization, which owns their grammar).
      m.catalog += line;
      m.catalog += '\n';
    }
    // Unknown keys are forward-compatible: the CRC already vouches for
    // the file as a whole.
  }
  if (!saw_header || !saw_epoch || !saw_lsn || !saw_watermark ||
      !saw_joiners) {
    return Status::ParseError("manifest missing required keys: " + path);
  }
  *out = m;
  return Status::OK();
}

Status WalFileReader::OpenFile() { return ReadWholeFile(path_, &buf_); }

bool WalFileReader::Next(WalReplayRecord* out) {
  if (done_) return false;
  // Header: [u64 lsn][u32 crc]; then a wire frame [u32 len][u8 type]...
  if (pos_ + kWalRecordHeaderBytes + kFrameHeaderBytes + 1 > buf_.size()) {
    done_ = true;
    torn_ = pos_ < buf_.size();
    return false;
  }
  const char* base = buf_.data() + pos_;
  const uint64_t lsn = LoadLe64(base);
  const uint32_t stored_crc = LoadLe32(base + 8);
  const uint32_t frame_len = LoadLe32(base + 12);
  if (frame_len == 0 || frame_len > kMaxFramePayload) {
    done_ = true;
    torn_ = true;
    return false;
  }
  const size_t frame_bytes = kFrameHeaderBytes + frame_len;
  if (pos_ + kWalRecordHeaderBytes + frame_bytes > buf_.size()) {
    done_ = true;
    torn_ = true;
    return false;
  }
  const std::string_view frame(base + kWalRecordHeaderBytes, frame_bytes);
  const uint32_t actual_crc =
      Crc32c(frame, Crc32c(std::string_view(base, 8)));
  if (actual_crc != stored_crc) {
    done_ = true;
    torn_ = true;
    return false;
  }

  // One codec, one fuzz surface: the frame goes through the same
  // decoder the network path uses.
  WireDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  WireFrame wire;
  if (decoder.Next(&wire) != WireDecoder::Result::kFrame ||
      decoder.buffered() != 0) {
    done_ = true;
    torn_ = true;
    return false;
  }
  out->is_watermark = false;
  if (wire.type == FrameType::kTuple) {
    out->kind = WalReplayRecord::Kind::kTuple;
    out->event = wire.event;
  } else if (wire.type == FrameType::kWatermark) {
    out->kind = WalReplayRecord::Kind::kWatermark;
    out->is_watermark = true;
    out->watermark = wire.watermark;
  } else if (wire.type == FrameType::kAddQuery) {
    out->kind = WalReplayRecord::Kind::kAddQuery;
    out->query_id = wire.query_id;
    out->query_spec = wire.query_spec;
  } else if (wire.type == FrameType::kRemoveQuery) {
    out->kind = WalReplayRecord::Kind::kRemoveQuery;
    out->query_id = wire.query_id;
  } else {
    // Valid frame, but not a type the WAL ever writes.
    done_ = true;
    torn_ = true;
    return false;
  }
  out->lsn = lsn;
  pos_ += kWalRecordHeaderBytes + frame_bytes;
  consumed_ = pos_;
  ++records_read_;
  return true;
}

Status BuildReplayPlan(const std::string& dir, WalReplayPlan* out) {
  *out = WalReplayPlan{};

  bool has_manifest = false;
  std::vector<std::string> segment_names;
  std::map<uint32_t, std::string> snapshot_names;  // joiner -> name
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return Status::OK();  // nothing to recover
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    uint64_t generation = 0, epoch = 0;
    uint32_t shard = 0, joiner = 0;
    if (ParseWalSegmentName(name, &generation, &shard)) {
      segment_names.push_back(name);
    } else if (name == kWalManifestName) {
      has_manifest = true;
    } else if (ParseSnapshotFileName(name, &epoch, &joiner)) {
      (void)epoch;  // resolved against the manifest below
    }
  }
  closedir(d);

  WalManifest manifest;
  uint64_t snapshot_lsn = 0;
  if (has_manifest) {
    Status s = ReadWalManifest(dir + "/" + kWalManifestName, &manifest);
    if (!s.ok()) return s;
    snapshot_lsn = manifest.snapshot_lsn;
    out->has_snapshot = true;
    out->restore_watermark = manifest.watermark;
    out->catalog = manifest.catalog;
    // Snapshot files are rename-committed, so a missing or short one
    // under a committed manifest is real damage, not a torn tail.
    for (uint32_t j = 0; j < manifest.joiners; ++j) {
      WalFileReader reader(dir + "/" + SnapshotFileName(manifest.epoch, j));
      s = reader.OpenFile();
      if (!s.ok()) {
        return Status::FailedPrecondition(
            "manifest epoch missing snapshot file: " + reader.path());
      }
      WalReplayRecord record;
      while (reader.Next(&record)) {
        if (record.kind != WalReplayRecord::Kind::kTuple) {
          return Status::ParseError("non-tuple record in snapshot: " +
                                    reader.path());
        }
        out->snapshot_events.push_back(record.event);
      }
      if (reader.torn()) {
        return Status::ParseError("corrupt snapshot file: " +
                                  reader.path());
      }
    }
    out->snapshot_records = out->snapshot_events.size();
    if (manifest.records != 0 &&
        out->snapshot_records != manifest.records) {
      return Status::FailedPrecondition(
          "snapshot record count mismatch vs manifest");
    }
    out->max_lsn = snapshot_lsn;
  }

  // Read every segment (any generation/shard — stale generations below
  // the snapshot barrier are filtered by lsn), then merge by lsn.
  // Alongside, track per *shard* the highest watermark LSN that
  // survived: the min over shards is the watermark-consistent cut.
  std::vector<WalReplayRecord> merged;
  std::map<uint32_t, uint64_t> shard_last_wm_lsn;  // shard -> max wm lsn
  std::map<uint64_t, Timestamp> wm_value_by_lsn;
  for (const std::string& name : segment_names) {
    uint64_t generation = 0;
    uint32_t shard = 0;
    ParseWalSegmentName(name, &generation, &shard);
    // A shard is a cut participant even when its surviving records hold
    // no watermark — an absent entry would silently drop it from the
    // min below.
    uint64_t& shard_wm = shard_last_wm_lsn[shard];
    shard_wm = std::max(shard_wm, snapshot_lsn);
    WalFileReader reader(dir + "/" + name);
    const Status s = reader.OpenFile();
    if (!s.ok()) continue;  // raced truncation; lsn filter keeps us safe
    WalReplayRecord record;
    while (reader.Next(&record)) {
      if (record.lsn > snapshot_lsn) merged.push_back(record);
      if (record.lsn > out->max_lsn) out->max_lsn = record.lsn;
      if (record.is_watermark && record.lsn > shard_wm) {
        shard_wm = record.lsn;
        wm_value_by_lsn[record.lsn] = record.watermark;
      }
    }
    if (reader.torn()) {
      ++out->torn_tails;
      out->torn_bytes += reader.torn_bytes();
    }
  }
  uint64_t cut = snapshot_lsn;
  if (!shard_last_wm_lsn.empty()) {
    cut = UINT64_MAX;
    for (const auto& [shard, wm_lsn] : shard_last_wm_lsn) {
      cut = std::min(cut, wm_lsn);
    }
  }
  out->watermark_cut_lsn = cut;
  const auto wm_it = wm_value_by_lsn.find(cut);
  out->watermark_cut =
      wm_it != wm_value_by_lsn.end() ? wm_it->second : out->restore_watermark;
  std::stable_sort(merged.begin(), merged.end(),
                   [](const WalReplayRecord& a, const WalReplayRecord& b) {
                     return a.lsn < b.lsn;
                   });
  uint64_t last_lsn = 0;
  bool first = true;
  for (const WalReplayRecord& record : merged) {
    if (!first && record.lsn == last_lsn) continue;  // replicated wm
    first = false;
    last_lsn = record.lsn;
    out->records.push_back(record);
  }
  return Status::OK();
}

Status TruncateLogPastLsn(const std::string& dir, uint64_t cut_lsn,
                          uint64_t* dropped_records_out) {
  uint64_t dropped = 0;
  std::vector<std::string> segment_names;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return Status::OK();
  while (dirent* entry = readdir(d)) {
    uint64_t generation = 0;
    uint32_t shard = 0;
    if (ParseWalSegmentName(entry->d_name, &generation, &shard)) {
      segment_names.push_back(entry->d_name);
    }
  }
  closedir(d);

  Status first_error = Status::OK();
  for (const std::string& name : segment_names) {
    const std::string path = dir + "/" + name;
    WalFileReader reader(path);
    if (!reader.OpenFile().ok()) continue;
    // Records within one segment strictly ascend in LSN, so the keep
    // boundary is the consumed() offset just before the first
    // past-the-cut record; everything after (and any torn tail) goes.
    uint64_t keep_bytes = 0;
    WalReplayRecord record;
    while (reader.Next(&record)) {
      if (record.lsn > cut_lsn) {
        ++dropped;
        continue;
      }
      keep_bytes = reader.consumed();
    }
    const uint64_t total_bytes = reader.consumed() + reader.torn_bytes();
    if (keep_bytes < total_bytes) {
      if (::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) != 0) {
        if (first_error.ok()) {
          first_error = Status::Internal("truncate failed: " + path);
        }
      }
    }
  }
  if (dropped_records_out != nullptr) *dropped_records_out = dropped;
  return first_error;
}

}  // namespace oij
