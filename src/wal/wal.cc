#include "wal/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/clock.h"
#include "common/hash.h"
#include "net/wire_codec.h"

namespace oij {

namespace {

void AppendLe32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendLe64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// [u64 lsn][u32 crc][frame]; crc = CRC-32C(lsn bytes ++ frame).
void AppendWalRecord(std::string* out, uint64_t lsn,
                     std::string_view frame) {
  std::string lsn_bytes;
  AppendLe64(&lsn_bytes, lsn);
  const uint32_t crc = Crc32c(frame, Crc32c(lsn_bytes));
  out->append(lsn_bytes);
  AppendLe32(out, crc);
  out->append(frame);
}

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(std::string(op) + " " + path + ": " +
                          std::strerror(errno));
}

/// mkdir -p for the WAL directory.
Status MakeDirs(const std::string& path) {
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    partial = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (partial.empty()) continue;
    if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", partial);
    }
  }
  return Status::OK();
}

void FsyncDir(const std::string& dir) {
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    fsync(fd);
    close(fd);
  }
}

/// Write all of `data` to `fd`, retrying partial writes.
Status WriteFully(int fd, const char* data, size_t n,
                  const std::string& path) {
  while (n > 0) {
    const ssize_t w = write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kPerBatch:
      return "per_batch";
  }
  return "unknown";
}

Status FsyncPolicyFromName(std::string_view name, FsyncPolicy* out) {
  if (name == "none") {
    *out = FsyncPolicy::kNone;
  } else if (name == "interval") {
    *out = FsyncPolicy::kInterval;
  } else if (name == "per_batch" || name == "per-batch") {
    *out = FsyncPolicy::kPerBatch;
  } else {
    return Status::InvalidArgument("unknown fsync policy: " +
                                   std::string(name) +
                                   " (want none|interval|per_batch)");
  }
  return Status::OK();
}

Status DurabilityOptions::Validate() const {
  if (!enabled()) return Status::OK();
  if (fsync == FsyncPolicy::kInterval && fsync_interval_us <= 0) {
    return Status::InvalidArgument("fsync_interval_us must be > 0");
  }
  if (group_commit_bytes == 0) {
    return Status::InvalidArgument("group_commit_bytes must be > 0");
  }
  return Status::OK();
}

void AppendWalTupleRecord(std::string* out, uint64_t lsn,
                          const StreamEvent& event) {
  std::string frame;
  AppendTupleFrame(&frame, event);
  AppendWalRecord(out, lsn, frame);
}

void AppendWalWatermarkRecord(std::string* out, uint64_t lsn,
                              Timestamp watermark) {
  std::string frame;
  AppendWatermarkFrame(&frame, watermark);
  AppendWalRecord(out, lsn, frame);
}

std::string WalSegmentName(uint64_t generation, uint32_t shard) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64 "-%03u.log", generation,
                shard);
  return buf;
}

std::string SnapshotFileName(uint64_t epoch, uint32_t joiner) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snap-%06" PRIu64 "-j%03u.snap", epoch,
                joiner);
  return buf;
}

bool ParseWalSegmentName(std::string_view name, uint64_t* generation,
                         uint32_t* shard) {
  unsigned long long gen = 0;
  unsigned int sh = 0;
  char tail = '\0';
  if (std::sscanf(std::string(name).c_str(), "wal-%llu-%u.lo%c", &gen, &sh,
                  &tail) != 3 ||
      tail != 'g') {
    return false;
  }
  *generation = gen;
  *shard = sh;
  return true;
}

bool ParseSnapshotFileName(std::string_view name, uint64_t* epoch,
                           uint32_t* joiner) {
  unsigned long long ep = 0;
  unsigned int j = 0;
  char tail = '\0';
  if (std::sscanf(std::string(name).c_str(), "snap-%llu-j%u.sna%c", &ep, &j,
                  &tail) != 3 ||
      tail != 'p') {
    return false;
  }
  *epoch = ep;
  *joiner = j;
  return true;
}

WalManager::WalManager(const DurabilityOptions& options,
                       uint32_t num_joiners, const FaultInjector* faults)
    : options_(options),
      num_joiners_(num_joiners),
      num_shards_(options.wal_shards == 0 ? num_joiners
                                          : options.wal_shards),
      faults_(faults) {
  if (num_shards_ == 0) num_shards_ = 1;
}

WalManager::~WalManager() {
  if (open_) {
    Flush(/*sync=*/false);
    CloseShards();
  }
}

Status WalManager::Open() {
  Status s = MakeDirs(options_.wal_dir);
  if (!s.ok()) return s;

  // Scan what a previous incarnation left behind: existing segments (to
  // pick a fresh generation), snapshots and manifest (recovery input and
  // the epoch floor).
  uint64_t max_generation = 0;
  uint64_t max_epoch = 0;
  DIR* d = opendir(options_.wal_dir.c_str());
  if (d == nullptr) return Errno("opendir", options_.wal_dir);
  while (dirent* entry = readdir(d)) {
    const std::string_view name = entry->d_name;
    uint64_t generation = 0, epoch = 0;
    uint32_t shard = 0, joiner = 0;
    if (ParseWalSegmentName(name, &generation, &shard)) {
      has_existing_state_ = true;
      if (generation > max_generation) max_generation = generation;
    } else if (ParseSnapshotFileName(name, &epoch, &joiner)) {
      has_existing_state_ = true;
      if (epoch > max_epoch) max_epoch = epoch;
    } else if (name == kWalManifestName) {
      has_existing_state_ = true;
    }
  }
  closedir(d);
  next_epoch_ = max_epoch + 1;

  shards_.resize(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    shards_[i].fault_rng =
        (faults_ != nullptr ? faults_->disk_fault_seed : 0) ^
        Mix64(i + 0x5eedULL);
    shards_[i].buffer.reserve(options_.group_commit_bytes + 256);
  }
  s = OpenGeneration(max_generation + 1);
  if (!s.ok()) return s;
  open_ = true;
  last_sync_us_ = MonotonicNowUs();
  return Status::OK();
}

void WalManager::DiscardExistingState() {
  // Everything below the just-opened generation belongs to a previous
  // incarnation the caller chose not to recover.
  TruncateThrough(generation_ - 1, /*keep_epoch=*/UINT64_MAX);
  const std::string manifest = options_.wal_dir + "/" + kWalManifestName;
  unlink(manifest.c_str());
  has_existing_state_ = false;
}

Status WalManager::OpenGeneration(uint64_t generation) {
  generation_ = generation;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    const std::string path =
        options_.wal_dir + "/" + WalSegmentName(generation_, i);
    const int fd =
        open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) return Errno("open", path);
    shards_[i].fd = fd;
    shards_[i].dirty_since_sync = false;
  }
  FsyncDir(options_.wal_dir);
  return Status::OK();
}

void WalManager::CloseShards() {
  for (Shard& shard : shards_) {
    if (shard.fd >= 0) {
      close(shard.fd);
      shard.fd = -1;
    }
  }
}

uint32_t WalManager::ShardForKey(Key key) const {
  return RangePartition(Mix64(key), num_shards_);
}

bool WalManager::FaultFires(Shard* shard, double probability) {
  if (faults_ == nullptr || probability <= 0.0) return false;
  shard->fault_rng += 0x9e3779b97f4a7c15ULL;
  const uint64_t u = Mix64(shard->fault_rng);
  const double draw = static_cast<double>(u >> 11) * 0x1p-53;
  return draw < probability;
}

Status WalManager::DrainShard(Shard* shard) {
  if (shard->buffer.empty()) return Status::OK();
  size_t n = shard->buffer.size();
  if (FaultFires(shard, faults_ != nullptr
                            ? faults_->short_write_probability
                            : 0.0)) {
    // Injected torn write: persist a random prefix but report success,
    // exactly like a page-cache loss at crash time.
    shard->fault_rng += 0x9e3779b97f4a7c15ULL;
    n = static_cast<size_t>(Mix64(shard->fault_rng) % (n + 1));
    short_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  const Status s = WriteFully(shard->fd, shard->buffer.data(), n,
                              options_.wal_dir);
  shard->buffer.clear();
  shard->buffered_records = 0;
  shard->dirty_since_sync = true;
  return s;
}

void WalManager::SyncShard(Shard* shard) {
  if (!shard->dirty_since_sync) return;
  if (FaultFires(shard, faults_ != nullptr
                            ? faults_->fsync_failure_probability
                            : 0.0)) {
    fsync_failures_.fetch_add(1, std::memory_order_relaxed);
    return;  // dirty_since_sync stays set; next pass retries
  }
  fsync(shard->fd);
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  shard->dirty_since_sync = false;
}

uint64_t WalManager::AppendTuple(const StreamEvent& event) {
  const uint64_t lsn = next_lsn_++;
  Shard& shard = shards_[ShardForKey(event.tuple.key)];
  const size_t before = shard.buffer.size();
  AppendWalTupleRecord(&shard.buffer, lsn, event);
  appended_bytes_.fetch_add(shard.buffer.size() - before,
                            std::memory_order_relaxed);
  appended_records_.fetch_add(1, std::memory_order_relaxed);
  ++shard.buffered_records;
  ++records_since_snapshot_;
  ++unsynced_records_;
  return lsn;
}

uint64_t WalManager::AppendWatermark(Timestamp watermark) {
  // One LSN, every shard: replay of any subset of shards still sees the
  // punctuation, and the merge deduplicates by LSN.
  std::string frame;
  AppendWatermarkFrame(&frame, watermark);
  return AppendReplicated(frame);
}

uint64_t WalManager::AppendAddQuery(std::string_view id,
                                    const QuerySpec& spec) {
  std::string frame;
  AppendAddQueryFrame(&frame, id, spec);
  return AppendReplicated(frame);
}

uint64_t WalManager::AppendRemoveQuery(std::string_view id) {
  std::string frame;
  AppendRemoveQueryFrame(&frame, id);
  return AppendReplicated(frame);
}

uint64_t WalManager::AppendReplicated(std::string_view frame) {
  const uint64_t lsn = next_lsn_++;
  for (Shard& shard : shards_) {
    const size_t before = shard.buffer.size();
    AppendWalRecord(&shard.buffer, lsn, frame);
    appended_bytes_.fetch_add(shard.buffer.size() - before,
                              std::memory_order_relaxed);
    ++shard.buffered_records;
  }
  appended_records_.fetch_add(1, std::memory_order_relaxed);
  ++records_since_snapshot_;
  ++unsynced_records_;
  return lsn;
}

void WalManager::CommitGroup(int64_t now_us, bool watermark_barrier) {
  for (Shard& shard : shards_) {
    if (shard.buffer.size() >= options_.group_commit_bytes) {
      DrainShard(&shard);
    }
  }
  const bool sync_now =
      (options_.fsync == FsyncPolicy::kPerBatch && watermark_barrier) ||
      (options_.fsync == FsyncPolicy::kInterval &&
       now_us - last_sync_us_ >= options_.fsync_interval_us);
  if (sync_now) Flush(/*sync=*/true);
}

Status WalManager::Flush(bool sync) {
  Status first;
  for (Shard& shard : shards_) {
    const Status s = DrainShard(&shard);
    if (first.ok() && !s.ok()) first = s;
  }
  if (sync) {
    bool all_clean = true;
    for (Shard& shard : shards_) {
      SyncShard(&shard);
      if (shard.dirty_since_sync) all_clean = false;
    }
    last_sync_us_ = MonotonicNowUs();
    if (all_clean) {
      // Conservative: the pass only advances durability if every shard
      // actually reached disk (an injected fsync failure holds it back).
      synced_records_.fetch_add(unsynced_records_,
                                std::memory_order_relaxed);
      unsynced_records_ = 0;
    }
  }
  return first;
}

void WalManager::ResumeAppends(uint64_t next_lsn) {
  if (next_lsn > next_lsn_) next_lsn_ = next_lsn;
}

void WalManager::SimulateCrash() {
  for (Shard& shard : shards_) {
    shard.buffer.clear();
    shard.buffered_records = 0;
  }
  CloseShards();
  open_ = false;
}

bool WalManager::SnapshotDue() const {
  return options_.snapshot_interval_records > 0 &&
         records_since_snapshot_ >= options_.snapshot_interval_records &&
         !snapshot_inflight_flag_.load(std::memory_order_acquire);
}

uint64_t WalManager::BeginSnapshot(Timestamp watermark,
                                   std::string catalog) {
  // The barrier: every record appended so far lands in generations that
  // the committed snapshot will supersede. No sync is needed here — the
  // snapshot content comes from joiner memory, which has (or will have,
  // before writing its snapshot file) processed every pre-barrier event.
  Flush(/*sync=*/false);
  CloseShards();
  std::lock_guard<std::mutex> lock(snap_mu_);
  epoch_in_flight_ = next_epoch_++;
  barrier_generation_ = generation_;
  barrier_lsn_ = next_lsn_ - 1;
  barrier_watermark_ = watermark;
  barrier_catalog_ = std::move(catalog);
  snapshot_joiners_done_ = 0;
  snapshot_records_written_ = 0;
  snapshot_failed_ = false;
  records_since_snapshot_ = 0;
  OpenGeneration(generation_ + 1);
  snapshot_inflight_flag_.store(true, std::memory_order_release);
  return epoch_in_flight_;
}

Status WalManager::WriteJoinerSnapshot(
    uint64_t epoch, uint32_t joiner,
    const std::vector<StreamEvent>& events) {
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (epoch_in_flight_ != epoch || snapshot_failed_) {
      return Status::FailedPrecondition("snapshot epoch not in flight");
    }
  }
  const std::string final_path =
      options_.wal_dir + "/" + SnapshotFileName(epoch, joiner);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = open(tmp_path.c_str(),
                      O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", tmp_path);

  // Snapshot records are ordinary WAL records with the ordinal as LSN,
  // chunked so a large index never materializes one giant buffer.
  std::string buf;
  buf.reserve(1 << 20);
  Status s;
  uint64_t ordinal = 0;
  for (const StreamEvent& event : events) {
    AppendWalTupleRecord(&buf, ++ordinal, event);
    if (buf.size() >= (1u << 20)) {
      s = WriteFully(fd, buf.data(), buf.size(), tmp_path);
      if (!s.ok()) break;
      buf.clear();
    }
  }
  if (s.ok() && !buf.empty()) {
    s = WriteFully(fd, buf.data(), buf.size(), tmp_path);
  }
  if (s.ok() && fsync(fd) != 0) s = Errno("fsync", tmp_path);
  close(fd);
  if (s.ok() && rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    s = Errno("rename", tmp_path);
  }
  if (!s.ok()) {
    unlink(tmp_path.c_str());
    MarkSnapshotFailed(epoch);
    return s;
  }
  FsyncDir(options_.wal_dir);
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (epoch_in_flight_ == epoch) {
    ++snapshot_joiners_done_;
    snapshot_records_written_ += events.size();
  }
  return Status::OK();
}

void WalManager::MarkSnapshotFailed(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (epoch_in_flight_ == epoch) snapshot_failed_ = true;
}

bool WalManager::PollSnapshotCompletion() {
  if (!snapshot_inflight_flag_.load(std::memory_order_acquire)) {
    return false;
  }
  uint64_t epoch = 0;
  uint64_t records = 0;
  Timestamp watermark = kMinTimestamp;
  uint64_t snapshot_lsn = 0;
  uint64_t generation_bound = 0;
  std::string catalog;
  bool failed = false;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (epoch_in_flight_ == 0) return false;
    if (snapshot_failed_) {
      failed = true;
      epoch = epoch_in_flight_;
      epoch_in_flight_ = 0;
    } else if (snapshot_joiners_done_ == num_joiners_) {
      epoch = epoch_in_flight_;
      records = snapshot_records_written_;
      watermark = barrier_watermark_;
      snapshot_lsn = barrier_lsn_;
      generation_bound = barrier_generation_;
      catalog = barrier_catalog_;
      epoch_in_flight_ = 0;
    } else {
      return false;  // still in flight
    }
  }
  if (failed) {
    // Abort: remove this epoch's partial snapshot files; the previous
    // manifest (if any) plus the un-truncated log still recover
    // everything.
    for (uint32_t j = 0; j < num_joiners_; ++j) {
      const std::string path =
          options_.wal_dir + "/" + SnapshotFileName(epoch, j);
      unlink(path.c_str());
      unlink((path + ".tmp").c_str());
    }
    snapshot_inflight_flag_.store(false, std::memory_order_release);
    return false;
  }

  // Commit: manifest via tmp+rename+dir-fsync, then truncate.
  std::string manifest = "oij-wal-manifest-v1\n";
  char line[128];
  std::snprintf(line, sizeof(line), "epoch=%" PRIu64 "\n", epoch);
  manifest += line;
  std::snprintf(line, sizeof(line), "snapshot_lsn=%" PRIu64 "\n",
                snapshot_lsn);
  manifest += line;
  std::snprintf(line, sizeof(line), "watermark=%" PRId64 "\n", watermark);
  manifest += line;
  std::snprintf(line, sizeof(line), "joiners=%u\n", num_joiners_);
  manifest += line;
  std::snprintf(line, sizeof(line), "shards=%u\n", num_shards_);
  manifest += line;
  std::snprintf(line, sizeof(line), "records=%" PRIu64 "\n", records);
  manifest += line;
  // Catalog lines (each starting with "query=", newline-terminated) ride
  // in the manifest verbatim; the reader collects them back out.
  manifest += catalog;
  std::snprintf(line, sizeof(line), "crc=%08x\n", Crc32c(manifest));
  manifest += line;

  const std::string final_path = options_.wal_dir + "/" + kWalManifestName;
  const std::string tmp_path = final_path + ".tmp";
  const int fd = open(tmp_path.c_str(),
                      O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  bool committed = false;
  if (fd >= 0) {
    const Status s =
        WriteFully(fd, manifest.data(), manifest.size(), tmp_path);
    if (s.ok() && fsync(fd) == 0) {
      close(fd);
      if (rename(tmp_path.c_str(), final_path.c_str()) == 0) {
        FsyncDir(options_.wal_dir);
        committed = true;
      }
    } else {
      close(fd);
    }
  }
  if (!committed) {
    unlink(tmp_path.c_str());
    snapshot_inflight_flag_.store(false, std::memory_order_release);
    return false;
  }

  TruncateThrough(generation_bound, epoch);
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    committed_epoch_ = epoch;
  }
  snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
  last_snapshot_records_.store(records, std::memory_order_relaxed);
  last_snapshot_mono_us_.store(MonotonicNowUs(),
                               std::memory_order_relaxed);
  snapshot_inflight_flag_.store(false, std::memory_order_release);
  return true;
}

void WalManager::TruncateThrough(uint64_t generation_bound,
                                 uint64_t keep_epoch) {
  DIR* d = opendir(options_.wal_dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    uint64_t generation = 0, epoch = 0;
    uint32_t shard = 0, joiner = 0;
    if (ParseWalSegmentName(name, &generation, &shard)) {
      if (generation <= generation_bound) doomed.push_back(name);
    } else if (ParseSnapshotFileName(name, &epoch, &joiner)) {
      if (epoch < keep_epoch) doomed.push_back(name);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      doomed.push_back(name);
    }
  }
  closedir(d);
  for (const std::string& name : doomed) {
    unlink((options_.wal_dir + "/" + name).c_str());
  }
  FsyncDir(options_.wal_dir);
}

void WalManager::RecordReplay(uint64_t records, uint64_t watermarks,
                              uint64_t torn, int64_t duration_us) {
  replay_records_.store(records, std::memory_order_relaxed);
  replay_watermarks_.store(watermarks, std::memory_order_relaxed);
  torn_records_.store(torn, std::memory_order_relaxed);
  recovery_duration_us_.store(duration_us, std::memory_order_relaxed);
}

WalStats WalManager::StatsSnapshot() const {
  WalStats stats;
  stats.enabled = true;
  stats.appended_records =
      appended_records_.load(std::memory_order_relaxed);
  stats.appended_bytes = appended_bytes_.load(std::memory_order_relaxed);
  stats.synced_records = synced_records_.load(std::memory_order_relaxed);
  stats.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  stats.fsync_failures = fsync_failures_.load(std::memory_order_relaxed);
  stats.short_writes = short_writes_.load(std::memory_order_relaxed);
  stats.snapshots_taken = snapshots_taken_.load(std::memory_order_relaxed);
  stats.snapshot_records =
      last_snapshot_records_.load(std::memory_order_relaxed);
  stats.last_snapshot_mono_us =
      last_snapshot_mono_us_.load(std::memory_order_relaxed);
  stats.replay_records = replay_records_.load(std::memory_order_relaxed);
  stats.replay_watermarks =
      replay_watermarks_.load(std::memory_order_relaxed);
  stats.torn_records = torn_records_.load(std::memory_order_relaxed);
  stats.recovery_duration_us =
      recovery_duration_us_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace oij
