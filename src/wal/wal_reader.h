#ifndef OIJ_WAL_WAL_READER_H_
#define OIJ_WAL_WAL_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "stream/generator.h"
#include "wal/wal.h"

namespace oij {

/// Parsed MANIFEST (see wal.h for the on-disk format).
struct WalManifest {
  uint64_t epoch = 0;
  uint64_t snapshot_lsn = 0;
  Timestamp watermark = kMinTimestamp;
  uint32_t joiners = 0;
  uint32_t shards = 0;
  uint64_t records = 0;  ///< total records across all snapshot files
  /// Serialized standing-query catalog at the snapshot barrier
  /// (QueryCatalog lines, newline-terminated; empty = single query).
  std::string catalog;
};

/// Reads and CRC-verifies a manifest. ParseError on any corruption —
/// a manifest is all-or-nothing (tmp+rename committed), so a bad one
/// means the directory is damaged, not torn.
Status ReadWalManifest(const std::string& path, WalManifest* out);

/// One replayable WAL record: a tuple, a watermark, or a standing-query
/// catalog change (kind discriminates; exactly one kind is set).
struct WalReplayRecord {
  enum class Kind : uint8_t { kTuple, kWatermark, kAddQuery, kRemoveQuery };
  uint64_t lsn = 0;
  Kind kind = Kind::kTuple;
  bool is_watermark = false;  ///< convenience mirror of kind==kWatermark
  Timestamp watermark = kMinTimestamp;
  StreamEvent event;
  std::string query_id;  ///< kAddQuery / kRemoveQuery
  QuerySpec query_spec;  ///< kAddQuery
};

/// Hardened, CRC-checked reader over one segment or snapshot file.
///
/// Next() yields valid records until the data runs out or the first
/// record fails validation (short header, oversized/undersized frame,
/// CRC mismatch, undecodable or non-replayable frame type) — after
/// which it permanently returns false and torn() reports why the file
/// ended. It never crashes and never yields a corrupt record; the fuzz
/// test (tests/wal_test.cc) holds it to that.
class WalFileReader {
 public:
  explicit WalFileReader(std::string path) : path_(std::move(path)) {}

  /// Loads the file. NotFound/Internal on I/O errors only — corrupt
  /// *content* is not an open error, it just limits what Next() yields.
  Status OpenFile();

  bool Next(WalReplayRecord* out);

  uint64_t records_read() const { return records_read_; }
  /// Byte offset just past the last *valid* record (a clean prefix
  /// boundary — the file may be truncated to it without tearing).
  uint64_t consumed() const { return consumed_; }
  /// True when the file ended mid-record or at a corrupt one.
  bool torn() const { return torn_; }
  /// Bytes not consumed as valid records (0 on a clean file).
  uint64_t torn_bytes() const { return buf_.size() - consumed_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string buf_;
  size_t pos_ = 0;
  size_t consumed_ = 0;  ///< end of last *valid* record
  uint64_t records_read_ = 0;
  bool torn_ = false;
  bool done_ = false;
};

/// Everything recovery needs, assembled from a WAL directory: the
/// latest committed snapshot (if any) and the lsn-ordered,
/// lsn-deduplicated log suffix past it.
struct WalReplayPlan {
  /// Per-joiner snapshot contents, concatenated in joiner order (probe
  /// tuples precede pending bases within each joiner — the order the
  /// engines wrote them).
  std::vector<StreamEvent> snapshot_events;
  uint64_t snapshot_records = 0;
  bool has_snapshot = false;
  /// Watermark in force at the snapshot barrier; re-signal after the
  /// snapshot events and before the log suffix.
  Timestamp restore_watermark = kMinTimestamp;
  /// Log records with lsn > snapshot_lsn, strictly lsn-ascending
  /// (replicated watermark/catalog records collapsed to one per lsn).
  std::vector<WalReplayRecord> records;
  /// Verbatim catalog text from the manifest (empty without a snapshot
  /// or when the snapshotted engine ran a single query).
  std::string catalog;
  uint64_t max_lsn = 0;      ///< highest lsn seen anywhere (0 = none)
  uint64_t torn_tails = 0;   ///< files that ended at a torn/corrupt record
  uint64_t torn_bytes = 0;   ///< bytes discarded across those tails

  /// --- Watermark-consistent cut (recover_to_watermark) ---
  ///
  /// Watermarks are replicated to every shard under one LSN, and
  /// kPerBatch syncs all shards before each broadcast; so the min over
  /// shards of "last watermark LSN present in that shard" is a
  /// *consistent global prefix*: every record with lsn <= the cut is in
  /// its shard's surviving file. Recovering exactly to this cut (and
  /// physically truncating past it — see TruncateLogPastLsn) gives a
  /// state a router can reason about: "durable through watermark W,
  /// nothing after", which is what makes crash rerouting exact.
  /// A shard with no watermark record contributes the snapshot barrier.
  uint64_t watermark_cut_lsn = 0;        ///< snapshot_lsn when no wm seen
  Timestamp watermark_cut = kMinTimestamp;  ///< wm value at the cut
};

/// Scans `dir` and builds the replay plan. Fails (ParseError /
/// FailedPrecondition) only when a *committed* artifact is inconsistent
/// — manifest CRC mismatch, missing snapshot file, snapshot record
/// count not matching the manifest; torn log tails are expected crash
/// damage and are absorbed into `torn_*`, not errors. An empty or
/// absent directory yields an empty plan and OK.
Status BuildReplayPlan(const std::string& dir, WalReplayPlan* out);

/// Physically truncates every segment in `dir` to its last record with
/// lsn <= `cut_lsn` (torn/corrupt tails go too). Required after a
/// watermark-cut recovery: a later recovery of the same directory must
/// not resurrect past-the-cut records the router already replayed
/// elsewhere — LSN-dedup only collapses *equal* LSNs, it cannot know a
/// record was logically discarded. Returns the number of records
/// removed via `*dropped_records_out` (may be null).
Status TruncateLogPastLsn(const std::string& dir, uint64_t cut_lsn,
                          uint64_t* dropped_records_out);

}  // namespace oij

#endif  // OIJ_WAL_WAL_READER_H_
