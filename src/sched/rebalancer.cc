#include "sched/rebalancer.h"

#include <algorithm>
#include <cmath>

namespace oij {

std::vector<double> Rebalancer::JoinerWorkloads(const Schedule& schedule,
                                                const LoadStats& stats) {
  std::vector<double> w(schedule.num_joiners, 0.0);
  for (uint32_t p = 0; p < schedule.num_partitions(); ++p) {
    const auto& team = schedule.teams[p];
    if (team.empty()) continue;
    const double share =
        stats.count(p) / static_cast<double>(team.size());
    for (uint32_t j : team) w[j] += share;
  }
  return w;
}

double Rebalancer::Unbalancedness(const std::vector<double>& workloads) {
  if (workloads.empty()) return 0.0;
  double mean = 0.0;
  for (double w : workloads) mean += w;
  mean /= static_cast<double>(workloads.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (double w : workloads) var += (w - mean) * (w - mean);
  var /= static_cast<double>(workloads.size());
  return std::sqrt(var) / mean;
}

std::shared_ptr<const Schedule> Rebalancer::Rebalance(
    std::shared_ptr<const Schedule> current, LoadStats* stats) const {
  auto next = std::make_shared<Schedule>(*current);
  next->version = current->version + 1;
  bool changed = false;

  for (uint32_t move = 0; move < config_.max_moves; ++move) {
    const std::vector<double> w = JoinerWorkloads(*next, *stats);
    double before = Unbalancedness(w);
    if (before <= 0.0) break;

    // Step 1: the most and least loaded joiners (Alg. 3 line 3-4).
    uint32_t j_max = 0, j_min = 0;
    for (uint32_t j = 1; j < next->num_joiners; ++j) {
      if (w[j] > w[j_max]) j_max = j;
      if (w[j] < w[j_min]) j_min = j;
    }
    if (j_max == j_min) break;

    // Step 2: partitions of J_max by descending load (the priority queue
    // PQ of Alg. 3 line 5).
    std::vector<uint32_t> candidates;
    for (uint32_t p = 0; p < next->num_partitions(); ++p) {
      const auto& team = next->teams[p];
      if (std::find(team.begin(), team.end(), j_max) != team.end() &&
          std::find(team.begin(), team.end(), j_min) == team.end()) {
        candidates.push_back(p);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](uint32_t a, uint32_t b) {
                return stats->count(a) > stats->count(b);
              });

    // Step 3: replicate the hottest candidate that actually improves the
    // balance by more than δ (Alg. 3 lines 6-10).
    bool accepted = false;
    for (uint32_t p : candidates) {
      auto& team = next->teams[p];
      team.insert(std::upper_bound(team.begin(), team.end(), j_min), j_min);
      const double after =
          Unbalancedness(JoinerWorkloads(*next, *stats));
      if (before - after > config_.improvement_threshold) {
        accepted = true;
        changed = true;
        break;
      }
      team.erase(std::find(team.begin(), team.end(), j_min));
    }
    // Step 4: stop when the schedule no longer changes (Alg. 3 line 11-12).
    if (!accepted) break;
  }

  // Step 5: decay the statistics (Alg. 3 line 13).
  stats->Decay(config_.decay);

  if (!changed) return current;
  return next;
}

}  // namespace oij
