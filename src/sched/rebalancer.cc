#include "sched/rebalancer.h"

#include <algorithm>
#include <cmath>

namespace oij {

std::vector<double> Rebalancer::JoinerWorkloads(const Schedule& schedule,
                                                const LoadStats& stats) {
  std::vector<double> w(schedule.num_joiners, 0.0);
  for (uint32_t p = 0; p < schedule.num_partitions(); ++p) {
    const auto& team = schedule.teams[p];
    if (team.empty()) continue;
    const double share =
        stats.count(p) / static_cast<double>(team.size());
    for (uint32_t j : team) w[j] += share;
  }
  return w;
}

double Rebalancer::Unbalancedness(const std::vector<double>& workloads) {
  if (workloads.empty()) return 0.0;
  double mean = 0.0;
  for (double w : workloads) mean += w;
  mean /= static_cast<double>(workloads.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (double w : workloads) var += (w - mean) * (w - mean);
  var /= static_cast<double>(workloads.size());
  return std::sqrt(var) / mean;
}

std::shared_ptr<const Schedule> Rebalancer::Rebalance(
    std::shared_ptr<const Schedule> current, LoadStats* stats,
    RebalanceTelemetry* telemetry) const {
  auto next = std::make_shared<Schedule>(*current);
  next->version = current->version + 1;
  bool changed = false;

  const bool topo_aware = config_.joiner_node.size() == next->num_joiners;

  // Step 3 of each move: replicate the hottest partition of j_max that
  // actually improves the balance by more than δ when the replica lands
  // on `target` (Alg. 3 lines 5-10, parameterized over the target).
  const auto try_target = [&](uint32_t j_max, uint32_t target,
                              double before) {
    std::vector<uint32_t> candidates;
    for (uint32_t p = 0; p < next->num_partitions(); ++p) {
      const auto& team = next->teams[p];
      if (std::find(team.begin(), team.end(), j_max) != team.end() &&
          std::find(team.begin(), team.end(), target) == team.end()) {
        candidates.push_back(p);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](uint32_t a, uint32_t b) {
                return stats->count(a) > stats->count(b);
              });
    for (uint32_t p : candidates) {
      auto& team = next->teams[p];
      team.insert(std::upper_bound(team.begin(), team.end(), target),
                  target);
      const double after = Unbalancedness(JoinerWorkloads(*next, *stats));
      if (before - after > config_.improvement_threshold) return true;
      team.erase(std::find(team.begin(), team.end(), target));
    }
    return false;
  };

  for (uint32_t move = 0; move < config_.max_moves; ++move) {
    const std::vector<double> w = JoinerWorkloads(*next, *stats);
    double before = Unbalancedness(w);
    if (before <= 0.0) break;

    // Step 1: the most and least loaded joiners (Alg. 3 line 3-4).
    uint32_t j_max = 0, j_min = 0;
    for (uint32_t j = 1; j < next->num_joiners; ++j) {
      if (w[j] > w[j_max]) j_max = j;
      if (w[j] < w[j_min]) j_min = j;
    }
    if (j_max == j_min) break;

    // Step 2: choose replication targets. Flat topology: the global
    // least-loaded joiner, exactly the paper's Alg. 3. Topology-aware:
    // the least-loaded joiner on j_max's own node first, falling back
    // to the global one only when no same-node move clears δ —
    // cross-socket replication is the last resort, not the default.
    std::vector<uint32_t> targets;
    if (topo_aware) {
      const uint32_t home = config_.joiner_node[j_max];
      uint32_t local = j_max;
      for (uint32_t j = 0; j < next->num_joiners; ++j) {
        if (j == j_max || config_.joiner_node[j] != home) continue;
        if (local == j_max || w[j] < w[local]) local = j;
      }
      if (local != j_max) targets.push_back(local);
      if (j_min != j_max &&
          (targets.empty() || targets.front() != j_min)) {
        targets.push_back(j_min);
      }
    } else {
      targets.push_back(j_min);
    }

    bool accepted = false;
    for (uint32_t target : targets) {
      if (try_target(j_max, target, before)) {
        accepted = true;
        changed = true;
        if (telemetry != nullptr) {
          ++telemetry->moves;
          if (topo_aware &&
              config_.joiner_node[target] != config_.joiner_node[j_max]) {
            ++telemetry->cross_node_moves;
          }
        }
        break;
      }
    }
    // Step 4: stop when the schedule no longer changes (Alg. 3 line 11-12).
    if (!accepted) break;
  }

  // Step 5: decay the statistics (Alg. 3 line 13).
  stats->Decay(config_.decay);

  if (!changed) return current;
  return next;
}

}  // namespace oij
