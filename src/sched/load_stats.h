#ifndef OIJ_SCHED_LOAD_STATS_H_
#define OIJ_SCHED_LOAD_STATS_H_

#include <cstdint>
#include <vector>

namespace oij {

/// Per-partition load statistics collected at the router while it assigns
/// tuples. Counts decay geometrically at each rebalance (paper Alg. 3
/// line 13: ∀k |x_k| = λ × |x_k|) so the schedule tracks the *recent*
/// distribution — the property that lets Scale-OIJ adapt to the rotating
/// hot set of Fig 14.
///
/// Owned and mutated by a single thread (the router); the rebalancer runs
/// on that same thread between batches, so no synchronization is needed.
class LoadStats {
 public:
  explicit LoadStats(uint32_t num_partitions)
      : counts_(num_partitions, 0.0) {}

  void Add(uint32_t partition, double n = 1.0) { counts_[partition] += n; }

  void Decay(double lambda) {
    for (double& c : counts_) c *= lambda;
  }

  double count(uint32_t partition) const { return counts_[partition]; }
  const std::vector<double>& counts() const { return counts_; }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(counts_.size());
  }

  double Total() const {
    double t = 0;
    for (double c : counts_) t += c;
    return t;
  }

 private:
  std::vector<double> counts_;
};

}  // namespace oij

#endif  // OIJ_SCHED_LOAD_STATS_H_
