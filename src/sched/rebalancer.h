#ifndef OIJ_SCHED_REBALANCER_H_
#define OIJ_SCHED_REBALANCER_H_

#include <memory>
#include <vector>

#include "sched/load_stats.h"
#include "sched/partition_table.h"

namespace oij {

/// Greedy dynamic re-scheduler — paper Algorithm 3.
///
/// The exact partition-to-team assignment problem is NP-hard; the paper's
/// heuristic repeatedly replicates the hottest partition of the most
/// loaded joiner onto the least loaded joiner while that decreases the
/// estimated unbalancedness by at least `improvement_threshold` (δ).
/// Estimated joiner workload follows Eq. 3: a partition's load divides
/// evenly among its virtual-team members.
struct RebalanceConfig {
  /// δ: minimum relative unbalancedness improvement to accept a move.
  double improvement_threshold = 0.01;
  /// λ: statistics decay applied after each rebalance (Alg. 3 line 13).
  double decay = 0.5;
  /// Safety bound on greedy iterations per rebalance.
  uint32_t max_moves = 64;

  /// NUMA node ordinal of each joiner (from the engine's placement
  /// plan; empty = flat topology, the legacy behavior). When set,
  /// replication prefers a target on the overloaded joiner's own node:
  /// the least-loaded *same-node* joiner is tried first, and the global
  /// least-loaded joiner is considered only when no same-node move
  /// clears δ — i.e. cross-socket replication only once intra-socket
  /// headroom is exhausted. Team probes of a replicated partition read
  /// every member's index, so keeping teams socket-local is what keeps
  /// the probe traffic socket-local.
  std::vector<uint32_t> joiner_node;
};

/// What one Rebalance() call did (NUMA observability).
struct RebalanceTelemetry {
  uint64_t moves = 0;             ///< replications accepted
  uint64_t cross_node_moves = 0;  ///< of those, onto a different node
};

class Rebalancer {
 public:
  explicit Rebalancer(const RebalanceConfig& config = RebalanceConfig())
      : config_(config) {}

  /// Estimated per-joiner workload under `schedule` (Eq. 3):
  /// W_i = Σ_{p owned by i} count(p) / |team(p)|.
  static std::vector<double> JoinerWorkloads(const Schedule& schedule,
                                             const LoadStats& stats);

  /// Unbalancedness of a workload vector (Eq. 2, interpreted as the
  /// coefficient of variation: stddev(W) / mean(W); the literal formula in
  /// the paper sums signed deviations, which is identically zero, so the
  /// intended dispersion measure is used).
  static double Unbalancedness(const std::vector<double>& workloads);

  /// Runs Algorithm 3. Returns the improved schedule, or `current` itself
  /// (same pointer) when no move helps. Decays `stats` in place.
  /// `telemetry` (optional) receives the accepted / cross-node move
  /// counts of this call.
  std::shared_ptr<const Schedule> Rebalance(
      std::shared_ptr<const Schedule> current, LoadStats* stats,
      RebalanceTelemetry* telemetry = nullptr) const;

  const RebalanceConfig& config() const { return config_; }

 private:
  RebalanceConfig config_;
};

}  // namespace oij

#endif  // OIJ_SCHED_REBALANCER_H_
