#include "sched/partition_table.h"

namespace oij {

std::shared_ptr<const Schedule> Schedule::MakeStatic(uint32_t num_partitions,
                                                     uint32_t num_joiners) {
  auto s = std::make_shared<Schedule>();
  s->version = 0;
  s->num_joiners = num_joiners;
  s->teams.resize(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    s->teams[p] = {p % num_joiners};
  }
  return s;
}

}  // namespace oij
