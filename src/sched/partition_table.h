#ifndef OIJ_SCHED_PARTITION_TABLE_H_
#define OIJ_SCHED_PARTITION_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace oij {

/// One key-partition schedule: partition -> virtual team (paper §V-B1).
///
/// Keys hash into `num_partitions` contiguous hash ranges; each partition
/// is owned by a *team* of joiners. Every team member writes its own index
/// (tuples of the partition are spread across members) and reads all team
/// members' indexes when joining — the SWMR index makes that safe.
///
/// Rebalancing only ever *adds* members to a team (replication, never
/// migration), mirroring the paper: "we only allow sharing the ownership
/// of a partition rather than transferring". Consequently a joiner that
/// held a partition under schedule v remains in its team under v+1, which
/// keeps tuples already queued to it joinable and makes schedule changes
/// correct without draining.
struct Schedule {
  uint64_t version = 0;
  uint32_t num_joiners = 0;
  /// teams[p] = sorted list of joiner ids sharing partition p.
  std::vector<std::vector<uint32_t>> teams;

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(teams.size());
  }

  /// The static one-joiner-per-partition schedule Key-OIJ uses, and the
  /// starting point for Scale-OIJ's dynamic schedule.
  static std::shared_ptr<const Schedule> MakeStatic(uint32_t num_partitions,
                                                    uint32_t num_joiners);
};

/// Atomically published schedule (paper: "atomically replaced after a new
/// schedule"). The router publishes; router and joiners snapshot.
class PartitionTable {
 public:
  PartitionTable(uint32_t num_partitions, uint32_t num_joiners)
      : current_(Schedule::MakeStatic(num_partitions, num_joiners)) {}

  std::shared_ptr<const Schedule> Snapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  void Publish(std::shared_ptr<const Schedule> schedule) {
    current_.store(std::move(schedule), std::memory_order_release);
  }

  /// Partition of a key (shared by every component so routing and stats
  /// agree).
  static uint32_t PartitionOf(Key key, uint32_t num_partitions) {
    return RangePartition(Mix64(key), num_partitions);
  }

 private:
  std::atomic<std::shared_ptr<const Schedule>> current_;
};

}  // namespace oij

#endif  // OIJ_SCHED_PARTITION_TABLE_H_
