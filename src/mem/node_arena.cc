#include "mem/node_arena.h"

#include <cassert>
#include <new>

#include "topo/topology.h"

namespace oij {

namespace {
/// Single-writer counter bump: only the owner thread mutates, metrics
/// threads just read, so a relaxed load+store suffices — no locked RMW
/// on the allocation hot path.
inline void Bump(std::atomic<uint64_t>& c, uint64_t delta) {
  c.store(c.load(std::memory_order_relaxed) + delta,
          std::memory_order_relaxed);
}
inline void Drop(std::atomic<uint64_t>& c, uint64_t delta) {
  c.store(c.load(std::memory_order_relaxed) - delta,
          std::memory_order_relaxed);
}
}  // namespace

NodeArena::~NodeArena() {
  for (Slab* slab : all_slabs_) {
    ::operator delete(slab, std::align_val_t{kSlabBytes});
  }
}

void* NodeArena::Allocate(size_t bytes) {
  assert(bytes > 0);
  Bump(allocations_, 1);
  Bump(live_nodes_, 1);
  if (bytes > kMaxClassBytes) {
    Bump(oversize_allocs_, 1);
    return ::operator new(bytes);
  }
  const size_t cls = ClassIndex(bytes);
  const uint32_t class_bytes = static_cast<uint32_t>((cls + 1) * kGranule);
  Slab* slab = usable_[cls];
  if (slab == nullptr) slab = TakeSlab(class_bytes);

  void* block;
  if (slab->free_head != nullptr) {
    block = slab->free_head;
    slab->free_head = *static_cast<void**>(block);
  } else {
    block = reinterpret_cast<char*>(slab) + kDataOffset + slab->bump;
    slab->bump += class_bytes;
  }
  ++slab->live;
  if (slab->free_head == nullptr &&
      kDataOffset + slab->bump + class_bytes > kSlabBytes) {
    UnlinkUsable(cls, slab);  // full: neither free blocks nor bump room
  }
  return block;
}

void NodeArena::Deallocate(void* ptr, size_t bytes) {
  Drop(live_nodes_, 1);
  if (bytes > kMaxClassBytes) {
    ::operator delete(ptr);
    return;
  }
  Slab* slab = SlabOf(ptr);
  const size_t cls = ClassIndex(slab->class_bytes);
  *static_cast<void**>(ptr) = slab->free_head;
  slab->free_head = ptr;
  --slab->live;
  if (!slab->in_usable) LinkUsable(cls, slab);
  if (slab->live == 0) {
    // Fully dead: drop the whole free list at once and make the slab
    // available to every size class.
    UnlinkUsable(cls, slab);
    slab->free_head = nullptr;
    slab->bump = 0;
    slab->class_bytes = 0;
    slab->prev = nullptr;
    slab->next = empty_;
    empty_ = slab;
    Bump(slab_recycles_, 1);
  }
}

void* NodeArena::AcquireSlab() {
  Bump(slab_loans_, 1);
  Slab* slab = empty_;
  if (slab != nullptr) {
    empty_ = slab->next;
  } else {
    slab = new (NewRawSlab()) Slab();
    all_slabs_.push_back(slab);
    Bump(reserved_bytes_, kSlabBytes);
  }
  // The borrower may overwrite the whole slab, header included;
  // ReleaseSlab() rebuilds it before the slab re-enters the pool.
  return slab;
}

void NodeArena::ReleaseSlab(void* slab) {
  Slab* s = new (slab) Slab();
  s->next = empty_;
  empty_ = s;
}

NodeArena::Slab* NodeArena::TakeSlab(uint32_t class_bytes) {
  Slab* slab = empty_;
  if (slab != nullptr) {
    empty_ = slab->next;
    slab->next = nullptr;
  } else {
    slab = new (NewRawSlab()) Slab();
    all_slabs_.push_back(slab);
    Bump(reserved_bytes_, kSlabBytes);
  }
  slab->class_bytes = class_bytes;
  LinkUsable(ClassIndex(class_bytes), slab);
  return slab;
}

void* NodeArena::NewRawSlab() {
  void* raw = ::operator new(kSlabBytes, std::align_val_t{kSlabBytes});
  if (numa_node_ >= 0) {
    // Slabs are kSlabBytes-self-aligned, so the bind covers whole pages.
    // Best-effort: on failure (no SYS_mbind, invalid node) the pages are
    // placed by first touch — which is the owning joiner's pinned
    // thread, landing them on the same node anyway.
    if (TryBindMemoryToNode(raw, kSlabBytes, numa_node_)) {
      Bump(numa_bound_slabs_, 1);
    }
  }
  return raw;
}

void NodeArena::LinkUsable(size_t cls, Slab* slab) {
  slab->prev = nullptr;
  slab->next = usable_[cls];
  if (usable_[cls] != nullptr) usable_[cls]->prev = slab;
  usable_[cls] = slab;
  slab->in_usable = true;
}

void NodeArena::UnlinkUsable(size_t cls, Slab* slab) {
  if (!slab->in_usable) return;
  if (slab->prev != nullptr) {
    slab->prev->next = slab->next;
  } else {
    usable_[cls] = slab->next;
  }
  if (slab->next != nullptr) slab->next->prev = slab->prev;
  slab->prev = nullptr;
  slab->next = nullptr;
  slab->in_usable = false;
}

NodeArena::Stats NodeArena::snapshot() const {
  Stats s;
  s.reserved_bytes = reserved_bytes_.load(std::memory_order_relaxed);
  s.live_nodes = live_nodes_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.slab_recycles = slab_recycles_.load(std::memory_order_relaxed);
  s.oversize_allocs = oversize_allocs_.load(std::memory_order_relaxed);
  s.slab_loans = slab_loans_.load(std::memory_order_relaxed);
  s.numa_bound_slabs = numa_bound_slabs_.load(std::memory_order_relaxed);
  return s;
}

size_t NodeArena::EmptySlabCount() const {
  size_t n = 0;
  for (Slab* slab = empty_; slab != nullptr; slab = slab->next) ++n;
  return n;
}

}  // namespace oij
