#ifndef OIJ_MEM_NODE_ARENA_H_
#define OIJ_MEM_NODE_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace oij {

/// Slab arena for skip-list nodes — the memory-management layer behind
/// `EngineOptions::pooled_alloc` (DESIGN.md "Memory management").
///
/// Why: at steady state every probe tuple costs one global-heap
/// `::operator new` on insert and one free on evict, so the allocator is
/// touched twice per tuple on the hottest path in the system, and the
/// nodes of one second-layer end up scattered across the heap. The arena
/// replaces both touches with a bump pointer / free-list pop inside
/// 64 KiB cache-line-aligned slabs owned by a single joiner, so
/// consecutive inserts of a key land in adjacent memory and eviction
/// recycles the same hot lines.
///
/// Layout. Each slab starts with a 64-byte header followed by blocks of
/// one size class (multiples of 16 bytes up to kMaxClassBytes). Slabs are
/// allocated aligned to their own size, so a block's slab header is
/// recovered by masking the block address — no per-block metadata at all.
/// Freed blocks go on their *own slab's* free list (the first 8 bytes of
/// the dead block hold the link), which is what makes whole-slab
/// recycling possible: when a slab's live count reaches zero its entire
/// free list is dropped wholesale and the slab returns to a shared empty
/// pool, reusable by any size class. Requests above kMaxClassBytes fall
/// through to the global heap (counted, never expected on the hot path).
///
/// Concurrency contract: single owner. Exactly one thread may call
/// Allocate()/Deallocate() — the same SWMR writer that owns the skip
/// lists living in the arena. Under EBR this includes the drain of
/// retired runs (ReclaimSome is owner-called; the EpochManager destructor
/// runs after the joiners have been joined). snapshot() may be called
/// from any thread (metrics sampling); its counters are relaxed atomics.
///
/// Lifetime contract: the arena must outlive every skip list allocated
/// from it *and* the EpochManager holding retired runs of its nodes —
/// destroy order: lists, then the epoch manager, then the arena.
class NodeArena {
 public:
  static constexpr size_t kSlabBytes = 64 * 1024;
  static constexpr size_t kGranule = 16;
  static constexpr size_t kMaxClassBytes = 256;

  NodeArena() = default;
  ~NodeArena();

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Binds every *subsequently* allocated slab to OS NUMA node `node`
  /// (best-effort mbind; -1 restores the default first-touch policy).
  /// Engines call this at construction, before the owner thread exists,
  /// so the joiner's time-travel index grows on its own socket. Slabs
  /// already held keep their placement.
  void SetNumaNode(int node) { numa_node_ = node; }
  int numa_node() const { return numa_node_; }

  /// Returns 16-byte-aligned storage for `bytes` (owner thread only).
  void* Allocate(size_t bytes);

  /// Returns a block obtained from Allocate(`bytes`) (owner thread only).
  /// `bytes` must match the allocation request (the skip list recomputes
  /// it from the node height).
  void Deallocate(void* ptr, size_t bytes);

  /// Usable bytes of a loaned slab (see AcquireSlab).
  static constexpr size_t kSlabDataBytes = kSlabBytes;

  /// Loans one whole kSlabBytes-aligned slab for bulk column staging
  /// (owner thread only) — the backing store of the columnar batch
  /// kernels' SoA buffers (src/col/). The borrower owns all kSlabBytes
  /// (including the header region: the header is rebuilt on release) and
  /// must never pass addresses inside a loaned slab to Deallocate().
  /// Loans draw from the shared empty pool first, so column staging
  /// recycles the same hot slabs eviction just drained.
  void* AcquireSlab();

  /// Returns a slab obtained from AcquireSlab() to the empty pool
  /// (owner thread only), where any size class — or a later loan — can
  /// reuse it.
  void ReleaseSlab(void* slab);

  /// Point-in-time counters; safe from any thread.
  struct Stats {
    uint64_t reserved_bytes = 0;   ///< slab bytes held (incl. empty pool)
    uint64_t live_nodes = 0;       ///< allocations minus deallocations
    uint64_t allocations = 0;      ///< cumulative Allocate() calls
    uint64_t slab_recycles = 0;    ///< fully-dead slabs returned to pool
    uint64_t oversize_allocs = 0;  ///< requests above kMaxClassBytes
    uint64_t slab_loans = 0;       ///< cumulative AcquireSlab() calls
    uint64_t numa_bound_slabs = 0;  ///< fresh slabs mbind succeeded on
  };
  Stats snapshot() const;

  /// Number of slabs currently in the shared empty pool (test hook).
  size_t EmptySlabCount() const;

 private:
  struct alignas(64) Slab {
    Slab* next = nullptr;        ///< usable-list / empty-pool link
    Slab* prev = nullptr;        ///< usable-list back link
    void* free_head = nullptr;   ///< per-slab block free list
    uint32_t class_bytes = 0;    ///< block size this slab currently serves
    uint32_t bump = 0;           ///< byte offset of the next virgin block
    uint32_t live = 0;           ///< blocks handed out and not yet freed
    bool in_usable = false;      ///< linked into its class's usable list
  };
  static_assert(sizeof(Slab) == 64, "slab header must stay one cache line");

  static constexpr size_t kNumClasses = kMaxClassBytes / kGranule;
  static constexpr size_t kDataOffset = sizeof(Slab);

  static size_t ClassIndex(size_t bytes) {
    return (bytes + kGranule - 1) / kGranule - 1;
  }
  static Slab* SlabOf(void* block) {
    return reinterpret_cast<Slab*>(reinterpret_cast<uintptr_t>(block) &
                                   ~(static_cast<uintptr_t>(kSlabBytes) - 1));
  }

  Slab* TakeSlab(uint32_t class_bytes);
  void* NewRawSlab();
  void LinkUsable(size_t cls, Slab* slab);
  void UnlinkUsable(size_t cls, Slab* slab);

  Slab* usable_[kNumClasses] = {};  ///< slabs with room, per class
  Slab* empty_ = nullptr;           ///< fully-dead slabs, any class
  std::vector<Slab*> all_slabs_;    ///< ownership, for the destructor

  std::atomic<uint64_t> reserved_bytes_{0};
  std::atomic<uint64_t> live_nodes_{0};
  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> slab_recycles_{0};
  std::atomic<uint64_t> oversize_allocs_{0};
  std::atomic<uint64_t> slab_loans_{0};
  std::atomic<uint64_t> numa_bound_slabs_{0};

  /// OS node fresh slabs are mbind-bound to; -1 = first-touch default.
  int numa_node_ = -1;
};

}  // namespace oij

#endif  // OIJ_MEM_NODE_ARENA_H_
