#include "ebr/epoch_manager.h"

#include <cstdio>
#include <cstdlib>

namespace oij {

EpochManager::EpochManager(uint32_t max_threads)
    : max_threads_(max_threads), slots_(max_threads) {}

EpochManager::~EpochManager() {
  // Free any leftovers; by contract no readers are active at destruction.
  for (uint32_t s = 0; s < max_threads_; ++s) {
    if (slots_[s].in_use.load(std::memory_order_acquire)) {
      ReclaimAllUnsafe(s);
    }
  }
}

uint32_t EpochManager::RegisterThread() {
  uint32_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= max_threads_) {
    std::fprintf(stderr, "EpochManager: slot capacity %u exhausted\n",
                 max_threads_);
    std::abort();
  }
  slots_[slot].in_use.store(true, std::memory_order_release);
  return slot;
}

void EpochManager::Enter(uint32_t slot) {
  Slot& s = slots_[slot];
  // seq_cst so the pin is visible to the writer before we dereference
  // anything: a plain release store could be reordered after our loads.
  s.local_epoch.store(global_epoch_.load(std::memory_order_relaxed),
                      std::memory_order_seq_cst);
}

void EpochManager::Exit(uint32_t slot) {
  slots_[slot].local_epoch.store(kQuiescent, std::memory_order_release);
}

void EpochManager::Retire(uint32_t slot, std::function<void()> deleter) {
  Slot& s = slots_[slot];
  s.retired.push_back(
      {std::move(deleter), global_epoch_.load(std::memory_order_acquire)});
  s.pending.fetch_add(1, std::memory_order_relaxed);
}

void EpochManager::RetireBatch(uint32_t slot, void* head, size_t count,
                               DrainFn drain, void* ctx) {
  if (count == 0) return;
  Slot& s = slots_[slot];
  s.retired_runs.push_back(
      {head, count, drain, ctx,
       global_epoch_.load(std::memory_order_acquire)});
  s.pending.fetch_add(count, std::memory_order_relaxed);
}

void EpochManager::TryAdvanceEpoch() {
  const uint64_t e = global_epoch_.load(std::memory_order_acquire);
  const uint32_t n = next_slot_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n && i < max_threads_; ++i) {
    const uint64_t local = slots_[i].local_epoch.load(std::memory_order_seq_cst);
    if (local != kQuiescent && local < e) return;  // straggler
  }
  // Single increment; concurrent callers may both try, CAS keeps it exact.
  uint64_t expected = e;
  global_epoch_.compare_exchange_strong(expected, e + 1,
                                        std::memory_order_acq_rel);
}

size_t EpochManager::ReclaimSome(uint32_t slot) {
  TryAdvanceEpoch();
  const uint64_t e = global_epoch_.load(std::memory_order_acquire);
  Slot& s = slots_[slot];
  size_t freed = 0;
  size_t kept = 0;
  auto& retired = s.retired;
  for (size_t i = 0; i < retired.size(); ++i) {
    if (retired[i].epoch + 2 <= e) {
      retired[i].deleter();
      ++freed;
    } else {
      if (kept != i) retired[kept] = std::move(retired[i]);
      ++kept;
    }
  }
  retired.resize(kept);
  // Runs are appended in epoch order, so the ripe ones form a prefix —
  // and draining front-to-back is what keeps chains that end inside a
  // later-retired run safe to walk.
  auto& runs = s.retired_runs;
  size_t drained = 0;
  while (drained < runs.size() && runs[drained].epoch + 2 <= e) {
    const RetiredRun& run = runs[drained];
    run.drain(run.head, run.count, run.ctx);
    freed += run.count;
    ++drained;
  }
  if (drained > 0) runs.erase(runs.begin(), runs.begin() + drained);
  if (freed > 0) s.pending.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

size_t EpochManager::ReclaimAllUnsafe(uint32_t slot) {
  Slot& s = slots_[slot];
  size_t freed = s.retired.size();
  for (auto& r : s.retired) r.deleter();
  s.retired.clear();
  for (const RetiredRun& run : s.retired_runs) {
    run.drain(run.head, run.count, run.ctx);
    freed += run.count;
  }
  s.retired_runs.clear();
  if (freed > 0) s.pending.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

size_t EpochManager::PendingCount(uint32_t slot) const {
  return slots_[slot].pending.load(std::memory_order_relaxed);
}

size_t EpochManager::PendingCountAll() const {
  const uint32_t n = next_slot_.load(std::memory_order_acquire);
  size_t total = 0;
  for (uint32_t i = 0; i < n && i < max_threads_; ++i) {
    total += slots_[i].pending.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace oij
