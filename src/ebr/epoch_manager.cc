#include "ebr/epoch_manager.h"

#include <cstdio>
#include <cstdlib>

namespace oij {

EpochManager::EpochManager(uint32_t max_threads)
    : max_threads_(max_threads), slots_(max_threads) {}

EpochManager::~EpochManager() {
  // Free any leftovers; by contract no readers are active at destruction.
  for (uint32_t s = 0; s < max_threads_; ++s) {
    if (slots_[s].in_use.load(std::memory_order_acquire)) {
      ReclaimAllUnsafe(s);
    }
  }
}

uint32_t EpochManager::RegisterThread() {
  uint32_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= max_threads_) {
    std::fprintf(stderr, "EpochManager: slot capacity %u exhausted\n",
                 max_threads_);
    std::abort();
  }
  slots_[slot].in_use.store(true, std::memory_order_release);
  return slot;
}

void EpochManager::Enter(uint32_t slot) {
  Slot& s = slots_[slot];
  // seq_cst so the pin is visible to the writer before we dereference
  // anything: a plain release store could be reordered after our loads.
  s.local_epoch.store(global_epoch_.load(std::memory_order_relaxed),
                      std::memory_order_seq_cst);
}

void EpochManager::Exit(uint32_t slot) {
  slots_[slot].local_epoch.store(kQuiescent, std::memory_order_release);
}

void EpochManager::Retire(uint32_t slot, std::function<void()> deleter) {
  slots_[slot].retired.push_back(
      {std::move(deleter), global_epoch_.load(std::memory_order_acquire)});
}

void EpochManager::TryAdvanceEpoch() {
  const uint64_t e = global_epoch_.load(std::memory_order_acquire);
  const uint32_t n = next_slot_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n && i < max_threads_; ++i) {
    const uint64_t local = slots_[i].local_epoch.load(std::memory_order_seq_cst);
    if (local != kQuiescent && local < e) return;  // straggler
  }
  // Single increment; concurrent callers may both try, CAS keeps it exact.
  uint64_t expected = e;
  global_epoch_.compare_exchange_strong(expected, e + 1,
                                        std::memory_order_acq_rel);
}

size_t EpochManager::ReclaimSome(uint32_t slot) {
  TryAdvanceEpoch();
  const uint64_t e = global_epoch_.load(std::memory_order_acquire);
  auto& retired = slots_[slot].retired;
  size_t freed = 0;
  size_t kept = 0;
  for (size_t i = 0; i < retired.size(); ++i) {
    if (retired[i].epoch + 2 <= e) {
      retired[i].deleter();
      ++freed;
    } else {
      if (kept != i) retired[kept] = std::move(retired[i]);
      ++kept;
    }
  }
  retired.resize(kept);
  return freed;
}

size_t EpochManager::ReclaimAllUnsafe(uint32_t slot) {
  auto& retired = slots_[slot].retired;
  size_t freed = retired.size();
  for (auto& r : retired) r.deleter();
  retired.clear();
  return freed;
}

size_t EpochManager::PendingCount(uint32_t slot) const {
  return slots_[slot].retired.size();
}

}  // namespace oij
