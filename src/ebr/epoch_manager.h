#ifndef OIJ_EBR_EPOCH_MANAGER_H_
#define OIJ_EBR_EPOCH_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace oij {

/// Epoch-based memory reclamation (EBR).
///
/// The SWMR time-travel index lets a joiner's teammates traverse its
/// skip-lists lock-free while the owner inserts *and evicts*. Insertion is
/// safe by release/acquire publication alone (paper Algorithm 2), but
/// eviction must not free nodes a concurrent reader may still dereference.
/// EBR solves this: readers pin the global epoch while inside a read-side
/// critical section; a retired node is only freed once every pinned epoch
/// has moved past the epoch in which it was retired.
///
/// Usage:
///   - Each participating thread calls RegisterThread() once and keeps the
///     returned slot id.
///   - Readers wrap traversals in `EpochGuard guard(mgr, slot);`.
///   - The single writer calls Retire() for unlinked nodes and
///     ReclaimSome() periodically (both are cheap).
///
/// The implementation is the classic 3-epoch scheme: nodes retired in epoch
/// e are safe to free once the global epoch has advanced to e + 2, because
/// any reader active during e has exited or observed a newer epoch.
class EpochManager {
 public:
  /// `max_threads` bounds the number of RegisterThread() calls.
  explicit EpochManager(uint32_t max_threads = 128);
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Claims a reader/writer slot. Thread-safe. Aborts if slots exhausted.
  uint32_t RegisterThread();

  /// Enters a read-side critical section on `slot`.
  void Enter(uint32_t slot);

  /// Leaves the read-side critical section on `slot`.
  void Exit(uint32_t slot);

  /// Schedules `deleter` to run once no reader can still observe the
  /// retired object. Must be called by the object's single owner thread
  /// on its own slot (retire lists are slot-local by design).
  void Retire(uint32_t slot, std::function<void()> deleter);

  /// Typed drain callback for RetireBatch: walks `count` objects starting
  /// at `head` (chained however the caller likes — skip lists use the
  /// level-0 forward pointer) and frees each into `ctx`.
  using DrainFn = void (*)(void* head, size_t count, void* ctx);

  /// Retires a whole run of `count` intrusively-chained objects with one
  /// epoch-list append — no per-object std::function, no heap churn. The
  /// chain must stay intact until the drain runs (readers may still be
  /// traversing it, which is the whole point). Runs are drained in retire
  /// order, so a chain whose tail points into a later-retired run is freed
  /// before that run. Same owner-thread contract as Retire(). No-op when
  /// `count` is zero.
  void RetireBatch(uint32_t slot, void* head, size_t count, DrainFn drain,
                   void* ctx);

  /// Attempts to advance the global epoch and frees everything retired two
  /// or more epochs ago on `slot`. Returns the number of objects freed.
  size_t ReclaimSome(uint32_t slot);

  /// Frees everything on `slot` unconditionally. Only valid when no reader
  /// can be active (e.g., engine shutdown after joining all threads).
  size_t ReclaimAllUnsafe(uint32_t slot);

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Number of retired-but-not-yet-freed objects on `slot`. Counts run
  /// members individually. Safe from any thread (metrics sampling); the
  /// count is a relaxed-atomic gauge maintained by the owner.
  size_t PendingCount(uint32_t slot) const;

  /// Retired-but-not-yet-freed objects across all registered slots.
  /// Approximate under concurrency; intended for observability.
  size_t PendingCountAll() const;

 private:
  struct Retired {
    std::function<void()> deleter;
    uint64_t epoch;
  };

  struct RetiredRun {
    void* head;
    size_t count;
    DrainFn drain;
    void* ctx;
    uint64_t epoch;
  };

  struct alignas(64) Slot {
    /// kQuiescent when outside a critical section, else pinned epoch.
    std::atomic<uint64_t> local_epoch{kQuiescent};
    std::atomic<bool> in_use{false};
    /// Object-count gauge mirroring retired + retired_runs; written by the
    /// owner, readable by the metrics sampler.
    std::atomic<size_t> pending{0};
    std::vector<Retired> retired;        // accessed only by the owning thread
    std::vector<RetiredRun> retired_runs;  // accessed only by the owning thread
  };

  static constexpr uint64_t kQuiescent = ~0ULL;

  /// Advances the global epoch if every active slot has observed it.
  void TryAdvanceEpoch();

  std::atomic<uint64_t> global_epoch_{2};
  std::atomic<uint32_t> next_slot_{0};
  uint32_t max_threads_;
  std::vector<Slot> slots_;
};

/// RAII read-side critical section.
class EpochGuard {
 public:
  EpochGuard(EpochManager& mgr, uint32_t slot) : mgr_(mgr), slot_(slot) {
    mgr_.Enter(slot_);
  }
  ~EpochGuard() { mgr_.Exit(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& mgr_;
  uint32_t slot_;
};

}  // namespace oij

#endif  // OIJ_EBR_EPOCH_MANAGER_H_
