#ifndef OIJ_CLUSTER_ROUTER_H_
#define OIJ_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/backoff.h"
#include "cluster/cluster_watermark.h"
#include "cluster/hash_ring.h"
#include "cluster/health_checker.h"
#include "cluster/replay_buffer.h"
#include "common/status.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/timer_queue.h"
#include "net/wire_codec.h"

namespace oij {

/// One upstream `oij_server`.
struct RouterBackendAddress {
  std::string host = "127.0.0.1";
  uint16_t data_port = 0;
  uint16_t admin_port = 0;
};

/// Construction knobs for the cluster ingress tier.
struct RouterConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t data_port = 0;   ///< 0 picks an ephemeral port
  uint16_t admin_port = 0;  ///< 0 picks an ephemeral port

  std::vector<RouterBackendAddress> backends;

  /// Virtual nodes per backend on the consistent-hash ring.
  uint32_t ring_vnodes = 64;

  HealthCheckConfig health;

  /// Bound on one connect + handshake attempt to a backend.
  int64_t connect_timeout_ms = 1000;

  /// Reconnect schedule after a backend failure (full-jitter
  /// exponential, see cluster/backoff.h).
  int64_t backoff_base_ms = 50;
  int64_t backoff_max_ms = 2000;

  /// Slow-loris guard: a client holding a *partial* frame longer than
  /// this without completing one is disconnected.
  int64_t client_stall_timeout_ms = 30000;

  /// How long a kFinish waits for absent backends to come back before
  /// finalizing with the reachable subset.
  int64_t finish_timeout_ms = 30000;

  /// Per-backend replay buffer bound; overflow degrades exactness to
  /// bounded loss (oldest sealed segments dropped first).
  size_t replay_max_bytes = 256u << 20;

  /// Same eviction bound the server applies to its subscribers.
  size_t max_subscriber_backlog_bytes = 64u << 20;

  /// Seed for backoff jitter (deterministic in tests).
  uint64_t seed = 1;
};

/// Cross-thread router counters (atomics snapshot, like ServerCounters).
struct RouterCounters {
  uint64_t clients_accepted = 0;
  uint64_t clients_open = 0;
  uint64_t clients_stalled_evicted = 0;
  uint64_t subscribers = 0;
  uint64_t subscribers_evicted = 0;
  uint64_t tuples_in = 0;
  uint64_t tuples_routed = 0;
  uint64_t tuples_queued_sticky = 0;  ///< buffered for a down sticky owner
  uint64_t tuples_failed_over = 0;    ///< rerouted off the owner
  uint64_t tuples_dropped = 0;        ///< no eligible backend at all
  uint64_t watermarks_in = 0;
  uint64_t watermarks_broadcast = 0;
  uint64_t watermarks_ignored = 0;  ///< non-increasing, not broadcast
  uint64_t acks_received = 0;
  uint64_t results_fanned = 0;
  uint64_t backend_connects = 0;
  uint64_t backend_disconnects = 0;
  uint64_t backend_retries = 0;
  uint64_t replayed_tuples = 0;  ///< resent after backend recovery
  uint64_t replay_dropped_tuples = 0;
  int64_t cluster_watermark = INT64_MIN;
  int64_t min_backend_acked = INT64_MIN;
  uint64_t hellos_rejected = 0;
  uint64_t admin_requests = 0;
};

/// Health-gated consistent-hash ingress router over N oij_server
/// backends (ROADMAP item 2; modeled on Envoy's upstream machinery).
///
/// One event-loop thread owns everything: the client data/admin
/// listeners, one outbound connection per backend (nonblocking connect
/// -> versioned hello handshake -> active), the TimerQueue driving
/// connect timeouts, health probes, reconnect backoff and the client
/// slow-loris sweep.
///
/// Data path: client kTuple frames route by Mix64(key) on the ring to
/// the owning backend. Every routed tuple also enters that backend's
/// ReplayBuffer; client kWatermark frames (strictly increasing ones)
/// seal the buffers and broadcast to all active backends, whose
/// kWatermarkAck (sent post-WAL-sync) trims the buffers and feeds the
/// min-of-backends ClusterWatermark. A backend that dies and returns
/// is handed exactly the un-acked suffix past its recovered watermark
/// — exact under per_batch + recover_to_watermark (it advertises
/// kHelloDurableExact; its keys *stick* and queue while it is down),
/// bounded loss otherwise (its keys fail over ring-clockwise).
///
/// Subscriptions: the router subscribes to every backend and fans
/// kResult frames back to subscribed clients (union of disjoint key
/// partitions), inserting kWatermark punctuation whenever the cluster
/// watermark advances. kFinish waits (bounded) for participating
/// backends, broadcasts, merges their summaries, and answers every
/// subscriber with [results..., watermarks..., summary].
class OijRouter {
 public:
  explicit OijRouter(const RouterConfig& config);
  ~OijRouter();

  OijRouter(const OijRouter&) = delete;
  OijRouter& operator=(const OijRouter&) = delete;

  Status Start();
  void Shutdown();

  uint16_t data_port() const { return data_port_; }
  uint16_t admin_port() const { return admin_port_; }

  bool run_finished() const {
    return run_finished_.load(std::memory_order_acquire);
  }

  RouterCounters CountersSnapshot() const;

 private:
  struct ClientConn {
    explicit ClientConn(int fd) : tcp(fd) {}
    TcpConnection tcp;
    WireDecoder decoder;
    bool is_admin = false;
    bool subscriber = false;
    bool saw_frame = false;
    /// Last time a complete frame finished decoding (stall sweep).
    int64_t last_frame_ms = 0;
  };

  enum class BackendState : uint8_t {
    kDisconnected = 0,
    kConnecting,
    kHandshaking,
    kActive,
  };

  struct Backend {
    uint32_t id = 0;
    RouterBackendAddress addr;
    BackendState state = BackendState::kDisconnected;
    std::unique_ptr<TcpConnection> conn;
    std::unique_ptr<WireDecoder> decoder;
    Backoff backoff;
    ReplayBuffer replay;

    /// From its hello reply: per_batch + recover_to_watermark, so keys
    /// stick to it across downtime and replay is exact.
    bool durable_exact = false;
    bool ever_active = false;
    bool health_ok = true;  ///< active checker verdict
    Timestamp acked = kMinTimestamp;

    TimerQueue::TimerId connect_timer = 0;
    TimerQueue::TimerId retry_timer = 0;

    bool finish_sent = false;
    bool summary_received = false;
    std::string summary;

    uint64_t tuples_sent = 0;
    uint64_t watermarks_sent = 0;
    uint64_t acks = 0;
    uint64_t connects = 0;
    uint64_t disconnects = 0;
    uint64_t replays = 0;

    Backend(uint32_t backend_id, RouterBackendAddress address,
            const RouterConfig& config)
        : id(backend_id),
          addr(std::move(address)),
          backoff(config.backoff_base_ms, config.backoff_max_ms,
                  config.seed * 1000003u + backend_id),
          replay(config.replay_max_bytes) {}
  };

  void ServeLoop();
  int64_t NowMs() const { return TimerQueue::NowMs(); }

  // --- backend pool ---
  void StartConnect(Backend* backend);
  void OnBackendEvent(Backend* backend, uint32_t ready);
  void OnBackendConnectWritable(Backend* backend);
  void ProcessBackendInput(Backend* backend);
  bool HandleBackendFrame(Backend* backend, const WireFrame& frame);
  void BackendActivated(Backend* backend, const HelloInfo& hello);
  void BackendFailed(Backend* backend, const char* why);
  void ScheduleReconnect(Backend* backend);
  void OnHealthTransition(uint32_t id, bool healthy);
  bool Eligible(const Backend& backend) const {
    return backend.state == BackendState::kActive && backend.health_ok;
  }
  void FlushBackend(Backend* backend);

  // --- client plane ---
  void OnDataAccept();
  void OnAdminAccept();
  void OnClientEvent(int fd, uint32_t ready);
  void ProcessClientInput(ClientConn* conn);
  bool HandleClientFrame(ClientConn* conn, const WireFrame& frame);
  void ProcessAdminInput(ClientConn* conn);
  void RouteTuple(const StreamEvent& event);
  void BroadcastWatermark(Timestamp watermark);
  void FanResultToSubscribers(const JoinResult& result);
  void FanFramesToSubscribers(const std::string& frames);
  void SendClientError(ClientConn* conn, const std::string& message);
  void FlushClient(ClientConn* conn);
  void CloseClient(int fd);
  void SweepStalledClients();

  // --- watermark + finish ---
  void OnBackendAck(Backend* backend, Timestamp watermark, uint64_t tuples);
  void MaybeFinish();
  void BroadcastFinish();
  void CompleteFinish();

  std::string RenderStatz();
  std::string RenderMetrics();

  RouterConfig config_;
  EventLoop loop_;
  TimerQueue timers_;
  TcpListener data_listener_;
  TcpListener admin_listener_;
  uint16_t data_port_ = 0;
  uint16_t admin_port_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Loop-thread-only state.
  std::vector<std::unique_ptr<Backend>> backends_;
  HashRing ring_;
  ClusterWatermark cluster_wm_;
  std::unique_ptr<HealthChecker> health_;
  std::unordered_map<int, std::unique_ptr<ClientConn>> clients_;
  Timestamp last_broadcast_wm_ = kMinTimestamp;
  /// Every kAddQuery/kRemoveQuery frame accepted, in order. Broadcast
  /// to all backends as it arrives and resent in full to every backend
  /// that (re)connects, so the whole cluster serves the same catalog;
  /// backends treat duplicate catalog frames as idempotent.
  std::string catalog_journal_;
  bool finish_requested_ = false;
  bool finish_broadcast_ = false;
  int64_t finish_requested_ms_ = 0;
  int finisher_fd_ = -1;
  std::string merged_summary_;
  TimerQueue::TimerId stall_sweep_timer_ = 0;

  // Cross-thread.
  std::atomic<bool> run_finished_{false};

  // Counters (loop thread writes; any thread reads).
  std::atomic<uint64_t> clients_accepted_{0};
  std::atomic<uint64_t> clients_open_{0};
  std::atomic<uint64_t> clients_stalled_evicted_{0};
  std::atomic<uint64_t> subscribers_{0};
  std::atomic<uint64_t> subscribers_evicted_{0};
  std::atomic<uint64_t> tuples_in_{0};
  std::atomic<uint64_t> tuples_routed_{0};
  std::atomic<uint64_t> tuples_queued_sticky_{0};
  std::atomic<uint64_t> tuples_failed_over_{0};
  std::atomic<uint64_t> tuples_dropped_{0};
  std::atomic<uint64_t> watermarks_in_{0};
  std::atomic<uint64_t> watermarks_broadcast_{0};
  std::atomic<uint64_t> watermarks_ignored_{0};
  std::atomic<uint64_t> acks_received_{0};
  std::atomic<uint64_t> results_fanned_{0};
  std::atomic<uint64_t> backend_connects_{0};
  std::atomic<uint64_t> backend_disconnects_{0};
  std::atomic<uint64_t> backend_retries_{0};
  std::atomic<uint64_t> replayed_tuples_{0};
  std::atomic<uint64_t> replay_dropped_tuples_{0};
  std::atomic<int64_t> cluster_watermark_{INT64_MIN};
  std::atomic<int64_t> min_backend_acked_{INT64_MIN};
  std::atomic<uint64_t> hellos_rejected_{0};
  std::atomic<uint64_t> admin_requests_{0};
};

}  // namespace oij

#endif  // OIJ_CLUSTER_ROUTER_H_
