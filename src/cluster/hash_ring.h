#ifndef OIJ_CLUSTER_HASH_RING_H_
#define OIJ_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "common/types.h"

namespace oij {

/// Consistent-hash ring over backend ids (Karger-style, virtual nodes).
///
/// Every backend owns `vnodes` pseudo-random points on the 64-bit ring;
/// a key routes to the owner of the first point clockwise from
/// Mix64(key). Adding or removing one backend therefore moves only
/// ~1/N of the keyspace, which is what keeps a failover from
/// reshuffling every backend's working set.
///
/// Lookup is O(log points); the filtered variant walks clockwise past
/// ineligible owners (ejected/disconnected backends), so failover picks
/// the *ring-adjacent* survivor deterministically.
class HashRing {
 public:
  explicit HashRing(uint32_t vnodes_per_backend = 64)
      : vnodes_(vnodes_per_backend == 0 ? 1 : vnodes_per_backend) {}

  void AddBackend(uint32_t id);
  void RemoveBackend(uint32_t id);
  bool Contains(uint32_t id) const { return ids_.count(id) != 0; }
  size_t backends() const { return ids_.size(); }

  /// Owner of `key`; -1 on an empty ring.
  int PickOwner(Key key) const;

  /// First eligible owner clockwise from `key`'s point; -1 when no
  /// backend passes the filter. `eligible` is consulted at most once
  /// per distinct backend.
  int PickEligible(Key key,
                   const std::function<bool(uint32_t)>& eligible) const;

  /// Fraction of 4096 sample points owned by `id` (diagnostics/tests).
  double OwnershipFraction(uint32_t id) const;

 private:
  struct Point {
    uint64_t hash;
    uint32_t backend;
    bool operator<(const Point& other) const {
      return hash != other.hash ? hash < other.hash
                                : backend < other.backend;
    }
  };

  size_t LowerBound(uint64_t hash) const;

  uint32_t vnodes_;
  std::vector<Point> points_;  ///< sorted by hash
  std::set<uint32_t> ids_;
};

}  // namespace oij

#endif  // OIJ_CLUSTER_HASH_RING_H_
