#include "cluster/replay_buffer.h"

#include "net/wire_codec.h"

namespace oij {

namespace {
// Approximate in-memory cost of one buffered tuple.
constexpr uint64_t kTupleCost = sizeof(StreamEvent);
}  // namespace

void ReplayBuffer::Append(const StreamEvent& event) {
  open_.push_back(event);
  ++buffered_tuples_;
  buffered_bytes_ += kTupleCost;
  while (buffered_bytes_ > max_bytes_ && !segments_.empty()) {
    DropOldestSealed();
  }
}

void ReplayBuffer::Seal(Timestamp watermark) {
  Segment segment;
  segment.bound = watermark;
  segment.events.swap(open_);
  segments_.push_back(std::move(segment));
}

void ReplayBuffer::Ack(Timestamp watermark) {
  if (watermark > acked_) acked_ = watermark;
  while (!segments_.empty() && segments_.front().bound <= watermark) {
    const Segment& front = segments_.front();
    buffered_tuples_ -= front.events.size();
    buffered_bytes_ -= front.events.size() * kTupleCost;
    segments_.pop_front();
  }
}

uint64_t ReplayBuffer::EncodeUnacked(Timestamp recovered_watermark,
                                     std::string* out) const {
  uint64_t tuples = 0;
  for (const Segment& segment : segments_) {
    if (segment.bound <= recovered_watermark) continue;
    for (const StreamEvent& event : segment.events) {
      AppendTupleFrame(out, event);
      ++tuples;
    }
    AppendWatermarkFrame(out, segment.bound);
  }
  for (const StreamEvent& event : open_) {
    AppendTupleFrame(out, event);
    ++tuples;
  }
  return tuples;
}

void ReplayBuffer::Clear() {
  segments_.clear();
  open_.clear();
  buffered_tuples_ = 0;
  buffered_bytes_ = 0;
}

void ReplayBuffer::DropOldestSealed() {
  const Segment& front = segments_.front();
  buffered_tuples_ -= front.events.size();
  buffered_bytes_ -= front.events.size() * kTupleCost;
  dropped_tuples_ += front.events.size();
  segments_.pop_front();
}

}  // namespace oij
