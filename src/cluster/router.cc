#include "cluster/router.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "metrics/prometheus.h"
#include "net/http.h"
#include "net/socket.h"

namespace oij {

namespace {

const char* BackendStateName(uint8_t state) {
  switch (state) {
    case 0: return "disconnected";
    case 1: return "connecting";
    case 2: return "handshaking";
    case 3: return "active";
  }
  return "?";
}

}  // namespace

OijRouter::OijRouter(const RouterConfig& config)
    : config_(config), ring_(config.ring_vnodes) {}

OijRouter::~OijRouter() { Shutdown(); }

Status OijRouter::Start() {
  if (started_) return Status::FailedPrecondition("router already started");
  if (!loop_.ok()) return Status::Internal("event loop init failed");
  if (config_.backends.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }

  Status s = data_listener_.Listen(config_.bind_address, config_.data_port);
  if (!s.ok()) return s;
  s = admin_listener_.Listen(config_.bind_address, config_.admin_port);
  if (!s.ok()) {
    data_listener_.Close();
    return s;
  }
  data_port_ = data_listener_.port();
  admin_port_ = admin_listener_.port();

  health_ = std::make_unique<HealthChecker>(
      &loop_, &timers_, config_.health,
      [this](uint32_t id, bool healthy) { OnHealthTransition(id, healthy); });
  for (uint32_t i = 0; i < config_.backends.size(); ++i) {
    backends_.push_back(
        std::make_unique<Backend>(i, config_.backends[i], config_));
    ring_.AddBackend(i);
    cluster_wm_.Add(i);
    health_->AddTarget(i, config_.backends[i].host,
                       config_.backends[i].admin_port);
  }

  loop_.Add(data_listener_.fd(), kLoopReadable,
            [this](uint32_t) { OnDataAccept(); });
  loop_.Add(admin_listener_.fd(), kLoopReadable,
            [this](uint32_t) { OnAdminAccept(); });

  started_ = true;
  stop_.store(false, std::memory_order_release);
  loop_thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void OijRouter::Shutdown() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  loop_.Wakeup();
  if (loop_thread_.joinable()) loop_thread_.join();
  started_ = false;
}

RouterCounters OijRouter::CountersSnapshot() const {
  RouterCounters c;
  c.clients_accepted = clients_accepted_.load(std::memory_order_relaxed);
  c.clients_open = clients_open_.load(std::memory_order_relaxed);
  c.clients_stalled_evicted =
      clients_stalled_evicted_.load(std::memory_order_relaxed);
  c.subscribers = subscribers_.load(std::memory_order_relaxed);
  c.subscribers_evicted =
      subscribers_evicted_.load(std::memory_order_relaxed);
  c.tuples_in = tuples_in_.load(std::memory_order_relaxed);
  c.tuples_routed = tuples_routed_.load(std::memory_order_relaxed);
  c.tuples_queued_sticky =
      tuples_queued_sticky_.load(std::memory_order_relaxed);
  c.tuples_failed_over = tuples_failed_over_.load(std::memory_order_relaxed);
  c.tuples_dropped = tuples_dropped_.load(std::memory_order_relaxed);
  c.watermarks_in = watermarks_in_.load(std::memory_order_relaxed);
  c.watermarks_broadcast =
      watermarks_broadcast_.load(std::memory_order_relaxed);
  c.watermarks_ignored = watermarks_ignored_.load(std::memory_order_relaxed);
  c.acks_received = acks_received_.load(std::memory_order_relaxed);
  c.results_fanned = results_fanned_.load(std::memory_order_relaxed);
  c.backend_connects = backend_connects_.load(std::memory_order_relaxed);
  c.backend_disconnects =
      backend_disconnects_.load(std::memory_order_relaxed);
  c.backend_retries = backend_retries_.load(std::memory_order_relaxed);
  c.replayed_tuples = replayed_tuples_.load(std::memory_order_relaxed);
  c.replay_dropped_tuples =
      replay_dropped_tuples_.load(std::memory_order_relaxed);
  c.cluster_watermark = cluster_watermark_.load(std::memory_order_relaxed);
  c.min_backend_acked = min_backend_acked_.load(std::memory_order_relaxed);
  c.hellos_rejected = hellos_rejected_.load(std::memory_order_relaxed);
  c.admin_requests = admin_requests_.load(std::memory_order_relaxed);
  return c;
}

void OijRouter::ServeLoop() {
  health_->Start();
  for (auto& backend : backends_) StartConnect(backend.get());
  const int64_t sweep_every =
      std::max<int64_t>(100, config_.client_stall_timeout_ms / 4);
  std::function<void()> sweep = [this, sweep_every, &sweep] {
    SweepStalledClients();
    stall_sweep_timer_ = timers_.Schedule(NowMs(), sweep_every, sweep);
  };
  stall_sweep_timer_ = timers_.Schedule(NowMs(), sweep_every, sweep);

  while (!stop_.load(std::memory_order_acquire)) {
    loop_.Poll(timers_.NextTimeoutMs(NowMs(), 50));
    timers_.RunExpired(NowMs());
    if (finish_requested_ && !finish_broadcast_) MaybeFinish();
  }

  health_->Stop();
  loop_.Remove(data_listener_.fd());
  loop_.Remove(admin_listener_.fd());
  data_listener_.Close();
  admin_listener_.Close();
  for (auto& backend : backends_) {
    if (backend->conn != nullptr) {
      loop_.Remove(backend->conn->fd());
      backend->conn.reset();
    }
  }
  std::vector<int> fds;
  fds.reserve(clients_.size());
  for (const auto& [fd, conn] : clients_) fds.push_back(fd);
  for (int fd : fds) CloseClient(fd);
}

// --- backend pool ----------------------------------------------------

void OijRouter::StartConnect(Backend* backend) {
  if (backend->conn != nullptr || stop_.load(std::memory_order_relaxed)) {
    return;
  }
  int fd = -1;
  bool in_progress = false;
  const Status s = ConnectTcpNonBlocking(backend->addr.host,
                                         backend->addr.data_port, &fd,
                                         &in_progress);
  if (!s.ok()) {
    BackendFailed(backend, "connect");
    return;
  }
  backend->state = BackendState::kConnecting;
  backend->conn = std::make_unique<TcpConnection>(fd);
  backend->decoder = std::make_unique<WireDecoder>();
  Backend* raw = backend;
  loop_.Add(fd, kLoopWritable,
            [this, raw](uint32_t ready) { OnBackendEvent(raw, ready); });
  backend->connect_timer = timers_.Schedule(
      NowMs(), config_.connect_timeout_ms,
      [this, raw] {
        raw->connect_timer = 0;
        BackendFailed(raw, "connect/handshake timeout");
      });
}

void OijRouter::OnBackendEvent(Backend* backend, uint32_t ready) {
  if (backend->conn == nullptr) return;
  if (ready & kLoopError) {
    BackendFailed(backend, "socket error");
    return;
  }
  if (ready & kLoopWritable) {
    if (backend->state == BackendState::kConnecting) {
      OnBackendConnectWritable(backend);
      if (backend->conn == nullptr) return;
    } else if (backend->conn->FlushWrites() ==
               TcpConnection::IoResult::kError) {
      BackendFailed(backend, "write error");
      return;
    }
    FlushBackend(backend);
    if (backend->conn == nullptr) return;
  }
  if (ready & kLoopReadable) {
    const TcpConnection::IoResult r = backend->conn->ReadReady();
    if (r == TcpConnection::IoResult::kError) {
      BackendFailed(backend, "read error");
      return;
    }
    ProcessBackendInput(backend);
    if (backend->conn == nullptr) return;
    if (r == TcpConnection::IoResult::kEof) {
      if (backend->finish_sent && backend->summary_received) {
        // Orderly close after the summary: the run is over there.
        loop_.Remove(backend->conn->fd());
        backend->conn.reset();
        backend->decoder.reset();
        backend->state = BackendState::kDisconnected;
      } else {
        BackendFailed(backend, "eof");
      }
    }
  }
}

void OijRouter::OnBackendConnectWritable(Backend* backend) {
  if (!FinishConnect(backend->conn->fd()).ok()) {
    BackendFailed(backend, "connect refused");
    return;
  }
  backend->state = BackendState::kHandshaking;
  HelloInfo hello;
  hello.flags = kHelloWantAcks;
  std::string out;
  AppendHelloFrame(&out, hello);
  backend->conn->QueueWrite(out);
}

void OijRouter::ProcessBackendInput(Backend* backend) {
  std::string& in = backend->conn->input();
  backend->decoder->Feed(in);
  in.clear();
  WireFrame frame;
  while (backend->conn != nullptr) {
    const WireDecoder::Result r = backend->decoder->Next(&frame);
    if (r == WireDecoder::Result::kNeedMore) return;
    if (r == WireDecoder::Result::kCorrupt) {
      BackendFailed(backend, "protocol corruption");
      return;
    }
    if (!HandleBackendFrame(backend, frame)) return;
  }
}

bool OijRouter::HandleBackendFrame(Backend* backend,
                                   const WireFrame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      if (backend->state != BackendState::kHandshaking) {
        BackendFailed(backend, "unexpected hello");
        return false;
      }
      if (!frame.hello.Compatible()) {
        // A clean, decoded refusal — do not retry-hammer a peer from
        // the wrong protocol era.
        hellos_rejected_.fetch_add(1, std::memory_order_relaxed);
        BackendFailed(backend, "incompatible peer");
        return false;
      }
      BackendActivated(backend, frame.hello);
      return backend->conn != nullptr;
    case FrameType::kWatermarkAck:
      backend->acks += 1;
      acks_received_.fetch_add(1, std::memory_order_relaxed);
      OnBackendAck(backend, frame.watermark, frame.ack_tuples);
      return true;
    case FrameType::kResult:
      FanResultToSubscribers(frame.result);
      return true;
    case FrameType::kSummary:
      backend->summary_received = true;
      backend->summary = frame.text;
      if (finish_broadcast_) MaybeFinish();
      return true;
    case FrameType::kError:
      // Typical mid-recovery answer ("engine recovering; retry later")
      // or a finalized-run rejection; either way the connection is
      // done — back off and try again.
      BackendFailed(backend, "backend error frame");
      return false;
    default:
      BackendFailed(backend, "unexpected frame type");
      return false;
  }
}

void OijRouter::BackendActivated(Backend* backend, const HelloInfo& hello) {
  if (backend->connect_timer != 0) {
    timers_.Cancel(backend->connect_timer);
    backend->connect_timer = 0;
  }
  backend->state = BackendState::kActive;
  backend->ever_active = true;
  backend->backoff.Reset();
  backend->connects += 1;
  backend_connects_.fetch_add(1, std::memory_order_relaxed);
  const bool durable = (hello.flags & kHelloDurableExact) != 0;
  backend->durable_exact = durable;

  std::string out;
  AppendControlFrame(&out, FrameType::kSubscribe);
  backend->conn->QueueWrite(out);

  // Catalog convergence: replay the full standing-query journal before
  // any data. A freshly restarted durable backend already restored its
  // catalog from its own WAL manifest and treats the duplicates as
  // no-ops; a wiped or never-connected one catches up here.
  if (!catalog_journal_.empty()) {
    backend->conn->QueueWrite(catalog_journal_);
  }

  if (durable) {
    // The backend recovered exactly to `hello.recovered_watermark`
    // (watermark-cut recovery): everything it acked before the crash
    // survives, nothing past the cut does. Resend exactly the un-acked
    // suffix — sealed segments with their watermark punctuation, then
    // the open tail.
    cluster_wm_.RecordAck(backend->id, hello.recovered_watermark);
    if (hello.recovered_watermark > backend->acked) {
      backend->acked = hello.recovered_watermark;
    }
    std::string replay;
    const uint64_t resent =
        backend->replay.EncodeUnacked(hello.recovered_watermark, &replay);
    if (!replay.empty()) {
      backend->conn->QueueWrite(replay);
      backend->replays += 1;
    }
    backend->tuples_sent += resent;
    replayed_tuples_.fetch_add(resent, std::memory_order_relaxed);
  } else {
    // Bounded-loss mode: this backend's keys failed over while it was
    // gone and its pre-crash state is not exactly reconstructable, so
    // replaying could only manufacture disagreeing results. Account
    // the buffer as lost and start clean.
    replay_dropped_tuples_.fetch_add(backend->replay.buffered_tuples(),
                                     std::memory_order_relaxed);
    backend->replay.Clear();
  }
  FlushBackend(backend);
}

void OijRouter::BackendFailed(Backend* backend, const char* why) {
  (void)why;
  if (backend->connect_timer != 0) {
    timers_.Cancel(backend->connect_timer);
    backend->connect_timer = 0;
  }
  const bool was_active = backend->state == BackendState::kActive;
  if (backend->conn != nullptr) {
    loop_.Remove(backend->conn->fd());
    backend->conn.reset();
    backend->decoder.reset();
  }
  backend->state = BackendState::kDisconnected;
  if (was_active) {
    backend->disconnects += 1;
    backend_disconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  health_->ReportPassiveFailure(backend->id);
  if (!backend->durable_exact && !backend->ever_active) {
    // Never spoke to it; nothing buffered to preserve.
    backend->replay.Clear();
  }
  ScheduleReconnect(backend);
}

void OijRouter::ScheduleReconnect(Backend* backend) {
  if (stop_.load(std::memory_order_relaxed)) return;
  if (backend->retry_timer != 0) return;  // one pending retry at a time
  const int64_t delay = backend->backoff.NextDelayMs();
  backend_retries_.fetch_add(1, std::memory_order_relaxed);
  Backend* raw = backend;
  backend->retry_timer = timers_.Schedule(NowMs(), delay, [this, raw] {
    raw->retry_timer = 0;
    if (raw->state == BackendState::kDisconnected) StartConnect(raw);
  });
}

void OijRouter::OnHealthTransition(uint32_t id, bool healthy) {
  Backend* backend = backends_[id].get();
  backend->health_ok = healthy;
  if (healthy && backend->state == BackendState::kDisconnected) {
    // The admin plane answers again — skip the rest of the backoff.
    if (backend->retry_timer != 0) {
      timers_.Cancel(backend->retry_timer);
      backend->retry_timer = 0;
    }
    StartConnect(backend);
  }
}

void OijRouter::FlushBackend(Backend* backend) {
  if (backend->conn == nullptr) return;
  if (backend->conn->FlushWrites() == TcpConnection::IoResult::kError) {
    BackendFailed(backend, "flush error");
    return;
  }
  uint32_t interest = kLoopReadable;
  if (backend->state == BackendState::kConnecting ||
      backend->conn->wants_write()) {
    interest |= kLoopWritable;
  }
  loop_.SetInterest(backend->conn->fd(), interest);
}

// --- client plane ----------------------------------------------------

void OijRouter::OnDataAccept() {
  data_listener_.AcceptAll([this](int fd) {
    clients_accepted_.fetch_add(1, std::memory_order_relaxed);
    clients_open_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<ClientConn>(fd);
    conn->last_frame_ms = NowMs();
    clients_.emplace(fd, std::move(conn));
    loop_.Add(fd, kLoopReadable,
              [this, fd](uint32_t ready) { OnClientEvent(fd, ready); });
  });
}

void OijRouter::OnAdminAccept() {
  admin_listener_.AcceptAll([this](int fd) {
    auto conn = std::make_unique<ClientConn>(fd);
    conn->is_admin = true;
    conn->last_frame_ms = NowMs();
    clients_.emplace(fd, std::move(conn));
    loop_.Add(fd, kLoopReadable,
              [this, fd](uint32_t ready) { OnClientEvent(fd, ready); });
  });
}

void OijRouter::OnClientEvent(int fd, uint32_t ready) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  ClientConn* conn = it->second.get();
  if (ready & kLoopError) {
    CloseClient(fd);
    return;
  }
  if (ready & kLoopWritable) {
    if (conn->tcp.FlushWrites() == TcpConnection::IoResult::kError) {
      CloseClient(fd);
      return;
    }
    if (conn->tcp.close_after_flush() && !conn->tcp.wants_write()) {
      CloseClient(fd);
      return;
    }
    FlushClient(conn);
    if (clients_.count(fd) == 0) return;
  }
  if (ready & kLoopReadable) {
    const TcpConnection::IoResult r = conn->tcp.ReadReady();
    if (r == TcpConnection::IoResult::kError) {
      CloseClient(fd);
      return;
    }
    if (conn->is_admin) {
      ProcessAdminInput(conn);
    } else {
      ProcessClientInput(conn);
    }
    if (clients_.count(fd) == 0) return;
    if (r == TcpConnection::IoResult::kEof) {
      if (conn->tcp.wants_write()) {
        conn->tcp.set_close_after_flush(true);
        FlushClient(conn);
      } else {
        CloseClient(fd);
      }
    }
  }
}

void OijRouter::ProcessClientInput(ClientConn* conn) {
  if (conn->tcp.close_after_flush()) {
    conn->tcp.input().clear();
    return;
  }
  std::string& in = conn->tcp.input();
  conn->decoder.Feed(in);
  in.clear();
  WireFrame frame;
  bool any = false;
  while (true) {
    const WireDecoder::Result r = conn->decoder.Next(&frame);
    if (r == WireDecoder::Result::kNeedMore) break;
    if (r == WireDecoder::Result::kCorrupt) {
      SendClientError(conn, conn->decoder.error().ToString());
      return;
    }
    any = true;
    conn->last_frame_ms = NowMs();
    if (!HandleClientFrame(conn, frame)) return;
  }
  if (!any) return;
  // One flush per processed batch keeps syscalls off the per-frame path.
  for (auto& backend : backends_) {
    if (backend->conn != nullptr && backend->conn->wants_write()) {
      FlushBackend(backend.get());
    }
  }
}

bool OijRouter::HandleClientFrame(ClientConn* conn, const WireFrame& frame) {
  const bool first_frame = !conn->saw_frame;
  conn->saw_frame = true;
  switch (frame.type) {
    case FrameType::kHello: {
      if (!first_frame) {
        hellos_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendClientError(conn, "hello must be the first frame");
        return false;
      }
      if (!frame.hello.Compatible()) {
        hellos_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendClientError(conn, "incompatible wire protocol version");
        return false;
      }
      HelloInfo reply;
      reply.recovered_watermark = cluster_wm_.emitted();
      std::string out;
      AppendHelloFrame(&out, reply);
      const int fd = conn->tcp.fd();
      conn->tcp.QueueWrite(out);
      FlushClient(conn);
      return clients_.count(fd) != 0;
    }
    case FrameType::kTuple:
      tuples_in_.fetch_add(1, std::memory_order_relaxed);
      if (run_finished_.load(std::memory_order_relaxed)) {
        SendClientError(conn, "run already finalized; tuple rejected");
        return false;
      }
      RouteTuple(frame.event);
      return true;
    case FrameType::kWatermark:
      watermarks_in_.fetch_add(1, std::memory_order_relaxed);
      if (run_finished_.load(std::memory_order_relaxed)) return true;
      if (frame.watermark <= last_broadcast_wm_) {
        // Watermark values key replay segments, so only strictly
        // increasing punctuation is broadcast.
        watermarks_ignored_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      BroadcastWatermark(frame.watermark);
      return true;
    case FrameType::kSubscribe:
      if (!conn->subscriber) {
        conn->subscriber = true;
        subscribers_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    case FrameType::kFinish:
      if (!finish_requested_) {
        finish_requested_ = true;
        finish_requested_ms_ = NowMs();
        finisher_fd_ = conn->tcp.fd();
        MaybeFinish();
      }
      return true;
    case FrameType::kAddQuery:
    case FrameType::kRemoveQuery: {
      if (run_finished_.load(std::memory_order_relaxed)) {
        SendClientError(conn, "run already finalized; catalog change "
                              "rejected");
        return false;
      }
      std::string out;
      if (frame.type == FrameType::kAddQuery) {
        AppendAddQueryFrame(&out, frame.query_id, frame.query_spec);
      } else {
        AppendRemoveQueryFrame(&out, frame.query_id);
      }
      // Journal first (so a backend that is down right now still gets
      // the change on reconnect), then broadcast to the reachable ones.
      catalog_journal_ += out;
      for (auto& backend : backends_) {
        if (Eligible(*backend)) backend->conn->QueueWrite(out);
      }
      return true;
    }
    default:
      SendClientError(conn, "unexpected frame type from client");
      return false;
  }
}

void OijRouter::RouteTuple(const StreamEvent& event) {
  const auto eligible = [this](uint32_t id) {
    return Eligible(*backends_[id]);
  };
  const int owner = ring_.PickOwner(event.tuple.key);
  if (owner < 0) {
    tuples_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Backend* target = backends_[static_cast<size_t>(owner)].get();
  if (Eligible(*target)) {
    std::string out;
    AppendTupleFrame(&out, event);
    target->conn->QueueWrite(out);
    target->replay.Append(event);
    target->tuples_sent += 1;
    tuples_routed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (target->durable_exact) {
    // Sticky: the owner runs per_batch + watermark-cut recovery, so
    // queueing through its downtime and replaying on return is exact —
    // rerouting would instead split this key's window state across two
    // backends and corrupt both aggregates.
    target->replay.Append(event);
    tuples_queued_sticky_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int alt = ring_.PickEligible(event.tuple.key, eligible);
  if (alt < 0) {
    tuples_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Backend* failover = backends_[static_cast<size_t>(alt)].get();
  std::string out;
  AppendTupleFrame(&out, event);
  failover->conn->QueueWrite(out);
  failover->replay.Append(event);
  failover->tuples_sent += 1;
  tuples_routed_.fetch_add(1, std::memory_order_relaxed);
  tuples_failed_over_.fetch_add(1, std::memory_order_relaxed);
}

void OijRouter::BroadcastWatermark(Timestamp watermark) {
  last_broadcast_wm_ = watermark;
  std::string frame;
  AppendWatermarkFrame(&frame, watermark);
  for (auto& backend : backends_) {
    // Seal every buffer (sticky-down owners get the punctuation on
    // replay via the segment bound), send to the reachable ones.
    backend->replay.Seal(watermark);
    if (Eligible(*backend)) {
      backend->conn->QueueWrite(frame);
      backend->watermarks_sent += 1;
    }
  }
  watermarks_broadcast_.fetch_add(1, std::memory_order_relaxed);
}

void OijRouter::OnBackendAck(Backend* backend, Timestamp watermark,
                             uint64_t tuples) {
  (void)tuples;
  if (watermark > backend->acked) backend->acked = watermark;
  backend->replay.Ack(watermark);
  replay_dropped_tuples_.store(
      [this] {
        uint64_t total = 0;
        for (const auto& b : backends_) total += b->replay.dropped_tuples();
        return total;
      }(),
      std::memory_order_relaxed);
  cluster_wm_.RecordAck(backend->id, watermark);
  min_backend_acked_.store(cluster_wm_.MinAcked(),
                           std::memory_order_relaxed);
  Timestamp advanced = kMinTimestamp;
  if (cluster_wm_.TryAdvance(&advanced)) {
    cluster_watermark_.store(advanced, std::memory_order_relaxed);
    // Cluster-level punctuation to subscribers: every shard is durable
    // and complete through `advanced`.
    std::string frame;
    AppendWatermarkFrame(&frame, advanced);
    FanFramesToSubscribers(frame);
  }
}

void OijRouter::FanResultToSubscribers(const JoinResult& result) {
  std::string frame;
  AppendResultFrame(&frame, result);
  results_fanned_.fetch_add(1, std::memory_order_relaxed);
  FanFramesToSubscribers(frame);
}

void OijRouter::FanFramesToSubscribers(const std::string& frames) {
  std::vector<int> fds;
  fds.reserve(clients_.size());
  for (const auto& [fd, conn] : clients_) {
    if (conn->subscriber && !conn->tcp.close_after_flush()) {
      fds.push_back(fd);
    }
  }
  for (int fd : fds) {
    auto it = clients_.find(fd);
    if (it == clients_.end()) continue;
    it->second->tcp.QueueWrite(frames);
    FlushClient(it->second.get());
    auto again = clients_.find(fd);
    if (again != clients_.end() &&
        again->second->tcp.pending_write_bytes() >
            config_.max_subscriber_backlog_bytes) {
      subscribers_evicted_.fetch_add(1, std::memory_order_relaxed);
      CloseClient(fd);
    }
  }
}

void OijRouter::SendClientError(ClientConn* conn,
                                const std::string& message) {
  std::string out;
  AppendTextFrame(&out, FrameType::kError, message);
  conn->tcp.QueueWrite(out);
  conn->tcp.set_close_after_flush(true);
  FlushClient(conn);
}

void OijRouter::FlushClient(ClientConn* conn) {
  if (conn->tcp.FlushWrites() == TcpConnection::IoResult::kError) {
    CloseClient(conn->tcp.fd());
    return;
  }
  if (conn->tcp.close_after_flush() && !conn->tcp.wants_write()) {
    CloseClient(conn->tcp.fd());
    return;
  }
  uint32_t interest = 0;
  if (!conn->tcp.close_after_flush()) interest |= kLoopReadable;
  if (conn->tcp.wants_write()) interest |= kLoopWritable;
  loop_.SetInterest(conn->tcp.fd(), interest);
}

void OijRouter::CloseClient(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  if (it->second->subscriber) {
    subscribers_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (!it->second->is_admin) {
    clients_open_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (fd == finisher_fd_) finisher_fd_ = -1;
  loop_.Remove(fd);
  clients_.erase(it);
}

void OijRouter::SweepStalledClients() {
  const int64_t now = NowMs();
  std::vector<int> stalled;
  for (const auto& [fd, conn] : clients_) {
    if (conn->is_admin) continue;
    if (conn->decoder.buffered() > 0 &&
        now - conn->last_frame_ms > config_.client_stall_timeout_ms) {
      stalled.push_back(fd);
    }
  }
  for (int fd : stalled) {
    clients_stalled_evicted_.fetch_add(1, std::memory_order_relaxed);
    CloseClient(fd);
  }
}

// --- finish ----------------------------------------------------------

void OijRouter::MaybeFinish() {
  if (!finish_requested_ || run_finished_.load(std::memory_order_relaxed)) {
    return;
  }
  if (!finish_broadcast_) {
    const bool timed_out =
        NowMs() - finish_requested_ms_ >= config_.finish_timeout_ms;
    if (!timed_out) {
      for (const auto& backend : backends_) {
        if (Eligible(*backend)) continue;
        if (backend->durable_exact ||
            backend->state == BackendState::kConnecting ||
            backend->state == BackendState::kHandshaking) {
          // Sticky backends must come back (their queued keys drain on
          // replay); in-flight connections get a moment to settle.
          return;
        }
      }
    }
    BroadcastFinish();
  }
  for (const auto& backend : backends_) {
    if (backend->finish_sent && !backend->summary_received) return;
  }
  CompleteFinish();
}

void OijRouter::BroadcastFinish() {
  finish_broadcast_ = true;
  std::string frame;
  AppendControlFrame(&frame, FrameType::kFinish);
  for (auto& backend : backends_) {
    if (!Eligible(*backend)) continue;
    backend->conn->QueueWrite(frame);
    backend->finish_sent = true;
    FlushBackend(backend.get());
  }
}

void OijRouter::CompleteFinish() {
  merged_summary_ = "cluster run: " + std::to_string(backends_.size()) +
                    " backend(s)\n";
  for (const auto& backend : backends_) {
    merged_summary_ += "--- backend " + std::to_string(backend->id) + " (" +
                       backend->addr.host + ":" +
                       std::to_string(backend->addr.data_port) + ") ---\n";
    if (backend->summary_received) {
      merged_summary_ += backend->summary;
      if (merged_summary_.empty() || merged_summary_.back() != '\n') {
        merged_summary_ += '\n';
      }
    } else {
      merged_summary_ += "(unreachable at finish)\n";
    }
  }
  run_finished_.store(true, std::memory_order_release);

  std::string summary_frame;
  AppendTextFrame(&summary_frame, FrameType::kSummary, merged_summary_);
  std::vector<int> fds;
  fds.reserve(clients_.size());
  for (const auto& [fd, conn] : clients_) {
    if (conn->subscriber || fd == finisher_fd_) fds.push_back(fd);
  }
  for (int fd : fds) {
    auto it = clients_.find(fd);
    if (it == clients_.end()) continue;
    ClientConn* conn = it->second.get();
    conn->tcp.QueueWrite(summary_frame);
    conn->tcp.set_close_after_flush(true);
    FlushClient(conn);
  }
}

// --- admin plane -----------------------------------------------------

void OijRouter::ProcessAdminInput(ClientConn* conn) {
  if (conn->tcp.close_after_flush()) {
    conn->tcp.input().clear();
    return;
  }
  HttpRequest request;
  size_t consumed = 0;
  switch (ParseHttpRequest(conn->tcp.input(), &request, &consumed)) {
    case HttpParseResult::kNeedMore:
      return;
    case HttpParseResult::kBad:
      conn->tcp.input().clear();
      conn->tcp.QueueWrite(BuildHttpResponse(
          400, "text/plain; charset=utf-8", "malformed request\n"));
      conn->tcp.set_close_after_flush(true);
      FlushClient(conn);
      return;
    case HttpParseResult::kOk:
      break;
  }
  conn->tcp.input().erase(0, consumed);
  admin_requests_.fetch_add(1, std::memory_order_relaxed);

  std::string response;
  if (request.method != "GET") {
    response = BuildHttpResponse(405, "text/plain; charset=utf-8",
                                 "method not allowed\n");
  } else if (request.path == "/healthz") {
    size_t eligible = 0;
    for (const auto& backend : backends_) {
      if (Eligible(*backend)) ++eligible;
    }
    if (eligible > 0) {
      response = BuildHttpResponse(200, "text/plain; charset=utf-8",
                                   "ok: " + std::to_string(eligible) + "/" +
                                       std::to_string(backends_.size()) +
                                       " backends\n");
    } else {
      response = BuildHttpResponse(503, "text/plain; charset=utf-8",
                                   "no eligible backends\n");
    }
  } else if (request.path == "/statz") {
    response = BuildHttpResponse(200, "application/json", RenderStatz());
  } else if (request.path == "/metrics") {
    response = BuildHttpResponse(200, "text/plain; version=0.0.4",
                                 RenderMetrics());
  } else {
    response = BuildHttpResponse(404, "text/plain; charset=utf-8",
                                 "not found\n");
  }
  conn->tcp.QueueWrite(response);
  conn->tcp.set_close_after_flush(true);
  FlushClient(conn);
}

std::string OijRouter::RenderStatz() {
  const RouterCounters c = CountersSnapshot();
  std::string j = "{";
  auto num = [&j](const char* key, int64_t value, bool comma = true) {
    j += "\"";
    j += key;
    j += "\":";
    j += std::to_string(value);
    if (comma) j += ",";
  };
  num("clients_accepted", static_cast<int64_t>(c.clients_accepted));
  num("clients_open", static_cast<int64_t>(c.clients_open));
  num("clients_stalled_evicted",
      static_cast<int64_t>(c.clients_stalled_evicted));
  num("subscribers", static_cast<int64_t>(c.subscribers));
  num("subscribers_evicted", static_cast<int64_t>(c.subscribers_evicted));
  num("tuples_in", static_cast<int64_t>(c.tuples_in));
  num("tuples_routed", static_cast<int64_t>(c.tuples_routed));
  num("tuples_queued_sticky",
      static_cast<int64_t>(c.tuples_queued_sticky));
  num("tuples_failed_over", static_cast<int64_t>(c.tuples_failed_over));
  num("tuples_dropped", static_cast<int64_t>(c.tuples_dropped));
  num("watermarks_in", static_cast<int64_t>(c.watermarks_in));
  num("watermarks_broadcast",
      static_cast<int64_t>(c.watermarks_broadcast));
  num("watermarks_ignored", static_cast<int64_t>(c.watermarks_ignored));
  num("acks_received", static_cast<int64_t>(c.acks_received));
  num("results_fanned", static_cast<int64_t>(c.results_fanned));
  num("backend_connects", static_cast<int64_t>(c.backend_connects));
  num("backend_disconnects",
      static_cast<int64_t>(c.backend_disconnects));
  num("backend_retries", static_cast<int64_t>(c.backend_retries));
  num("replayed_tuples", static_cast<int64_t>(c.replayed_tuples));
  num("replay_dropped_tuples",
      static_cast<int64_t>(c.replay_dropped_tuples));
  num("hellos_rejected", static_cast<int64_t>(c.hellos_rejected));
  num("cluster_watermark", c.cluster_watermark);
  num("min_backend_acked", c.min_backend_acked);
  j += "\"run_finished\":";
  j += run_finished_.load(std::memory_order_relaxed) ? "true" : "false";
  j += ",\"backends\":[";
  for (size_t i = 0; i < backends_.size(); ++i) {
    const Backend& b = *backends_[i];
    if (i > 0) j += ",";
    j += "{\"id\":" + std::to_string(b.id);
    j += ",\"state\":\"";
    j += BackendStateName(static_cast<uint8_t>(b.state));
    j += "\",\"healthy\":";
    j += b.health_ok ? "true" : "false";
    j += ",\"durable_exact\":";
    j += b.durable_exact ? "true" : "false";
    j += ",\"acked_watermark\":" + std::to_string(b.acked);
    j += ",\"replay_buffered_tuples\":" +
         std::to_string(b.replay.buffered_tuples());
    j += ",\"replay_dropped_tuples\":" +
         std::to_string(b.replay.dropped_tuples());
    j += ",\"tuples_sent\":" + std::to_string(b.tuples_sent);
    j += ",\"watermarks_sent\":" + std::to_string(b.watermarks_sent);
    j += ",\"acks\":" + std::to_string(b.acks);
    j += ",\"connects\":" + std::to_string(b.connects);
    j += ",\"disconnects\":" + std::to_string(b.disconnects);
    j += ",\"replays\":" + std::to_string(b.replays);
    j += "}";
  }
  j += "]}";
  j += "\n";
  return j;
}

std::string OijRouter::RenderMetrics() {
  const RouterCounters c = CountersSnapshot();
  PrometheusWriter w;
  w.Counter("oij_router_tuples_in_total", "Tuple frames from clients",
            static_cast<double>(c.tuples_in));
  w.Counter("oij_router_tuples_routed_total",
            "Tuples forwarded to a backend",
            static_cast<double>(c.tuples_routed));
  w.Counter("oij_router_tuples_queued_sticky_total",
            "Tuples buffered for a down sticky owner",
            static_cast<double>(c.tuples_queued_sticky));
  w.Counter("oij_router_tuples_failed_over_total",
            "Tuples rerouted off their ring owner",
            static_cast<double>(c.tuples_failed_over));
  w.Counter("oij_router_tuples_dropped_total",
            "Tuples with no eligible backend",
            static_cast<double>(c.tuples_dropped));
  w.Counter("oij_router_watermarks_broadcast_total",
            "Watermarks broadcast to backends",
            static_cast<double>(c.watermarks_broadcast));
  w.Counter("oij_router_acks_total", "Watermark acks from backends",
            static_cast<double>(c.acks_received));
  w.Counter("oij_router_results_fanned_total",
            "Result frames fanned to subscribers",
            static_cast<double>(c.results_fanned));
  w.Counter("oij_router_backend_retries_total",
            "Backend reconnect attempts scheduled",
            static_cast<double>(c.backend_retries));
  w.Counter("oij_router_replayed_tuples_total",
            "Tuples resent to recovered backends",
            static_cast<double>(c.replayed_tuples));
  w.Counter("oij_router_replay_dropped_tuples_total",
            "Replay-buffer tuples lost to overflow or failover",
            static_cast<double>(c.replay_dropped_tuples));
  w.Counter("oij_router_clients_stalled_evicted_total",
            "Clients dropped by the slow-loris sweep",
            static_cast<double>(c.clients_stalled_evicted));
  w.Counter("oij_router_subscribers_evicted_total",
            "Subscribers dropped for egress backlog overflow",
            static_cast<double>(c.subscribers_evicted));
  w.Gauge("oij_router_cluster_watermark",
          "Min-of-backends cluster watermark",
          static_cast<double>(c.cluster_watermark));
  w.Gauge("oij_router_clients_open", "Open client data connections",
          static_cast<double>(c.clients_open));
  for (const auto& backend : backends_) {
    PrometheusLabels labels{{"backend", std::to_string(backend->id)}};
    const HealthChecker::TargetStats hs = health_->StatsOf(backend->id);
    w.Gauge("oij_router_backend_healthy",
            "1 when the backend passes health checks", backend->health_ok,
            labels);
    w.Gauge("oij_router_backend_active",
            "1 when the backend connection is active",
            backend->state == BackendState::kActive ? 1.0 : 0.0, labels);
    w.Gauge("oij_router_backend_acked_watermark",
            "Latest durability-acked watermark",
            static_cast<double>(backend->acked), labels);
    w.Gauge("oij_router_backend_replay_buffered_tuples",
            "Un-acked tuples held for replay",
            static_cast<double>(backend->replay.buffered_tuples()), labels);
    w.Counter("oij_router_backend_health_probes_total",
              "Active health probes", static_cast<double>(hs.probes),
              labels);
    w.Counter("oij_router_backend_health_failures_total",
              "Failed health probes (active + passive)",
              static_cast<double>(hs.failures), labels);
    w.Counter("oij_router_backend_ejections_total",
              "Outlier ejections", static_cast<double>(hs.ejections),
              labels);
    w.Counter("oij_router_backend_readmissions_total",
              "Re-admissions after recovery",
              static_cast<double>(hs.readmissions), labels);
  }
  return w.Take();
}

}  // namespace oij
