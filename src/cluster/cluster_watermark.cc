#include "cluster/cluster_watermark.h"

namespace oij {

void ClusterWatermark::Add(uint32_t backend) {
  acked_.emplace(backend, kMinTimestamp);
}

void ClusterWatermark::Remove(uint32_t backend) { acked_.erase(backend); }

void ClusterWatermark::RecordAck(uint32_t backend, Timestamp acked) {
  const auto it = acked_.find(backend);
  if (it == acked_.end()) return;
  if (acked > it->second) it->second = acked;
}

Timestamp ClusterWatermark::MinAcked() const {
  Timestamp min = kMaxTimestamp;
  for (const auto& [backend, acked] : acked_) {
    if (acked < min) min = acked;
  }
  return min;
}

bool ClusterWatermark::TryAdvance(Timestamp* advanced_to) {
  if (acked_.empty()) return false;
  const Timestamp min = MinAcked();
  if (min <= emitted_) return false;
  emitted_ = min;
  if (advanced_to != nullptr) *advanced_to = min;
  return true;
}

Timestamp ClusterWatermark::AckedOf(uint32_t backend) const {
  const auto it = acked_.find(backend);
  return it != acked_.end() ? it->second : kMinTimestamp;
}

}  // namespace oij
