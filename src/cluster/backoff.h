#ifndef OIJ_CLUSTER_BACKOFF_H_
#define OIJ_CLUSTER_BACKOFF_H_

#include <cstdint>

#include "common/hash.h"

namespace oij {

/// Exponential backoff with deterministic full jitter.
///
/// Delay for failure n is uniform in [base/2, base * 2^n], capped at
/// `max_ms` — the AWS "full jitter" shape, which avoids reconnect
/// stampedes when many peers lose the same backend at once. The jitter
/// stream is seeded, not wall-clock derived, so tests replay exactly.
class Backoff {
 public:
  Backoff(int64_t base_ms, int64_t max_ms, uint64_t seed)
      : base_ms_(base_ms < 1 ? 1 : base_ms),
        max_ms_(max_ms < base_ms_ ? base_ms_ : max_ms),
        rng_(seed) {}

  /// Registers one failure and returns the delay before the next try.
  int64_t NextDelayMs() {
    if (failures_ < 63) ++failures_;
    int64_t ceiling = base_ms_;
    for (uint32_t i = 1; i < failures_ && ceiling < max_ms_; ++i) {
      ceiling *= 2;
    }
    if (ceiling > max_ms_) ceiling = max_ms_;
    const int64_t floor = base_ms_ / 2;
    rng_ = Mix64(rng_);
    const int64_t span = ceiling - floor + 1;
    return floor + static_cast<int64_t>(rng_ % static_cast<uint64_t>(span));
  }

  /// A success: the next failure starts the schedule over.
  void Reset() { failures_ = 0; }

  uint32_t failures() const { return failures_; }

 private:
  int64_t base_ms_;
  int64_t max_ms_;
  uint64_t rng_;
  uint32_t failures_ = 0;
};

}  // namespace oij

#endif  // OIJ_CLUSTER_BACKOFF_H_
