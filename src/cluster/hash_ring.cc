#include "cluster/hash_ring.h"

#include <algorithm>

#include "common/hash.h"

namespace oij {

namespace {
uint64_t VnodePoint(uint32_t backend, uint32_t vnode) {
  // Two rounds decorrelate (backend, vnode) pairs that differ in one
  // coordinate; a single mix of the packed word leaves diagonal
  // structure on small ids.
  return Mix64(Mix64(static_cast<uint64_t>(backend) << 32 | vnode) +
               0x5851f42d4c957f2dULL);
}
}  // namespace

void HashRing::AddBackend(uint32_t id) {
  if (!ids_.insert(id).second) return;
  points_.reserve(points_.size() + vnodes_);
  for (uint32_t v = 0; v < vnodes_; ++v) {
    points_.push_back(Point{VnodePoint(id, v), id});
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::RemoveBackend(uint32_t id) {
  if (ids_.erase(id) == 0) return;
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [id](const Point& p) {
                                 return p.backend == id;
                               }),
                points_.end());
}

size_t HashRing::LowerBound(uint64_t hash) const {
  Point probe{hash, 0};
  const auto it = std::lower_bound(points_.begin(), points_.end(), probe);
  return it == points_.end() ? 0 : static_cast<size_t>(it - points_.begin());
}

int HashRing::PickOwner(Key key) const {
  if (points_.empty()) return -1;
  return static_cast<int>(points_[LowerBound(Mix64(key))].backend);
}

int HashRing::PickEligible(
    Key key, const std::function<bool(uint32_t)>& eligible) const {
  if (points_.empty()) return -1;
  const size_t start = LowerBound(Mix64(key));
  // Walk clockwise; remember verdicts so each backend is asked once.
  std::vector<uint32_t> rejected;
  for (size_t step = 0; step < points_.size(); ++step) {
    const uint32_t candidate =
        points_[(start + step) % points_.size()].backend;
    if (std::find(rejected.begin(), rejected.end(), candidate) !=
        rejected.end()) {
      continue;
    }
    if (eligible(candidate)) return static_cast<int>(candidate);
    rejected.push_back(candidate);
    if (rejected.size() == ids_.size()) break;
  }
  return -1;
}

double HashRing::OwnershipFraction(uint32_t id) const {
  if (points_.empty()) return 0.0;
  int owned = 0;
  for (uint64_t i = 0; i < 4096; ++i) {
    if (PickOwner(static_cast<Key>(i * 0x9e3779b97f4a7c15ULL)) ==
        static_cast<int>(id)) {
      ++owned;
    }
  }
  return owned / 4096.0;
}

}  // namespace oij
