#ifndef OIJ_CLUSTER_HEALTH_CHECKER_H_
#define OIJ_CLUSTER_HEALTH_CHECKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/event_loop.h"
#include "net/timer_queue.h"

namespace oij {

/// Active health-check knobs (Envoy-style outlier thresholds).
struct HealthCheckConfig {
  int64_t interval_ms = 200;  ///< gap between probes of one target
  int64_t timeout_ms = 500;   ///< whole-probe bound (connect + response)
  /// Consecutive failed probes before a healthy target is ejected.
  uint32_t unhealthy_threshold = 2;
  /// Consecutive passing probes before an ejected target is re-admitted.
  uint32_t healthy_threshold = 2;
};

/// Active /healthz poller for the router's backend pool.
///
/// Runs entirely on the owner's event-loop thread: each target gets a
/// repeating probe (non-blocking connect to the backend's admin port,
/// `GET /healthz`, HTTP/1.0 200 = pass) with a per-probe timeout on the
/// shared TimerQueue. Consecutive-failure / consecutive-success
/// thresholds debounce flapping; only threshold crossings invoke the
/// transition callback (ejection / re-admission).
///
/// Passive detection folds in through ReportPassiveFailure: an I/O
/// error on the data path counts like a failed probe immediately, so a
/// crashed backend is ejected at I/O-error speed, not at probe-interval
/// speed.
class HealthChecker {
 public:
  /// `healthy=false` = ejected, `healthy=true` = re-admitted.
  using TransitionCallback = std::function<void(uint32_t id, bool healthy)>;

  HealthChecker(EventLoop* loop, TimerQueue* timers, HealthCheckConfig config,
                TransitionCallback on_transition);
  ~HealthChecker();

  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;

  /// Registers a target (initially healthy — traffic flows until probes
  /// prove otherwise) and schedules its first probe if running.
  void AddTarget(uint32_t id, const std::string& host, uint16_t admin_port);

  /// Schedules the first probe of every registered target.
  void Start();

  /// Cancels timers and aborts in-flight probes.
  void Stop();

  /// Data-path failure evidence: counts as one failed probe now.
  void ReportPassiveFailure(uint32_t id);

  bool IsHealthy(uint32_t id) const;

  struct TargetStats {
    bool healthy = true;
    uint64_t probes = 0;
    uint64_t failures = 0;
    uint64_t ejections = 0;
    uint64_t readmissions = 0;
  };
  TargetStats StatsOf(uint32_t id) const;

 private:
  struct Target {
    uint32_t id = 0;
    std::string host;
    uint16_t port = 0;

    bool healthy = true;
    uint32_t consecutive_fail = 0;
    uint32_t consecutive_ok = 0;
    uint64_t probes = 0;
    uint64_t failures = 0;
    uint64_t ejections = 0;
    uint64_t readmissions = 0;

    // In-flight probe.
    int fd = -1;
    bool request_sent = false;
    std::string response;
    TimerQueue::TimerId timeout_timer = 0;
    TimerQueue::TimerId next_probe_timer = 0;
  };

  void ScheduleProbe(Target* target, int64_t delay_ms);
  void StartProbe(Target* target);
  void OnProbeEvent(Target* target, uint32_t ready);
  void AbortProbe(Target* target);
  void FinishProbe(Target* target, bool pass);
  void ApplyResult(Target* target, bool pass);

  EventLoop* loop_;
  TimerQueue* timers_;
  HealthCheckConfig config_;
  TransitionCallback on_transition_;
  bool running_ = false;
  std::map<uint32_t, Target> targets_;
};

}  // namespace oij

#endif  // OIJ_CLUSTER_HEALTH_CHECKER_H_
