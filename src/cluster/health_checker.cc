#include "cluster/health_checker.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/types.h>

#include "net/socket.h"

namespace oij {

namespace {
constexpr char kProbeRequest[] = "GET /healthz HTTP/1.0\r\n\r\n";
}  // namespace

HealthChecker::HealthChecker(EventLoop* loop, TimerQueue* timers,
                             HealthCheckConfig config,
                             TransitionCallback on_transition)
    : loop_(loop),
      timers_(timers),
      config_(config),
      on_transition_(std::move(on_transition)) {}

HealthChecker::~HealthChecker() { Stop(); }

void HealthChecker::AddTarget(uint32_t id, const std::string& host,
                              uint16_t admin_port) {
  Target& target = targets_[id];
  target.id = id;
  target.host = host;
  target.port = admin_port;
  if (running_) ScheduleProbe(&target, config_.interval_ms);
}

void HealthChecker::Start() {
  if (running_) return;
  running_ = true;
  int64_t stagger = 0;
  for (auto& [id, target] : targets_) {
    // Stagger first probes so N targets do not thundering-herd the
    // admin planes in lockstep forever after.
    ScheduleProbe(&target, stagger);
    stagger += config_.interval_ms / (targets_.empty() ? 1 : targets_.size());
  }
}

void HealthChecker::Stop() {
  if (!running_) return;
  running_ = false;
  for (auto& [id, target] : targets_) {
    AbortProbe(&target);
    if (target.next_probe_timer != 0) {
      timers_->Cancel(target.next_probe_timer);
      target.next_probe_timer = 0;
    }
  }
}

void HealthChecker::ReportPassiveFailure(uint32_t id) {
  const auto it = targets_.find(id);
  if (it == targets_.end()) return;
  ApplyResult(&it->second, false);
}

bool HealthChecker::IsHealthy(uint32_t id) const {
  const auto it = targets_.find(id);
  return it != targets_.end() && it->second.healthy;
}

HealthChecker::TargetStats HealthChecker::StatsOf(uint32_t id) const {
  TargetStats stats;
  const auto it = targets_.find(id);
  if (it == targets_.end()) return stats;
  stats.healthy = it->second.healthy;
  stats.probes = it->second.probes;
  stats.failures = it->second.failures;
  stats.ejections = it->second.ejections;
  stats.readmissions = it->second.readmissions;
  return stats;
}

void HealthChecker::ScheduleProbe(Target* target, int64_t delay_ms) {
  if (!running_) return;
  if (target->next_probe_timer != 0) timers_->Cancel(target->next_probe_timer);
  const uint32_t id = target->id;
  target->next_probe_timer =
      timers_->Schedule(TimerQueue::NowMs(), delay_ms, [this, id] {
        const auto it = targets_.find(id);
        if (it == targets_.end()) return;
        it->second.next_probe_timer = 0;
        StartProbe(&it->second);
      });
}

void HealthChecker::StartProbe(Target* target) {
  if (target->fd >= 0) return;  // previous probe still in flight
  ++target->probes;
  int fd = -1;
  bool in_progress = false;
  const Status s =
      ConnectTcpNonBlocking(target->host, target->port, &fd, &in_progress);
  if (!s.ok()) {
    FinishProbe(target, false);
    return;
  }
  target->fd = fd;
  target->request_sent = false;
  target->response.clear();
  const uint32_t id = target->id;
  loop_->Add(fd, kLoopWritable, [this, id](uint32_t ready) {
    const auto it = targets_.find(id);
    if (it == targets_.end()) return;
    OnProbeEvent(&it->second, ready);
  });
  target->timeout_timer =
      timers_->Schedule(TimerQueue::NowMs(), config_.timeout_ms, [this, id] {
        const auto it = targets_.find(id);
        if (it == targets_.end()) return;
        it->second.timeout_timer = 0;
        FinishProbe(&it->second, false);
      });
}

void HealthChecker::OnProbeEvent(Target* target, uint32_t ready) {
  if (ready & kLoopError) {
    FinishProbe(target, false);
    return;
  }
  if ((ready & kLoopWritable) && !target->request_sent) {
    if (!FinishConnect(target->fd).ok()) {
      FinishProbe(target, false);
      return;
    }
    // The request is a handful of bytes; a kernel that cannot take them
    // on a fresh socket is as good as down.
    const ssize_t sent = ::send(target->fd, kProbeRequest,
                                sizeof(kProbeRequest) - 1, MSG_NOSIGNAL);
    if (sent != static_cast<ssize_t>(sizeof(kProbeRequest) - 1)) {
      FinishProbe(target, false);
      return;
    }
    target->request_sent = true;
    loop_->SetInterest(target->fd, kLoopReadable);
    return;
  }
  if (ready & kLoopReadable) {
    char buf[1024];
    while (true) {
      const ssize_t got = ::recv(target->fd, buf, sizeof(buf), 0);
      if (got > 0) {
        target->response.append(buf, static_cast<size_t>(got));
        if (target->response.size() > 4096) {
          FinishProbe(target, false);  // /healthz is tiny; this is not it
          return;
        }
        continue;
      }
      if (got == 0) {
        // Admin plane closes after the response; parse the status line.
        const bool pass =
            target->response.rfind("HTTP/1.0 200", 0) == 0 ||
            target->response.rfind("HTTP/1.1 200", 0) == 0;
        FinishProbe(target, pass);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // more later
      if (errno == EINTR) continue;
      FinishProbe(target, false);
      return;
    }
  }
}

void HealthChecker::AbortProbe(Target* target) {
  if (target->timeout_timer != 0) {
    timers_->Cancel(target->timeout_timer);
    target->timeout_timer = 0;
  }
  if (target->fd >= 0) {
    loop_->Remove(target->fd);
    CloseFd(target->fd);
    target->fd = -1;
  }
  target->response.clear();
  target->request_sent = false;
}

void HealthChecker::FinishProbe(Target* target, bool pass) {
  AbortProbe(target);
  ApplyResult(target, pass);
  ScheduleProbe(target, config_.interval_ms);
}

void HealthChecker::ApplyResult(Target* target, bool pass) {
  if (pass) {
    target->consecutive_fail = 0;
    ++target->consecutive_ok;
    if (!target->healthy &&
        target->consecutive_ok >= config_.healthy_threshold) {
      target->healthy = true;
      ++target->readmissions;
      if (on_transition_) on_transition_(target->id, true);
    }
  } else {
    ++target->failures;
    target->consecutive_ok = 0;
    ++target->consecutive_fail;
    if (target->healthy &&
        target->consecutive_fail >= config_.unhealthy_threshold) {
      target->healthy = false;
      ++target->ejections;
      if (on_transition_) on_transition_(target->id, false);
    }
  }
}

}  // namespace oij
