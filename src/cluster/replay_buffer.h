#ifndef OIJ_CLUSTER_REPLAY_BUFFER_H_
#define OIJ_CLUSTER_REPLAY_BUFFER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"
#include "stream/generator.h"

namespace oij {

/// Per-backend in-flight buffer for crash-exact rerouting.
///
/// The router appends every tuple it sends (or would send — tuples for
/// a sticky backend that is temporarily down queue here too) into the
/// *open* segment. Broadcasting watermark W seals the open segment at
/// bound W: "these tuples were delivered before W". The backend acks W
/// only after its WAL sync for W, so Ack(W) proves every sealed
/// segment with bound <= W is durable over there and can be dropped
/// here.
///
/// After a backend crash + restart, its hello reply carries the
/// watermark R its recovered state is complete through
/// (recover_to_watermark cuts the WAL exactly there). EncodeUnacked(R)
/// then re-encodes precisely the segments with bound > R plus the open
/// tail — no tuple is both recovered *and* resent, which is what makes
/// rerouting exactly-once instead of at-least-once.
///
/// Watermark values key segments, so the router must only seal at
/// strictly increasing watermarks (it enforces that before
/// broadcasting).
///
/// Memory is bounded by `max_bytes` (approximate, counting tuple
/// payloads): overflow drops the *oldest* sealed segments first and
/// records the loss — at that point exactness degrades to bounded
/// loss, surfaced via dropped_tuples() and the router's metrics.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t max_bytes = 256u << 20)
      : max_bytes_(max_bytes) {}

  /// Records one routed tuple (call at send *or* queue time).
  void Append(const StreamEvent& event);

  /// Seals the open segment at `watermark` (must exceed every earlier
  /// seal; the router enforces monotonicity). An empty open segment
  /// still seals — acks must line up with broadcasts one-to-one.
  void Seal(Timestamp watermark);

  /// Durability ack: drops sealed segments with bound <= `watermark`.
  void Ack(Timestamp watermark);

  /// Re-encodes everything not covered by `recovered_watermark` as wire
  /// frames: each surviving sealed segment's tuples followed by its
  /// watermark, then the open tail's tuples. Returns the tuple count.
  uint64_t EncodeUnacked(Timestamp recovered_watermark,
                         std::string* out) const;

  /// Tuples currently held (sealed + open).
  uint64_t buffered_tuples() const { return buffered_tuples_; }
  uint64_t buffered_bytes() const { return buffered_bytes_; }
  /// Tuples lost to overflow since construction (0 = still exact).
  uint64_t dropped_tuples() const { return dropped_tuples_; }
  /// Highest ack seen (kMinTimestamp before the first).
  Timestamp acked() const { return acked_; }
  size_t sealed_segments() const { return segments_.size(); }

  void Clear();

 private:
  struct Segment {
    Timestamp bound;  ///< watermark this segment was sealed at
    std::vector<StreamEvent> events;
  };

  void DropOldestSealed();

  size_t max_bytes_;
  std::deque<Segment> segments_;   ///< sealed, bound strictly ascending
  std::vector<StreamEvent> open_;  ///< tuples since the last seal
  uint64_t buffered_tuples_ = 0;
  uint64_t buffered_bytes_ = 0;
  uint64_t dropped_tuples_ = 0;
  Timestamp acked_ = kMinTimestamp;
};

}  // namespace oij

#endif  // OIJ_CLUSTER_REPLAY_BUFFER_H_
