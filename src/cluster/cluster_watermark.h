#ifndef OIJ_CLUSTER_CLUSTER_WATERMARK_H_
#define OIJ_CLUSTER_CLUSTER_WATERMARK_H_

#include <cstddef>
#include <cstdint>
#include <map>

#include "common/types.h"

namespace oij {

/// Min-of-backends cluster watermark with per-shard punctuation.
///
/// Each backend acks watermarks independently (after its WAL sync);
/// the cluster-level watermark the router may externalize is the min
/// over *participating* backends' acked values — a result finalized at
/// cluster watermark W is only announced once every shard's state is
/// durable through W.
///
/// The two invariants the dedicated test asserts across an
/// eject/re-admit cycle:
///
///   1. Monotone: emitted() never decreases.
///   2. Safe:     every emission is <= the min of participating
///                backends' acked watermarks at that moment.
///
/// An *ejected* backend keeps participating with its acked value
/// frozen — the cluster watermark stalls rather than run past state an
/// absent shard has not made durable (it resumes when the backend
/// returns and re-acks). Only Remove() — the router's decision that a
/// non-durable backend's keys failed over for good — takes a backend
/// out of the min, and removal can only raise the min, never violate
/// monotonicity.
class ClusterWatermark {
 public:
  /// Registers a participant (initial acked = kMinTimestamp, so the
  /// cluster watermark cannot advance past a backend that has never
  /// acked).
  void Add(uint32_t backend);

  /// Permanently removes a participant (failover of a non-durable
  /// backend). Its frozen ack no longer holds the min down.
  void Remove(uint32_t backend);

  /// Records `backend`'s latest durability ack. Regressions are
  /// ignored (acks are monotone per backend; a recovered backend
  /// re-acks from its cut forward).
  void RecordAck(uint32_t backend, Timestamp acked);

  /// Minimum acked over current participants; kMaxTimestamp when none.
  Timestamp MinAcked() const;

  /// Advances the emitted watermark to MinAcked() when that is
  /// strictly greater; returns true (and the new value) on advance.
  bool TryAdvance(Timestamp* advanced_to);

  Timestamp emitted() const { return emitted_; }
  Timestamp AckedOf(uint32_t backend) const;
  size_t participants() const { return acked_.size(); }

 private:
  std::map<uint32_t, Timestamp> acked_;
  Timestamp emitted_ = kMinTimestamp;
};

}  // namespace oij

#endif  // OIJ_CLUSTER_CLUSTER_WATERMARK_H_
