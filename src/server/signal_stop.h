#ifndef OIJ_SERVER_SIGNAL_STOP_H_
#define OIJ_SERVER_SIGNAL_STOP_H_

#include <atomic>

namespace oij {

/// Process-wide cooperative-shutdown plumbing shared by oij_server and
/// oij_cli: SIGINT/SIGTERM set a flag instead of killing the process, so
/// run loops can drain (FlushPending + Finish) and report a summary
/// instead of dying mid-run. Installing twice is harmless; the flag is
/// never reset (these binaries exit after one drain).

/// Installs the handlers and returns the flag they set. The pointer is
/// valid for the life of the process (it targets a function-local
/// static), so it can be handed to PipelineConfig::stop directly.
const std::atomic<bool>* InstallStopSignalHandlers();

/// True once SIGINT or SIGTERM has been received.
bool StopSignalRaised();

}  // namespace oij

#endif  // OIJ_SERVER_SIGNAL_STOP_H_
