#include "server/signal_stop.h"

#include <csignal>

namespace oij {

namespace {

std::atomic<bool>& StopFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void OnStopSignal(int /*signum*/) {
  // Async-signal-safe: a relaxed store on a lock-free atomic.
  StopFlag().store(true, std::memory_order_relaxed);
}

}  // namespace

const std::atomic<bool>* InstallStopSignalHandlers() {
  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  return &StopFlag();
}

bool StopSignalRaised() {
  return StopFlag().load(std::memory_order_relaxed);
}

}  // namespace oij
