#ifndef OIJ_SERVER_ADMIN_H_
#define OIJ_SERVER_ADMIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/watchdog.h"
#include "core/pipeline.h"
#include "join/engine.h"
#include "net/http.h"
#include "wal/wal.h"

namespace oij {

/// Point-in-time server counters rendered by the admin endpoint. The
/// server snapshots its atomics into this plain struct so rendering is
/// pure (unit-testable without sockets).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t admin_requests = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frames_in = 0;
  uint64_t tuples_in = 0;
  uint64_t watermarks_in = 0;
  uint64_t frames_rejected = 0;
  uint64_t results_streamed = 0;
  uint64_t subscribers = 0;
  /// Subscribers force-dropped because their write backlog exceeded
  /// ServerConfig::max_subscriber_backlog_bytes (stalled/half-open
  /// peers must not wedge the egress path for everyone else).
  uint64_t subscribers_evicted = 0;
  /// kWatermarkAck frames sent to hello'd peers that requested them.
  uint64_t watermark_acks = 0;
  /// kHello frames refused (bad magic/version, or not the first frame).
  uint64_t hellos_rejected = 0;
};

/// Everything the admin pages render, assembled by the server thread.
struct AdminSnapshot {
  std::string engine_name;
  std::string workload_name;
  ServerCounters counters;

  /// Live engine progress (queue depths, consumed, accepted, watermarks).
  WatchdogSample progress;

  /// Live engine health; not-OK renders /healthz as 503.
  Status health;

  double uptime_seconds = 0.0;

  /// True while the engine replays its WAL after a restart. Renders
  /// /healthz as 503 ("recovering") and /statz state "recovering" so
  /// load balancers hold traffic until replay completes.
  bool recovering = false;

  /// Durability counters (WalStats.enabled is false when the engine has
  /// no WAL; the wal sections are omitted then).
  WalStats wal;

  /// Seconds since the last completed snapshot, computed by the server
  /// from WalStats.last_snapshot_mono_us; negative = no snapshot yet
  /// (the gauge is omitted from /metrics and rendered null in /statz
  /// then — exporting the -1 sentinel as a Prometheus sample poisons
  /// age-based alert rules).
  double snapshot_age_seconds = -1.0;

  /// Standing-query catalog rows (engine->QuerySnapshot()); empty for
  /// engines without a catalog.
  std::vector<QueryStatsRow> queries;

  /// Set once the run has been finalized; `final_run` then carries the
  /// merged stats (latency histogram, degradation counters, throughput).
  bool run_finished = false;
  RunResult final_run;
};

/// Prometheus text-exposition body for GET /metrics.
std::string RenderPrometheusMetrics(const AdminSnapshot& snap);

/// RunSummary-style JSON body for GET /statz.
std::string RenderStatzJson(const AdminSnapshot& snap);

/// Body for GET /healthz; `status_code` becomes 200 or 503.
std::string RenderHealthz(const AdminSnapshot& snap, int* status_code);

/// JSON body for GET /queries: the standing-query catalog with per-query
/// counters.
std::string RenderQueriesJson(const std::vector<QueryStatsRow>& queries);

/// Parses the flat-JSON body of POST /queries:
///
///   {"id": "q1", "pre": 1000, "fol": 0, "agg": "sum",
///    "late": "drop_and_count"}
///
/// `id` is required; pre/fol/agg/late default to `defaults` (the primary
/// query's spec). lateness/emit are accepted but must equal the
/// defaults' values — the shared-index contract pins them — and that
/// mismatch, like any unknown key, duplicate key, or type error, returns
/// InvalidArgument with a message naming the offending field.
Status ParseQuerySpecJson(std::string_view body, const QuerySpec& defaults,
                          std::string* id, QuerySpec* spec);

/// Maps a catalog Status to an admin-plane HTTP status code
/// (InvalidArgument/ParseError/FailedPrecondition -> 400, NotFound ->
/// 404, anything else -> 500).
int HttpStatusForStatus(const Status& status);

/// Complete HTTP response carrying the structured error body
/// {"error": {"code": "...", "message": "..."}} for a failed catalog
/// mutation.
std::string BuildQueryErrorResponse(const Status& status);

/// Routes one parsed admin request to the pages above and wraps the
/// result in a complete HTTP/1.0 response (404 on unknown paths, 405 on
/// unsupported methods). GET only — the mutating /queries verbs touch
/// the live engine and are intercepted by the server loop before this.
std::string HandleAdminRequest(const AdminSnapshot& snap,
                               const HttpRequest& request);

}  // namespace oij

#endif  // OIJ_SERVER_ADMIN_H_
