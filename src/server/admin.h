#ifndef OIJ_SERVER_ADMIN_H_
#define OIJ_SERVER_ADMIN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/watchdog.h"
#include "core/pipeline.h"
#include "net/http.h"
#include "wal/wal.h"

namespace oij {

/// Point-in-time server counters rendered by the admin endpoint. The
/// server snapshots its atomics into this plain struct so rendering is
/// pure (unit-testable without sockets).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t admin_requests = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frames_in = 0;
  uint64_t tuples_in = 0;
  uint64_t watermarks_in = 0;
  uint64_t frames_rejected = 0;
  uint64_t results_streamed = 0;
  uint64_t subscribers = 0;
  /// Subscribers force-dropped because their write backlog exceeded
  /// ServerConfig::max_subscriber_backlog_bytes (stalled/half-open
  /// peers must not wedge the egress path for everyone else).
  uint64_t subscribers_evicted = 0;
  /// kWatermarkAck frames sent to hello'd peers that requested them.
  uint64_t watermark_acks = 0;
  /// kHello frames refused (bad magic/version, or not the first frame).
  uint64_t hellos_rejected = 0;
};

/// Everything the admin pages render, assembled by the server thread.
struct AdminSnapshot {
  std::string engine_name;
  std::string workload_name;
  ServerCounters counters;

  /// Live engine progress (queue depths, consumed, accepted, watermarks).
  WatchdogSample progress;

  /// Live engine health; not-OK renders /healthz as 503.
  Status health;

  double uptime_seconds = 0.0;

  /// True while the engine replays its WAL after a restart. Renders
  /// /healthz as 503 ("recovering") and /statz state "recovering" so
  /// load balancers hold traffic until replay completes.
  bool recovering = false;

  /// Durability counters (WalStats.enabled is false when the engine has
  /// no WAL; the wal sections are omitted then).
  WalStats wal;

  /// Seconds since the last completed snapshot, computed by the server
  /// from WalStats.last_snapshot_mono_us; negative = no snapshot yet.
  double snapshot_age_seconds = -1.0;

  /// Set once the run has been finalized; `final_run` then carries the
  /// merged stats (latency histogram, degradation counters, throughput).
  bool run_finished = false;
  RunResult final_run;
};

/// Prometheus text-exposition body for GET /metrics.
std::string RenderPrometheusMetrics(const AdminSnapshot& snap);

/// RunSummary-style JSON body for GET /statz.
std::string RenderStatzJson(const AdminSnapshot& snap);

/// Body for GET /healthz; `status_code` becomes 200 or 503.
std::string RenderHealthz(const AdminSnapshot& snap, int* status_code);

/// Routes one parsed admin request to the pages above and wraps the
/// result in a complete HTTP/1.0 response (404 on unknown paths, 405 on
/// non-GET methods).
std::string HandleAdminRequest(const AdminSnapshot& snap,
                               const HttpRequest& request);

}  // namespace oij

#endif  // OIJ_SERVER_ADMIN_H_
