#ifndef OIJ_SERVER_SERVER_H_
#define OIJ_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/engine_factory.h"
#include "core/pipeline.h"
#include "metrics/throughput.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/wire_codec.h"
#include "server/admin.h"

namespace oij {

/// Construction knobs for a network-served join run.
struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t data_port = 0;   ///< 0 picks an ephemeral port
  uint16_t admin_port = 0;  ///< 0 picks an ephemeral port

  EngineKind engine = EngineKind::kScaleOij;
  QuerySpec query;
  EngineOptions options;

  /// Label shown on the admin pages (preset/config name).
  std::string workload_name = "network";

  /// Upper bound on one subscriber's unflushed egress backlog. A peer
  /// that stops reading (stalled, half-open, silently gone) is evicted
  /// once its queued bytes cross this, so one dead subscriber can never
  /// wedge the loop or grow memory without bound while the run keeps
  /// serving everyone else.
  size_t max_subscriber_backlog_bytes = 64u << 20;

  /// Recover from `options.durability.wal_dir` before serving traffic.
  /// Replay runs on the loop thread interleaved with admin polls, so
  /// /healthz answers 503 "recovering" and data tuples are rejected
  /// until the replayed state is live. No-op with durability off or an
  /// empty WAL directory.
  bool recover = true;
};

/// TCP serving layer around one JoinEngine run.
///
/// Threading model (DESIGN.md § Serving layer): the server's event-loop
/// thread IS the engine's single driver thread — every Push /
/// SignalWatermark / FlushPending / Finish happens there, so the SWMR
/// contract, the LatenessGate, and the overload policies apply to
/// network traffic exactly as they do to in-process runs. Joiner threads
/// deliver results into a thread-safe egress buffer the loop drains to
/// subscribed connections.
///
/// Data plane (wire_codec.h): clients send kTuple/kWatermark frames,
/// optionally kSubscribe (streamed kResult frames), and kFinish, which
/// finalizes the engine and answers with a kSummary frame to every
/// subscriber and to the finisher. Malformed frames get a kError frame
/// and a close, and are counted in frames_rejected.
///
/// Admin plane, on the same loop: HTTP/1.0 GET /metrics (Prometheus
/// text), /healthz (engine health, 200/503), /statz (JSON).
class OijServer {
 public:
  explicit OijServer(const ServerConfig& config);
  ~OijServer();

  OijServer(const OijServer&) = delete;
  OijServer& operator=(const OijServer&) = delete;

  /// Binds both listeners, starts the engine, and spawns the loop
  /// thread. On failure nothing is left running.
  Status Start();

  /// Graceful drain (SIGINT/SIGTERM path): if the run is still live it
  /// is finalized (FlushPending + Sync + Finish) — Sync forces every
  /// accepted WAL byte to disk before the joiners stop, so a drained
  /// shutdown never loses logged state regardless of fsync policy —
  /// pending summaries/results are flushed to subscribers, then the
  /// loop exits and all sockets close. Idempotent.
  void Shutdown();

  uint16_t data_port() const { return data_port_; }
  uint16_t admin_port() const { return admin_port_; }

  bool run_finished() const {
    return run_finished_.load(std::memory_order_acquire);
  }

  /// Server-side counters (safe from any thread).
  ServerCounters CountersSnapshot() const;

  /// Merged stats of the finalized run; valid once run_finished().
  RunResult FinalRun() const;

 private:
  struct Conn {
    explicit Conn(int fd) : tcp(fd) {}
    TcpConnection tcp;
    WireDecoder decoder;
    bool is_admin = false;
    bool subscriber = false;
    /// Handshake state: a kHello is only legal as the first frame; a
    /// peer that sent one may request per-watermark acks.
    bool saw_frame = false;
    bool wants_acks = false;
    uint64_t tuples_received = 0;
  };

  /// Joiner-thread entry: encodes results into the egress buffer.
  class EgressSink;

  void ServeLoop();
  void OnDataAccept();
  void OnAdminAccept();
  void OnConnEvent(int fd, uint32_t ready);
  void ProcessDataInput(Conn* conn);
  void ProcessAdminInput(Conn* conn);
  /// POST /queries: parse the JSON body, register the standing query on
  /// the loop (= engine driver) thread, answer 200 or a structured 400.
  std::string HandleAddQueryRequest(const HttpRequest& request);
  /// DELETE /queries/<id>: deactivate the standing query.
  std::string HandleRemoveQueryRequest(const std::string& id);
  bool HandleFrame(Conn* conn, const WireFrame& frame);
  void FinalizeRun();
  /// Moves buffered result frames to every subscriber's write queue.
  void DrainEgress();
  void SendError(Conn* conn, const std::string& message);
  void UpdateInterest(Conn* conn);
  void FlushConn(Conn* conn);
  void CloseConn(int fd);
  AdminSnapshot BuildSnapshot();
  /// Best-effort final flush of pending writes before the loop exits.
  void FlushAllBeforeExit();

  ServerConfig config_;
  std::unique_ptr<EgressSink> sink_;
  std::unique_ptr<JoinEngine> engine_;

  EventLoop loop_;
  TcpListener data_listener_;
  TcpListener admin_listener_;
  uint16_t data_port_ = 0;
  uint16_t admin_port_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Loop-thread-only state.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  ThroughputMeter meter_;
  bool meter_started_ = false;
  int64_t started_ns_ = 0;
  std::string summary_text_;  // set by FinalizeRun

  // Cross-thread state.
  std::atomic<bool> run_finished_{false};
  mutable std::mutex final_run_mu_;
  RunResult final_run_;  // guarded by final_run_mu_

  // Counters (loop thread writes; any thread reads).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_open_{0};
  std::atomic<uint64_t> admin_requests_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> tuples_in_{0};
  std::atomic<uint64_t> watermarks_in_{0};
  std::atomic<uint64_t> frames_rejected_{0};
  std::atomic<uint64_t> results_streamed_{0};
  std::atomic<uint64_t> subscribers_{0};
  std::atomic<uint64_t> subscribers_evicted_{0};
  std::atomic<uint64_t> watermark_acks_{0};
  std::atomic<uint64_t> hellos_rejected_{0};
};

}  // namespace oij

#endif  // OIJ_SERVER_SERVER_H_
