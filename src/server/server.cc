#include "server/server.h"

#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/run_summary.h"

namespace oij {

namespace {

bool SameSpec(const QuerySpec& a, const QuerySpec& b) {
  return a.window.pre == b.window.pre && a.window.fol == b.window.fol &&
         a.lateness_us == b.lateness_us && a.agg == b.agg &&
         a.emit_mode == b.emit_mode && a.late_policy == b.late_policy;
}

}  // namespace

/// Joiner threads call OnResult concurrently; frames are encoded under a
/// mutex into one egress buffer the loop thread swaps out. The wakeup is
/// only issued on the empty->non-empty transition, so a result burst
/// costs one pipe write, not one per result.
class OijServer::EgressSink : public ResultSink {
 public:
  explicit EgressSink(EventLoop* loop) : loop_(loop) {}

  void OnResult(const JoinResult& result) override {
    bool was_empty;
    {
      std::lock_guard<std::mutex> lock(mu_);
      was_empty = buffer_.empty();
      AppendResultFrame(&buffer_, result);
      ++pending_;
    }
    if (was_empty) loop_->Wakeup();
  }

  /// Swaps out everything buffered; `count` reports how many results.
  std::string Take(uint64_t* count) {
    std::lock_guard<std::mutex> lock(mu_);
    *count = pending_;
    pending_ = 0;
    std::string out = std::move(buffer_);
    buffer_.clear();
    return out;
  }

 private:
  EventLoop* loop_;
  std::mutex mu_;
  std::string buffer_;
  uint64_t pending_ = 0;
};

OijServer::OijServer(const ServerConfig& config) : config_(config) {}

OijServer::~OijServer() { Shutdown(); }

Status OijServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (!loop_.ok()) return Status::Internal("event loop init failed");

  Status s = data_listener_.Listen(config_.bind_address, config_.data_port);
  if (!s.ok()) return s;
  s = admin_listener_.Listen(config_.bind_address, config_.admin_port);
  if (!s.ok()) {
    data_listener_.Close();
    return s;
  }
  data_port_ = data_listener_.port();
  admin_port_ = admin_listener_.port();

  sink_ = std::make_unique<EgressSink>(&loop_);
  engine_ =
      CreateEngine(config_.engine, config_.query, config_.options, sink_.get());
  s = engine_->Start();
  if (!s.ok()) {
    data_listener_.Close();
    admin_listener_.Close();
    engine_.reset();
    return s;
  }
  if (config_.recover) {
    // Build the replay plan here (loop thread not yet running, so this
    // still satisfies the single-driver contract); a corrupt manifest or
    // snapshot fails Start rather than serving from partial state. The
    // replay itself is stepped by ServeLoop.
    s = engine_->BeginRecovery();
    if (!s.ok()) {
      engine_->Finish();
      data_listener_.Close();
      admin_listener_.Close();
      engine_.reset();
      return s;
    }
  }

  loop_.Add(data_listener_.fd(), kLoopReadable,
            [this](uint32_t) { OnDataAccept(); });
  loop_.Add(admin_listener_.fd(), kLoopReadable,
            [this](uint32_t) { OnAdminAccept(); });

  started_ns_ = MonotonicNowNs();
  started_ = true;
  stop_.store(false, std::memory_order_release);
  // The loop thread takes over as the engine's single driver thread; the
  // thread-creation edge orders it after Start().
  loop_thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void OijServer::Shutdown() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  loop_.Wakeup();
  if (loop_thread_.joinable()) loop_thread_.join();
  started_ = false;
}

ServerCounters OijServer::CountersSnapshot() const {
  ServerCounters c;
  c.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  c.connections_open = connections_open_.load(std::memory_order_relaxed);
  c.admin_requests = admin_requests_.load(std::memory_order_relaxed);
  c.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  c.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  c.frames_in = frames_in_.load(std::memory_order_relaxed);
  c.tuples_in = tuples_in_.load(std::memory_order_relaxed);
  c.watermarks_in = watermarks_in_.load(std::memory_order_relaxed);
  c.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  c.results_streamed = results_streamed_.load(std::memory_order_relaxed);
  c.subscribers = subscribers_.load(std::memory_order_relaxed);
  c.subscribers_evicted =
      subscribers_evicted_.load(std::memory_order_relaxed);
  c.watermark_acks = watermark_acks_.load(std::memory_order_relaxed);
  c.hellos_rejected = hellos_rejected_.load(std::memory_order_relaxed);
  return c;
}

RunResult OijServer::FinalRun() const {
  std::lock_guard<std::mutex> lock(final_run_mu_);
  return final_run_;
}

void OijServer::ServeLoop() {
  // Drive WAL replay in chunks on the loop thread (the engine's single
  // driver thread), interleaving short polls so the admin plane answers
  // during recovery (/healthz 503 "recovering") while HandleFrame
  // rejects data tuples. Replay is bounded by the log suffix, so stop_
  // is honored only after the replayed state is complete — exiting
  // mid-replay would finalize a half-restored engine.
  while (engine_->Recovering()) {
    engine_->RecoveryStep(4096);
    loop_.Poll(/*timeout_ms=*/0);
    DrainEgress();
  }
  while (!stop_.load(std::memory_order_acquire)) {
    loop_.Poll(/*timeout_ms=*/50);
    DrainEgress();
  }
  if (!run_finished_.load(std::memory_order_acquire)) FinalizeRun();
  FlushAllBeforeExit();

  loop_.Remove(data_listener_.fd());
  loop_.Remove(admin_listener_.fd());
  data_listener_.Close();
  admin_listener_.Close();
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) CloseConn(fd);
}

void OijServer::OnDataAccept() {
  data_listener_.AcceptAll([this](int fd) {
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>(fd);
    Conn* raw = conn.get();
    conns_.emplace(fd, std::move(conn));
    loop_.Add(fd, kLoopReadable,
              [this, fd](uint32_t ready) { OnConnEvent(fd, ready); });
    (void)raw;
  });
}

void OijServer::OnAdminAccept() {
  admin_listener_.AcceptAll([this](int fd) {
    auto conn = std::make_unique<Conn>(fd);
    conn->is_admin = true;
    conns_.emplace(fd, std::move(conn));
    loop_.Add(fd, kLoopReadable,
              [this, fd](uint32_t ready) { OnConnEvent(fd, ready); });
  });
}

void OijServer::OnConnEvent(int fd, uint32_t ready) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();

  if (ready & kLoopError) {
    CloseConn(fd);
    return;
  }
  if (ready & kLoopWritable) {
    if (conn->tcp.FlushWrites() == TcpConnection::IoResult::kError) {
      CloseConn(fd);
      return;
    }
    if (conn->tcp.close_after_flush() && !conn->tcp.wants_write()) {
      CloseConn(fd);
      return;
    }
    UpdateInterest(conn);
  }
  if (ready & kLoopReadable) {
    size_t got = 0;
    const TcpConnection::IoResult r = conn->tcp.ReadReady(&got);
    bytes_in_.fetch_add(got, std::memory_order_relaxed);
    if (r == TcpConnection::IoResult::kError) {
      CloseConn(fd);
      return;
    }
    // Process whatever arrived even on EOF: the peer may have sent its
    // final frames and closed its write end in one burst.
    if (conn->is_admin) {
      ProcessAdminInput(conn);
    } else {
      ProcessDataInput(conn);
    }
    if (conns_.count(fd) == 0) return;  // processing closed it
    if (r == TcpConnection::IoResult::kEof) {
      if (conn->tcp.wants_write()) {
        // Half-close: let queued output (e.g. a summary) drain first.
        conn->tcp.set_close_after_flush(true);
        UpdateInterest(conn);
      } else {
        CloseConn(fd);
      }
    }
  }
}

void OijServer::ProcessDataInput(Conn* conn) {
  if (conn->tcp.close_after_flush()) {
    conn->tcp.input().clear();  // already tearing down; drop new bytes
    return;
  }
  WireFrame frame;
  std::string& in = conn->tcp.input();
  conn->decoder.Feed(in);
  in.clear();
  while (true) {
    const WireDecoder::Result r = conn->decoder.Next(&frame);
    if (r == WireDecoder::Result::kNeedMore) return;
    if (r == WireDecoder::Result::kCorrupt) {
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, conn->decoder.error().ToString());
      return;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (!HandleFrame(conn, frame)) return;
  }
}

bool OijServer::HandleFrame(Conn* conn, const WireFrame& frame) {
  const bool first_frame = !conn->saw_frame;
  conn->saw_frame = true;
  switch (frame.type) {
    case FrameType::kHello: {
      // Handshake is optional (bare clients keep working), but when a
      // peer does send one it must lead, and a mismatched magic/version
      // gets a clean kError — the frame itself decoded fine, so the
      // refusal never poisons the decoder or strands buffered bytes.
      if (!first_frame) {
        hellos_rejected_.fetch_add(1, std::memory_order_relaxed);
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "hello must be the first frame");
        return false;
      }
      if (!frame.hello.Compatible()) {
        hellos_rejected_.fetch_add(1, std::memory_order_relaxed);
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn,
                  "incompatible wire protocol: peer magic=" +
                      std::to_string(frame.hello.magic) + " version=" +
                      std::to_string(frame.hello.version) + ", want magic=" +
                      std::to_string(kWireMagic) + " version=" +
                      std::to_string(kWireVersion));
        return false;
      }
      if (engine_->Recovering()) {
        // A well-meaning peer this early is told to come back; the
        // router treats it like a failed connect and backs off.
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "engine recovering; retry later");
        return false;
      }
      conn->wants_acks = (frame.hello.flags & kHelloWantAcks) != 0;
      HelloInfo reply;
      reply.recovered_watermark = engine_->RecoveredWatermark();
      const DurabilityOptions& d = config_.options.durability;
      if (d.enabled() && d.fsync == FsyncPolicy::kPerBatch &&
          d.recover_to_watermark) {
        reply.flags |= kHelloDurableExact;
      }
      std::string out;
      AppendHelloFrame(&out, reply);
      const int fd = conn->tcp.fd();
      conn->tcp.QueueWrite(out);
      FlushConn(conn);
      return conns_.count(fd) != 0;
    }
    case FrameType::kWatermarkAck:
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, "server-to-client frame type received from client");
      return false;
    case FrameType::kTuple: {
      tuples_in_.fetch_add(1, std::memory_order_relaxed);
      ++conn->tuples_received;
      if (run_finished_.load(std::memory_order_relaxed)) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "run already finalized; tuple rejected");
        return false;
      }
      if (engine_->Recovering()) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "engine recovering; tuple rejected");
        return false;
      }
      if (!meter_started_) {
        meter_.Start();
        meter_started_ = true;
      }
      engine_->Push(frame.event, MonotonicNowUs());
      return true;
    }
    case FrameType::kWatermark: {
      watermarks_in_.fetch_add(1, std::memory_order_relaxed);
      const bool applied = !run_finished_.load(std::memory_order_relaxed) &&
                           !engine_->Recovering();
      if (applied) engine_->SignalWatermark(frame.watermark);
      if (applied && conn->wants_acks) {
        // SignalWatermark has already passed the WAL commit barrier
        // (under kPerBatch, a full sync), so this ack certifies every
        // earlier tuple on this connection as durable — the router
        // trims its replay buffer on it.
        std::string out;
        AppendWatermarkAckFrame(&out, frame.watermark,
                                conn->tuples_received);
        watermark_acks_.fetch_add(1, std::memory_order_relaxed);
        const int fd = conn->tcp.fd();
        conn->tcp.QueueWrite(out);
        FlushConn(conn);
        return conns_.count(fd) != 0;
      }
      return true;
    }
    case FrameType::kSubscribe:
      if (!conn->subscriber) {
        conn->subscriber = true;
        subscribers_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    case FrameType::kFinish: {
      if (engine_->Recovering()) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "engine recovering; finish rejected");
        return false;
      }
      const int fd = conn->tcp.fd();
      if (!run_finished_.load(std::memory_order_relaxed)) FinalizeRun();
      // FinalizeRun may have flushed-and-closed this very connection (it
      // was a subscriber); re-resolve before touching it again.
      auto it = conns_.find(fd);
      if (it == conns_.end()) return false;
      conn = it->second.get();
      // The summary answers the finisher too (subscribers already got
      // theirs inside FinalizeRun); either way this connection is done.
      if (!conn->subscriber) {
        std::string out;
        AppendTextFrame(&out, FrameType::kSummary, summary_text_);
        conn->tcp.QueueWrite(out);
      }
      conn->tcp.set_close_after_flush(true);
      FlushConn(conn);
      return false;
    }
    case FrameType::kAddQuery: {
      if (engine_->Recovering()) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "engine recovering; catalog change rejected");
        return false;
      }
      if (run_finished_.load(std::memory_order_relaxed)) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "run already finalized; catalog change rejected");
        return false;
      }
      // The router re-broadcasts catalog frames to backends it
      // reconnects, so a duplicate add carrying an identical spec is an
      // idempotent no-op; a conflicting spec under the same id is a real
      // error.
      for (const QueryStatsRow& row : engine_->QuerySnapshot()) {
        if (row.active && row.id == frame.query_id &&
            SameSpec(row.spec, frame.query_spec)) {
          return true;
        }
      }
      const Status s = engine_->AddQuery(frame.query_id, frame.query_spec);
      if (!s.ok()) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "add-query rejected: " + s.ToString());
        return false;
      }
      return true;
    }
    case FrameType::kRemoveQuery: {
      if (engine_->Recovering()) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "engine recovering; catalog change rejected");
        return false;
      }
      if (run_finished_.load(std::memory_order_relaxed)) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "run already finalized; catalog change rejected");
        return false;
      }
      const Status s = engine_->RemoveQuery(frame.query_id);
      // NotFound = this remove already landed (router re-delivery);
      // treating it as success keeps catalog frames idempotent.
      if (!s.ok() && s.code() != Status::Code::kNotFound) {
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, "remove-query rejected: " + s.ToString());
        return false;
      }
      return true;
    }
    case FrameType::kResult:
    case FrameType::kSummary:
    case FrameType::kError:
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, "server-to-client frame type received from client");
      return false;
  }
  return true;
}

void OijServer::FinalizeRun() {
  // Net thread == driver thread: flush staged transport batches, then
  // drain and stop the joiners. Results keep arriving in the egress sink
  // until Finish returns; the drain below then delivers every one of
  // them before any summary frame, so a subscriber always sees
  // [results..., summary].
  engine_->FlushPending();
  // Durability barrier for the graceful-drain path: every accepted
  // record reaches disk before the joiners stop, so a SIGTERM'd server
  // loses nothing regardless of the configured fsync policy.
  engine_->Sync();
  RunResult run;
  run.stats = engine_->Finish();
  if (meter_started_) meter_.Stop();
  run.tuples = run.stats.input_tuples;
  run.elapsed_seconds = meter_started_ ? meter_.elapsed_seconds() : 0.0;
  run.throughput_tps =
      run.elapsed_seconds > 0.0
          ? static_cast<double>(run.tuples) / run.elapsed_seconds
          : 0.0;

  {
    std::lock_guard<std::mutex> lock(final_run_mu_);
    final_run_ = run;
  }
  summary_text_ =
      SummarizeRun(std::string(EngineKindName(config_.engine)), run);
  run_finished_.store(true, std::memory_order_release);

  DrainEgress();
  std::string summary_frame;
  AppendTextFrame(&summary_frame, FrameType::kSummary, summary_text_);
  // FlushConn may close (erase) a connection, so never flush while
  // range-iterating the map.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    if (conn->subscriber) fds.push_back(fd);
  }
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    conn->tcp.QueueWrite(summary_frame);
    conn->tcp.set_close_after_flush(true);
    FlushConn(conn);
  }
}

void OijServer::DrainEgress() {
  uint64_t count = 0;
  const std::string frames = sink_->Take(&count);
  if (frames.empty()) return;
  bool delivered = false;
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    if (conn->subscriber && !conn->tcp.close_after_flush()) fds.push_back(fd);
  }
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    it->second->tcp.QueueWrite(frames);
    FlushConn(it->second.get());
    // A subscriber that has stopped reading (stalled or silently gone)
    // accumulates backlog; past the bound it is evicted so the run
    // keeps serving the live ones. An outright write error was already
    // closed by FlushConn above.
    auto again = conns_.find(fd);
    if (again != conns_.end() &&
        again->second->tcp.pending_write_bytes() >
            config_.max_subscriber_backlog_bytes) {
      subscribers_evicted_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(fd);
      continue;
    }
    delivered = true;
  }
  if (delivered) {
    results_streamed_.fetch_add(count, std::memory_order_relaxed);
  }
}

void OijServer::SendError(Conn* conn, const std::string& message) {
  std::string out;
  AppendTextFrame(&out, FrameType::kError, message);
  conn->tcp.QueueWrite(out);
  conn->tcp.set_close_after_flush(true);
  FlushConn(conn);
}

void OijServer::UpdateInterest(Conn* conn) {
  uint32_t interest = 0;
  if (!conn->tcp.close_after_flush()) interest |= kLoopReadable;
  if (conn->tcp.wants_write()) interest |= kLoopWritable;
  loop_.SetInterest(conn->tcp.fd(), interest);
}

void OijServer::FlushConn(Conn* conn) {
  const size_t before = conn->tcp.pending_write_bytes();
  if (conn->tcp.FlushWrites() == TcpConnection::IoResult::kError) {
    CloseConn(conn->tcp.fd());
    return;
  }
  const size_t after = conn->tcp.pending_write_bytes();
  bytes_out_.fetch_add(before - after, std::memory_order_relaxed);
  if (conn->tcp.close_after_flush() && !conn->tcp.wants_write()) {
    CloseConn(conn->tcp.fd());
    return;
  }
  UpdateInterest(conn);
}

void OijServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second->subscriber) {
    subscribers_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (!it->second->is_admin) {
    connections_open_.fetch_sub(1, std::memory_order_relaxed);
  }
  loop_.Remove(fd);
  conns_.erase(it);  // TcpConnection's destructor closes the fd
}

AdminSnapshot OijServer::BuildSnapshot() {
  AdminSnapshot snap;
  snap.engine_name = std::string(EngineKindName(config_.engine));
  snap.workload_name = config_.workload_name;
  snap.counters = CountersSnapshot();
  snap.progress = engine_ != nullptr ? engine_->SampleProgress()
                                     : WatchdogSample{};
  snap.health = engine_ != nullptr ? engine_->Health() : Status::OK();
  if (engine_ != nullptr) {
    snap.recovering = engine_->Recovering();
    snap.queries = engine_->QuerySnapshot();
    snap.wal = engine_->SampleWal();
    if (snap.wal.last_snapshot_mono_us > 0) {
      snap.snapshot_age_seconds =
          static_cast<double>(MonotonicNowUs() -
                              snap.wal.last_snapshot_mono_us) /
          1e6;
    }
  }
  snap.uptime_seconds =
      static_cast<double>(MonotonicNowNs() - started_ns_) / 1e9;
  snap.run_finished = run_finished_.load(std::memory_order_acquire);
  if (snap.run_finished) {
    std::lock_guard<std::mutex> lock(final_run_mu_);
    snap.final_run = final_run_;
  }
  return snap;
}

void OijServer::ProcessAdminInput(Conn* conn) {
  if (conn->tcp.close_after_flush()) {
    conn->tcp.input().clear();
    return;
  }
  HttpRequest request;
  size_t consumed = 0;
  switch (ParseHttpRequest(conn->tcp.input(), &request, &consumed)) {
    case HttpParseResult::kNeedMore:
      return;
    case HttpParseResult::kBad:
      conn->tcp.input().clear();
      conn->tcp.QueueWrite(BuildHttpResponse(
          400, "text/plain; charset=utf-8", "malformed request\n"));
      conn->tcp.set_close_after_flush(true);
      FlushConn(conn);
      return;
    case HttpParseResult::kOk:
      break;
  }
  conn->tcp.input().erase(0, consumed);
  admin_requests_.fetch_add(1, std::memory_order_relaxed);
  // The catalog-mutating verbs run here, on the loop thread — which is
  // the engine's single driver thread, so AddQuery/RemoveQuery need no
  // extra synchronization. Everything else routes to the pure renderer.
  std::string response;
  if (request.method == "POST" && request.path == "/queries") {
    response = HandleAddQueryRequest(request);
  } else if (request.method == "DELETE" &&
             request.path.rfind("/queries/", 0) == 0) {
    response = HandleRemoveQueryRequest(request.path.substr(9));
  } else {
    response = HandleAdminRequest(BuildSnapshot(), request);
  }
  conn->tcp.QueueWrite(response);
  conn->tcp.set_close_after_flush(true);
  FlushConn(conn);
}

std::string OijServer::HandleAddQueryRequest(const HttpRequest& request) {
  if (engine_->Recovering()) {
    return BuildHttpResponse(
        503, "application/json",
        "{\"error\":{\"code\":\"Unavailable\","
        "\"message\":\"engine recovering; retry later\"}}\n");
  }
  if (run_finished_.load(std::memory_order_relaxed)) {
    return BuildQueryErrorResponse(
        Status::FailedPrecondition("run already finalized"));
  }
  std::string id;
  QuerySpec spec;
  Status s = ParseQuerySpecJson(request.body, config_.query, &id, &spec);
  if (!s.ok()) return BuildQueryErrorResponse(s);
  s = engine_->AddQuery(id, spec);
  if (!s.ok()) return BuildQueryErrorResponse(s);
  // AddQuery validated the id against [A-Za-z0-9_.-]{1,64}, so embedding
  // it unescaped is safe.
  return BuildHttpResponse(200, "application/json",
                           "{\"added\":\"" + id + "\"}\n");
}

std::string OijServer::HandleRemoveQueryRequest(const std::string& id) {
  if (engine_->Recovering()) {
    return BuildHttpResponse(
        503, "application/json",
        "{\"error\":{\"code\":\"Unavailable\","
        "\"message\":\"engine recovering; retry later\"}}\n");
  }
  if (run_finished_.load(std::memory_order_relaxed)) {
    return BuildQueryErrorResponse(
        Status::FailedPrecondition("run already finalized"));
  }
  const Status s = engine_->RemoveQuery(id);
  if (!s.ok()) return BuildQueryErrorResponse(s);
  return BuildHttpResponse(200, "application/json",
                           "{\"removed\":\"" + id + "\"}\n");
}

void OijServer::FlushAllBeforeExit() {
  // A short, bounded courtesy window so final summaries reach slow
  // subscribers; anything still stuck afterwards is abandoned.
  const int64_t deadline = MonotonicNowNs() + 500'000'000;  // 500 ms
  while (MonotonicNowNs() < deadline) {
    bool pending = false;
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (!conn->tcp.wants_write()) continue;
      FlushConn(conn);
      auto again = conns_.find(fd);
      if (again != conns_.end() && again->second->tcp.wants_write()) {
        pending = true;
      }
    }
    if (!pending) return;
    loop_.Poll(/*timeout_ms=*/10);
  }
}

}  // namespace oij
