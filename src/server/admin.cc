#include "server/admin.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

#include "core/run_summary.h"
#include "metrics/prometheus.h"

namespace oij {

namespace {

/// Minimal append-style JSON builder (objects/arrays nested by hand at
/// the call site; this only handles correct escaping and number forms).
class JsonOut {
 public:
  void Raw(std::string_view s) { out_.append(s); }

  void Key(std::string_view name) {
    String(name);  // String() emits the separating comma
    out_ += ":";
    pending_comma_ = false;
  }

  void String(std::string_view s) {
    Comma();
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
    pending_comma_ = true;
  }

  void Number(double v) {
    Comma();
    if (!std::isfinite(v)) {
      Raw("null");
    } else if (v == std::floor(v) && std::abs(v) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", v);
      Raw(buf);
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      Raw(buf);
    }
    pending_comma_ = true;
  }

  void Number(uint64_t v) { Number(static_cast<double>(v)); }
  void Number(int64_t v) { Number(static_cast<double>(v)); }

  void Bool(bool v) {
    Comma();
    Raw(v ? "true" : "false");
    pending_comma_ = true;
  }

  void Null() {
    Comma();
    Raw("null");
    pending_comma_ = true;
  }

  void Open(char bracket) {
    Comma();
    out_ += bracket;
    pending_comma_ = false;
  }
  void Close(char bracket) {
    out_ += bracket;
    pending_comma_ = true;
  }

  std::string Take() { return std::move(out_); }

 private:
  void Comma() {
    if (pending_comma_) out_ += ',';
    pending_comma_ = false;
  }

  std::string out_;
  bool pending_comma_ = false;
};

/// Emits the standing-query catalog as a JSON array (shared by /statz
/// and /queries).
void AppendQueryRows(JsonOut& j, const std::vector<QueryStatsRow>& queries) {
  j.Open('[');
  for (const QueryStatsRow& q : queries) {
    j.Open('{');
    j.Key("id");
    j.String(q.id);
    j.Key("ord");
    j.Number(static_cast<uint64_t>(q.ord));
    j.Key("active");
    j.Bool(q.active);
    j.Key("pre");
    j.Number(static_cast<int64_t>(q.spec.window.pre));
    j.Key("fol");
    j.Number(static_cast<int64_t>(q.spec.window.fol));
    j.Key("lateness");
    j.Number(static_cast<int64_t>(q.spec.lateness_us));
    j.Key("agg");
    j.String(AggKindName(q.spec.agg));
    j.Key("emit");
    j.String(EmitModeName(q.spec.emit_mode));
    j.Key("late_policy");
    j.String(LatePolicyName(q.spec.late_policy));
    j.Key("results");
    j.Number(q.results);
    j.Key("late");
    j.Open('{');
    j.Key("tuples");
    j.Number(q.late.tuples);
    j.Key("joined");
    j.Number(q.late.joined);
    j.Key("dropped");
    j.Number(q.late.dropped);
    j.Key("side_channel");
    j.Number(q.late.side_channel);
    j.Close('}');
    j.Close('}');
  }
  j.Close(']');
}

}  // namespace

std::string RenderPrometheusMetrics(const AdminSnapshot& snap) {
  PrometheusWriter w;
  const PrometheusLabels run_labels = {{"engine", snap.engine_name},
                                       {"workload", snap.workload_name}};

  w.Gauge("oij_up", "1 while the server is serving", 1.0, run_labels);
  w.Gauge("oij_uptime_seconds", "Seconds since the server started",
          snap.uptime_seconds);
  w.Gauge("oij_healthy", "1 while the engine health probe reports OK",
          snap.health.ok() ? 1.0 : 0.0);
  w.Gauge("oij_run_finished", "1 once the run has been finalized",
          snap.run_finished ? 1.0 : 0.0);
  w.Gauge("oij_recovering", "1 while the engine is replaying its WAL",
          snap.recovering ? 1.0 : 0.0);

  const ServerCounters& c = snap.counters;
  w.Counter("oij_connections_accepted_total",
            "Data-plane connections accepted",
            static_cast<double>(c.connections_accepted));
  w.Gauge("oij_connections_open", "Data-plane connections currently open",
          static_cast<double>(c.connections_open));
  w.Counter("oij_admin_requests_total", "Admin HTTP requests served",
            static_cast<double>(c.admin_requests));
  w.Counter("oij_ingest_bytes_total", "Bytes received on the data plane",
            static_cast<double>(c.bytes_in));
  w.Counter("oij_egress_bytes_total", "Bytes written on the data plane",
            static_cast<double>(c.bytes_out));
  w.Counter("oij_frames_total", "Well-formed wire frames decoded",
            static_cast<double>(c.frames_in));
  w.Counter("oij_frames_rejected_total",
            "Malformed frames that closed their connection",
            static_cast<double>(c.frames_rejected));
  w.Counter("oij_ingest_tuples_total", "Tuple frames ingested",
            static_cast<double>(c.tuples_in));
  w.Counter("oij_ingest_watermarks_total", "Watermark frames ingested",
            static_cast<double>(c.watermarks_in));
  w.Counter("oij_results_streamed_total",
            "Result frames queued to subscribers",
            static_cast<double>(c.results_streamed));
  w.Gauge("oij_subscribers", "Connections subscribed to results",
          static_cast<double>(c.subscribers));
  w.Counter("oij_subscribers_evicted_total",
            "Subscribers dropped for exceeding the egress backlog bound",
            static_cast<double>(c.subscribers_evicted));
  w.Counter("oij_watermark_acks_total",
            "Watermark acknowledgements sent to hello'd peers",
            static_cast<double>(c.watermark_acks));
  w.Counter("oij_hellos_rejected_total",
            "Handshake frames refused (magic/version/order)",
            static_cast<double>(c.hellos_rejected));

  // Live engine progress: router intake and the per-joiner rings.
  w.Counter("oij_engine_accepted_tuples_total",
            "Tuples the engine's router accepted",
            static_cast<double>(snap.progress.pushed));
  w.Counter("oij_engine_watermarks_total",
            "Watermark punctuations signaled to the engine",
            static_cast<double>(snap.progress.watermarks));
  for (size_t j = 0; j < snap.progress.queue_depths.size(); ++j) {
    w.Gauge("oij_joiner_queue_depth",
            "Router->joiner ring occupancy (events)",
            static_cast<double>(snap.progress.queue_depths[j]),
            {{"joiner", std::to_string(j)}});
  }
  for (size_t j = 0; j < snap.progress.consumed.size(); ++j) {
    w.Counter("oij_joiner_consumed_total", "Events processed per joiner",
              static_cast<double>(snap.progress.consumed[j]),
              {{"joiner", std::to_string(j)}});
  }

  // Allocator gauges (live; zero unless the engine runs pooled_alloc).
  w.Gauge("oij_arena_bytes",
          "Slab bytes reserved by the joiner-owned node arenas",
          static_cast<double>(snap.progress.arena_bytes));
  w.Gauge("oij_arena_live_nodes", "Nodes resident in the node arenas",
          static_cast<double>(snap.progress.arena_live_nodes));
  w.Gauge("oij_ebr_retired_backlog",
          "Nodes retired to EBR and awaiting epoch drain",
          static_cast<double>(snap.progress.ebr_retired_backlog));
  w.Counter("oij_arena_slab_recycles_total",
            "Fully-dead slabs returned to the arena empty pool",
            static_cast<double>(snap.progress.arena_slab_recycles));

  // NUMA placement (src/topo/). The node-count gauge always exports so
  // dashboards can tell "flat machine" from "not scraping"; the per-node
  // and per-joiner series appear only when a placement plan is active.
  w.Gauge("oij_numa_nodes", "NUMA nodes the engine's placement plan spans",
          static_cast<double>(snap.progress.numa_nodes));
  w.Gauge("oij_numa_active",
          "1 while joiners run pinned under a NUMA placement plan",
          snap.progress.numa_active ? 1.0 : 0.0);
  if (snap.progress.numa_active) {
    for (size_t j = 0; j < snap.progress.numa_pin_cpus.size(); ++j) {
      w.Gauge("oij_numa_joiner_cpu",
              "CPU each joiner thread is pinned to (-1 = unpinned)",
              static_cast<double>(snap.progress.numa_pin_cpus[j]),
              {{"joiner", std::to_string(j)}});
    }
    for (size_t n = 0; n < snap.progress.per_node_arena_bytes.size(); ++n) {
      w.Gauge("oij_numa_node_arena_bytes",
              "Arena slab bytes reserved by joiners of each NUMA node",
              static_cast<double>(snap.progress.per_node_arena_bytes[n]),
              {{"node", std::to_string(n)}});
    }
    for (size_t n = 0;
         n < snap.progress.per_node_arena_live_nodes.size(); ++n) {
      w.Gauge("oij_numa_node_arena_live_nodes",
              "Index nodes resident in each NUMA node's arenas",
              static_cast<double>(
                  snap.progress.per_node_arena_live_nodes[n]),
              {{"node", std::to_string(n)}});
    }
    w.Counter("oij_numa_cross_replications_total",
              "Partition replicas the rebalancer placed on a remote node",
              static_cast<double>(snap.progress.numa_cross_replications));
    w.Counter("oij_numa_cross_dispatches_total",
              "Tuple dispatches routed off the partition leader's node",
              static_cast<double>(snap.progress.numa_cross_dispatches));
  }

  // Standing-query catalog (one sample set per query ever registered;
  // removed queries keep exporting with active=0 so their counters do
  // not vanish mid-scrape).
  for (const QueryStatsRow& q : snap.queries) {
    const PrometheusLabels ql = {{"query", q.id}};
    w.Gauge("oij_query_active",
            "1 while the standing query accepts new base tuples",
            q.active ? 1.0 : 0.0, ql);
  }
  for (const QueryStatsRow& q : snap.queries) {
    w.Counter("oij_query_results_total",
              "Join results emitted per standing query",
              static_cast<double>(q.results), {{"query", q.id}});
  }
  for (const QueryStatsRow& q : snap.queries) {
    w.Counter("oij_query_late_total",
              "Lateness-bound violations observed per standing query",
              static_cast<double>(q.late.tuples), {{"query", q.id}});
  }

  // Durability (absent entirely when the engine runs without a WAL).
  if (snap.wal.enabled) {
    const WalStats& wal = snap.wal;
    w.Counter("oij_wal_appended_records_total",
              "Records appended to the write-ahead log",
              static_cast<double>(wal.appended_records));
    w.Counter("oij_wal_appended_bytes",
              "Bytes appended to the write-ahead log",
              static_cast<double>(wal.appended_bytes));
    w.Gauge("oij_wal_synced_records",
            "Appended records known durable; appended - synced bounds "
            "crash loss",
            static_cast<double>(wal.synced_records));
    w.Counter("oij_wal_fsyncs_total", "fsync calls issued by group commit",
              static_cast<double>(wal.fsyncs));
    w.Counter("oij_wal_fsync_failures_total",
              "Injected fsync failures (disk-fault harness)",
              static_cast<double>(wal.fsync_failures));
    w.Counter("oij_wal_short_writes_total",
              "Injected short writes (disk-fault harness)",
              static_cast<double>(wal.short_writes));
    w.Counter("oij_snapshots_total", "Snapshot epochs committed",
              static_cast<double>(wal.snapshots_taken));
    // Omitted until the first snapshot commits: exporting the -1.0
    // "never" sentinel as a real sample reads as a negative age and
    // poisons `oij_snapshot_age_seconds > X` alert rules.
    if (snap.snapshot_age_seconds >= 0.0) {
      w.Gauge("oij_snapshot_age_seconds",
              "Seconds since the last committed snapshot",
              snap.snapshot_age_seconds);
    }
    w.Counter("oij_wal_replay_records",
              "Records replayed through ingest during recovery",
              static_cast<double>(wal.replay_records));
    w.Counter("oij_wal_torn_records_total",
              "Torn or corrupt tail records discarded during recovery",
              static_cast<double>(wal.torn_records));
    w.Gauge("oij_recovery_duration_us",
            "Wall time of the last crash recovery (0 = none ran)",
            static_cast<double>(wal.recovery_duration_us));
  }

  if (snap.run_finished) {
    const RunResult& run = snap.final_run;
    const EngineStats& st = run.stats;
    w.Counter("oij_run_input_tuples_total",
              "Input tuples of the finalized run",
              static_cast<double>(run.tuples));
    w.Counter("oij_run_results_total", "Results of the finalized run",
              static_cast<double>(st.results));
    w.Gauge("oij_run_elapsed_seconds", "Wall time of the finalized run",
            run.elapsed_seconds);
    w.Gauge("oij_run_throughput_tps",
            "Input tuples per second of the finalized run",
            run.throughput_tps);

    w.Histogram("oij_result_latency_us",
                "Result latency (arrival to emit, microseconds)",
                st.latency);
    // Summary gauges alongside the histogram; the Percentile <= max
    // invariant established in the recorder carries through verbatim.
    for (double q : {0.5, 0.9, 0.99}) {
      char qbuf[8];
      std::snprintf(qbuf, sizeof(qbuf), "%g", q);
      w.Gauge("oij_result_latency_quantile_us",
              "Result latency summary quantiles",
              static_cast<double>(st.latency.Percentile(q)),
              {{"quantile", qbuf}});
    }
    w.Gauge("oij_result_latency_max_us", "Maximum observed result latency",
            static_cast<double>(st.latency.max_us()));

    w.Counter("oij_late_tuples_total",
              "Lateness-bound violations by disposition",
              static_cast<double>(st.late.joined),
              {{"disposition", "joined"}});
    w.Counter("oij_late_tuples_total",
              "Lateness-bound violations by disposition",
              static_cast<double>(st.late.dropped),
              {{"disposition", "dropped"}});
    w.Counter("oij_late_tuples_total",
              "Lateness-bound violations by disposition",
              static_cast<double>(st.late.side_channel),
              {{"disposition", "side_channel"}});
    w.Counter("oij_overload_dropped_total",
              "Tuples lost to backpressure",
              static_cast<double>(st.overload_dropped));
    w.Counter("oij_overload_shed_total",
              "Tuples shed by the kShedOldest policy",
              static_cast<double>(st.overload_shed));
    w.Counter("oij_control_lost_total",
              "Watermark/flush punctuations lost to stop/deadline",
              static_cast<double>(st.control_lost));
  }
  return w.Take();
}

std::string RenderStatzJson(const AdminSnapshot& snap) {
  JsonOut j;
  j.Open('{');
  j.Key("state");
  j.String(snap.recovering ? "recovering"
                           : (snap.run_finished ? "finished" : "serving"));
  j.Key("engine");
  j.String(snap.engine_name);
  j.Key("workload");
  j.String(snap.workload_name);
  j.Key("uptime_seconds");
  j.Number(snap.uptime_seconds);

  j.Key("health");
  j.Open('{');
  j.Key("ok");
  j.Bool(snap.health.ok());
  j.Key("status");
  j.String(snap.health.ToString());
  j.Close('}');

  const ServerCounters& c = snap.counters;
  j.Key("server");
  j.Open('{');
  j.Key("connections_accepted");
  j.Number(c.connections_accepted);
  j.Key("connections_open");
  j.Number(c.connections_open);
  j.Key("admin_requests");
  j.Number(c.admin_requests);
  j.Key("bytes_in");
  j.Number(c.bytes_in);
  j.Key("bytes_out");
  j.Number(c.bytes_out);
  j.Key("frames_in");
  j.Number(c.frames_in);
  j.Key("frames_rejected");
  j.Number(c.frames_rejected);
  j.Key("tuples_in");
  j.Number(c.tuples_in);
  j.Key("watermarks_in");
  j.Number(c.watermarks_in);
  j.Key("results_streamed");
  j.Number(c.results_streamed);
  j.Key("subscribers");
  j.Number(c.subscribers);
  j.Key("subscribers_evicted");
  j.Number(c.subscribers_evicted);
  j.Key("watermark_acks");
  j.Number(c.watermark_acks);
  j.Key("hellos_rejected");
  j.Number(c.hellos_rejected);
  j.Close('}');

  j.Key("engine_progress");
  j.Open('{');
  j.Key("accepted_tuples");
  j.Number(snap.progress.pushed);
  j.Key("watermarks");
  j.Number(snap.progress.watermarks);
  j.Key("queue_depths");
  j.Open('[');
  for (size_t d : snap.progress.queue_depths) {
    j.Number(static_cast<uint64_t>(d));
  }
  j.Close(']');
  j.Key("consumed");
  j.Open('[');
  for (uint64_t v : snap.progress.consumed) j.Number(v);
  j.Close(']');
  j.Key("memory");
  j.Open('{');
  j.Key("arena_bytes");
  j.Number(snap.progress.arena_bytes);
  j.Key("arena_live_nodes");
  j.Number(snap.progress.arena_live_nodes);
  j.Key("ebr_retired_backlog");
  j.Number(snap.progress.ebr_retired_backlog);
  j.Key("arena_slab_recycles");
  j.Number(snap.progress.arena_slab_recycles);
  j.Close('}');
  j.Key("numa");
  j.Open('{');
  j.Key("active");
  j.Bool(snap.progress.numa_active);
  j.Key("nodes");
  j.Number(static_cast<uint64_t>(snap.progress.numa_nodes));
  j.Key("pin_cpus");
  j.Open('[');
  for (int cpu : snap.progress.numa_pin_cpus) {
    j.Number(static_cast<int64_t>(cpu));
  }
  j.Close(']');
  j.Key("joiner_node");
  j.Open('[');
  for (uint32_t n : snap.progress.numa_joiner_node) {
    j.Number(static_cast<uint64_t>(n));
  }
  j.Close(']');
  j.Key("per_node_arena_bytes");
  j.Open('[');
  for (uint64_t v : snap.progress.per_node_arena_bytes) j.Number(v);
  j.Close(']');
  j.Key("per_node_arena_live_nodes");
  j.Open('[');
  for (uint64_t v : snap.progress.per_node_arena_live_nodes) j.Number(v);
  j.Close(']');
  j.Key("cross_replications");
  j.Number(snap.progress.numa_cross_replications);
  j.Key("cross_dispatches");
  j.Number(snap.progress.numa_cross_dispatches);
  j.Close('}');
  j.Close('}');

  if (!snap.queries.empty()) {
    j.Key("queries");
    AppendQueryRows(j, snap.queries);
  }

  if (snap.wal.enabled) {
    const WalStats& wal = snap.wal;
    j.Key("wal");
    j.Open('{');
    j.Key("recovering");
    j.Bool(snap.recovering);
    j.Key("appended_records");
    j.Number(wal.appended_records);
    j.Key("appended_bytes");
    j.Number(wal.appended_bytes);
    j.Key("synced_records");
    j.Number(wal.synced_records);
    j.Key("fsyncs");
    j.Number(wal.fsyncs);
    j.Key("fsync_failures");
    j.Number(wal.fsync_failures);
    j.Key("short_writes");
    j.Number(wal.short_writes);
    j.Key("snapshots_taken");
    j.Number(wal.snapshots_taken);
    j.Key("snapshot_records");
    j.Number(wal.snapshot_records);
    j.Key("snapshot_age_seconds");
    if (snap.snapshot_age_seconds >= 0.0) {
      j.Number(snap.snapshot_age_seconds);
    } else {
      j.Null();  // no snapshot yet; -1 would read as a real age
    }
    j.Key("replay_records");
    j.Number(wal.replay_records);
    j.Key("replay_watermarks");
    j.Number(wal.replay_watermarks);
    j.Key("torn_records");
    j.Number(wal.torn_records);
    j.Key("recovery_duration_us");
    j.Number(wal.recovery_duration_us);
    j.Close('}');
  }

  if (snap.run_finished) {
    const RunResult& run = snap.final_run;
    const EngineStats& st = run.stats;
    j.Key("run");
    j.Open('{');
    j.Key("tuples");
    j.Number(run.tuples);
    j.Key("elapsed_seconds");
    j.Number(run.elapsed_seconds);
    j.Key("throughput_tps");
    j.Number(run.throughput_tps);
    j.Key("results");
    j.Number(st.results);
    j.Key("latency_us");
    j.Open('{');
    j.Key("p50");
    j.Number(st.latency.Percentile(0.50));
    j.Key("p90");
    j.Number(st.latency.Percentile(0.90));
    j.Key("p99");
    j.Number(st.latency.Percentile(0.99));
    j.Key("max");
    j.Number(st.latency.max_us());
    j.Key("mean");
    j.Number(st.latency.mean_us());
    j.Close('}');
    j.Key("late");
    j.Open('{');
    j.Key("tuples");
    j.Number(st.late.tuples);
    j.Key("dropped");
    j.Number(st.late.dropped);
    j.Key("side_channel");
    j.Number(st.late.side_channel);
    j.Key("joined");
    j.Number(st.late.joined);
    j.Close('}');
    j.Key("overload");
    j.Open('{');
    j.Key("dropped");
    j.Number(st.overload_dropped);
    j.Key("shed");
    j.Number(st.overload_shed);
    j.Key("control_lost");
    j.Number(st.control_lost);
    j.Close('}');
    j.Key("memory");
    j.Open('{');
    j.Key("pooled");
    j.Bool(st.mem.pooled);
    j.Key("arena_reserved_bytes");
    j.Number(st.mem.arena_reserved_bytes);
    j.Key("arena_live_nodes");
    j.Number(st.mem.arena_live_nodes);
    j.Key("arena_allocations");
    j.Number(st.mem.arena_allocations);
    j.Key("arena_slab_recycles");
    j.Number(st.mem.arena_slab_recycles);
    j.Key("ebr_retired_backlog");
    j.Number(st.mem.ebr_retired_backlog);
    j.Close('}');
    j.Key("numa");
    j.Open('{');
    j.Key("active");
    j.Bool(st.numa_active);
    j.Key("nodes");
    j.Number(static_cast<uint64_t>(st.numa_nodes));
    j.Key("per_node_arena_bytes");
    j.Open('[');
    for (uint64_t v : st.numa_node_arena_bytes) j.Number(v);
    j.Close(']');
    j.Key("per_node_arena_live_nodes");
    j.Open('[');
    for (uint64_t v : st.numa_node_arena_live_nodes) j.Number(v);
    j.Close(']');
    j.Key("cross_replications");
    j.Number(st.numa_cross_replications);
    j.Key("cross_dispatches");
    j.Number(st.numa_cross_dispatches);
    j.Close('}');
    j.Key("warnings");
    j.Open('[');
    for (const std::string& w : st.warnings) j.String(w);
    j.Close(']');
    j.Close('}');
  }
  j.Close('}');
  std::string out = j.Take();
  out += '\n';
  return out;
}

std::string RenderQueriesJson(const std::vector<QueryStatsRow>& queries) {
  JsonOut j;
  j.Open('{');
  j.Key("queries");
  AppendQueryRows(j, queries);
  j.Close('}');
  std::string out = j.Take();
  out += '\n';
  return out;
}

namespace {

/// Cursor over the flat-JSON object POST /queries accepts. Only the
/// shapes that body can legally contain: one object of string/integer
/// values, no nesting, escape handling limited to \" \\ \/ (ids are
/// [A-Za-z0-9_.-] anyway, so anything fancier is rejected downstream).
struct JsonCursor {
  std::string_view in;
  size_t pos = 0;

  void SkipWs() {
    while (pos < in.size() &&
           (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
            in[pos] == '\r')) {
      ++pos;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos < in.size() && in[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return pos < in.size() && in[pos] == c;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos < in.size()) {
      const char c = in[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= in.size()) return false;
        const char e = in[pos++];
        if (e != '"' && e != '\\' && e != '/') return false;
        out->push_back(e);
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }
  bool ParseInt(int64_t* out) {
    SkipWs();
    const size_t start = pos;
    if (pos < in.size() && in[pos] == '-') ++pos;
    const size_t digits = pos;
    while (pos < in.size() && in[pos] >= '0' && in[pos] <= '9') ++pos;
    if (pos == digits) {
      pos = start;
      return false;
    }
    int64_t v = 0;
    for (size_t i = digits; i < pos; ++i) {
      if (v > (INT64_MAX - (in[i] - '0')) / 10) {
        pos = start;
        return false;
      }
      v = v * 10 + (in[i] - '0');
    }
    *out = in[start] == '-' ? -v : v;
    return true;
  }
};

}  // namespace

Status ParseQuerySpecJson(std::string_view body, const QuerySpec& defaults,
                          std::string* id, QuerySpec* spec) {
  *spec = defaults;
  id->clear();
  bool saw_id = false;
  bool saw_lateness = false;
  bool saw_emit = false;
  Timestamp lateness = defaults.lateness_us;
  std::string emit_name;

  JsonCursor c{body};
  if (!c.Consume('{')) {
    return Status::InvalidArgument("body must be a JSON object");
  }
  std::vector<std::string> seen;
  if (!c.Peek('}')) {
    do {
      std::string key;
      if (!c.ParseString(&key)) {
        return Status::InvalidArgument("expected a string key");
      }
      for (const std::string& s : seen) {
        if (s == key) {
          return Status::InvalidArgument("duplicate field '" + key + "'");
        }
      }
      seen.push_back(key);
      if (!c.Consume(':')) {
        return Status::InvalidArgument("expected ':' after '" + key + "'");
      }
      if (key == "id" || key == "agg" || key == "emit" || key == "late") {
        std::string value;
        if (!c.ParseString(&value)) {
          return Status::InvalidArgument("field '" + key +
                                         "' must be a string");
        }
        if (key == "id") {
          *id = value;
          saw_id = true;
        } else if (key == "agg") {
          const Status s = AggKindFromName(value, &spec->agg);
          if (!s.ok()) return Status::InvalidArgument(s.message());
        } else if (key == "emit") {
          emit_name = value;
          saw_emit = true;
        } else {
          const Status s = LatePolicyFromName(value, &spec->late_policy);
          if (!s.ok()) return Status::InvalidArgument(s.message());
        }
      } else if (key == "pre" || key == "fol" || key == "lateness") {
        int64_t value = 0;
        if (!c.ParseInt(&value)) {
          return Status::InvalidArgument("field '" + key +
                                         "' must be an integer");
        }
        if (key == "pre") {
          spec->window.pre = value;
        } else if (key == "fol") {
          spec->window.fol = value;
        } else {
          lateness = value;
          saw_lateness = true;
        }
      } else {
        return Status::InvalidArgument("unknown field '" + key + "'");
      }
    } while (c.Consume(','));
  }
  if (!c.Consume('}')) {
    return Status::InvalidArgument("malformed JSON object");
  }
  c.SkipWs();
  if (c.pos != body.size()) {
    return Status::InvalidArgument("trailing bytes after the JSON object");
  }
  if (!saw_id) {
    return Status::InvalidArgument("missing required field 'id'");
  }
  // The shared index pins the tuple-admission properties: every standing
  // query shares the primary's lateness bound and emit mode, so a body
  // may restate them only verbatim.
  if (saw_lateness && lateness != defaults.lateness_us) {
    return Status::InvalidArgument(
        "field 'lateness' must match the primary query (" +
        std::to_string(defaults.lateness_us) + ")");
  }
  if (saw_emit) {
    EmitMode mode;
    const Status s = EmitModeFromName(emit_name, &mode);
    if (!s.ok()) return Status::InvalidArgument(s.message());
    if (mode != defaults.emit_mode) {
      return Status::InvalidArgument(
          "field 'emit' must match the primary query (" +
          std::string(EmitModeName(defaults.emit_mode)) + ")");
    }
  }
  return Status::OK();
}

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return 200;
    case Status::Code::kInvalidArgument:
    case Status::Code::kParseError:
    case Status::Code::kFailedPrecondition:
      return 400;
    case Status::Code::kNotFound:
      return 404;
    default:
      return 500;
  }
}

std::string BuildQueryErrorResponse(const Status& status) {
  JsonOut j;
  j.Open('{');
  j.Key("error");
  j.Open('{');
  j.Key("code");
  j.String(CodeName(status.code()));
  j.Key("message");
  j.String(status.message());
  j.Close('}');
  j.Close('}');
  std::string body = j.Take();
  body += '\n';
  return BuildHttpResponse(HttpStatusForStatus(status), "application/json",
                           body);
}

std::string RenderHealthz(const AdminSnapshot& snap, int* status_code) {
  if (snap.recovering) {
    // Not ready: the engine is still replaying its WAL. 503 keeps load
    // balancers away until the replayed state is live.
    *status_code = 503;
    return "recovering\n";
  }
  if (snap.health.ok()) {
    *status_code = 200;
    return "ok\n";
  }
  *status_code = 503;
  return snap.health.ToString() + "\n";
}

std::string HandleAdminRequest(const AdminSnapshot& snap,
                               const HttpRequest& request) {
  if (request.method != "GET") {
    return BuildHttpResponse(405, "text/plain; charset=utf-8",
                             "only GET is supported\n");
  }
  if (request.path == "/metrics") {
    return BuildHttpResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                             RenderPrometheusMetrics(snap));
  }
  if (request.path == "/healthz") {
    int code = 200;
    const std::string body = RenderHealthz(snap, &code);
    return BuildHttpResponse(code, "text/plain; charset=utf-8", body);
  }
  if (request.path == "/statz") {
    return BuildHttpResponse(200, "application/json", RenderStatzJson(snap));
  }
  if (request.path == "/queries") {
    return BuildHttpResponse(200, "application/json",
                             RenderQueriesJson(snap.queries));
  }
  if (request.path == "/") {
    return BuildHttpResponse(
        200, "text/plain; charset=utf-8",
        "oij_server admin endpoints: /metrics /healthz /statz /queries\n");
  }
  return BuildHttpResponse(404, "text/plain; charset=utf-8",
                           "unknown path: " + request.path + "\n");
}

}  // namespace oij
