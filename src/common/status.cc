#include "common/status.h"

namespace oij {

std::string_view CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(CodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace oij
