#ifndef OIJ_COMMON_SPSC_QUEUE_H_
#define OIJ_COMMON_SPSC_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace oij {

/// Outcome of a bounded/stoppable push attempt.
enum class PushResult : uint8_t {
  kOk = 0,
  kTimedOut,  ///< ring stayed full until the deadline
  kStopped,   ///< the stop token was raised while waiting
};

/// Bounded single-producer single-consumer ring buffer.
///
/// This is the transport between the router (source) thread and each joiner
/// thread. Head and tail live on separate cache lines; the producer and the
/// consumer each cache the opposite index to avoid ping-ponging the shared
/// lines on every operation (the classic Vyukov/folly SPSC layout).
///
/// Blocking variants back off with std::this_thread::yield() rather than
/// spinning hot: benchmark machines are frequently oversubscribed (more
/// joiners than cores), and a hot spin would starve the very thread being
/// waited on.
template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Non-blocking push. Returns false when the ring is full.
  bool TryPush(const T& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    buffer_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Blocking push; yields while full. Prefer PushBounded in any path
  /// where the consumer may have died (see ParallelEngineBase::Finish).
  void Push(const T& value) { PushBounded(value); }

  /// Push with an optional absolute deadline and an optional stop token.
  ///
  /// `deadline_ns` (MonotonicNowNs timeline): < 0 waits indefinitely,
  /// 0 is a single attempt, > 0 retries until that instant. `stop`, when
  /// non-null, is polled while waiting and aborts the push as soon as it
  /// reads true — this is how a dead consumer stops deadlocking the
  /// router during shutdown.
  PushResult PushBounded(const T& value, int64_t deadline_ns = -1,
                         const std::atomic<bool>* stop = nullptr) {
    if (TryPush(value)) return PushResult::kOk;
    while (true) {
      if (stop != nullptr && stop->load(std::memory_order_acquire)) {
        return PushResult::kStopped;
      }
      if (deadline_ns >= 0 && MonotonicNowNs() >= deadline_ns) {
        return PushResult::kTimedOut;
      }
      std::this_thread::yield();
      if (TryPush(value)) return PushResult::kOk;
    }
  }

  /// Non-blocking pop. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = buffer_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking batch push: enqueues up to `n` items from `items` and
  /// publishes them with a single release store of `tail_` — one shared
  /// cache-line update per batch instead of per element. Returns how many
  /// items were enqueued (0 when the ring is full; may be < n when it is
  /// nearly full).
  size_t PushBatch(const T* items, size_t n) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = mask_ + 1 - (tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = mask_ + 1 - (tail - head_cache_);
      if (free == 0) return 0;
    }
    const size_t count = std::min(n, free);
    for (size_t i = 0; i < count; ++i) {
      buffer_[(tail + i) & mask_] = items[i];
    }
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Non-blocking batch pop: dequeues up to `max_n` items into `out` and
  /// releases the slots with a single store of `head_`. Returns how many
  /// items were dequeued (0 when the ring is empty).
  size_t PopBatch(T* out, size_t max_n) {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t avail = tail_cache_ - head;
    if (avail == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
      if (avail == 0) return 0;
    }
    const size_t count = std::min(max_n, avail);
    for (size_t i = 0; i < count; ++i) {
      out[i] = buffer_[(head + i) & mask_];
    }
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Approximate size (exact if called from producer or consumer). Safe
  /// to call from a third thread (the watchdog): `head_` is loaded first,
  /// so a pop landing between the two loads can only make the result
  /// stale, never make `head > tail` and underflow the subtraction; the
  /// result is additionally clamped to capacity against pushes landing in
  /// the same window.
  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t depth = tail >= head ? tail - head : 0;
    return std::min(depth, mask_ + 1);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> buffer_;
  size_t mask_ = 0;

  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) size_t head_cache_ = 0;  // producer-local
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) size_t tail_cache_ = 0;  // consumer-local
};

}  // namespace oij

#endif  // OIJ_COMMON_SPSC_QUEUE_H_
