#include "common/rate_limiter.h"

#include <thread>

#include "common/clock.h"

namespace oij {

RateLimiter::RateLimiter(uint64_t rate_per_sec) : rate_per_sec_(rate_per_sec) {
  if (rate_per_sec_ > 0) {
    interval_ns_ = 1e9 / static_cast<double>(rate_per_sec_);
    next_deadline_ns_ = static_cast<double>(MonotonicNowNs());
  }
}

void RateLimiter::WaitUntil(int64_t deadline_ns) {
  int64_t now = MonotonicNowNs();
  // Sleep for the bulk of long waits; yield for the tail so granting is
  // accurate without burning a hot spin on oversubscribed machines.
  while (now < deadline_ns) {
    int64_t remaining = deadline_ns - now;
    if (remaining > 200'000) {  // > 200 us: let the OS sleep us.
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(remaining - 100'000));
    } else {
      std::this_thread::yield();
    }
    now = MonotonicNowNs();
  }
}

void RateLimiter::Acquire() { AcquireBatch(1); }

void RateLimiter::AcquireBatch(uint64_t n) {
  if (unlimited() || n == 0) return;
  next_deadline_ns_ += interval_ns_ * static_cast<double>(n);
  const int64_t deadline = static_cast<int64_t>(next_deadline_ns_);
  const int64_t now = MonotonicNowNs();
  if (now >= deadline) {
    // We are behind; don't accumulate unbounded debt (bounded burst).
    if (static_cast<double>(now) - next_deadline_ns_ > 1e8) {
      next_deadline_ns_ = static_cast<double>(now);
    }
    return;
  }
  WaitUntil(deadline);
}

}  // namespace oij
