#ifndef OIJ_COMMON_FAULT_INJECTOR_H_
#define OIJ_COMMON_FAULT_INJECTOR_H_

#include <cstdint>

namespace oij {

/// Deterministic fault hooks for exercising the engine's degradation
/// paths (tests/fault_injection_test.cc). An engine given a FaultInjector
/// via EngineOptions consults it at well-defined points; all fields
/// default to "no fault". The struct is read-only once the engine starts,
/// so it is safe to share across joiner threads.
struct FaultInjector {
  static constexpr uint32_t kNoJoiner = UINT32_MAX;

  /// Joiner that sleeps `slow_delay_us` before processing each event
  /// (models one overloaded core; drives the backpressure policies).
  uint32_t slow_joiner = kNoJoiner;
  int64_t slow_delay_us = 0;

  /// Joiner that stops consuming entirely after it has processed
  /// `stall_after_events` events (models a dead consumer; drives the
  /// watchdog and the bounded Finish path). The stalled thread parks on
  /// the engine's stop token rather than exiting, exactly like a thread
  /// wedged in a downstream call.
  uint32_t stalled_joiner = kNoJoiner;
  uint64_t stall_after_events = 0;

  /// Suppress every SignalWatermark call after this many attempts
  /// (models a frozen upstream source; drives watermark-freeze
  /// detection).
  uint64_t freeze_watermarks_after = UINT64_MAX;

  /// --- Disk faults (consumed by the WAL layer, src/wal/wal.cc) ---
  ///
  /// Seeded independently of the workload generator's rng (which owns
  /// the late-flood knob), so turning disk faults on or off never
  /// perturbs the arrival sequence an engine sees: the same run can be
  /// replayed with and without I/O faults and diffed. The WAL derives a
  /// per-shard deterministic stream from `disk_fault_seed`, so shard
  /// counts change fault placement but not the input data.
  uint64_t disk_fault_seed = 0x0d15c'fa17ULL;

  /// Probability that a WAL write() persists only a random prefix of the
  /// buffer while still being reported upstream as complete (models a
  /// torn write / lost page cache on crash).
  double short_write_probability = 0.0;

  /// Probability that an fsync() is silently skipped (models fsync
  /// failure / ignored flush). Counted in WalStats::fsync_failures and
  /// leaves synced_records un-advanced.
  double fsync_failure_probability = 0.0;

  bool InjectsDiskFaults() const {
    return short_write_probability > 0.0 || fsync_failure_probability > 0.0;
  }

  bool SlowsJoiner(uint32_t joiner) const {
    return joiner == slow_joiner && slow_delay_us > 0;
  }
  bool StallsJoiner(uint32_t joiner, uint64_t events_seen) const {
    return joiner == stalled_joiner && events_seen >= stall_after_events;
  }
  bool WatermarkFrozen(uint64_t attempts_so_far) const {
    return attempts_so_far >= freeze_watermarks_after;
  }
};

}  // namespace oij

#endif  // OIJ_COMMON_FAULT_INJECTOR_H_
