#include "common/hash.h"

namespace oij {

uint64_t HashBytes(std::string_view data, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

namespace {

/// Byte-at-a-time CRC-32C table (polynomial 0x1EDC6F41, reflected
/// 0x82F63B78), built once on first use.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  static const Crc32cTable table;
  uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = table.entries[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace oij
