#include "common/hash.h"

namespace oij {

uint64_t HashBytes(std::string_view data, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

}  // namespace oij
