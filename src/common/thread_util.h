#ifndef OIJ_COMMON_THREAD_UTIL_H_
#define OIJ_COMMON_THREAD_UTIL_H_

#include <cstdint>
#include <string>

namespace oij {

/// Names the calling thread (visible in /proc and profilers).
void SetCurrentThreadName(const std::string& name);

/// Pins the calling thread to `cpu` when the platform supports it and the
/// machine has that many CPUs; silently a no-op otherwise. Joiner threads
/// use joiner-index pinning when `pin_threads` is enabled in EngineOptions.
void TryPinCurrentThreadTo(int cpu);

/// Number of logical CPUs visible to this process.
int NumCpus();

/// Progressive backoff for lock-free wait loops: a few pauses, then yields.
/// Keeps oversubscribed runs (more joiners than cores) from starving the
/// thread being waited on.
class Backoff {
 public:
  void Pause();
  void Reset() { count_ = 0; }

 private:
  uint32_t count_ = 0;
};

}  // namespace oij

#endif  // OIJ_COMMON_THREAD_UTIL_H_
