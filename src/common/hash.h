#ifndef OIJ_COMMON_HASH_H_
#define OIJ_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace oij {

/// Strong 64-bit integer mixer (splitmix64 finalizer). Used to spread join
/// keys across partitions; the avalanche property matters because Key-OIJ
/// binds hash values statically to joiners.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash of a byte string (FNV-1a with a 64-bit mix finish). Used by the SQL
/// layer to map column names and by tests.
uint64_t HashBytes(std::string_view data, uint64_t seed = 0);

/// CRC-32C (Castagnoli) over a byte string. Guards every WAL record and
/// the snapshot manifest so the recovery reader can distinguish a torn
/// tail from valid data (src/wal/). Pass the previous return value as
/// `seed` to checksum a logical record split across buffers.
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

/// Maps a hashed key into one of `n` contiguous hash-range partitions.
/// Partitions are *ranges* of the hash space (not modulo classes) so that a
/// partition table over ranges can be re-split without rehashing.
inline uint32_t RangePartition(uint64_t hash, uint32_t n) {
  // Multiply-shift: floor(hash / 2^64 * n), avoids modulo bias and divide.
  return static_cast<uint32_t>(
      (static_cast<unsigned __int128>(hash) * n) >> 64);
}

}  // namespace oij

#endif  // OIJ_COMMON_HASH_H_
