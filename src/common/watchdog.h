#ifndef OIJ_COMMON_WATCHDOG_H_
#define OIJ_COMMON_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace oij {

/// Cache-line-padded atomic counter. Joiner threads bump their own slot;
/// the watchdog samples all slots — padding keeps the writes from
/// false-sharing.
struct alignas(64) PaddedCounter {
  std::atomic<uint64_t> value{0};
};

struct WatchdogConfig {
  /// Sampling period.
  int64_t interval_ms = 250;

  /// A joiner whose queue has a backlog but whose consumed counter has
  /// not moved for this many consecutive intervals is declared stalled
  /// (warning at half this count, abort at the full count).
  uint32_t stall_intervals = 40;

  /// Input advancing but watermarks frozen for this many consecutive
  /// intervals triggers a warning (and, optionally, an abort).
  uint32_t watermark_freeze_intervals = 120;

  /// Escalate a frozen watermark from warning to DeadlineExceeded abort.
  /// Off by default: a frozen source degrades liveness of results, not
  /// engine health, and many benchmarks legitimately never punctuate.
  bool abort_on_watermark_freeze = false;
};

/// One observation of engine progress, filled by the owner's sampler.
struct WatchdogSample {
  std::vector<size_t> queue_depths;  ///< per-joiner ring occupancy
  std::vector<uint64_t> consumed;    ///< per-joiner events processed
  uint64_t pushed = 0;               ///< router-side tuples accepted
  uint64_t watermarks = 0;           ///< watermarks actually signaled

  /// Allocator gauges, summed across joiner arenas (zero unless the
  /// engine runs with EngineOptions::pooled_alloc).
  uint64_t arena_bytes = 0;          ///< slab bytes reserved by the arenas
  uint64_t arena_live_nodes = 0;     ///< nodes resident in the arenas
  uint64_t ebr_retired_backlog = 0;  ///< nodes retired, awaiting epoch drain
  uint64_t arena_slab_recycles = 0;  ///< fully-dead slabs returned to pool

  /// NUMA placement gauges (src/topo/; all empty/zero when placement is
  /// inactive). Per-node arrays are indexed by node ordinal and split
  /// the arena gauges above by the owning joiner's node — grouped from
  /// per-arena counters, never by re-walking slabs.
  bool numa_active = false;
  uint32_t numa_nodes = 1;
  std::vector<int> numa_pin_cpus;          ///< per joiner; -1 = unpinned
  std::vector<uint32_t> numa_joiner_node;  ///< per joiner: node ordinal
  std::vector<uint64_t> per_node_arena_bytes;
  std::vector<uint64_t> per_node_arena_live_nodes;
  uint64_t numa_cross_replications = 0;
  uint64_t numa_cross_dispatches = 0;
};

/// Monitor thread that detects stalled joiners and frozen watermarks.
///
/// The watchdog owns no engine state: the owner supplies a sampler that
/// snapshots progress counters and an escalate callback invoked (once, on
/// the watchdog thread) when a stall crosses the abort threshold. The
/// callback is expected to record the Status and raise the engine's stop
/// token; the watchdog never touches threads directly.
class EngineWatchdog {
 public:
  using Sampler = std::function<WatchdogSample()>;
  using EscalateFn = std::function<void(const Status&)>;

  ~EngineWatchdog() { Stop(); }

  void Start(const WatchdogConfig& config, Sampler sampler,
             EscalateFn escalate);

  /// Idempotent; joins the monitor thread.
  void Stop();

  bool fired() const { return fired_.load(std::memory_order_acquire); }

  /// Drains accumulated warning lines (stall/freeze onset messages).
  std::vector<std::string> TakeWarnings();

 private:
  void Main();
  void Warn(std::string message);

  WatchdogConfig config_;
  Sampler sampler_;
  EscalateFn escalate_;

  std::thread thread_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // guarded by cv_mu_

  std::mutex warnings_mu_;
  std::vector<std::string> warnings_;

  std::atomic<bool> fired_{false};
};

}  // namespace oij

#endif  // OIJ_COMMON_WATCHDOG_H_
