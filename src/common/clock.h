#ifndef OIJ_COMMON_CLOCK_H_
#define OIJ_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace oij {

/// Monotonic wall time in microseconds. Used for arrival stamps, latency
/// accounting, and throughput timing. Event time (Tuple::ts) is a separate,
/// generator-controlled timeline.
inline int64_t MonotonicNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Scoped stopwatch accumulating elapsed nanoseconds into a counter.
/// Used by the per-joiner time breakdown (Fig 6): lookup vs match vs other.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(int64_t* sink)
      : sink_(sink), start_(MonotonicNowNs()) {}
  ~ScopedTimerNs() { *sink_ += MonotonicNowNs() - start_; }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  int64_t* sink_;
  int64_t start_;
};

}  // namespace oij

#endif  // OIJ_COMMON_CLOCK_H_
