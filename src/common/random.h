#ifndef OIJ_COMMON_RANDOM_H_
#define OIJ_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace oij {

/// xoshiro256** PRNG: fast, high quality, deterministic across platforms.
/// Every generator, test, and benchmark takes an explicit seed so runs are
/// reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  uint64_t Next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

 private:
  uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `theta`.
/// theta = 0 degenerates to uniform. Uses the rejection-inversion method of
/// Hörmann & Derflinger so construction is O(1) and sampling is O(1)
/// amortized even for large n (needed for the u = 100K sweeps of Fig 8).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace oij

#endif  // OIJ_COMMON_RANDOM_H_
