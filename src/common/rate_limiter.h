#ifndef OIJ_COMMON_RATE_LIMITER_H_
#define OIJ_COMMON_RATE_LIMITER_H_

#include <cstdint>

namespace oij {

/// Paces a source thread to a target arrival rate (tuples/second), used by
/// the latency experiments (Figs 5, 17-20, 23) where Workloads A/B/D are
/// rate-limited while Workload C is unthrottled.
///
/// The limiter hands out evenly spaced deadlines ("smoothed" token bucket)
/// and sleeps/yields until each deadline. A rate of 0 means unlimited.
class RateLimiter {
 public:
  /// `rate_per_sec` == 0 disables pacing.
  explicit RateLimiter(uint64_t rate_per_sec);

  /// Blocks until the next permit time, then returns. Call once per tuple.
  void Acquire();

  /// Blocks until `n` permits are due. Cheaper than n Acquire() calls;
  /// sources use this to pace whole batches.
  void AcquireBatch(uint64_t n);

  uint64_t rate_per_sec() const { return rate_per_sec_; }
  bool unlimited() const { return rate_per_sec_ == 0; }

 private:
  void WaitUntil(int64_t deadline_ns);

  uint64_t rate_per_sec_;
  double interval_ns_ = 0.0;   // nanoseconds per permit
  double next_deadline_ns_ = 0.0;
};

}  // namespace oij

#endif  // OIJ_COMMON_RATE_LIMITER_H_
