#ifndef OIJ_COMMON_TYPES_H_
#define OIJ_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace oij {

/// Event time, in microseconds. Window sizes in the paper range from
/// 100 us (Table V) to 150 s (Workload B), so microsecond resolution
/// covers the whole evaluated space.
using Timestamp = int64_t;

/// Join key. Real workloads use integral surrogate keys; string keys can
/// be hashed into this space upstream.
using Key = uint64_t;

inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// Which input stream a tuple belongs to (Definition 2 in the paper:
/// S is the base stream, R is the probe stream).
enum class StreamId : uint8_t {
  kBase = 0,   ///< S: each base tuple opens a relative window.
  kProbe = 1,  ///< R: probe tuples fill the windows of base tuples.
};

/// An input tuple x = {t, k, p} (paper Table I).
struct Tuple {
  Timestamp ts = 0;
  Key key = 0;
  double payload = 0.0;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

/// A relative time window (PRE, FOL): for a base tuple with timestamp t,
/// probe tuples with ts in [t - pre, t + fol] match (Definition 2).
struct IntervalWindow {
  Timestamp pre = 0;  ///< preceding offset, >= 0.
  Timestamp fol = 0;  ///< following offset, >= 0.

  Timestamp start_for(Timestamp base_ts) const { return base_ts - pre; }
  Timestamp end_for(Timestamp base_ts) const { return base_ts + fol; }
  Timestamp length() const { return pre + fol; }

  friend bool operator==(const IntervalWindow&,
                         const IntervalWindow&) = default;
};

/// One finalized join result: the base tuple together with the aggregate
/// over its matched probe tuples. The cardinality of results equals the
/// cardinality of the base stream (Section II-C).
struct JoinResult {
  Tuple base;
  /// The value of the query's requested aggregate.
  double aggregate = 0.0;
  uint64_t match_count = 0;

  /// Full window statistics, for multi-aggregate feature sets: engines
  /// that materialize the window (every full-scan path) fill all three;
  /// the incremental paths fill only what their running state maintains
  /// and leave the rest NaN. See core/feature_set.h.
  double sum = std::numeric_limits<double>::quiet_NaN();
  double min = std::numeric_limits<double>::quiet_NaN();
  double max = std::numeric_limits<double>::quiet_NaN();

  /// Monotonic-clock arrival of the base tuple, for latency accounting.
  int64_t arrival_us = 0;
  /// Monotonic-clock time the result was emitted.
  int64_t emit_us = 0;

  /// Ordinal of the standing query this result belongs to. 0 is the
  /// primary query an engine was constructed with; additional standing
  /// queries registered through the catalog get 1, 2, ... in
  /// registration order.
  uint32_t query = 0;
};

}  // namespace oij

#endif  // OIJ_COMMON_TYPES_H_
