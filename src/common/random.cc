#include "common/random.h"

#include <cmath>

#include "common/hash.h"

namespace oij {

namespace {
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four state words with distinct splitmix64 outputs; an
  // all-zero state (illegal for xoshiro) is impossible this way.
  for (int i = 0; i < 4; ++i) {
    seed = Mix64(seed + 0x9e3779b97f4a7c15ULL);
    s_[i] = seed | 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n_ == 0) n_ = 1;
  // Constants per Hörmann & Derflinger's rejection-inversion method.
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(n_ + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfSampler::H(double x) const {
  if (theta_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfSampler::HInverse(double x) const {
  if (theta_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfSampler::Sample(Rng& rng) {
  if (theta_ <= 0.0) return rng.NextBelow(n_);
  while (true) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(static_cast<double>(k),
                                                  -theta_)) {
      return k - 1;  // zero-based rank
    }
  }
}

}  // namespace oij
