#include "common/watchdog.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/thread_util.h"

namespace oij {

void EngineWatchdog::Start(const WatchdogConfig& config, Sampler sampler,
                           EscalateFn escalate) {
  Stop();
  config_ = config;
  sampler_ = std::move(sampler);
  escalate_ = std::move(escalate);
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stop_requested_ = false;
  }
  fired_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Main(); });
}

void EngineWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<std::string> EngineWatchdog::TakeWarnings() {
  std::lock_guard<std::mutex> lock(warnings_mu_);
  return std::move(warnings_);
}

void EngineWatchdog::Warn(std::string message) {
  std::lock_guard<std::mutex> lock(warnings_mu_);
  warnings_.push_back(std::move(message));
}

void EngineWatchdog::Main() {
  SetCurrentThreadName("oij-watchdog");

  std::vector<uint64_t> last_consumed;
  std::vector<uint32_t> stall_ticks;
  std::vector<bool> stall_warned;
  uint64_t last_pushed = 0;
  uint64_t last_watermarks = 0;
  uint32_t freeze_ticks = 0;
  bool freeze_warned = false;
  bool first_sample = true;

  const uint32_t warn_at = std::max(1u, config_.stall_intervals / 2);

  while (true) {
    {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }

    WatchdogSample sample = sampler_();
    const size_t n = sample.consumed.size();
    if (first_sample) {
      last_consumed = sample.consumed;
      last_pushed = sample.pushed;
      last_watermarks = sample.watermarks;
      stall_ticks.assign(n, 0);
      stall_warned.assign(n, false);
      first_sample = false;
      continue;
    }
    if (last_consumed.size() != n) {
      last_consumed.assign(n, 0);
      stall_ticks.assign(n, 0);
      stall_warned.assign(n, false);
    }

    // Stalled joiner: backlog present, consumed counter frozen.
    for (size_t j = 0; j < n; ++j) {
      const bool backlog =
          j < sample.queue_depths.size() && sample.queue_depths[j] > 0;
      if (backlog && sample.consumed[j] == last_consumed[j]) {
        ++stall_ticks[j];
      } else {
        stall_ticks[j] = 0;
        stall_warned[j] = false;
      }
      last_consumed[j] = sample.consumed[j];

      if (stall_ticks[j] >= warn_at && !stall_warned[j]) {
        stall_warned[j] = true;
        Warn("watchdog: joiner " + std::to_string(j) +
             " has a backlog but made no progress for " +
             std::to_string(stall_ticks[j] * config_.interval_ms) + " ms");
      }
      if (stall_ticks[j] >= config_.stall_intervals) {
        fired_.store(true, std::memory_order_release);
        escalate_(Status::ResourceExhausted(
            "joiner " + std::to_string(j) + " stalled with backlog for " +
            std::to_string(stall_ticks[j] * config_.interval_ms) +
            " ms; aborting run"));
        return;
      }
    }

    // Frozen watermarks: input advancing, punctuation not.
    const bool input_advanced = sample.pushed != last_pushed;
    const bool wm_frozen = sample.watermarks == last_watermarks;
    last_pushed = sample.pushed;
    last_watermarks = sample.watermarks;
    if (input_advanced && wm_frozen) {
      ++freeze_ticks;
    } else if (!wm_frozen) {
      freeze_ticks = 0;
      freeze_warned = false;
    }
    if (freeze_ticks >= config_.watermark_freeze_intervals) {
      if (!freeze_warned) {
        freeze_warned = true;
        Warn("watchdog: input advancing but watermark frozen for " +
             std::to_string(freeze_ticks * config_.interval_ms) + " ms");
      }
      if (config_.abort_on_watermark_freeze) {
        fired_.store(true, std::memory_order_release);
        escalate_(Status::DeadlineExceeded(
            "watermark frozen while input advanced for " +
            std::to_string(freeze_ticks * config_.interval_ms) +
            " ms; aborting run"));
        return;
      }
    }
  }
}

}  // namespace oij
