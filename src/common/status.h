#ifndef OIJ_COMMON_STATUS_H_
#define OIJ_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace oij {

/// Lightweight error carrier in the style of arrow::Status / rocksdb::Status.
/// The library does not use exceptions; fallible operations return Status
/// (or StatusOr-like pairs at the call site).
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kFailedPrecondition,
    kParseError,
    kInternal,
    kResourceExhausted,
    kDeadlineExceeded,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Name of a status code ("OK", "InvalidArgument", ...).
std::string_view CodeName(Status::Code code);

}  // namespace oij

#endif  // OIJ_COMMON_STATUS_H_
