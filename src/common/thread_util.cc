#include "common/thread_util.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace oij {

void SetCurrentThreadName(const std::string& name) {
#if defined(__linux__)
  // Linux limits thread names to 15 chars + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

void TryPinCurrentThreadTo(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= NumCpus()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

int NumCpus() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void Backoff::Pause() {
  ++count_;
  if (count_ < 4) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  } else {
    std::this_thread::yield();
  }
}

}  // namespace oij
