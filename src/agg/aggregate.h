#ifndef OIJ_AGG_AGGREGATE_H_
#define OIJ_AGG_AGGREGATE_H_

#include <cstdint>
#include <limits>
#include <string_view>

#include "common/status.h"

namespace oij {

/// Aggregation operators over the matched probe tuples of a window.
/// The paper's incremental technique (Subtract-on-Evict, Section V-C)
/// applies to the invertible ones (sum, count, avg); min/max are kept as
/// the non-invertible contrast — engines fall back to recomputation for
/// them, exactly the limitation the paper scopes out.
enum class AggKind : uint8_t {
  kSum = 0,
  kCount,
  kAvg,
  kMin,
  kMax,
};

/// Whether `⊖` (Subtract) is defined for the operator.
bool IsInvertible(AggKind kind);

/// Lower-case SQL name ("sum", "count", ...).
std::string_view AggKindName(AggKind kind);

/// Parses a (case-insensitive) SQL aggregate name. Returns a ParseError
/// status for unknown names.
Status AggKindFromName(std::string_view name, AggKind* out);

/// Mergeable, optionally invertible aggregate state.
///
/// One AggState per open window; `Add` is ⊕, `Subtract` is ⊖ (valid only
/// when the operator is invertible), `Merge` combines partial states
/// (SplitJoin's collector merges one partial per joiner).
struct AggState {
  double sum = 0.0;
  uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    sum += v;
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  /// ⊖. Only the invertible components (sum, count) are maintained; the
  /// caller must not read min/max after a Subtract.
  void Subtract(double v) {
    sum -= v;
    --count;
  }

  void Merge(const AggState& other) {
    sum += other.sum;
    count += other.count;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  void Reset() { *this = AggState{}; }

  /// Final value under `kind`. Empty windows yield 0 for sum/count and
  /// NaN for avg/min/max (SQL NULL stand-in).
  double Result(AggKind kind) const;
};

}  // namespace oij

#endif  // OIJ_AGG_AGGREGATE_H_
