#include "agg/aggregate.h"

#include <cctype>
#include <string>

namespace oij {

bool IsInvertible(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kCount:
    case AggKind::kAvg:
      return true;
    case AggKind::kMin:
    case AggKind::kMax:
      return false;
  }
  return false;
}

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kCount:
      return "count";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

Status AggKindFromName(std::string_view name, AggKind* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "sum") {
    *out = AggKind::kSum;
  } else if (lower == "count") {
    *out = AggKind::kCount;
  } else if (lower == "avg") {
    *out = AggKind::kAvg;
  } else if (lower == "min") {
    *out = AggKind::kMin;
  } else if (lower == "max") {
    *out = AggKind::kMax;
  } else {
    return Status::ParseError("unknown aggregate function: " + lower);
  }
  return Status::OK();
}

double AggState::Result(AggKind kind) const {
  switch (kind) {
    case AggKind::kSum:
      return sum;
    case AggKind::kCount:
      return static_cast<double>(count);
    case AggKind::kAvg:
      return count == 0 ? std::numeric_limits<double>::quiet_NaN()
                        : sum / static_cast<double>(count);
    case AggKind::kMin:
      return count == 0 ? std::numeric_limits<double>::quiet_NaN() : min;
    case AggKind::kMax:
      return count == 0 ? std::numeric_limits<double>::quiet_NaN() : max;
  }
  return 0.0;
}

}  // namespace oij
