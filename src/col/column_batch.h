#ifndef OIJ_COL_COLUMN_BATCH_H_
#define OIJ_COL_COLUMN_BATCH_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.h"
#include "mem/node_arena.h"

namespace oij::col {

/// ColumnarBatchStage & friends — the staging leg of the columnar batch
/// kernels (DESIGN.md §5h). When a drain releases a run of base tuples,
/// the engines transpose them out of their pending queues into SoA
/// columns here (ts[], key[], payload[], arrival[]), sort/group by key,
/// and hand each key-group to the sweep merge. Probe tuples gathered
/// from the time-travel index land in a ProbeColumns pair the
/// VectorAggregate kernels stream over.
///
/// Column backing store: one loaned NodeArena slab per column while the
/// batch fits (the common case — 8192 entries of 8 bytes per 64 KiB
/// slab), migrating to the heap only when a batch outgrows it. The
/// stage lives in the joiner's state and is reused across drains, so at
/// steady state the same hot slabs cycle between eviction and staging.

/// Fixed-stride POD column, arena-slab backed (heap when no arena or
/// past one slab). Not thread-safe: joiner-owned, like the arena.
template <typename T>
class ColumnBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ColumnBuffer(NodeArena* arena = nullptr) : arena_(arena) {}

  ~ColumnBuffer() { Release(); }

  ColumnBuffer(const ColumnBuffer&) = delete;
  ColumnBuffer& operator=(const ColumnBuffer&) = delete;

  void Reserve(size_t n) {
    if (n > cap_) Grow(n);
  }

  void PushBack(T v) {
    if (size_ == cap_) Grow(size_ + 1);
    data_[size_++] = v;
  }

  void Clear() { size_ = 0; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T operator[](size_t i) const { return data_[i]; }
  T& operator[](size_t i) { return data_[i]; }

  /// True while the backing store is a loaned arena slab (test hook).
  bool arena_backed() const { return slab_ != nullptr; }

 private:
  static constexpr size_t kSlabCapacity =
      NodeArena::kSlabDataBytes / sizeof(T);

  void Grow(size_t need) {
    size_t cap = cap_ == 0 ? 64 : cap_ * 2;
    if (cap < need) cap = need;
    if (data_ == nullptr && arena_ != nullptr && need <= kSlabCapacity) {
      slab_ = arena_->AcquireSlab();
      data_ = static_cast<T*>(slab_);
      cap_ = kSlabCapacity;
      return;
    }
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    Release();
    data_ = fresh;
    cap_ = cap;
  }

  void Release() {
    if (slab_ != nullptr) {
      arena_->ReleaseSlab(slab_);
      slab_ = nullptr;
    } else if (data_ != nullptr) {
      ::operator delete(data_);
    }
    data_ = nullptr;
    cap_ = 0;
  }

  NodeArena* arena_;
  void* slab_ = nullptr;  ///< non-null while data_ points into a loan
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

/// One drain's worth of finalize-ready base tuples, transposed SoA.
/// Append order is the pending-queue pop order (non-decreasing ts);
/// SortByKey() then groups by key *stably*, so each key-group stays
/// ts-sorted — the precondition of the sweep merge.
class ColumnarBatchStage {
 public:
  explicit ColumnarBatchStage(NodeArena* arena = nullptr)
      : ts_(arena), key_(arena), payload_(arena), arrival_(arena) {}

  void Clear() {
    ts_.Clear();
    key_.Clear();
    payload_.Clear();
    arrival_.Clear();
    order_.clear();
  }

  void Append(const Tuple& t, int64_t arrival_us) {
    ts_.PushBack(t.ts);
    key_.PushBack(t.key);
    payload_.PushBack(t.payload);
    arrival_.PushBack(arrival_us);
  }

  size_t size() const { return ts_.size(); }
  bool empty() const { return ts_.empty(); }

  /// Raw append-order accessors (the scalar fallback replays these in
  /// pop order, byte-for-byte like the legacy loop).
  Tuple TupleAt(size_t i) const {
    return Tuple{ts_[i], key_[i], payload_[i]};
  }
  int64_t ArrivalAt(size_t i) const { return arrival_[i]; }

  /// Builds the key-grouped order. Returns group count.
  size_t SortByKey();

  /// Sorted-order accessors (valid after SortByKey).
  size_t OrderAt(size_t i) const { return order_[i]; }
  Timestamp SortedTs(size_t i) const { return ts_[order_[i]]; }
  Key SortedKey(size_t i) const { return key_[order_[i]]; }
  Tuple SortedTuple(size_t i) const { return TupleAt(order_[i]); }
  int64_t SortedArrival(size_t i) const { return arrival_[order_[i]]; }

  /// Invokes fn(key, begin, end) per key-group over sorted positions
  /// [begin, end) (valid after SortByKey).
  template <typename Fn>
  void ForEachGroup(Fn&& fn) const {
    size_t begin = 0;
    while (begin < order_.size()) {
      const Key k = key_[order_[begin]];
      size_t end = begin + 1;
      while (end < order_.size() && key_[order_[end]] == k) ++end;
      fn(k, begin, end);
      begin = end;
    }
  }

 private:
  ColumnBuffer<Timestamp> ts_;
  ColumnBuffer<Key> key_;
  ColumnBuffer<double> payload_;
  ColumnBuffer<int64_t> arrival_;
  std::vector<uint32_t> order_;  ///< stable key-sorted permutation
};

/// Probe tuples of one key-group, gathered into contiguous ts/payload
/// columns. Sources append in timestamp order each (skip-list second
/// layers are ts-sorted); with several sources (team members, annex) the
/// concatenation is re-sorted on Finish.
class ProbeColumns {
 public:
  explicit ProbeColumns(NodeArena* arena = nullptr)
      : ts_(arena), payload_(arena) {}

  void Clear() {
    ts_.Clear();
    payload_.Clear();
    sorted_ = true;
    finite_ = true;
  }

  void Append(Timestamp ts, double payload) {
    if (!ts_.empty() && ts < ts_[ts_.size() - 1]) sorted_ = false;
    if (!std::isfinite(payload)) finite_ = false;
    ts_.PushBack(ts);
    payload_.PushBack(payload);
  }

  /// Sorts the columns by ts if any source broke monotonicity (stable,
  /// so equal timestamps keep source order). Call once after gathering.
  void EnsureSorted();

  size_t size() const { return ts_.size(); }
  const Timestamp* ts() const { return ts_.data(); }
  const double* payload() const { return payload_.data(); }

  /// False when any appended payload was NaN/Inf — the engines fall
  /// back to the scalar join path for the group (see vector_agg.h on
  /// why SIMD min/max must never see non-finite lanes).
  bool all_finite() const { return finite_; }

 private:
  ColumnBuffer<Timestamp> ts_;
  ColumnBuffer<double> payload_;
  std::vector<uint32_t> scratch_order_;
  std::vector<Timestamp> scratch_ts_;
  std::vector<double> scratch_payload_;
  bool sorted_ = true;
  bool finite_ = true;
};

}  // namespace oij::col

#endif  // OIJ_COL_COLUMN_BATCH_H_
