#ifndef OIJ_COL_VECTOR_AGG_H_
#define OIJ_COL_VECTOR_AGG_H_

#include <cstddef>
#include <cstdint>

#include "agg/aggregate.h"

namespace oij::col {

/// VectorAggregate — the aggregation leg of the columnar batch kernels
/// (DESIGN.md §5h). Slices handed here are contiguous payload columns
/// produced by the sweep merge, so the reduction is pure streaming
/// arithmetic: no pointer chasing, no per-tuple branches.
///
/// Dispatch rules. The kernel has exactly two implementations:
///
///  * an AVX2 body (4 doubles per vector op), compiled either when the
///    TU is already built with -mavx2 (`__AVX2__`) or, on x86-64
///    GCC/Clang, via a `target("avx2")` attribute with a cached
///    `__builtin_cpu_supports("avx2")` runtime check;
///  * a portable scalar body that *emulates the same four virtual
///    lanes* — main body striped across four accumulators, lanes
///    reduced in the exact order the AVX2 horizontal reduction uses
///    ((l0+l2) + (l1+l3)), tail elements folded in sequentially after
///    the lane reduction.
///
/// Because both bodies perform bit-identical operation sequences on
/// finite inputs, AggregateSlice() and AggregateSlicePortable() return
/// bit-equal results whichever one dispatch picks — this is what lets
/// the no-AVX2 CI leg run the very same differential tests. Callers
/// must keep non-finite payloads out of the columns (the staging layer
/// falls back to the scalar join path when it sees one), because
/// vminpd/vmaxpd and ordered compares diverge on NaN.
///
/// Configure with -DOIJ_PORTABLE_KERNELS=ON to force the portable body
/// everywhere (the CI build-matrix leg that keeps it honest).

/// Aggregate of one contiguous payload slice.
struct SliceAgg {
  double sum = 0.0;
  uint64_t count = 0;
  double min = 0.0;  ///< valid only when count > 0
  double max = 0.0;  ///< valid only when count > 0

  AggState ToAggState() const {
    AggState s;
    s.sum = sum;
    s.count = count;
    if (count > 0) {
      s.min = min;
      s.max = max;
    }
    return s;
  }
};

/// Reduces `v[0..n)`; dispatches to AVX2 when available.
SliceAgg AggregateSlice(const double* v, size_t n);

/// The four-virtual-lane scalar body (always compiled; the reference
/// the bit-exactness tests compare the dispatcher against).
SliceAgg AggregateSlicePortable(const double* v, size_t n);

/// True when AggregateSlice() currently routes to the AVX2 body.
bool SimdActive();

/// Software prefetch of the cache line holding `p` (read intent). Used
/// by the gather walks to warm the next arena node while the current
/// one is being copied out; compiles to nothing where unsupported.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Exclusive prefix sums: out[i] = v[0] + ... + v[i-1], out[n] = total.
/// `out` must have room for n + 1 doubles. The sweep merge's invertible
/// fast path turns every per-base window sum into two loads and one
/// subtract, independent of window width.
void PrefixSums(const double* v, size_t n, double* out);

}  // namespace oij::col

#endif  // OIJ_COL_VECTOR_AGG_H_
